(* Tests for the domain worker pool that backs campaign execution.

   The executor's determinism contract rests on two properties of
   [Pool.map]: results come back slotted by input index (order
   preserved), and every job runs exactly once — even when other jobs
   in the same batch raise.  Both are checked here as qcheck
   properties; a few directed cases cover the edges (empty input,
   jobs > workers, exception propagation picking the lowest index). *)

open Iron_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_map_empty () =
  Pool.with_pool 4 (fun p ->
      check Alcotest.(list int) "empty" [] (Pool.map p (fun x -> x) []))

let test_map_order_small () =
  Pool.with_pool 3 (fun p ->
      check
        Alcotest.(list int)
        "squares in order"
        [ 0; 1; 4; 9; 16; 25; 36 ]
        (Pool.map p (fun x -> x * x) [ 0; 1; 2; 3; 4; 5; 6 ]))

let test_map_more_jobs_than_workers () =
  let xs = List.init 200 Fun.id in
  Pool.with_pool 2 (fun p ->
      check
        Alcotest.(list int)
        "200 jobs over 2 workers"
        (List.map (fun x -> x + 1) xs)
        (Pool.map p (fun x -> x + 1) xs))

let test_map_raise_propagates_lowest_index () =
  (* Two jobs raise; the caller must see the lowest-index failure, and
     every job must still have been attempted (exactly-once). *)
  let ran = Array.make 10 0 in
  let m = Mutex.create () in
  Pool.with_pool 4 (fun p ->
      match
        Pool.map p
          (fun i ->
            Mutex.lock m;
            ran.(i) <- ran.(i) + 1;
            Mutex.unlock m;
            if i = 3 || i = 7 then failwith (Printf.sprintf "job %d" i);
            i)
          (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          check Alcotest.string "lowest-index failure wins" "job 3" msg);
  Array.iteri
    (fun i n -> check Alcotest.int (Printf.sprintf "job %d ran once" i) 1 n)
    ran

let test_map_jobs_sequential_matches_pool () =
  let xs = List.init 50 (fun i -> i * 3) in
  let f x = (x * 7919) mod 104729 in
  check
    Alcotest.(list int)
    "jobs=1 matches jobs=4"
    (Pool.map_jobs ~jobs:1 f xs)
    (Pool.map_jobs ~jobs:4 f xs)

(* The chunked submission path (jobs per queue entry scales with
   input size, capped at [max_chunk]) must stay invisible: for input
   sizes straddling every interesting boundary of the heuristic —
   empty, single, one chunk, one chunk ± 1, cap × workers, and a
   campaign-sized run — the parallel result equals the sequential
   baseline and the per-job telemetry hook fires exactly once per
   job. *)
let test_chunk_heuristic_boundaries () =
  let f x = (x * 31) lxor (x lsr 2) in
  List.iter
    (fun n ->
      let xs = List.init n (fun i -> i * 5) in
      let fired = Atomic.make 0 in
      let on_job ~queue_ms:_ ~run_ms:_ = Atomic.incr fired in
      let seq = Pool.map_jobs ~jobs:1 f xs in
      let par = Pool.map_jobs ~on_job ~jobs:4 f xs in
      check
        Alcotest.(list int)
        (Printf.sprintf "n=%d: jobs=1 = jobs=4" n)
        seq par;
      check Alcotest.int
        (Printf.sprintf "n=%d: telemetry once per job" n)
        n (Atomic.get fired))
    [ 0; 1; 2; 15; 16; 17; 63; 64; 65; 200; 1000 ]

let test_default_jobs_positive () =
  check Alcotest.bool "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* --- properties ------------------------------------------------------ *)

let prop_map_preserves_order =
  QCheck.Test.make ~name:"Pool.map preserves input order" ~count:50
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (n, xs) ->
      let f x = (x * 2654435761) lxor 0x5A5A in
      Pool.map_jobs ~jobs:n f xs = List.map f xs)

let prop_map_runs_each_job_exactly_once =
  QCheck.Test.make ~name:"Pool.map runs every job exactly once" ~count:50
    QCheck.(pair (int_range 1 6) (int_bound 60))
    (fun (n, len) ->
      let ran = Array.make (max 1 len) 0 in
      let m = Mutex.create () in
      let _ =
        Pool.map_jobs ~jobs:n
          (fun i ->
            Mutex.lock m;
            ran.(i) <- ran.(i) + 1;
            Mutex.unlock m;
            i)
          (List.init len Fun.id)
      in
      Array.for_all (fun c -> c = 1) (Array.sub ran 0 len))

let prop_map_exactly_once_with_raising_jobs =
  QCheck.Test.make ~name:"Pool.map exactly-once survives raising jobs"
    ~count:50
    QCheck.(triple (int_range 1 6) (int_range 1 40) (int_bound 39))
    (fun (n, len, bad) ->
      let bad = bad mod len in
      let ran = Array.make len 0 in
      let m = Mutex.create () in
      (match
         Pool.map_jobs ~jobs:n
           (fun i ->
             Mutex.lock m;
             ran.(i) <- ran.(i) + 1;
             Mutex.unlock m;
             if i = bad then raise Exit;
             i)
           (List.init len Fun.id)
       with
      | _ -> ()
      | exception Exit -> ());
      Array.for_all (fun c -> c = 1) ran)

let suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "map on empty list" `Quick test_map_empty;
        Alcotest.test_case "map keeps order" `Quick test_map_order_small;
        Alcotest.test_case "more jobs than workers" `Quick
          test_map_more_jobs_than_workers;
        Alcotest.test_case "exception: lowest index, all jobs run" `Quick
          test_map_raise_propagates_lowest_index;
        Alcotest.test_case "map_jobs 1 = map_jobs 4" `Quick
          test_map_jobs_sequential_matches_pool;
        Alcotest.test_case "chunk heuristic invisible at every boundary" `Quick
          test_chunk_heuristic_boundaries;
        Alcotest.test_case "default_jobs positive" `Quick
          test_default_jobs_positive;
        qtest prop_map_preserves_order;
        qtest prop_map_runs_each_job_exactly_once;
        qtest prop_map_exactly_once_with_raising_jobs;
      ] );
  ]
