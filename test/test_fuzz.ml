(* Tests for the bounded black-box crash fuzzer (Iron_fuzz).

   - Args: the CLI validation table — every bad input maps to Error
     with a message naming the flag, never an exception.
   - Gen: the bounded workload space is exactly the B3 bound (37-op
     alphabet, 37 + 1369 workloads at seq 2, seeded distinct triples
     at seq 3) and a pure function of its parameters.
   - minimize: qcheck — for arbitrary workloads and monotone-ish
     predicates, the shrunk counterexample still violates and no
     single-op removal survives (1-minimality).
   - campaign: -j determinism — j1 and j4 agree byte-for-byte on the
     report and on the serialized artifact. *)

module Fuzz = Iron_fuzz.Fuzz
module Gen = Iron_fuzz.Gen
module Args = Iron_fuzz.Args
module Report = Iron_report.Report
module Explore = Iron_crash.Explore
module Memdisk = Iron_disk.Memdisk

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Args validation table                                               *)
(* ------------------------------------------------------------------ *)

let known = [ "ext3"; "ixt3"; "jfs" ]

let test_args_table () =
  let expect_ok name = function
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: unexpected error %S" name e
  and expect_err name needle = function
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error e ->
        if
          not
            (let n = String.length e and m = String.length needle in
             let rec go i =
               i + m <= n && (String.sub e i m = needle || go (i + 1))
             in
             m = 0 || go 0)
        then Alcotest.failf "%s: error %S does not mention %S" name e needle
  in
  (* (name, result, Some needle-for-error | None for ok) *)
  let u r = Result.map (fun _ -> ()) r in
  List.iter
    (fun (name, r, bad) ->
      match bad with
      | None -> expect_ok name r
      | Some needle -> expect_err name needle r)
    [
      ("states 1", u (Args.positive ~what:"--states" 1), None);
      ("states 0", u (Args.positive ~what:"--states" 0), Some "--states");
      ("states -5", u (Args.positive ~what:"--states" (-5)), Some "--states");
      ("jobs 0", u (Args.positive ~what:"--jobs" 0), Some "--jobs");
      ("seq 1", u (Args.seq 1), None);
      ("seq 3", u (Args.seq 3), None);
      ("seq 0", u (Args.seq 0), Some "--seq");
      ("seq 4", u (Args.seq 4), Some "--seq");
      ("brand known", u (Args.brand ~known "ext3"), None);
      ("brand unknown", u (Args.brand ~known "ext5"), Some "ext5");
      ("brand lists known", u (Args.brand ~known "nope"), Some "ixt3");
      ("zipf 0", u (Args.zipf 0.0), None);
      ("zipf 0.75", u (Args.zipf 0.75), None);
      ("zipf 2", u (Args.zipf 2.0), None);
      ("zipf negative", u (Args.zipf (-0.1)), Some "--zipf");
      ("zipf too skewed", u (Args.zipf 2.5), Some "--zipf");
      ("zipf nan", u (Args.zipf Float.nan), Some "--zipf");
      ("arrival poisson", u (Args.arrival "poisson"), None);
      ("arrival closed", u (Args.arrival "closed"), None);
      ("arrival mixed", u (Args.arrival "mixed"), None);
      ("arrival unknown", u (Args.arrival "bursty"), Some "--arrival");
    ]

(* The installed binary rejects the same inputs with exit code 2 and a
   one-line message (no exception trace). Exercised through the real
   executable so the wiring in bin/iron.ml stays covered. *)
let iron_exe () =
  let candidates =
    [ "../bin/iron.exe"; "_build/default/bin/iron.exe"; "bin/iron.exe" ]
  in
  List.find_opt Sys.file_exists candidates

let test_cli_exit_codes () =
  match iron_exe () with
  | None -> () (* not built in this layout; the Args table covers logic *)
  | Some exe ->
      List.iter
        (fun (args, want) ->
          let cmd =
            Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe) args
          in
          let rc =
            match Unix.system cmd with
            | Unix.WEXITED n -> n
            | _ -> -1
          in
          check Alcotest.int (Printf.sprintf "iron %s exits %d" args want)
            want rc)
        [
          ("fuzz ext3 --seq 9", 2);
          ("fuzz ext3 --states-per-workload 0", 2);
          ("fuzz ext3 --samples 0", 2);
          ("fuzz no-such-fs", 2);
          ("crash --states 0", 2);
          ("traffic ext3 --zipf 3.0", 2);
          ("traffic ext3 --arrival bursty", 2);
          ("traffic ext3 --clients 0", 2);
          ("traffic no-such-fs", 2);
        ]

(* ------------------------------------------------------------------ *)
(* The bounded workload space                                          *)
(* ------------------------------------------------------------------ *)

let test_alphabet () =
  check Alcotest.int "37-op alphabet" 37 (List.length Gen.alphabet);
  let labels = List.map Gen.op_to_string Gen.alphabet in
  check Alcotest.int "labels are distinct" 37
    (List.length (List.sort_uniq String.compare labels))

let test_workload_counts () =
  check Alcotest.int "seq 1 = alphabet" 37
    (List.length (Gen.workloads ~seq:1 ~seed:5 ~samples:0));
  check Alcotest.int "seq 2 = 37 + 37^2" 1406
    (List.length (Gen.workloads ~seq:2 ~seed:5 ~samples:0));
  let w3 = Gen.workloads ~seq:3 ~seed:5 ~samples:50 in
  check Alcotest.int "seq 3 appends the sampled triples" (1406 + 50)
    (List.length w3);
  let names = List.map Gen.to_string w3 in
  check Alcotest.int "workloads are distinct" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  check Alcotest.bool "deterministic in the seed" true
    (Gen.workloads ~seq:3 ~seed:5 ~samples:50 = w3);
  check Alcotest.bool "seed changes the triples" true
    (Gen.workloads ~seq:3 ~seed:6 ~samples:50 <> w3);
  check Alcotest.bool "rejects seq 0" true
    (try
       ignore (Gen.workloads ~seq:0 ~seed:5 ~samples:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Minimizer: shrunk counterexample is still violating, 1-minimal      *)
(* ------------------------------------------------------------------ *)

let arb_workload =
  let ops = Array.of_list Gen.alphabet in
  QCheck.make
    ~print:(fun w -> Gen.to_string w)
    QCheck.Gen.(
      list_size (int_range 1 6) (map (fun i -> ops.(i)) (int_bound 36)))

(* A deterministic stand-in for "re-fuzzing finds the bug": the
   workload still contains every op of some fixed witness subset. Any
   subset-membership predicate is monotone under op removal the same
   way a real crash repro is: dropping unrelated ops preserves it. *)
let arb_workload_pair = QCheck.pair arb_workload arb_workload

let prop_minimize =
  QCheck.Test.make ~name:"minimize: still violating and 1-minimal" ~count:200
    arb_workload_pair (fun (w, witness) ->
      let repro w' = List.for_all (fun o -> List.mem o w') witness in
      QCheck.assume (repro w);
      let m = Fuzz.minimize ~repro w in
      if not (repro m) then
        QCheck.Test.fail_reportf "shrunk %S no longer violates"
          (Gen.to_string m)
      else begin
        let n = List.length m in
        let one_minimal =
          n <= 1
          || not
               (List.exists
                  (fun i -> repro (List.filteri (fun j _ -> j <> i) m))
                  (List.init n (fun i -> i)))
        in
        if not one_minimal then
          QCheck.Test.fail_reportf "shrunk %S is not 1-minimal"
            (Gen.to_string m)
        else true
      end)

(* ------------------------------------------------------------------ *)
(* Campaign determinism: j1 ≡ j4, report and artifact bytes            *)
(* ------------------------------------------------------------------ *)

let render r = Format.asprintf "%a" Fuzz.pp_report r

let test_j_determinism () =
  let r1 = Fuzz.campaign ~jobs:1 ~seq:1 Iron_ext3.Ext3.std in
  let r4 = Fuzz.campaign ~jobs:4 ~seq:1 Iron_ext3.Ext3.std in
  check Alcotest.string "report bytes identical" (render r1) (render r4);
  check Alcotest.string "corpus digest identical" r1.Fuzz.fz_corpus
    r4.Fuzz.fz_corpus;
  check Alcotest.string "artifact bytes identical"
    (Report.to_string (Report.of_fuzz r1))
    (Report.to_string (Report.of_fuzz r4));
  (* The dedup actually bites: raw states exceed unique states. *)
  check Alcotest.bool "cross-workload dedup collapses states" true
    (r1.Fuzz.fz_states < r1.Fuzz.fz_states_raw)

(* ------------------------------------------------------------------ *)
(* Fuzzer-found bugs, pinned at the workloads that surfaced them       *)
(* ------------------------------------------------------------------ *)

(* Two bugs the seq-2 campaign surfaced (see DESIGN.md, "Workload
   fuzzing"):
   - reiserfs advanced its journal header in the same barrier epoch as
     the checkpoint home writes, leaving crash states with a truncated
     journal and a stale home block: data loss and sanity panics at
     barrier-honouring states of `creat /d1/f2; sync`;
   - ntfs never replayed its logfile at mount, so a crash between a
     transaction's commit record and its checkpoint home writes lost
     fsynced metadata: `creat /d1/f2; fsync /f0` dropped /d1/f2.
   Property: no barrier-honouring crash state of the pinned workload
   violates the durability oracle. *)
let test_fuzzer_found_barrier_bugs () =
  List.iter
    (fun (name, brand, wstr) ->
      let w =
        List.find
          (fun w -> Gen.to_string w = wstr)
          (Gen.workloads ~seq:2 ~seed:0 ~samples:0)
      in
      let params =
        {
          Memdisk.default_params with
          Memdisk.num_blocks = 2048;
          seed = 61904 lxor 0xb3;
        }
      in
      let base = Explore.make_base ~params ~setup:Gen.setup brand in
      let tr = Gen.tracker () in
      let session =
        Explore.record_session ~params ~base
          ~ops:(fun fsb ~closed_epochs -> Gen.run fsb ~closed_epochs tr w)
          brand
      in
      let specs = Explore.enumerate_session ~seed:4242 ~max_states:400 session in
      let rp = Gen.replay tr in
      List.iter
        (fun spec ->
          if Explore.spec_honest session spec then
            let o =
              Explore.check_spec ~params ~brand ~fsck:false
                ~expects:(Gen.expects rp) session spec
            in
            match o.Explore.viol with
            | None -> ()
            | Some (k, d) ->
                Alcotest.failf "%s [%s] %s: %s: %s" name wstr
                  (Explore.spec_label spec) (Explore.kind_to_string k) d)
        specs)
    [
      ("reiserfs", Iron_reiserfs.Reiserfs.brand, "creat /d1/f2; sync");
      ("ntfs", Iron_ntfs.Ntfs.brand, "creat /d1/f2; fsync /f0");
    ]

let suites =
  [
    ( "fuzz.args",
      [
        Alcotest.test_case "validation table" `Quick test_args_table;
        Alcotest.test_case "CLI exits 2 on bad arguments" `Quick
          test_cli_exit_codes;
      ] );
    ( "fuzz.gen",
      [
        Alcotest.test_case "alphabet" `Quick test_alphabet;
        Alcotest.test_case "bounded workload space" `Quick test_workload_counts;
        qtest ~rand:(Random.State.make [| 4117 |]) prop_minimize;
      ] );
    ( "fuzz.campaign",
      [ Alcotest.test_case "j1 = j4, byte for byte" `Slow test_j_determinism ] );
    ( "fuzz.regressions",
      [
        Alcotest.test_case "checkpoint barriers survive honest crashes" `Quick
          test_fuzzer_found_barrier_bugs;
      ] );
  ]
