(* Tests for the observability layer (lib/obs) and its wiring.

   The layer's contract has three load-bearing parts:

   - the bounded ring keeps exactly the newest [cap] items and counts
     the evictions (qcheck over random cap/length);
   - histogram bucket math: an observation lands in the first bucket
     whose bound is >= v, sums and counts reconcile (qcheck against a
     reference fold);
   - determinism: an observed fingerprint campaign exports
     byte-identical metrics JSONL and Chrome traces for -j 1 and -j 4,
     which is what makes `iron stats` and `--trace` reproducible.

   The two satellite bugfixes are pinned here too: Klog entries carry
   the device's simulated time, and the injector's I/O trace is
   bounded by [trace_cap]. *)

module Obs = Iron_obs.Obs
module Ring = Iron_obs.Ring
module Json = Iron_report.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- ring ------------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create 3 in
  check Alcotest.(list int) "empty" [] (Ring.to_list r);
  Ring.push r 1;
  Ring.push r 2;
  check Alcotest.(list int) "partial" [ 1; 2 ] (Ring.to_list r);
  List.iter (Ring.push r) [ 3; 4; 5 ];
  check Alcotest.(list int) "keeps newest" [ 3; 4; 5 ] (Ring.to_list r);
  check Alcotest.int "dropped" 2 (Ring.dropped r);
  Ring.clear r;
  check Alcotest.(list int) "cleared" [] (Ring.to_list r);
  check Alcotest.int "dropped reset" 0 (Ring.dropped r)

let prop_ring_wraparound =
  QCheck.Test.make ~count:200 ~name:"ring keeps the newest cap items"
    QCheck.(pair (int_range 1 17) (small_list small_int))
    (fun (cap, xs) ->
      let r = Ring.create cap in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let expect =
        List.filteri (fun i _ -> i >= n - cap) xs (* last [cap] items *)
      in
      Ring.to_list r = expect
      && Ring.dropped r = max 0 (n - cap)
      && Ring.length r = min n cap)

(* --- histogram bucket math -------------------------------------------- *)

let bounds = [| 1.0; 5.0; 25.0 |]

(* Reference: first bucket whose upper bound is >= v; overflow last. *)
let ref_bucket v =
  let rec go i =
    if i >= Array.length bounds then Array.length bounds
    else if v <= bounds.(i) then i
    else go (i + 1)
  in
  go 0

let prop_histogram_buckets =
  QCheck.Test.make ~count:200 ~name:"histogram bucket math matches reference"
    QCheck.(small_list (float_bound_exclusive 50.0))
    (fun vs ->
      let t = Obs.create () in
      List.iter (fun v -> Obs.observe ~buckets:bounds t "h" v) vs;
      match List.assoc_opt "h" (Obs.snapshot t) with
      | None -> vs = []
      | Some (Obs.Histogram h) ->
          let expect = Array.make (Array.length bounds + 1) 0 in
          List.iter (fun v -> expect.(ref_bucket v) <- expect.(ref_bucket v) + 1) vs;
          h.Obs.counts = expect
          && h.Obs.count = List.length vs
          && Array.fold_left ( + ) 0 h.Obs.counts = h.Obs.count
          && abs_float (h.Obs.sum -. List.fold_left ( +. ) 0.0 vs) < 1e-9
      | Some _ -> false)

(* --- registry + merge -------------------------------------------------- *)

let test_merge () =
  let mk pairs =
    let t = Obs.create () in
    List.iter (fun (p, n) -> Obs.add t p n) pairs;
    Obs.snapshot t
  in
  let merged = Obs.merge [ mk [ ("a", 1); ("b", 2) ]; mk [ ("b", 3); ("c", 4) ] ] in
  check
    Alcotest.(list (pair string int))
    "counters add, paths sorted"
    [ ("a", 1); ("b", 5); ("c", 4) ]
    (List.map
       (fun (p, v) ->
         match v with Obs.Counter n -> (p, n) | _ -> Alcotest.fail "kind")
       merged)

let test_gauge_merge_max () =
  let t1 = Obs.create () and t2 = Obs.create () in
  Obs.set_gauge t1 "g" 3.0;
  Obs.set_gauge t2 "g" 7.0;
  match Obs.merge [ Obs.snapshot t1; Obs.snapshot t2 ] with
  | [ ("g", Obs.Gauge v) ] -> check (Alcotest.float 0.0) "max wins" 7.0 v
  | _ -> Alcotest.fail "unexpected merge shape"

let test_domain_cells_merge () =
  (* Updates from several domains land in per-domain cells; the
     snapshot must still see every increment. *)
  let t = Obs.create () in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.incr t "c"
            done;
            Obs.release t))
  in
  List.iter Domain.join ds;
  match List.assoc_opt "c" (Obs.snapshot t) with
  | Some (Obs.Counter n) -> check Alcotest.int "all increments seen" 4000 n
  | _ -> Alcotest.fail "counter missing"

(* --- span capture ------------------------------------------------------ *)

let test_span_records () =
  let t = Obs.create () in
  let clock = ref 10.0 in
  Obs.set_clock t (fun () -> !clock);
  let r =
    Obs.span t ~subsystem:"s" ~blocks:(3, 9) "op" (fun () ->
        clock := 14.5;
        42)
  in
  check Alcotest.int "result passes through" 42 r;
  match Obs.spans t with
  | [ sp ] ->
      check Alcotest.string "subsystem" "s" sp.Obs.subsystem;
      check Alcotest.string "name" "op" sp.Obs.name;
      check (Alcotest.float 1e-9) "t0" 10.0 sp.Obs.t0;
      check (Alcotest.float 1e-9) "dur" 4.5 sp.Obs.dur;
      check Alcotest.int "blk_lo" 3 sp.Obs.blk_lo;
      check Alcotest.int "blk_hi" 9 sp.Obs.blk_hi;
      (match List.assoc_opt "s.op" (Obs.snapshot t) with
      | Some (Obs.Counter 1) -> ()
      | _ -> Alcotest.fail "span counter missing")
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_ambient_noop () =
  (* Without an ambient context the _a helpers must be inert. *)
  check Alcotest.bool "no ambient" true (Obs.ambient () = None);
  let r = Obs.span_a ~subsystem:"x" "y" (fun () -> 7) in
  check Alcotest.int "span_a passthrough" 7 r;
  Obs.event_a ~subsystem:"x" "y";
  Obs.incr_a "x.y";
  let t = Obs.create () in
  Obs.with_ambient t (fun () ->
      (match Obs.ambient () with
      | Some t' when t' == t -> ()
      | Some _ | None -> Alcotest.fail "ambient not installed");
      Obs.incr_a "c");
  check Alcotest.bool "restored" true (Obs.ambient () = None);
  match Obs.snapshot t with
  | [ ("c", Obs.Counter 1) ] -> ()
  | _ -> Alcotest.fail "ambient incr lost"

(* --- exporters --------------------------------------------------------- *)

let test_exporters_shape () =
  let t = Obs.create () in
  Obs.incr t "a.b";
  Obs.observe ~buckets:[| 1.0 |] t "a.ms" 0.5;
  let jsonl = Obs.jsonl_of_snapshot (Obs.snapshot t) in
  check Alcotest.bool "counter line" true
    (String.length jsonl > 0
    && String.sub jsonl 0 1 = "{"
    && contains jsonl {|"path":"a.b"|});
  let trace = Obs.chrome_trace [ ("p", Obs.spans t) ] in
  check Alcotest.bool "trace is an array" true
    (String.length trace >= 2 && trace.[0] = '[')

let mk_span ?(seq = 0) ~subsystem ~name () =
  {
    Obs.seq;
    tid = 0;
    subsystem;
    name;
    t0 = float_of_int seq;
    dur = 1.0;
    blk_lo = -1;
    blk_hi = -1;
    instant = false;
  }

let test_dropped_meta () =
  (* A truncated span set must say so: both exporters append a meta
     record carrying the eviction count, and emit nothing extra when
     the ring never filled. *)
  let spans = [ mk_span ~subsystem:"s" ~name:"n" () ] in
  let jsonl0 = Obs.jsonl_of_spans spans in
  check Alcotest.bool "no meta when nothing dropped" false
    (contains jsonl0 "spans_dropped");
  let jsonl = Obs.jsonl_of_spans ~dropped:3 spans in
  check Alcotest.bool "jsonl meta record" true
    (contains jsonl {|{"meta":"spans_dropped","dropped":3}|});
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  check Alcotest.bool "meta record is the last line" true
    (match List.rev lines with
    | last :: _ -> contains last "spans_dropped"
    | [] -> false);
  let trace0 = Obs.chrome_trace [ ("p", spans) ] in
  check Alcotest.bool "no trace meta when nothing dropped" false
    (contains trace0 "spans_dropped");
  let trace =
    Obs.chrome_trace ~dropped:[ ("p", 2); ("q", 0) ]
      [ ("p", spans); ("q", spans) ]
  in
  check Alcotest.bool "trace meta instant for p" true
    (contains trace {|"name":"spans_dropped"|} && contains trace {|"dropped":2|});
  check Alcotest.bool "no meta for the clean process" false
    (contains trace {|"dropped":0|})

(* Adversarial subsystem/name strings: whatever bytes a span carries,
   the exporters must emit parseable JSON that round-trips the string
   (the strict artifact parser is the oracle). *)
let nasty_string =
  QCheck.make ~print:String.escaped
    QCheck.Gen.(
      string_size ~gen:(oneofl
        [ '"'; '\\'; '\n'; '\t'; '\r'; '\x00'; '\x01'; '\x1f'; '/'; 'a'; 'Z'; '0'; ' '; '{'; '['; '}' ])
        (int_range 0 24))

let prop_exporters_escape =
  QCheck.Test.make ~count:200 ~name:"exporters survive adversarial strings"
    (QCheck.pair nasty_string nasty_string)
    (fun (subsystem, name) ->
      let spans = [ mk_span ~subsystem ~name () ] in
      let jsonl = Obs.jsonl_of_spans ~dropped:1 spans in
      List.iter
        (fun line ->
          if line <> "" then
            match Json.of_string line with
            | Ok _ -> ()
            | Error e -> QCheck.Test.fail_reportf "bad JSONL line: %s" e)
        (String.split_on_char '\n' jsonl);
      (* The span line round-trips the exact bytes. *)
      (match Json.of_string (List.hd (String.split_on_char '\n' jsonl)) with
      | Ok j ->
          (match (Json.mem_str "subsystem" j, Json.mem_str "name" j) with
          | Ok s, Ok n ->
              if s <> subsystem || n <> name then
                QCheck.Test.fail_reportf "span strings did not round-trip"
          | _ -> QCheck.Test.fail_reportf "span line lost its strings")
      | Error e -> QCheck.Test.fail_reportf "span line unparseable: %s" e);
      let trace = Obs.chrome_trace ~dropped:[ (name, 1) ] [ (name, spans) ] in
      match Json.of_string trace with
      | Ok (Json.List _) -> true
      | Ok _ -> QCheck.Test.fail_reportf "trace is not a JSON array"
      | Error e -> QCheck.Test.fail_reportf "trace unparseable: %s" e)

(* --- campaign determinism ---------------------------------------------- *)

let observed_campaign jobs =
  let r =
    Iron_core.Driver.fingerprint
      ~faults:[ Iron_core.Taxonomy.Read_failure ]
      ~seed:5 ~jobs ~observe:true Iron_ext3.Ext3.std
  in
  match r.Iron_core.Driver.observed with
  | Some o -> o
  | None -> Alcotest.fail "observe:true produced no observed record"

let test_campaign_metrics_j_independent () =
  let o1 = observed_campaign 1 and o4 = observed_campaign 4 in
  check Alcotest.string "metrics JSONL byte-identical j1 vs j4"
    (Obs.jsonl_of_snapshot o1.Iron_core.Driver.metrics)
    (Obs.jsonl_of_snapshot o4.Iron_core.Driver.metrics);
  check Alcotest.string "chrome trace byte-identical j1 vs j4"
    (Obs.chrome_trace [ ("fs", o1.Iron_core.Driver.spans) ])
    (Obs.chrome_trace [ ("fs", o4.Iron_core.Driver.spans) ])

(* --- satellite bugfixes ------------------------------------------------ *)

let test_klog_simulated_time () =
  let module Klog = Iron_vfs.Klog in
  let clock = ref 0.0 in
  let k = Klog.create ~clock:(fun () -> !clock) () in
  Klog.info k "t" "first";
  clock := 123.5;
  Klog.warn k "t" "second";
  (match Klog.entries k with
  | [ e1; e2 ] ->
      check (Alcotest.float 1e-9) "stamped at log time" 0.0 e1.Klog.time;
      check (Alcotest.float 1e-9) "advances with the clock" 123.5 e2.Klog.time;
      let s = Format.asprintf "%a" Klog.pp_entry e2 in
      check Alcotest.bool "pp shows the timestamp" true
        (contains s "123.500")
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  let k0 = Klog.create () in
  Klog.info k0 "t" "x";
  match Klog.entries k0 with
  | [ e ] -> check (Alcotest.float 1e-9) "default clock is 0" 0.0 e.Klog.time
  | _ -> Alcotest.fail "one entry expected"

let test_fault_trace_bounded () =
  let module Fault = Iron_fault.Fault in
  let disk = Iron_disk.Memdisk.create () in
  let inj = Fault.create ~trace_cap:4 (Iron_disk.Memdisk.dev disk) in
  let dev = Fault.dev inj in
  for b = 0 to 9 do
    ignore (dev.Iron_disk.Dev.read b)
  done;
  let tr = Fault.trace inj in
  check Alcotest.int "trace bounded" 4 (List.length tr);
  check Alcotest.int "evictions counted" 6 (Fault.trace_dropped inj);
  check
    Alcotest.(list int)
    "newest events survive" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Fault.event) -> e.Fault.block) tr);
  Fault.clear_trace inj;
  check Alcotest.int "clear resets drops" 0 (Fault.trace_dropped inj)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "ring basic" `Quick test_ring_basic;
        qtest prop_ring_wraparound;
        qtest prop_histogram_buckets;
        Alcotest.test_case "merge counters" `Quick test_merge;
        Alcotest.test_case "gauge merge max" `Quick test_gauge_merge_max;
        Alcotest.test_case "domain cells merge" `Quick test_domain_cells_merge;
        Alcotest.test_case "span records" `Quick test_span_records;
        Alcotest.test_case "ambient no-op" `Quick test_ambient_noop;
        Alcotest.test_case "exporter shapes" `Quick test_exporters_shape;
        Alcotest.test_case "dropped-span meta records" `Quick test_dropped_meta;
        qtest prop_exporters_escape;
        Alcotest.test_case "campaign metrics j-independent" `Slow
          test_campaign_metrics_j_independent;
        Alcotest.test_case "klog simulated time" `Quick test_klog_simulated_time;
        Alcotest.test_case "fault trace bounded" `Quick test_fault_trace_bounded;
      ] );
  ]
