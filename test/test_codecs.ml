(* Property tests for the ext3 on-disk codecs: layout arithmetic,
   inodes, directory blocks and journal records. Corruption detection
   only works if serialization is exact, so these are load-bearing. *)

module Layout = Iron_ext3.Layout
module Inode = Iron_ext3.Inode
module Dirent = Iron_ext3.Dirent
module Jrec = Iron_jrnl.Jrec
module Sb = Iron_ext3.Sb

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let lay = Layout.compute ~block_size:4096 ~num_blocks:2048

(* --- layout ------------------------------------------------------------ *)

let test_layout_regions_disjoint () =
  (* Every block belongs to at most one region. *)
  let regions b =
    let inside lo len = b >= lo && b < lo + len in
    List.filter Fun.id
      [
        b = 0;
        b = 1;
        inside lay.Layout.journal_start lay.Layout.journal_len;
        inside lay.Layout.groups_start
          (lay.Layout.ngroups * lay.Layout.blocks_per_group);
        inside lay.Layout.cksum_start lay.Layout.cksum_blocks;
        inside lay.Layout.rlog_start lay.Layout.rlog_blocks;
        inside lay.Layout.rmap_start lay.Layout.rmap_blocks;
        inside lay.Layout.replica_start lay.Layout.replica_blocks;
      ]
  in
  for b = 0 to lay.Layout.num_blocks - 1 do
    if List.length (regions b) > 1 then
      Alcotest.failf "block %d is in %d regions" b (List.length (regions b))
  done

let test_layout_replica_targets_have_slots () =
  List.iteri
    (fun i target ->
      match Layout.replica_of lay target with
      | Some r -> check Alcotest.int "slot order" (lay.Layout.replica_start + i) r
      | None -> Alcotest.failf "target %d has no slot" target)
    (Layout.replica_targets lay)

let prop_inode_location_bijective =
  QCheck.Test.make ~name:"inode locations never collide" ~count:300
    QCheck.(pair (int_range 1 896) (int_range 1 896))
    (fun (a, b) ->
      a = b || Layout.inode_location lay a <> Layout.inode_location lay b)

let prop_inode_location_in_itable =
  QCheck.Test.make ~name:"inode locations live in inode tables" ~count:300
    QCheck.(int_range 1 896)
    (fun ino ->
      let blk, off = Layout.inode_location lay ino in
      let g = Layout.group_of_inode lay ino in
      blk >= Layout.itable_block lay g
      && blk < Layout.itable_block lay g + lay.Layout.itable_blocks
      && off mod lay.Layout.inode_size = 0
      && off < lay.Layout.block_size)

let prop_cksum_locations_cover =
  QCheck.Test.make ~name:"checksum slots stay in the checksum region" ~count:300
    QCheck.(int_bound 2047)
    (fun b ->
      let cb, off = Layout.cksum_location lay b in
      cb >= lay.Layout.cksum_start
      && cb < lay.Layout.cksum_start + lay.Layout.cksum_blocks
      && off + 20 <= lay.Layout.block_size)

(* --- superblock -------------------------------------------------------- *)

let test_sb_roundtrip () =
  let sb =
    {
      Sb.block_size = 4096;
      num_blocks = 2048;
      state = Sb.Dirty;
      mount_count = 7;
      free_blocks = 1234;
      free_inodes = 555;
      features = 0b10110;
    }
  in
  let buf = Bytes.make 4096 '\000' in
  Sb.encode sb buf;
  match Sb.decode buf with
  | Ok sb' -> check Alcotest.bool "equal" true (sb = sb')
  | Error _ -> Alcotest.fail "decode failed"

let test_sb_rejects_bad_magic () =
  let buf = Bytes.make 4096 '\xAB' in
  match Sb.decode buf with
  | Error Iron_vfs.Errno.EUCLEAN -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> Alcotest.failf "expected EUCLEAN, got %s" (Iron_vfs.Errno.to_string e)

let test_sb_rejects_impossible_geometry () =
  let sb =
    {
      Sb.block_size = 4096;
      num_blocks = 2048;
      state = Sb.Clean;
      mount_count = 0;
      free_blocks = 999999 (* more free than total *);
      free_inodes = 0;
      features = 0;
    }
  in
  let buf = Bytes.make 4096 '\000' in
  Sb.encode sb buf;
  match Sb.decode buf with
  | Error Iron_vfs.Errno.EUCLEAN -> ()
  | Ok _ -> Alcotest.fail "impossible geometry accepted"
  | Error _ -> ()

(* --- inode ------------------------------------------------------------- *)

let inode_gen =
  QCheck.Gen.(
    let* kindc = int_range 0 3 in
    let* links = int_range 0 100 in
    let* size = int_range 0 10_000_000 in
    let* perms = int_range 0 0o777 in
    let* direct = array_size (return 4) (int_range 0 2047) in
    let* ind = int_range 0 2047 in
    let* target_len = int_range 0 40 in
    let* target = string_size ~gen:(char_range 'a' 'z') (return target_len) in
    return (kindc, links, size, perms, direct, ind, target))

let prop_inode_roundtrip =
  QCheck.Test.make ~name:"inode encode/decode roundtrip" ~count:300
    (QCheck.make inode_gen)
    (fun (kindc, links, size, perms, direct, ind, target) ->
      let kind =
        match kindc with
        | 0 -> Inode.Free
        | 1 -> Inode.Regular
        | 2 -> Inode.Directory
        | _ -> Inode.Symlink
      in
      let i =
        {
          (Inode.empty lay) with
          Inode.kind;
          links;
          size;
          perms;
          direct;
          ind;
          symlink_target = target;
        }
      in
      let buf = Bytes.make 4096 '\000' in
      Inode.encode lay i buf 256;
      let i' = Inode.decode lay buf 256 in
      i = i')

let test_inode_decode_total_on_garbage () =
  (* Any bytes decode to some inode; corruption must not raise. *)
  let rng = Iron_util.Prng.create 5 in
  for _ = 1 to 50 do
    let buf = Bytes.create 4096 in
    Iron_util.Prng.fill_bytes rng buf;
    ignore (Inode.decode lay buf 0)
  done

let test_inode_slots_independent () =
  let buf = Bytes.make 4096 '\000' in
  let a = { (Inode.empty lay) with Inode.kind = Inode.Regular; size = 1 } in
  let b = { (Inode.empty lay) with Inode.kind = Inode.Directory; size = 2 } in
  Inode.encode lay a buf 0;
  Inode.encode lay b buf 128;
  check Alcotest.bool "slot 0" true (Inode.decode lay buf 0 = a);
  check Alcotest.bool "slot 1" true (Inode.decode lay buf 128 = b)

(* --- directory blocks --------------------------------------------------- *)

let prop_dirent_roundtrip =
  QCheck.Test.make ~name:"directory block roundtrip" ~count:200
    QCheck.(
      small_list
        (pair (string_gen_of_size (Gen.int_range 1 20) (Gen.char_range 'a' 'z'))
           (int_range 1 100000)))
    (fun entries ->
      (* Names must be unique for assoc-style comparison. *)
      let entries =
        List.mapi (fun i (n, ino) -> (Printf.sprintf "%s%d" n i, ino)) entries
      in
      let buf = Bytes.make 4096 '\000' in
      if Dirent.fits 4096 entries then (
        ignore (Dirent.encode buf entries);
        Dirent.decode buf = entries)
      else true)

let test_dirent_decode_garbage_safe () =
  let rng = Iron_util.Prng.create 15 in
  for _ = 1 to 50 do
    let buf = Bytes.create 4096 in
    Iron_util.Prng.fill_bytes rng buf;
    ignore (Dirent.decode buf)
  done

let test_dirent_overflow_reports () =
  let big = List.init 400 (fun i -> (String.make 200 'n' ^ string_of_int i, i + 1)) in
  let buf = Bytes.make 4096 '\000' in
  check Alcotest.bool "does not fit" false (Dirent.fits 4096 big);
  check Alcotest.bool "encode reports truncation" false (Dirent.encode buf big)

(* --- journal records ----------------------------------------------------- *)

let test_jsuper_roundtrip () =
  let buf = Bytes.make 4096 '\000' in
  Jrec.encode_jsuper { Jrec.sequence = 42; start = 17 } buf;
  check Alcotest.bool "roundtrip" true
    (Jrec.decode_jsuper buf = Some { Jrec.sequence = 42; start = 17 })

let prop_desc_roundtrip =
  QCheck.Test.make ~name:"journal descriptor roundtrip" ~count:200
    QCheck.(pair (int_range 1 10000) (small_list (int_bound 2047)))
    (fun (seq, tags) ->
      let buf = Bytes.make 4096 '\000' in
      Jrec.encode_desc { Jrec.seq; tags } buf;
      Jrec.decode_desc buf = Some { Jrec.seq; tags })

let test_commit_roundtrip_with_checksum () =
  let d = Iron_util.Sha1.to_raw (Iron_util.Sha1.digest_string "payload") in
  let buf = Bytes.make 4096 '\000' in
  Jrec.encode_commit { Jrec.cseq = 9; checksum = Some d } buf;
  (match Jrec.decode_commit buf with
  | Some { Jrec.cseq = 9; checksum = Some d' } ->
      check Alcotest.string "digest preserved" d d'
  | _ -> Alcotest.fail "roundtrip failed");
  Jrec.encode_commit { Jrec.cseq = 10; checksum = None } buf;
  check Alcotest.bool "no-checksum form" true
    (Jrec.decode_commit buf = Some { Jrec.cseq = 10; checksum = None })

let prop_revoke_roundtrip =
  QCheck.Test.make ~name:"revoke block roundtrip" ~count:200
    QCheck.(pair (int_range 1 10000) (small_list (int_bound 2047)))
    (fun (rseq, revoked) ->
      let buf = Bytes.make 4096 '\000' in
      Jrec.encode_revoke { Jrec.rseq; revoked } buf;
      Jrec.decode_revoke buf = Some { Jrec.rseq; revoked })

let test_magic_confusion_rejected () =
  (* A descriptor must never decode as a commit, etc. *)
  let buf = Bytes.make 4096 '\000' in
  Jrec.encode_desc { Jrec.seq = 1; tags = [ 5 ] } buf;
  check Alcotest.bool "desc is not commit" true (Jrec.decode_commit buf = None);
  check Alcotest.bool "desc is not revoke" true (Jrec.decode_revoke buf = None);
  check Alcotest.bool "desc is not jsuper" true (Jrec.decode_jsuper buf = None)

let suites =
  [
    ( "ext3.layout",
      [
        Alcotest.test_case "regions disjoint" `Quick test_layout_regions_disjoint;
        Alcotest.test_case "replica slots ordered" `Quick
          test_layout_replica_targets_have_slots;
        qtest prop_inode_location_bijective;
        qtest prop_inode_location_in_itable;
        qtest prop_cksum_locations_cover;
      ] );
    ( "ext3.codec",
      [
        Alcotest.test_case "superblock roundtrip" `Quick test_sb_roundtrip;
        Alcotest.test_case "superblock bad magic" `Quick test_sb_rejects_bad_magic;
        Alcotest.test_case "superblock impossible geometry" `Quick
          test_sb_rejects_impossible_geometry;
        qtest prop_inode_roundtrip;
        Alcotest.test_case "inode decode total" `Quick test_inode_decode_total_on_garbage;
        Alcotest.test_case "inode slots independent" `Quick test_inode_slots_independent;
        qtest prop_dirent_roundtrip;
        Alcotest.test_case "dirent garbage safe" `Quick test_dirent_decode_garbage_safe;
        Alcotest.test_case "dirent overflow" `Quick test_dirent_overflow_reports;
      ] );
    ( "ext3.jrec",
      [
        Alcotest.test_case "jsuper roundtrip" `Quick test_jsuper_roundtrip;
        qtest prop_desc_roundtrip;
        Alcotest.test_case "commit with checksum" `Quick
          test_commit_roundtrip_with_checksum;
        qtest prop_revoke_roundtrip;
        Alcotest.test_case "magic confusion rejected" `Quick
          test_magic_confusion_rejected;
      ] );
  ]
