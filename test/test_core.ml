(* Tests for the fingerprinting engine itself: taxonomy, the workload
   suite, the campaign driver and its inference, and the renderers. *)

module Driver = Iron_core.Driver
module Taxonomy = Iron_core.Taxonomy
module Workload = Iron_core.Workload
module Render = Iron_core.Render
module Fs = Iron_vfs.Fs

let check = Alcotest.check

let test_taxonomy_symbols_distinct () =
  let dsyms = List.map Taxonomy.detection_symbol Taxonomy.all_detections in
  check Alcotest.int "detection symbols unique"
    (List.length dsyms)
    (List.length (List.sort_uniq compare dsyms));
  let rsyms = List.map Taxonomy.recovery_symbol Taxonomy.all_recoveries in
  check Alcotest.int "recovery symbols unique"
    (List.length rsyms)
    (List.length (List.sort_uniq compare rsyms))

let test_workload_columns_complete () =
  let cols = List.map (fun w -> w.Workload.col) Workload.all in
  check Alcotest.int "twenty columns" 20 (List.length cols);
  check Alcotest.(list char) "a through t"
    (List.init 20 (fun i -> Char.chr (Char.code 'a' + i)))
    (List.sort compare cols)

let test_fixture_applies_to_every_brand () =
  List.iter
    (fun brand ->
      let d =
        Iron_disk.Memdisk.create
          ~params:
            { Iron_disk.Memdisk.default_params with
              Iron_disk.Memdisk.num_blocks = 2048; seed = 71 }
          ()
      in
      Iron_disk.Memdisk.set_time_model d false;
      let dev = Iron_disk.Memdisk.dev d in
      (match Fs.mkfs brand dev with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s mkfs: %s" (Fs.brand_name brand)
            (Iron_vfs.Errno.to_string e));
      match Fs.mount brand dev with
      | Error e ->
          Alcotest.failf "%s mount: %s" (Fs.brand_name brand)
            (Iron_vfs.Errno.to_string e)
      | Ok (Fs.Boxed ((module F), t) as boxed) -> (
          (match Workload.fixture boxed with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s fixture: %s" (Fs.brand_name brand)
                (Iron_vfs.Errno.to_string e));
          (* Every workload's measured phase must succeed fault-free. *)
          List.iter
            (fun w ->
              match w.Workload.kind with
              | Workload.Ops -> (
                  match w.Workload.run boxed with
                  | Ok () -> ()
                  | Error e ->
                      Alcotest.failf "%s workload %c: %s" (Fs.brand_name brand)
                        w.Workload.col (Iron_vfs.Errno.to_string e))
              | Workload.Mount_op | Workload.Umount_op | Workload.Recovery_op -> ())
            Workload.all;
          match F.unmount t with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s unmount: %s" (Fs.brand_name brand)
                (Iron_vfs.Errno.to_string e)))
    [
      Iron_ext3.Ext3.std; Iron_reiserfs.Reiserfs.brand; Iron_jfs.Jfs.brand;
      Iron_ntfs.Ntfs.brand; Iron_ext3.Ext3.ixt3;
    ]

(* A focused campaign exercising the driver end to end; small enough to
   run in the unit-test budget. *)
let small_report brand faults cols types =
  Driver.fingerprint ~faults
    ~workloads:(List.map Workload.find cols)
    ~block_types:types brand

let test_driver_ext3_read_failure_inode () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Read_failure ] [ 'a' ] [ "inode" ]
  in
  let m = List.hd r.Driver.matrices in
  let c = m.Driver.cell "inode" 'a' in
  check Alcotest.bool "applicable" true c.Driver.applicable;
  check Alcotest.bool "fired" true (c.Driver.fired > 0);
  check Alcotest.bool "error code detected" true
    (List.mem Taxonomy.DErrorCode c.Driver.detection);
  check Alcotest.bool "propagated" true
    (List.mem Taxonomy.RPropagate c.Driver.recovery)

let test_driver_ext3_write_failure_ignored () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Write_failure ] [ 'g' ] [ "inode" ]
  in
  let m = List.hd r.Driver.matrices in
  let c = m.Driver.cell "inode" 'g' in
  check Alcotest.bool "fired" true (c.Driver.fired > 0);
  check Alcotest.(list string) "DZero: the famous ext3 bug"
    [ "DZero" ]
    (List.map Taxonomy.detection_name c.Driver.detection);
  check Alcotest.(list string) "RZero" [ "RZero" ]
    (List.map Taxonomy.recovery_name c.Driver.recovery)

let test_driver_reiserfs_write_failure_panics () =
  let r =
    small_report Iron_reiserfs.Reiserfs.brand [ Taxonomy.Write_failure ] [ 'g' ]
      [ "j-desc" ]
  in
  let m = List.hd r.Driver.matrices in
  let c = m.Driver.cell "j-desc" 'g' in
  check Alcotest.bool "fired" true (c.Driver.fired > 0);
  check Alcotest.bool "RStop (panic)" true (List.mem Taxonomy.RStop c.Driver.recovery)

let test_driver_jfs_retry_detected () =
  let r =
    small_report Iron_jfs.Jfs.brand [ Taxonomy.Read_failure ] [ 'a' ] [ "inode" ]
  in
  let m = List.hd r.Driver.matrices in
  let c = m.Driver.cell "inode" 'a' in
  check Alcotest.bool "RRetry" true (List.mem Taxonomy.RRetry c.Driver.recovery)

let test_driver_ixt3_redundancy_detected () =
  let r =
    small_report Iron_ext3.Ext3.ixt3 [ Taxonomy.Read_failure ] [ 'a' ] [ "inode" ]
  in
  let m = List.hd r.Driver.matrices in
  let c = m.Driver.cell "inode" 'a' in
  check Alcotest.bool "RRedundancy" true
    (List.mem Taxonomy.RRedundancy c.Driver.recovery);
  (* And the workload itself succeeds: the failure is absorbed. *)
  check Alcotest.string "api ok" "ok" c.Driver.note

let test_driver_na_cells_are_gray () =
  (* readlink never touches the block bitmap. *)
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Read_failure ] [ 'e' ] [ "bitmap" ]
  in
  let m = List.hd r.Driver.matrices in
  let c = m.Driver.cell "bitmap" 'e' in
  check Alcotest.bool "not applicable" false c.Driver.applicable

let test_driver_deterministic () =
  let run () =
    let r =
      small_report Iron_ext3.Ext3.std [ Taxonomy.Corruption ] [ 'd' ] [ "data" ]
    in
    let c = (List.hd r.Driver.matrices).Driver.cell "data" 'd' in
    (c.Driver.fired, c.Driver.detection, c.Driver.recovery, c.Driver.note)
  in
  let a = run () and b = run () in
  check Alcotest.bool "identical reruns" true (a = b)

let test_data_corruption_rguess () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Corruption ] [ 'd' ] [ "data" ]
  in
  let c = (List.hd r.Driver.matrices).Driver.cell "data" 'd' in
  check Alcotest.bool "DZero" true (List.mem Taxonomy.DZero c.Driver.detection);
  check Alcotest.bool "RGuess (wrong data returned)" true
    (List.mem Taxonomy.RGuess c.Driver.recovery)

let test_recovery_column_exercises_replay () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Read_failure ] [ 's' ] [ "j-desc" ]
  in
  let c = (List.hd r.Driver.matrices).Driver.cell "j-desc" 's' in
  check Alcotest.bool "journal descriptor read during recovery" true
    c.Driver.applicable

let test_render_produces_grid () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Read_failure ] [ 'a'; 'b' ]
      [ "inode"; "dir" ]
  in
  let out = Format.asprintf "%a" Render.pp_report r in
  check Alcotest.bool "has header" true
    (String.length out > 0
    &&
    let rec find i =
      i + 5 <= String.length out && (String.sub out i 5 = "inode" || find (i + 1))
    in
    find 0)

let test_summarize_counts () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Read_failure ] [ 'a' ] [ "inode" ]
  in
  match Render.summarize [ r ] with
  | [ (name, ds, _) ] ->
      check Alcotest.string "name" "ext3" name;
      let derr = List.assoc Taxonomy.DErrorCode ds in
      check Alcotest.bool "counted DErrorCode" true (derr > 0)
  | _ -> Alcotest.fail "one summary row"

let test_counters () =
  let r =
    small_report Iron_ext3.Ext3.std [ Taxonomy.Read_failure ] [ 'a' ]
      [ "inode"; "dir" ]
  in
  check Alcotest.int "two fired" 2 (Driver.experiments_run r);
  check Alcotest.bool "recovered subset" true
    (Driver.detected_and_recovered r <= Driver.experiments_run r)

(* The determinism contract for the parallel executor: the rendered
   Figure 2/3 matrices and the Table 5 summary must be byte-identical
   no matter how many worker domains ran the campaign.  Only [stats]
   (wall-clock, worker count) may differ between runs. *)
let test_parallel_byte_identical () =
  let render jobs =
    let r = Driver.fingerprint ~jobs Iron_ext3.Ext3.std in
    let report = Format.asprintf "%a" Render.pp_report r in
    let summary =
      Format.asprintf "%a" Render.pp_summary (Render.summarize [ r ])
    in
    (report, summary)
  in
  let r1, s1 = render 1 in
  let r4, s4 = render 4 in
  check Alcotest.string "Figure 2/3 matrices byte-identical (j1 vs j4)" r1 r4;
  check Alcotest.string "Table 5 summary byte-identical (j1 vs j4)" s1 s4

(* Threading a seed through the spec pins the campaign: equal seeds
   render identically, and the seed reaches every job's derived PRNG. *)
let test_seed_threading () =
  let render seed =
    Format.asprintf "%a" Render.pp_report
      (Driver.fingerprint ~seed
         ~faults:[ Taxonomy.Read_failure ]
         ~workloads:[ Workload.find 'a'; Workload.find 'c' ]
         ~block_types:[ "inode"; "dir" ]
         Iron_ext3.Ext3.std)
  in
  check Alcotest.string "same seed, same report" (render 42) (render 42);
  let plan = Iron_core.Experiment.plan ~seed:7 Iron_ext3.Ext3.std in
  let plan' = Iron_core.Experiment.plan ~seed:8 Iron_ext3.Ext3.std in
  let seeds p =
    List.map
      (fun (j : Iron_core.Experiment.job) -> j.Iron_core.Experiment.seed)
      p.Iron_core.Experiment.jobs
  in
  check Alcotest.bool "campaign seed reaches job seeds" true
    (seeds plan <> seeds plan');
  check Alcotest.int "plan covers the whole campaign"
    (Iron_core.Experiment.total plan)
    (List.length plan.Iron_core.Experiment.jobs)

let suites =
  [
    ( "core.taxonomy",
      [
        Alcotest.test_case "symbols distinct" `Quick test_taxonomy_symbols_distinct;
        Alcotest.test_case "twenty workload columns" `Quick
          test_workload_columns_complete;
      ] );
    ( "core.workloads",
      [
        Alcotest.test_case "fixture + singlets on every FS" `Slow
          test_fixture_applies_to_every_brand;
      ] );
    ( "core.driver",
      [
        Alcotest.test_case "ext3: read failure detected+propagated" `Quick
          test_driver_ext3_read_failure_inode;
        Alcotest.test_case "ext3: write failure ignored" `Quick
          test_driver_ext3_write_failure_ignored;
        Alcotest.test_case "reiserfs: write failure panics" `Quick
          test_driver_reiserfs_write_failure_panics;
        Alcotest.test_case "jfs: retry inferred" `Quick test_driver_jfs_retry_detected;
        Alcotest.test_case "ixt3: redundancy inferred" `Quick
          test_driver_ixt3_redundancy_detected;
        Alcotest.test_case "gray cells" `Quick test_driver_na_cells_are_gray;
        Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
        Alcotest.test_case "data corruption = RGuess" `Quick test_data_corruption_rguess;
        Alcotest.test_case "recovery column replays" `Quick
          test_recovery_column_exercises_replay;
        Alcotest.test_case "parallel run byte-identical to serial" `Slow
          test_parallel_byte_identical;
        Alcotest.test_case "seed threads through the spec" `Quick
          test_seed_threading;
      ] );
    ( "core.render",
      [
        Alcotest.test_case "grid renders" `Quick test_render_produces_grid;
        Alcotest.test_case "summary counts" `Quick test_summarize_counts;
        Alcotest.test_case "experiment counters" `Quick test_counters;
      ] );
  ]
