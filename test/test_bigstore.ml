(* The Bigarray block store, differentially against plain-bytes
   semantics.

   [Bigstore] moved the payload bytes of both simulated disks off-heap
   (Memdisk: one slot per block; Cow: a private slab for the overlay)
   behind C memcpy stubs. The contract is that nothing above the store
   can tell: a Memdisk and a Cow device driven through the production
   stack (fault injector + observability wrapper) must behave
   byte-for-byte like an array of [bytes] blocks — reads, zero-copy
   reads, writes, raw peek/poke, snapshot and restore included, with
   armed read/write faults failing identically on both stacks.

   Plus direct unit tests of the slab's safety boundary: every public
   operation validates the slot handle and the byte range, so the
   unsafe blits below can trust their arguments. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Obs = Iron_obs.Obs

let qtest t =
  (* Deterministic: the whole suite replays bit-for-bit. *)
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 7211 |]) t

(* ---- slab unit tests -------------------------------------------------- *)

let roundtrip () =
  let s = Bigstore.create ~chunk_slots:4 ~slot_size:64 () in
  (* Allocate across several chunk boundaries: slot addresses must be
     stable while the slab grows. *)
  let slots = Array.init 23 (fun _ -> Bigstore.alloc s) in
  Array.iteri
    (fun i slot ->
      let b = Bytes.make 64 (Char.chr (i + 33)) in
      Bigstore.write s slot b)
    slots;
  Array.iteri
    (fun i slot ->
      Alcotest.(check bytes)
        (Printf.sprintf "slot %d" i)
        (Bytes.make 64 (Char.chr (i + 33)))
        (Bigstore.copy_out s slot))
    slots;
  Alcotest.(check int) "live" 23 (Bigstore.live s)

let recycle_zeroed () =
  let s = Bigstore.create ~chunk_slots:4 ~slot_size:32 () in
  let a = Bigstore.alloc s in
  Bigstore.write s a (Bytes.make 32 '\xAB');
  Bigstore.free s a;
  (* [alloc_zeroed] must scrub a recycled slot: the previous owner's
     bytes must not leak through. *)
  let b = Bigstore.alloc_zeroed s in
  Alcotest.(check bytes) "scrubbed" (Bytes.make 32 '\000')
    (Bigstore.copy_out s b)

let dead_slots_rejected () =
  let s = Bigstore.create ~chunk_slots:4 ~slot_size:32 () in
  let a = Bigstore.alloc s in
  Bigstore.free s a;
  let rejects name f =
    Alcotest.check_raises name
      (Invalid_argument (Printf.sprintf "Bigstore.%s: dead slot 0" name))
      (fun () -> f ())
  in
  rejects "copy_out" (fun () -> ignore (Bigstore.copy_out s a));
  rejects "write" (fun () -> Bigstore.write s a (Bytes.create 32));
  rejects "free" (fun () -> Bigstore.free s a);
  (* Never-allocated and out-of-range handles are just as dead. *)
  Alcotest.check_raises "never allocated"
    (Invalid_argument "Bigstore.copy_out: dead slot 7") (fun () ->
      ignore (Bigstore.copy_out s 7));
  Alcotest.check_raises "negative"
    (Invalid_argument "Bigstore.copy_out: dead slot -1") (fun () ->
      ignore (Bigstore.copy_out s (-1)))

let ranges_checked () =
  let s = Bigstore.create ~chunk_slots:4 ~slot_size:32 () in
  let a = Bigstore.alloc s in
  Alcotest.check_raises "write size"
    (Invalid_argument "Bigstore.write: buffer size") (fun () ->
      Bigstore.write s a (Bytes.create 31));
  Alcotest.check_raises "read_into size"
    (Invalid_argument "Bigstore.read_into: buffer size") (fun () ->
      Bigstore.read_into s a (Bytes.create 33));
  Alcotest.check_raises "write_sub over"
    (Invalid_argument "Bigstore.write_sub: range") (fun () ->
      Bigstore.write_sub s a (Bytes.create 64) 33);
  (* A legal partial write leaves the slot's tail intact. *)
  Bigstore.write s a (Bytes.make 32 '\x55');
  Bigstore.write_sub s a (Bytes.make 5 '\xFF') 5;
  let got = Bigstore.copy_out s a in
  Alcotest.(check bytes) "spliced"
    (Bytes.cat (Bytes.make 5 '\xFF') (Bytes.make 27 '\x55'))
    got

(* ---- differential: both devices vs plain bytes ------------------------ *)

type op =
  | Write of int * int (* block selector, payload seed *)
  | Read of int
  | Read_into of int
  | Peek of int
  | Poke of int * int * int (* block, payload seed, length-ish *)
  | Arm_fail_read of int
  | Arm_fail_write of int
  | Clear_faults
  | Snapshot
  | Restore of int (* selector into saved snapshots *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun b s -> Write (b, s)) (int_bound 70) (int_bound 10_000));
        (4, map (fun b -> Read b) (int_bound 70));
        (4, map (fun b -> Read_into b) (int_bound 70));
        (2, map (fun b -> Peek b) (int_bound 63));
        ( 2,
          map3
            (fun b s l -> Poke (b, s, l))
            (int_bound 63) (int_bound 10_000) (int_bound 80) );
        (2, map (fun b -> Arm_fail_read b) (int_bound 63));
        (2, map (fun b -> Arm_fail_write b) (int_bound 63));
        (2, return Clear_faults);
        (2, return Snapshot);
        (2, map (fun i -> Restore i) (int_bound 10));
      ])

let print_op = function
  | Write (b, s) -> Printf.sprintf "Write(%d,%d)" b s
  | Read b -> Printf.sprintf "Read(%d)" b
  | Read_into b -> Printf.sprintf "Read_into(%d)" b
  | Peek b -> Printf.sprintf "Peek(%d)" b
  | Poke (b, s, l) -> Printf.sprintf "Poke(%d,%d,%d)" b s l
  | Arm_fail_read b -> Printf.sprintf "Arm_fail_read(%d)" b
  | Arm_fail_write b -> Printf.sprintf "Arm_fail_write(%d)" b
  | Clear_faults -> "Clear_faults"
  | Snapshot -> "Snapshot"
  | Restore i -> Printf.sprintf "Restore(%d)" i

let num_blocks = 64
let block_size = 512

let payload seed =
  let b = Bytes.create block_size in
  let st = ref seed in
  for i = 0 to block_size - 1 do
    st := (!st * 1103515245) + 12345;
    Bytes.set b i (Char.chr ((!st lsr 16) land 0xff))
  done;
  b

let run_case ops =
  let params =
    { Memdisk.default_params with Memdisk.num_blocks; block_size; seed = 7 }
  in
  let md = Memdisk.create ~params () in
  Memdisk.set_time_model md false;
  let cd = Cow.create ~params () in
  Cow.set_time_model cd false;
  (* The production stack above each store: injector, then the
     observability wrapper. *)
  let obs = Obs.create () in
  let m_inj = Fault.create ~obs (Memdisk.dev md) in
  let c_inj = Fault.create ~obs (Cow.dev cd) in
  let m_dev = Dev.observe obs (Fault.dev m_inj) in
  let c_dev = Dev.observe obs (Fault.dev c_inj) in
  (* The reference: block number -> bytes, no cleverness. *)
  let model = Array.init num_blocks (fun _ -> Bytes.make block_size '\000') in
  let saved = ref [] (* (image, deep copy of model) *) in
  let fail why = QCheck.Test.fail_reportf "%s" why in
  let check_same what a b = if not (a = b) then fail (what ^ ": stacks disagree") in
  let check_block what b =
    if b >= 0 && b < num_blocks then begin
      let m = Memdisk.peek md b and c = Cow.peek cd b in
      if not (Bytes.equal m (model.(b))) then
        fail (Printf.sprintf "%s: memdisk block %d diverged" what b);
      if not (Bytes.equal c (model.(b))) then
        fail (Printf.sprintf "%s: cow block %d diverged" what b)
    end
  in
  let check_all what =
    for b = 0 to num_blocks - 1 do
      check_block what b
    done
  in
  let apply op =
    match op with
    | Write (b, s) -> (
        let data = payload s in
        let rm = m_dev.Dev.write b data and rc = c_dev.Dev.write b data in
        check_same "write result" rm rc;
        (match rm with Ok () -> Bytes.blit data 0 model.(b) 0 block_size | Error _ -> ());
        check_block "write" b)
    | Read b -> (
        let rm = m_dev.Dev.read b and rc = c_dev.Dev.read b in
        match (rm, rc) with
        | Ok dm, Ok dc ->
            if not (Bytes.equal dm dc) then fail "read: stacks disagree";
            if not (Bytes.equal dm model.(b)) then fail "read: diverged from model"
        | Error em, Error ec -> check_same "read error" em ec
        | _ -> fail "read: one stack failed, the other did not")
    | Read_into b -> (
        let bm = Bytes.create block_size and bc = Bytes.create block_size in
        let rm = m_dev.Dev.read_into b bm and rc = c_dev.Dev.read_into b bc in
        check_same "read_into result" rm rc;
        match rm with
        | Ok () ->
            if not (Bytes.equal bm bc) then fail "read_into: stacks disagree";
            if not (Bytes.equal bm model.(b)) then
              fail "read_into: diverged from model"
        | Error _ -> ())
    | Peek b -> check_block "peek" b
    | Poke (b, s, l) ->
        (* Raw partial write under the fault layer's feet; both devices
           clamp to the block size, the model does the same. *)
        let l = min l block_size in
        let data = Bytes.sub (payload s) 0 l in
        Memdisk.poke md b data;
        Cow.poke cd b data;
        Bytes.blit data 0 model.(b) 0 l;
        check_block "poke" b
    | Arm_fail_read b ->
        ignore (Fault.arm m_inj (Fault.rule (Fault.Block b) Fault.Fail_read));
        ignore (Fault.arm c_inj (Fault.rule (Fault.Block b) Fault.Fail_read))
    | Arm_fail_write b ->
        ignore (Fault.arm m_inj (Fault.rule (Fault.Block b) Fault.Fail_write));
        ignore (Fault.arm c_inj (Fault.rule (Fault.Block b) Fault.Fail_write))
    | Clear_faults ->
        Fault.disarm_all m_inj;
        Fault.disarm_all c_inj
    | Snapshot ->
        (* Alternate which store produces the frozen image — they are
           interchangeable by contract. *)
        let img =
          if List.length !saved mod 2 = 0 then Cow.snapshot cd
          else Memdisk.snapshot md
        in
        saved := (img, Array.map Bytes.copy model) :: !saved;
        check_all "snapshot"
    | Restore i -> (
        match !saved with
        | [] -> ()
        | l ->
            let img, blocks = List.nth l (i mod List.length l) in
            Memdisk.restore md img;
            Cow.restore cd img;
            Array.iteri
              (fun b data -> Bytes.blit data 0 model.(b) 0 block_size)
              blocks;
            check_all "restore")
  in
  List.iter apply ops;
  check_all "final";
  true

let differential =
  QCheck.Test.make ~name:"bigstore devices = bytes semantics" ~count:60
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map print_op ops))
       QCheck.Gen.(list_size (int_range 30 120) op_gen))
    run_case

let suites =
  [
    ( "bigstore",
      [
        Alcotest.test_case "slab roundtrip across chunks" `Quick roundtrip;
        Alcotest.test_case "recycled slots are scrubbed" `Quick recycle_zeroed;
        Alcotest.test_case "dead slots rejected" `Quick dead_slots_rejected;
        Alcotest.test_case "byte ranges checked" `Quick ranges_checked;
        qtest differential;
      ] );
  ]
