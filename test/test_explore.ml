(* The crash-state explorer and its write-log recorder.

   The wlog suite pins the recorder's contract: epochs delimited by
   effective syncs, private data copies, failed writes never logged,
   and — the differential check — with recording off the device is
   invisible: a fault-injector tracer below it sees a byte-identical
   request stream and the final disk image matches a run without the
   recorder in the stack.

   The explore suite is the end-to-end story: ext3 without
   transactional checksums replays reordered commits as garbage
   (violations), ixt3 detects the mismatch and refuses (zero
   violations, Tc detections), and the report is a pure function of
   the seed — the worker count cannot change it. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Wlog = Iron_crash.Wlog
module Explore = Iron_crash.Explore

let check = Alcotest.check

let params = { Memdisk.default_params with Memdisk.num_blocks = 512; seed = 21 }

let make () =
  let d = Memdisk.create ~params () in
  Memdisk.set_time_model d false;
  let w = Wlog.create (Memdisk.dev d) in
  (d, w, Wlog.dev w)

let block dev c = Bytes.make dev.Dev.block_size c

(* --- wlog --------------------------------------------------------------- *)

let test_epoch_accounting () =
  let _, w, dev = make () in
  Wlog.set_recording w true;
  Dev.write_exn dev 1 (block dev 'a');
  Dev.write_exn dev 2 (block dev 'b');
  (match dev.Dev.sync () with Ok () -> () | Error _ -> Alcotest.fail "sync");
  (* Back-to-back syncs must not mint empty epochs. *)
  (match dev.Dev.sync () with Ok () -> () | Error _ -> Alcotest.fail "sync");
  (match dev.Dev.sync () with Ok () -> () | Error _ -> Alcotest.fail "sync");
  Dev.write_exn dev 1 (block dev 'c');
  check Alcotest.int "one closed epoch" 1 (Wlog.epochs w);
  check Alcotest.int "three writes" 3 (Wlog.length w);
  let e = Wlog.entries w in
  check Alcotest.int "first write epoch 0" 0 e.(0).Wlog.w_epoch;
  check Alcotest.int "post-sync write epoch 1" 1 e.(2).Wlog.w_epoch;
  check Alcotest.int "seq numbers in issue order" 2 e.(2).Wlog.w_seq;
  Wlog.clear w;
  check Alcotest.int "clear drops the log" 0 (Wlog.length w);
  check Alcotest.int "clear resets epochs" 0 (Wlog.epochs w)

let test_private_copies () =
  let _, w, dev = make () in
  Wlog.set_recording w true;
  let buf = block dev 'x' in
  Dev.write_exn dev 3 buf;
  Bytes.fill buf 0 (Bytes.length buf) 'y';
  let e = Wlog.entries w in
  check Alcotest.bytes "log holds a frozen copy" (block dev 'x')
    e.(0).Wlog.w_data

let test_failed_writes_not_recorded () =
  let d = Memdisk.create ~params () in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  ignore (Fault.arm inj (Fault.rule (Fault.Block 7) Fault.Fail_write));
  let w = Wlog.create (Fault.dev inj) in
  let dev = Wlog.dev w in
  Wlog.set_recording w true;
  (match dev.Dev.write 7 (block dev 'z') with
  | Error Dev.Eio -> ()
  | _ -> Alcotest.fail "expected the injected write failure");
  Dev.write_exn dev 8 (block dev 'k');
  check Alcotest.int "only the successful write is logged" 1 (Wlog.length w);
  check Alcotest.int "and it is block 8" 8 (Wlog.entries w).(0).Wlog.w_block

let test_recording_off_logs_nothing () =
  let _, w, dev = make () in
  Dev.write_exn dev 1 (block dev 'a');
  (match dev.Dev.sync () with Ok () -> () | Error _ -> Alcotest.fail "sync");
  check Alcotest.int "nothing logged" 0 (Wlog.length w);
  check Alcotest.int "no epochs" 0 (Wlog.epochs w)

(* The differential: mount ext3 and run the standard fixture twice on
   identical disks — once with the (non-recording) wlog in the stack,
   once without. A tracing fault injector below both must observe the
   same request stream, and the final images must match byte for
   byte. *)
let test_invisible_when_off () =
  let run ~with_wlog =
    let d = Memdisk.create ~params () in
    Memdisk.set_time_model d false;
    let inj = Fault.create (Memdisk.dev d) in
    let below = Fault.dev inj in
    let dev =
      if with_wlog then Wlog.dev (Wlog.create below) else below
    in
    (match Fs.mkfs Iron_ext3.Ext3.std dev with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "mkfs");
    (match Fs.mount Iron_ext3.Ext3.std dev with
    | Ok (Fs.Boxed ((module F), t) as boxed) ->
        (match Iron_core.Workload.fixture boxed with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "fixture");
        (match F.sync t with Ok () -> () | Error _ -> Alcotest.fail "sync");
        ignore (F.unmount t)
    | Error _ -> Alcotest.fail "mount");
    (Fault.trace inj, List.init params.Memdisk.num_blocks (Memdisk.peek d))
  in
  let trace_ref, image_ref = run ~with_wlog:false in
  let trace_w, image_w = run ~with_wlog:true in
  check Alcotest.int "same number of device requests" (List.length trace_ref)
    (List.length trace_w);
  check Alcotest.bool "request streams identical" true (trace_ref = trace_w);
  check Alcotest.bool "final images identical" true
    (List.for_all2 Bytes.equal image_ref image_w)

(* --- explore ------------------------------------------------------------ *)

let test_ext3_vs_ixt3 () =
  (* The paper's §6.1 story, end to end: a reorder window that keeps
     the commit block but drops journal payload makes vanilla ext3
     replay stale bytes over live metadata; ixt3's transactional
     checksum spots the mismatch and refuses the transaction. *)
  let e3 = Explore.explore ~jobs:2 ~max_states:400 Iron_ext3.Ext3.std in
  let ix = Explore.explore ~jobs:2 ~max_states:400 Iron_ext3.Ext3.ixt3 in
  check Alcotest.bool "hundreds of distinct states (ext3)" true (e3.Explore.states >= 300);
  check Alcotest.bool "hundreds of distinct states (ixt3)" true (ix.Explore.states >= 300);
  check Alcotest.bool "ext3 has crash-consistency violations" true
    (e3.Explore.violations <> []);
  check Alcotest.int "ext3 has no Tc to detect with" 0 e3.Explore.tc_detected;
  check Alcotest.int "ixt3 survives every crash state" 0
    (List.length ix.Explore.violations);
  check Alcotest.bool "ixt3's Tc refused reordered commits" true
    (ix.Explore.tc_detected >= 1)

let test_checkpoint_tail_advance () =
  (* Regression (found by the B3 fuzzer): the journal must not advance
     its tail — write the cleaned superblock — in the same barrier
     epoch as its checkpoint in-place writes. A crash that persists
     the superblock while dropping a checkpoint write would have no
     replay path: the log says clean, the home location is stale.
     Property: every barrier-honouring crash state (an epoch window,
     not the lying-cache "all" window) with E >= 1 recovers
     fsck-clean. *)
  List.iter
    (fun (name, brand) ->
      let params =
        { Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 99 }
      in
      let base = Explore.make_base ~params ~setup:(fun _ -> ()) brand in
      let session =
        Explore.record_session ~params ~base
          ~ops:(fun (Fs.Boxed ((module F), t)) ~closed_epochs:_ ->
            (match F.creat t "/victim" with
            | Ok fd -> ignore (F.close t fd)
            | Error _ -> Alcotest.fail "creat /victim");
            match F.sync t with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "sync")
          brand
      in
      let specs = Explore.enumerate_session ~seed:5 ~max_states:400 session in
      let expects ~epoch:_ = [] in
      List.iter
        (fun spec ->
          let label = Explore.spec_label spec in
          if String.length label > 0 && label.[0] = 'e'
             && Explore.spec_epoch session spec >= 1
          then
            let o =
              Explore.check_spec ~params ~brand ~fsck:true ~expects session spec
            in
            match o.Explore.viol with
            | None -> ()
            | Some (k, d) ->
                Alcotest.failf "%s: %s: %s: %s" name (Explore.spec_label spec)
                  (Explore.kind_to_string k) d)
        specs)
    [ ("ext3", Iron_ext3.Ext3.std); ("ixt3", Iron_ext3.Ext3.ixt3) ]

let test_jobs_deterministic () =
  (* Every journaling brand, including the ext3 commit-mode variants:
     exploring with one worker and with three must produce the same
     report, violation for violation. *)
  List.iter
    (fun (name, brand) ->
      let r1 = Explore.explore ~jobs:1 ~max_states:100 brand in
      let r3 = Explore.explore ~jobs:3 ~max_states:100 brand in
      check Alcotest.bool (name ^ ": report is a pure function of the seed")
        true (r1 = r3);
      check Alcotest.bool (name ^ ": states were explored") true
        (r1.Explore.states > 0))
    [
      ("ext3", Iron_ext3.Ext3.std);
      ("ixt3", Iron_ext3.Ext3.ixt3);
      ("ext3-writeback", Iron_ext3.Modes.writeback);
      ("ext3-data", Iron_ext3.Modes.data);
      ("jfs", Iron_jfs.Jfs.brand);
      ("reiserfs", Iron_reiserfs.Reiserfs.brand);
    ]

(* --- forensics ---------------------------------------------------------- *)

let test_forensics_attribution () =
  (* The §6.1 causal story, minimized: ext3's violations come from a
     journal payload (or commit) write that the reorder window dropped
     while the commit record persisted — and the chain names the
     transaction and epoch. *)
  let r = Explore.explore ~max_states:300 ~forensics:true Iron_ext3.Ext3.std in
  check Alcotest.bool "violations found" true (r.Explore.violations <> []);
  check Alcotest.int "one chain per violation"
    (List.length r.Explore.violations)
    (List.length r.Explore.chains);
  check Alcotest.int "full provenance log kept" r.Explore.log_len
    (List.length r.Explore.log);
  check Alcotest.bool "every chain has culprits" true
    (List.for_all (fun c -> c.Explore.ch_culprits <> []) r.Explore.chains);
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  check Alcotest.bool "some chain blames an orphaned commit record" true
    (List.exists
       (fun c -> contains ~sub:"commit record of txn" c.Explore.ch_summary)
       r.Explore.chains);
  check Alcotest.bool "some culprit is a journal payload write" true
    (List.exists
       (fun c ->
         List.exists (fun cu -> cu.Explore.cu_role = "payload") c.Explore.ch_culprits)
       r.Explore.chains);
  (* Culprit seqs point into the recorded log and carry its provenance. *)
  List.iter
    (fun c ->
      List.iter
        (fun cu ->
          check Alcotest.bool "culprit seq in log range" true
            (cu.Explore.cu_first_seq >= 0 && cu.Explore.cu_first_seq < r.Explore.log_len);
          let l = List.nth r.Explore.log cu.Explore.cu_first_seq in
          check Alcotest.int "culprit block matches log" cu.Explore.cu_block
            l.Explore.lg_block;
          check Alcotest.int "culprit epoch matches log" cu.Explore.cu_epoch
            l.Explore.lg_epoch)
        c.Explore.ch_culprits)
    r.Explore.chains

let test_forensics_does_not_perturb () =
  (* The forensics pass is a pure observer: the violation set (what the
     crash goldens pin) is byte-identical with it on or off, and ixt3
     still survives every state — zero chains. *)
  let off = Explore.explore ~max_states:200 Iron_ext3.Ext3.std in
  let on = Explore.explore ~max_states:200 ~forensics:true Iron_ext3.Ext3.std in
  check Alcotest.bool "same violations with forensics on" true
    (off.Explore.violations = on.Explore.violations
    && off.Explore.states = on.Explore.states
    && off.Explore.tc_detected = on.Explore.tc_detected);
  check Alcotest.bool "forensics off keeps no chains or log" true
    (off.Explore.chains = [] && off.Explore.log = []);
  let ix = Explore.explore ~max_states:200 ~forensics:true Iron_ext3.Ext3.ixt3 in
  check Alcotest.int "ixt3: no violations, no chains" 0
    (List.length ix.Explore.chains);
  check Alcotest.bool "ixt3: provenance log still recorded" true
    (ix.Explore.log <> [])

let test_forensics_jobs_deterministic () =
  (* Chains, culprits and the provenance log — and therefore the
     forensics artifact bytes — are a pure function of the seed. *)
  let r1 =
    Explore.explore ~jobs:1 ~max_states:200 ~forensics:true Iron_ext3.Ext3.std
  in
  let r3 =
    Explore.explore ~jobs:3 ~max_states:200 ~forensics:true Iron_ext3.Ext3.std
  in
  check Alcotest.bool "forensics report is a pure function of the seed" true
    (r1 = r3);
  check Alcotest.bool "chains computed" true (r1.Explore.chains <> []);
  let bytes r =
    Iron_report.Report.to_string
      (Iron_report.Report.of_forensics ~seed:7 ~max_states:200 r)
  in
  check Alcotest.string "artifact bytes identical across -j" (bytes r1)
    (bytes r3)

let suites =
  [
    ( "crash.wlog",
      [
        Alcotest.test_case "epoch accounting" `Quick test_epoch_accounting;
        Alcotest.test_case "private data copies" `Quick test_private_copies;
        Alcotest.test_case "failed writes not recorded" `Quick
          test_failed_writes_not_recorded;
        Alcotest.test_case "recording off logs nothing" `Quick
          test_recording_off_logs_nothing;
        Alcotest.test_case "invisible when off (differential)" `Quick
          test_invisible_when_off;
      ] );
    ( "crash.explore",
      [
        Alcotest.test_case "ext3 corrupts, ixt3 detects (Tc)" `Slow
          test_ext3_vs_ixt3;
        Alcotest.test_case "-j cannot change the report" `Slow
          test_jobs_deterministic;
        Alcotest.test_case "checkpoint precedes the log-tail advance" `Quick
          test_checkpoint_tail_advance;
      ] );
    ( "crash.forensics",
      [
        Alcotest.test_case "violations attribute to culprit writes" `Slow
          test_forensics_attribution;
        Alcotest.test_case "forensics is a pure observer" `Slow
          test_forensics_does_not_perturb;
        Alcotest.test_case "-j cannot change chains or artifact bytes" `Slow
          test_forensics_jobs_deterministic;
      ] );
  ]
