(* Refinement harness for the typed journal core (lib/jrnl).

   Every brand built on the journal functor is driven with random op
   sequences while an abstract spec-state — a path -> contents map plus
   a directory set — is advanced alongside it, errno-aware: the spec
   moves only when the file system reports success. Agreement is then
   checked three ways:

   - fault-free: live state, and again across a clean unmount/remount
     (a clean unmount checkpoints, so even writeback mode must agree on
     contents);
   - across a crash (remount with no unmount): the required agreement
     depends on the commit policy. After [sync] every mode checkpoints,
     so contents must agree everywhere. After only [fsync], ordered
     mode has already written data home and data-journal mode carries
     it in the log — contents must agree — while writeback mode
     guarantees only the journaled metadata (existence and size): the
     paper's writeback data-loss window, §2.1;
   - under injected read/write faults: the paper's end-to-end contract
     (§3) — for files never touched while a fault was armed, a read
     returns the right bytes or an error, never silently wrong data.
     Commits that overlap a fault window forfeit the whole spec (DZero
     brands drop checkpoint errors on the floor, so shared metadata may
     be silently stale), and a documented panic (JFS halts on a journal
     superblock write failure) ends the case.

   The crash-state exploration leg runs lib/crash's explorer over every
   functor-built brand; its durable-file check is the same spec-state
   agreement, applied to every reordered power-cut state. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Obs = Iron_obs.Obs
module Jrnl = Iron_jrnl.Jrnl
module Explore = Iron_crash.Explore

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

(* Every brand whose journal is an instance of the functor core, with
   the commit policy its profile hands to the engine. *)
let functor_brands =
  [
    ("ext3", Iron_ext3.Ext3.std, Iron_ext3.Profile.(ext3.mode));
    ("ixt3", Iron_ext3.Ext3.ixt3, Iron_ext3.Profile.(ixt3.mode));
    ( "ext3-writeback",
      Iron_ext3.Modes.writeback,
      Iron_ext3.Profile.(Iron_ext3.Modes.writeback_profile.mode) );
    ("ext3-data", Iron_ext3.Modes.data, Iron_ext3.Profile.(Iron_ext3.Modes.data_profile.mode));
    (* jfs journals metadata diffs and sends data straight home: ordered
       semantics from the harness's point of view. *)
    ("jfs", Iron_jfs.Jfs.brand, Jrnl.Ordered);
  ]

(* Batched configurations. Group commit and batched checkpointing are
   I/O-scheduling knobs: an eager window flush or a checkpoint
   watermark reorders *when* blocks travel, never *what* a read
   returns. So the same brands with batching dialled away from the
   defaults owe exactly the same refinement — every leg below runs
   over these too, unchanged. *)
let eager_window =
  { Jrnl.group_commit = false; window_blocks = 4; checkpoint_watermark = 0 }

let watermark =
  { Jrnl.group_commit = true; window_blocks = 32; checkpoint_watermark = 3 }

let batched_brands =
  [
    ( "ext3/eager-window",
      Iron_ext3.Ext3.brand Iron_ext3.Profile.{ ext3 with tuning = eager_window },
      Iron_ext3.Profile.(ext3.mode) );
    ( "ixt3/watermark",
      Iron_ext3.Ext3.brand Iron_ext3.Profile.{ ixt3 with tuning = watermark },
      Iron_ext3.Profile.(ixt3.mode) );
    ( "ext3-data/watermark",
      Iron_ext3.Ext3.brand
        Iron_ext3.Profile.{ Iron_ext3.Modes.data_profile with tuning = watermark },
      Iron_ext3.Profile.(Iron_ext3.Modes.data_profile.mode) );
    ( "jfs/eager-window",
      Iron_jfs.Jfs.brand_with ~tuning:eager_window,
      Jrnl.Ordered );
  ]

(* --- op sequences and the spec-state ----------------------------------- *)

let file_paths = [| "/a"; "/b"; "/c"; "/d0/x"; "/d0/y"; "/d1/z" |]
let dir_paths = [| "/d0"; "/d1" |]

type op =
  | Creat of int
  | Write of int * int * int (* file, offset-ish, length-ish *)
  | Mkdir of int
  | Unlink of int
  | Rename of int * int
  | Truncate of int * int
  | Fsync of int
  | Sync
  | Inject_fail of int (* pseudo-random block selector *)
  | Clear_faults

let print_op = function
  | Creat f -> Printf.sprintf "Creat(%d)" f
  | Write (f, o, l) -> Printf.sprintf "Write(%d,%d,%d)" f o l
  | Mkdir d -> Printf.sprintf "Mkdir(%d)" d
  | Unlink f -> Printf.sprintf "Unlink(%d)" f
  | Rename (f, g) -> Printf.sprintf "Rename(%d,%d)" f g
  | Truncate (f, n) -> Printf.sprintf "Truncate(%d,%d)" f n
  | Fsync f -> Printf.sprintf "Fsync(%d)" f
  | Sync -> "Sync"
  | Inject_fail s -> Printf.sprintf "Inject_fail(%d)" s
  | Clear_faults -> "Clear_faults"

let base_ops =
  QCheck.Gen.
    [
      (4, map (fun f -> Creat f) (int_bound 5));
      ( 6,
        map3 (fun f o l -> Write (f, o, l)) (int_bound 5) (int_bound 30)
          (int_bound 19) );
      (3, map (fun d -> Mkdir d) (int_bound 1));
      (2, map (fun f -> Unlink f) (int_bound 5));
      (2, map2 (fun f g -> Rename (f, g)) (int_bound 5) (int_bound 5));
      (2, map2 (fun f n -> Truncate (f, n)) (int_bound 5) (int_bound 19));
      (2, map (fun f -> Fsync f) (int_bound 5));
      (1, return Sync);
    ]

let quiet_gen = QCheck.Gen.frequency base_ops

let faulty_gen =
  QCheck.Gen.frequency
    (base_ops
    @ [
        (3, QCheck.Gen.map (fun s -> Inject_fail s) (QCheck.Gen.int_bound 9999));
        (2, QCheck.Gen.return Clear_faults);
      ])

let ops_arb gen =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 5 40) gen)

let qtest seed t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

type spec = {
  files : (string, string) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
}

let spec_create () = { files = Hashtbl.create 8; dirs = Hashtbl.create 4 }

let splice s off data =
  let size = max (String.length s) (off + String.length data) in
  let b = Bytes.make size '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  Bytes.blit_string data 0 b off (String.length data);
  Bytes.to_string b

let resize s n =
  if String.length s >= n then String.sub s 0 n
  else s ^ String.make (n - String.length s) '\000'

let chunk f off len =
  String.init len (fun i -> Char.chr (33 + ((f * 7 + off + i) mod 90)))

let fresh brand =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 77 }
      ()
  in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  ok (Fs.mkfs brand dev);
  (inj, dev, ok (Fs.mount brand dev))

(* Drive one op list against the mounted FS, advancing the spec on every
   reported success. [strict] is the fault-free contract: an EIO or
   EROFS from any op fails the test on the spot. With faults in play,
   [taint] collects the paths whose state the spec no longer claims and
   [taint_all] forfeits everything (a commit overlapped a fault
   window). *)
let apply_ops (type a) (module F : Fs.S with type t = a) (t : a) ~inj ~spec
    ~strict ~taint ~taint_all ops =
  let armed = ref false in
  let stain p = Hashtbl.replace taint p () in
  let guard name = function
    | Ok _ -> ()
    | Error e ->
        if strict && (e = Errno.EIO || e = Errno.EROFS) then
          Alcotest.failf "fault-free %s returned %s" name (Errno.to_string e)
  in
  List.iter
    (fun op ->
      match op with
      | Inject_fail sel ->
          let b = sel mod 2048 in
          ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read));
          ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_write));
          armed := true
      | Clear_faults ->
          Fault.disarm_all inj;
          armed := false
      | Creat f -> (
          let p = file_paths.(f) in
          if !armed then stain p;
          match F.creat t p with
          | Ok fd ->
              ignore (F.close t fd);
              Hashtbl.replace spec.files p ""
          | Error _ as r ->
              guard "creat" r;
              if not strict then stain p)
      | Mkdir d -> (
          let p = dir_paths.(d) in
          if !armed then stain p;
          match F.mkdir t p with
          | Ok () -> Hashtbl.replace spec.dirs p ()
          | Error _ as r ->
              guard "mkdir" r;
              if not strict then stain p)
      | Unlink f -> (
          let p = file_paths.(f) in
          if !armed then stain p;
          match F.unlink t p with
          | Ok () -> Hashtbl.remove spec.files p
          | Error Errno.ENOENT -> ()
          | Error _ as r ->
              guard "unlink" r;
              if not strict then stain p)
      | Rename (f, g) ->
          let src = file_paths.(f) and dst = file_paths.(g) in
          if src <> dst then begin
            if !armed then begin
              stain src;
              stain dst
            end;
            match F.rename t src dst with
            | Ok () -> (
                match Hashtbl.find_opt spec.files src with
                | Some s ->
                    Hashtbl.remove spec.files src;
                    Hashtbl.replace spec.files dst s
                | None ->
                    if not strict then begin
                      stain src;
                      stain dst
                    end)
            | Error Errno.ENOENT -> ()
            | Error _ as r ->
                guard "rename" r;
                if not strict then begin
                  stain src;
                  stain dst
                end
          end
      | Truncate (f, n) -> (
          let p = file_paths.(f) in
          if !armed then stain p;
          let size = n * 53 in
          match F.truncate t p size with
          | Ok () -> (
              match Hashtbl.find_opt spec.files p with
              | Some s -> Hashtbl.replace spec.files p (resize s size)
              | None -> if not strict then stain p)
          | Error Errno.ENOENT -> ()
          | Error _ as r ->
              guard "truncate" r;
              if not strict then stain p)
      | Write (f, o, l) -> (
          let p = file_paths.(f) in
          if !armed then stain p;
          match F.open_ t p Fs.Rdwr with
          | Error Errno.ENOENT -> ()
          | Error _ as r ->
              guard "open" r;
              if not strict then stain p
          | Ok fd ->
              let off = o * 97 in
              let data = chunk f off (1 + (l * 53)) in
              (match F.write t fd ~off (Bytes.of_string data) with
              | Ok n when n = String.length data -> (
                  match Hashtbl.find_opt spec.files p with
                  | Some s -> Hashtbl.replace spec.files p (splice s off data)
                  | None -> if not strict then stain p)
              | Ok _ ->
                  if strict then Alcotest.failf "fault-free short write on %s" p;
                  stain p
              | Error _ as r ->
                  guard "write" r;
                  if not strict then stain p);
              ignore (F.close t fd))
      | Fsync f -> (
          let p = file_paths.(f) in
          (* A commit flushes shared metadata: running one inside a
             fault window gives up the whole spec (DZero brands lose
             checkpoint writes silently). *)
          if !armed then taint_all := true;
          match F.open_ t p Fs.Rd with
          | Error _ -> ()
          | Ok fd ->
              (match F.fsync t fd with
              | Ok () -> ()
              | Error _ as r ->
                  guard "fsync" r;
                  if not strict then taint_all := true);
              ignore (F.close t fd))
      | Sync -> (
          if !armed then taint_all := true;
          match F.sync t with
          | Ok () -> ()
          | Error _ as r ->
              guard "sync" r;
              if not strict then taint_all := true))
    ops;
  Fault.disarm_all inj

(* Full: stat + exact contents. Shape: the journaled metadata only —
   existence and size (what writeback mode still owes after a crash
   that outran its checkpoint). *)
type strictness = Full | Shape

let agree ~what strictness (Fs.Boxed ((module F), t)) spec =
  Hashtbl.iter
    (fun path contents ->
      match F.stat t path with
      | Error e ->
          Alcotest.failf "%s: %s missing: %s" what path (Errno.to_string e)
      | Ok st ->
          if st.Fs.st_size <> String.length contents then
            Alcotest.failf "%s: %s size %d, spec says %d" what path
              st.Fs.st_size (String.length contents);
          if strictness = Full && String.length contents > 0 then begin
            let fd = ok (F.open_ t path Fs.Rd) in
            let data = ok (F.read t fd ~off:0 ~len:(String.length contents)) in
            ignore (F.close t fd);
            if Bytes.to_string data <> contents then
              Alcotest.failf "%s: %s contents differ from spec" what path
          end)
    spec.files;
  Hashtbl.iter
    (fun path () ->
      match F.stat t path with
      | Ok st when st.Fs.st_kind = Fs.Directory -> ()
      | Ok _ -> Alcotest.failf "%s: %s is not a directory" what path
      | Error e ->
          Alcotest.failf "%s: dir %s missing: %s" what path (Errno.to_string e))
    spec.dirs;
  Array.iter
    (fun path ->
      if not (Hashtbl.mem spec.files path) then
        match F.stat t path with
        | Error Errno.ENOENT -> ()
        | Error e ->
            Alcotest.failf "%s: %s: expected ENOENT, got %s" what path
              (Errno.to_string e)
        | Ok _ -> Alcotest.failf "%s: %s exists but spec says deleted" what path)
    file_paths;
  Array.iter
    (fun path ->
      if not (Hashtbl.mem spec.dirs path) then
        match F.stat t path with
        | Error Errno.ENOENT -> ()
        | Error e ->
            Alcotest.failf "%s: %s: expected ENOENT, got %s" what path
              (Errno.to_string e)
        | Ok _ -> Alcotest.failf "%s: %s exists but spec says absent" what path)
    dir_paths

(* --- leg 1: fault-free, live and across a clean remount ---------------- *)

let prop_quiet name brand =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with the spec-state (fault-free)" name)
    ~count:40 (ops_arb quiet_gen)
    (fun ops ->
      let inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
      let spec = spec_create () in
      let taint = Hashtbl.create 4 and taint_all = ref false in
      apply_ops (module F) t ~inj ~spec ~strict:true ~taint ~taint_all ops;
      agree ~what:(name ^ " live") Full fs spec;
      ok (F.unmount t);
      agree ~what:(name ^ " remounted") Full (ok (Fs.mount brand dev)) spec;
      true)

(* --- leg 2: crash agreement, mode-aware -------------------------------- *)

let prop_crash name brand mode =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with the spec-state across a crash" name)
    ~count:40
    (QCheck.pair (ops_arb quiet_gen) QCheck.bool)
    (fun (ops, sync_barrier) ->
      let inj, dev, (Fs.Boxed ((module F), t)) = fresh brand in
      let spec = spec_create () in
      let taint = Hashtbl.create 4 and taint_all = ref false in
      apply_ops (module F) t ~inj ~spec ~strict:true ~taint ~taint_all ops;
      (* The barrier: sync checkpoints in every mode; fsync only
         commits, which is where the modes come apart. *)
      let checkpointed = sync_barrier || Hashtbl.length spec.files = 0 in
      if checkpointed then ok (F.sync t)
      else begin
        let some =
          Hashtbl.fold (fun p _ acc -> min p acc) spec.files "\xff"
        in
        let fd = ok (F.open_ t some Fs.Rd) in
        ok (F.fsync t fd);
        ignore (F.close t fd)
      end;
      (* Crash: remount with no unmount; recovery replays the log. *)
      let fs2 = ok (Fs.mount brand dev) in
      let strictness =
        if (not checkpointed) && mode = Jrnl.Writeback then Shape else Full
      in
      agree ~what:(name ^ " post-crash") strictness fs2 spec;
      true)

(* --- leg 3: fault injection -------------------------------------------- *)

let prop_faults name brand =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "%s under random faults: untainted files read true or error" name)
    ~count:50 (ops_arb faulty_gen)
    (fun ops ->
      let inj, _dev, (Fs.Boxed ((module F), t)) = fresh brand in
      let spec = spec_create () in
      let taint = Hashtbl.create 8 and taint_all = ref false in
      (try
         apply_ops (module F) t ~inj ~spec ~strict:false ~taint ~taint_all ops;
         if not !taint_all then
           Hashtbl.iter
             (fun path contents ->
               if not (Hashtbl.mem taint path) then
                 match F.stat t path with
                 | Error _ -> () (* detected: acceptable *)
                 | Ok st -> (
                     if st.Fs.st_size <> String.length contents then
                       Alcotest.failf
                         "%s: untainted %s has silently wrong size" name path;
                     if String.length contents > 0 then
                       match F.open_ t path Fs.Rd with
                       | Error _ -> ()
                       | Ok fd ->
                           (match
                              F.read t fd ~off:0
                                ~len:(String.length contents)
                            with
                           | Error _ -> () (* detected: acceptable *)
                           | Ok data ->
                               if Bytes.to_string data <> contents then
                                 Alcotest.failf
                                   "%s: SILENT WRONG DATA in untainted %s"
                                   name path);
                           ignore (F.close t fd)))
             spec.files
       with Klog.Panic _ ->
         (* A documented failure policy (JFS halts when the journal
            superblock write fails); the machine stopped rather than
            lied. *)
         ());
      true)

(* --- leg 4: crash-state exploration over lib/crash --------------------- *)

let t_crash_exploration () =
  List.iter
    (fun (name, brand, mode) ->
      let r = Explore.explore ~jobs:2 ~max_states:200 brand in
      check Alcotest.int
        (name ^ " mounts in every crash state")
        0
        (Explore.count r Explore.Unmountable);
      check Alcotest.int (name ^ " never panics in recovery") 0
        (Explore.count r Explore.Panic);
      if name = "ixt3" then
        check Alcotest.int "ixt3 survives every crash state" 0
          (List.length r.Explore.violations);
      if mode = Jrnl.Writeback then
        check Alcotest.bool
          "writeback loses un-checkpointed data under reordered crashes" true
          (Explore.count r Explore.Data_loss >= 1))
    (functor_brands @ batched_brands)

(* --- directed: the writeback window, data-journal protection ----------- *)

let t_writeback_window () =
  (* The same fsync-then-crash sequence: ordered wrote the data home
     already, data-journal carries it in the log, writeback committed
     only the metadata — the file survives in shape but not in
     content. *)
  let survived brand =
    let _, dev, (Fs.Boxed ((module F), t)) = fresh brand in
    let body = chunk 1 0 3000 in
    let fd = ok (F.creat t "/w") in
    ignore (ok (F.write t fd ~off:0 (Bytes.of_string body)));
    ok (F.fsync t fd);
    ignore (F.close t fd);
    let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
    check Alcotest.int "metadata journaled: size survives" 3000
      (ok (F2.stat t2 "/w")).Fs.st_size;
    match F2.open_ t2 "/w" Fs.Rd with
    | Error _ -> false
    | Ok fd -> (
        match F2.read t2 fd ~off:0 ~len:3000 with
        | Error _ -> false
        | Ok data -> Bytes.to_string data = body)
  in
  check Alcotest.bool "ordered keeps fsync'd data" true
    (survived Iron_ext3.Ext3.std);
  check Alcotest.bool "data-journal keeps fsync'd data" true
    (survived Iron_ext3.Modes.data);
  check Alcotest.bool "writeback loses un-checkpointed data" false
    (survived Iron_ext3.Modes.writeback)

(* --- directed: the batching counters tell the truth -------------------- *)

let t_batch_counters () =
  (* Drive the same little workload under each tuning and read the
     engine's own account of what it did: default tuning coalesces and
     defers, an eager window flushes early, a watermark checkpoints
     between barriers. *)
  let counters brand =
    let obs = Obs.create () in
    let d =
      Memdisk.create
        ~params:
          { Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 55 }
        ()
    in
    Memdisk.set_time_model d false;
    let dev = Dev.observe obs (Memdisk.dev d) in
    Obs.with_ambient obs (fun () ->
        ok (Fs.mkfs brand dev);
        let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
        let fd = ok (F.creat t "/gc") in
        for i = 0 to 7 do
          ignore (ok (F.write t fd ~off:(i * 1024) (Bytes.make 1024 'g')));
          ok (F.fsync t fd)
        done;
        ignore (F.close t fd);
        ok (F.unmount t));
    let n path =
      match List.assoc_opt path (Obs.snapshot obs) with
      | Some (Obs.Counter n) -> n
      | _ -> 0
    in
    ( n "jrnl.group_commit.coalesced",
      n "jrnl.group_commit.window_flush",
      n "jrnl.checkpoint.batched" )
  in
  let coalesced, flushes, _ = counters Iron_ext3.Ext3.std in
  check Alcotest.bool "default tuning coalesces" true (coalesced > 0);
  check Alcotest.int "default tuning never flushes a window early" 0 flushes;
  let _, flushes, _ =
    counters
      (Iron_ext3.Ext3.brand Iron_ext3.Profile.{ ext3 with tuning = eager_window })
  in
  check Alcotest.bool "eager window flushes early" true (flushes > 0);
  let _, _, batched =
    counters
      (Iron_ext3.Ext3.brand Iron_ext3.Profile.{ ext3 with tuning = watermark })
  in
  check Alcotest.bool "watermark checkpoints between barriers" true (batched > 0)

(* --- satellite: unified jrnl spans with device-clock timestamps -------- *)

let journaling_brands =
  [
    ("ext3", Iron_ext3.Ext3.std);
    ("ixt3", Iron_ext3.Ext3.ixt3);
    ("ext3-writeback", Iron_ext3.Modes.writeback);
    ("ext3-data", Iron_ext3.Modes.data);
    ("jfs", Iron_jfs.Jfs.brand);
    ("reiserfs", Iron_reiserfs.Reiserfs.brand);
  ]

let t_spans name brand () =
  let obs = Obs.create () in
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 33 }
      ()
  in
  (* The time model stays ON: span timestamps must come from the device
     clock, and Dev.observe installs it into the context. *)
  let dev = Dev.observe obs (Memdisk.dev d) in
  Obs.with_ambient obs (fun () ->
      ok (Fs.mkfs brand dev);
      let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
      let fd = ok (F.creat t "/span") in
      ignore (ok (F.write t fd ~off:0 (Bytes.of_string "observable")));
      ok (F.fsync t fd);
      ignore (F.close t fd);
      (* Crash-remount: mount replays the journal under a recover span. *)
      let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
      ignore (F2.unmount t2));
  let jrnl n =
    List.filter
      (fun s -> s.Obs.subsystem = "jrnl" && s.Obs.name = n)
      (Obs.spans obs)
  in
  check Alcotest.bool (name ^ " emits jrnl.commit") true (jrnl "commit" <> []);
  check Alcotest.bool (name ^ " emits jrnl.recover") true (jrnl "recover" <> []);
  check Alcotest.bool
    (name ^ " span timestamps carry the device clock")
    true
    (List.exists (fun s -> s.Obs.t0 > 0.) (jrnl "commit" @ jrnl "recover"))

let suites =
  [
    ( "jrnl.refinement",
      List.concat_map
        (fun (name, brand, mode) ->
          [
            qtest 1013 (prop_quiet name brand);
            qtest 2027 (prop_crash name brand mode);
            qtest 3041 (prop_faults name brand);
          ])
        (functor_brands @ batched_brands)
      @ [
          Alcotest.test_case "writeback window vs data-journal" `Quick
            t_writeback_window;
          Alcotest.test_case "batching counters tell the truth" `Quick
            t_batch_counters;
        ] );
    ( "jrnl.crash-exploration",
      [
        Alcotest.test_case "all functor brands, durable-map agreement" `Slow
          t_crash_exploration;
      ] );
    ( "jrnl.obs",
      List.map
        (fun (name, brand) ->
          Alcotest.test_case (name ^ " spans") `Quick (t_spans name brand))
        journaling_brands );
  ]
