(* Differential tests pinning the sparse chunk-indexed device to the
   dense reference implementation, plus the O(touched) scaling claims
   the traffic simulator depends on.

   The contract is "Sparse ≡ Memdisk through the device interface" —
   same data, same errors, same service-time charges, same statistics —
   including under armed faults and the Obs wrapper, checked as qcheck
   properties over random operation sequences. The zero-write
   optimization (a write of zeroes to a still-zero block materializes
   nothing) must be behaviorally invisible; only the footprint
   measurements may see it. *)

open Iron_disk
open Iron_fault

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Small geometry, small chunks, so op sequences cross chunk
   boundaries; the timing model stays ON so clock and seek behaviour
   are part of the comparison. *)
let nb = 48
let chunk = 8

let params seed =
  { Memdisk.default_params with Memdisk.block_size = 512; num_blocks = nb; seed }

let err_str = function
  | Dev.Eio -> "EIO"
  | Dev.Enxio -> "ENXIO"

let res_str = function
  | Ok data -> "ok:" ^ Digest.to_hex (Digest.bytes data)
  | Error e -> "err:" ^ err_str e

let unit_str = function
  | Ok () -> "ok"
  | Error e -> "err:" ^ err_str e

(* --- the operation language ------------------------------------------ *)

(* Write fill 0 is all-zeroes: the sparse zero-skip path runs inside
   the differential comparison, not beside it. *)
type op =
  | Read of int
  | Read_into of int
  | Write of int * int (* block, fill byte; 0 = the zero-skip path *)
  | Bad_write of int
  | Sync
  | Snapshot
  | Restore

let op_gen =
  let open QCheck.Gen in
  let blk = int_range (-2) (nb + 4) in
  frequency
    [
      (4, map (fun b -> Read b) blk);
      (4, map (fun b -> Read_into b) blk);
      (5, map2 (fun b s -> Write (b, s)) blk (int_bound 255));
      (2, map (fun b -> Write (b, 0)) blk);
      (1, map (fun b -> Bad_write b) blk);
      (1, return Sync);
      (2, return Snapshot);
      (2, return Restore);
    ]

let op_print = function
  | Read b -> Printf.sprintf "Read %d" b
  | Read_into b -> Printf.sprintf "Read_into %d" b
  | Write (b, s) -> Printf.sprintf "Write (%d, %d)" b s
  | Bad_write b -> Printf.sprintf "Bad_write %d" b
  | Sync -> "Sync"
  | Snapshot -> "Snapshot"
  | Restore -> "Restore"

let ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let fill seed = Bytes.make 512 (Char.chr (seed land 0xff))

let step dev ~snap ~restore = function
  | Read b -> res_str (dev.Dev.read b)
  | Read_into b ->
      let buf = Bytes.create dev.Dev.block_size in
      let r = dev.Dev.read_into b buf in
      (match r with
      | Ok () -> "ok:" ^ Digest.to_hex (Digest.bytes buf)
      | Error e -> "err:" ^ err_str e)
  | Write (b, s) -> unit_str (dev.Dev.write b (fill s))
  | Bad_write b -> unit_str (dev.Dev.write b (Bytes.create 7))
  | Sync -> unit_str (dev.Dev.sync ())
  | Snapshot ->
      snap ();
      "snap"
  | Restore ->
      restore ();
      "restore"

let stats_str (s : Memdisk.stats) now =
  Printf.sprintf "r=%d w=%d s=%d seeks=%d ms=%.6f now=%.6f" s.Memdisk.reads
    s.writes s.syncs s.seeks s.elapsed_ms now

let prop_sparse_equiv_memdisk =
  QCheck.Test.make ~name:"Sparse ≡ Memdisk under random ops" ~count:150
    QCheck.(pair (int_bound 1000) ops_arb)
    (fun (seed, ops) ->
      let flat = Memdisk.create ~params:(params seed) () in
      let sp = Sparse.create ~params:(params seed) ~chunk_blocks:chunk () in
      let fdev = Memdisk.dev flat and sdev = Sparse.dev sp in
      let fsnap = ref (Memdisk.snapshot flat) in
      let ssnap = ref (Sparse.snapshot sp) in
      List.for_all
        (fun op ->
          let a =
            step fdev
              ~snap:(fun () -> fsnap := Memdisk.snapshot flat)
              ~restore:(fun () -> Memdisk.restore flat !fsnap)
              op
          in
          let b =
            step sdev
              ~snap:(fun () -> ssnap := Sparse.snapshot sp)
              ~restore:(fun () -> Sparse.restore sp !ssnap)
              op
          in
          let sa = stats_str (Memdisk.stats flat) (fdev.Dev.now ()) in
          let sb = stats_str (Sparse.stats sp) (sdev.Dev.now ()) in
          if a <> b then
            QCheck.Test.fail_reportf "op %s: flat %s vs sparse %s" (op_print op)
              a b
          else if sa <> sb then
            QCheck.Test.fail_reportf "op %s: stats %s vs %s" (op_print op) sa sb
          else true)
        ops
      && List.for_all
           (fun b -> Bytes.equal (Memdisk.peek flat b) (Sparse.peek sp b))
           (List.init nb Fun.id))

(* --- equivalence through Fault + Obs under armed rules ---------------- *)

let event_str (e : Fault.event) = Format.asprintf "%a" Fault.pp_event e

(* Twin stacks over identical rules; one on Memdisk, one on Sparse.
   Data, errors, the injector's event trace and the metrics registry
   must be indistinguishable under mixed reads and writes. *)
let build_faulty dev_of create seed =
  let d = create seed in
  let obs = Iron_obs.Obs.create () in
  let inj = Fault.create ~obs (dev_of d) in
  ignore (Fault.arm inj (Fault.rule (Fault.Block 3) Fault.Fail_read));
  ignore
    (Fault.arm inj
       (Fault.rule
          ~persistence:(Fault.Transient 2)
          (Fault.Block 5)
          (Fault.Corrupt (Fault.Noise 42))));
  ignore
    (Fault.arm inj
       (Fault.rule (Fault.Range (9, 11)) (Fault.Corrupt Fault.Byte_shift)));
  ignore (Fault.arm inj (Fault.rule (Fault.Block 13) Fault.Fail_write));
  (obs, inj, Dev.observe obs (Fault.dev inj))

let mixed_ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(
      list_size (int_bound 40)
        (frequency
           [
             (4, map (fun b -> Read b) (int_range (-1) (nb + 2)));
             (3, map2 (fun b s -> Write (b, s)) (int_range (-1) (nb + 2))
                   (int_bound 255));
             (2, map (fun b -> Write (b, 0)) (int_range (-1) (nb + 2)));
           ]))

let prop_sparse_equiv_through_fault_and_obs =
  QCheck.Test.make
    ~name:"Sparse ≡ Memdisk through Fault+Obs under armed rules" ~count:75
    QCheck.(pair (int_bound 1000) mixed_ops_arb)
    (fun (seed, ops) ->
      let obs_a, inj_a, dev_a =
        build_faulty Memdisk.dev
          (fun s ->
            let d = Memdisk.create ~params:(params s) () in
            Memdisk.set_time_model d false;
            d)
          seed
      in
      let obs_b, inj_b, dev_b =
        build_faulty Sparse.dev
          (fun s ->
            let d = Sparse.create ~params:(params s) ~chunk_blocks:chunk () in
            Sparse.set_time_model d false;
            d)
          seed
      in
      List.for_all
        (fun op ->
          let a = step dev_a ~snap:ignore ~restore:ignore op in
          let b = step dev_b ~snap:ignore ~restore:ignore op in
          if a <> b then
            QCheck.Test.fail_reportf "op %s: memdisk %s vs sparse %s"
              (op_print op) a b
          else true)
        ops
      &&
      let ta = List.map event_str (Fault.trace inj_a) in
      let tb = List.map event_str (Fault.trace inj_b) in
      ta = tb
      && Iron_obs.Obs.jsonl_of_snapshot (Iron_obs.Obs.snapshot obs_a)
         = Iron_obs.Obs.jsonl_of_snapshot (Iron_obs.Obs.snapshot obs_b))

(* --- directed image-discipline and footprint cases -------------------- *)

let test_snapshot_is_frozen () =
  let sp = Sparse.create ~params:(params 7) ~chunk_blocks:chunk () in
  let dev = Sparse.dev sp in
  Dev.write_exn dev 3 (fill 0xAA);
  let img = Sparse.snapshot sp in
  Dev.write_exn dev 3 (fill 0xBB);
  Sparse.restore sp img;
  check Alcotest.bytes "restore sees frozen bytes" (fill 0xAA)
    (Dev.read_exn dev 3);
  check Alcotest.int "restore resets stats" 0 (Sparse.stats sp).Memdisk.writes

let test_zero_write_materializes_nothing () =
  let sp = Sparse.create ~params:(params 8) ~chunk_blocks:chunk () in
  let dev = Sparse.dev sp in
  (* A whole-volume zeroing pass (mkfs's first act): charged, counted,
     but free. *)
  for b = 0 to nb - 1 do
    Dev.write_exn dev b (Bytes.make 512 '\000')
  done;
  check Alcotest.int "all writes counted" nb (Sparse.stats sp).Memdisk.writes;
  check Alcotest.int "no overlay bytes" 0 (Sparse.overlay_bytes sp);
  let img = Sparse.snapshot sp in
  check Alcotest.int "no chunks materialized" 0 (Sparse.image_chunks_touched img);
  (* A real write then materializes exactly one chunk, one block. *)
  Dev.write_exn dev 20 (fill 0x20);
  let img = Sparse.snapshot sp in
  check Alcotest.int "one chunk" 1 (Sparse.image_chunks_touched img);
  check Alcotest.int "one block" 1 (Sparse.image_blocks_touched img)

let test_restore_is_o_dirty () =
  let sp = Sparse.create ~params:(params 9) ~chunk_blocks:chunk () in
  let dev = Sparse.dev sp in
  let img = Sparse.snapshot sp in
  Dev.write_exn dev 1 (fill 1);
  Dev.write_exn dev 2 (fill 2);
  check Alcotest.int "two dirty blocks" 2 (Sparse.dirty_count sp);
  Sparse.restore sp img;
  check Alcotest.int "restore drops the overlay" 0 (Sparse.dirty_count sp);
  check Alcotest.bytes "block reverted" (Bytes.make 512 '\000')
    (Dev.read_exn dev 1)

let test_geometry_mismatch_raises () =
  let sp = Sparse.create ~params:(params 10) ~chunk_blocks:chunk () in
  let img =
    Sparse.blank_image ~chunk_blocks:chunk ~block_size:512 ~num_blocks:(nb * 2)
      ()
  in
  (match Sparse.restore sp img with
  | () -> Alcotest.fail "expected Invalid_argument (num_blocks)"
  | exception Invalid_argument _ -> ());
  let img =
    Sparse.blank_image ~chunk_blocks:(chunk * 2) ~block_size:512 ~num_blocks:nb
      ()
  in
  match Sparse.restore sp img with
  | () -> Alcotest.fail "expected Invalid_argument (chunk_blocks)"
  | exception Invalid_argument _ -> ()

let test_chunk_must_be_power_of_two () =
  match Sparse.blank_image ~chunk_blocks:6 ~block_size:512 ~num_blocks:nb () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* The tentpole's scaling claim: a 1 GiB logical volume (262144 blocks
   of 4 KiB) holds a full ext3 mkfs + mount + workload in memory
   proportional to the blocks actually touched — thousands, not a
   quarter million. *)
let test_gigabyte_volume_is_o_touched () =
  let params =
    { Memdisk.default_params with Memdisk.num_blocks = 262_144; seed = 5 }
  in
  let sp = Sparse.create ~params () in
  Sparse.set_time_model sp false;
  let dev = Sparse.dev sp in
  (match Iron_vfs.Fs.mkfs Iron_ext3.Ext3.std dev with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "mkfs");
  (match Iron_vfs.Fs.mount Iron_ext3.Ext3.std dev with
  | Ok (Iron_vfs.Fs.Boxed ((module F), t)) ->
      (match F.creat t "/big" with
      | Ok fd ->
          ignore (F.write t fd ~off:0 (Bytes.make 65536 'x'));
          ignore (F.fsync t fd);
          ignore (F.close t fd)
      | Error _ -> Alcotest.fail "creat");
      ignore (F.unmount t)
  | Error _ -> Alcotest.fail "mount");
  let img = Sparse.snapshot sp in
  let touched = Sparse.image_blocks_touched img in
  check Alcotest.bool "some blocks touched" true (touched > 0);
  check Alcotest.bool
    (Printf.sprintf "touched (%d) well under 1/8 of the volume" touched)
    true
    (touched < 262_144 / 8)

let suites =
  [
    ( "disk.sparse",
      [
        qtest prop_sparse_equiv_memdisk;
        qtest prop_sparse_equiv_through_fault_and_obs;
        Alcotest.test_case "snapshot freezes the image" `Quick
          test_snapshot_is_frozen;
        Alcotest.test_case "zero writes materialize nothing" `Quick
          test_zero_write_materializes_nothing;
        Alcotest.test_case "restore drops only the overlay" `Quick
          test_restore_is_o_dirty;
        Alcotest.test_case "geometry mismatch raises" `Quick
          test_geometry_mismatch_raises;
        Alcotest.test_case "chunk size must be a power of two" `Quick
          test_chunk_must_be_power_of_two;
        Alcotest.test_case "1 GiB volume is O(touched)" `Quick
          test_gigabyte_volume_is_o_touched;
      ] );
  ]
