let () =
  Alcotest.run "iron"
    (Test_util.suites @ Test_obs.suites @ Test_pool.suites @ Test_disk.suites
    @ Test_cow.suites @ Test_sparse.suites @ Test_bigstore.suites
    @ Test_fault.suites
    @ Test_vfs.suites
    @ Test_codecs.suites @ Test_jrnl.suites @ Test_ext3.suites
    @ Test_genops.suites
    @ Test_reiserfs.suites @ Test_jfs.suites @ Test_ntfs.suites
    @ Test_ixt3.suites @ Test_fsck.suites @ Test_crash.suites
    @ Test_explore.suites @ Test_fuzz.suites @ Test_core.suites
    @ Test_report.suites @ Test_traffic.suites
    @ Test_workloads.suites @ Test_differential.suites @ Test_fidelity.suites)
