(* Traffic-simulator determinism and the policy asymmetry it exists to
   measure.

   The scheduler runs on simulated disk time, so the whole report —
   throughput, latency quantiles, blast-radius attribution — must be a
   pure function of (config, brand): byte-identical at any worker
   count, changed by the seed. The asymmetry test is the headline
   claim in miniature: ext3's shared journal lets one tenant's crash
   corrupt another tenant's durable files, while ixt3's checksummed
   commit refuses to replay the damage. *)

open Iron_traffic

let check = Alcotest.check

(* Small enough to keep tier-1 fast, large enough that the blast-radius
   enumeration reaches the damaging random crash states (the systematic
   states come first and are benign). *)
let cfg =
  {
    Traffic.default with
    Traffic.clients = 120;
    duration_ms = 2_000;
    num_blocks = 4_096;
    states = 1_000;
  }

let report_bytes ~jobs brand =
  Iron_report.Report.to_string
    (Iron_report.Report.of_traffic (Traffic.run ~jobs cfg brand))

let test_jobs_invariance () =
  let j1 = report_bytes ~jobs:1 Iron_ext3.Ext3.std in
  let j4 = report_bytes ~jobs:4 Iron_ext3.Ext3.std in
  check Alcotest.string "ext3 report bytes identical at -j1 and -j4" j1 j4

let test_seed_determinism () =
  let a = report_bytes ~jobs:2 Iron_ext3.Ext3.ixt3 in
  let b = report_bytes ~jobs:1 Iron_ext3.Ext3.ixt3 in
  check Alcotest.string "same seed, same bytes" a b;
  let other =
    Iron_report.Report.to_string
      (Iron_report.Report.of_traffic
         (Traffic.run { cfg with Traffic.seed = cfg.Traffic.seed + 1 }
            Iron_ext3.Ext3.ixt3))
  in
  check Alcotest.bool "different seed, different bytes" true (a <> other)

let test_policy_asymmetry () =
  let e = Traffic.run cfg Iron_ext3.Ext3.std in
  let x = Traffic.run cfg Iron_ext3.Ext3.ixt3 in
  check Alcotest.bool
    (Printf.sprintf "ext3 crosses tenant boundaries (%d)" e.Traffic.r_cross)
    true
    (e.Traffic.r_cross > 0);
  check Alcotest.int "ixt3 has zero violations" 0 x.Traffic.r_viol;
  check Alcotest.int "ixt3 has zero cross-tenant damage" 0 x.Traffic.r_cross;
  check Alcotest.bool
    (Printf.sprintf "ixt3 detects torn commits instead (%d)" x.Traffic.r_tc)
    true
    (x.Traffic.r_tc > 0);
  (* Both brands pushed real load. *)
  check Alcotest.bool "ext3 completed ops" true (e.Traffic.r_ops > 100);
  check Alcotest.bool "ixt3 completed ops" true (x.Traffic.r_ops > 100)

let test_per_tenant_accounting () =
  let r = Traffic.run cfg Iron_ext3.Ext3.std in
  check Alcotest.int "one stat row per tenant" cfg.Traffic.tenants
    (List.length r.Traffic.r_tenant);
  let sum =
    List.fold_left (fun a t -> a + t.Traffic.ts_ops) 0 r.Traffic.r_tenant
  in
  check Alcotest.int "tenant ops sum to total" r.Traffic.r_ops sum;
  let cross =
    List.fold_left (fun a t -> a + t.Traffic.ts_cross) 0 r.Traffic.r_tenant
  in
  check Alcotest.int "tenant cross sums to total" r.Traffic.r_cross cross

let test_artifact_roundtrip () =
  let r = Traffic.run ~jobs:2 cfg Iron_ext3.Ext3.std in
  let art = Iron_report.Report.of_traffic r in
  check Alcotest.string "kind" "traffic" (Iron_report.Report.kind_name art);
  check Alcotest.string "filename" "traffic-ext3.json"
    (Iron_report.Report.filename art);
  let s = Iron_report.Report.to_string art in
  match Iron_report.Report.of_string s with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok art' ->
      check Alcotest.string "decode-reencode is the identity" s
        (Iron_report.Report.to_string art');
      (match Iron_report.Report.diff art art' with
      | Ok [] -> ()
      | Ok items ->
          Alcotest.failf "self-diff not empty (%d items)" (List.length items)
      | Error e -> Alcotest.failf "diff: %s" e)

let test_zipf_skews () =
  (* Uniform (theta 0) spreads load; a skewed distribution concentrates
     it. Compare the single hottest file's share of picks. *)
  let picks theta =
    let z = Zipf.create ~n:64 ~theta in
    let prng = Iron_util.Prng.create 99 in
    let counts = Array.make 64 0 in
    for _ = 1 to 20_000 do
      let i = Zipf.sample z prng in
      counts.(i) <- counts.(i) + 1
    done;
    Array.fold_left max 0 counts
  in
  let flat = picks 0.0 and hot = picks 1.5 in
  check Alcotest.bool
    (Printf.sprintf "theta 1.5 concentrates (%d) vs theta 0 (%d)" hot flat)
    true
    (hot > 2 * flat)

let suites =
  [
    ( "traffic",
      [
        Alcotest.test_case "report bytes are jobs-invariant" `Quick
          test_jobs_invariance;
        Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
        Alcotest.test_case "ext3 vs ixt3 asymmetry under load" `Quick
          test_policy_asymmetry;
        Alcotest.test_case "per-tenant accounting" `Quick
          test_per_tenant_accounting;
        Alcotest.test_case "traffic artifact round-trips" `Quick
          test_artifact_roundtrip;
        Alcotest.test_case "zipf skew concentrates load" `Quick test_zipf_skews;
      ] );
  ]
