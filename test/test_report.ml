(* Tests for the golden-artifact subsystem (Iron_report).

   The regression gate is only as trustworthy as its codec and differ,
   so each is pinned from both sides:

   - encode/decode round-trips any artifact (qcheck over generated
     artifacts, including hostile strings), and encoding is canonical
     (equal artifacts are byte-equal on disk);
   - the loader rejects unknown schema versions and unknown kinds
     loudly;
   - the differ is exact on policy matrices and crash counts, and
     tolerance-based on timing metrics;
   - end to end: a real ext3 campaign's artifact survives a
     round-trip unchanged, and flipping a single policy cell makes the
     diff fail and name that cell. *)

module Report = Iron_report.Report
module Json = Iron_report.Json
module Driver = Iron_core.Driver

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Tiny string helpers so the tests need no extra libraries. *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then s
    else if String.sub s i m = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Json unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_escapes () =
  let nasty = "a\"b\\c\nd\te\r\011\001 end" in
  let v = Json.Assoc [ ("k", Json.String nasty) ] in
  (match Json.of_string (Json.to_string v) with
  | Ok (Json.Assoc [ ("k", Json.String s) ]) ->
      check Alcotest.string "string round-trips through escapes" nasty s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  (* \u escapes decode to UTF-8 (including a surrogate pair). *)
  match Json.of_string "\"A\\u00e9\\u2713\\ud83d\\ude00\"" with
  | Ok (Json.String s) ->
      check Alcotest.string "unicode escapes"
        "A\xc3\xa9\xe2\x9c\x93\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_json_int_vs_float () =
  (match Json.of_string "42" with
  | Ok (Json.Int 42) -> ()
  | _ -> Alcotest.fail "42 should parse as Int");
  match Json.of_string "42.5" with
  | Ok (Json.Float f) -> check (Alcotest.float 1e-9) "float" 42.5 f
  | _ -> Alcotest.fail "42.5 should parse as Float"

(* ------------------------------------------------------------------ *)
(* Artifact generators                                                 *)
(* ------------------------------------------------------------------ *)

(* Strings that exercise the codec: printable stuff plus quotes,
   backslashes, newlines and control bytes. *)
let gen_string =
  QCheck.Gen.(
    map
      (fun chars ->
        String.concat ""
          (List.map
             (function
               | 0 -> "\""
               | 1 -> "\\"
               | 2 -> "\n"
               | 3 -> "\t"
               | 4 -> "\001"
               | n -> String.make 1 (Char.chr (32 + (n mod 90))))
             chars))
      (small_list (int_bound 120)))

let gen_counters =
  QCheck.Gen.(
    small_list (pair gen_string (int_bound 100000))
    |> map (fun kvs ->
           (* duplicate keys would not round-trip through an assoc *)
           List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs))

let gen_cell =
  QCheck.Gen.(
    map
      (fun ((row, col, fired), (detection, recovery, note)) ->
        {
          Report.row;
          col;
          applicable = true;
          fired;
          detection;
          recovery;
          note;
          d_sym = "-";
          r_sym = "|";
        })
      (pair
         (triple gen_string gen_string (int_bound 50))
         (triple (small_list gen_string) (small_list gen_string) gen_string)))

let gen_fingerprint =
  QCheck.Gen.(
    map
      (fun ((fs, seed, counters), (faults, cells)) ->
        Report.Fingerprint
          {
            Report.fp_fs = fs;
            fp_seed = seed;
            counters;
            matrices =
              List.map
                (fun fault ->
                  { Report.fault; rows = [ "r" ]; cols = [ "a" ]; cells })
                (List.sort_uniq compare faults);
          })
      (pair
         (triple gen_string (int_bound 1000000) gen_counters)
         (pair (small_list gen_string) (small_list gen_cell))))

let gen_crash =
  QCheck.Gen.(
    map
      (fun ((fs, seed, states), (counts, violations)) ->
        Report.Crash
          {
            Report.c_fs = fs;
            c_seed = seed;
            c_max_states = states;
            log_len = states mod 97;
            epochs = states mod 11;
            states;
            tc_detected = states mod 301;
            kind_counts = counts;
            violations =
              List.map
                (fun (s, k, d) -> { Report.state = s; v_kind = k; detail = d })
                violations;
          })
      (pair
         (triple gen_string (int_bound 1000000) (int_bound 5000))
         (pair gen_counters (small_list (triple gen_string gen_string gen_string)))))

let gen_bench =
  QCheck.Gen.(
    map
      (fun records ->
        Report.Bench
          {
            Report.records =
              List.map
                (fun ((e, w), (j, k, m)) ->
                  {
                    Report.experiment = e;
                    wall_ms = w;
                    b_jobs = j;
                    b_workers = k;
                    metrics = m;
                  })
                records;
          })
      (small_list
         (pair (pair gen_string (int_bound 100000))
            (triple (int_bound 10000) (int_range 1 16) gen_counters))))

let gen_thresholds =
  QCheck.Gen.(
    map
      (fun rules ->
        Report.Thresholds
          {
            Report.rules =
              List.map
                (fun (m, which, v) ->
                  match which mod 3 with
                  | 0 ->
                      {
                        Report.metric = m;
                        max_value = Some v;
                        min_value = None;
                        le_metric = None;
                      }
                  | 1 ->
                      {
                        Report.metric = m;
                        max_value = None;
                        min_value = Some v;
                        le_metric = None;
                      }
                  | _ ->
                      {
                        Report.metric = m;
                        max_value = None;
                        min_value = None;
                        le_metric = Some (m ^ ".other");
                      })
                rules;
          })
      (small_list (triple gen_string (int_bound 5) (int_bound 1000))))

let gen_forensics =
  QCheck.Gen.(
    map
      (fun ((fs, seed, states), (chains, log)) ->
        Report.Forensics
          {
            Report.fo_fs = fs;
            fo_seed = seed;
            fo_max_states = states;
            fo_chains =
              List.map
                (fun ((st, k, d), (probes, summary, culprits)) ->
                  {
                    Report.fh_state = st;
                    fh_kind = k;
                    fh_detail = d;
                    fh_probes = probes;
                    fh_summary = summary;
                    fh_culprits =
                      List.map
                        (fun ((b, lbl, role), (txn, pol, n)) ->
                          {
                            Report.fc_block = b;
                            fc_label = lbl;
                            fc_role = role;
                            fc_txn = txn;
                            fc_policy = pol;
                            fc_epoch = n mod 7;
                            fc_op = (n mod 13) - 1;
                            fc_op_label = lbl;
                            fc_rule = (if n mod 2 = 0 then "" else pol);
                            fc_first_seq = n;
                            fc_dropped = 1 + (n mod 4);
                            fc_torn = n mod 3 = 0;
                          })
                        culprits;
                  })
                chains;
            fo_log =
              List.mapi
                (fun i ((lbl, role), (blk, txn)) ->
                  {
                    Report.fl_seq = i;
                    fl_block = blk;
                    fl_epoch = i mod 5;
                    fl_label = lbl;
                    fl_txn = txn;
                    fl_policy = (if txn >= 0 then "ordered" else "");
                    fl_role = role;
                    fl_op = i mod 9;
                    fl_op_label = lbl;
                    fl_rule = "";
                  })
                log;
          })
      (pair
         (triple gen_string (int_bound 1000000) (int_bound 5000))
         (pair
            (small_list
               (pair (triple gen_string gen_string gen_string)
                  (triple (int_bound 512) gen_string
                     (small_list
                        (pair
                           (triple (int_bound 2048) gen_string gen_string)
                           (triple (int_range (-1) 50) gen_string
                              (int_bound 100)))))))
            (small_list
               (pair (pair gen_string gen_string)
                  (pair (int_bound 2048) (int_range (-1) 40)))))))

let gen_metrics =
  QCheck.Gen.(
    map
      (fun ((name, seed), metrics) ->
        Report.Metrics
          { Report.m_name = name; m_seed = seed; m_metrics = metrics })
      (pair (pair gen_string (int_bound 1000000)) gen_counters))

let gen_fuzz =
  QCheck.Gen.(
    map
      (fun ((fs, seed, corpus), ((seq, cap, n), (kinds, cases))) ->
        Report.Fuzz
          {
            Report.z_fs = fs;
            z_seq = 1 + (seq mod 3);
            z_seed = seed;
            z_cap = 1 + cap;
            z_workloads = n;
            z_log_writes = 2 * n;
            z_states_raw = 3 * n;
            z_states = n;
            z_violations = List.length cases;
            z_tc = n mod 7;
            z_kinds = kinds;
            z_corpus = corpus;
            z_cases =
              List.mapi
                (fun i ((w, m), (c, firsts)) ->
                  {
                    Report.z_index = i;
                    z_workload = w;
                    z_minimized = m;
                    z_checked = c;
                    z_violations = List.length firsts;
                    z_first =
                      List.map
                        (fun (st, (k, d)) ->
                          { Report.state = st; v_kind = k; detail = d })
                        firsts;
                  })
                cases;
          })
      (pair
         (triple gen_string (int_bound 1000000) gen_string)
         (pair
            (triple (int_bound 2) (int_bound 500) (int_bound 2000))
            (pair gen_counters
               (small_list
                  (pair (pair gen_string gen_string)
                     (pair (int_bound 300)
                        (small_list
                           (pair gen_string (pair gen_string gen_string))))))))))

let gen_artifact =
  QCheck.Gen.(
    int_bound 6 >>= function
    | 0 -> gen_fingerprint
    | 1 -> gen_crash
    | 2 -> gen_bench
    | 3 -> gen_forensics
    | 4 -> gen_metrics
    | 5 -> gen_fuzz
    | _ -> gen_thresholds)

let arb_artifact =
  QCheck.make ~print:(fun a -> Report.to_string a) gen_artifact

(* ------------------------------------------------------------------ *)
(* Round-trip + canonicality                                           *)
(* ------------------------------------------------------------------ *)

let prop_round_trip =
  QCheck.Test.make ~name:"Report encode/decode round-trips" ~count:200
    arb_artifact (fun art ->
      match Report.of_string (Report.to_string art) with
      | Ok art' -> art' = art
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_canonical =
  QCheck.Test.make ~name:"Report encoding is canonical (stable bytes)"
    ~count:100 arb_artifact (fun art ->
      let s = Report.to_string art in
      match Report.of_string s with
      | Ok art' -> String.equal s (Report.to_string art')
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Loader rejection                                                    *)
(* ------------------------------------------------------------------ *)

let sample_crash =
  Report.Crash
    {
      Report.c_fs = "ext3";
      c_seed = 7;
      c_max_states = 10;
      log_len = 3;
      epochs = 1;
      states = 10;
      tc_detected = 0;
      kind_counts = [ ("data-loss", 2) ];
      violations = [ { Report.state = "s"; v_kind = "data-loss"; detail = "d" } ];
    }

let test_rejects_unknown_version () =
  let s = Report.to_string sample_crash in
  let bumped =
    replace_once ~sub:"\"schema_version\": 1" ~by:"\"schema_version\": 99" s
  in
  match Report.of_string bumped with
  | Ok _ -> Alcotest.fail "accepted schema version 99"
  | Error e ->
      check Alcotest.bool "error names the version" true
        (contains ~sub:"unknown schema version 99" e)

let test_rejects_unknown_kind () =
  let s = Report.to_string sample_crash in
  let bumped =
    replace_once ~sub:"\"kind\": \"crash\"" ~by:"\"kind\": \"mystery\"" s
  in
  match Report.of_string bumped with
  | Ok _ -> Alcotest.fail "accepted unknown kind"
  | Error e ->
      check Alcotest.bool "error names the kind" true
        (contains ~sub:"mystery" e)

(* ------------------------------------------------------------------ *)
(* Differ semantics                                                    *)
(* ------------------------------------------------------------------ *)

let cell row col d =
  {
    Report.row;
    col;
    applicable = true;
    fired = 1;
    detection = [ "DErrorCode" ];
    recovery = [ "RPropagate" ];
    note = "EIO";
    d_sym = d;
    r_sym = "-";
  }

let fingerprint cells =
  Report.Fingerprint
    {
      Report.fp_fs = "ext3";
      fp_seed = 7;
      counters = [ ("experiments_run", 2) ];
      matrices =
        [ { Report.fault = "Read Failure"; rows = [ "inode" ]; cols = [ "a"; "b" ]; cells } ];
    }

let diff_ok g f =
  match Report.diff g f with
  | Ok items -> items
  | Error e -> Alcotest.fail e

let test_matrix_diff_exact () =
  let g = fingerprint [ cell "inode" "a" "-"; cell "inode" "b" "-" ] in
  check Alcotest.int "identical matrices diff empty" 0
    (List.length (diff_ok g g));
  (* One flipped policy cell: exactly one item, naming the cell. *)
  let f = fingerprint [ cell "inode" "a" "-"; cell "inode" "b" "|" ] in
  match diff_ok g f with
  | [ item ] ->
      check Alcotest.string "cell named" "fingerprint/ext3/Read Failure/inode:b"
        item.Report.path
  | items -> Alcotest.failf "expected 1 item, got %d" (List.length items)

let test_matrix_diff_applicability () =
  (* A cell present on one side only diffs against the not-applicable
     default — losing a cell is drift, not silence. *)
  let g = fingerprint [ cell "inode" "a" "-"; cell "inode" "b" "-" ] in
  let f = fingerprint [ cell "inode" "a" "-" ] in
  match diff_ok g f with
  | [ item ] ->
      check Alcotest.string "fresh side shows not applicable" "not applicable"
        item.Report.fresh
  | items -> Alcotest.failf "expected 1 item, got %d" (List.length items)

let test_crash_diff_exact () =
  let g = sample_crash in
  check Alcotest.int "identical crash reports diff empty" 0
    (List.length (diff_ok g g));
  let f =
    match sample_crash with
    | Report.Crash c -> Report.Crash { c with Report.kind_counts = [ ("data-loss", 3) ] }
    | _ -> assert false
  in
  match diff_ok g f with
  | [ item ] ->
      check Alcotest.string "count named" "crash/ext3/counts/data-loss"
        item.Report.path
  | items -> Alcotest.failf "expected 1 item, got %d" (List.length items)

let sample_forensics =
  Report.Forensics
    {
      Report.fo_fs = "ext3";
      fo_seed = 7;
      fo_max_states = 10;
      fo_chains =
        [
          {
            Report.fh_state = "all/rand3";
            fh_kind = "data-loss";
            fh_detail = "/durable1: open ENOENT";
            fh_probes = 4;
            fh_summary = "commit record of txn 5 persisted without its payload (epoch 0)";
            fh_culprits =
              [
                {
                  Report.fc_block = 6;
                  fc_label = "j-data";
                  fc_role = "payload";
                  fc_txn = 5;
                  fc_policy = "ordered";
                  fc_epoch = 0;
                  fc_op = 2;
                  fc_op_label = "fsync /racing0";
                  fc_rule = "";
                  fc_first_seq = 5;
                  fc_dropped = 1;
                  fc_torn = false;
                };
              ];
          };
        ];
      fo_log =
        [
          {
            Report.fl_seq = 0;
            fl_block = 144;
            fl_epoch = 0;
            fl_label = "?";
            fl_txn = 5;
            fl_policy = "ordered";
            fl_role = "data";
            fl_op = 1;
            fl_op_label = "write /racing0";
            fl_rule = "";
          };
        ];
    }

let test_forensics_diff_exact () =
  let g = sample_forensics in
  check Alcotest.int "identical forensics reports diff empty" 0
    (List.length (diff_ok g g));
  let mutate f =
    match sample_forensics with
    | Report.Forensics fo ->
        Report.Forensics { fo with Report.fo_chains = List.map f fo.fo_chains }
    | _ -> assert false
  in
  (match
     diff_ok g
       (mutate (fun c -> { c with Report.fh_summary = "something else" }))
   with
  | [ item ] ->
      check Alcotest.string "summary drift named"
        "forensics/ext3/chains[0]/summary" item.Report.path
  | items -> Alcotest.failf "expected 1 item, got %d" (List.length items));
  match
    diff_ok g
      (mutate (fun c ->
           {
             c with
             Report.fh_culprits =
               List.map
                 (fun cu -> { cu with Report.fc_txn = 6 })
                 c.Report.fh_culprits;
           }))
  with
  | [ item ] ->
      check Alcotest.string "culprit drift named"
        "forensics/ext3/chains[0]/culprits" item.Report.path;
      check Alcotest.bool "culprit rendering shows the txn" true
        (contains ~sub:"txn 6" item.Report.fresh)
  | items -> Alcotest.failf "expected 1 item, got %d" (List.length items)

let test_metrics_diff_exact () =
  let m counters =
    Report.Metrics
      { Report.m_name = "ext3"; m_seed = 7; m_metrics = counters }
  in
  let g = m [ ("disk.read", 100); ("jrnl.commit", 8) ] in
  check Alcotest.int "identical metric sets diff empty" 0
    (List.length (diff_ok g g));
  match diff_ok g (m [ ("disk.read", 100); ("jrnl.commit", 9) ]) with
  | [ item ] ->
      check Alcotest.string "metric drift named (exact, no tolerance)"
        "metrics/ext3/jrnl.commit" item.Report.path
  | items -> Alcotest.failf "expected 1 item, got %d" (List.length items)

let bench metrics =
  Report.Bench
    {
      Report.records =
        [
          {
            Report.experiment = "smoke";
            wall_ms = 100;
            b_jobs = 0;
            b_workers = 1;
            metrics;
          };
        ];
    }

let test_bench_diff_tolerance () =
  (* Timing metrics drift within the tolerance without tripping. *)
  let g = bench [ ("bench.x.us_per_cycle", 100) ] in
  let f = bench [ ("bench.x.us_per_cycle", 140) ] in
  check Alcotest.int "within default ±50%" 0 (List.length (diff_ok g f));
  let f = bench [ ("bench.x.us_per_cycle", 160) ] in
  check Alcotest.int "outside default ±50%" 1 (List.length (diff_ok g f));
  (match Report.diff ~timing_tol:1.0 g f with
  | Ok items -> check Alcotest.int "wider tolerance absorbs it" 0 (List.length items)
  | Error e -> Alcotest.fail e);
  (* Count metrics stay exact regardless of tolerance. *)
  let g = bench [ ("bench.crash_states.ext3.violations", 100) ] in
  let f = bench [ ("bench.crash_states.ext3.violations", 101) ] in
  match Report.diff ~timing_tol:10.0 g f with
  | Ok items -> check Alcotest.int "exact metric trips at ±1" 1 (List.length items)
  | Error e -> Alcotest.fail e

let test_thresholds () =
  let th =
    {
      Report.rules =
        [
          {
            Report.metric = "m.bytes";
            max_value = Some 64;
            min_value = None;
            le_metric = None;
          };
          {
            Report.metric = "m.cow";
            max_value = None;
            min_value = None;
            le_metric = Some "m.flat";
          };
        ];
    }
  in
  let b m = match bench m with Report.Bench b -> b | _ -> assert false in
  check Alcotest.int "all hold" 0
    (List.length
       (Report.check_thresholds th
          (b [ ("m.bytes", 5); ("m.cow", 3); ("m.flat", 700) ])));
  check Alcotest.int "max violated" 1
    (List.length
       (Report.check_thresholds th
          (b [ ("m.bytes", 65); ("m.cow", 3); ("m.flat", 700) ])));
  check Alcotest.int "le_metric violated" 1
    (List.length
       (Report.check_thresholds th
          (b [ ("m.bytes", 5); ("m.cow", 800); ("m.flat", 700) ])));
  (* A metric the run stopped measuring is a violation, not a pass. *)
  check Alcotest.int "missing metric is a violation" 1
    (List.length
       (Report.check_thresholds th (b [ ("m.cow", 3); ("m.flat", 700) ])))

let test_kind_mismatch_is_error () =
  match Report.diff sample_crash (bench []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "crash vs bench should not be comparable"

(* ------------------------------------------------------------------ *)
(* End to end: a real campaign's artifact                              *)
(* ------------------------------------------------------------------ *)

let small_campaign () =
  (* One fault kind over the full block-type/workload grid is plenty:
     the artifact still carries hundreds of cells but runs in tens of
     milliseconds. *)
  Driver.fingerprint
    ~faults:[ Iron_core.Taxonomy.Read_failure ]
    ~seed:1234 Iron_ext3.Ext3.std

let test_campaign_round_trip () =
  let art = Report.of_fingerprint ~seed:1234 (small_campaign ()) in
  match Report.of_string (Report.to_string art) with
  | Ok art' ->
      check Alcotest.bool "campaign artifact round-trips" true (art = art');
      check Alcotest.int "round-trip diffs empty" 0
        (List.length (diff_ok art art'))
  | Error e -> Alcotest.fail e

let test_fuzz_round_trip () =
  (* End to end for the fuzz kind: a real (tiny, seq-1) campaign's
     artifact survives the codec unchanged and diffs empty. *)
  let art = Report.of_fuzz (Iron_fuzz.Fuzz.campaign ~seq:1 Iron_ext3.Ext3.std) in
  check Alcotest.string "filename is brand-keyed" "fuzz-ext3.json"
    (Report.filename art);
  match Report.of_string (Report.to_string art) with
  | Ok art' ->
      check Alcotest.bool "fuzz artifact round-trips" true (art = art');
      check Alcotest.int "round-trip diffs empty" 0
        (List.length (diff_ok art art'))
  | Error e -> Alcotest.fail e

let test_campaign_single_cell_perturbation () =
  (* The acceptance property of the whole subsystem: flip ONE policy
     cell in a real fingerprint and the diff must fail, naming it. *)
  let art = Report.of_fingerprint ~seed:1234 (small_campaign ()) in
  let fp = match art with Report.Fingerprint f -> f | _ -> assert false in
  (* Deterministically pick a fired cell to flip (seeded choice). *)
  let fired_cells =
    List.concat_map
      (fun m -> List.filter (fun c -> c.Report.fired > 0) m.Report.cells)
      fp.Report.matrices
  in
  check Alcotest.bool "campaign has fired cells" true (fired_cells <> []);
  let rng = Iron_util.Prng.create 42 in
  let victim =
    List.nth fired_cells (Iron_util.Prng.int rng (List.length fired_cells))
  in
  let perturbed =
    Report.Fingerprint
      {
        fp with
        Report.matrices =
          List.map
            (fun m ->
              {
                m with
                Report.cells =
                  List.map
                    (fun c ->
                      if c = victim then
                        { c with Report.d_sym = "X"; detection = [ "DSanity" ] }
                      else c)
                    m.Report.cells;
              })
            fp.Report.matrices;
      }
  in
  match diff_ok art perturbed with
  | [ item ] ->
      let expect =
        Printf.sprintf "fingerprint/ext3/Read Failure/%s:%s" victim.Report.row
          victim.Report.col
      in
      check Alcotest.string "perturbed cell is named" expect item.Report.path
  | items ->
      Alcotest.failf "expected exactly 1 differing cell, got %d"
        (List.length items)

let suites =
  [
    ( "report.json",
      [
        Alcotest.test_case "escape round-trip" `Quick test_json_escapes;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "int vs float" `Quick test_json_int_vs_float;
      ] );
    ( "report.codec",
      [
        qtest prop_round_trip;
        qtest prop_canonical;
        Alcotest.test_case "rejects unknown schema version" `Quick
          test_rejects_unknown_version;
        Alcotest.test_case "rejects unknown kind" `Quick
          test_rejects_unknown_kind;
      ] );
    ( "report.diff",
      [
        Alcotest.test_case "matrices compare exactly" `Quick
          test_matrix_diff_exact;
        Alcotest.test_case "applicability changes are drift" `Quick
          test_matrix_diff_applicability;
        Alcotest.test_case "crash counts compare exactly" `Quick
          test_crash_diff_exact;
        Alcotest.test_case "forensics chains compare exactly" `Quick
          test_forensics_diff_exact;
        Alcotest.test_case "metric sets compare exactly" `Quick
          test_metrics_diff_exact;
        Alcotest.test_case "timing metrics use tolerance" `Quick
          test_bench_diff_tolerance;
        Alcotest.test_case "threshold rules" `Quick test_thresholds;
        Alcotest.test_case "kind mismatch is an error" `Quick
          test_kind_mismatch_is_error;
      ] );
    ( "report.campaign",
      [
        Alcotest.test_case "real artifact round-trips" `Quick
          test_campaign_round_trip;
        Alcotest.test_case "real fuzz artifact round-trips" `Quick
          test_fuzz_round_trip;
        Alcotest.test_case "single flipped cell fails the gate" `Quick
          test_campaign_single_cell_perturbation;
      ] );
  ]
