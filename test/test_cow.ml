(* Differential tests pinning the copy-on-write overlay device to the
   flat reference implementation, and the zero-copy read path to the
   allocating one.

   The executor's correctness argument is "Cow ≡ Memdisk through the
   device interface" — same data, same errors, same service-time
   charges, same statistics — plus "read_into ≡ read" through every
   wrapper (the injector, the observed device). Both equivalences are
   checked here as qcheck properties over random operation sequences,
   with directed cases for the snapshot/restore image discipline. *)

open Iron_disk
open Iron_fault

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Small but non-trivial geometry; the timing model stays ON so clock
   and seek behaviour are part of the comparison. *)
let nb = 48

let params seed =
  { Memdisk.default_params with Memdisk.block_size = 512; num_blocks = nb; seed }

let err_str = function
  | Dev.Eio -> "EIO"
  | Dev.Enxio -> "ENXIO"

let res_str = function
  | Ok data -> "ok:" ^ Digest.to_hex (Digest.bytes data)
  | Error e -> "err:" ^ err_str e

let unit_str = function
  | Ok () -> "ok"
  | Error e -> "err:" ^ err_str e

(* --- the operation language ------------------------------------------ *)

type op =
  | Read of int
  | Read_into of int
  | Write of int * int (* block, fill seed *)
  | Bad_write of int (* wrong-size buffer *)
  | Sync
  | Snapshot
  | Restore

let op_gen =
  (* Blocks range a little past the end so ENXIO parity is exercised. *)
  let open QCheck.Gen in
  let blk = int_range (-2) (nb + 4) in
  frequency
    [
      (4, map (fun b -> Read b) blk);
      (4, map (fun b -> Read_into b) blk);
      (6, map2 (fun b s -> Write (b, s)) blk (int_bound 255));
      (1, map (fun b -> Bad_write b) blk);
      (1, return Sync);
      (2, return Snapshot);
      (2, return Restore);
    ]

let op_print = function
  | Read b -> Printf.sprintf "Read %d" b
  | Read_into b -> Printf.sprintf "Read_into %d" b
  | Write (b, s) -> Printf.sprintf "Write (%d, %d)" b s
  | Bad_write b -> Printf.sprintf "Bad_write %d" b
  | Sync -> "Sync"
  | Snapshot -> "Snapshot"
  | Restore -> "Restore"

let ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let fill seed = Bytes.make 512 (Char.chr (seed land 0xff))

(* Drive one op against a device, returning a comparable transcript
   line. [snap]/[restore] are the implementation-specific image ops. *)
let step dev ~snap ~restore = function
  | Read b -> res_str (dev.Dev.read b)
  | Read_into b ->
      let buf = Bytes.create dev.Dev.block_size in
      let r = dev.Dev.read_into b buf in
      (match r with
      | Ok () -> "ok:" ^ Digest.to_hex (Digest.bytes buf)
      | Error e -> "err:" ^ err_str e)
  | Write (b, s) -> unit_str (dev.Dev.write b (fill s))
  | Bad_write b -> unit_str (dev.Dev.write b (Bytes.create 7))
  | Sync -> unit_str (dev.Dev.sync ())
  | Snapshot ->
      snap ();
      "snap"
  | Restore ->
      restore ();
      "restore"

let stats_str (s : Memdisk.stats) now =
  Printf.sprintf "r=%d w=%d s=%d seeks=%d ms=%.6f now=%.6f" s.Memdisk.reads
    s.writes s.syncs s.seeks s.elapsed_ms now

let prop_cow_equiv_memdisk =
  QCheck.Test.make ~name:"Cow ≡ Memdisk under random ops" ~count:150
    QCheck.(pair (int_bound 1000) ops_arb)
    (fun (seed, ops) ->
      let flat = Memdisk.create ~params:(params seed) () in
      let cow = Cow.create ~params:(params seed) () in
      let fdev = Memdisk.dev flat and cdev = Cow.dev cow in
      (* Each side keeps its latest snapshot; Restore before any
         Snapshot rewinds to the blank initial image. *)
      let fsnap = ref (Memdisk.snapshot flat) in
      let csnap = ref (Cow.snapshot cow) in
      List.for_all
        (fun op ->
          let a =
            step fdev
              ~snap:(fun () -> fsnap := Memdisk.snapshot flat)
              ~restore:(fun () -> Memdisk.restore flat !fsnap)
              op
          in
          let b =
            step cdev
              ~snap:(fun () -> csnap := Cow.snapshot cow)
              ~restore:(fun () -> Cow.restore cow !csnap)
              op
          in
          let sa = stats_str (Memdisk.stats flat) (fdev.Dev.now ()) in
          let sb = stats_str (Cow.stats cow) (cdev.Dev.now ()) in
          if a <> b then
            QCheck.Test.fail_reportf "op %s: flat %s vs cow %s" (op_print op) a b
          else if sa <> sb then
            QCheck.Test.fail_reportf "op %s: stats %s vs %s" (op_print op) sa sb
          else true)
        ops
      && (* Final disk contents must agree block for block. *)
      List.for_all
        (fun b -> Bytes.equal (Memdisk.peek flat b) (Cow.peek cow b))
        (List.init nb Fun.id))

(* --- directed image-discipline cases --------------------------------- *)

let test_snapshot_is_frozen () =
  let cow = Cow.create ~params:(params 7) () in
  let dev = Cow.dev cow in
  Dev.write_exn dev 3 (fill 0xAA);
  let img = Cow.snapshot cow in
  (* Writing after the freeze must not leak into the image. *)
  Dev.write_exn dev 3 (fill 0xBB);
  Cow.restore cow img;
  check Alcotest.bytes "restore sees frozen bytes" (fill 0xAA)
    (Dev.read_exn dev 3);
  check Alcotest.int "restore resets stats" 0 (Cow.stats cow).Memdisk.writes

let test_restore_is_o_dirty () =
  let cow = Cow.create ~params:(params 8) () in
  let dev = Cow.dev cow in
  let img = Cow.snapshot cow in
  Dev.write_exn dev 1 (fill 1);
  Dev.write_exn dev 2 (fill 2);
  check Alcotest.int "two dirty blocks" 2 (Cow.dirty_count cow);
  Cow.restore cow img;
  check Alcotest.int "restore drops the overlay" 0 (Cow.dirty_count cow);
  check Alcotest.bytes "block reverted" (Bytes.make 512 '\000')
    (Dev.read_exn dev 1)

let test_images_share_clean_blocks () =
  let cow = Cow.create ~params:(params 9) () in
  let dev = Cow.dev cow in
  Dev.write_exn dev 5 (fill 5);
  let a = Cow.snapshot cow in
  Dev.write_exn dev 6 (fill 6);
  let b = Cow.snapshot cow in
  (* Block 5 was clean between the freezes: physically shared. *)
  check Alcotest.bool "clean block shared between images" true
    (Cow.image_block a 5 == Cow.image_block b 5);
  check Alcotest.bool "dirty block not shared" false
    (Cow.image_block a 6 == Cow.image_block b 6)

let test_geometry_mismatch_raises () =
  let cow = Cow.create ~params:(params 10) () in
  let img = Cow.blank_image ~block_size:512 ~num_blocks:(nb * 2) in
  match Cow.restore cow img with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_memdisk_snapshot_feeds_cow () =
  (* The executor's prepare path: capture on one device, overlay the
     image on a fresh one. *)
  let flat = Memdisk.create ~params:(params 11) () in
  Memdisk.poke flat 4 (fill 0x44);
  let img = Memdisk.snapshot flat in
  let cow = Cow.create ~params:(params 11) () in
  Cow.restore cow img;
  check Alcotest.bytes "image carried across devices" (fill 0x44)
    (Dev.read_exn (Cow.dev cow) 4)

(* --- read_into ≡ read through the wrapper stack ---------------------- *)

(* Twin stacks over identical content and identical fault rules; one is
   driven with [read], the other with [read_into]. Everything
   observable — data, errors, the injector's trace, its counters, the
   metrics registry — must be indistinguishable. *)

let event_str (e : Fault.event) =
  Format.asprintf "%a" Fault.pp_event e

let build_stack seed =
  let md = Memdisk.create ~params:(params seed) () in
  Memdisk.set_time_model md false;
  let prng = Iron_util.Prng.create (seed lxor 0xC0FFEE) in
  for b = 0 to nb - 1 do
    let buf = Bytes.create 512 in
    Iron_util.Prng.fill_bytes prng buf;
    Memdisk.poke md b buf
  done;
  let obs = Iron_obs.Obs.create () in
  let inj = Fault.create ~obs (Memdisk.dev md) in
  ignore (Fault.arm inj (Fault.rule (Fault.Block 3) Fault.Fail_read));
  ignore
    (Fault.arm inj
       (Fault.rule
          ~persistence:(Fault.Transient 2)
          (Fault.Block 5)
          (Fault.Corrupt (Fault.Noise 42))));
  ignore
    (Fault.arm inj (Fault.rule (Fault.Range (9, 11)) (Fault.Corrupt Fault.Byte_shift)));
  (obs, inj, Dev.observe obs (Fault.dev inj))

let test_read_into_equiv_through_fault_and_obs () =
  let obs_a, inj_a, dev_a = build_stack 21 in
  let obs_b, inj_b, dev_b = build_stack 21 in
  (* Every block twice, so the Transient rule runs out on both sides at
     the same access. *)
  let accesses = List.init (2 * nb) (fun i -> i mod nb) in
  List.iter
    (fun b ->
      let via_read = res_str (dev_a.Dev.read b) in
      let buf = Bytes.create dev_b.Dev.block_size in
      let via_into =
        match dev_b.Dev.read_into b buf with
        | Ok () -> "ok:" ^ Digest.to_hex (Digest.bytes buf)
        | Error e -> "err:" ^ err_str e
      in
      check Alcotest.string (Printf.sprintf "block %d" b) via_read via_into)
    accesses;
  (* The injectors saw identical histories... *)
  check
    Alcotest.(list string)
    "identical fault traces"
    (List.map event_str (Fault.trace inj_a))
    (List.map event_str (Fault.trace inj_b));
  (* ...and the metrics registries agree byte for byte. *)
  check Alcotest.string "identical metrics"
    (Iron_obs.Obs.jsonl_of_snapshot (Iron_obs.Obs.snapshot obs_a))
    (Iron_obs.Obs.jsonl_of_snapshot (Iron_obs.Obs.snapshot obs_b))

let prop_bcache_read_into_equiv =
  QCheck.Test.make ~name:"Bcache.read_into ≡ Bcache.read" ~count:100
    QCheck.(pair (int_bound 1000) (small_list (int_range (-1) (nb + 2))))
    (fun (seed, blocks) ->
      let mk () =
        let md = Memdisk.create ~params:(params seed) () in
        Memdisk.set_time_model md false;
        let prng = Iron_util.Prng.create (seed lxor 0xBCACE) in
        for b = 0 to nb - 1 do
          let buf = Bytes.create 512 in
          Iron_util.Prng.fill_bytes prng buf;
          Memdisk.poke md b buf
        done;
        Bcache.create ~capacity:8 (Memdisk.dev md)
      in
      let ca = mk () and cb = mk () in
      List.for_all
        (fun b ->
          let via_read = res_str (Bcache.read ca b) in
          let buf = Bytes.create 512 in
          let via_into =
            match Bcache.read_into cb b buf with
            | Ok () -> "ok:" ^ Digest.to_hex (Digest.bytes buf)
            | Error e -> "err:" ^ err_str e
          in
          via_read = via_into
          && Bcache.hits ca = Bcache.hits cb
          && Bcache.misses ca = Bcache.misses cb)
        blocks)

let suites =
  [
    ( "disk.cow",
      [
        qtest prop_cow_equiv_memdisk;
        Alcotest.test_case "snapshot freezes the image" `Quick
          test_snapshot_is_frozen;
        Alcotest.test_case "restore drops only the overlay" `Quick
          test_restore_is_o_dirty;
        Alcotest.test_case "images share clean blocks" `Quick
          test_images_share_clean_blocks;
        Alcotest.test_case "geometry mismatch raises" `Quick
          test_geometry_mismatch_raises;
        Alcotest.test_case "memdisk snapshot overlays a cow" `Quick
          test_memdisk_snapshot_feeds_cow;
      ] );
    ( "disk.read_into",
      [
        Alcotest.test_case "read_into ≡ read through Fault+Obs" `Quick
          test_read_into_equiv_through_fault_and_obs;
        qtest prop_bcache_read_into_equiv;
      ] );
  ]
