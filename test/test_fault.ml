(* Tests for the fail-partial fault injector. *)

open Iron_disk
open Iron_fault

let check = Alcotest.check

let make () =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 64; seed = 9 }
      ()
  in
  let inj = Fault.create (Memdisk.dev d) in
  (d, inj, Fault.dev inj)

let block dev c = Bytes.make dev.Dev.block_size c

let test_passthrough () =
  let _, _, dev = make () in
  Dev.write_exn dev 1 (block dev 'p');
  check Alcotest.bytes "no rules = passthrough" (block dev 'p') (Dev.read_exn dev 1)

let test_sticky_read_failure () =
  let _, inj, dev = make () in
  Dev.write_exn dev 2 (block dev 'd');
  ignore (Fault.arm inj (Fault.rule (Fault.Block 2) Fault.Fail_read));
  for _ = 1 to 3 do
    match dev.Dev.read 2 with
    | Error Dev.Eio -> ()
    | Ok _ | Error Dev.Enxio -> Alcotest.fail "expected sticky EIO"
  done;
  (* Other blocks unaffected. *)
  match dev.Dev.read 3 with Ok _ -> () | Error _ -> Alcotest.fail "collateral"

let test_transient_failure () =
  let _, inj, dev = make () in
  Dev.write_exn dev 4 (block dev 't');
  ignore
    (Fault.arm inj
       (Fault.rule ~persistence:(Fault.Transient 2) (Fault.Block 4) Fault.Fail_read));
  (match dev.Dev.read 4 with Error Dev.Eio -> () | _ -> Alcotest.fail "1st");
  (match dev.Dev.read 4 with Error Dev.Eio -> () | _ -> Alcotest.fail "2nd");
  match dev.Dev.read 4 with
  | Ok data -> check Alcotest.bytes "3rd succeeds" (block dev 't') data
  | Error _ -> Alcotest.fail "transient did not clear"

let test_write_failure_drops_data () =
  let d, inj, dev = make () in
  Dev.write_exn dev 5 (block dev 'o');
  ignore (Fault.arm inj (Fault.rule (Fault.Block 5) Fault.Fail_write));
  (match dev.Dev.write 5 (block dev 'n') with
  | Error Dev.Eio -> ()
  | _ -> Alcotest.fail "expected EIO");
  check Alcotest.bytes "old data intact" (block dev 'o') (Memdisk.peek d 5)

let test_corruption_silent () =
  let _, inj, dev = make () in
  Dev.write_exn dev 6 (block dev 'c');
  ignore (Fault.arm inj (Fault.rule (Fault.Block 6) (Fault.Corrupt (Fault.Noise 1))));
  match dev.Dev.read 6 with
  | Ok data ->
      check Alcotest.bool "returns Ok with bad data" true
        (not (Bytes.equal data (block dev 'c')))
  | Error _ -> Alcotest.fail "corruption must be silent"

let test_corruption_zeroes_and_bitflip () =
  let _, inj, dev = make () in
  Dev.write_exn dev 7 (block dev 'z');
  let id = Fault.arm inj (Fault.rule (Fault.Block 7) (Fault.Corrupt Fault.Zeroes)) in
  (match dev.Dev.read 7 with
  | Ok data -> check Alcotest.bytes "zeroed" (block dev '\000') data
  | Error _ -> Alcotest.fail "read");
  Fault.disarm inj id;
  ignore (Fault.arm inj (Fault.rule (Fault.Block 7) (Fault.Corrupt (Fault.Bit_flip 3))));
  match dev.Dev.read 7 with
  | Ok data ->
      let orig = block dev 'z' in
      let diff = ref 0 in
      Bytes.iteri
        (fun i c -> if c <> Bytes.get orig i then incr diff)
        data;
      check Alcotest.int "exactly one byte differs" 1 !diff
  | Error _ -> Alcotest.fail "read"

let test_byte_shift () =
  let _, inj, dev = make () in
  let data = Bytes.init dev.Dev.block_size (fun i -> Char.chr (i mod 256)) in
  Dev.write_exn dev 8 data;
  ignore (Fault.arm inj (Fault.rule (Fault.Block 8) (Fault.Corrupt Fault.Byte_shift)));
  match dev.Dev.read 8 with
  | Ok got ->
      check Alcotest.char "first byte is old last byte"
        (Bytes.get data (Bytes.length data - 1))
        (Bytes.get got 0);
      check Alcotest.char "second byte is old first" (Bytes.get data 0) (Bytes.get got 1)
  | Error _ -> Alcotest.fail "read"

let test_range_scratch () =
  let _, inj, dev = make () in
  ignore (Fault.arm inj (Fault.rule (Fault.Range (10, 14)) Fault.Fail_read));
  for b = 10 to 14 do
    match dev.Dev.read b with
    | Error Dev.Eio -> ()
    | _ -> Alcotest.fail "scratch block should fail"
  done;
  (match dev.Dev.read 9 with Ok _ -> () | Error _ -> Alcotest.fail "edge");
  match dev.Dev.read 15 with Ok _ -> () | Error _ -> Alcotest.fail "edge"

let test_whole_disk () =
  let _, inj, dev = make () in
  ignore (Fault.arm inj (Fault.rule Fault.Whole_disk Fault.Fail_read));
  ignore (Fault.arm inj (Fault.rule Fault.Whole_disk Fault.Fail_write));
  (match dev.Dev.read 0 with Error Dev.Eio -> () | _ -> Alcotest.fail "read");
  match dev.Dev.write 1 (block dev 'x') with
  | Error Dev.Eio -> ()
  | _ -> Alcotest.fail "write"

let test_tweak_corruption () =
  let _, inj, dev = make () in
  Dev.write_exn dev 9 (block dev 'a');
  ignore
    (Fault.arm inj
       (Fault.rule (Fault.Block 9)
          (Fault.Corrupt (Fault.Tweak (fun b -> Bytes.set b 0 'Z')))));
  match dev.Dev.read 9 with
  | Ok data ->
      check Alcotest.char "field tweaked" 'Z' (Bytes.get data 0);
      check Alcotest.char "rest intact" 'a' (Bytes.get data 1)
  | Error _ -> Alcotest.fail "read"

let test_fired_counter_and_disarm () =
  let _, inj, dev = make () in
  let id = Fault.arm inj (Fault.rule (Fault.Block 3) Fault.Fail_read) in
  ignore (dev.Dev.read 3);
  ignore (dev.Dev.read 3);
  check Alcotest.int "fired twice" 2 (Fault.fired inj id);
  Fault.disarm inj id;
  match dev.Dev.read 3 with Ok _ -> () | Error _ -> Alcotest.fail "disarmed"

let test_trace_records_outcomes () =
  let _, inj, dev = make () in
  Fault.set_classifier inj (fun b -> if b = 1 then "special" else "other");
  ignore (Fault.arm inj (Fault.rule (Fault.Block 1) Fault.Fail_read));
  Dev.write_exn dev 0 (block dev 'w');
  ignore (dev.Dev.read 1);
  ignore (dev.Dev.read 2);
  let tr = Fault.trace inj in
  check Alcotest.int "three events" 3 (List.length tr);
  let e1 = List.nth tr 1 in
  check Alcotest.string "label" "special" e1.Fault.label;
  (match e1.Fault.outcome with
  | Fault.Io_error Dev.Eio -> ()
  | _ -> Alcotest.fail "expected recorded error");
  let e0 = List.nth tr 0 in
  check Alcotest.bool "write recorded" true (e0.Fault.dir = Fault.Write)

let test_trace_clear_and_toggle () =
  let _, inj, dev = make () in
  ignore (dev.Dev.read 0);
  Fault.clear_trace inj;
  check Alcotest.int "cleared" 0 (List.length (Fault.trace inj));
  Fault.set_tracing inj false;
  ignore (dev.Dev.read 0);
  check Alcotest.int "tracing off" 0 (List.length (Fault.trace inj))

(* --- semantics regressions ---------------------------------------------

   Four injector bugs found while building the crash-state explorer,
   each pinned by a test that failed on the old implementation:

   1. [Until_write] cleared the whole rule on the first successful
      write anywhere in its target; a remapped sector must heal only
      its own block.
   2. [firing] charged a [Corrupt] rule's budget (and [fired] count)
      even when the read below failed and nothing was injected.
   3. [fired] forgot the count once the rule was disarmed.
   4. [firing] rebuilt [List.rev t.rules] on every I/O (perf; pinned
      here only by the arm-order determinism check). *)

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4217 |]) t

let test_until_write_per_block () =
  let _, inj, dev = make () in
  ignore
    (Fault.arm inj
       (Fault.rule ~persistence:Fault.Until_write (Fault.Range (10, 13))
          Fault.Fail_read));
  for b = 10 to 13 do
    match dev.Dev.read b with
    | Error Dev.Eio -> ()
    | _ -> Alcotest.fail "latent error should fire"
  done;
  (* Rewrite one sector: the drive remaps that sector only. *)
  Dev.write_exn dev 11 (block dev 'w');
  (match dev.Dev.read 11 with
  | Ok data -> check Alcotest.bytes "remapped block reads back" (block dev 'w') data
  | Error _ -> Alcotest.fail "written block must be healed");
  List.iter
    (fun b ->
      match dev.Dev.read b with
      | Error Dev.Eio -> ()
      | _ -> Alcotest.failf "block %d must keep failing after unrelated write" b)
    [ 10; 12; 13 ]

let test_corrupt_budget_survives_device_error () =
  (* Stack two injectors: the lower one makes the medium itself fail
     the first two reads, the upper one holds a Transient-2 corruption.
     The corruption must inject exactly twice, regardless of how many
     matching reads died below it. *)
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 64; seed = 9 }
      ()
  in
  let lo = Fault.create (Memdisk.dev d) in
  let hi = Fault.create (Fault.dev lo) in
  let dev = Fault.dev hi in
  Dev.write_exn dev 5 (block dev 'v');
  ignore
    (Fault.arm lo
       (Fault.rule ~persistence:(Fault.Transient 2) (Fault.Block 5) Fault.Fail_read));
  let id =
    Fault.arm hi
      (Fault.rule ~persistence:(Fault.Transient 2) (Fault.Block 5)
         (Fault.Corrupt (Fault.Noise 1)))
  in
  (* Two reads fail below: no injection, no budget consumed. *)
  (match dev.Dev.read 5 with Error Dev.Eio -> () | _ -> Alcotest.fail "1st");
  (match dev.Dev.read 5 with Error Dev.Eio -> () | _ -> Alcotest.fail "2nd");
  check Alcotest.int "no injections charged yet" 0 (Fault.fired hi id);
  (* Medium healed: the corruption budget is still whole. *)
  (match dev.Dev.read 5 with
  | Ok data ->
      check Alcotest.bool "3rd read corrupted" true
        (not (Bytes.equal data (block dev 'v')))
  | Error _ -> Alcotest.fail "3rd");
  (match dev.Dev.read 5 with
  | Ok data ->
      check Alcotest.bool "4th read corrupted" true
        (not (Bytes.equal data (block dev 'v')))
  | Error _ -> Alcotest.fail "4th");
  check Alcotest.int "exactly two injections" 2 (Fault.fired hi id);
  match dev.Dev.read 5 with
  | Ok data -> check Alcotest.bytes "budget spent: clean read" (block dev 'v') data
  | Error _ -> Alcotest.fail "5th"

let test_fired_survives_disarm () =
  let _, inj, dev = make () in
  let id = Fault.arm inj (Fault.rule (Fault.Block 7) Fault.Fail_read) in
  for _ = 1 to 3 do
    ignore (dev.Dev.read 7)
  done;
  Fault.disarm inj id;
  check Alcotest.int "count retained after disarm" 3 (Fault.fired inj id);
  let id2 = Fault.arm inj (Fault.rule (Fault.Block 8) Fault.Fail_read) in
  ignore (dev.Dev.read 8);
  Fault.disarm_all inj;
  check Alcotest.int "count retained after disarm_all" 1 (Fault.fired inj id2)

let test_arm_order_wins () =
  (* Two rules match the same block: the one armed first decides, and
     disarming it promotes the second — the deterministic order the
     allocation-free matcher must preserve. *)
  let _, inj, dev = make () in
  Dev.write_exn dev 9 (block dev 'k');
  let first = Fault.arm inj (Fault.rule (Fault.Block 9) Fault.Fail_read) in
  ignore (Fault.arm inj (Fault.rule (Fault.Block 9) (Fault.Corrupt Fault.Zeroes)));
  (match dev.Dev.read 9 with
  | Error Dev.Eio -> ()
  | _ -> Alcotest.fail "oldest rule must win");
  Fault.disarm inj first;
  match dev.Dev.read 9 with
  | Ok data -> check Alcotest.bytes "second rule now fires" (block dev '\000') data
  | Error _ -> Alcotest.fail "read"

let prop_until_write_per_block =
  QCheck.Test.make ~count:50 ~name:"Until_write heals exactly the written blocks"
    QCheck.(
      pair (int_range 0 20)
        (small_list (int_range 0 30)))
    (fun (lo, writes) ->
      let hi = lo + 9 in
      let _, inj, dev = make () in
      ignore
        (Fault.arm inj
           (Fault.rule ~persistence:Fault.Until_write (Fault.Range (lo, hi))
              Fault.Fail_read));
      List.iter (fun b -> ignore (dev.Dev.write b (block dev 'q'))) writes;
      let healed b = List.mem b writes in
      List.for_all
        (fun b ->
          match dev.Dev.read b with
          | Ok _ -> healed b
          | Error _ -> not (healed b))
        (List.init (hi - lo + 1) (fun i -> lo + i)))

let prop_transient_exact_injections =
  QCheck.Test.make ~count:50
    ~name:"Transient n = exactly n injections despite device errors"
    QCheck.(pair (int_range 0 4) (int_range 0 4))
    (fun (n, below_fails) ->
      let d =
        Memdisk.create
          ~params:{ Memdisk.default_params with Memdisk.num_blocks = 16; seed = 9 }
          ()
      in
      let lo = Fault.create (Memdisk.dev d) in
      let hi = Fault.create (Fault.dev lo) in
      let dev = Fault.dev hi in
      ignore (dev.Dev.write 3 (block dev 'u'));
      if below_fails > 0 then
        ignore
          (Fault.arm lo
             (Fault.rule ~persistence:(Fault.Transient below_fails) (Fault.Block 3)
                Fault.Fail_read));
      let id =
        Fault.arm hi
          (Fault.rule ~persistence:(Fault.Transient n) (Fault.Block 3)
             (Fault.Corrupt (Fault.Noise 2)))
      in
      for _ = 1 to below_fails + n + 3 do
        ignore (dev.Dev.read 3)
      done;
      Fault.fired hi id = n
      && (* after the budget, reads are clean again *)
      match dev.Dev.read 3 with
      | Ok data -> Bytes.equal data (block dev 'u')
      | Error _ -> false)

let prop_fired_stable_across_disarm =
  QCheck.Test.make ~count:50 ~name:"fired is stable across disarm"
    QCheck.(int_range 0 10)
    (fun hits ->
      let _, inj, dev = make () in
      let id = Fault.arm inj (Fault.rule (Fault.Block 2) Fault.Fail_read) in
      for _ = 1 to hits do
        ignore (dev.Dev.read 2)
      done;
      let before = Fault.fired inj id in
      Fault.disarm inj id;
      before = hits && Fault.fired inj id = hits)

let suites =
  [
    ( "fault.inject",
      [
        Alcotest.test_case "passthrough" `Quick test_passthrough;
        Alcotest.test_case "sticky read failure" `Quick test_sticky_read_failure;
        Alcotest.test_case "transient failure" `Quick test_transient_failure;
        Alcotest.test_case "write failure drops data" `Quick test_write_failure_drops_data;
        Alcotest.test_case "corruption is silent" `Quick test_corruption_silent;
        Alcotest.test_case "zeroes and bit flips" `Quick test_corruption_zeroes_and_bitflip;
        Alcotest.test_case "byte shift" `Quick test_byte_shift;
        Alcotest.test_case "range scratch" `Quick test_range_scratch;
        Alcotest.test_case "whole-disk failure" `Quick test_whole_disk;
        Alcotest.test_case "field tweak" `Quick test_tweak_corruption;
        Alcotest.test_case "fired counter / disarm" `Quick test_fired_counter_and_disarm;
        Alcotest.test_case "trace records outcomes" `Quick test_trace_records_outcomes;
        Alcotest.test_case "trace clear and toggle" `Quick test_trace_clear_and_toggle;
      ] );
    ( "fault.semantics",
      [
        Alcotest.test_case "Until_write heals per block" `Quick
          test_until_write_per_block;
        Alcotest.test_case "Corrupt budget survives device errors" `Quick
          test_corrupt_budget_survives_device_error;
        Alcotest.test_case "fired survives disarm" `Quick test_fired_survives_disarm;
        Alcotest.test_case "arm order wins deterministically" `Quick
          test_arm_order_wins;
        qtest prop_until_write_per_block;
        qtest prop_transient_exact_injections;
        qtest prop_fired_stable_across_disarm;
      ] );
  ]
