(** Write-log recording device.

    Wraps a {!Iron_disk.Dev.t} and, while recording, journals every
    successful write — block number, a private copy of the data, and
    the {e epoch} it landed in. Epochs are delimited by [sync]: all
    writes between two syncs share one epoch, which is exactly the
    window a disk is free to reorder them in. The crash-state
    explorer ({!Explore}) replays chosen subsets of this log onto a
    restored base image to materialize every crash state a
    fail-partial disk could have left behind.

    When recording is off the device is {e invisible}: every request
    is forwarded verbatim, no bytes are copied, and the layers above
    and below observe byte-identical traces and statistics (the
    differential tests pin this). *)

type entry = {
  w_seq : int;  (** global write sequence, from 0 *)
  w_block : int;
  w_data : bytes;  (** frozen private copy — do not mutate *)
  w_epoch : int;  (** sync boundaries delimit epochs, from 0 *)
  w_t : float;
      (** simulated device time at the write ([Dev.now] below); [0.0]
          when the service-time model is off, in which case [w_seq]
          carries the ordering — the same convention as {!Iron_obs.Obs}
          spans *)
  w_prov : Iron_obs.Prov.tag;
      (** the ambient causal tag sampled when the write was recorded:
          originating workload op, journal transaction + commit policy,
          block role, and any fault rule that fired *)
}

type t

val create : Iron_disk.Dev.t -> t
(** Recording starts {e off}. *)

val dev : t -> Iron_disk.Dev.t
(** The recorder as a device. Reads (both copying and zero-copy),
    geometry and the clock forward untouched; writes and syncs forward
    first and are recorded only when they succeed below — a write the
    device rejected never reached the medium, so it cannot be part of
    any crash state. *)

val set_recording : t -> bool -> unit
val recording : t -> bool

val clear : t -> unit
(** Drop the log and reset the epoch counter. *)

val entries : t -> entry array
(** The recorded writes, in issue order. A fresh array; the [w_data]
    buffers are shared and must not be mutated. *)

val take : t -> entry array * int
(** [entries t, epochs t], then {!clear}. Ownership of the log moves to
    the caller: the recorder drops its growable buffer, so a campaign
    that records thousands of workloads through short-lived recorders
    retains each write log (and its payload copies) only as long as the
    caller keeps the returned array alive. *)

val length : t -> int
(** Number of recorded writes. *)

val epochs : t -> int
(** Number of complete epochs closed so far, i.e. successful syncs
    that had at least one recorded write before them. Writes after the
    last sync sit in epoch [epochs t] (the final, unsynced epoch). *)
