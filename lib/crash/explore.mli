(** Crash-state exploration: systematic enumeration of the disk states
    a power cut could leave behind, in the style of bounded black-box
    crash testing (CrashMonkey / B3).

    The old power-cut suite modelled a crash as an in-order prefix of
    the write stream ([Fault.After n]). Real disks are weaker: within
    a sync-delimited epoch they may persist {e any subset} of the
    issued writes (respecting per-block write order), may tear a block
    in half, and a write-back cache that acknowledges syncs without
    flushing extends that reorder window across the whole run. The
    transactional-checksum feature (Tc, paper §6.1) exists precisely
    because of this: a commit block that "arrives" before its payload
    turns journal replay into garbage unless the mismatch is detected.

    The explorer:

    + records a racing workload through a {!Wlog} device on top of a
      {!Iron_disk.Cow} overlay (durable, fsync'd files are created
      {e before} recording starts);
    + enumerates crash-state specs per reorder window — every
      sync-delimited epoch (barriers honoured) plus the whole log
      (write-back cache that lied about every sync). Within a window:
      global prefixes, per-block dropped write tails, torn variants of
      the first dropped write, and seeded random per-block prefixes,
      deduplicated by final disk content, bounded by [max_states];
    + materializes each state cheaply: O(dirty) [Cow.restore] of the
      base image plus one poke per chosen block, then remounts and
      checks invariants — the volume mounts, no panic during recovery,
      every durable file intact, and (ext3 family) [Fsck.run] clean.

    The run fans out over {!Iron_util.Pool} with one COW scratch per
    worker domain; the report is byte-identical for any [jobs]. *)

type kind = Unmountable | Data_loss | Fsck_unclean | Panic

val kind_to_string : kind -> string

type violation = {
  state : string;  (** which crash state, e.g. ["all/drop blk 301 w1"] *)
  v_kind : kind;
  detail : string;
}

(** {2 Causal forensics}

    When [explore ~forensics:true] finds a violation it asks {e which
    writes did it}: the crash-state spec is re-expressed as per-block
    persisted-prefix counts over the whole log, and each dropped
    suffix is greedily restored and the state re-checked (O(dirty) per
    probe via [Cow.restore]). Suffixes whose restoration leaves the
    violation standing are irrelevant; the rest form a minimized
    culprit set. Each culprit carries the provenance its first dropped
    write was recorded with ({!Wlog.entry.w_prov}): originating
    workload op, journal transaction and commit policy, block role,
    epoch, and any fault rule that fired. *)

type culprit = {
  cu_block : int;
  cu_label : string;  (** block type from the gray-box classifier *)
  cu_role : string;
      (** journal role of the first dropped write: ["payload"],
          ["desc"], ["commit"], ["checkpoint"], ["data"], ... *)
  cu_txn : int;  (** journal transaction id; [-1] outside any txn *)
  cu_policy : string;  (** commit policy, e.g. ["ordered+tc"] *)
  cu_epoch : int;  (** sync-delimited epoch of the first dropped write *)
  cu_op : int;  (** originating workload op index; [-1] if none *)
  cu_op_label : string;  (** e.g. ["write /racing2"] *)
  cu_rule : string;  (** fault rule that fired on the op, or [""] *)
  cu_first_seq : int;  (** w_seq of the first dropped write *)
  cu_dropped : int;  (** how many writes to this block were dropped *)
  cu_torn : bool;  (** the first dropped write was torn, not dropped *)
}

type chain = {
  ch_state : string;  (** the violating crash state's label *)
  ch_kind : kind;
  ch_detail : string;
  ch_probes : int;  (** re-materialize-and-recheck probes spent *)
  ch_culprits : culprit list;  (** minimized, sorted by block *)
  ch_summary : string;
      (** one-line root cause, e.g. ["commit record of txn 7 persisted
          without its payload (epoch 3)"] *)
}

(** One recorded write, for the merged timeline ([iron explain]). *)
type logged = {
  lg_seq : int;
  lg_block : int;
  lg_epoch : int;
  lg_label : string;
  lg_t : float;
  lg_op : int;
  lg_op_label : string;
  lg_txn : int;
  lg_policy : string;
  lg_role : string;
  lg_rule : string;
}

type report = {
  fs : string;
  log_len : int;  (** recorded writes in the crash window *)
  rep_epochs : int;  (** sync-delimited epochs in the log *)
  states : int;  (** distinct crash states materialized and checked *)
  violations : violation list;
  tc_detected : int;
      (** states where recovery refused a transaction on a
          transactional-checksum mismatch — the detections Tc buys *)
  chains : chain list;
      (** one per violation, in violation order; [[]] unless
          [~forensics:true] *)
  log : logged list;
      (** the full recorded write log with provenance; [[]] unless
          [~forensics:true] *)
}

val count : report -> kind -> int
(** Violations of one kind. *)

val explore :
  ?jobs:int ->
  ?seed:int ->
  ?max_states:int ->
  ?num_blocks:int ->
  ?durable_files:int ->
  ?racing_files:int ->
  ?forensics:bool ->
  ?obs:Iron_obs.Obs.t ->
  Iron_vfs.Fs.brand ->
  report
(** [explore brand] runs the whole pipeline. Defaults: [jobs = 1],
    [seed = 7], [max_states = 1000] (systematic states first, seeded
    random per-block prefixes top up to the bound), [num_blocks =
    2048], [durable_files = 4], [racing_files = 4], [forensics =
    false]. With [~obs] the run bumps [crash.states_explored],
    [crash.violations], [crash.tc_detected] and per-kind counters, and
    wraps the phases in [crash.*] spans. With [~forensics:true] every
    violation is minimized to a culprit set (adding
    [crash.forensics.*] counters and a [crash.forensics] span) and the
    provenance-tagged write log is kept in the report. Deterministic:
    the report — including chains and log — is a pure function of
    [(brand, seed, max_states, num_blocks, durable_files,
    racing_files, forensics)] — [jobs] cannot change it. *)

(** {2 Per-workload sessions}

    The workload-fuzzing campaign ({!Iron_fuzz}) replays thousands of
    {e generated} workloads through the same record / enumerate /
    materialize / check machinery. These entry points expose the
    pipeline one workload at a time, with the durability oracle and the
    crash-state corpus supplied by the caller:

    + {!make_base} builds the shared pre-workload image once per brand
      (mkfs + caller setup + clean unmount, frozen);
    + {!record_session} restores that image on the per-domain scratch
      COW, remounts, snapshots, and records the caller's ops through a
      {!Wlog};
    + {!enumerate_session} enumerates crash-state specs exactly as the
      fixed-workload explorer does; {!spec_digest} gives each state a
      baseline-relative content identity for cross-workload dedup, and
      {!spec_epoch} the largest epoch whose VFS activity is provably
      durable in that state;
    + {!check_spec} materializes and checks one spec against
      caller-supplied per-path expectations. *)

type session
(** One recorded workload: frozen baseline + write log. Owned by one
    campaign job at a time (internal caches are not domain-safe). *)

val session_log_len : session -> int
val session_epochs : session -> int

val session_log_bytes : session -> int
(** Payload bytes the session's write log retains — the recorder's
    buffers move here wholesale ({!Iron_crash.Wlog.take}), so this is
    exactly one workload's crash-exploration residency. Campaigns pin
    their peak per-job residency with it. *)

val make_base :
  params:Iron_disk.Memdisk.params ->
  setup:(Iron_vfs.Fs.boxed -> unit) ->
  Iron_vfs.Fs.brand ->
  Iron_disk.Cow.image
(** mkfs on a blank volume, run [setup] (which must leave the volume
    sync'd), cleanly unmount, freeze. Runs on the calling domain's
    scratch COW; the frozen image is shareable across domains.
    @raise Failure if mkfs/mount/setup/unmount fails. *)

val record_session :
  params:Iron_disk.Memdisk.params ->
  base:Iron_disk.Cow.image ->
  ops:(Iron_vfs.Fs.boxed -> closed_epochs:(unit -> int) -> unit) ->
  Iron_vfs.Fs.brand ->
  session
(** Restore [base], remount (its superblock writes land before the
    snapshot), freeze the session baseline, then record [ops] through a
    {!Wlog}. [closed_epochs] reads the recorder's epoch counter, so the
    workload driver can tag its durability expectations with the epoch
    each [fsync]/[sync] closed. A model panic during [ops] simply ends
    the recording — abandoning the instance is the crash. *)

type state_spec
(** One crash-state spec of a session. *)

val spec_label : state_spec -> string

val enumerate_session :
  seed:int -> max_states:int -> session -> state_spec list
(** Same enumeration as the fixed-workload explorer: systematic states
    per reorder window (every epoch plus the whole log), then seeded
    random per-block prefixes up to [max_states], deduplicated by final
    content within the session. *)

val spec_epoch : session -> state_spec -> int
(** The largest [E] such that every recorded write of epochs [< E] is
    persisted by this spec. All VFS activity from epochs [< E] is
    durable in this state; anything later may be arbitrarily partial.
    Whole-log reorderings that drop early writes score [0] — the lying
    write-back cache promised nothing. *)

val spec_honest : session -> state_spec -> bool
(** Whether the spec is producible by a barrier-honouring disk: no
    persisted write (torn included) belongs to an epoch later than the
    first dropped write's epoch. An honest disk only issues the next
    epoch's writes after the previous epoch is durable, so a state
    that keeps a late-epoch write while dropping an earlier one takes
    a lying write-back cache (the §6.1 scenario). Every epoch-window
    state and every whole-log {e cut} is honest; whole-log drops and
    random prefixes generally are not. *)

val spec_digest : session -> state_spec -> string
(** Raw SHA-1 (20 bytes) of the final disk content relative to the
    session baseline, normalized (baseline-identical rewrites ignored,
    torn blocks hashed by their merged bytes). Two specs over the same
    base image collide iff they leave identical disks, so a campaign
    can dedup crash states {e across} workloads. *)

(** What a durability oracle asserts about one path in one crash
    state. [ex_allowed = None] leaves content unchecked (the path had
    un-synced data writes in flight). *)
type expect = {
  ex_path : string;
  ex_presence : [ `Present | `Absent | `Any ];
  ex_allowed : string list option;
}

type outcome = { viol : (kind * string) option; tc : bool }

val check_spec :
  params:Iron_disk.Memdisk.params ->
  brand:Iron_vfs.Fs.brand ->
  fsck:bool ->
  expects:(epoch:int -> expect list) ->
  session ->
  state_spec ->
  outcome
(** Materialize the spec on the per-domain scratch COW, remount, check
    mount/panic invariants and [expects ~epoch:(spec_epoch _ spec)],
    unmount, and (with [~fsck:true]) cross-check with the offline
    checker. Expectation failures report as {!Data_loss}. *)

(** The multi-tenant check outcome: {e every} failed expectation, so a
    blast-radius campaign can attribute each loss to the tenant owning
    the path. [oa_global] carries mount-level trouble (panic,
    unmountable, failed unmount), which preempts the per-path walk;
    [oa_fsck] the offline checker's first error, when requested. *)
type outcome_all = {
  oa_global : (kind * string) option;
  oa_failed : (string * string) list;  (** (path, detail), in expect order *)
  oa_fsck : string option;
  oa_tc : bool;
}

val check_spec_all :
  params:Iron_disk.Memdisk.params ->
  brand:Iron_vfs.Fs.brand ->
  fsck:bool ->
  expects:(epoch:int -> expect list) ->
  session ->
  state_spec ->
  outcome_all
(** Like {!check_spec} but collecting all expectation failures instead
    of stopping at the first. *)

val spec_first_dropped :
  session -> state_spec -> Iron_obs.Prov.tag option
(** Provenance of the earliest write (by sequence) the spec drops or
    tears — the proximate cause a blast-radius campaign charges the
    crash state to. [None] when the spec persists the whole log. *)

type forensics_ctx

val session_forensics :
  params:Iron_disk.Memdisk.params -> fsck:bool -> session -> forensics_ctx

val explain_spec :
  check:(state_spec -> outcome) ->
  forensics_ctx ->
  session ->
  state_spec * kind * string ->
  chain
(** The forensics minimizer over a session violation: greedily restore
    dropped per-block suffixes, re-check via [check], and keep the
    suffixes whose restoration flips the outcome — same algorithm (and
    chain shape) as [explore ~forensics:true]. *)

val pp_report : Format.formatter -> report -> unit
(** One summary line plus the first few violations. Byte-stable: does
    not mention forensics (goldens pin it). *)

val pp_chain : Format.formatter -> chain -> unit
(** The violation, its root-cause summary, and each culprit with its
    provenance, one per line. *)

val pp_timeline : ?chains:chain list -> Format.formatter -> report -> unit
(** The merged write-log timeline: one line per recorded write —
    sequence, epoch, block and type, journal txn/role, originating op,
    fault rule — with culprit writes of any of [?chains] flagged
    [!!]. *)
