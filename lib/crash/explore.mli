(** Crash-state exploration: systematic enumeration of the disk states
    a power cut could leave behind, in the style of bounded black-box
    crash testing (CrashMonkey / B3).

    The old power-cut suite modelled a crash as an in-order prefix of
    the write stream ([Fault.After n]). Real disks are weaker: within
    a sync-delimited epoch they may persist {e any subset} of the
    issued writes (respecting per-block write order), may tear a block
    in half, and a write-back cache that acknowledges syncs without
    flushing extends that reorder window across the whole run. The
    transactional-checksum feature (Tc, paper §6.1) exists precisely
    because of this: a commit block that "arrives" before its payload
    turns journal replay into garbage unless the mismatch is detected.

    The explorer:

    + records a racing workload through a {!Wlog} device on top of a
      {!Iron_disk.Cow} overlay (durable, fsync'd files are created
      {e before} recording starts);
    + enumerates crash-state specs per reorder window — every
      sync-delimited epoch (barriers honoured) plus the whole log
      (write-back cache that lied about every sync). Within a window:
      global prefixes, per-block dropped write tails, torn variants of
      the first dropped write, and seeded random per-block prefixes,
      deduplicated by final disk content, bounded by [max_states];
    + materializes each state cheaply: O(dirty) [Cow.restore] of the
      base image plus one poke per chosen block, then remounts and
      checks invariants — the volume mounts, no panic during recovery,
      every durable file intact, and (ext3 family) [Fsck.run] clean.

    The run fans out over {!Iron_util.Pool} with one COW scratch per
    worker domain; the report is byte-identical for any [jobs]. *)

type kind = Unmountable | Data_loss | Fsck_unclean | Panic

val kind_to_string : kind -> string

type violation = {
  state : string;  (** which crash state, e.g. ["all/drop blk 301 w1"] *)
  v_kind : kind;
  detail : string;
}

(** {2 Causal forensics}

    When [explore ~forensics:true] finds a violation it asks {e which
    writes did it}: the crash-state spec is re-expressed as per-block
    persisted-prefix counts over the whole log, and each dropped
    suffix is greedily restored and the state re-checked (O(dirty) per
    probe via [Cow.restore]). Suffixes whose restoration leaves the
    violation standing are irrelevant; the rest form a minimized
    culprit set. Each culprit carries the provenance its first dropped
    write was recorded with ({!Wlog.entry.w_prov}): originating
    workload op, journal transaction and commit policy, block role,
    epoch, and any fault rule that fired. *)

type culprit = {
  cu_block : int;
  cu_label : string;  (** block type from the gray-box classifier *)
  cu_role : string;
      (** journal role of the first dropped write: ["payload"],
          ["desc"], ["commit"], ["checkpoint"], ["data"], ... *)
  cu_txn : int;  (** journal transaction id; [-1] outside any txn *)
  cu_policy : string;  (** commit policy, e.g. ["ordered+tc"] *)
  cu_epoch : int;  (** sync-delimited epoch of the first dropped write *)
  cu_op : int;  (** originating workload op index; [-1] if none *)
  cu_op_label : string;  (** e.g. ["write /racing2"] *)
  cu_rule : string;  (** fault rule that fired on the op, or [""] *)
  cu_first_seq : int;  (** w_seq of the first dropped write *)
  cu_dropped : int;  (** how many writes to this block were dropped *)
  cu_torn : bool;  (** the first dropped write was torn, not dropped *)
}

type chain = {
  ch_state : string;  (** the violating crash state's label *)
  ch_kind : kind;
  ch_detail : string;
  ch_probes : int;  (** re-materialize-and-recheck probes spent *)
  ch_culprits : culprit list;  (** minimized, sorted by block *)
  ch_summary : string;
      (** one-line root cause, e.g. ["commit record of txn 7 persisted
          without its payload (epoch 3)"] *)
}

(** One recorded write, for the merged timeline ([iron explain]). *)
type logged = {
  lg_seq : int;
  lg_block : int;
  lg_epoch : int;
  lg_label : string;
  lg_t : float;
  lg_op : int;
  lg_op_label : string;
  lg_txn : int;
  lg_policy : string;
  lg_role : string;
  lg_rule : string;
}

type report = {
  fs : string;
  log_len : int;  (** recorded writes in the crash window *)
  rep_epochs : int;  (** sync-delimited epochs in the log *)
  states : int;  (** distinct crash states materialized and checked *)
  violations : violation list;
  tc_detected : int;
      (** states where recovery refused a transaction on a
          transactional-checksum mismatch — the detections Tc buys *)
  chains : chain list;
      (** one per violation, in violation order; [[]] unless
          [~forensics:true] *)
  log : logged list;
      (** the full recorded write log with provenance; [[]] unless
          [~forensics:true] *)
}

val count : report -> kind -> int
(** Violations of one kind. *)

val explore :
  ?jobs:int ->
  ?seed:int ->
  ?max_states:int ->
  ?num_blocks:int ->
  ?durable_files:int ->
  ?racing_files:int ->
  ?forensics:bool ->
  ?obs:Iron_obs.Obs.t ->
  Iron_vfs.Fs.brand ->
  report
(** [explore brand] runs the whole pipeline. Defaults: [jobs = 1],
    [seed = 7], [max_states = 1000] (systematic states first, seeded
    random per-block prefixes top up to the bound), [num_blocks =
    2048], [durable_files = 4], [racing_files = 4], [forensics =
    false]. With [~obs] the run bumps [crash.states_explored],
    [crash.violations], [crash.tc_detected] and per-kind counters, and
    wraps the phases in [crash.*] spans. With [~forensics:true] every
    violation is minimized to a culprit set (adding
    [crash.forensics.*] counters and a [crash.forensics] span) and the
    provenance-tagged write log is kept in the report. Deterministic:
    the report — including chains and log — is a pure function of
    [(brand, seed, max_states, num_blocks, durable_files,
    racing_files, forensics)] — [jobs] cannot change it. *)

val pp_report : Format.formatter -> report -> unit
(** One summary line plus the first few violations. Byte-stable: does
    not mention forensics (goldens pin it). *)

val pp_chain : Format.formatter -> chain -> unit
(** The violation, its root-cause summary, and each culprit with its
    provenance, one per line. *)

val pp_timeline : ?chains:chain list -> Format.formatter -> report -> unit
(** The merged write-log timeline: one line per recorded write —
    sequence, epoch, block and type, journal txn/role, originating op,
    fault rule — with culprit writes of any of [?chains] flagged
    [!!]. *)
