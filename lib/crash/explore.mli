(** Crash-state exploration: systematic enumeration of the disk states
    a power cut could leave behind, in the style of bounded black-box
    crash testing (CrashMonkey / B3).

    The old power-cut suite modelled a crash as an in-order prefix of
    the write stream ([Fault.After n]). Real disks are weaker: within
    a sync-delimited epoch they may persist {e any subset} of the
    issued writes (respecting per-block write order), may tear a block
    in half, and a write-back cache that acknowledges syncs without
    flushing extends that reorder window across the whole run. The
    transactional-checksum feature (Tc, paper §6.1) exists precisely
    because of this: a commit block that "arrives" before its payload
    turns journal replay into garbage unless the mismatch is detected.

    The explorer:

    + records a racing workload through a {!Wlog} device on top of a
      {!Iron_disk.Cow} overlay (durable, fsync'd files are created
      {e before} recording starts);
    + enumerates crash-state specs per reorder window — every
      sync-delimited epoch (barriers honoured) plus the whole log
      (write-back cache that lied about every sync). Within a window:
      global prefixes, per-block dropped write tails, torn variants of
      the first dropped write, and seeded random per-block prefixes,
      deduplicated by final disk content, bounded by [max_states];
    + materializes each state cheaply: O(dirty) [Cow.restore] of the
      base image plus one poke per chosen block, then remounts and
      checks invariants — the volume mounts, no panic during recovery,
      every durable file intact, and (ext3 family) [Fsck.run] clean.

    The run fans out over {!Iron_util.Pool} with one COW scratch per
    worker domain; the report is byte-identical for any [jobs]. *)

type kind = Unmountable | Data_loss | Fsck_unclean | Panic

val kind_to_string : kind -> string

type violation = {
  state : string;  (** which crash state, e.g. ["all/drop blk 301 w1"] *)
  v_kind : kind;
  detail : string;
}

type report = {
  fs : string;
  log_len : int;  (** recorded writes in the crash window *)
  rep_epochs : int;  (** sync-delimited epochs in the log *)
  states : int;  (** distinct crash states materialized and checked *)
  violations : violation list;
  tc_detected : int;
      (** states where recovery refused a transaction on a
          transactional-checksum mismatch — the detections Tc buys *)
}

val count : report -> kind -> int
(** Violations of one kind. *)

val explore :
  ?jobs:int ->
  ?seed:int ->
  ?max_states:int ->
  ?num_blocks:int ->
  ?durable_files:int ->
  ?racing_files:int ->
  ?obs:Iron_obs.Obs.t ->
  Iron_vfs.Fs.brand ->
  report
(** [explore brand] runs the whole pipeline. Defaults: [jobs = 1],
    [seed = 7], [max_states = 1000] (systematic states first, seeded
    random per-block prefixes top up to the bound), [num_blocks =
    2048], [durable_files = 4], [racing_files = 4]. With [~obs] the
    run bumps [crash.states_explored], [crash.violations],
    [crash.tc_detected] and per-kind counters, and wraps the phases in
    [crash.*] spans. Deterministic: the report is a pure function of
    [(brand, seed, max_states, num_blocks, durable_files,
    racing_files)] — [jobs] cannot change it. *)

val pp_report : Format.formatter -> report -> unit
(** One summary line plus the first few violations. *)
