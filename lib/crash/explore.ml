(* Crash-state exploration. See explore.mli for the model.

   Pipeline:

     record      mkfs + durable (fsync'd) files, clean unmount, remount;
                 snapshot the COW base image; run the racing workload
                 through a Wlog recorder (every write copied, epochs at
                 sync boundaries)
     enumerate   pure: turn the log into crash-state specs, one reorder
                 window per epoch plus the whole log, deduplicated by
                 final disk content
     check       per state: O(dirty) restore of the base image + one
                 poke per chosen block, remount, verify invariants
     aggregate   fold per-state outcomes (in spec order) into a report

   The check phase is embarrassingly parallel: a spec is immutable, the
   base image is frozen, and each worker domain keeps one private COW
   scratch in domain-local storage — the same discipline as the
   fingerprinting executor. Results are slotted by spec index, so the
   report cannot depend on the worker count. *)

module Cow = Iron_disk.Cow
module Memdisk = Iron_disk.Memdisk
module Dev = Iron_disk.Dev
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Obs = Iron_obs.Obs
module Prng = Iron_util.Prng
module Pool = Iron_util.Pool

type kind = Unmountable | Data_loss | Fsck_unclean | Panic

let kind_to_string = function
  | Unmountable -> "unmountable"
  | Data_loss -> "data-loss"
  | Fsck_unclean -> "fsck-unclean"
  | Panic -> "panic"

type violation = { state : string; v_kind : kind; detail : string }

type report = {
  fs : string;
  log_len : int;
  rep_epochs : int;
  states : int;
  violations : violation list;
  tc_detected : int;
}

let count r k = List.length (List.filter (fun v -> v.v_kind = k) r.violations)

(* ------------------------------------------------------------------ *)
(* Record                                                              *)
(* ------------------------------------------------------------------ *)

(* Deterministic file contents; sizes span one to two blocks so each
   racing commit journals several payload blocks. *)
let content tag i =
  Printf.sprintf "%s-%d-%s" tag i
    (String.make
       (900 + (i * 1777 mod 6200))
       (Char.chr (Char.code 'a' + (i mod 26))))

type recorded = {
  baseline : Cow.image;
  entries : Wlog.entry array;
  n_epochs : int;
  durable : (string * string) list;
}

let fail_setup what e =
  failwith ("crash explore: " ^ what ^ ": " ^ Errno.to_string e)

let record ~params ~durable_files ~racing_files brand =
  let cow = Cow.create ~params () in
  Cow.set_time_model cow false;
  let wlog = Wlog.create (Cow.dev cow) in
  let dev = Wlog.dev wlog in
  (match Fs.mkfs brand dev with Ok () -> () | Error e -> fail_setup "mkfs" e);
  let durable =
    List.init durable_files (fun i ->
        (Printf.sprintf "/durable%d" i, content "durable" i))
  in
  (* Phase 1: durable state. Each file is fsync'd and the volume is
     cleanly unmounted (checkpointed), so every durable byte is home
     before the crash window opens. *)
  (match Fs.mount brand dev with
  | Error e -> fail_setup "mount" e
  | Ok (Fs.Boxed ((module F), t)) ->
      List.iter
        (fun (path, data) ->
          match F.creat t path with
          | Error e -> fail_setup path e
          | Ok fd ->
              (match F.write t fd ~off:0 (Bytes.of_string data) with
              | Ok _ -> ()
              | Error e -> fail_setup path e);
              (match F.fsync t fd with Ok () -> () | Error e -> fail_setup path e);
              ignore (F.close t fd))
        durable;
      (match F.unmount t with Ok () -> () | Error e -> fail_setup "unmount" e));
  (* Phase 2: remount (recovery is a no-op, but its superblock writes
     must land before the snapshot), freeze the baseline, and only then
     start recording the racing workload. The mounted instance is
     abandoned afterwards — that is the crash. *)
  match Fs.mount brand dev with
  | Error e -> fail_setup "remount" e
  | Ok (Fs.Boxed ((module F), t)) ->
      let baseline = Cow.snapshot cow in
      Wlog.set_recording wlog true;
      (try
         for i = 0 to racing_files - 1 do
           match F.creat t (Printf.sprintf "/racing%d" i) with
           | Error _ -> ()
           | Ok fd ->
               ignore
                 (F.write t fd ~off:0 (Bytes.of_string (content "racing" (100 + i))));
               (match F.fsync t fd with Ok () | Error _ -> ());
               ignore (F.close t fd)
         done
       with Klog.Panic _ -> ());
      {
        baseline;
        entries = Wlog.entries wlog;
        n_epochs = Wlog.epochs wlog;
        durable;
      }

(* ------------------------------------------------------------------ *)
(* Enumerate                                                           *)
(* ------------------------------------------------------------------ *)

(* A crash-state spec: the final persisted content choice per block
   ([choices] maps block -> log index whose data survives; blocks
   absent keep the baseline), plus at most one torn write — the first
   [len] bytes of log entry [idx] land on top of the otherwise-chosen
   content of its block. Specs respect per-block write order by
   construction: each block persists a prefix of its own writes. *)
type spec = {
  label : string;
  choices : (int * int) array; (* (block, entry idx), sorted by block *)
  torn : (int * int) option; (* (entry idx, persisted bytes) *)
}

(* One reorder window: the entries a crash may persist any admissible
   subset of, on top of a durable prefix (the closed epochs before
   it). *)
type window = {
  w_name : string;
  durable_last : (int * int) list; (* per-block last durable write *)
  blocks : int array; (* window blocks, in first-touch order *)
  groups : int array array; (* per block: its window writes, in order *)
}

let window_of entries ~name ~in_durable ~in_window =
  let durable = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Wlog.entry) ->
      if in_durable e then Hashtbl.replace durable e.Wlog.w_block i)
    entries;
  let order = ref [] in
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Wlog.entry) ->
      if in_window e then
        match Hashtbl.find_opt groups e.Wlog.w_block with
        | Some l -> l := i :: !l
        | None ->
            Hashtbl.add groups e.Wlog.w_block (ref [ i ]);
            order := e.Wlog.w_block :: !order)
    entries;
  let blocks = Array.of_list (List.rev !order) in
  let durable_last =
    List.sort compare
      (Hashtbl.fold (fun b i acc -> (b, i) :: acc) durable [])
  in
  {
    w_name = name;
    durable_last;
    blocks;
    groups =
      Array.map
        (fun b -> Array.of_list (List.rev !(Hashtbl.find groups b)))
        blocks;
  }

(* Materialize a spec's [choices] from per-block persisted counts:
   count [c] for window block [j] keeps that block's first [c] window
   writes (content = the [c]-th), count [0] falls back to the durable
   prefix (or baseline). *)
let choices_of w counts =
  let m = Hashtbl.create 64 in
  List.iter (fun (b, i) -> Hashtbl.replace m b i) w.durable_last;
  Array.iteri
    (fun j c -> if c > 0 then Hashtbl.replace m w.blocks.(j) w.groups.(j).(c - 1))
    counts;
  let l = Hashtbl.fold (fun b i acc -> (b, i) :: acc) m [] in
  Array.of_list (List.sort compare l)

(* Dedup key: the final content assignment. Two specs from different
   windows that persist the same writes are one crash state. *)
let key_of choices torn =
  let buf = Buffer.create 128 in
  Array.iter
    (fun (b, i) -> Buffer.add_string buf (Printf.sprintf "%d:%d;" b i))
    choices;
  (match torn with
  | Some (i, len) -> Buffer.add_string buf (Printf.sprintf "T%d:%d" i len)
  | None -> ());
  Buffer.contents buf

let enumerate ~seed ~max_states (r : recorded) =
  let entries = r.entries in
  let seen = Hashtbl.create 1024 in
  let specs = ref [] in
  let n_specs = ref 0 in
  let add label choices torn =
    if !n_specs < max_states then begin
      let key = key_of choices torn in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        specs := { label; choices; torn } :: !specs;
        incr n_specs
      end
    end
  in
  let half = ref 2048 in
  if Array.length entries > 0 then
    half := Bytes.length entries.(0).Wlog.w_data / 2;
  let systematic w =
    let counts = Array.make (Array.length w.blocks) 0 in
    let full () = Array.iteri (fun j g -> counts.(j) <- Array.length g) w.groups in
    let zero () = Array.fill counts 0 (Array.length counts) 0 in
    (* Global prefixes: the classic in-order power cut, one state per
       cut point. Walk the window in seq order, persisting one more
       write each step. *)
    zero ();
    add (w.w_name ^ "/cut0") (choices_of w counts) None;
    let seq_order =
      (* (window position -> block slot) in global write order *)
      let l = ref [] in
      Array.iteri
        (fun j g -> Array.iter (fun i -> l := (i, j) :: !l) g)
        w.groups;
      List.sort compare !l
    in
    List.iteri
      (fun n (_, j) ->
        counts.(j) <- counts.(j) + 1;
        add (Printf.sprintf "%s/cut%d" w.w_name (n + 1)) (choices_of w counts) None)
      seq_order;
    (* Drop-tail: persist everything except the tail of one block's
       writes — the reordered-commit shape (e.g. a journal payload
       block lost while the later commit block made it). Plus a torn
       variant where the first dropped write half-persisted. *)
    Array.iteri
      (fun j g ->
        let k = Array.length g in
        for kept = 0 to k - 1 do
          full ();
          counts.(j) <- kept;
          let choices = choices_of w counts in
          add
            (Printf.sprintf "%s/drop blk %d w%d" w.w_name w.blocks.(j) kept)
            choices None;
          add
            (Printf.sprintf "%s/torn blk %d w%d" w.w_name w.blocks.(j) kept)
            choices
            (Some (g.(kept), !half))
        done)
      w.groups
  in
  (* Barrier-honouring windows: one per sync-delimited epoch. *)
  let windows = ref [] in
  for e = 0 to r.n_epochs do
    let w =
      window_of entries
        ~name:(Printf.sprintf "e%d" e)
        ~in_durable:(fun en -> en.Wlog.w_epoch < e)
        ~in_window:(fun en -> en.Wlog.w_epoch = e)
    in
    if Array.length w.blocks > 0 then windows := w :: !windows
  done;
  (* The write-back-cache window: a disk that acknowledged every sync
     without flushing may reorder the whole log — the scenario the
     paper's transactional checksum exists for. *)
  let whole =
    window_of entries ~name:"all"
      ~in_durable:(fun _ -> false)
      ~in_window:(fun _ -> true)
  in
  let windows = List.rev !windows @ [ whole ] in
  List.iter systematic windows;
  (* Seeded random per-block prefixes over the whole-log window top the
     enumeration up to [max_states]. *)
  if Array.length whole.blocks > 0 then begin
    let rng = Prng.create (seed lxor 0xC4A54) in
    let counts = Array.make (Array.length whole.blocks) 0 in
    let attempts = ref 0 in
    while !n_specs < max_states && !attempts < 16 * max_states do
      incr attempts;
      Array.iteri
        (fun j g -> counts.(j) <- Prng.int rng (Array.length g + 1))
        whole.groups;
      let torn =
        if Prng.int rng 4 = 0 then begin
          (* Tear the first unpersisted write of one random block. *)
          let j = Prng.int rng (Array.length whole.blocks) in
          let g = whole.groups.(j) in
          if counts.(j) < Array.length g then
            Some (g.(counts.(j)), 1 + Prng.int rng (max 1 (!half * 2 - 1)))
          else None
        end
        else None
      in
      add (Printf.sprintf "all/rand%d" !attempts) (choices_of whole counts) torn
    done
  end;
  List.rev !specs

(* ------------------------------------------------------------------ *)
(* Check                                                               *)
(* ------------------------------------------------------------------ *)

(* Allocation-free substring scan (needle expected lowercase). *)
let contains_sub ~needle hay =
  let nlen = String.length needle and hlen = String.length hay in
  let limit = hlen - nlen in
  let rec matches i j =
    j = nlen || (hay.[i + j] = needle.[j] && matches i (j + 1))
  in
  let rec at i = i <= limit && (matches i 0 || at (i + 1)) in
  nlen = 0 || at 0

type outcome = { viol : (kind * string) option; tc : bool }

(* Per-domain scratch COW device, reused across states (restore is
   O(blocks the previous state dirtied)). *)
let scratch_slot : (int * Cow.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch ~params =
  let slot = Domain.DLS.get scratch_slot in
  match !slot with
  | Some (nb, c) when nb = params.Memdisk.num_blocks -> c
  | Some _ | None ->
      let c = Cow.create ~params () in
      Cow.set_time_model c false;
      slot := Some (params.Memdisk.num_blocks, c);
      c

let check_state ~params ~brand ~fsck (r : recorded) spec =
  let cow = scratch ~params in
  Cow.restore cow r.baseline;
  Array.iter
    (fun (b, i) -> Cow.poke cow b r.entries.(i).Wlog.w_data)
    spec.choices;
  (match spec.torn with
  | None -> ()
  | Some (i, len) ->
      let e = r.entries.(i) in
      let cur = Cow.peek cow e.Wlog.w_block in
      let len = min len (Bytes.length e.Wlog.w_data) in
      Bytes.blit e.Wlog.w_data 0 cur 0 len;
      Cow.poke cow e.Wlog.w_block cur);
  let dev = Cow.dev cow in
  (* Power is back: remount and hold the invariants up to the light. *)
  match (try `Mounted (Fs.mount brand dev) with Klog.Panic m -> `Panic m) with
  | `Panic m -> { viol = Some (Panic, "panic during recovery: " ^ m); tc = false }
  | `Mounted (Error e) ->
      { viol = Some (Unmountable, "mount: " ^ Errno.to_string e); tc = false }
  | `Mounted (Ok (Fs.Boxed ((module F), t))) -> (
      let tc =
        List.exists
          (fun (en : Klog.entry) ->
            contains_sub ~needle:"checksum mismatch"
              (String.lowercase_ascii en.Klog.message))
          (Klog.entries (F.klog t))
      in
      try
        let missing = ref None in
        List.iter
          (fun (path, want) ->
            if !missing = None then
              match F.open_ t path Fs.Rd with
              | Error e ->
                  missing := Some (path ^ ": open " ^ Errno.to_string e)
              | Ok fd ->
                  (match F.read t fd ~off:0 ~len:(String.length want) with
                  | Ok got when Bytes.to_string got = want -> ()
                  | Ok _ -> missing := Some (path ^ ": content mismatch")
                  | Error e ->
                      missing := Some (path ^ ": read " ^ Errno.to_string e));
                  ignore (F.close t fd))
          r.durable;
        match !missing with
        | Some d -> { viol = Some (Data_loss, d); tc }
        | None -> (
            match F.unmount t with
            | Error e ->
                { viol = Some (Unmountable, "unmount: " ^ Errno.to_string e); tc }
            | Ok () ->
                if not fsck then { viol = None; tc }
                else (
                  match Iron_ext3.Fsck.run dev with
                  | Error e ->
                      {
                        viol = Some (Fsck_unclean, "fsck: " ^ Errno.to_string e);
                        tc;
                      }
                  | Ok rep ->
                      if rep.Iron_ext3.Fsck.clean then { viol = None; tc }
                      else
                        let first =
                          match
                            List.find_opt
                              (fun f -> f.Iron_ext3.Fsck.severity = `Error)
                              rep.Iron_ext3.Fsck.findings
                          with
                          | Some f -> f.Iron_ext3.Fsck.message
                          | None -> "errors"
                        in
                        { viol = Some (Fsck_unclean, first); tc }))
      with Klog.Panic m ->
        { viol = Some (Panic, "panic while checking: " ^ m); tc })

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let explore ?(jobs = 1) ?(seed = 7) ?(max_states = 1000) ?(num_blocks = 2048)
    ?(durable_files = 4) ?(racing_files = 4) ?obs brand =
  let params =
    { Memdisk.default_params with Memdisk.num_blocks; seed = seed lxor 0x1207 }
  in
  let in_span name f =
    match obs with
    | None -> f ()
    | Some o -> Obs.span o ~subsystem:"crash" name f
  in
  let fs = Fs.brand_name brand in
  (* The ext3 family gets the offline cross-check too. *)
  let fsck =
    match fs with
    | "ext3" | "ixt3" | "ext3-writeback" | "ext3-data" -> true
    | _ -> false
  in
  let recorded =
    in_span "record" (fun () -> record ~params ~durable_files ~racing_files brand)
  in
  let specs =
    in_span "enumerate" (fun () -> enumerate ~seed ~max_states recorded)
  in
  let outcomes =
    in_span "check" (fun () ->
        Pool.map_jobs ~jobs
          (fun spec -> check_state ~params ~brand ~fsck recorded spec)
          specs)
  in
  let violations =
    List.filter_map
      (fun (spec, o) ->
        Option.map
          (fun (k, detail) -> { state = spec.label; v_kind = k; detail })
          o.viol)
      (List.combine specs outcomes)
  in
  let tc_detected =
    List.fold_left (fun n o -> if o.tc then n + 1 else n) 0 outcomes
  in
  let states = List.length specs in
  (match obs with
  | None -> ()
  | Some o ->
      Obs.add o "crash.states_explored" states;
      Obs.add o "crash.violations" (List.length violations);
      Obs.add o "crash.tc_detected" tc_detected;
      List.iter
        (fun v ->
          Obs.incr o ("crash.violation." ^ kind_to_string v.v_kind))
        violations);
  {
    fs;
    log_len = Array.length recorded.entries;
    rep_epochs = recorded.n_epochs;
    states;
    violations;
    tc_detected;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "%s: %d crash states (log: %d writes, %d epochs) -> %d violations \
     (unmountable %d, data-loss %d, fsck %d, panic %d), Tc detections %d"
    r.fs r.states r.log_len r.rep_epochs
    (List.length r.violations)
    (count r Unmountable) (count r Data_loss) (count r Fsck_unclean)
    (count r Panic) r.tc_detected;
  let shown = ref 0 in
  List.iter
    (fun v ->
      if !shown < 5 then begin
        incr shown;
        Format.fprintf fmt "@.  [%s] %s: %s" (kind_to_string v.v_kind) v.state
          v.detail
      end)
    r.violations;
  if List.length r.violations > 5 then
    Format.fprintf fmt "@.  ... and %d more" (List.length r.violations - 5)
