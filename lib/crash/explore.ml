(* Crash-state exploration. See explore.mli for the model.

   Pipeline:

     record      mkfs + durable (fsync'd) files, clean unmount, remount;
                 snapshot the COW base image; run the racing workload
                 through a Wlog recorder (every write copied, epochs at
                 sync boundaries)
     enumerate   pure: turn the log into crash-state specs, one reorder
                 window per epoch plus the whole log, deduplicated by
                 final disk content
     check       per state: O(dirty) restore of the base image + one
                 poke per chosen block, remount, verify invariants
     aggregate   fold per-state outcomes (in spec order) into a report

   The check phase is embarrassingly parallel: a spec is immutable, the
   base image is frozen, and each worker domain keeps one private COW
   scratch in domain-local storage — the same discipline as the
   fingerprinting executor. Results are slotted by spec index, so the
   report cannot depend on the worker count. *)

module Cow = Iron_disk.Cow
module Memdisk = Iron_disk.Memdisk
module Dev = Iron_disk.Dev
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Obs = Iron_obs.Obs
module Prov = Iron_obs.Prov
module Prng = Iron_util.Prng
module Pool = Iron_util.Pool

type kind = Unmountable | Data_loss | Fsck_unclean | Panic

let kind_to_string = function
  | Unmountable -> "unmountable"
  | Data_loss -> "data-loss"
  | Fsck_unclean -> "fsck-unclean"
  | Panic -> "panic"

type violation = { state : string; v_kind : kind; detail : string }

type culprit = {
  cu_block : int;
  cu_label : string;
  cu_role : string;
  cu_txn : int;
  cu_policy : string;
  cu_epoch : int;
  cu_op : int;
  cu_op_label : string;
  cu_rule : string;
  cu_first_seq : int;
  cu_dropped : int;
  cu_torn : bool;
}

type chain = {
  ch_state : string;
  ch_kind : kind;
  ch_detail : string;
  ch_probes : int;
  ch_culprits : culprit list;
  ch_summary : string;
}

type logged = {
  lg_seq : int;
  lg_block : int;
  lg_epoch : int;
  lg_label : string;
  lg_t : float;
  lg_op : int;
  lg_op_label : string;
  lg_txn : int;
  lg_policy : string;
  lg_role : string;
  lg_rule : string;
}

type report = {
  fs : string;
  log_len : int;
  rep_epochs : int;
  states : int;
  violations : violation list;
  tc_detected : int;
  chains : chain list;
  log : logged list;
}

let count r k = List.length (List.filter (fun v -> v.v_kind = k) r.violations)

(* ------------------------------------------------------------------ *)
(* Record                                                              *)
(* ------------------------------------------------------------------ *)

(* Deterministic file contents; sizes span one to two blocks so each
   racing commit journals several payload blocks. *)
let content tag i =
  Printf.sprintf "%s-%d-%s" tag i
    (String.make
       (900 + (i * 1777 mod 6200))
       (Char.chr (Char.code 'a' + (i mod 26))))

type recorded = {
  baseline : Cow.image;
  entries : Wlog.entry array;
  n_epochs : int;
  durable : (string * string) list;
}

let fail_setup what e =
  failwith ("crash explore: " ^ what ^ ": " ^ Errno.to_string e)

let record ~params ~durable_files ~racing_files brand =
  let cow = Cow.create ~params () in
  Cow.set_time_model cow false;
  let wlog = Wlog.create (Cow.dev cow) in
  let dev = Wlog.dev wlog in
  (match Fs.mkfs brand dev with Ok () -> () | Error e -> fail_setup "mkfs" e);
  let durable =
    List.init durable_files (fun i ->
        (Printf.sprintf "/durable%d" i, content "durable" i))
  in
  (* Phase 1: durable state. Each file is fsync'd and the volume is
     cleanly unmounted (checkpointed), so every durable byte is home
     before the crash window opens. *)
  (match Fs.mount brand dev with
  | Error e -> fail_setup "mount" e
  | Ok (Fs.Boxed ((module F), t)) ->
      List.iter
        (fun (path, data) ->
          match F.creat t path with
          | Error e -> fail_setup path e
          | Ok fd ->
              (match F.write t fd ~off:0 (Bytes.of_string data) with
              | Ok _ -> ()
              | Error e -> fail_setup path e);
              (match F.fsync t fd with Ok () -> () | Error e -> fail_setup path e);
              ignore (F.close t fd))
        durable;
      (match F.unmount t with Ok () -> () | Error e -> fail_setup "unmount" e));
  (* Phase 2: remount (recovery is a no-op, but its superblock writes
     must land before the snapshot), freeze the baseline, and only then
     start recording the racing workload. The mounted instance is
     abandoned afterwards — that is the crash. *)
  match Fs.mount brand dev with
  | Error e -> fail_setup "remount" e
  | Ok (Fs.Boxed ((module F), t)) ->
      let baseline = Cow.snapshot cow in
      Wlog.set_recording wlog true;
      (* Each racing VFS call runs under a Prov op scope, so every
         write the recorder journals below carries the workload step
         that caused it (plus whatever txn/role the journal layer
         scopes on the way down). *)
      let opi = ref 0 in
      let vfs label f =
        let i = !opi in
        incr opi;
        Prov.with_op i label f
      in
      (try
         for i = 0 to racing_files - 1 do
           let path = Printf.sprintf "/racing%d" i in
           match vfs ("creat " ^ path) (fun () -> F.creat t path) with
           | Error _ -> ()
           | Ok fd ->
               ignore
                 (vfs ("write " ^ path) (fun () ->
                      F.write t fd ~off:0
                        (Bytes.of_string (content "racing" (100 + i)))));
               (match vfs ("fsync " ^ path) (fun () -> F.fsync t fd) with
               | Ok () | Error _ -> ());
               ignore (vfs ("close " ^ path) (fun () -> F.close t fd))
         done
       with Klog.Panic _ -> ());
      {
        baseline;
        entries = Wlog.entries wlog;
        n_epochs = Wlog.epochs wlog;
        durable;
      }

(* ------------------------------------------------------------------ *)
(* Enumerate                                                           *)
(* ------------------------------------------------------------------ *)

(* A crash-state spec: the final persisted content choice per block
   ([choices] maps block -> log index whose data survives; blocks
   absent keep the baseline), plus at most one torn write — the first
   [len] bytes of log entry [idx] land on top of the otherwise-chosen
   content of its block. Specs respect per-block write order by
   construction: each block persists a prefix of its own writes. *)
type spec = {
  label : string;
  choices : (int * int) array; (* (block, entry idx), sorted by block *)
  torn : (int * int) option; (* (entry idx, persisted bytes) *)
}

(* One reorder window: the entries a crash may persist any admissible
   subset of, on top of a durable prefix (the closed epochs before
   it). *)
type window = {
  w_name : string;
  durable_last : (int * int) list; (* per-block last durable write *)
  blocks : int array; (* window blocks, in first-touch order *)
  groups : int array array; (* per block: its window writes, in order *)
}

let window_of entries ~name ~in_durable ~in_window =
  let durable = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Wlog.entry) ->
      if in_durable e then Hashtbl.replace durable e.Wlog.w_block i)
    entries;
  let order = ref [] in
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Wlog.entry) ->
      if in_window e then
        match Hashtbl.find_opt groups e.Wlog.w_block with
        | Some l -> l := i :: !l
        | None ->
            Hashtbl.add groups e.Wlog.w_block (ref [ i ]);
            order := e.Wlog.w_block :: !order)
    entries;
  let blocks = Array.of_list (List.rev !order) in
  let durable_last =
    List.sort compare
      (Hashtbl.fold (fun b i acc -> (b, i) :: acc) durable [])
  in
  {
    w_name = name;
    durable_last;
    blocks;
    groups =
      Array.map
        (fun b -> Array.of_list (List.rev !(Hashtbl.find groups b)))
        blocks;
  }

(* Materialize a spec's [choices] from per-block persisted counts:
   count [c] for window block [j] keeps that block's first [c] window
   writes (content = the [c]-th), count [0] falls back to the durable
   prefix (or baseline). *)
let choices_of w counts =
  let m = Hashtbl.create 64 in
  List.iter (fun (b, i) -> Hashtbl.replace m b i) w.durable_last;
  Array.iteri
    (fun j c -> if c > 0 then Hashtbl.replace m w.blocks.(j) w.groups.(j).(c - 1))
    counts;
  let l = Hashtbl.fold (fun b i acc -> (b, i) :: acc) m [] in
  Array.of_list (List.sort compare l)

(* Dedup key: the final content assignment. Two specs from different
   windows that persist the same writes are one crash state. *)
let key_of choices torn =
  let buf = Buffer.create 128 in
  Array.iter
    (fun (b, i) -> Buffer.add_string buf (Printf.sprintf "%d:%d;" b i))
    choices;
  (match torn with
  | Some (i, len) -> Buffer.add_string buf (Printf.sprintf "T%d:%d" i len)
  | None -> ());
  Buffer.contents buf

let enumerate_core ~seed ~max_states ~(entries : Wlog.entry array) ~n_epochs =
  let seen = Hashtbl.create 1024 in
  let specs = ref [] in
  let n_specs = ref 0 in
  let add label choices torn =
    if !n_specs < max_states then begin
      let key = key_of choices torn in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        specs := { label; choices; torn } :: !specs;
        incr n_specs
      end
    end
  in
  let half = ref 2048 in
  if Array.length entries > 0 then
    half := Bytes.length entries.(0).Wlog.w_data / 2;
  let systematic w =
    let counts = Array.make (Array.length w.blocks) 0 in
    let full () = Array.iteri (fun j g -> counts.(j) <- Array.length g) w.groups in
    let zero () = Array.fill counts 0 (Array.length counts) 0 in
    (* Global prefixes: the classic in-order power cut, one state per
       cut point. Walk the window in seq order, persisting one more
       write each step. *)
    zero ();
    add (w.w_name ^ "/cut0") (choices_of w counts) None;
    let seq_order =
      (* (window position -> block slot) in global write order *)
      let l = ref [] in
      Array.iteri
        (fun j g -> Array.iter (fun i -> l := (i, j) :: !l) g)
        w.groups;
      List.sort compare !l
    in
    List.iteri
      (fun n (_, j) ->
        counts.(j) <- counts.(j) + 1;
        add (Printf.sprintf "%s/cut%d" w.w_name (n + 1)) (choices_of w counts) None)
      seq_order;
    (* Drop-tail: persist everything except the tail of one block's
       writes — the reordered-commit shape (e.g. a journal payload
       block lost while the later commit block made it). Plus a torn
       variant where the first dropped write half-persisted. *)
    Array.iteri
      (fun j g ->
        let k = Array.length g in
        for kept = 0 to k - 1 do
          full ();
          counts.(j) <- kept;
          let choices = choices_of w counts in
          add
            (Printf.sprintf "%s/drop blk %d w%d" w.w_name w.blocks.(j) kept)
            choices None;
          add
            (Printf.sprintf "%s/torn blk %d w%d" w.w_name w.blocks.(j) kept)
            choices
            (Some (g.(kept), !half))
        done)
      w.groups
  in
  (* Barrier-honouring windows: one per sync-delimited epoch. *)
  let windows = ref [] in
  for e = 0 to n_epochs do
    let w =
      window_of entries
        ~name:(Printf.sprintf "e%d" e)
        ~in_durable:(fun en -> en.Wlog.w_epoch < e)
        ~in_window:(fun en -> en.Wlog.w_epoch = e)
    in
    if Array.length w.blocks > 0 then windows := w :: !windows
  done;
  (* The write-back-cache window: a disk that acknowledged every sync
     without flushing may reorder the whole log — the scenario the
     paper's transactional checksum exists for. *)
  let whole =
    window_of entries ~name:"all"
      ~in_durable:(fun _ -> false)
      ~in_window:(fun _ -> true)
  in
  let windows = List.rev !windows @ [ whole ] in
  List.iter systematic windows;
  (* Seeded random per-block prefixes over the whole-log window top the
     enumeration up to [max_states]. *)
  if Array.length whole.blocks > 0 then begin
    let rng = Prng.create (seed lxor 0xC4A54) in
    let counts = Array.make (Array.length whole.blocks) 0 in
    let attempts = ref 0 in
    while !n_specs < max_states && !attempts < 16 * max_states do
      incr attempts;
      Array.iteri
        (fun j g -> counts.(j) <- Prng.int rng (Array.length g + 1))
        whole.groups;
      let torn =
        if Prng.int rng 4 = 0 then begin
          (* Tear the first unpersisted write of one random block. *)
          let j = Prng.int rng (Array.length whole.blocks) in
          let g = whole.groups.(j) in
          if counts.(j) < Array.length g then
            Some (g.(counts.(j)), 1 + Prng.int rng (max 1 (!half * 2 - 1)))
          else None
        end
        else None
      in
      add (Printf.sprintf "all/rand%d" !attempts) (choices_of whole counts) torn
    done
  end;
  List.rev !specs

let enumerate ~seed ~max_states (r : recorded) =
  enumerate_core ~seed ~max_states ~entries:r.entries ~n_epochs:r.n_epochs

(* ------------------------------------------------------------------ *)
(* Check                                                               *)
(* ------------------------------------------------------------------ *)

(* Allocation-free substring scan (needle expected lowercase). *)
let contains_sub ~needle hay =
  let nlen = String.length needle and hlen = String.length hay in
  let limit = hlen - nlen in
  let rec matches i j =
    j = nlen || (hay.[i + j] = needle.[j] && matches i (j + 1))
  in
  let rec at i = i <= limit && (matches i 0 || at (i + 1)) in
  nlen = 0 || at 0

type outcome = { viol : (kind * string) option; tc : bool }

(* Per-domain scratch COW device, reused across states (restore is
   O(blocks the previous state dirtied)). *)
let scratch_slot : (int * Cow.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch ~params =
  let slot = Domain.DLS.get scratch_slot in
  match !slot with
  | Some (nb, c) when nb = params.Memdisk.num_blocks -> c
  | Some _ | None ->
      let c = Cow.create ~params () in
      Cow.set_time_model c false;
      slot := Some (params.Memdisk.num_blocks, c);
      c

(* Materialize a spec on the calling domain's scratch COW: O(dirty)
   restore of the base image plus one poke per chosen block. *)
let materialize ~params ~baseline ~(entries : Wlog.entry array) spec =
  let cow = scratch ~params in
  Cow.restore cow baseline;
  Array.iter
    (fun (b, i) -> Cow.poke cow b entries.(i).Wlog.w_data)
    spec.choices;
  (match spec.torn with
  | None -> ()
  | Some (i, len) ->
      let e = entries.(i) in
      let cur = Cow.peek cow e.Wlog.w_block in
      let len = min len (Bytes.length e.Wlog.w_data) in
      Bytes.blit e.Wlog.w_data 0 cur 0 len;
      Cow.poke cow e.Wlog.w_block cur);
  cow

(* The invariant-check skeleton, shared by the fixed-workload explorer
   and the fuzzing campaign: materialize the spec, remount, detect Tc,
   run the caller-supplied data verifier, unmount, optionally fsck. *)
let check_with ~params ~brand ~fsck ~verify ~baseline
    ~(entries : Wlog.entry array) spec =
  let cow = materialize ~params ~baseline ~entries spec in
  let dev = Cow.dev cow in
  (* Power is back: remount and hold the invariants up to the light. *)
  match (try `Mounted (Fs.mount brand dev) with Klog.Panic m -> `Panic m) with
  | `Panic m -> { viol = Some (Panic, "panic during recovery: " ^ m); tc = false }
  | `Mounted (Error e) ->
      { viol = Some (Unmountable, "mount: " ^ Errno.to_string e); tc = false }
  | `Mounted (Ok (Fs.Boxed ((module F), t) as fsb)) -> (
      let tc =
        List.exists
          (fun (en : Klog.entry) ->
            contains_sub ~needle:"checksum mismatch"
              (String.lowercase_ascii en.Klog.message))
          (Klog.entries (F.klog t))
      in
      try
        match verify fsb with
        | Some d -> { viol = Some (Data_loss, d); tc }
        | None -> (
            match F.unmount t with
            | Error e ->
                { viol = Some (Unmountable, "unmount: " ^ Errno.to_string e); tc }
            | Ok () ->
                if not fsck then { viol = None; tc }
                else (
                  match Iron_ext3.Fsck.run dev with
                  | Error e ->
                      {
                        viol = Some (Fsck_unclean, "fsck: " ^ Errno.to_string e);
                        tc;
                      }
                  | Ok rep ->
                      if rep.Iron_ext3.Fsck.clean then { viol = None; tc }
                      else
                        let first =
                          match
                            List.find_opt
                              (fun f -> f.Iron_ext3.Fsck.severity = `Error)
                              rep.Iron_ext3.Fsck.findings
                          with
                          | Some f -> f.Iron_ext3.Fsck.message
                          | None -> "errors"
                        in
                        { viol = Some (Fsck_unclean, first); tc }))
      with Klog.Panic m ->
        { viol = Some (Panic, "panic while checking: " ^ m); tc })

(* The fixed-workload verifier: every durable (fsync'd-before-the-
   window) file must read back exactly. *)
let verify_durable durable (Fs.Boxed ((module F), t)) =
  let missing = ref None in
  List.iter
    (fun (path, want) ->
      if !missing = None then
        match F.open_ t path Fs.Rd with
        | Error e -> missing := Some (path ^ ": open " ^ Errno.to_string e)
        | Ok fd ->
            (match F.read t fd ~off:0 ~len:(String.length want) with
            | Ok got when Bytes.to_string got = want -> ()
            | Ok _ -> missing := Some (path ^ ": content mismatch")
            | Error e -> missing := Some (path ^ ": read " ^ Errno.to_string e));
            ignore (F.close t fd))
    durable;
  !missing

let check_state ~params ~brand ~fsck (r : recorded) spec =
  check_with ~params ~brand ~fsck ~verify:(verify_durable r.durable)
    ~baseline:r.baseline ~entries:r.entries spec

(* ------------------------------------------------------------------ *)
(* Forensics: causal chains via greedy culprit minimization            *)
(* ------------------------------------------------------------------ *)

(* Probe budget per violation. The racing logs here are a few dozen
   writes over ~20 blocks, so real runs use a fraction of this; if a
   future workload blows the budget, the unprobed candidates are kept
   as (conservative, unminimized) culprits rather than silently
   dropped. *)
let probe_cap = 512

(* Everything the minimizer precomputes once per report: the whole-log
   window, entry-index -> position-in-its-block-group, block -> window
   slot, and a block-type label per logged block. *)
type forensic_ctx = {
  fx_whole : window;
  fx_pos : int array; (* entry idx -> position within its block group *)
  fx_slot : (int, int) Hashtbl.t; (* block -> whole-window slot *)
  fx_full : int array; (* per slot: total writes of that block *)
  fx_label : int -> string;
}

let forensic_ctx ~params ~fsck ~baseline ~(entries : Wlog.entry array) =
  let whole =
    window_of entries ~name:"all"
      ~in_durable:(fun _ -> false)
      ~in_window:(fun _ -> true)
  in
  let slot = Hashtbl.create 64 in
  Array.iteri (fun j b -> Hashtbl.replace slot b j) whole.blocks;
  let pos = Array.make (max 1 (Array.length entries)) 0 in
  Array.iter (fun g -> Array.iteri (fun p i -> pos.(i) <- p) g) whole.groups;
  let full = Array.map Array.length whole.groups in
  (* Block-type labels, resolved eagerly against the pre-crash baseline
     (the scratch COW is about to be reused by the probes). *)
  let labels = Hashtbl.create 64 in
  if fsck then begin
    let cow = scratch ~params in
    Cow.restore cow baseline;
    Array.iter
      (fun b -> Hashtbl.replace labels b (Iron_ext3.Classifier.classify (Cow.peek cow) b))
      whole.blocks
  end;
  {
    fx_whole = whole;
    fx_pos = pos;
    fx_slot = slot;
    fx_full = full;
    fx_label =
      (fun b -> match Hashtbl.find_opt labels b with Some l -> l | None -> "?");
  }

let log_of ctx (entries : Wlog.entry array) =
  Array.to_list entries
  |> List.map (fun (e : Wlog.entry) ->
         let p = e.Wlog.w_prov in
         {
           lg_seq = e.Wlog.w_seq;
           lg_block = e.Wlog.w_block;
           lg_epoch = e.Wlog.w_epoch;
           lg_label = ctx.fx_label e.Wlog.w_block;
           lg_t = e.Wlog.w_t;
           lg_op = p.Prov.op;
           lg_op_label = p.Prov.op_label;
           lg_txn = p.Prov.txn;
           lg_policy = p.Prov.policy;
           lg_role = p.Prov.role;
           lg_rule = p.Prov.rule;
         })

let role_word = function
  | "payload" -> "payload"
  | "desc" -> "descriptor"
  | "revoke" -> "revoke block"
  | "data" -> "ordered data"
  | r -> r

(* Greedy re-materialize-and-recheck: express the spec as per-block
   persisted-prefix counts over the whole-log window (exact — every
   spec persists a per-block prefix by construction), then for each
   block with a dropped tail, persist that block fully and re-run the
   invariant check on the domain's scratch COW (O(dirty) per probe).
   If the violation kind survives, the block was irrelevant and stays
   restored; if it disappears, the block's dropped tail is a culprit
   and is reverted. The surviving dropped set is the minimized culprit
   set; by induction the final state still exhibits the violation. *)
let minimize_with ~check ctx ~(entries : Wlog.entry array) (spec, vkind, detail)
    =
  let whole = ctx.fx_whole in
  let nslots = Array.length whole.blocks in
  let counts = Array.make nslots 0 in
  Array.iter
    (fun (b, i) ->
      match Hashtbl.find_opt ctx.fx_slot b with
      | Some j -> counts.(j) <- ctx.fx_pos.(i) + 1
      | None -> ())
    spec.choices;
  let torn = ref spec.torn in
  let probes = ref 0 in
  let culprit_slots = ref [] in
  let candidates =
    List.init nslots (fun j -> j)
    |> List.filter (fun j -> counts.(j) < ctx.fx_full.(j))
    |> List.sort (fun a b -> compare whole.blocks.(a) whole.blocks.(b))
  in
  List.iter
    (fun j ->
      if !probes >= probe_cap then culprit_slots := j :: !culprit_slots
      else begin
        let saved = counts.(j) in
        let saved_torn = !torn in
        counts.(j) <- ctx.fx_full.(j);
        (match !torn with
        | Some (i, _) when entries.(i).Wlog.w_block = whole.blocks.(j) ->
            torn := None
        | _ -> ());
        let probe =
          { label = spec.label; choices = choices_of whole counts; torn = !torn }
        in
        incr probes;
        let o = check probe in
        let still =
          match o.viol with Some (k, _) -> k = vkind | None -> false
        in
        if not still then begin
          (* Restoring this block's dropped tail changed the outcome:
             it is part of the cause. Keep it dropped. *)
          counts.(j) <- saved;
          torn := saved_torn;
          culprit_slots := j :: !culprit_slots
        end
      end)
    candidates;
  let culprit_of j =
    let i0 = whole.groups.(j).(counts.(j)) in
    let e = entries.(i0) in
    let p = e.Wlog.w_prov in
    {
      cu_block = whole.blocks.(j);
      cu_label = ctx.fx_label whole.blocks.(j);
      cu_role = p.Prov.role;
      cu_txn = p.Prov.txn;
      cu_policy = p.Prov.policy;
      cu_epoch = e.Wlog.w_epoch;
      cu_op = p.Prov.op;
      cu_op_label = p.Prov.op_label;
      cu_rule = p.Prov.rule;
      cu_first_seq = e.Wlog.w_seq;
      cu_dropped = ctx.fx_full.(j) - counts.(j);
      cu_torn =
        (match !torn with
        | Some (i, _) -> entries.(i).Wlog.w_block = whole.blocks.(j)
        | None -> false);
    }
  in
  let culprits = List.rev_map culprit_of !culprit_slots in
  (* Which journal transactions got their commit record persisted in
     the final (minimized) state? A culprit journal write belonging to
     such a transaction is the §6.1 shape: the commit made it out, its
     payload did not, and replay trusted the stale journal content. *)
  let committed = Hashtbl.create 8 in
  Array.iteri
    (fun j c ->
      for p = 0 to c - 1 do
        let e = entries.(whole.groups.(j).(p)) in
        let pr = e.Wlog.w_prov in
        if pr.Prov.role = "commit" && pr.Prov.txn >= 0 then
          Hashtbl.replace committed pr.Prov.txn ()
      done)
    counts;
  let orphaned =
    List.filter
      (fun c ->
        (c.cu_role = "payload" || c.cu_role = "desc" || c.cu_role = "revoke")
        && c.cu_txn >= 0
        && Hashtbl.mem committed c.cu_txn)
      culprits
  in
  let summary =
    if orphaned <> [] then begin
      let seen = Hashtbl.create 4 in
      String.concat "; "
        (List.filter_map
           (fun o ->
             if Hashtbl.mem seen (o.cu_txn, o.cu_role) then None
             else begin
               Hashtbl.replace seen (o.cu_txn, o.cu_role) ();
               Some
                 (Printf.sprintf
                    "commit record of txn %d persisted without its %s (epoch %d)"
                    o.cu_txn (role_word o.cu_role) o.cu_epoch)
             end)
           orphaned)
    end
    else if culprits = [] then
      "no dropped writes implicated; state equals the full log"
    else
      Printf.sprintf "%d dropped write(s) across %d block(s) produced %s"
        (List.fold_left (fun n c -> n + c.cu_dropped) 0 culprits)
        (List.length culprits) (kind_to_string vkind)
  in
  {
    ch_state = spec.label;
    ch_kind = vkind;
    ch_detail = detail;
    ch_probes = !probes;
    ch_culprits = culprits;
    ch_summary = summary;
  }

let minimize ~params ~brand ~fsck ctx (r : recorded) v =
  minimize_with
    ~check:(check_state ~params ~brand ~fsck r)
    ctx ~entries:r.entries v

(* ------------------------------------------------------------------ *)
(* Per-workload sessions (the fuzzing campaign's entry points)         *)
(* ------------------------------------------------------------------ *)

module Sha1 = Iron_util.Sha1

type state_spec = spec

let spec_label (s : state_spec) = s.label

(* A recorded generated workload: the frozen post-mount baseline, the
   write log, and lazily built geometry/digest caches. Sessions are
   owned by one campaign job at a time — the caches are not
   domain-safe, and do not need to be. *)
type session = {
  ss_baseline : Cow.image;
  ss_entries : Wlog.entry array;
  ss_epochs : int;
  mutable ss_geom : (window * int array * (int, int) Hashtbl.t) option;
  mutable ss_digests : string array option;
}

let session_log_len s = Array.length s.ss_entries
let session_epochs s = s.ss_epochs

let session_log_bytes s =
  Array.fold_left
    (fun n (e : Wlog.entry) -> n + Bytes.length e.Wlog.w_data)
    0 s.ss_entries

let make_base ~params ~setup brand =
  let cow = scratch ~params in
  Cow.restore cow
    (Cow.blank_image ~block_size:params.Memdisk.block_size
       ~num_blocks:params.Memdisk.num_blocks);
  let dev = Cow.dev cow in
  (match Fs.mkfs brand dev with Ok () -> () | Error e -> fail_setup "mkfs" e);
  (match Fs.mount brand dev with
  | Error e -> fail_setup "mount" e
  | Ok (Fs.Boxed ((module F), t) as fsb) -> (
      setup fsb;
      match F.unmount t with
      | Ok () -> ()
      | Error e -> fail_setup "unmount" e));
  Cow.snapshot cow

let record_session ~params ~base ~ops brand =
  let cow = scratch ~params in
  Cow.restore cow base;
  let wlog = Wlog.create (Cow.dev cow) in
  let dev = Wlog.dev wlog in
  match
    try `Mounted (Fs.mount brand dev) with Klog.Panic m -> `Panic m
  with
  | `Panic m -> failwith ("crash explore: mount panic: " ^ m)
  | `Mounted (Error e) -> fail_setup "mount" e
  | `Mounted (Ok fsb) ->
      let baseline = Cow.snapshot cow in
      Wlog.set_recording wlog true;
      (* The workload runs until it finishes or the model panics;
         either way, abandoning the instance here is the crash. *)
      (try ops fsb ~closed_epochs:(fun () -> Wlog.epochs wlog)
       with Klog.Panic _ -> ());
      let entries, n_epochs = Wlog.take wlog in
      {
        ss_baseline = baseline;
        ss_entries = entries;
        ss_epochs = n_epochs;
        ss_geom = None;
        ss_digests = None;
      }

let enumerate_session ~seed ~max_states s =
  enumerate_core ~seed ~max_states ~entries:s.ss_entries ~n_epochs:s.ss_epochs

let geom s =
  match s.ss_geom with
  | Some g -> g
  | None ->
      let whole =
        window_of s.ss_entries ~name:"all"
          ~in_durable:(fun _ -> false)
          ~in_window:(fun _ -> true)
      in
      let pos = Array.make (max 1 (Array.length s.ss_entries)) 0 in
      Array.iter (fun g -> Array.iteri (fun p i -> pos.(i) <- p) g) whole.groups;
      let slot = Hashtbl.create 64 in
      Array.iteri (fun j b -> Hashtbl.replace slot b j) whole.blocks;
      let g = (whole, pos, slot) in
      s.ss_geom <- Some g;
      g

(* Per-block persisted-prefix counts over the whole-log window — the
   same reconstruction the forensics minimizer uses (exact: every spec
   persists a per-block prefix by construction). *)
let counts_of s (spec : spec) =
  let whole, pos, slot = geom s in
  let counts = Array.make (Array.length whole.blocks) 0 in
  Array.iter
    (fun (b, i) ->
      match Hashtbl.find_opt slot b with
      | Some j -> counts.(j) <- pos.(i) + 1
      | None -> ())
    spec.choices;
  (whole, counts)

(* The largest epoch E such that every write of epochs < E is fully
   persisted by the spec. All VFS activity from epochs < E is then
   durable in this state (anything later may be arbitrarily partial),
   which is exactly what a caller's durability oracle may assume. A
   whole-log reordering that dropped an early write scores E = 0: the
   lying write-back cache promised nothing. *)
let spec_epoch s (spec : spec) =
  let whole, counts = counts_of s spec in
  let entries = s.ss_entries in
  let e = ref s.ss_epochs in
  Array.iteri
    (fun j c ->
      if c < Array.length whole.groups.(j) then begin
        let first_dropped = entries.(whole.groups.(j).(c)) in
        if first_dropped.Wlog.w_epoch < !e then e := first_dropped.Wlog.w_epoch
      end)
    counts;
  (match spec.torn with
  | Some (i, _) ->
      if entries.(i).Wlog.w_epoch < !e then e := entries.(i).Wlog.w_epoch
  | None -> ());
  !e

(* A barrier-honouring crash: no persisted write (torn included) from
   an epoch later than the first dropped write's epoch. An honest disk
   only issues epoch k+1 writes after every epoch-k write is durable,
   so persisting later-epoch writes while earlier ones are missing
   takes a lying write-back cache. *)
let spec_honest s (spec : spec) =
  let whole, counts = counts_of s spec in
  let entries = s.ss_entries in
  let d = ref s.ss_epochs in
  Array.iteri
    (fun j c ->
      if c < Array.length whole.groups.(j) then begin
        let first_dropped = entries.(whole.groups.(j).(c)) in
        if first_dropped.Wlog.w_epoch < !d then d := first_dropped.Wlog.w_epoch
      end)
    counts;
  (match spec.torn with
  | Some (i, _) ->
      if entries.(i).Wlog.w_epoch < !d then d := entries.(i).Wlog.w_epoch
  | None -> ());
  let ok = ref true in
  Array.iteri
    (fun j c ->
      for k = 0 to c - 1 do
        if entries.(whole.groups.(j).(k)).Wlog.w_epoch > !d then ok := false
      done)
    counts;
  (match spec.torn with
  | Some (i, _) -> if entries.(i).Wlog.w_epoch > !d then ok := false
  | None -> ());
  !ok

let entry_digests s =
  match s.ss_digests with
  | Some d -> d
  | None ->
      let d =
        Array.map
          (fun (e : Wlog.entry) -> Sha1.to_raw (Sha1.digest e.Wlog.w_data))
          s.ss_entries
      in
      s.ss_digests <- Some d;
      d

(* Content identity of the final disk state, relative to the (shared)
   baseline: the SHA-1 over the sorted (block, content-digest) pairs
   that differ from the baseline. Torn blocks hash their actual merged
   bytes; choices that rewrite a block with its baseline content are
   normalized away. Two specs from different workloads over the same
   base image collide exactly when they leave identical disks. *)
let spec_digest s (spec : spec) =
  let entries = s.ss_entries in
  let dig = entry_digests s in
  let torn_block, torn_bytes =
    match spec.torn with
    | None -> (-1, Bytes.empty)
    | Some (i, len) ->
        let e = entries.(i) in
        let b = e.Wlog.w_block in
        let under = ref (Cow.image_block s.ss_baseline b) in
        Array.iter
          (fun (b', i') -> if b' = b then under := entries.(i').Wlog.w_data)
          spec.choices;
        let cur = Bytes.copy !under in
        let len = min len (Bytes.length e.Wlog.w_data) in
        Bytes.blit e.Wlog.w_data 0 cur 0 len;
        (b, cur)
  in
  let parts = ref [] in
  Array.iter
    (fun (b, i) ->
      if
        b <> torn_block
        && not (Bytes.equal entries.(i).Wlog.w_data (Cow.image_block s.ss_baseline b))
      then parts := (b, dig.(i)) :: !parts)
    spec.choices;
  if
    torn_block >= 0
    && not (Bytes.equal torn_bytes (Cow.image_block s.ss_baseline torn_block))
  then parts := (torn_block, Sha1.to_raw (Sha1.digest torn_bytes)) :: !parts;
  let ctx = Sha1.init () in
  List.iter
    (fun (b, d) ->
      Sha1.feed ctx (Bytes.unsafe_of_string (Printf.sprintf "%d:" b));
      Sha1.feed ctx (Bytes.unsafe_of_string d))
    (List.sort compare !parts);
  Sha1.to_raw (Sha1.finalize ctx)

(* What a campaign's durability oracle asserts about one path in one
   crash state. [ex_allowed = None] leaves content unchecked (the path
   had un-synced data writes in flight). *)
type expect = {
  ex_path : string;
  ex_presence : [ `Present | `Absent | `Any ];
  ex_allowed : string list option;
}

let expect_failure (Fs.Boxed ((module F), t)) ex =
  let check_content ex size fit =
    if size = 0 then None
    else
      match F.open_ t ex.ex_path Fs.Rd with
      | Error e -> Some (ex.ex_path ^ ": open " ^ Errno.to_string e)
      | Ok fd ->
          let r =
            match F.read t fd ~off:0 ~len:size with
            | Ok got ->
                if List.mem (Bytes.to_string got) fit then None
                else
                  Some
                    (Printf.sprintf "%s: content outside the durable set"
                       ex.ex_path)
            | Error e -> Some (ex.ex_path ^ ": read " ^ Errno.to_string e)
          in
          ignore (F.close t fd);
          r
  in
  let check_one ex =
    match F.stat t ex.ex_path with
    | Error e ->
        if ex.ex_presence = `Present then
          Some
            (Printf.sprintf "%s: durable file missing (stat %s)" ex.ex_path
               (Errno.to_string e))
        else None
    | Ok st -> (
        if ex.ex_presence = `Absent then
          Some (Printf.sprintf "%s: durably removed path present" ex.ex_path)
        else
          match ex.ex_allowed with
          | None -> None
          | Some cands ->
              if st.Fs.st_kind <> Fs.Regular then
                Some
                  (Printf.sprintf "%s: not a regular file (%s)" ex.ex_path
                     (Fs.kind_to_string st.Fs.st_kind))
              else
                let size = st.Fs.st_size in
                let fit = List.filter (fun c -> String.length c = size) cands in
                if fit = [] then
                  Some
                    (Printf.sprintf "%s: size %d outside the durable set"
                       ex.ex_path size)
                else check_content ex size fit)
  in
  check_one ex

let verify_expects expects fsb =
  let bad = ref None in
  List.iter (fun ex -> if !bad = None then bad := expect_failure fsb ex) expects;
  !bad

let check_spec ~params ~brand ~fsck ~expects s (spec : state_spec) =
  check_with ~params ~brand ~fsck
    ~verify:(verify_expects (expects ~epoch:(spec_epoch s spec)))
    ~baseline:s.ss_baseline ~entries:s.ss_entries spec

(* The multi-tenant variant: collect {e every} failed expectation
   (path + detail) instead of stopping at the first, so a caller can
   attribute each loss to the tenant owning the path. Mount-level
   trouble (panic, unmountable) preempts the per-path walk, exactly as
   in [check_with]. *)
type outcome_all = {
  oa_global : (kind * string) option;
  oa_failed : (string * string) list;
  oa_fsck : string option;
  oa_tc : bool;
}

let check_spec_all ~params ~brand ~fsck ~expects s (spec : state_spec) =
  let cow = materialize ~params ~baseline:s.ss_baseline ~entries:s.ss_entries spec in
  let dev = Cow.dev cow in
  let none g = { oa_global = g; oa_failed = []; oa_fsck = None; oa_tc = false } in
  match (try `Mounted (Fs.mount brand dev) with Klog.Panic m -> `Panic m) with
  | `Panic m -> none (Some (Panic, "panic during recovery: " ^ m))
  | `Mounted (Error e) -> none (Some (Unmountable, "mount: " ^ Errno.to_string e))
  | `Mounted (Ok (Fs.Boxed ((module F), t) as fsb)) -> (
      let tc =
        List.exists
          (fun (en : Klog.entry) ->
            contains_sub ~needle:"checksum mismatch"
              (String.lowercase_ascii en.Klog.message))
          (Klog.entries (F.klog t))
      in
      try
        let failed =
          List.filter_map
            (fun ex ->
              match expect_failure fsb ex with
              | None -> None
              | Some d -> Some (ex.ex_path, d))
            (expects ~epoch:(spec_epoch s spec))
        in
        let global, fsck_bad =
          match F.unmount t with
          | Error e -> (Some (Unmountable, "unmount: " ^ Errno.to_string e), None)
          | Ok () ->
              if not fsck then (None, None)
              else (
                match Iron_ext3.Fsck.run dev with
                | Error e -> (None, Some ("fsck: " ^ Errno.to_string e))
                | Ok rep ->
                    if rep.Iron_ext3.Fsck.clean then (None, None)
                    else
                      let first =
                        match
                          List.find_opt
                            (fun f -> f.Iron_ext3.Fsck.severity = `Error)
                            rep.Iron_ext3.Fsck.findings
                        with
                        | Some f -> f.Iron_ext3.Fsck.message
                        | None -> "errors"
                      in
                      (None, Some first))
        in
        { oa_global = global; oa_failed = failed; oa_fsck = fsck_bad; oa_tc = tc }
      with Klog.Panic m ->
        { (none (Some (Panic, "panic while checking: " ^ m))) with oa_tc = tc })

(* Provenance of the earliest write the spec drops (or tears): the
   proximate cause a blast-radius campaign charges the crash to. *)
let spec_first_dropped s (spec : state_spec) =
  let whole, counts = counts_of s spec in
  let entries = s.ss_entries in
  let best = ref (-1) in
  let consider i =
    if !best < 0 || entries.(i).Wlog.w_seq < entries.(!best).Wlog.w_seq then
      best := i
  in
  Array.iteri
    (fun j c ->
      if c < Array.length whole.groups.(j) then consider whole.groups.(j).(c))
    counts;
  (match spec.torn with Some (i, _) -> consider i | None -> ());
  if !best < 0 then None else Some entries.(!best).Wlog.w_prov

type forensics_ctx = forensic_ctx

let session_forensics ~params ~fsck s =
  forensic_ctx ~params ~fsck ~baseline:s.ss_baseline ~entries:s.ss_entries

let explain_spec ~check ctx s v = minimize_with ~check ctx ~entries:s.ss_entries v

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let explore ?(jobs = 1) ?(seed = 7) ?(max_states = 1000) ?(num_blocks = 2048)
    ?(durable_files = 4) ?(racing_files = 4) ?(forensics = false) ?obs brand =
  let params =
    { Memdisk.default_params with Memdisk.num_blocks; seed = seed lxor 0x1207 }
  in
  let in_span name f =
    match obs with
    | None -> f ()
    | Some o -> Obs.span o ~subsystem:"crash" name f
  in
  let fs = Fs.brand_name brand in
  (* The ext3 family gets the offline cross-check too. *)
  let fsck =
    match fs with
    | "ext3" | "ixt3" | "ext3-writeback" | "ext3-data" -> true
    | _ -> false
  in
  let recorded =
    in_span "record" (fun () ->
        (* With an obs context, install it ambiently for the record
           phase (always the calling domain, so -j independent): the
           journal spans of the racing workload then land on the same
           timeline as the recorded writes. *)
        let go () = record ~params ~durable_files ~racing_files brand in
        match obs with None -> go () | Some o -> Obs.with_ambient o go)
  in
  let specs =
    in_span "enumerate" (fun () -> enumerate ~seed ~max_states recorded)
  in
  let outcomes =
    in_span "check" (fun () ->
        Pool.map_jobs ~jobs
          (fun spec -> check_state ~params ~brand ~fsck recorded spec)
          specs)
  in
  let viols =
    List.filter_map
      (fun (spec, o) ->
        Option.map (fun (k, detail) -> (spec, k, detail)) o.viol)
      (List.combine specs outcomes)
  in
  let violations =
    List.map (fun (spec, k, detail) -> { state = spec.label; v_kind = k; detail }) viols
  in
  let tc_detected =
    List.fold_left (fun n o -> if o.tc then n + 1 else n) 0 outcomes
  in
  let states = List.length specs in
  let chains, log =
    if not forensics then ([], [])
    else
      in_span "forensics" (fun () ->
          let ctx =
            forensic_ctx ~params ~fsck ~baseline:recorded.baseline
              ~entries:recorded.entries
          in
          let chains =
            Pool.map_jobs ~jobs
              (fun v -> minimize ~params ~brand ~fsck ctx recorded v)
              viols
          in
          (chains, log_of ctx recorded.entries))
  in
  (match obs with
  | None -> ()
  | Some o ->
      Obs.add o "crash.states_explored" states;
      Obs.add o "crash.violations" (List.length violations);
      Obs.add o "crash.tc_detected" tc_detected;
      List.iter
        (fun v ->
          Obs.incr o ("crash.violation." ^ kind_to_string v.v_kind))
        violations;
      if forensics then begin
        Obs.add o "crash.forensics.chains" (List.length chains);
        Obs.add o "crash.forensics.probes"
          (List.fold_left (fun n c -> n + c.ch_probes) 0 chains);
        Obs.add o "crash.forensics.culprits"
          (List.fold_left (fun n c -> n + List.length c.ch_culprits) 0 chains)
      end);
  {
    fs;
    log_len = Array.length recorded.entries;
    rep_epochs = recorded.n_epochs;
    states;
    violations;
    tc_detected;
    chains;
    log;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "%s: %d crash states (log: %d writes, %d epochs) -> %d violations \
     (unmountable %d, data-loss %d, fsck %d, panic %d), Tc detections %d"
    r.fs r.states r.log_len r.rep_epochs
    (List.length r.violations)
    (count r Unmountable) (count r Data_loss) (count r Fsck_unclean)
    (count r Panic) r.tc_detected;
  let shown = ref 0 in
  List.iter
    (fun v ->
      if !shown < 5 then begin
        incr shown;
        Format.fprintf fmt "@.  [%s] %s: %s" (kind_to_string v.v_kind) v.state
          v.detail
      end)
    r.violations;
  if List.length r.violations > 5 then
    Format.fprintf fmt "@.  ... and %d more" (List.length r.violations - 5)

let pp_culprit fmt c =
  let mech = if c.cu_torn then "torn" else "dropped" in
  Format.fprintf fmt "blk %d (%s) %s x%d from w%d epoch %d" c.cu_block
    c.cu_label mech c.cu_dropped c.cu_first_seq c.cu_epoch;
  if c.cu_txn >= 0 then begin
    Format.fprintf fmt ", txn %d" c.cu_txn;
    if c.cu_policy <> "" then Format.fprintf fmt " [%s]" c.cu_policy;
    if c.cu_role <> "" then Format.fprintf fmt " role %s" c.cu_role
  end
  else if c.cu_role <> "" then Format.fprintf fmt ", role %s" c.cu_role;
  if c.cu_op >= 0 then Format.fprintf fmt ", op %d (%s)" c.cu_op c.cu_op_label;
  if c.cu_rule <> "" then Format.fprintf fmt ", fault %s" c.cu_rule

let pp_chain fmt ch =
  Format.fprintf fmt "[%s] %s: %s@.  cause: %s (%d probes)"
    (kind_to_string ch.ch_kind) ch.ch_state ch.ch_detail ch.ch_summary
    ch.ch_probes;
  List.iter
    (fun c -> Format.fprintf fmt "@.  culprit: %a" pp_culprit c)
    ch.ch_culprits

let pp_timeline ?(chains = []) fmt r =
  let flagged =
    let seqs = Hashtbl.create 8 in
    List.iter
      (fun ch ->
        List.iter (fun c -> Hashtbl.replace seqs c.cu_first_seq ()) ch.ch_culprits)
      chains;
    fun seq -> Hashtbl.mem seqs seq
  in
  Format.fprintf fmt "%s write log: %d writes, %d epochs" r.fs r.log_len
    r.rep_epochs;
  let epoch = ref (-1) in
  List.iter
    (fun l ->
      if l.lg_epoch <> !epoch then begin
        epoch := l.lg_epoch;
        Format.fprintf fmt "@.-- epoch %d --" l.lg_epoch
      end;
      Format.fprintf fmt "@.%s w%-4d blk %-5d %-12s" 
        (if flagged l.lg_seq then "!!" else "  ")
        l.lg_seq l.lg_block l.lg_label;
      if l.lg_txn >= 0 then begin
        Format.fprintf fmt " txn %d" l.lg_txn;
        if l.lg_policy <> "" then Format.fprintf fmt " [%s]" l.lg_policy;
        if l.lg_role <> "" then Format.fprintf fmt " %s" l.lg_role
      end
      else if l.lg_role <> "" then Format.fprintf fmt " %s" l.lg_role;
      if l.lg_op >= 0 then Format.fprintf fmt " <- op %d %s" l.lg_op l.lg_op_label;
      if l.lg_rule <> "" then Format.fprintf fmt " !fault %s" l.lg_rule)
    r.log
