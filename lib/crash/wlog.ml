(* Write-log recording device: see wlog.mli.

   The recorder sits between the file system and the medium. It is a
   pure observer — requests are forwarded first and logged only on
   success, so the device's externally visible behaviour (results,
   traces below, statistics, timing) is identical whether or not
   recording is on. The only cost of recording is one [Bytes.copy]
   per successful write. *)

module Dev = Iron_disk.Dev
module Prov = Iron_obs.Prov

type entry = {
  w_seq : int;
  w_block : int;
  w_data : bytes;
  w_epoch : int;
  w_t : float;
  w_prov : Prov.tag;
}

type t = {
  below : Dev.t;
  mutable log : entry array; (* growable; [n] live slots *)
  mutable n : int;
  mutable epoch : int;
  mutable writes_in_epoch : int;
  mutable recording : bool;
}

let dummy =
  {
    w_seq = -1;
    w_block = -1;
    w_data = Bytes.create 0;
    w_epoch = -1;
    w_t = 0.0;
    w_prov = Prov.none;
  }

let create below =
  {
    below;
    log = Array.make 64 dummy;
    n = 0;
    epoch = 0;
    writes_in_epoch = 0;
    recording = false;
  }

let set_recording t on = t.recording <- on
let recording t = t.recording

let clear t =
  t.log <- Array.make 64 dummy;
  t.n <- 0;
  t.epoch <- 0;
  t.writes_in_epoch <- 0

let length t = t.n
let epochs t = t.epoch
let entries t = Array.sub t.log 0 t.n

(* Hand the log over and drop the recorder's own references. A fuzzing
   campaign records thousands of workloads through short-lived
   recorders; without this, each recorder's growable buffer would pin
   every copied payload until the whole recorder dies. *)
let take t =
  let es = entries t and n_epochs = t.epoch in
  clear t;
  (es, n_epochs)

let push t e =
  if t.n = Array.length t.log then begin
    let bigger = Array.make (2 * t.n) dummy in
    Array.blit t.log 0 bigger 0 t.n;
    t.log <- bigger
  end;
  t.log.(t.n) <- e;
  t.n <- t.n + 1

let write t block data =
  match t.below.Dev.write block data with
  | Ok () ->
      if t.recording then begin
        push t
          {
            w_seq = t.n;
            w_block = block;
            w_data = Bytes.copy data;
            w_epoch = t.epoch;
            w_t = t.below.Dev.now ();
            w_prov = Prov.current ();
          };
        t.writes_in_epoch <- t.writes_in_epoch + 1
      end;
      Ok ()
  | Error _ as e -> e

let sync t =
  match t.below.Dev.sync () with
  | Ok () ->
      (* A sync closes an epoch only if it actually ordered something:
         back-to-back syncs do not mint empty epochs. *)
      if t.recording && t.writes_in_epoch > 0 then begin
        t.epoch <- t.epoch + 1;
        t.writes_in_epoch <- 0
      end;
      Ok ()
  | Error _ as e -> e

let dev t =
  {
    Dev.block_size = t.below.Dev.block_size;
    num_blocks = t.below.Dev.num_blocks;
    read = t.below.Dev.read;
    read_into = t.below.Dev.read_into;
    write = write t;
    sync = (fun () -> sync t);
    now = t.below.Dev.now;
  }
