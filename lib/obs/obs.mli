(** Unified observability: a metrics registry, structured I/O spans and
    machine-readable exporters for the whole storage stack.

    The paper's fingerprinting method (section 4.3) infers failure
    policy by diffing three observables — API errors, the system log
    and the low-level I/O trace. This module gives those observables
    one shared, machine-readable schema:

    - a {b metrics registry} of typed counters, gauges and fixed-bucket
      latency histograms, registered by dotted subsystem path
      ([disk.read], [fault.inject.corrupt], [ext3.journal.commit]);
    - {b structured spans}: begin/end events around an operation,
      carrying subsystem, name, an optional block range, and the
      {e simulated}-time duration, collected in a bounded {!Ring};
    - {b exporters}: a pretty console table, JSONL, and the Chrome
      [trace_event] format, so a campaign opens directly in
      [chrome://tracing] or Perfetto.

    {2 Determinism}

    Everything here is keyed on {e simulated} time (the device clock
    installed with {!set_clock}), never wall-clock, so two runs with
    the same seed produce byte-identical snapshots and traces. The
    campaign executor gives every job a private context and merges the
    per-job snapshots in spec order, which is what makes the exported
    metrics independent of the worker count ([-j]). Fingerprinting
    campaigns run with the disk's service-time model disabled, so their
    span timestamps are all zero and the [seq] field carries the
    ordering; benchmark runs carry real simulated milliseconds.

    {2 Domain safety}

    A context may be shared across domains: metric updates go to
    per-domain cells (the same discipline as {!Iron_util.Pool}'s
    executor) that {!snapshot} merges under a lock. Counter and
    histogram merges are commutative; gauges merge by maximum so the
    result does not depend on domain scheduling. Span emission into the
    shared ring is serialized by a mutex. *)

(** {1 Contexts} *)

type t
(** An observability context: one metrics registry plus one bounded
    span buffer, with a clock. Cheap to create; the fingerprinting
    executor makes one per job. *)

val create : ?span_cap:int -> unit -> t
(** [create ()] is a fresh, empty context. [span_cap] bounds the span
    ring (default {!default_span_cap}); the oldest spans are dropped
    once it fills (see {!spans_dropped}). *)

val default_span_cap : int
(** [65536]. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the simulated-time source (milliseconds). The device layer
    calls this from {!Iron_disk.Dev.observe}, so spans opened above the
    device inherit its clock. Defaults to a constant [0.0]. *)

val now : t -> float
(** Current simulated time, per the installed clock. *)

val release : t -> unit
(** Drop the calling domain's per-domain cells for this context. Call
    after the final {!snapshot} when contexts are created per job, so
    the domain-local table does not accumulate dead stores. *)

(** {1 Metrics} *)

val incr : t -> string -> unit
(** [incr t path] adds one to the counter registered at [path],
    creating it at zero first if needed. *)

val add : t -> string -> int -> unit
(** [add t path n] adds [n] to the counter at [path]. *)

val set_gauge : t -> string -> float -> unit
(** [set_gauge t path v] sets the gauge at [path] to [v] in this
    domain's cell; across domains a snapshot reports the maximum. *)

val observe : ?buckets:float array -> t -> string -> float -> unit
(** [observe t path v] records one observation into the fixed-bucket
    histogram at [path], creating it with [buckets] (strictly
    increasing upper bounds, default {!default_buckets}) on first use.
    An observation [v] lands in the first bucket whose bound is
    [>= v], or in the implicit overflow bucket. *)

val default_buckets : float array
(** Upper bounds in milliseconds, spanning 10 microseconds to five
    simulated seconds. *)

(** {1 Spans} *)

type span = {
  seq : int;  (** emission order within the context, from 0 *)
  tid : int;  (** thread lane for exporters; see {!with_tid} *)
  subsystem : string;  (** dotted path, e.g. ["ext3.journal"] *)
  name : string;  (** operation, e.g. ["commit"] *)
  t0 : float;  (** simulated ms at begin *)
  dur : float;  (** simulated ms; [0.] for instants *)
  blk_lo : int;  (** first block touched, or [-1] *)
  blk_hi : int;  (** last block touched, or [-1] *)
  instant : bool;  (** an instantaneous event, not an interval *)
}

val span : t -> subsystem:string -> ?blocks:int * int -> string -> (unit -> 'a) -> 'a
(** [span t ~subsystem name f] runs [f ()] and records one span around
    it: an interval from the clock at entry to the clock at exit, plus
    a counter [subsystem.name] and a latency histogram
    [subsystem.name.ms] in the registry. If [f] raises, the span is
    still recorded (under counter [subsystem.name.raised]) and the
    exception is re-raised. *)

val event : t -> subsystem:string -> ?blocks:int * int -> string -> unit
(** Record an instantaneous event plus a counter [subsystem.name]. *)

val spans : t -> span list
(** Recorded spans, oldest first. *)

val spans_dropped : t -> int
(** Spans evicted because the ring filled. *)

val with_tid : int -> span list -> span list
(** Re-tag spans with an exporter lane; the campaign aggregator uses
    the job index so per-job traces do not overlap. *)

(** {2 Ambient context}

    Layers deep inside a file system (the journal commit path, the
    scrubber) cannot thread a context through the frozen VFS
    signature; they use the per-domain ambient context instead. All
    [_a] helpers are no-ops when no ambient context is installed, so
    uninstrumented runs pay one domain-local read per call site. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the calling domain's ambient context for the
    duration of the callback (restoring the previous one after). *)

val ambient : unit -> t option
(** The calling domain's current ambient context, if any. *)

val span_a : subsystem:string -> ?blocks:int * int -> string -> (unit -> 'a) -> 'a
(** {!span} against the ambient context; just runs the callback when
    there is none. *)

val event_a : subsystem:string -> ?blocks:int * int -> string -> unit
(** {!event} against the ambient context, if any. *)

val incr_a : string -> unit
(** {!incr} against the ambient context, if any. *)

(** {1 Snapshots} *)

type histogram = {
  bounds : float array;  (** bucket upper bounds *)
  counts : int array;  (** per-bucket counts; last is overflow *)
  sum : float;  (** sum of observations *)
  count : int;  (** number of observations *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

type snapshot = (string * value) list
(** Path-sorted, immutable view of a registry. *)

val snapshot : t -> snapshot
(** Merge every domain's cells into one path-sorted listing. Take it
    after the work quiesces; concurrent updates may or may not be
    included. *)

val merge : snapshot list -> snapshot
(** Merge snapshots path-wise, in list order: counters and histogram
    cells add, gauges take the maximum.
    @raise Invalid_argument when one path carries two different metric
    kinds or histograms with different bucket layouts. *)

(** {1 Exporters} *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Pretty per-subsystem table for the console ([iron stats]). *)

val jsonl_of_snapshot : snapshot -> string
(** One JSON object per line:
    [{"type":"counter","path":"disk.read","value":12}],
    [{"type":"histogram","path":...,"count":..,"sum":..,"buckets":[{"le":..,"n":..},...]}]
    with ["+Inf"] as the overflow bound. Byte-stable for equal
    snapshots. *)

val jsonl_of_spans : ?dropped:int -> span list -> string
(** One JSON object per span, in the given order. When [dropped > 0]
    (spans evicted from the ring, {!spans_dropped}), a trailing
    [{"meta":"spans_dropped","dropped":N}] record makes the truncation
    self-describing instead of silently omitting history. *)

val chrome_trace :
  ?dropped:(string * int) list -> (string * span list) list -> string
(** [chrome_trace [(proc_name, spans); ...]] renders the Chrome
    [trace_event] JSON-array format: each list element becomes one
    process (with a [process_name] metadata record), intervals become
    ["ph":"X"] complete events and instants ["ph":"i"], with
    timestamps in microseconds of simulated time and block ranges in
    [args]. [dropped] maps process names to their eviction counts;
    a process with a positive count gets a trailing [spans_dropped]
    instant carrying the count in [args]. Open the result in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)
