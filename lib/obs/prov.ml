(* Ambient causal tags: see prov.mli.

   The tag lives in a per-domain DLS slot as an immutable record
   behind a ref, exactly like Obs's ambient context. Scoping helpers
   save and restore the previous tag with Fun.protect, so a tag can
   never leak past the operation that installed it even when the
   wrapped callback raises (mount panics, injected faults). *)

type tag = {
  op : int;
  op_label : string;
  txn : int;
  policy : string;
  role : string;
  rule : string;
}

let none =
  { op = -1; op_label = ""; txn = -1; policy = ""; role = ""; rule = "" }

let dls_tag : tag ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref none)

let current () = !(Domain.DLS.get dls_tag)

let scoped next f =
  let slot = Domain.DLS.get dls_tag in
  let saved = !slot in
  slot := next;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* A new VFS op is a fresh causal root: faults noted during the
   previous op must not bleed into this one. *)
let with_op op op_label f = scoped { (current ()) with op; op_label; rule = "" } f
let with_txn ~txn ~policy f = scoped { (current ()) with txn; policy } f
let with_role role f = scoped { (current ()) with role } f

let note_rule rule =
  let slot = Domain.DLS.get dls_tag in
  slot := { !slot with rule }
