(* A plain circular buffer over an option array. [next] is the slot the
   next push writes; the oldest live item sits [len] slots behind it. *)

type 'a t = {
  cap : int;
  slots : 'a option array;
  mutable len : int;
  mutable next : int;
  mutable dropped : int;
}

let create cap =
  if cap < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { cap; slots = Array.make cap None; len = 0; next = 0; dropped = 0 }

let push t x =
  if t.len = t.cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod t.cap

let length t = t.len
let capacity t = t.cap
let dropped t = t.dropped

(* O(live items), not O(capacity): the fingerprinting executor clears a
   65536-slot trace ring between jobs that each push only a few hundred
   events — filling the whole array every time dominated the clear. *)
let clear t =
  if t.len > 0 then begin
    let start = (t.next - t.len + (2 * t.cap)) mod t.cap in
    let tail = min t.len (t.cap - start) in
    Array.fill t.slots start tail None;
    if tail < t.len then Array.fill t.slots 0 (t.len - tail) None
  end;
  t.len <- 0;
  t.next <- 0;
  t.dropped <- 0

let to_list t =
  let start = (t.next - t.len + (2 * t.cap)) mod t.cap in
  List.init t.len (fun i ->
      match t.slots.((start + i) mod t.cap) with
      | Some x -> x
      | None -> assert false)

let iter f t = List.iter f (to_list t)
