(** Bounded ring buffer.

    The per-run evidence buffers of the observability layer ({!Obs}
    spans, the fault injector's I/O trace) must not grow without bound:
    a pathological workload under fault injection can issue millions of
    I/Os, and the fingerprinting engine runs hundreds of such jobs in
    one process. A ring keeps the {e newest} [capacity] items and
    counts what it had to drop, so a consumer can tell whether its
    window is complete.

    Not thread-safe on its own; callers that share a ring across
    domains must serialize pushes (as {!Obs} does). *)

type 'a t

val create : int -> 'a t
(** [create cap] is an empty ring holding at most [cap] items.
    @raise Invalid_argument if [cap < 1]. *)

val push : 'a t -> 'a -> unit
(** Append one item; when the ring is full the oldest item is evicted
    and the drop counter is bumped. *)

val length : 'a t -> int
(** Items currently held, [<= capacity]. *)

val capacity : 'a t -> int

val dropped : 'a t -> int
(** Items evicted since creation (or the last {!clear}). [0] means
    {!to_list} is the complete history. *)

val clear : 'a t -> unit
(** Empty the ring and reset the drop counter. *)

val to_list : 'a t -> 'a list
(** Held items, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] to each held item, oldest first. *)
