(** Ambient block provenance: the causal tag a write carries.

    The crash-state explorer can enumerate what a fail-partial disk
    might have left behind, but turning a violation into a diagnosis
    needs to know {e why} each logged write happened: which workload
    step issued it, which journal transaction it belongs to and under
    which commit policy, what role the block plays in that transaction
    (descriptor, payload, commit record, checkpoint, ...), and whether
    a fault-injection rule fired on the way down.

    This module carries that tag {e ambiently}, per domain, exactly
    like {!Obs}'s ambient context: layers that cannot thread an
    argument through the frozen VFS signature (the journal commit
    path, three layers below the workload) still contribute their
    fields. The workload driver scopes {!with_op}, the journal engines
    scope {!with_txn} and {!with_role}, the fault injector calls
    {!note_rule}, and the {!Iron_crash.Wlog} recorder samples
    {!current} at every successful write.

    Tags are immutable records in a per-domain slot; scoping helpers
    restore the previous tag on exit (also on exceptions), so the
    discipline is purely dynamic — no cooperation needed between
    layers. Everything is deterministic: recording happens in a single
    domain and no field depends on wall-clock time or scheduling. *)

type tag = {
  op : int;  (** workload step index, or [-1] outside any op *)
  op_label : string;  (** human label, e.g. ["write /racing0"] *)
  txn : int;  (** journal transaction sequence, or [-1] *)
  policy : string;  (** commit policy label, e.g. ["ordered"] *)
  role : string;  (** block role, e.g. ["payload"], ["commit"] *)
  rule : string;  (** last fault rule fired during this op, or [""] *)
}

val none : tag
(** The empty tag: all [-1] / [""]. *)

val current : unit -> tag
(** The calling domain's ambient tag ({!none} if nothing is scoped). *)

val with_op : int -> string -> (unit -> 'a) -> 'a
(** [with_op i label f] runs [f] with the op fields set (and the fault
    [rule] field cleared — a new op is a fresh causal root). *)

val with_txn : txn:int -> policy:string -> (unit -> 'a) -> 'a
(** Scope the journal transaction id and commit-policy label. *)

val with_role : string -> (unit -> 'a) -> 'a
(** Scope the block role within the current transaction. *)

val note_rule : string -> unit
(** Record that the named fault rule fired; sticks until the enclosing
    {!with_op} (or a later {!note_rule}) replaces it. *)
