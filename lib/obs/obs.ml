(* The observability context: per-domain metric cells merged at
   snapshot (the same discipline as the Pool executor: shared state is
   either immutable or owned by exactly one domain, and rendezvous
   happens under a lock), one mutex-guarded span ring, one clock.

   Nothing here reads wall-clock time: all timestamps come from the
   installed simulated clock, which is what keeps snapshots and traces
   byte-stable across runs and across worker counts. *)

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

type hist_cell = {
  h_bounds : float array;
  h_counts : int array; (* length = Array.length h_bounds + 1 *)
  mutable h_sum : float;
  mutable h_n : int;
}

type cell = Ccell of int ref | Gcell of float ref | Hcell of hist_cell
type store = (string, cell) Hashtbl.t

type span = {
  seq : int;
  tid : int;
  subsystem : string;
  name : string;
  t0 : float;
  dur : float;
  blk_lo : int;
  blk_hi : int;
  instant : bool;
}

type t = {
  id : int;
  m : Mutex.t;
  mutable stores : store list; (* every domain's cell table *)
  span_ring : span Ring.t;
  mutable seq : int;
  mutable clock : unit -> float;
}

let ids = Atomic.make 0
let default_span_cap = 65536

let create ?(span_cap = default_span_cap) () =
  {
    id = Atomic.fetch_and_add ids 1;
    m = Mutex.create ();
    stores = [];
    span_ring = Ring.create span_cap;
    seq = 0;
    clock = (fun () -> 0.0);
  }

let set_clock t f = t.clock <- f
let now t = t.clock ()

(* ------------------------------------------------------------------ *)
(* Per-domain stores                                                   *)
(* ------------------------------------------------------------------ *)

(* One domain-local table mapping context id -> that domain's store.
   Contexts register their stores under [t.m] so [snapshot] can find
   them all. *)
let dls_stores : (int, store) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let local_store t =
  let map = Domain.DLS.get dls_stores in
  match Hashtbl.find_opt map t.id with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 32 in
      Hashtbl.replace map t.id s;
      Mutex.lock t.m;
      t.stores <- s :: t.stores;
      Mutex.unlock t.m;
      s

let release t = Hashtbl.remove (Domain.DLS.get dls_stores) t.id

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let kind_err path want = invalid_arg ("Obs: " ^ path ^ " is not a " ^ want)

let add t path n =
  let s = local_store t in
  match Hashtbl.find_opt s path with
  | Some (Ccell r) -> r := !r + n
  | Some _ -> kind_err path "counter"
  | None -> Hashtbl.replace s path (Ccell (ref n))

let incr t path = add t path 1

let set_gauge t path v =
  let s = local_store t in
  match Hashtbl.find_opt s path with
  | Some (Gcell r) -> r := v
  | Some _ -> kind_err path "gauge"
  | None -> Hashtbl.replace s path (Gcell (ref v))

let default_buckets =
  [| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0; 5000.0 |]

(* First bucket whose upper bound is >= v; [Array.length bounds] is the
   overflow bucket. Bucket arrays are tiny, so a linear scan wins. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe ?(buckets = default_buckets) t path v =
  let s = local_store t in
  let h =
    match Hashtbl.find_opt s path with
    | Some (Hcell h) -> h
    | Some _ -> kind_err path "histogram"
    | None ->
        let h =
          {
            h_bounds = buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_n = 0;
          }
        in
        Hashtbl.replace s path (Hcell h);
        h
  in
  let i = bucket_index h.h_bounds v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_n <- h.h_n + 1

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let emit t ~subsystem ~name ~t0 ~dur ~blocks ~instant =
  let blk_lo, blk_hi = match blocks with Some (a, b) -> (a, b) | None -> (-1, -1) in
  Mutex.lock t.m;
  let seq = t.seq in
  t.seq <- seq + 1;
  Ring.push t.span_ring
    { seq; tid = 0; subsystem; name; t0; dur; blk_lo; blk_hi; instant };
  Mutex.unlock t.m

let event t ~subsystem ?blocks name =
  emit t ~subsystem ~name ~t0:(t.clock ()) ~dur:0.0 ~blocks ~instant:true;
  incr t (subsystem ^ "." ^ name)

let span t ~subsystem ?blocks name f =
  let t0 = t.clock () in
  match f () with
  | v ->
      let dur = t.clock () -. t0 in
      emit t ~subsystem ~name ~t0 ~dur ~blocks ~instant:false;
      incr t (subsystem ^ "." ^ name);
      observe t (subsystem ^ "." ^ name ^ ".ms") dur;
      v
  | exception e ->
      let dur = t.clock () -. t0 in
      emit t ~subsystem ~name ~t0 ~dur ~blocks ~instant:false;
      incr t (subsystem ^ "." ^ name ^ ".raised");
      raise e

let spans t =
  Mutex.lock t.m;
  let l = Ring.to_list t.span_ring in
  Mutex.unlock t.m;
  l

let spans_dropped t = Ring.dropped t.span_ring
let with_tid tid sps = List.map (fun s -> { s with tid }) sps

(* ------------------------------------------------------------------ *)
(* Ambient context                                                     *)
(* ------------------------------------------------------------------ *)

let dls_ambient : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ambient () = !(Domain.DLS.get dls_ambient)

let with_ambient t f =
  let slot = Domain.DLS.get dls_ambient in
  let saved = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := saved) f

let span_a ~subsystem ?blocks name f =
  match ambient () with
  | None -> f ()
  | Some t -> span t ~subsystem ?blocks name f

let event_a ~subsystem ?blocks name =
  match ambient () with None -> () | Some t -> event t ~subsystem ?blocks name

let incr_a path =
  match ambient () with None -> () | Some t -> incr t path

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value = Counter of int | Gauge of float | Histogram of histogram
type snapshot = (string * value) list

let freeze = function
  | Ccell r -> Counter !r
  | Gcell r -> Gauge !r
  | Hcell h ->
      Histogram
        {
          bounds = Array.copy h.h_bounds;
          counts = Array.copy h.h_counts;
          sum = h.h_sum;
          count = h.h_n;
        }

let merge_value path a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y ->
      if x.bounds <> y.bounds then
        invalid_arg ("Obs.merge: bucket layouts differ at " ^ path);
      Histogram
        {
          bounds = x.bounds;
          counts = Array.map2 ( + ) x.counts y.counts;
          sum = x.sum +. y.sum;
          count = x.count + y.count;
        }
  | _ -> invalid_arg ("Obs.merge: metric kinds differ at " ^ path)

let sorted_of_table acc =
  Hashtbl.fold (fun path v l -> (path, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let fold_into acc path v =
  match Hashtbl.find_opt acc path with
  | None -> Hashtbl.replace acc path v
  | Some prev -> Hashtbl.replace acc path (merge_value path prev v)

let snapshot t =
  Mutex.lock t.m;
  let stores = t.stores in
  Mutex.unlock t.m;
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.iter (fun path c -> fold_into acc path (freeze c)) s)
    (List.rev stores);
  sorted_of_table acc

let merge snaps =
  let acc = Hashtbl.create 64 in
  List.iter (List.iter (fun (path, v) -> fold_into acc path v)) snaps;
  sorted_of_table acc

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let pp_value fmt = function
  | Counter n -> Format.fprintf fmt "%d" n
  | Gauge g -> Format.fprintf fmt "%.3f" g
  | Histogram h ->
      Format.fprintf fmt "n=%d sum=%.3fms" h.count h.sum;
      Array.iteri
        (fun i c ->
          if c > 0 then
            if i = Array.length h.bounds then Format.fprintf fmt " +Inf:%d" c
            else Format.fprintf fmt " le%g:%d" h.bounds.(i) c)
        h.counts

let pp_snapshot fmt snap =
  Format.fprintf fmt "%-42s %s@." "metric" "value";
  Format.fprintf fmt "%-42s %s@." (String.make 42 '-') "-----";
  List.iter
    (fun (path, v) -> Format.fprintf fmt "%-42s %a@." path pp_value v)
    snap

(* Minimal JSON helpers: paths and names are code-controlled ASCII, but
   escape defensively so the output is always valid JSON. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6f" f

let jsonl_of_snapshot snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, v) ->
      (match v with
      | Counter n ->
          Buffer.add_string b
            (Printf.sprintf "{\"type\":\"counter\",\"path\":%s,\"value\":%d}"
               (json_string path) n)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "{\"type\":\"gauge\",\"path\":%s,\"value\":%s}"
               (json_string path) (json_float g))
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"type\":\"histogram\",\"path\":%s,\"count\":%d,\"sum\":%s,\"buckets\":["
               (json_string path) h.count (json_float h.sum));
          Array.iteri
            (fun i c ->
              if i > 0 then Buffer.add_char b ',';
              let le =
                if i = Array.length h.bounds then "\"+Inf\""
                else json_float h.bounds.(i)
              in
              Buffer.add_string b (Printf.sprintf "{\"le\":%s,\"n\":%d}" le c))
            h.counts;
          Buffer.add_string b "]}");
      Buffer.add_char b '\n')
    snap;
  Buffer.contents b

let jsonl_of_spans ?(dropped = 0) sps =
  let b = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"subsystem\":%s,\"name\":%s,\"tid\":%d,\"seq\":%d,\"t0_ms\":%s,\"dur_ms\":%s,\"block_lo\":%d,\"block_hi\":%d,\"instant\":%b}\n"
           (json_string s.subsystem) (json_string s.name) s.tid s.seq
           (json_float s.t0) (json_float s.dur) s.blk_lo s.blk_hi s.instant))
    sps;
  if dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "{\"meta\":\"spans_dropped\",\"dropped\":%d}\n" dropped);
  Buffer.contents b

let chrome_trace ?(dropped = []) procs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let add_record s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b s
  in
  List.iteri
    (fun i (proc_name, sps) ->
      let pid = i + 1 in
      add_record
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}"
           pid (json_string proc_name));
      List.iter
        (fun s ->
          let args =
            if s.blk_lo >= 0 then
              Printf.sprintf "{\"seq\":%d,\"block_lo\":%d,\"block_hi\":%d}"
                s.seq s.blk_lo s.blk_hi
            else Printf.sprintf "{\"seq\":%d}" s.seq
          in
          if s.instant then
            add_record
              (Printf.sprintf
                 "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"args\":%s}"
                 (json_string s.name) (json_string s.subsystem) pid s.tid
                 (json_float (s.t0 *. 1000.0))
                 args)
          else
            add_record
              (Printf.sprintf
                 "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
                 (json_string s.name) (json_string s.subsystem) pid s.tid
                 (json_float (s.t0 *. 1000.0))
                 (json_float (s.dur *. 1000.0))
                 args))
        sps;
      match List.assoc_opt proc_name dropped with
      | Some n when n > 0 ->
          add_record
            (Printf.sprintf
               "{\"name\":\"spans_dropped\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":0,\"ts\":0,\"args\":{\"dropped\":%d}}"
               pid n)
      | Some _ | None -> ())
    procs;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
