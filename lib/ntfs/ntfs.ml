open Iron_util
module Dev = Iron_disk.Dev
module Bcache = Iron_disk.Bcache
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Fs = Iron_vfs.Fs
module Fdtable = Iron_vfs.Fdtable
module Resolver = Iron_vfs.Resolver

let ( let* ) = Result.bind

(* ---- layout ---------------------------------------------------------- *)

let boot_block = 0
let mft_bitmap_block = 1
let volume_bitmap_block = 2
let logfile_start = 3
let logfile_len = 32
let mft_start = logfile_start + logfile_len
let mft_blocks = 64
let first_data = mft_start + mft_blocks

let boot_magic = 0x4E544653 (* "NTFS" *)
let file_magic = 0x46494C45 (* "FILE" *)
let indx_magic = 0x494E4458 (* "INDX" *)
let log_desc_magic = 0x4C4F4744
let log_commit_magic = 0x4C4F4743

let root_ino = 2
let record_size = 1024
let records_per_block = 4
let data_runs = 48

(* Retry budgets (§5.4). *)
let read_attempts = 7
let data_write_attempts = 3
let mft_write_attempts = 2

(* ---- MFT record codec ------------------------------------------------ *)

type record = {
  kind : Fs.kind option;
  links : int;
  perms : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
  runs : int array; (* length data_runs *)
  target : string;
}

let free_record =
  {
    kind = None;
    links = 0;
    perms = 0;
    size = 0;
    atime = 0;
    mtime = 0;
    ctime = 0;
    runs = Array.make data_runs 0;
    target = "";
  }

let kind_code = function
  | None -> 0
  | Some Fs.Regular -> 1
  | Some Fs.Directory -> 2
  | Some Fs.Symlink -> 3

let kind_of_code = function
  | 1 -> Some Fs.Regular
  | 2 -> Some Fs.Directory
  | 3 -> Some Fs.Symlink
  | _ -> None

let encode_record rec_ buf off =
  Bytes.fill buf off record_size '\000';
  let w = Codec.writer ~pos:off buf in
  Codec.put_u32 w file_magic;
  Codec.put_u8 w (kind_code rec_.kind);
  Codec.put_u8 w 0;
  Codec.put_u16 w rec_.links;
  Codec.put_u16 w rec_.perms;
  Codec.put_u16 w 0;
  Codec.put_u32 w rec_.size;
  Codec.put_u32 w rec_.atime;
  Codec.put_u32 w rec_.mtime;
  Codec.put_u32 w rec_.ctime;
  Array.iter (Codec.put_u32 w) rec_.runs;
  let target =
    if String.length rec_.target > 64 then String.sub rec_.target 0 64
    else rec_.target
  in
  Codec.put_u16 w (String.length target);
  Codec.put_string w target

(* MFT records carry a magic; NTFS checks it on every use (strong
   sanity, §5.4). [None] = failed check. A zeroed (never used) record
   decodes as an explicit free record. *)
let decode_record buf off =
  try
    let r = Codec.reader ~pos:off buf in
    let magic = Codec.get_u32 r in
    if magic = 0 then Some free_record
    else if magic <> file_magic then None
    else
      let kind = kind_of_code (Codec.get_u8 r) in
      let _ = Codec.get_u8 r in
      let links = Codec.get_u16 r in
      let perms = Codec.get_u16 r in
      let _ = Codec.get_u16 r in
      let size = Codec.get_u32 r in
      let atime = Codec.get_u32 r in
      let mtime = Codec.get_u32 r in
      let ctime = Codec.get_u32 r in
      let runs = Array.init data_runs (fun _ -> Codec.get_u32 r) in
      let tlen = Codec.get_u16 r in
      let target =
        if tlen <= 64 && tlen <= Codec.remaining r then Codec.get_string r tlen
        else ""
      in
      Some { kind; links; perms; size; atime; mtime; ctime; runs; target }
  with Codec.Decode_error _ -> None

(* ---- index (directory) block codec ----------------------------------- *)

let encode_index entries buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w indx_magic;
  Codec.put_u16 w (List.length entries);
  List.iter
    (fun (name, ino) ->
      Codec.put_u32 w ino;
      Codec.put_u16 w (String.length name);
      Codec.put_string w name)
    entries

let decode_index buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> indx_magic then None
    else
      let n = Codec.get_u16 r in
      if n > 500 then None
      else
        let rec go k acc =
          if k = 0 then Some (List.rev acc)
          else
            let ino = Codec.get_u32 r in
            let len = Codec.get_u16 r in
            if len > Codec.remaining r then None
            else
              let name = Codec.get_string r len in
              go (k - 1) ((name, ino) :: acc)
        in
        go n []
  with Codec.Decode_error _ -> None

(* ---- state ------------------------------------------------------------ *)

type fdesc = { fd_ino : int; fd_mode : Fs.open_mode }

type state = {
  dev : Dev.t;
  bs : int;
  klog : Klog.t;
  cache : Bcache.t;
  num_blocks : int;
  txn : (int, bytes) Hashtbl.t;
  mutable txn_order : int list;
  mutable lpos : int; (* next free logfile block *)
  mutable lseq : int;
  mutable free_blocks : int;
  fds : fdesc Fdtable.t;
  mutable cwd : int;
  mutable root : int;
  mutable readonly : bool;
}

let now_seconds t = int_of_float (t.dev.Dev.now () /. 1000.)
let total_records = mft_blocks * records_per_block

(* ---- retried I/O ------------------------------------------------------ *)

(* NTFS is the persistent one: reads are attempted up to seven times. *)
let retried_read t b =
  let rec attempt n =
    match
      (match Hashtbl.find_opt t.txn b with
      | Some d -> Ok (Bytes.copy d)
      | None -> (
          match Bcache.read t.cache b with Ok d -> Ok d | Error _ -> Error Errno.EIO))
    with
    | Ok d -> Ok d
    | Error e ->
        if n < read_attempts then attempt (n + 1)
        else begin
          Klog.error t.klog "ntfs" "read of block %d failed after %d attempts" b n;
          Error e
        end
  in
  attempt 1

(* Writes are retried too, with per-type budgets; after that the error
   code is recorded in the log and — for data — never used again. *)
let retried_write t b data ~attempts ~what =
  let rec attempt n =
    match Bcache.write t.cache b data with
    | Ok () -> Ok ()
    | Error e ->
        if n < attempts then attempt (n + 1)
        else begin
          Klog.error t.klog "ntfs" "%s write to block %d failed after %d attempts"
            what b n;
          Error e
        end
  in
  attempt 1

let meta_write t b data =
  if t.readonly then Error Errno.EROFS
  else begin
    if not (Hashtbl.mem t.txn b) then t.txn_order <- b :: t.txn_order;
    Hashtbl.replace t.txn b (Bytes.copy data);
    Ok ()
  end

(* The logfile: a compact block journal, flushed on sync/fsync. All its
   blocks present as the single "logfile" type. *)
let encode_log_desc t seq tags =
  let buf = Bytes.make t.bs '\000' in
  let w = Codec.writer buf in
  Codec.put_u32 w log_desc_magic;
  Codec.put_u32 w seq;
  Codec.put_u32 w (List.length tags);
  List.iter (Codec.put_u32 w) tags;
  buf

let encode_log_commit t seq =
  let buf = Bytes.make t.bs '\000' in
  let w = Codec.writer buf in
  Codec.put_u32 w log_commit_magic;
  Codec.put_u32 w seq;
  buf

let decode_log_desc buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> log_desc_magic then None
    else
      let seq = Codec.get_u32 r in
      let count = Codec.get_u32 r in
      if count > (Bytes.length buf - 12) / 4 then None
      else Some (seq, List.init count (fun _ -> Codec.get_u32 r))
  with Codec.Decode_error _ -> None

let decode_log_commit buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> log_commit_magic then None else Some (Codec.get_u32 r)
  with Codec.Decode_error _ -> None

let checkpoint t =
  List.iter
    (fun b ->
      match Hashtbl.find_opt t.txn b with
      | None -> ()
      | Some data -> (
          let attempts =
            if b >= mft_start && b < mft_start + mft_blocks then mft_write_attempts
            else mft_write_attempts
          in
          match retried_write t b data ~attempts ~what:"metadata" with
          | Ok () -> ()
          | Error _ -> t.readonly <- true))
    (List.sort compare (List.rev t.txn_order));
  Hashtbl.reset t.txn;
  t.txn_order <- [];
  (* The home writes must be durable before the restart area erases the
     transaction: a crash persisting the cleared log ahead of an
     in-flight home write would have no redo path. A crash the other way
     round only re-replays the transaction, which is idempotent. *)
  ignore (t.dev.Dev.sync ());
  ignore
    (retried_write t logfile_start
       (Bytes.make t.bs '\000')
       ~attempts:mft_write_attempts ~what:"logfile restart");
  t.lpos <- logfile_start

let commit t =
  if Hashtbl.length t.txn = 0 then Ok ()
  else begin
    let blocks = List.rev t.txn_order in
    let needed = 2 + List.length blocks in
    if t.lpos + needed > logfile_start + logfile_len then begin
      checkpoint t;
      Ok ()
    end
    else begin
      let seq = t.lseq in
      ignore
        (retried_write t t.lpos (encode_log_desc t seq blocks)
           ~attempts:mft_write_attempts ~what:"logfile");
      let pos = ref (t.lpos + 1) in
      List.iter
        (fun b ->
          (match Hashtbl.find_opt t.txn b with
          | Some data ->
              ignore
                (retried_write t !pos data ~attempts:mft_write_attempts
                   ~what:"logfile")
          | None -> ());
          incr pos)
        blocks;
      ignore (t.dev.Dev.sync ());
      ignore
        (retried_write t !pos (encode_log_commit t seq)
           ~attempts:mft_write_attempts ~what:"logfile");
      ignore (t.dev.Dev.sync ());
      t.lpos <- !pos + 1;
      t.lseq <- seq + 1;
      (* NTFS's log is undo/redo against already-written metadata: our
         model writes metadata home at checkpoint. *)
      checkpoint t;
      Ok ()
    end
  end

(* ---- allocation -------------------------------------------------------- *)

let bit_get buf i = Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set buf i on =
  let v = Char.code (Bytes.get buf (i / 8)) in
  let v' = if on then v lor (1 lsl (i mod 8)) else v land lnot (1 lsl (i mod 8)) in
  Bytes.set buf (i / 8) (Char.chr (v' land 0xFF))

let alloc_block t =
  let* buf = retried_read t volume_bitmap_block in
  let limit = min (t.bs * 8) t.num_blocks in
  let rec find i =
    if i >= limit then Error Errno.ENOSPC
    else if (not (bit_get buf i)) && i >= first_data then Ok i
    else find (i + 1)
  in
  let* b = find 0 in
  bit_set buf b true;
  let* () = meta_write t volume_bitmap_block buf in
  t.free_blocks <- t.free_blocks - 1;
  Ok b

let free_block t b =
  if b < first_data || b >= t.num_blocks then Ok ()
  else
    let* buf = retried_read t volume_bitmap_block in
    if bit_get buf b then begin
      bit_set buf b false;
      let* () = meta_write t volume_bitmap_block buf in
      t.free_blocks <- t.free_blocks + 1;
      Ok ()
    end
    else Ok ()

let alloc_record t =
  let* buf = retried_read t mft_bitmap_block in
  let rec find i =
    if i >= total_records then Error Errno.ENOSPC
    else if not (bit_get buf i) then Ok i
    else find (i + 1)
  in
  let* i = find 0 in
  bit_set buf i true;
  let* () = meta_write t mft_bitmap_block buf in
  Ok (i + 1)

let free_record_slot t ino =
  let* buf = retried_read t mft_bitmap_block in
  bit_set buf (ino - 1) false;
  meta_write t mft_bitmap_block buf

(* ---- MFT access -------------------------------------------------------- *)

let record_location ino =
  (mft_start + ((ino - 1) / records_per_block),
   (ino - 1) mod records_per_block * record_size)

let read_record t ino =
  if ino < 1 || ino > total_records then Error Errno.EIO
  else
    let blk, off = record_location ino in
    let* buf = retried_read t blk in
    match decode_record buf off with
    | Some r -> Ok r
    | None ->
        (* Strong sanity: a record without its magic is corruption. *)
        Klog.error t.klog "ntfs" "MFT record %d failed its magic check" ino;
        Error Errno.EUCLEAN

let write_record t ino r =
  let blk, off = record_location ino in
  let* buf = retried_read t blk in
  encode_record r buf off;
  meta_write t blk buf

(* ---- data -------------------------------------------------------------- *)

let data_read_block t r fblock =
  if fblock >= data_runs then Error Errno.EFBIG
  else begin
    let b = r.runs.(fblock) in
    if b = 0 then Ok (Bytes.make t.bs '\000')
    else if b >= t.num_blocks then begin
      Klog.error t.klog "ntfs" "impossible cluster %d" b;
      Error Errno.EIO
    end
    else retried_read t b
  end

let data_write_block t ino r fblock data =
  if fblock >= data_runs then Error Errno.EFBIG
  else begin
    let* r =
      if r.runs.(fblock) <> 0 then Ok r
      else
        let* b = alloc_block t in
        let runs = Array.copy r.runs in
        runs.(fblock) <- b;
        let r = { r with runs } in
        let* () = write_record t ino r in
        Ok r
    in
    let b = r.runs.(fblock) in
    (* NOTE: no range check on the cluster pointer here — the missed
       sanity check the paper observed: a corrupted pointer makes this
       write land on whatever block it names (§5.4). *)
    (match retried_write t b data ~attempts:data_write_attempts ~what:"data" with
    | Ok () -> ()
    | Error _ -> () (* recorded in the log, never used *));
    Ok r
  end

(* ---- directories -------------------------------------------------------- *)

let dir_blocks t r =
  let n = (r.size + t.bs - 1) / t.bs in
  let rec go i acc =
    if i >= n || i >= data_runs then Ok (List.rev acc)
    else begin
      let b = r.runs.(i) in
      if b = 0 || b >= t.num_blocks then go (i + 1) acc
      else
        let* buf = retried_read t b in
        match decode_index buf with
        | Some entries -> go (i + 1) ((i, b, entries) :: acc)
        | None ->
            Klog.error t.klog "ntfs" "index block %d failed its magic check" b;
            Error Errno.EUCLEAN
    end
  in
  go 0 []

let dir_entries t r =
  let* blocks = dir_blocks t r in
  Ok (List.concat_map (fun (_, _, es) -> es) blocks)

let dir_add t dino dr name ino =
  let* blocks = dir_blocks t dr in
  let rec place = function
    | [] ->
        let n = (dr.size + t.bs - 1) / t.bs in
        let* dr', _b =
          let* b = alloc_block t in
          let runs = Array.copy dr.runs in
          runs.(n) <- b;
          let dr' = { dr with runs; size = (n + 1) * t.bs } in
          let* () = write_record t dino dr' in
          Ok (dr', b)
        in
        let buf = Bytes.make t.bs '\000' in
        encode_index [ (name, ino) ] buf;
        meta_write t dr'.runs.(n) buf
    | (_, b, entries) :: rest ->
        if List.length entries >= 120 then place rest
        else begin
          let buf = Bytes.make t.bs '\000' in
          encode_index (entries @ [ (name, ino) ]) buf;
          meta_write t b buf
        end
  in
  place blocks

let dir_remove t _dino dr name =
  let* blocks = dir_blocks t dr in
  let rec go = function
    | [] -> Error Errno.ENOENT
    | (_, b, entries) :: rest ->
        if List.mem_assoc name entries then begin
          let buf = Bytes.make t.bs '\000' in
          encode_index (List.remove_assoc name entries) buf;
          meta_write t b buf
        end
        else go rest
  in
  go blocks

(* ---- resolver ------------------------------------------------------------ *)

let resolver_ops t =
  {
    Resolver.lookup =
      (fun dir name ->
        let* dr = read_record t dir in
        if dr.kind <> Some Fs.Directory then Error Errno.ENOTDIR
        else
          let* es = dir_entries t dr in
          match List.assoc_opt name es with
          | Some i -> Ok i
          | None -> Error Errno.ENOENT);
    kind_of =
      (fun ino ->
        let* r = read_record t ino in
        match r.kind with Some k -> Ok k | None -> Error Errno.EIO);
    readlink_of =
      (fun ino ->
        let* r = read_record t ino in
        Ok r.target);
  }

let resolve t ?follow_last path =
  Resolver.resolve (resolver_ops t) ~root:t.root ~cwd:t.cwd ?follow_last path

let resolve_parent t path =
  Resolver.resolve_parent (resolver_ops t) ~root:t.root ~cwd:t.cwd path

(* ---- mkfs / mount ---------------------------------------------------------- *)

let mkfs_impl dev =
  let bs = dev.Dev.block_size in
  let num_blocks = dev.Dev.num_blocks in
  let wr b data =
    match dev.Dev.write b data with Ok () -> Ok () | Error _ -> Error Errno.EIO
  in
  let zero = Bytes.make bs '\000' in
  let rec zero_all b =
    if b >= num_blocks then Ok ()
    else
      let* () = wr b zero in
      zero_all (b + 1)
  in
  let* () = zero_all 0 in
  let boot = Bytes.make bs '\000' in
  let w = Codec.writer boot in
  Codec.put_u32 w boot_magic;
  Codec.put_u32 w num_blocks;
  let* () = wr boot_block boot in
  (* Root directory. *)
  let root_block = first_data in
  let idx = Bytes.make bs '\000' in
  encode_index [ (".", root_ino); ("..", root_ino) ] idx;
  let* () = wr root_block idx in
  let mft = Bytes.make bs '\000' in
  let root =
    {
      free_record with
      kind = Some Fs.Directory;
      links = 2;
      perms = 0o755;
      size = bs;
      runs = (let a = Array.make data_runs 0 in a.(0) <- root_block; a);
    }
  in
  encode_record root mft ((root_ino - 1) * record_size);
  (* Record 1 is reserved ($MFT itself, loosely). *)
  encode_record { free_record with kind = Some Fs.Regular; links = 1 } mft 0;
  let* () = wr mft_start mft in
  let mb = Bytes.make bs '\000' in
  bit_set mb 0 true;
  bit_set mb 1 true;
  let* () = wr mft_bitmap_block mb in
  let vb = Bytes.make bs '\000' in
  for b = 0 to root_block do
    bit_set vb b true
  done;
  let* () = wr volume_bitmap_block vb in
  match dev.Dev.sync () with Ok () -> Ok () | Error _ -> Error Errno.EIO

(* $LogFile redo pass. NTFS replays committed log records at mount, so a
   crash that persisted a transaction's commit record while its home
   writes were still in flight loses nothing. The scan mirrors what
   [commit] lays down — desc, copies, commit — chained by sequence
   number from the start of the logfile (checkpoints rewind the write
   position there, so the latest transaction always leads). *)
let recover_log dev klog =
  let lend = logfile_start + logfile_len in
  let txns = ref [] in
  let rec scan pos seq =
    if pos < lend then
      match dev.Dev.read pos with
      | Error _ -> ()
      | Ok buf -> (
          match decode_log_desc buf with
          | Some (s, tags) when seq < 0 || s = seq -> (
              let count = List.length tags in
              let copies = List.init count (fun i -> dev.Dev.read (pos + 1 + i)) in
              if List.exists Result.is_error copies then ()
              else
                match dev.Dev.read (pos + 1 + count) with
                | Ok cbuf when decode_log_commit cbuf = Some s ->
                    txns :=
                      List.combine tags (List.map Result.get_ok copies) :: !txns;
                    scan (pos + 2 + count) (s + 1)
                | Ok _ | Error _ -> ())
          | Some _ | None -> ())
  in
  scan logfile_start (-1);
  let txns = List.rev !txns in
  List.iter
    (fun blocks ->
      List.iter
        (fun (home, copy) ->
          if home < dev.Dev.num_blocks then
            match dev.Dev.write home copy with
            | Ok () -> ()
            | Error _ -> Klog.error klog "ntfs" "log replay write failed")
        blocks)
    txns;
  if txns <> [] then begin
    Klog.info klog "ntfs" "logfile: replayed %d transactions" (List.length txns);
    ignore (dev.Dev.sync ())
  end

let mount_impl dev =
  let klog = Klog.create ~clock:dev.Dev.now () in
  recover_log dev klog;
  (* Boot file then the first MFT block: corrupt metadata means an
     unmountable volume (§5.4). Reads get the NTFS retry treatment. *)
  let retried b =
    let rec attempt n =
      match dev.Dev.read b with
      | Ok d -> Ok d
      | Error _ ->
          if n < read_attempts then attempt (n + 1)
          else begin
            Klog.error klog "ntfs" "read of block %d failed after %d attempts" b n;
            Error Errno.EIO
          end
    in
    attempt 1
  in
  let* boot = retried boot_block in
  let* num_blocks =
    try
      let r = Codec.reader boot in
      if Codec.get_u32 r <> boot_magic then begin
        Klog.error klog "ntfs" "boot file corrupt: volume unmountable";
        Error Errno.EUCLEAN
      end
      else Ok (Codec.get_u32 r)
    with Codec.Decode_error _ -> Error Errno.EUCLEAN
  in
  let* mft0 = retried mft_start in
  let* () =
    match decode_record mft0 ((root_ino - 1) * record_size) with
    | Some _ -> Ok ()
    | None ->
        Klog.error klog "ntfs" "root MFT record corrupt: volume unmountable";
        Error Errno.EUCLEAN
  in
  let free_blocks =
    (* Recomputed lazily; a rough figure is fine for statfs. *)
    num_blocks - first_data
  in
  Ok
    {
      dev;
      bs = dev.Dev.block_size;
      klog;
      cache = Bcache.create ~capacity:512 dev;
      num_blocks;
      txn = Hashtbl.create 32;
      txn_order = [];
      lpos = logfile_start;
      lseq = 1;
      free_blocks;
      fds = Fdtable.create ();
      cwd = root_ino;
      root = root_ino;
      readonly = false;
    }

(* ---- classifier ------------------------------------------------------------- *)

let block_types =
  [ "mft"; "dir"; "bitmap"; "mft-bitmap"; "logfile"; "data"; "boot" ]

let classify raw =
  let read b = try Some (raw b) with _ -> None in
  let num_blocks =
    match read boot_block with
    | Some buf -> (
        try
          let r = Codec.reader buf in
          if Codec.get_u32 r = boot_magic then Codec.get_u32 r else 0
        with Codec.Decode_error _ -> 0)
    | None -> 0
  in
  if num_blocks = 0 then fun b -> if b = boot_block then "boot" else "?"
  else begin
    let labels = Hashtbl.create 64 in
    let mark b l =
      if b >= first_data && b < num_blocks then Hashtbl.replace labels b l
    in
    for ino = 1 to total_records do
      let blk, off = record_location ino in
      match read blk with
      | None -> ()
      | Some buf -> (
          match decode_record buf off with
          | Some r -> (
              match r.kind with
              | Some Fs.Directory -> Array.iter (fun b -> if b > 0 then mark b "dir") r.runs
              | Some Fs.Regular -> Array.iter (fun b -> if b > 0 then mark b "data") r.runs
              | Some Fs.Symlink | None -> ())
          | None -> ())
    done;
    fun b ->
      if b = boot_block then "boot"
      else if b = mft_bitmap_block then "mft-bitmap"
      else if b = volume_bitmap_block then "bitmap"
      else if b >= logfile_start && b < logfile_start + logfile_len then "logfile"
      else if b >= mft_start && b < mft_start + mft_blocks then "mft"
      else match Hashtbl.find_opt labels b with Some l -> l | None -> "?"
  end

let corrupt_field ty =
  match ty with
  | "boot" -> Some (fun buf -> Codec.write_u32 buf 0 0xBAD)
  | "mft" ->
      (* The missed check: plausible records whose cluster pointers aim
         at system blocks. *)
      Some
        (fun buf ->
          let per = Bytes.length buf / record_size in
          for i = 0 to per - 1 do
            let off = i * record_size in
            if Codec.read_u32 buf off = file_magic then
              (* the first run pointer: magic(4) kind(1) pad(1) links(2)
                 perms(2) pad(2) size(4) atime(4) mtime(4) ctime(4) = 28 *)
              Codec.write_u32 buf (off + 28) volume_bitmap_block
          done)
  | "dir" -> Some (fun buf -> Codec.write_u32 buf 0 0xBAD)
  | "bitmap" | "mft-bitmap" ->
      Some (fun buf -> Bytes.fill buf 0 (Bytes.length buf) '\xFF')
  | _ -> None

(* ---- brand -------------------------------------------------------------------- *)

let brand =
  let module M = struct
    let fs_name = "ntfs"
    let block_types = block_types
    let classifier = classify
    let corrupt_field = corrupt_field

    type t = state

    let mkfs = mkfs_impl
    let mount = mount_impl

    let unmount t =
      let* () = commit t in
      checkpoint t;
      ignore (t.dev.Dev.sync ());
      Ok ()

    let klog t = t.klog
    let is_readonly t = t.readonly

    let access t path =
      let* _ = resolve t path in
      Ok ()

    let chdir t path =
      let* ino = resolve t path in
      let* r = read_record t ino in
      if r.kind = Some Fs.Directory then begin
        t.cwd <- ino;
        Ok ()
      end
      else Error Errno.ENOTDIR

    let chroot t path =
      let* ino = resolve t path in
      let* r = read_record t ino in
      if r.kind = Some Fs.Directory then begin
        t.root <- ino;
        t.cwd <- ino;
        Ok ()
      end
      else Error Errno.ENOTDIR

    let stat_of ino (r : record) =
      {
        Fs.st_ino = ino;
        st_kind = Option.value ~default:Fs.Regular r.kind;
        st_size = r.size;
        st_links = r.links;
        st_mode = r.perms;
        st_uid = 0;
        st_gid = 0;
        st_atime = float_of_int r.atime;
        st_mtime = float_of_int r.mtime;
        st_ctime = float_of_int r.ctime;
      }

    let stat t path =
      let* ino = resolve t path in
      let* r = read_record t ino in
      Ok (stat_of ino r)

    let lstat t path =
      let* ino = resolve t ~follow_last:false path in
      let* r = read_record t ino in
      Ok (stat_of ino r)

    let statfs t =
      Ok
        {
          Fs.f_blocks = t.num_blocks - first_data;
          f_bfree = t.free_blocks;
          f_files = total_records;
          f_ffree = total_records;
          f_bsize = t.bs;
        }

    let open_ t path mode =
      let* ino = resolve t path in
      let* r = read_record t ino in
      match r.kind with
      | None -> Error Errno.EIO
      | Some Fs.Directory when mode <> Fs.Rd -> Error Errno.EISDIR
      | Some _ -> Ok (Fdtable.alloc t.fds { fd_ino = ino; fd_mode = mode })

    let close t fd = Fdtable.close t.fds fd

    let create_node t path k ~perms ~target =
      let* dino, name = resolve_parent t path in
      let* dr = read_record t dino in
      if dr.kind <> Some Fs.Directory then Error Errno.ENOTDIR
      else
        let* es = dir_entries t dr in
        if List.mem_assoc name es then Error Errno.EEXIST
        else begin
          let* ino = alloc_record t in
          let now = now_seconds t in
          let node =
            {
              free_record with
              kind = Some k;
              links = (if k = Fs.Directory then 2 else 1);
              perms;
              atime = now;
              mtime = now;
              ctime = now;
              target;
            }
          in
          let* node =
            if k <> Fs.Directory then Ok node
            else begin
              let* b = alloc_block t in
              let runs = Array.copy node.runs in
              runs.(0) <- b;
              let buf = Bytes.make t.bs '\000' in
              encode_index [ (".", ino); ("..", dino) ] buf;
              let* () = meta_write t b buf in
              Ok { node with runs; size = t.bs }
            end
          in
          let* () = write_record t ino node in
          let* () = dir_add t dino dr name ino in
          let* dr = read_record t dino in
          let links = if k = Fs.Directory then dr.links + 1 else dr.links in
          let* () = write_record t dino { dr with links; mtime = now; ctime = now } in
          Ok ino
        end

    let creat t path =
      let* ino = create_node t path Fs.Regular ~perms:0o644 ~target:"" in
      Ok (Fdtable.alloc t.fds { fd_ino = ino; fd_mode = Fs.Rdwr })

    let read t fd ~off ~len =
      let* { fd_ino; _ } = Fdtable.find t.fds fd in
      let* r = read_record t fd_ino in
      let len = max 0 (min len (r.size - off)) in
      if len = 0 then Ok Bytes.empty
      else begin
        let out = Bytes.create len in
        let rec fill pos =
          if pos >= len then Ok ()
          else begin
            let fblock = (off + pos) / t.bs in
            let boff = (off + pos) mod t.bs in
            let n = min (t.bs - boff) (len - pos) in
            let* data = data_read_block t r fblock in
            Bytes.blit data boff out pos n;
            fill (pos + n)
          end
        in
        let* () = fill 0 in
        Ok out
      end

    let write t fd ~off data =
      let* { fd_ino; fd_mode } = Fdtable.find t.fds fd in
      if fd_mode = Fs.Rd then Error Errno.EBADF
      else begin
        let* r0 = read_record t fd_ino in
        let len = Bytes.length data in
        let r = ref r0 in
        let rec put pos =
          if pos >= len then Ok ()
          else begin
            let fblock = (off + pos) / t.bs in
            let boff = (off + pos) mod t.bs in
            let n = min (t.bs - boff) (len - pos) in
            let* buf =
              if boff = 0 && n = t.bs then Ok (Bytes.sub data pos n)
              else
                let* old = data_read_block t !r fblock in
                Bytes.blit data pos old boff n;
                Ok old
            in
            let* r' = data_write_block t fd_ino !r fblock buf in
            r := r';
            put (pos + n)
          end
        in
        let* () = put 0 in
        let now = now_seconds t in
        let* () =
          write_record t fd_ino
            { !r with size = max r0.size (off + len); mtime = now; ctime = now }
        in
        Ok len
      end

    let readlink t path =
      let* ino = resolve t ~follow_last:false path in
      let* r = read_record t ino in
      if r.kind = Some Fs.Symlink then Ok r.target else Error Errno.EINVAL

    let getdirentries t path =
      let* ino = resolve t path in
      let* r = read_record t ino in
      if r.kind <> Some Fs.Directory then Error Errno.ENOTDIR
      else dir_entries t r

    let link t existing newpath =
      let* ino = resolve t existing in
      let* r = read_record t ino in
      if r.kind = Some Fs.Directory then Error Errno.EISDIR
      else
        let* dino, name = resolve_parent t newpath in
        let* dr = read_record t dino in
        let* es = dir_entries t dr in
        if List.mem_assoc name es then Error Errno.EEXIST
        else
          let* () = dir_add t dino dr name ino in
          write_record t ino { r with links = r.links + 1; ctime = now_seconds t }

    let symlink t target linkpath =
      let* _ = create_node t linkpath Fs.Symlink ~perms:0o777 ~target in
      Ok ()

    let mkdir t path =
      let* _ = create_node t path Fs.Directory ~perms:0o755 ~target:"" in
      Ok ()

    let remove_common t path ~dir =
      let* dino, name = resolve_parent t path in
      let* dr = read_record t dino in
      let* es = dir_entries t dr in
      match List.assoc_opt name es with
      | None -> Error Errno.ENOENT
      | Some ino -> (
          let* r = read_record t ino in
          match (dir, r.kind) with
          | true, k when k <> Some Fs.Directory -> Error Errno.ENOTDIR
          | false, Some Fs.Directory -> Error Errno.EISDIR
          | _ ->
              let* () =
                if not dir then Ok ()
                else
                  let* ces = dir_entries t r in
                  if List.for_all (fun (n, _) -> n = "." || n = "..") ces then Ok ()
                  else Error Errno.ENOTEMPTY
              in
              let now = now_seconds t in
              let* () = dir_remove t dino dr name in
              let links = r.links - if dir then 2 else 1 in
              if (dir && links <= 1) || ((not dir) && links <= 0) then begin
                let errors = ref 0 in
                Array.iter
                  (fun b ->
                    if b <> 0 then
                      match free_block t b with
                      | Ok () -> ()
                      | Error _ -> incr errors)
                  r.runs;
                let* () = write_record t ino free_record in
                let* () = free_record_slot t ino in
                let* d = read_record t dino in
                let* () =
                  write_record t dino
                    {
                      d with
                      links = (if dir then d.links - 1 else d.links);
                      mtime = now;
                      ctime = now;
                    }
                in
                if !errors > 0 then Error Errno.EIO else Ok ()
              end
              else
                let* () = write_record t ino { r with links; ctime = now } in
                let* d = read_record t dino in
                write_record t dino { d with mtime = now; ctime = now })

    let rmdir t path = remove_common t path ~dir:true
    let unlink t path = remove_common t path ~dir:false

    let rename t src dst =
      let* sdino, sname = resolve_parent t src in
      let* sdr = read_record t sdino in
      let* ses = dir_entries t sdr in
      match List.assoc_opt sname ses with
      | None -> Error Errno.ENOENT
      | Some ino ->
          let* ddino, dname = resolve_parent t dst in
          let* ddr = read_record t ddino in
          let* des = dir_entries t ddr in
          let* () =
            match List.assoc_opt dname des with
            | Some old when old <> ino -> (
                let* orr = read_record t old in
                match orr.kind with
                | Some Fs.Directory -> Error Errno.EISDIR
                | Some _ | None -> remove_common t dst ~dir:false)
            | Some _ | None -> Ok ()
          in
          let* sdr = read_record t sdino in
          let* () = dir_remove t sdino sdr sname in
          let* ddr = read_record t ddino in
          let* () = dir_add t ddino ddr dname ino in
          let* r = read_record t ino in
          if r.kind = Some Fs.Directory && sdino <> ddino then begin
            let* blocks = dir_blocks t r in
            let* () =
              match blocks with
              | (_, b, entries) :: _ ->
                  let entries' =
                    List.map
                      (fun (n, e) -> if n = ".." then (n, ddino) else (n, e))
                      entries
                  in
                  let buf = Bytes.make t.bs '\000' in
                  encode_index entries' buf;
                  meta_write t b buf
              | [] -> Ok ()
            in
            let* sd = read_record t sdino in
            let* () = write_record t sdino { sd with links = sd.links - 1 } in
            let* dd = read_record t ddino in
            write_record t ddino { dd with links = dd.links + 1 }
          end
          else Ok ()

    let truncate t path size =
      let* ino = resolve t path in
      let* r = read_record t ino in
      if r.kind = Some Fs.Directory then Error Errno.EISDIR
      else if size > data_runs * t.bs then Error Errno.EFBIG
      else begin
        let keep = (size + t.bs - 1) / t.bs in
        let errors = ref 0 in
        let runs = Array.copy r.runs in
        Array.iteri
          (fun i b ->
            if i >= keep && b <> 0 then begin
              (match free_block t b with Ok () -> () | Error _ -> incr errors);
              runs.(i) <- 0
            end)
          runs;
        (* Zero the tail of a partially kept cluster. *)
        (if size < r.size && size mod t.bs <> 0 then begin
           let b = runs.(size / t.bs) in
           if b <> 0 then
             match retried_read t b with
             | Ok old ->
                 Bytes.fill old (size mod t.bs) (t.bs - (size mod t.bs)) '\000';
                 ignore
                   (retried_write t b old ~attempts:data_write_attempts
                      ~what:"data")
             | Error _ -> incr errors
         end);
        let now = now_seconds t in
        let* () =
          write_record t ino { r with runs; size; mtime = now; ctime = now }
        in
        if !errors > 0 then Error Errno.EIO else Ok ()
      end

    let chmod t path perms =
      let* ino = resolve t path in
      let* r = read_record t ino in
      write_record t ino { r with perms; ctime = now_seconds t }

    let chown t path _uid _gid =
      let* ino = resolve t path in
      let* r = read_record t ino in
      write_record t ino { r with ctime = now_seconds t }

    let utimes t path atime mtime =
      let* ino = resolve t path in
      let* r = read_record t ino in
      write_record t ino
        { r with atime = int_of_float atime; mtime = int_of_float mtime }

    let fsync t fd =
      let* _ = Fdtable.find t.fds fd in
      commit t

    let sync t = commit t
  end in
  Fs.Brand (module M)
