(** Flat in-memory simulated disk with a service-time model.

    The store is a flat array of blocks; the timing model (shared with
    {!Cow} via {!Model}) captures seek, rotation and transfer — see
    {!Model} for the details. Fingerprinting campaigns now run on
    {!Cow} overlay devices; the flat store remains the straightforward
    reference implementation (the differential tests pin
    [Cow ≡ Memdisk]) and the setup/bench workhorse. *)

type params = Model.params = {
  block_size : int;  (** bytes per block (default 4096) *)
  num_blocks : int;  (** default 2048 (an 8 MiB volume) *)
  seek_min_ms : float;  (** track-to-track seek (default 0.8) *)
  seek_span_ms : float;  (** extra for a full-stroke seek (default 7.2) *)
  rotation_ms : float;  (** full revolution, 7200 RPM ~ 8.33 *)
  bandwidth_mb_s : float;  (** media transfer rate (default 40.0) *)
  seed : int;  (** PRNG seed for rotational positions *)
}

val default_params : params

type t

val create : ?params:params -> unit -> t
val dev : t -> Dev.t

(** {2 Statistics} *)

type stats = Model.stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;  (** requests that required arm movement *)
  elapsed_ms : float;  (** total simulated service time *)
}

val stats : t -> stats
val reset_stats : t -> unit

val set_time_model : t -> bool -> unit
(** Disable ([false]) or enable the service-time model. Fingerprinting
    campaigns disable it (they care about behaviour, not time); the
    benchmark harness enables it. Default: enabled. *)

(** {2 Raw access for setup, verification and snapshots}

    These bypass the timing model and statistics. *)

val peek : t -> int -> bytes
val poke : t -> int -> bytes -> unit

type snapshot = Cow.image
(** Snapshots {e are} frozen COW images: capture once here, then
    overlay any number of {!Cow} devices on the result — the
    executor's O(dirty) restore discipline. *)

val snapshot : t -> snapshot
(** O(num_blocks): the flat store is copied into a frozen image. (On a
    {!Cow} device, [snapshot] is O(dirty) — prefer it on hot paths.) *)

val restore : t -> snapshot -> unit
(** Full blit of the image into the store; also resets statistics and
    the simulated clock, giving repeated runs identical initial
    conditions.
    @raise Invalid_argument on geometry mismatch. *)
