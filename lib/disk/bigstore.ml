(* Off-heap slab of fixed-size block slots.

   Payload storage for the simulated disks: one Bigarray chunk holds
   [chunk_slots] block-sized slots, and the slab grows by whole chunks
   as [alloc] demands. Chunks never move, so a slot's address is
   stable for its lifetime; a free-list recycles released slots.

   Safety lives at this boundary: every public operation validates the
   slot handle against the allocation bitmap and the byte range
   against the slot size, then performs the copy with a raw memcpy
   stub. Nothing below this module sees an unchecked offset. *)

type ba =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* memcpy between a Bigarray chunk and an OCaml bytes value. The
   OCaml-side callers bounds-check first; the stubs trust their
   arguments. [@@noalloc] — plain byte copies, no OCaml allocation. *)
external unsafe_blit_to_bytes : ba -> int -> bytes -> int -> int -> unit
  = "iron_ba_blit_to_bytes"
[@@noalloc]

external unsafe_blit_of_bytes : bytes -> int -> ba -> int -> int -> unit
  = "iron_ba_blit_of_bytes"
[@@noalloc]

external unsafe_fill : ba -> int -> int -> char -> unit = "iron_ba_fill"
[@@noalloc]

type t = {
  slot_size : int;
  chunk_shift : int; (* slots per chunk = 1 lsl chunk_shift *)
  mutable chunks : ba array;
  mutable capacity : int; (* slots backed by storage *)
  mutable next_fresh : int; (* first never-allocated slot *)
  mutable free : int list; (* released slots *)
  mutable live : int;
  mutable alive_bits : Bytes.t; (* 1 bit per slot: currently allocated *)
}

(* Chunk capacity is rounded up to a power of two so the per-access
   slot → (chunk, offset) split is a shift and a mask. *)
let shift_for slots =
  let s = ref 0 in
  while 1 lsl !s < slots do incr s done;
  !s

let create ?(chunk_slots = 256) ~slot_size () =
  if slot_size <= 0 then invalid_arg "Bigstore.create: slot_size";
  if chunk_slots <= 0 then invalid_arg "Bigstore.create: chunk_slots";
  {
    slot_size;
    chunk_shift = shift_for chunk_slots;
    chunks = [||];
    capacity = 0;
    next_fresh = 0;
    free = [];
    live = 0;
    alive_bits = Bytes.create 0;
  }

let slot_size t = t.slot_size
let live t = t.live

let is_live t s =
  s >= 0
  && s < t.capacity
  (* in range ⇒ the bitmap index is valid, so the unsafe get is safe *)
  && Char.code (Bytes.unsafe_get t.alive_bits (s lsr 3)) land (1 lsl (s land 7))
     <> 0

let set_live t s on =
  let i = s lsr 3 in
  let bit = 1 lsl (s land 7) in
  let c = Char.code (Bytes.get t.alive_bits i) in
  Bytes.set t.alive_bits i
    (Char.chr (if on then c lor bit else c land lnot bit))

let grow t =
  let chunk =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout
      (t.slot_size lsl t.chunk_shift)
  in
  let n = Array.length t.chunks in
  let chunks = Array.make (n + 1) chunk in
  Array.blit t.chunks 0 chunks 0 n;
  t.chunks <- chunks;
  t.capacity <- t.capacity + (1 lsl t.chunk_shift);
  let bits = Bytes.make ((t.capacity + 7) / 8) '\000' in
  Bytes.blit t.alive_bits 0 bits 0 (Bytes.length t.alive_bits);
  t.alive_bits <- bits

let alloc t =
  let s =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] ->
        if t.next_fresh >= t.capacity then grow t;
        let s = t.next_fresh in
        t.next_fresh <- s + 1;
        s
  in
  set_live t s true;
  t.live <- t.live + 1;
  s

let chunk_of t s =
  ( Array.unsafe_get t.chunks (s lsr t.chunk_shift),
    (s land ((1 lsl t.chunk_shift) - 1)) * t.slot_size )

let alloc_zeroed t =
  let s = alloc t in
  let chunk, off = chunk_of t s in
  unsafe_fill chunk off t.slot_size '\000';
  s

let check t s op =
  if not (is_live t s) then
    invalid_arg (Printf.sprintf "Bigstore.%s: dead slot %d" op s)

let free t s =
  check t s "free";
  set_live t s false;
  t.live <- t.live - 1;
  t.free <- s :: t.free

let read_into t s buf =
  check t s "read_into";
  if Bytes.length buf <> t.slot_size then
    invalid_arg "Bigstore.read_into: buffer size";
  let chunk, off = chunk_of t s in
  unsafe_blit_to_bytes chunk off buf 0 t.slot_size

let copy_out t s =
  check t s "copy_out";
  let buf = Bytes.create t.slot_size in
  let chunk, off = chunk_of t s in
  unsafe_blit_to_bytes chunk off buf 0 t.slot_size;
  buf

let write t s buf =
  check t s "write";
  if Bytes.length buf <> t.slot_size then invalid_arg "Bigstore.write: buffer size";
  let chunk, off = chunk_of t s in
  unsafe_blit_of_bytes buf 0 chunk off t.slot_size

let write_sub t s buf len =
  check t s "write_sub";
  if len < 0 || len > Bytes.length buf || len > t.slot_size then
    invalid_arg "Bigstore.write_sub: range";
  let chunk, off = chunk_of t s in
  unsafe_blit_of_bytes buf 0 chunk off len
