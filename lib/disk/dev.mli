(** The block-device interface seen by file systems.

    A device is a record of operations so that layers (fault injection,
    tracing) stack by wrapping: each layer forwards to the one below.
    This mirrors the paper's storage stack (Figure 1), where the fault
    injector is a pseudo-device driver interposed directly beneath the
    file system. *)

(** I/O errors a device can return. Silent corruption is deliberately
    {e not} an error: a corrupting device returns [Ok] with bad data. *)
type error =
  | Eio  (** the request failed (latent sector error, transport fault…) *)
  | Enxio  (** block number out of range *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t = {
  block_size : int;
  num_blocks : int;
  read : int -> (bytes, error) result;
      (** [read b] returns a fresh buffer holding block [b]. *)
  read_into : int -> bytes -> (unit, error) result;
      (** [read_into b buf] fills the caller's [buf] (which must be
          exactly [block_size] bytes) with block [b] — the zero-copy
          read path. Same request as [read] in every other respect:
          layers above must fail, corrupt, count and trace it exactly
          as they would a [read] of the same block. On error the buffer
          contents are unspecified. *)
  write : int -> bytes -> (unit, error) result;
      (** [write b data] stores block [b]; [data] must be exactly
          [block_size] bytes. *)
  sync : unit -> (unit, error) result;
      (** Barrier: all previous writes are durable when this returns.
          On the simulated disk this charges the rotational wait that a
          real ordering point costs — the cost transactional checksums
          (§6.1) exist to avoid. *)
  now : unit -> float;  (** simulated time, milliseconds *)
}

val read_into_via_read :
  (int -> (bytes, error) result) -> int -> bytes -> (unit, error) result
(** Default shim for wrappers without a native zero-copy path: one
    [read] plus one blit into the caller's buffer. Use as
    [{ ... read_into = read_into_via_read my_read; ... }]. *)

val in_range : t -> int -> bool

val read_exn : t -> int -> bytes
(** Convenience for setup and test code; raises [Failure] on error. *)

val write_exn : t -> int -> bytes -> unit

val observe : Iron_obs.Obs.t -> t -> t
(** [observe obs dev] interposes the observability layer: every
    [read]/[read_into]/[write]/[sync] is counted into [obs] under
    [disk.read], [disk.write], [disk.sync] (with [.error] companions)
    and its simulated-time latency recorded into the matching [.ms]
    histogram. [read_into] counts as [disk.read] — the zero-copy path
    is metric-identical to the allocating one. Also installs [dev]'s
    clock as [obs]'s time source, so spans opened above this device
    carry simulated timestamps. Stacks like the fault injector;
    typically the outermost wrapper, directly beneath the file
    system. *)
