module Arena = Iron_util.Arena

type t = {
  device : Dev.t;
  capacity : int;
  table : (int, bytes) Hashtbl.t;
  order : int Queue.t; (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) device =
  { device; capacity; table = Hashtbl.create 64; order = Queue.create (); hits = 0; misses = 0 }

let dev t = t.device

(* Cache-owned buffers are drawn from (and returned to) the calling
   domain's block arena. This is sound because the internal buffers
   never escape: [read] hands out copies, [read_into] blits, and the
   only adopted buffers are [fill]'s fresh ones and [insert]'s private
   copies. Looked up per call rather than stored so a cache created on
   one domain but used on another (never happens today) stays safe. *)
let arena t = Arena.block t.device.Dev.block_size

let evict_if_full t =
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let victim = Queue.pop t.order in
    (match Hashtbl.find_opt t.table victim with
    | Some old -> Arena.put (arena t) old
    | None -> ());
    Hashtbl.remove t.table victim
  done

(* [insert] copies the caller's buffer; [insert_own] adopts it (the
   zero-copy fill path — the caller must not reuse the buffer). *)
let insert_own t b data =
  (match Hashtbl.find_opt t.table b with
  | Some old ->
      (* Replacing in place: recycle the displaced buffer (guarding
         against a caller re-adopting the cached buffer itself). *)
      if old != data then Arena.put (arena t) old
  | None ->
      evict_if_full t;
      Queue.push b t.order);
  Hashtbl.replace t.table b data

let insert t b data = insert_own t b (Arena.copy (arena t) data)

(* Miss path: fill a fresh cache-owned buffer via the device's
   zero-copy read and adopt it — one allocation instead of the two the
   read-then-copy discipline used to cost. *)
let fill t b =
  let buf = Arena.get (arena t) in
  match t.device.Dev.read_into b buf with
  | Ok () ->
      insert_own t b buf;
      Ok buf
  | Error _ as e ->
      Arena.put (arena t) buf;
      e

let read t b =
  match Hashtbl.find_opt t.table b with
  | Some data ->
      t.hits <- t.hits + 1;
      Ok (Bytes.copy data)
  | None -> (
      t.misses <- t.misses + 1;
      match fill t b with
      | Ok cached -> Ok (Bytes.copy cached)
      | Error _ as e -> e)

let read_into t b buf =
  match Hashtbl.find_opt t.table b with
  | Some data ->
      t.hits <- t.hits + 1;
      Bytes.blit data 0 buf 0 (min (Bytes.length data) (Bytes.length buf));
      Ok ()
  | None -> (
      t.misses <- t.misses + 1;
      match fill t b with
      | Ok cached ->
          Bytes.blit cached 0 buf 0 (min (Bytes.length cached) (Bytes.length buf));
          Ok ()
      | Error _ as e -> e)

let write t b data =
  insert t b data;
  t.device.Dev.write b data

let sync t = t.device.Dev.sync ()

let invalidate t b =
  match Hashtbl.find_opt t.table b with
  | Some old ->
      Arena.put (arena t) old;
      Hashtbl.remove t.table b
  | None -> ()

let invalidate_all t =
  let a = arena t in
  Hashtbl.iter (fun _ old -> Arena.put a old) t.table;
  Hashtbl.reset t.table;
  Queue.clear t.order

let hits t = t.hits
let misses t = t.misses
