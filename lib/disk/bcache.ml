type t = {
  device : Dev.t;
  capacity : int;
  table : (int, bytes) Hashtbl.t;
  order : int Queue.t; (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) device =
  { device; capacity; table = Hashtbl.create 64; order = Queue.create (); hits = 0; misses = 0 }

let dev t = t.device

let evict_if_full t =
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let victim = Queue.pop t.order in
    Hashtbl.remove t.table victim
  done

(* [insert] copies the caller's buffer; [insert_own] adopts it (the
   zero-copy fill path — the caller must not reuse the buffer). *)
let insert_own t b data =
  if not (Hashtbl.mem t.table b) then begin
    evict_if_full t;
    Queue.push b t.order
  end;
  Hashtbl.replace t.table b data

let insert t b data = insert_own t b (Bytes.copy data)

(* Miss path: fill a fresh cache-owned buffer via the device's
   zero-copy read and adopt it — one allocation instead of the two the
   read-then-copy discipline used to cost. *)
let fill t b =
  let buf = Bytes.create t.device.Dev.block_size in
  match t.device.Dev.read_into b buf with
  | Ok () ->
      insert_own t b buf;
      Ok buf
  | Error _ as e -> e

let read t b =
  match Hashtbl.find_opt t.table b with
  | Some data ->
      t.hits <- t.hits + 1;
      Ok (Bytes.copy data)
  | None -> (
      t.misses <- t.misses + 1;
      match fill t b with
      | Ok cached -> Ok (Bytes.copy cached)
      | Error _ as e -> e)

let read_into t b buf =
  match Hashtbl.find_opt t.table b with
  | Some data ->
      t.hits <- t.hits + 1;
      Bytes.blit data 0 buf 0 (min (Bytes.length data) (Bytes.length buf));
      Ok ()
  | None -> (
      t.misses <- t.misses + 1;
      match fill t b with
      | Ok cached ->
          Bytes.blit cached 0 buf 0 (min (Bytes.length cached) (Bytes.length buf));
          Ok ()
      | Error _ as e -> e)

let write t b data =
  insert t b data;
  t.device.Dev.write b data

let sync t = t.device.Dev.sync ()
let invalidate t b = Hashtbl.remove t.table b

let invalidate_all t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let hits t = t.hits
let misses t = t.misses
