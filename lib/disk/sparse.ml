(* Sparse chunk-indexed overlay device.

   Behaviourally a [Cow] — same service-time model, same statistics,
   same error cases (the differential tests pin [Sparse ≡ Memdisk]
   exactly as they pin [Cow ≡ Memdisk]) — but every per-block structure
   is replaced by one that costs O(touched), so a multi-GB logical
   volume is cheap as long as only a sliver of it is ever written:

   - the {e image} is an array of power-of-two {e chunks}; a chunk is
     [None] until a block inside it is first frozen, and a materialized
     chunk is a [bytes array] whose untouched slots alias the shared
     zero block. A blank 1 GiB image is a few hundred [None]s;
   - the {e overlay} is a hashtable from block number to [Bigstore]
     slot plus an insertion-ordered dirty list — no dense per-block
     array. The hashtable is only ever probed by key; every ordered
     walk runs off the dirty list, so nothing observable depends on
     hash order and the [-j] byte-identity contract holds;
   - a write of all zeroes to a block whose base is still the shared
     zero block is charged and counted like any other write but
     materializes nothing — the content is unchanged. mkfs's
     zero-the-whole-volume pass therefore touches no memory at all.

   Snapshot adopts dirty slots into privately copied chunks (O(dirty)
   byte work plus one pointer-array copy per dirty chunk); restore
   drops the overlay (O(dirty)). *)

(* The shared all-zeroes block, one per block size (same discipline as
   [Cow]; private to this module so the two stay independent). *)
let zero_blocks : (int, bytes) Hashtbl.t = Hashtbl.create 4
let zero_mutex = Mutex.create ()

let zero_block bs =
  Mutex.lock zero_mutex;
  let b =
    match Hashtbl.find_opt zero_blocks bs with
    | Some b -> b
    | None ->
        let b = Bytes.make bs '\000' in
        Hashtbl.add zero_blocks bs b;
        b
  in
  Mutex.unlock zero_mutex;
  b

type image = {
  i_block_size : int;
  i_num_blocks : int;
  i_chunk_blocks : int; (* power of two *)
  i_chunks : bytes array option array; (* [None] = untouched, all zero *)
}

let default_chunk_blocks = 512 (* 2 MiB of 4 KiB blocks *)

let check_chunk cb =
  if cb < 1 || cb land (cb - 1) <> 0 then
    invalid_arg "Sparse: chunk_blocks must be a power of two"

let nchunks ~num_blocks ~chunk_blocks =
  (num_blocks + chunk_blocks - 1) / chunk_blocks

let blank_image ?(chunk_blocks = default_chunk_blocks) ~block_size ~num_blocks
    () =
  check_chunk chunk_blocks;
  {
    i_block_size = block_size;
    i_num_blocks = num_blocks;
    i_chunk_blocks = chunk_blocks;
    i_chunks = Array.make (nchunks ~num_blocks ~chunk_blocks) None;
  }

let image_block_size img = img.i_block_size
let image_num_blocks img = img.i_num_blocks
let image_chunk_blocks img = img.i_chunk_blocks

let image_block img b =
  let c = b / img.i_chunk_blocks in
  match img.i_chunks.(c) with
  | None -> zero_block img.i_block_size
  | Some arr -> arr.(b land (img.i_chunk_blocks - 1))

let image_chunks_touched img =
  Array.fold_left
    (fun n c -> match c with None -> n | Some _ -> n + 1)
    0 img.i_chunks

let image_blocks_touched img =
  let z = zero_block img.i_block_size in
  Array.fold_left
    (fun n c ->
      match c with
      | None -> n
      | Some arr ->
          Array.fold_left (fun n b -> if b == z then n else n + 1) n arr)
    0 img.i_chunks

type t = {
  model : Model.t;
  mutable base : image;
  slab : Bigstore.t;
  overlay : (int, int) Hashtbl.t; (* block -> slot; absent = clean *)
  mutable dirty : int array; (* dirty block numbers, insertion order *)
  mutable ndirty : int;
  zero : bytes; (* the shared zero block for this block size *)
  chunk_shift : int;
}

let create ?(params = Model.default_params)
    ?(chunk_blocks = default_chunk_blocks) () =
  check_chunk chunk_blocks;
  let bs = params.Model.block_size in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  {
    model = Model.create params;
    base =
      blank_image ~chunk_blocks ~block_size:bs
        ~num_blocks:params.Model.num_blocks ();
    slab = Bigstore.create ~slot_size:bs ();
    overlay = Hashtbl.create 256;
    dirty = Array.make 64 0;
    ndirty = 0;
    zero = zero_block bs;
    chunk_shift = log2 chunk_blocks;
  }

let block_size t = t.base.i_block_size
let num_blocks t = t.base.i_num_blocks
let dirty_count t = t.ndirty
let base t = t.base
let overlay_bytes t = Bigstore.live t.slab * block_size t

let note_dirty t b =
  if t.ndirty = Array.length t.dirty then begin
    let bigger = Array.make (2 * t.ndirty) 0 in
    Array.blit t.dirty 0 bigger 0 t.ndirty;
    t.dirty <- bigger
  end;
  t.dirty.(t.ndirty) <- b;
  t.ndirty <- t.ndirty + 1

let base_block t b = image_block t.base b
let base_is_zero t b = base_block t b == t.zero

let current_into t b buf =
  match Hashtbl.find_opt t.overlay b with
  | Some s -> Bigstore.read_into t.slab s buf
  | None -> Bytes.blit (base_block t b) 0 buf 0 (block_size t)

let current_copy t b =
  match Hashtbl.find_opt t.overlay b with
  | Some s -> Bigstore.copy_out t.slab s
  | None -> Bytes.copy (base_block t b)

(* A writable overlay slot for block [b]; [~init] seeds it from the
   base block (partial writes). *)
let own_slot t b ~init =
  match Hashtbl.find_opt t.overlay b with
  | Some s -> s
  | None ->
      let s = Bigstore.alloc t.slab in
      if init then Bigstore.write t.slab s (base_block t b);
      Hashtbl.replace t.overlay b s;
      note_dirty t b;
      s

let in_range t b = b >= 0 && b < num_blocks t

let read t b =
  if not (in_range t b) then Error Dev.Enxio
  else begin
    Model.charge_read t.model b;
    Ok (current_copy t b)
  end

let read_into t b buf =
  if not (in_range t b) then Error Dev.Enxio
  else if Bytes.length buf <> block_size t then Error Dev.Eio
  else begin
    Model.charge_read t.model b;
    current_into t b buf;
    Ok ()
  end

let write t b data =
  if not (in_range t b) then Error Dev.Enxio
  else if Bytes.length data <> block_size t then Error Dev.Eio
  else begin
    Model.charge_write t.model b;
    (match Hashtbl.find_opt t.overlay b with
    | Some s -> Bigstore.write t.slab s data
    | None ->
        (* Zeroes over a still-zero block change nothing: charge and
           count the write (behavioural parity with the dense stores)
           but keep the block clean. *)
        if base_is_zero t b && Bytes.equal data t.zero then ()
        else begin
          let s = Bigstore.alloc t.slab in
          Bigstore.write t.slab s data;
          Hashtbl.replace t.overlay b s;
          note_dirty t b
        end);
    Ok ()
  end

let sync t =
  Model.charge_sync t.model;
  Ok ()

let dev t =
  {
    Dev.block_size = block_size t;
    num_blocks = num_blocks t;
    read = read t;
    read_into = read_into t;
    write = write t;
    sync = (fun () -> sync t);
    now = (fun () -> Model.now t.model);
  }

let stats t = Model.stats t.model
let reset_stats t = Model.reset_stats t.model
let set_time_model t on = Model.set_timed t.model on

(* Raw access, bypassing the timing model and statistics. *)
let peek t b = current_copy t b

let poke t b data =
  let slot = own_slot t b ~init:true in
  Bigstore.write_sub t.slab slot data
    (min (Bytes.length data) (block_size t))

let chunk_len t c =
  min t.base.i_chunk_blocks (num_blocks t - (c lsl t.chunk_shift))

(* Freeze the current state. Chunks with no dirty block are shared with
   the old base; a dirty chunk is copied once (a pointer-array copy)
   and its dirty slots frozen out of the slab. O(dirty) byte work. *)
let snapshot t =
  if t.ndirty = 0 then t.base
  else begin
    let chunks = Array.copy t.base.i_chunks in
    let fresh = Hashtbl.create 16 in
    for i = 0 to t.ndirty - 1 do
      let b = t.dirty.(i) in
      let c = b lsr t.chunk_shift in
      let arr =
        match chunks.(c) with
        | Some arr when Hashtbl.mem fresh c -> arr
        | Some arr ->
            let a = Array.copy arr in
            chunks.(c) <- Some a;
            Hashtbl.add fresh c ();
            a
        | None ->
            let a = Array.make (chunk_len t c) t.zero in
            chunks.(c) <- Some a;
            Hashtbl.add fresh c ();
            a
      in
      let s = Hashtbl.find t.overlay b in
      arr.(b land (t.base.i_chunk_blocks - 1)) <- Bigstore.copy_out t.slab s;
      Bigstore.free t.slab s
    done;
    Hashtbl.reset t.overlay;
    t.ndirty <- 0;
    let img = { t.base with i_chunks = chunks } in
    t.base <- img;
    img
  end

(* Point the device at [img]: drop the overlay (slots recycled) and
   reset the model. O(dirty). *)
let restore t img =
  if
    img.i_num_blocks <> num_blocks t
    || img.i_block_size <> block_size t
    || img.i_chunk_blocks <> t.base.i_chunk_blocks
  then invalid_arg "Sparse.restore: image geometry mismatch";
  if t.ndirty = 0 && t.base == img then Model.reset t.model
  else begin
    for i = 0 to t.ndirty - 1 do
      let b = t.dirty.(i) in
      Bigstore.free t.slab (Hashtbl.find t.overlay b)
    done;
    Hashtbl.reset t.overlay;
    t.ndirty <- 0;
    t.base <- img;
    Model.reset t.model
  end
