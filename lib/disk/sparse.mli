(** Sparse chunk-indexed overlay device for multi-GB logical volumes.

    Behaves exactly like {!Memdisk} and {!Cow} through the device
    interface — same {!Model} service-time charges, statistics and
    error cases (the differential test suite pins the equivalence) —
    but every per-block structure is O(touched) instead of
    O(num_blocks):

    - an {e image} is an array of power-of-two {e chunks}, [None] until
      a block inside the chunk is first frozen; materialized chunks
      alias the shared zero block for their untouched slots. A blank
      1 GiB image is a few hundred empty options;
    - the dirty {e overlay} is a block → {!Bigstore}-slot hashtable
      plus an insertion-ordered dirty list. Hash order is never
      observed — ordered walks run off the dirty list — so reports
      built over this device keep the [-j] byte-identity contract;
    - writing all zeroes to a still-zero block is charged and counted
      like any write but materializes nothing, so mkfs's
      zero-the-volume pass costs no memory.

    {!snapshot} stays O(dirty), {!restore} O(dirty) — the same image
    discipline as {!Cow}, at traffic-simulation scale. *)

(** {1 Images} *)

type image
(** An immutable sparse disk image; structurally shared chunk-wise. *)

val default_chunk_blocks : int
(** [512] — 2 MiB chunks at the default 4 KiB block size. *)

val blank_image :
  ?chunk_blocks:int -> block_size:int -> num_blocks:int -> unit -> image
(** The all-zeroes image, O(num_blocks / chunk_blocks) words.
    @raise Invalid_argument if [chunk_blocks] is not a power of two. *)

val image_block_size : image -> int
val image_num_blocks : image -> int
val image_chunk_blocks : image -> int

val image_block : image -> int -> bytes
(** The frozen buffer for one block — {b do not mutate}. Untouched
    blocks return the shared zero block. *)

val image_chunks_touched : image -> int
(** Materialized chunks — the image's footprint in chunk units. *)

val image_blocks_touched : image -> int
(** Blocks holding private (non-zero-aliased) buffers; the scaling
    tests pin the O(touched) claim with this. *)

(** {1 The device} *)

type t

val create : ?params:Model.params -> ?chunk_blocks:int -> unit -> t
(** A fresh device over the blank image. Defaults:
    {!Model.default_params}, {!default_chunk_blocks}. *)

val dev : t -> Dev.t
val base : t -> image

val dirty_count : t -> int
(** Blocks written since the last {!restore}/{!snapshot}. *)

val overlay_bytes : t -> int
(** Bytes held by the overlay slab — the device's O(touched) working
    set. *)

val block_size : t -> int
val num_blocks : t -> int

(** {1 Statistics and timing} (see {!Model}) *)

val stats : t -> Model.stats
val reset_stats : t -> unit
val set_time_model : t -> bool -> unit

(** {1 Raw access for setup, verification and snapshots} *)

val peek : t -> int -> bytes
val poke : t -> int -> bytes -> unit

val snapshot : t -> image
(** Freeze the current state: O(dirty) byte work, one pointer-array
    copy per chunk containing a dirty block, clean chunks shared. *)

val restore : t -> image -> unit
(** Point the device at [img], dropping the overlay (O(dirty), slots
    recycled) and resetting statistics and clock.
    @raise Invalid_argument if [img]'s geometry (block size, block
    count or chunk size) differs from the device's. *)
