(** Copy-on-write overlay device.

    Behaves exactly like a flat {!Memdisk} through the device
    interface — same {!Model} service-time charges, statistics and
    error cases (the differential test suite pins the equivalence) —
    but stores its state as an immutable, structurally shared {e base
    image} plus a dense overlay of privately owned dirty blocks.

    This is the fingerprinting executor's image discipline: thousands
    of jobs restore the same 8 MiB base image, run a workload that
    dirties a few dozen blocks, and restore again. On the flat store
    each cycle pays an O(touched) blit; here

    - {!snapshot} is a freeze: O(dirty) pointer moves, no byte copied;
    - {!restore} drops the overlay: O(dirty), buffers recycled;
    - [read_into] (via {!dev}) blits into the caller's buffer: zero
      allocations on the hot read path.

    Frozen images are never written in place, so one image may be
    shared by any number of devices across any number of domains. *)

(** {1 Images} *)

type image
(** An immutable disk image. Structurally shared: distinct images
    typically share most of their blocks. *)

val blank_image : block_size:int -> num_blocks:int -> image
(** The all-zeroes image; O(1) bytes (every slot aliases one shared
    zero block). *)

val make_image : block_size:int -> bytes array -> image
(** Adopt [blocks] as a frozen image. Ownership transfers: the caller
    must never mutate the array or its buffers again. *)

val image_block_size : image -> int
val image_num_blocks : image -> int

val image_block : image -> int -> bytes
(** The frozen buffer for one block — {b do not mutate}. For bulk
    consumers (e.g. {!Memdisk.restore}); ordinary reads go through a
    device. *)

(** {1 The device} *)

type t

val create : ?params:Model.params -> unit -> t
(** A fresh device over the blank image. Defaults:
    {!Model.default_params}. *)

val dev : t -> Dev.t

val base : t -> image
(** The image the device is currently overlaying. *)

val dirty_count : t -> int
(** Blocks written since the last {!restore}/{!snapshot}. *)

val block_size : t -> int
val num_blocks : t -> int

(** {1 Statistics and timing} (see {!Model}) *)

val stats : t -> Model.stats
val reset_stats : t -> unit

val set_time_model : t -> bool -> unit
(** Disable ([false]) or enable the service-time model. Fingerprinting
    campaigns disable it (they care about behaviour, not time).
    Default: enabled. *)

(** {1 Raw access for setup, verification and snapshots}

    These bypass the timing model and statistics. *)

val peek : t -> int -> bytes
val poke : t -> int -> bytes -> unit

val snapshot : t -> image
(** Freeze the current state. O(dirty): clean blocks share the old
    base's buffers, dirty overlay buffers are adopted into the new
    image (O(1) when nothing is dirty). The device continues over the
    new image with an empty overlay, so the snapshot is immutable. *)

val restore : t -> image -> unit
(** Point the device at [img], dropping the overlay (O(dirty), buffers
    recycled) and resetting statistics, clock, head position and the
    dirty flag — identical initial conditions for every run.
    @raise Invalid_argument if [img]'s geometry differs from the
    device's. *)
