(** A simple write-through block cache (the FS-side page cache).

    Reads are served from memory when possible; writes update the cached
    copy {e before} being issued to the device, so a failed device write
    leaves memory new and disk stale — the page-cache behaviour behind
    several of the paper's findings (e.g. ext3 silently ignoring write
    errors, §5.1).

    The cache evicts in FIFO order once [capacity] blocks are resident;
    since it is write-through, eviction never loses data. *)

type t

val create : ?capacity:int -> Dev.t -> t
(** Default capacity: 256 blocks. *)

val dev : t -> Dev.t
(** The underlying device, for uncached access. *)

val read : t -> int -> (bytes, Dev.error) result
(** Returns a copy; mutating it does not affect the cache. *)

val read_into : t -> int -> bytes -> (unit, Dev.error) result
(** Zero-copy read: fill the caller's buffer from the cache (no
    allocation on a hit) or, on a miss, from the device via its own
    zero-copy path (one cache-buffer allocation). Mutating [buf]
    afterwards does not affect the cache. *)

val write : t -> int -> bytes -> (unit, Dev.error) result
val sync : t -> (unit, Dev.error) result
val invalidate : t -> int -> unit
val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int
