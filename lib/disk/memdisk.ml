(* Flat in-memory simulated disk. Timing and statistics live in the
   shared Model engine (also used by the Cow overlay device, which must
   behave identically). Snapshots are frozen Cow images, so the two
   devices interoperate: an image captured here can seed any number of
   COW overlays, and vice versa. *)

type params = Model.params = {
  block_size : int;
  num_blocks : int;
  seek_min_ms : float;
  seek_span_ms : float;
  rotation_ms : float;
  bandwidth_mb_s : float;
  seed : int;
}

let default_params = Model.default_params

type stats = Model.stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;
  elapsed_ms : float;
}

type snapshot = Cow.image

type t = {
  params : params;
  model : Model.t;
  store : bytes array;
}

let create ?(params = default_params) () =
  {
    params;
    model = Model.create params;
    store = Array.init params.num_blocks (fun _ -> Bytes.make params.block_size '\000');
  }

let read t b =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else begin
    Model.charge_read t.model b;
    Ok (Bytes.copy t.store.(b))
  end

let read_into t b buf =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else if Bytes.length buf <> t.params.block_size then Error Dev.Eio
  else begin
    Model.charge_read t.model b;
    Bytes.blit t.store.(b) 0 buf 0 t.params.block_size;
    Ok ()
  end

let write t b data =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else if Bytes.length data <> t.params.block_size then Error Dev.Eio
  else begin
    Model.charge_write t.model b;
    Bytes.blit data 0 t.store.(b) 0 t.params.block_size;
    Ok ()
  end

let sync t =
  Model.charge_sync t.model;
  Ok ()

let dev t =
  {
    Dev.block_size = t.params.block_size;
    num_blocks = t.params.num_blocks;
    read = read t;
    read_into = read_into t;
    write = write t;
    sync = (fun () -> sync t);
    now = (fun () -> Model.now t.model);
  }

let stats t = Model.stats t.model
let reset_stats t = Model.reset_stats t.model
let set_time_model t on = Model.set_timed t.model on
let peek t b = Bytes.copy t.store.(b)

let poke t b data =
  Bytes.blit data 0 t.store.(b) 0 (min (Bytes.length data) t.params.block_size)

let snapshot t =
  Cow.make_image ~block_size:t.params.block_size (Array.map Bytes.copy t.store)

(* Full blit. The fingerprinting hot path no longer restores flat
   disks (it runs on Cow overlays, where restore is O(dirty)); what is
   left of [restore] is cold-path test/bench use, so the incremental
   touched-block bookkeeping this used to carry is gone. *)
let restore t s =
  if Cow.image_num_blocks s <> t.params.num_blocks
     || Cow.image_block_size s <> t.params.block_size
  then invalid_arg "Memdisk.restore: image geometry mismatch";
  Array.iteri
    (fun i dst -> Bytes.blit (Cow.image_block s i) 0 dst 0 (Bytes.length dst))
    t.store;
  Model.reset t.model
