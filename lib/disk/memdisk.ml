type params = {
  block_size : int;
  num_blocks : int;
  seek_min_ms : float;
  seek_span_ms : float;
  rotation_ms : float;
  bandwidth_mb_s : float;
  seed : int;
}

let default_params =
  {
    block_size = 4096;
    num_blocks = 2048;
    seek_min_ms = 0.8;
    seek_span_ms = 7.2;
    rotation_ms = 8.33;
    bandwidth_mb_s = 40.0;
    seed = 0xD15C;
  }

type stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;
  elapsed_ms : float;
}

type t = {
  params : params;
  store : bytes array;
  rng : Iron_util.Prng.t;
  mutable head : int; (* block under the head after the last request *)
  mutable clock : float;
  mutable dirty : bool; (* writes not yet followed by a sync *)
  mutable timed : bool;
  mutable reads : int;
  mutable writes : int;
  mutable syncs : int;
  mutable seeks : int;
  (* Blocks written (write/poke) since the last [restore]; lets a
     repeated restore from the same snapshot re-blit only what changed.
     The fingerprint executor restores the same 8 MB image hundreds of
     times per campaign, and full blits are memory-bandwidth-bound. *)
  touched : bool array;
  mutable last_restored : snapshot option; (* physical identity *)
}

and snapshot = { blocks : bytes array }

let create ?(params = default_params) () =
  {
    params;
    store = Array.init params.num_blocks (fun _ -> Bytes.make params.block_size '\000');
    rng = Iron_util.Prng.create params.seed;
    head = 0;
    clock = 0.0;
    dirty = false;
    timed = true;
    reads = 0;
    writes = 0;
    syncs = 0;
    seeks = 0;
    touched = Array.make params.num_blocks false;
    last_restored = None;
  }

let transfer_ms t =
  float_of_int t.params.block_size /. (t.params.bandwidth_mb_s *. 1048.576)

(* Advance the simulated clock for a request on block [b]. Sequential
   accesses stream from the media with transfer time only; a short
   forward skip just passes over the gap under the head; anything else
   costs a seek plus a rotational wait. *)
let near_skip = 16

let charge t b =
  if t.timed then begin
    let p = t.params in
    let gap = b - t.head in
    if gap = 1 || gap = 0 then t.clock <- t.clock +. transfer_ms t
    else if gap > 1 && gap <= near_skip then
      t.clock <- t.clock +. (float_of_int gap *. transfer_ms t)
    else begin
      t.seeks <- t.seeks + 1;
      let dist = abs gap in
      let frac = float_of_int dist /. float_of_int p.num_blocks in
      let seek = p.seek_min_ms +. (p.seek_span_ms *. sqrt frac) in
      let rot = Iron_util.Prng.float t.rng p.rotation_ms in
      t.clock <- t.clock +. seek +. rot +. transfer_ms t
    end
  end;
  t.head <- b

let read t b =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else begin
    t.reads <- t.reads + 1;
    charge t b;
    Ok (Bytes.copy t.store.(b))
  end

let write t b data =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else if Bytes.length data <> t.params.block_size then Error Dev.Eio
  else begin
    t.writes <- t.writes + 1;
    charge t b;
    Bytes.blit data 0 t.store.(b) 0 t.params.block_size;
    t.touched.(b) <- true;
    t.dirty <- true;
    Ok ()
  end

let sync t =
  t.syncs <- t.syncs + 1;
  if t.dirty then begin
    if t.timed then t.clock <- t.clock +. (t.params.rotation_ms /. 2.0);
    t.dirty <- false
  end;
  Ok ()

let dev t =
  {
    Dev.block_size = t.params.block_size;
    num_blocks = t.params.num_blocks;
    read = read t;
    write = write t;
    sync = (fun () -> sync t);
    now = (fun () -> t.clock);
  }

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    syncs = t.syncs;
    seeks = t.seeks;
    elapsed_ms = t.clock;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.syncs <- 0;
  t.seeks <- 0;
  t.clock <- 0.0

let set_time_model t on = t.timed <- on
let peek t b = Bytes.copy t.store.(b)

let poke t b data =
  Bytes.blit data 0 t.store.(b) 0 (min (Bytes.length data) (t.params.block_size));
  t.touched.(b) <- true

let snapshot t = { blocks = Array.map Bytes.copy t.store }

(* A restore from the snapshot we already hold only has to undo the
   blocks written since (snapshots are immutable once taken, so
   physical identity implies identical content). Anything else — a
   different snapshot, or no restore yet — is a full blit. *)
let restore t s =
  (match t.last_restored with
  | Some prev when prev == s ->
      Array.iteri
        (fun i touched ->
          if touched then
            Bytes.blit s.blocks.(i) 0 t.store.(i) 0 (Bytes.length s.blocks.(i)))
        t.touched
  | Some _ | None ->
      Array.iteri
        (fun i b -> Bytes.blit b 0 t.store.(i) 0 (Bytes.length b))
        s.blocks);
  Array.fill t.touched 0 (Array.length t.touched) false;
  t.last_restored <- Some s;
  t.head <- 0;
  t.dirty <- false;
  reset_stats t
