(* Flat in-memory simulated disk. Timing and statistics live in the
   shared Model engine (also used by the Cow overlay device, which must
   behave identically). Snapshots are frozen Cow images, so the two
   devices interoperate: an image captured here can seed any number of
   COW overlays, and vice versa. *)

type params = Model.params = {
  block_size : int;
  num_blocks : int;
  seek_min_ms : float;
  seek_span_ms : float;
  rotation_ms : float;
  bandwidth_mb_s : float;
  seed : int;
}

let default_params = Model.default_params

type stats = Model.stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;
  elapsed_ms : float;
}

type snapshot = Cow.image

(* The block payloads live off-heap in a [Bigstore] slab, one slot per
   block; block [b] is always slot [b] (slots are allocated in order at
   creation and never freed). *)
type t = {
  params : params;
  model : Model.t;
  store : Bigstore.t;
}

let create ?(params = default_params) () =
  let store =
    Bigstore.create ~chunk_slots:(max 1 params.num_blocks)
      ~slot_size:params.block_size ()
  in
  for _ = 1 to params.num_blocks do
    ignore (Bigstore.alloc_zeroed store)
  done;
  { params; model = Model.create params; store }

let read t b =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else begin
    Model.charge_read t.model b;
    Ok (Bigstore.copy_out t.store b)
  end

let read_into t b buf =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else if Bytes.length buf <> t.params.block_size then Error Dev.Eio
  else begin
    Model.charge_read t.model b;
    Bigstore.read_into t.store b buf;
    Ok ()
  end

let write t b data =
  if b < 0 || b >= t.params.num_blocks then Error Dev.Enxio
  else if Bytes.length data <> t.params.block_size then Error Dev.Eio
  else begin
    Model.charge_write t.model b;
    Bigstore.write t.store b data;
    Ok ()
  end

let sync t =
  Model.charge_sync t.model;
  Ok ()

let dev t =
  {
    Dev.block_size = t.params.block_size;
    num_blocks = t.params.num_blocks;
    read = read t;
    read_into = read_into t;
    write = write t;
    sync = (fun () -> sync t);
    now = (fun () -> Model.now t.model);
  }

let stats t = Model.stats t.model
let reset_stats t = Model.reset_stats t.model
let set_time_model t on = Model.set_timed t.model on
let peek t b = Bigstore.copy_out t.store b

let poke t b data =
  Bigstore.write_sub t.store b data
    (min (Bytes.length data) t.params.block_size)

let snapshot t =
  Cow.make_image ~block_size:t.params.block_size
    (Array.init t.params.num_blocks (Bigstore.copy_out t.store))

(* Full blit. The fingerprinting hot path no longer restores flat
   disks (it runs on Cow overlays, where restore is O(dirty)); what is
   left of [restore] is cold-path test/bench use, so the incremental
   touched-block bookkeeping this used to carry is gone. *)
let restore t s =
  if Cow.image_num_blocks s <> t.params.num_blocks
     || Cow.image_block_size s <> t.params.block_size
  then invalid_arg "Memdisk.restore: image geometry mismatch";
  for b = 0 to t.params.num_blocks - 1 do
    Bigstore.write t.store b (Cow.image_block s b)
  done;
  Model.reset t.model
