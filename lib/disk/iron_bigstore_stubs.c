/* Raw copies between a Bigarray chunk and an OCaml bytes value.
 *
 * The OCaml wrappers in bigstore.ml validate slot handles and byte
 * ranges before calling in; these stubs are straight memcpy/memset
 * over the pinned Bigarray data. All arguments are immediates or
 * naked pointers, so the stubs neither allocate nor release the
 * runtime lock ([@@noalloc] on the OCaml side).
 */

#include <string.h>

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

CAMLprim value iron_ba_blit_to_bytes(value vba, value voff, value vbuf,
                                     value vdst, value vlen)
{
  memcpy(Bytes_val(vbuf) + Long_val(vdst),
         (char *)Caml_ba_data_val(vba) + Long_val(voff), Long_val(vlen));
  return Val_unit;
}

CAMLprim value iron_ba_blit_of_bytes(value vbuf, value vsrc, value vba,
                                     value voff, value vlen)
{
  memcpy((char *)Caml_ba_data_val(vba) + Long_val(voff),
         Bytes_val(vbuf) + Long_val(vsrc), Long_val(vlen));
  return Val_unit;
}

CAMLprim value iron_ba_fill(value vba, value voff, value vlen, value vchr)
{
  memset((char *)Caml_ba_data_val(vba) + Long_val(voff), Int_val(vchr),
         Long_val(vlen));
  return Val_unit;
}
