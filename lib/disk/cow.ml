(* Copy-on-write overlay device.

   A [Cow.t] presents the same block-device behaviour as a flat
   [Memdisk] (same service-time model, same statistics, same error
   cases — the differential tests pin this), but its store is split in
   two: an immutable, structurally shared {e base image} plus a dense
   overlay of privately owned dirty blocks. The three operations the
   fingerprinting executor hammers become cheap:

   - [snapshot]: freeze — the overlay's buffers are adopted into a new
     image that shares every clean block with the old base. O(dirty)
     byte work, no block is ever copied;
   - [restore]: drop the overlay (recycling its buffers) and point at
     the given image. O(dirty);
   - [read_into]: blit straight from the overlay or the base into the
     caller's buffer. Zero allocations.

   Frozen images are never written in place — a write after [snapshot]
   allocates (or recycles) an overlay buffer — so any number of
   devices may share one image across domains. *)

type image = { i_block_size : int; i_blocks : bytes array }

(* The shared all-zeroes block. A blank image aliases it in every
   slot; that is safe because images are frozen. One buffer per block
   size is enough, and in practice there is one block size. *)
let zero_blocks : (int, bytes) Hashtbl.t = Hashtbl.create 4
let zero_mutex = Mutex.create ()

let zero_block bs =
  Mutex.lock zero_mutex;
  let b =
    match Hashtbl.find_opt zero_blocks bs with
    | Some b -> b
    | None ->
        let b = Bytes.make bs '\000' in
        Hashtbl.add zero_blocks bs b;
        b
  in
  Mutex.unlock zero_mutex;
  b

let blank_image ~block_size ~num_blocks =
  { i_block_size = block_size; i_blocks = Array.make num_blocks (zero_block block_size) }

let make_image ~block_size blocks = { i_block_size = block_size; i_blocks = blocks }
let image_block_size img = img.i_block_size
let image_num_blocks img = Array.length img.i_blocks
let image_block img b = img.i_blocks.(b)

(* Dirty blocks live off-heap in a [Bigstore] slab private to this
   device; [overlay.(b)] is the block's slot handle, or [clean] (-1).
   The slab's own free-list recycles slots dropped by [restore]. *)
let clean = -1

type t = {
  model : Model.t;
  mutable base : image;
  slab : Bigstore.t;
  overlay : int array; (* slot per block; [clean] when untouched *)
  mutable dirty : int array; (* the dirty block numbers, unordered *)
  mutable ndirty : int;
}

let create ?(params = Model.default_params) () =
  {
    model = Model.create params;
    base = blank_image ~block_size:params.Model.block_size
        ~num_blocks:params.Model.num_blocks;
    slab = Bigstore.create ~slot_size:params.Model.block_size ();
    overlay = Array.make params.Model.num_blocks clean;
    dirty = Array.make 64 0;
    ndirty = 0;
  }

let block_size t = t.base.i_block_size
let num_blocks t = Array.length t.overlay
let dirty_count t = t.ndirty
let base t = t.base

let note_dirty t b =
  if t.ndirty = Array.length t.dirty then begin
    let bigger = Array.make (2 * t.ndirty) 0 in
    Array.blit t.dirty 0 bigger 0 t.ndirty;
    t.dirty <- bigger
  end;
  t.dirty.(t.ndirty) <- b;
  t.ndirty <- t.ndirty + 1

(* Read block [b] into [buf]: the private overlay slot if there is
   one, else the (frozen) base block. *)
let current_into t b buf =
  let s = t.overlay.(b) in
  if s <> clean then Bigstore.read_into t.slab s buf
  else Bytes.blit t.base.i_blocks.(b) 0 buf 0 (block_size t)

let current_copy t b =
  let s = t.overlay.(b) in
  if s <> clean then Bigstore.copy_out t.slab s
  else Bytes.copy t.base.i_blocks.(b)

(* A writable overlay slot for block [b]. [~init] seeds a fresh slot
   from the base block — required for partial writes ([poke]), skipped
   when the caller is about to overwrite the whole slot. *)
let own_slot t b ~init =
  let s = t.overlay.(b) in
  if s <> clean then s
  else begin
    let s = Bigstore.alloc t.slab in
    if init then Bigstore.write t.slab s t.base.i_blocks.(b);
    t.overlay.(b) <- s;
    note_dirty t b;
    s
  end

let in_range t b = b >= 0 && b < num_blocks t

let read t b =
  if not (in_range t b) then Error Dev.Enxio
  else begin
    Model.charge_read t.model b;
    Ok (current_copy t b)
  end

let read_into t b buf =
  if not (in_range t b) then Error Dev.Enxio
  else if Bytes.length buf <> block_size t then Error Dev.Eio
  else begin
    Model.charge_read t.model b;
    current_into t b buf;
    Ok ()
  end

let write t b data =
  if not (in_range t b) then Error Dev.Enxio
  else if Bytes.length data <> block_size t then Error Dev.Eio
  else begin
    Model.charge_write t.model b;
    Bigstore.write t.slab (own_slot t b ~init:false) data;
    Ok ()
  end

let sync t =
  Model.charge_sync t.model;
  Ok ()

let dev t =
  {
    Dev.block_size = block_size t;
    num_blocks = num_blocks t;
    read = read t;
    read_into = read_into t;
    write = write t;
    sync = (fun () -> sync t);
    now = (fun () -> Model.now t.model);
  }

let stats t = Model.stats t.model
let reset_stats t = Model.reset_stats t.model
let set_time_model t on = Model.set_timed t.model on

(* Raw access, bypassing the timing model and statistics (setup,
   verification, classifiers). *)
let peek t b = current_copy t b

let poke t b data =
  let slot = own_slot t b ~init:true in
  Bigstore.write_sub t.slab slot data
    (min (Bytes.length data) (block_size t))

(* Freeze the current state into an image. Clean blocks share the old
   base's buffers; dirty slots are copied out to frozen heap blocks
   and released back to the slab (images are plain [bytes] so they can
   be shared across devices and domains without slab lifetimes). The
   device itself moves onto the new image with an empty overlay, which
   is what makes the snapshot immutable from here on. With no dirty
   blocks this is O(1): the base is returned as-is. *)
let snapshot t =
  if t.ndirty = 0 then t.base
  else begin
    let blocks = Array.copy t.base.i_blocks in
    for i = 0 to t.ndirty - 1 do
      let b = t.dirty.(i) in
      let s = t.overlay.(b) in
      blocks.(b) <- Bigstore.copy_out t.slab s;
      Bigstore.free t.slab s;
      t.overlay.(b) <- clean
    done;
    t.ndirty <- 0;
    let img = { i_block_size = t.base.i_block_size; i_blocks = blocks } in
    t.base <- img;
    img
  end

(* Point the device at [img]: drop the overlay (its slots return to
   the slab's free-list for the next run's writes) and reset the
   model, so every run starts from identical conditions. O(dirty). *)
let restore t img =
  if image_num_blocks img <> num_blocks t || img.i_block_size <> block_size t
  then invalid_arg "Cow.restore: image geometry mismatch";
  (* Already clean and on this image (the executor restores
     speculatively at job end): just reset the clock. *)
  if t.ndirty = 0 && t.base == img then Model.reset t.model
  else begin
  for i = 0 to t.ndirty - 1 do
    let b = t.dirty.(i) in
    Bigstore.free t.slab t.overlay.(b);
    t.overlay.(b) <- clean
  done;
  t.ndirty <- 0;
  t.base <- img;
  Model.reset t.model
  end
