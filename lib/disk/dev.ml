type error = Eio | Enxio

let error_to_string = function Eio -> "EIO" | Enxio -> "ENXIO"
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type t = {
  block_size : int;
  num_blocks : int;
  read : int -> (bytes, error) result;
  write : int -> bytes -> (unit, error) result;
  sync : unit -> (unit, error) result;
  now : unit -> float;
}

let in_range t b = b >= 0 && b < t.num_blocks

let read_exn t b =
  match t.read b with
  | Ok data -> data
  | Error e -> failwith (Printf.sprintf "read %d: %s" b (error_to_string e))

let write_exn t b data =
  match t.write b data with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "write %d: %s" b (error_to_string e))

(* Observation layer: stacks like the fault injector, forwarding every
   request below while feeding the metrics registry. Durations come
   from the wrapped device's own (simulated) clock, so the numbers are
   deterministic wherever the device is. *)
let observe obs t =
  Iron_obs.Obs.set_clock obs t.now;
  let timed path f =
    let t0 = t.now () in
    let r = f () in
    Iron_obs.Obs.incr obs path;
    Iron_obs.Obs.observe obs (path ^ ".ms") (t.now () -. t0);
    (match r with
    | Error _ -> Iron_obs.Obs.incr obs (path ^ ".error")
    | Ok _ -> ());
    r
  in
  {
    t with
    read = (fun b -> timed "disk.read" (fun () -> t.read b));
    write = (fun b data -> timed "disk.write" (fun () -> t.write b data));
    sync = (fun () -> timed "disk.sync" (fun () -> t.sync ()));
  }
