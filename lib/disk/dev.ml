type error = Eio | Enxio

let error_to_string = function Eio -> "EIO" | Enxio -> "ENXIO"
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type t = {
  block_size : int;
  num_blocks : int;
  read : int -> (bytes, error) result;
  read_into : int -> bytes -> (unit, error) result;
  write : int -> bytes -> (unit, error) result;
  sync : unit -> (unit, error) result;
  now : unit -> float;
}

(* Default shim for wrappers without a native zero-copy path: one
   [read] (which allocates) plus one blit. Semantically equivalent to a
   native [read_into]; only the allocation profile differs. *)
let read_into_via_read read b buf =
  match read b with
  | Ok data ->
      let n = min (Bytes.length data) (Bytes.length buf) in
      Bytes.blit data 0 buf 0 n;
      Ok ()
  | Error _ as e -> e

let in_range t b = b >= 0 && b < t.num_blocks

let read_exn t b =
  match t.read b with
  | Ok data -> data
  | Error e -> failwith (Printf.sprintf "read %d: %s" b (error_to_string e))

let write_exn t b data =
  match t.write b data with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "write %d: %s" b (error_to_string e))

(* Observation layer: stacks like the fault injector, forwarding every
   request below while feeding the metrics registry. Durations come
   from the wrapped device's own (simulated) clock, so the numbers are
   deterministic wherever the device is. [read_into] is the same
   request as [read] with the caller supplying the buffer, so it is
   counted under the same [disk.read] path — switching a call site to
   the zero-copy read changes nothing in the exported metrics. *)
let observe obs t =
  Iron_obs.Obs.set_clock obs t.now;
  let timed path f =
    let t0 = t.now () in
    let r = f () in
    Iron_obs.Obs.incr obs path;
    Iron_obs.Obs.observe obs (path ^ ".ms") (t.now () -. t0);
    (match r with
    | Error _ -> Iron_obs.Obs.incr obs (path ^ ".error")
    | Ok _ -> ());
    r
  in
  {
    t with
    read = (fun b -> timed "disk.read" (fun () -> t.read b));
    read_into = (fun b buf -> timed "disk.read" (fun () -> t.read_into b buf));
    write = (fun b data -> timed "disk.write" (fun () -> t.write b data));
    sync = (fun () -> timed "disk.sync" (fun () -> t.sync ()));
  }
