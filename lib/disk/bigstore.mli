(** Off-heap slab of fixed-size block slots, backed by [Bigarray].

    The simulated disks keep their block payloads here instead of in
    per-block [bytes] on the OCaml heap: a [Memdisk] owns one slot per
    block, and a [Cow] overlay draws slots for its dirty blocks. Slabs
    grow in coarse chunks, never move existing slots, and keep the
    payload bytes out of the GC's scanned heap.

    The API is bounds-checked — slot handles are validated against the
    slab's allocation map, and byte ranges against the slot size —
    while the copies underneath are raw [memcpy] stubs. Misuse (a
    stale or double-freed handle, an out-of-range blit) raises
    [Invalid_argument] rather than corrupting memory. *)

type t

val create : ?chunk_slots:int -> slot_size:int -> unit -> t
(** An empty slab of [slot_size]-byte slots. Storage is reserved in
    chunks of [chunk_slots] slots (default 256) as allocation demands;
    chunks are never released or moved. *)

val slot_size : t -> int

val alloc : t -> int
(** A fresh slot handle with unspecified contents. *)

val alloc_zeroed : t -> int
(** Like {!alloc} but the slot reads as all zero bytes. *)

val free : t -> int -> unit
(** Release a slot for reuse. The handle must be live: freeing an
    unallocated or already-freed slot raises. *)

val read_into : t -> int -> bytes -> unit
(** [read_into t s buf] copies the whole slot into [buf], which must
    be exactly [slot_size t] long. *)

val copy_out : t -> int -> bytes
(** The slot's contents as fresh [bytes]. *)

val write : t -> int -> bytes -> unit
(** [write t s buf] overwrites the whole slot from [buf], which must
    be exactly [slot_size t] long. *)

val write_sub : t -> int -> bytes -> int -> unit
(** [write_sub t s buf len] overwrites the first [len] bytes of the
    slot from [buf]; [len] must fit both [buf] and the slot. *)

val live : t -> int
(** Number of currently allocated slots. *)
