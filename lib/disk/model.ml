(* The disk service-time model and statistics engine, shared by the
   flat in-memory store (Memdisk) and the copy-on-write overlay device
   (Cow). Both devices must behave identically through this interface
   — the differential tests pin that — so the head position, the
   rotational PRNG, the dirty flag and every counter live here, in one
   place. *)

type params = {
  block_size : int;
  num_blocks : int;
  seek_min_ms : float;
  seek_span_ms : float;
  rotation_ms : float;
  bandwidth_mb_s : float;
  seed : int;
}

let default_params =
  {
    block_size = 4096;
    num_blocks = 2048;
    seek_min_ms = 0.8;
    seek_span_ms = 7.2;
    rotation_ms = 8.33;
    bandwidth_mb_s = 40.0;
    seed = 0xD15C;
  }

type stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;
  elapsed_ms : float;
}

type t = {
  params : params;
  rng : Iron_util.Prng.t;
  mutable head : int; (* block under the head after the last request *)
  mutable clock : float;
  mutable dirty : bool; (* writes not yet followed by a sync *)
  mutable timed : bool;
  mutable reads : int;
  mutable writes : int;
  mutable syncs : int;
  mutable seeks : int;
}

let create params =
  {
    params;
    rng = Iron_util.Prng.create params.seed;
    head = 0;
    clock = 0.0;
    dirty = false;
    timed = true;
    reads = 0;
    writes = 0;
    syncs = 0;
    seeks = 0;
  }

let transfer_ms t =
  float_of_int t.params.block_size /. (t.params.bandwidth_mb_s *. 1048.576)

(* Advance the simulated clock for a request on block [b]. Sequential
   accesses stream from the media with transfer time only; a short
   forward skip just passes over the gap under the head; anything else
   costs a seek plus a rotational wait. *)
let near_skip = 16

let charge t b =
  if t.timed then begin
    let p = t.params in
    let gap = b - t.head in
    if gap = 1 || gap = 0 then t.clock <- t.clock +. transfer_ms t
    else if gap > 1 && gap <= near_skip then
      t.clock <- t.clock +. (float_of_int gap *. transfer_ms t)
    else begin
      t.seeks <- t.seeks + 1;
      let dist = abs gap in
      let frac = float_of_int dist /. float_of_int p.num_blocks in
      let seek = p.seek_min_ms +. (p.seek_span_ms *. sqrt frac) in
      let rot = Iron_util.Prng.float t.rng p.rotation_ms in
      t.clock <- t.clock +. seek +. rot +. transfer_ms t
    end
  end;
  t.head <- b

let charge_read t b =
  t.reads <- t.reads + 1;
  charge t b

let charge_write t b =
  t.writes <- t.writes + 1;
  charge t b;
  t.dirty <- true

let charge_sync t =
  t.syncs <- t.syncs + 1;
  if t.dirty then begin
    if t.timed then t.clock <- t.clock +. (t.params.rotation_ms /. 2.0);
    t.dirty <- false
  end

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    syncs = t.syncs;
    seeks = t.seeks;
    elapsed_ms = t.clock;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.syncs <- 0;
  t.seeks <- 0;
  t.clock <- 0.0

(* A restore gives every run identical initial conditions: head parked,
   nothing dirty, statistics and clock zeroed. The PRNG deliberately
   keeps its state — exactly what the flat memdisk always did. *)
let reset t =
  t.head <- 0;
  t.dirty <- false;
  reset_stats t

let set_timed t on = t.timed <- on
let now t = t.clock
