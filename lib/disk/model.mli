(** The disk service-time model and statistics engine.

    Shared by {!Memdisk} (the flat in-memory store) and {!Cow} (the
    copy-on-write overlay device) so the two are {e behaviourally
    identical} through the device interface: same seek/rotation/
    transfer charges, same PRNG draw sequence, same counters. The
    differential test suite pins this equivalence.

    The three service-time components (paper Table 6 context):

    - {b seek}: moving the arm between distant blocks costs
      [seek_min + seek_span * sqrt(distance / num_blocks)] ms;
    - {b rotation}: after any seek, a uniformly random rotational wait
      in [0, full_rotation) drawn from the model's deterministic PRNG;
      strictly sequential accesses stream with no rotational wait;
    - {b transfer}: [block_size / bandwidth].

    A sync with dirty data pending charges half a rotation — the
    ordering stall transactional checksums (§6.1) exist to avoid. *)

type params = {
  block_size : int;  (** bytes per block (default 4096) *)
  num_blocks : int;  (** default 2048 (an 8 MiB volume) *)
  seek_min_ms : float;  (** track-to-track seek (default 0.8) *)
  seek_span_ms : float;  (** extra for a full-stroke seek (default 7.2) *)
  rotation_ms : float;  (** full revolution, 7200 RPM ~ 8.33 *)
  bandwidth_mb_s : float;  (** media transfer rate (default 40.0) *)
  seed : int;  (** PRNG seed for rotational positions *)
}

val default_params : params

type stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;  (** requests that required arm movement *)
  elapsed_ms : float;  (** total simulated service time *)
}

type t

val create : params -> t

val charge_read : t -> int -> unit
(** Count one read of the given block and charge its service time. *)

val charge_write : t -> int -> unit
(** Count one write, charge service time, mark the device dirty. *)

val charge_sync : t -> unit
(** Count one sync; with dirty data pending, charge half a rotation
    and clear the dirty flag. *)

val stats : t -> stats
val reset_stats : t -> unit

val reset : t -> unit
(** Restore-time reset: park the head, clear the dirty flag, zero the
    statistics and clock. The PRNG keeps its state. *)

val set_timed : t -> bool -> unit
(** Disable ([false]) or enable the service-time model. Fingerprinting
    campaigns disable it; the benchmark harness enables it. Default:
    enabled. *)

val now : t -> float
(** The simulated clock, milliseconds. *)
