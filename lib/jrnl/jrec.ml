open Iron_util

let jsuper_magic = 0x4A535550 (* "JSUP" *)
let desc_magic = 0x4A444553 (* "JDES" *)
let commit_magic = 0x4A434F4D (* "JCOM" *)
let revoke_magic = 0x4A524556 (* "JREV" *)

type jsuper = { sequence : int; start : int }

let encode_jsuper t buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w jsuper_magic;
  Codec.put_u32 w t.sequence;
  Codec.put_u32 w t.start

let decode_jsuper buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> jsuper_magic then None
    else
      let sequence = Codec.get_u32 r in
      let start = Codec.get_u32 r in
      Some { sequence; start }
  with Codec.Decode_error _ -> None

type desc = { seq : int; tags : int list }

let encode_desc t buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w desc_magic;
  Codec.put_u32 w t.seq;
  Codec.put_u32 w (List.length t.tags);
  List.iter (Codec.put_u32 w) t.tags

let decode_desc buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> desc_magic then None
    else
      let seq = Codec.get_u32 r in
      let count = Codec.get_u32 r in
      if count > (Bytes.length buf - 12) / 4 then None
      else
        let tags = List.init count (fun _ -> Codec.get_u32 r) in
        Some { seq; tags }
  with Codec.Decode_error _ -> None

let max_tags block_size = (block_size - 12) / 4

type commit = { cseq : int; checksum : string option }

let encode_commit t buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w commit_magic;
  Codec.put_u32 w t.cseq;
  match t.checksum with
  | None -> Codec.put_u8 w 0
  | Some d ->
      Codec.put_u8 w 1;
      Codec.put_string w d

let decode_commit buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> commit_magic then None
    else
      let cseq = Codec.get_u32 r in
      let has = Codec.get_u8 r in
      let checksum = if has = 1 then Some (Codec.get_string r 20) else None in
      Some { cseq; checksum }
  with Codec.Decode_error _ -> None

type revoke = { rseq : int; revoked : int list }

let encode_revoke t buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w revoke_magic;
  Codec.put_u32 w t.rseq;
  Codec.put_u32 w (List.length t.revoked);
  List.iter (Codec.put_u32 w) t.revoked

let decode_revoke buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> revoke_magic then None
    else
      let rseq = Codec.get_u32 r in
      let count = Codec.get_u32 r in
      if count > (Bytes.length buf - 12) / 4 then None
      else
        let revoked = List.init count (fun _ -> Codec.get_u32 r) in
        Some { rseq; revoked }
  with Codec.Decode_error _ -> None
