type t =
  | Superblock
  | Gdesc
  | Bitmap
  | Ibitmap
  | Inode
  | Dir
  | Data
  | Jsb
  | Jdata
  | Cksum
  | Rlog
  | Rmap
  | Replica
  | Unknown

let to_string = function
  | Superblock -> "super"
  | Gdesc -> "gdesc"
  | Bitmap -> "bitmap"
  | Ibitmap -> "ibitmap"
  | Inode -> "inode"
  | Dir -> "dir"
  | Data -> "data"
  | Jsb -> "j-sb"
  | Jdata -> "j-data"
  | Cksum -> "cksum"
  | Rlog -> "rlog"
  | Rmap -> "rmap"
  | Replica -> "replica"
  | Unknown -> "?"

let is_journal_region = function Jsb | Jdata -> true | _ -> false

let is_metadata = function
  | Superblock | Gdesc | Bitmap | Ibitmap | Inode | Dir -> true
  | Data | Jsb | Jdata | Cksum | Rlog | Rmap | Replica | Unknown -> false
