(** Typed block-layout vocabulary for the journal core.

    A file system hands the journal a total map [blkno -> Kind.t]
    describing its on-disk regions. The engines use it to enforce the
    one invariant that holds across every journaling design in the
    paper — the journal never journals its own region — and the
    refinement harness uses it to reason about which blocks a crash
    state may legally scramble. *)

type t =
  | Superblock  (** primary or copy superblock *)
  | Gdesc  (** group-descriptor / allocation-descriptor block *)
  | Bitmap  (** block allocation bitmap *)
  | Ibitmap  (** inode allocation bitmap *)
  | Inode  (** inode-table block *)
  | Dir  (** statically known directory block *)
  | Data  (** file-data region (dir/indirect blocks allocated here are
              classified by the call site, not the static map) *)
  | Jsb  (** journal superblock *)
  | Jdata  (** journal log space *)
  | Cksum  (** checksum-table region (ixt3 Mc/Dc) *)
  | Rlog  (** replica log (ixt3 Mr) *)
  | Rmap  (** dynamic-replica map (ixt3 Mr) *)
  | Replica  (** fixed replica region (ixt3 Mr) *)
  | Unknown

val to_string : t -> string
val is_journal_region : t -> bool
val is_metadata : t -> bool
