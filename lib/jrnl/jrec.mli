(** Journal-record codecs (a scaled-down JBD).

    The journal occupies a fixed region: one journal superblock followed
    by log space. A transaction is [descriptor; journaled copies...;
    optional revoke; commit]. Every control block carries a magic and a
    sequence number, which is exactly the sanity checking real ext3
    performs on its journal (§5.1); journaled data blocks carry nothing,
    so their corruption is silent unless transactional checksums (§6.1)
    are enabled, in which case the commit block stores a SHA-1 over the
    transaction's copies. *)

val jsuper_magic : int
val desc_magic : int
val commit_magic : int
val revoke_magic : int

type jsuper = {
  sequence : int;  (** sequence number of the oldest logged transaction *)
  start : int;  (** journal-region block where that transaction begins *)
}

val encode_jsuper : jsuper -> bytes -> unit
val decode_jsuper : bytes -> jsuper option

type desc = { seq : int; tags : int list  (** home block numbers *) }

val encode_desc : desc -> bytes -> unit
val decode_desc : bytes -> desc option

val max_tags : int -> int
(** [max_tags block_size] is the number of home-block tags one
    descriptor block can carry. *)

type commit = { cseq : int; checksum : string option  (** raw SHA-1 *) }

val encode_commit : commit -> bytes -> unit
val decode_commit : bytes -> commit option

type revoke = { rseq : int; revoked : int list }

val encode_revoke : revoke -> bytes -> unit
val decode_revoke : bytes -> revoke option
