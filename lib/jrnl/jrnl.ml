module Dev = Iron_disk.Dev
module Bcache = Iron_disk.Bcache
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Obs = Iron_obs.Obs
module Prov = Iron_obs.Prov
open Iron_util

let ( let* ) = Result.bind

(* The paper's three ext3 journaling modes (§2.1) plus the ixt3
   transactional-checksum variant (§6.1), which is ordered mode with the
   commit block carrying a SHA-1 over the payload so the pre-commit
   barrier can be elided. *)
type mode = Writeback | Ordered | Data_journal | Tc_checksummed

let mode_label = function
  | Writeback -> "writeback"
  | Ordered -> "ordered"
  | Data_journal -> "data-journal"
  | Tc_checksummed -> "ordered+tc"

(* IRON detection/reaction levels that change how the journal itself
   responds to device errors. Stock ext3 has both off: it drops the
   error code (DZero) and presses on. *)
type iron = {
  abort_on_journal_write_failure : bool;
      (** a failed journal-data write stops the commit block (ixt3);
          [false] reproduces the paper's replay-corruption bug *)
  check_write_errors : bool;
      (** checkpoint / journal-superblock write errors abort the
          journal instead of vanishing *)
}

let stock_iron = { abort_on_journal_write_failure = false; check_write_errors = false }

(* Raw-speed tunables (ROADMAP item 5): how eagerly transactions close
   and how lazily committed blocks are written home. The defaults
   reproduce the historical I/O stream byte for byte — group commit
   merely names what the barrier already did (coalesce every stage
   since the last fsync into one burst), and a zero watermark keeps
   checkpoints at their barrier/log-full sites. Turning [group_commit]
   off makes the engine close a window eagerly every [window_blocks]
   staged blocks (more, smaller bursts — the paper's Table 6
   commit-frequency axis), and a positive [checkpoint_watermark] writes
   the pending batch home as soon as it reaches that many blocks
   instead of holding it for the next barrier. *)
type tuning = {
  group_commit : bool;
      (** coalesce all transactions staged between durability barriers
          into one journal write burst (one desc/commit pair) *)
  window_blocks : int;
      (** with [group_commit = false]: close and flush the open window
          once this many blocks are staged ([<= 0] never closes early) *)
  checkpoint_watermark : int;
      (** [> 0]: checkpoint as soon as this many committed blocks are
          pending, without waiting for sync/unmount/log-full; [0] defers
          write-back to the barriers (the historical stream) *)
}

let default_tuning =
  { group_commit = true; window_blocks = 32; checkpoint_watermark = 0 }

module type POLICY = sig
  val tag : string
  (** klog subsystem tag; fingerprint classification greps these
      messages, so the tag is part of the observable failure policy *)

  val mode : mode
  val iron : iron
end

type geometry = {
  jsb : int;  (** journal superblock *)
  jfirst : int;  (** first log block *)
  jend : int;  (** one past the last log block *)
  num_blocks : int;  (** device size; replay refuses homes beyond it *)
}

(* Hooks connect the engine back to file-system state that cannot exist
   before the engine does (mount builds the engine first, then the FS
   state closing over it). All are optional behaviors layered on the
   core protocol: replica streaming, journal-superblock shadows, abort
   plumbing. *)
type hooks = {
  mutable on_abort : string -> unit;
  mutable aborted : unit -> bool;
  mutable jsb_shadow : (bytes -> unit) option;
      (** called with the encoded journal superblock before the primary
          write (ixt3 Mr keeps a replica of it) *)
  mutable post_commit : ((int * bytes) list -> unit) option;
      (** called after the commit barrier with the full transaction
          (home, image) list (ixt3 Mr streams replica copies to the
          replica log here) *)
}

type config = {
  tag : string;
  mode : mode;
  iron : iron;
  tuning : tuning;
  dev : Dev.t;
  cache : Bcache.t;
  klog : Klog.t;
  kinds : int -> Kind.t;
  geo : geometry;
  journaled : int -> bool;
      (** which staged blocks ride the log; the rest reach their homes
          by other means (ext3's replica copies stream separately) *)
}

type t = {
  cfg : config;
  hooks : hooks;
  txn : (int, bytes) Hashtbl.t;
  mutable txn_order : int list; (* newest first *)
  mutable txn_revoked : int list;
  pending : (int, bytes) Hashtbl.t;
  mutable pending_order : int list; (* newest first *)
  mutable jhead : int;
  mutable jseq : int;
}

let create cfg ~seq =
  {
    cfg;
    hooks =
      {
        on_abort = (fun _ -> ());
        aborted = (fun () -> false);
        jsb_shadow = None;
        post_commit = None;
      };
    txn = Hashtbl.create 32;
    txn_order = [];
    txn_revoked = [];
    pending = Hashtbl.create 32;
    pending_order = [];
    jhead = cfg.geo.jfirst;
    jseq = seq;
  }

let connect t ~on_abort ~aborted ?jsb_shadow ?post_commit () =
  t.hooks.on_abort <- on_abort;
  t.hooks.aborted <- aborted;
  t.hooks.jsb_shadow <- jsb_shadow;
  t.hooks.post_commit <- post_commit

let abort t why = t.hooks.on_abort why
let aborted t = t.hooks.aborted ()
let kind t b = t.cfg.kinds b

(* Transaction images and commit scratch blocks cycle through the
   calling domain's block arena: staged images are released when the
   checkpoint empties the pending table, scratch (desc/revoke/commit/
   jsuper) blocks right after the device write copies them out. Sound
   because [find]'s callers copy what they keep and the hooks
   ([post_commit], [jsb_shadow]) write through the device, which also
   copies. *)
let arena t = Arena.block t.cfg.dev.Dev.block_size
let zero_block t = Arena.get_zeroed (arena t)
let release t buf = Arena.put (arena t) buf

(* ------------------------------------------------------------------ *)
(* Transaction overlay                                                 *)
(* ------------------------------------------------------------------ *)

let find t b =
  match Hashtbl.find_opt t.txn b with
  | Some d -> Some d
  | None -> Hashtbl.find_opt t.pending b

(* Stage one block into the open transaction; the group-commit window
   bookkeeping wraps this below (the eager flush needs [commit]). An
   overwrite of an already-staged block is a coalesced journal write —
   the group-commit win the counter makes visible. *)
let stage_block t b data =
  (* The one invariant the typed layout enforces unconditionally: the
     journal never journals its own region. *)
  if Kind.is_journal_region (t.cfg.kinds b) then
    Klog.error t.cfg.klog t.cfg.tag "refusing to journal journal block %d" b
  else begin
    (match Hashtbl.find_opt t.txn b with
    | Some old ->
        Obs.incr_a "jrnl.group_commit.coalesced";
        release t old
    | None -> t.txn_order <- b :: t.txn_order);
    Hashtbl.replace t.txn b (Arena.copy (arena t) data)
  end

let revoke t b =
  if not (List.mem b t.txn_revoked) then t.txn_revoked <- b :: t.txn_revoked

(* Data writes route by commit policy. Ordered (and its Tc variant)
   issues them straight to disk before the metadata commits — the error
   is surfaced so the caller can apply its failure policy (remap,
   abort, or drop it on the floor like stock ext3). Writeback defers
   the write to the next checkpoint: fsync makes the metadata durable
   but not the data, the paper's data-loss window. Data-journal stages
   the block into the transaction like metadata, so the data write can
   no longer fail here at all. Returns [false] only on a device write
   failure in the ordered modes. *)
let write_data_raw t b data =
  match t.cfg.mode with
  | Ordered | Tc_checksummed -> (
      Prov.with_txn ~txn:t.jseq ~policy:(mode_label t.cfg.mode) @@ fun () ->
      Prov.with_role "data" @@ fun () ->
      match Bcache.write t.cfg.cache b data with Ok () -> true | Error _ -> false)
  | Writeback ->
      (match Hashtbl.find_opt t.pending b with
      | Some old -> release t old
      | None -> t.pending_order <- b :: t.pending_order);
      Hashtbl.replace t.pending b (Arena.copy (arena t) data);
      true
  | Data_journal ->
      stage_block t b data;
      true

(* ------------------------------------------------------------------ *)
(* Commit, checkpoint                                                  *)
(* ------------------------------------------------------------------ *)

(* Write one block into the journal region. Stock ext3 drops the error
   and keeps committing — the bug the paper documents (§5.1); ixt3
   aborts the journal. Returns false only when aborted. *)
let journal_write t jb data =
  match t.cfg.dev.Dev.write jb data with
  | Ok () -> true
  | Error _ ->
      (* Stock ext3 does not even record the error code (DZero) and
         presses on with the commit block — the replay-corruption bug.
         ixt3 logs and aborts. *)
      if t.cfg.iron.abort_on_journal_write_failure then begin
        Klog.error t.cfg.klog t.cfg.tag "journal write to block %d failed" jb;
        abort t "journal write failure";
        false
      end
      else true

let write_jsuper t =
  Prov.with_role "jsb" @@ fun () ->
  let buf = zero_block t in
  Jrec.encode_jsuper { Jrec.sequence = t.jseq; start = t.jhead } buf;
  (match t.hooks.jsb_shadow with Some f -> f buf | None -> ());
  let r = t.cfg.dev.Dev.write t.cfg.geo.jsb buf in
  release t buf;
  match r with
  | Ok () -> true
  | Error _ ->
      if t.cfg.iron.check_write_errors then begin
        Klog.error t.cfg.klog t.cfg.tag "journal superblock write failed";
        abort t "journal superblock write failure";
        false
      end
      else true

(* Checkpoint: push committed blocks to their home locations and reset
   the log. Stock ext3 ignores checkpoint write failures entirely —
   DZero on writes. *)
let checkpoint t =
  Obs.span_a ~subsystem:"jrnl" "checkpoint" @@ fun () ->
  Prov.with_txn ~txn:t.jseq ~policy:(mode_label t.cfg.mode) @@ fun () ->
  Prov.with_role "checkpoint" @@ fun () ->
  (* Elevator order: writeback sweeps the disk in one direction, as the
     kernel's flusher would, instead of seeking in insertion order. *)
  let blocks = List.sort compare (List.rev t.pending_order) in
  List.iter
    (fun b ->
      match Hashtbl.find_opt t.pending b with
      | None -> ()
      | Some data -> (
          match Bcache.write t.cfg.cache b data with
          | Ok () -> ()
          | Error _ ->
              if t.cfg.iron.check_write_errors then begin
                Klog.error t.cfg.klog t.cfg.tag "checkpoint write to block %d failed" b;
                abort t "checkpoint write failure"
              end))
    blocks;
  Hashtbl.iter (fun _ old -> release t old) t.pending;
  Hashtbl.reset t.pending;
  t.pending_order <- [];
  (* The home-location writes must be durable before the log tail
     advances: a crash persisting the cleaned superblock while a
     checkpoint write was still in flight would have no replay path
     (jbd waits on checkpoint I/O before cleanup_journal_tail). *)
  ignore (t.cfg.dev.Dev.sync ());
  t.jhead <- t.cfg.geo.jfirst;
  ignore (write_jsuper t);
  ignore (t.cfg.dev.Dev.sync ())

let commit t =
  if Hashtbl.length t.txn = 0 && t.txn_revoked = [] then Ok ()
  else if aborted t then Error Errno.EROFS
  else
    Obs.span_a ~subsystem:"jrnl" "commit" @@ fun () ->
    Prov.with_txn ~txn:t.jseq ~policy:(mode_label t.cfg.mode) @@ fun () ->
    begin
    let tc = t.cfg.mode = Tc_checksummed in
    (* Blocks the policy excludes from the log (ext3's replica copies
       stream to the separate replica log via [post_commit], §6.1) still
       reach their fixed homes at checkpoint. *)
    let all_blocks = List.rev t.txn_order in
    let blocks = List.filter t.cfg.journaled all_blocks in
    let needed = 2 + List.length blocks + (if t.txn_revoked = [] then 0 else 1) in
    if t.jhead + needed > t.cfg.geo.jend then checkpoint t;
    if aborted t then Error Errno.EROFS
    else if t.jhead + needed > t.cfg.geo.jend then begin
      (* A single transaction larger than the log: flush directly. This
         sacrifices atomicity for this oversized transaction, which the
         real system avoids by bounding transaction size; our workloads
         never hit it, but fault injection might. *)
      Klog.warn t.cfg.klog t.cfg.tag "transaction larger than journal; direct flush";
      Prov.with_role "direct" (fun () ->
          List.iter
            (fun b ->
              match Hashtbl.find_opt t.txn b with
              | Some data -> ignore (Bcache.write t.cfg.cache b data)
              | None -> ())
            blocks);
      Hashtbl.iter (fun _ old -> release t old) t.txn;
      Hashtbl.reset t.txn;
      t.txn_order <- [];
      t.txn_revoked <- [];
      Ok ()
    end
    else begin
      let seq = t.jseq in
      let buf = zero_block t in
      Jrec.encode_desc { Jrec.seq; tags = blocks } buf;
      let ok = ref (Prov.with_role "desc" (fun () -> journal_write t t.jhead buf)) in
      release t buf;
      let pos = ref (t.jhead + 1) in
      let cksum_ctx = Sha1.init () in
      List.iter
        (fun b ->
          match Hashtbl.find_opt t.txn b with
          | None -> ()
          | Some data ->
              if !ok then
                ok := Prov.with_role "payload" (fun () -> journal_write t !pos data);
              if tc then Sha1.feed cksum_ctx data;
              incr pos)
        blocks;
      if t.txn_revoked <> [] then begin
        let rbuf = zero_block t in
        Jrec.encode_revoke { Jrec.rseq = seq; revoked = t.txn_revoked } rbuf;
        if !ok then
          ok := Prov.with_role "revoke" (fun () -> journal_write t !pos rbuf);
        release t rbuf;
        incr pos
      end;
      (* The ordering point: without transactional checksums the commit
         block may only be issued once the journal payload is durable,
         which costs a rotation (§6.1). With Tc the commit streams out
         with the payload. *)
      if not tc then ignore (t.cfg.dev.Dev.sync ());
      let cbuf = zero_block t in
      let checksum =
        if tc then Some (Sha1.to_raw (Sha1.finalize cksum_ctx)) else None
      in
      Jrec.encode_commit { Jrec.cseq = seq; checksum } cbuf;
      if !ok then
        ok := Prov.with_role "commit" (fun () -> journal_write t !pos cbuf);
      release t cbuf;
      incr pos;
      ignore (t.cfg.dev.Dev.sync ());
      (* Issued after the commit (the journal is authoritative), so the
         hook costs one region visit per transaction. *)
      (match t.hooks.post_commit with
      | None -> ()
      | Some f ->
          f
            (List.filter_map
               (fun b ->
                 match Hashtbl.find_opt t.txn b with
                 | Some data -> Some (b, data)
                 | None -> None)
               all_blocks));
      if aborted t then Error Errno.EROFS
      else begin
        t.jhead <- !pos;
        t.jseq <- seq + 1;
        (* Migrate the transaction to the checkpoint list. *)
        List.iter
          (fun b ->
            match Hashtbl.find_opt t.txn b with
            | None -> ()
            | Some data ->
                (match Hashtbl.find_opt t.pending b with
                | Some old -> release t old
                | None -> t.pending_order <- b :: t.pending_order);
                Hashtbl.replace t.pending b data)
          all_blocks;
        Hashtbl.reset t.txn;
        t.txn_order <- [];
        t.txn_revoked <- [];
        (* Batched checkpointing: committed blocks stay pending until a
           barrier (sync/unmount/log-full) — or, past the watermark,
           until right now. *)
        let np = Hashtbl.length t.pending in
        if np > 0 then begin
          let wm = t.cfg.tuning.checkpoint_watermark in
          if wm > 0 && np >= wm then begin
            Obs.incr_a "jrnl.checkpoint.batched";
            checkpoint t
          end
          else Obs.incr_a "jrnl.checkpoint.batched.deferred"
        end;
        if aborted t then Error Errno.EROFS else Ok ()
      end
    end
  end

(* Group-commit window bookkeeping around the staging entry points.
   With [group_commit] on (the default), staged blocks simply
   accumulate until the next durability barrier — the barrier commit IS
   the coalesced burst. With it off, the window soft-closes as soon as
   [window_blocks] blocks are staged and the engine flushes eagerly. *)
let maybe_flush_window t =
  if
    (not t.cfg.tuning.group_commit)
    && t.cfg.tuning.window_blocks > 0
    && Hashtbl.length t.txn >= t.cfg.tuning.window_blocks
    && not (aborted t)
  then begin
    Obs.incr_a "jrnl.group_commit.window_flush";
    ignore (commit t)
  end

let stage t b data =
  stage_block t b data;
  maybe_flush_window t

let write_data t b data =
  let ok = write_data_raw t b data in
  maybe_flush_window t;
  ok

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let recover ~tag ~iron ~geo ~dev ~klog ?jsb_fallback ?refresh_replica () =
  Obs.span_a ~subsystem:"jrnl" "recover" @@ fun () ->
  let bs = dev.Dev.block_size in
  (* Scratch block for every decode-then-discard read in the scan
     (superblock, descriptors, revoke probes, commits): the decoders
     copy what they keep, so one buffer serves the whole recovery
     instead of one allocation per journal block. Data blocks that are
     replayed home are still read into their own buffers. *)
  let scratch = Bytes.create bs in
  let from_replica why e =
    match jsb_fallback with
    | None -> Error e
    | Some f -> ( match f ~scratch ~why with Some js -> Ok js | None -> Error e)
  in
  let* jsb =
    match dev.Dev.read_into geo.jsb scratch with
    | Error _ -> (
        match from_replica "unreadable" Errno.EIO with
        | Ok js -> Ok js
        | Error e ->
            Klog.error klog tag "journal superblock unreadable";
            Error e)
    | Ok () -> (
        match Jrec.decode_jsuper scratch with
        | Some js -> Ok js
        | None -> (
            match from_replica "corrupt" Errno.EUCLEAN with
            | Ok js -> Ok js
            | Error e ->
                Klog.error klog tag "journal superblock has bad magic";
                Error e))
  in
  (* Scan committed transactions. *)
  let txns = ref [] in
  let revokes = Hashtbl.create 8 in
  let rec scan pos seq =
    if pos >= geo.jend then ()
    else
      match dev.Dev.read_into pos scratch with
      | Error _ ->
          Klog.error klog tag "journal read failed at block %d during recovery" pos
      | Ok () -> (
          match Jrec.decode_desc scratch with
          | None -> () (* end of log *)
          | Some d when d.Jrec.seq <> seq -> ()
          | Some d -> (
              let count = List.length d.Jrec.tags in
              let copies = ref [] in
              let ok = ref true in
              for i = 1 to count do
                match dev.Dev.read (pos + i) with
                | Ok c -> copies := c :: !copies
                | Error _ ->
                    ok := false;
                    Klog.error klog tag "journal data read failed during recovery"
              done;
              if not !ok then ()
              else
                let copies = List.rev !copies in
                let after = pos + 1 + count in
                (* Optional revoke block, then the commit. *)
                let rev, cpos =
                  match dev.Dev.read_into after scratch with
                  | Ok () -> (
                      match Jrec.decode_revoke scratch with
                      | Some r when r.Jrec.rseq = seq -> (Some r, after + 1)
                      | Some _ | None -> (None, after))
                  | Error _ -> (None, after)
                in
                match dev.Dev.read_into cpos scratch with
                | Error _ ->
                    Klog.error klog tag "journal commit read failed during recovery"
                | Ok () -> (
                    match Jrec.decode_commit scratch with
                    | Some c when c.Jrec.cseq = seq ->
                        let checksum_ok =
                          match c.Jrec.checksum with
                          | None -> true
                          | Some stored ->
                              let ctx = Sha1.init () in
                              List.iter (fun d -> Sha1.feed ctx d) copies;
                              String.equal stored (Sha1.to_raw (Sha1.finalize ctx))
                        in
                        if checksum_ok then begin
                          (match rev with
                          | Some r ->
                              List.iter
                                (fun b -> Hashtbl.replace revokes b seq)
                                r.Jrec.revoked
                          | None -> ());
                          txns := (seq, List.combine d.Jrec.tags copies) :: !txns;
                          scan (cpos + 1) (seq + 1)
                        end
                        else
                          Klog.error klog "ixt3"
                            "transactional checksum mismatch at seq %d; not replaying"
                            seq
                    | Some _ | None -> () (* crashed before commit *))))
  in
  scan jsb.Jrec.start jsb.Jrec.sequence;
  let txns = List.rev !txns in
  let replay_errors = ref 0 in
  List.iter
    (fun (seq, blocks) ->
      Prov.with_txn ~txn:seq ~policy:"" @@ fun () ->
      Prov.with_role "replay" @@ fun () ->
      List.iter
        (fun (home, copy) ->
          let revoked =
            match Hashtbl.find_opt revokes home with
            | Some rseq -> rseq >= seq
            | None -> false
          in
          if (not revoked) && home < geo.num_blocks then
            match dev.Dev.write home copy with
            | Ok () -> ()
            | Error _ -> incr replay_errors)
        blocks)
    txns;
  (* The replica log is not replayed; refresh the fixed-location
     replicas of whatever the journal just rewrote so the copies do not
     diverge from their primaries. *)
  (match refresh_replica with
  | None -> ()
  | Some refresh ->
      List.iter
        (fun (_, blocks) ->
          List.iter (fun (home, copy) -> refresh home copy) blocks)
        txns);
  if !replay_errors > 0 then
    Klog.error klog tag "%d write failures during journal replay" !replay_errors;
  if !replay_errors > 0 && iron.check_write_errors then Error Errno.EIO
  else begin
    if txns <> [] then
      Klog.info klog tag "journal: replayed %d transactions" (List.length txns);
    (* Reset the log. *)
    let last_seq =
      match List.rev txns with (s, _) :: _ -> s + 1 | [] -> jsb.Jrec.sequence
    in
    (* Replayed home writes must be durable before the log declares
       itself clean — the same ordering rule as [checkpoint]. *)
    ignore (dev.Dev.sync ());
    let buf = Bytes.make bs '\000' in
    Jrec.encode_jsuper { Jrec.sequence = last_seq; start = geo.jfirst } buf;
    (match Prov.with_role "jsb" (fun () -> dev.Dev.write geo.jsb buf) with
    | Ok () -> ()
    | Error _ -> Klog.error klog tag "journal superblock update failed");
    ignore (dev.Dev.sync ());
    Ok last_seq
  end

(* ------------------------------------------------------------------ *)
(* Functor packaging                                                   *)
(* ------------------------------------------------------------------ *)

(* The functor is a thin specialization over the shared engine type:
   [type nonrec t = t] keeps the engine storable inside the file
   system's own state record (a generative [t] per application could
   not escape the mount function), while the policy module pins the
   tag, commit mode and IRON reactions at brand-construction time. *)
module Make (P : POLICY) = struct
  type nonrec t = t

  let create ?(tuning = default_tuning) ~dev ~cache ~klog ~kinds ~geo ~journaled
      ~seq () =
    create
      {
        tag = P.tag;
        mode = P.mode;
        iron = P.iron;
        tuning;
        dev;
        cache;
        klog;
        kinds;
        geo;
        journaled;
      }
      ~seq

  let recover ~geo ~dev ~klog ?jsb_fallback ?refresh_replica () =
    recover ~tag:P.tag ~iron:P.iron ~geo ~dev ~klog ?jsb_fallback ?refresh_replica ()

  let connect = connect
  let find = find
  let stage = stage
  let revoke = revoke
  let write_data = write_data
  let commit = commit
  let checkpoint = checkpoint
  let kind = kind
  let mode = P.mode
end

(* ------------------------------------------------------------------ *)
(* Record-structured engine (jfs)                                      *)
(* ------------------------------------------------------------------ *)

(* jfs journals sub-block byte ranges instead of whole block images:
   diff-based record emission against an in-memory overlay, with a
   monotonically increasing transaction id in the journal superblock
   fencing off records that already checkpointed home. *)
module Record = struct
  type record = { r_tx : int; r_commit : bool; r_block : int; r_off : int; r_data : string }

  let record_size r = 4 + 1 + 4 + 2 + 2 + String.length r.r_data

  let jsuper_magic = 0x4A4C4F47
  let jdata_magic = 0x4A4C4442

  let encode_records bs records =
    (* Pack into j-data payload blocks: each block is {magic, count,
       records...}. Returns the block images in order. *)
    let blocks = ref [] in
    let buf = ref (Bytes.make bs '\000') in
    let w = ref (Codec.writer !buf) in
    let count = ref 0 in
    let start_block () =
      buf := Bytes.make bs '\000';
      w := Codec.writer !buf;
      Codec.put_u32 !w jdata_magic;
      Codec.put_u16 !w 0;
      count := 0
    in
    let flush () =
      if !count > 0 then begin
        Bytes.set_uint16_le !buf 4 !count;
        blocks := !buf :: !blocks
      end
    in
    start_block ();
    List.iter
      (fun r ->
        if Codec.writer_pos !w + record_size r > bs then begin
          flush ();
          start_block ()
        end;
        Codec.put_u32 !w r.r_tx;
        Codec.put_u8 !w (if r.r_commit then 2 else 1);
        Codec.put_u32 !w r.r_block;
        Codec.put_u16 !w r.r_off;
        Codec.put_u16 !w (String.length r.r_data);
        Codec.put_string !w r.r_data;
        incr count)
      records;
    flush ();
    List.rev !blocks

  let decode_record_block buf =
    try
      let r = Codec.reader buf in
      if Codec.get_u32 r <> jdata_magic then None
      else
        let n = Codec.get_u16 r in
        if n > 1024 then None
        else
          let rec go k acc =
            if k = 0 then Some (List.rev acc)
            else
              let r_tx = Codec.get_u32 r in
              let kind = Codec.get_u8 r in
              let r_block = Codec.get_u32 r in
              let r_off = Codec.get_u16 r in
              let len = Codec.get_u16 r in
              if len > Codec.remaining r then None
              else
                let r_data = Codec.get_string r len in
                go (k - 1) ({ r_tx; r_commit = kind = 2; r_block; r_off; r_data } :: acc)
          in
          go n []
    with Codec.Decode_error _ -> None

  let encode_jsuper txid start buf =
    Bytes.fill buf 0 (Bytes.length buf) '\000';
    let w = Codec.writer buf in
    Codec.put_u32 w jsuper_magic;
    Codec.put_u32 w txid;
    Codec.put_u32 w start

  let decode_jsuper buf =
    try
      let r = Codec.reader buf in
      if Codec.get_u32 r <> jsuper_magic then None
      else
        let txid = Codec.get_u32 r in
        let start = Codec.get_u32 r in
        Some (txid, start)
    with Codec.Decode_error _ -> None

  (* Scan committed records from the log; shared by recovery and the
     gray-box classifier. [read b] returns the block or None. Records
     from transactions older than the journal superblock's txid have
     already been checkpointed home and must not replay again. *)
  let scan_committed ~geo read ~min_tx start =
    let records = ref [] in
    let rec scan pos =
      if pos < geo.jend then
        match read pos with
        | None -> ()
        | Some buf -> (
            match decode_record_block buf with
            | None -> ()
            | Some rs ->
                records := rs :: !records;
                scan (pos + 1))
    in
    scan (max geo.jfirst start);
    let all =
      List.filter (fun r -> r.r_tx >= min_tx) (List.concat (List.rev !records))
    in
    let committed =
      List.filter_map (fun r -> if r.r_commit then Some r.r_tx else None) all
    in
    List.filter (fun r -> (not r.r_commit) && List.mem r.r_tx committed) all

  (* Diff-based record emission: this is what makes the journal
     "record-level" — only the changed byte ranges are logged. *)
  (* First index >= [i] where [old] and [fresh] disagree (or [n]).
     Equal prefixes skip eight bytes per compare — journaled pages are
     mostly unchanged, so this is the Record engine's hot loop. *)
  let first_diff old fresh i n =
    let i = ref i in
    while
      !i + 8 <= n && Bytes.get_int64_ne old !i = Bytes.get_int64_ne fresh !i
    do
      i := !i + 8
    done;
    while !i < n && Bytes.get old !i = Bytes.get fresh !i do
      incr i
    done;
    !i

  (* Byte-equal to the naive per-byte scan: a range extends while the
     next differing byte is within 32 equal bytes of the last one. *)
  let diff_ranges old fresh =
    let n = Bytes.length fresh in
    let ranges = ref [] in
    let i = ref (first_diff old fresh 0 n) in
    while !i < n do
      let start = !i in
      let last = ref !i in
      let scanning = ref true in
      while !scanning do
        let d = first_diff old fresh (!last + 1) n in
        if d < n && d - !last <= 32 then last := d
        else begin
          scanning := false;
          i := d
        end
      done;
      ranges := (start, !last - start + 1) :: !ranges
    done;
    List.rev !ranges

  type t = {
    tag : string;
    dev : Dev.t;
    bs : int;
    cache : Bcache.t;
    klog : Klog.t;
    kinds : int -> Kind.t;
    geo : geometry;
    tuning : tuning;
        (* same knobs as the block engine; [window_blocks] counts
           emitted records here, the engine's unit of journal payload *)
    (* overlay: current in-memory page state; records: since last commit *)
    overlay : (int, bytes) Hashtbl.t;
    mutable overlay_order : int list;
    mutable records : record list; (* newest first *)
    mutable nrecords : int;
    mutable txid : int;
    mutable jpos : int; (* next free j-data block *)
  }

  let create ?(tuning = default_tuning) ~tag ~dev ~cache ~klog ~kinds ~geo ~txid
      () =
    {
      tag;
      dev;
      bs = dev.Dev.block_size;
      cache;
      klog;
      kinds;
      geo;
      tuning;
      overlay = Hashtbl.create 32;
      overlay_order = [];
      records = [];
      nrecords = 0;
      txid;
      jpos = geo.jfirst;
    }

  let find t b = Hashtbl.find_opt t.overlay b

  let write_raw t b data =
    if Kind.is_journal_region (t.kinds b) then
      Klog.error t.klog t.tag "refusing to journal journal block %d" b
    else begin
      let seen = Hashtbl.mem t.overlay b in
      let old =
        match Hashtbl.find_opt t.overlay b with
        | Some d -> d
        | None -> (
            match Bcache.read t.cache b with
            | Ok d -> d
            | Error _ -> Bytes.make t.bs '\000')
      in
      (* A rewrite of an overlaid page diffs against the un-checkpointed
         state: the ranges the two writes share are journaled once —
         record-level group commit. *)
      if seen then Obs.incr_a "jrnl.group_commit.coalesced";
      let ranges = diff_ranges old data in
      List.iter
        (fun (off, len) ->
          (* Records larger than a journal block are chunked. *)
          let rec chunk off len =
            let maxlen = t.bs - 32 in
            let l = min len maxlen in
            t.records <-
              {
                r_tx = t.txid;
                r_commit = false;
                r_block = b;
                r_off = off;
                r_data = Bytes.sub_string data off l;
              }
              :: t.records;
            t.nrecords <- t.nrecords + 1;
            if len > l then chunk (off + l) (len - l)
          in
          if len > 0 then chunk off len)
        ranges;
      if not seen then t.overlay_order <- b :: t.overlay_order;
      Hashtbl.replace t.overlay b (Bytes.copy data)
    end

  let write_jsuper t =
    Prov.with_role "jsb" @@ fun () ->
    let buf = Bytes.make t.bs '\000' in
    encode_jsuper t.txid t.geo.jfirst buf;
    match t.dev.Dev.write t.geo.jsb buf with
    | Ok () -> ()
    | Error _ ->
        (* The one write error JFS does handle — by crashing (§5.3). *)
        Klog.panic t.klog t.tag "journal superblock write failed; halting"

  (* Checkpoint: apply the overlay to home locations. Write errors are
     ignored entirely (DZero). *)
  let checkpoint t =
    Obs.span_a ~subsystem:"jrnl" "checkpoint" @@ fun () ->
    Prov.with_txn ~txn:t.txid ~policy:"record" @@ fun () ->
    Prov.with_role "checkpoint" @@ fun () ->
    List.iter
      (fun b ->
        match Hashtbl.find_opt t.overlay b with
        | None -> ()
        | Some data -> (
            match Bcache.write t.cache b data with Ok () -> () | Error _ -> ()))
      (List.sort compare (List.rev t.overlay_order));
    Hashtbl.reset t.overlay;
    t.overlay_order <- [];
    (* As in the block engine: overlay write-back must be durable
       before the tail (txid fence) advances past it. *)
    ignore (t.dev.Dev.sync ());
    t.jpos <- t.geo.jfirst;
    t.txid <- t.txid + 1;
    write_jsuper t;
    ignore (t.dev.Dev.sync ())

  let commit t =
    if t.records = [] then ()
    else
      Obs.span_a ~subsystem:"jrnl" "commit" @@ fun () ->
      Prov.with_txn ~txn:t.txid ~policy:"record" @@ fun () ->
      let records =
        List.rev
          ({ r_tx = t.txid; r_commit = true; r_block = 0; r_off = 0; r_data = "" }
          :: t.records)
      in
      let blocks = encode_records t.bs records in
      if t.jpos + List.length blocks > t.geo.jend then checkpoint t;
      if t.jpos + List.length blocks > t.geo.jend then begin
        (* Oversized transaction: it has already been checkpointed home. *)
        t.records <- [];
        t.nrecords <- 0
      end
      else begin
        Prov.with_role "payload" (fun () ->
            List.iter
              (fun img ->
                (match t.dev.Dev.write t.jpos img with
                | Ok () -> ()
                | Error _ -> () (* journal-data write errors: ignored *));
                t.jpos <- t.jpos + 1)
              blocks);
        ignore (t.dev.Dev.sync ());
        t.records <- [];
        t.nrecords <- 0;
        t.txid <- t.txid + 1;
        (* Batched checkpointing, as in the block engine: overlaid pages
           wait for a barrier or the watermark. *)
        let np = Hashtbl.length t.overlay in
        if np > 0 then begin
          let wm = t.tuning.checkpoint_watermark in
          if wm > 0 && np >= wm then begin
            Obs.incr_a "jrnl.checkpoint.batched";
            checkpoint t
          end
          else Obs.incr_a "jrnl.checkpoint.batched.deferred"
        end
      end

  (* Record-engine group-commit window: soft-close once [window_blocks]
     records are emitted (the record is this engine's payload unit). *)
  let maybe_flush_window t =
    if
      (not t.tuning.group_commit)
      && t.tuning.window_blocks > 0
      && t.nrecords >= t.tuning.window_blocks
    then begin
      Obs.incr_a "jrnl.group_commit.window_flush";
      commit t
    end

  let write t b data =
    write_raw t b data;
    maybe_flush_window t

  let recover ~tag ~geo ~dev ~klog () =
    Obs.span_a ~subsystem:"jrnl" "recover" @@ fun () ->
    (* One scratch block serves the whole recovery: the journal decoders
       and [scan_committed] copy what they keep ([decode_record_block]
       extracts strings), and replayed blocks are patched in place and
       written straight back. *)
    let scratch = Bytes.create dev.Dev.block_size in
    let* txid, start =
      match dev.Dev.read_into geo.jsb scratch with
      | Error _ ->
          Klog.error klog tag "journal superblock unreadable";
          Error Errno.EIO
      | Ok () -> (
          match decode_jsuper scratch with
          | Some v -> Ok v
          | None ->
              Klog.error klog tag "journal superblock bad magic";
              Error Errno.EUCLEAN)
    in
    let read b =
      match dev.Dev.read_into b scratch with
      | Ok () -> Some scratch
      | Error _ -> None
    in
    let records = scan_committed ~geo read ~min_tx:txid start in
    let* () =
      (* Replay, with sanity checking; a failure aborts the replay and the
         mount (§5.3). *)
      List.fold_left
        (fun acc r ->
          let* () = acc in
          if r.r_block >= geo.num_blocks || r.r_off + String.length r.r_data > dev.Dev.block_size
          then begin
            Klog.error klog tag "journal record fails sanity check; aborting replay";
            Error Errno.EUCLEAN
          end
          else
            match dev.Dev.read_into r.r_block scratch with
            | Error _ ->
                Klog.error klog tag "replay read of block %d failed" r.r_block;
                Ok ()
            | Ok () ->
                Bytes.blit_string r.r_data 0 scratch r.r_off
                  (String.length r.r_data);
                Prov.with_txn ~txn:r.r_tx ~policy:"record" (fun () ->
                    Prov.with_role "replay" (fun () ->
                        match dev.Dev.write r.r_block scratch with
                        | Ok () -> ()
                        | Error _ -> ()));
                Ok ())
        (Ok ()) records
    in
    if records <> [] then
      Klog.info klog tag "journal: replayed %d records" (List.length records);
    (* Replayed writes durable before the txid fence advances. *)
    ignore (dev.Dev.sync ());
    let js = Bytes.make dev.Dev.block_size '\000' in
    encode_jsuper (txid + 1) geo.jfirst js;
    (match Prov.with_role "jsb" (fun () -> dev.Dev.write geo.jsb js) with
    | Ok () -> ()
    | Error _ -> ());
    ignore (dev.Dev.sync ());
    Ok (txid + 1)
end
