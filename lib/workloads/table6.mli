(** Table 6: time overheads of the 32 ixt3 variants, normalized to
    stock ext3, across the four application workloads. *)

type row = {
  index : int;
  label : string;  (** e.g. ["Mc Mr Dp"] *)
  ratios : (string * float) list;  (** workload name -> normalized time *)
}

type table = {
  baselines : (string * float) list;  (** workload -> ext3 ms *)
  rows : row list;
}

val compute :
  ?obs:Iron_obs.Obs.t ->
  ?num_blocks:int ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  table
(** Runs 4 workloads x (1 baseline + 32 variants). Deterministic: the
    table is byte-identical for any [jobs] (default 1); the 32 variant
    rows fan out over an {!Iron_util.Pool} of worker domains.

    [~obs] is shared by every run (the context is domain-safe). The
    metric {e sums} in its snapshot stay byte-identical for any [jobs]
    — the same total work is metered — but with [jobs > 1] spans from
    concurrent runs interleave in the shared ring, so exporters should
    rely on the snapshot, not the span order. *)

val pp : Format.formatter -> table -> unit
(** Paper-style rendering: slowdowns over 10% marked with [*],
    speedups in [brackets]. *)
