(** Table 6: time overheads of the 32 ixt3 variants, normalized to
    stock ext3, across the four application workloads. *)

type row = {
  index : int;
  label : string;  (** e.g. ["Mc Mr Dp"] *)
  ratios : (string * float) list;  (** workload name -> normalized time *)
}

type table = {
  baselines : (string * float) list;  (** workload -> ext3 ms *)
  rows : row list;
}

val compute : ?num_blocks:int -> ?seed:int -> ?jobs:int -> unit -> table
(** Runs 4 workloads x (1 baseline + 32 variants). Deterministic: the
    table is byte-identical for any [jobs] (default 1); the 32 variant
    rows fan out over an {!Iron_util.Pool} of worker domains. *)

val pp : Format.formatter -> table -> unit
(** Paper-style rendering: slowdowns over 10% marked with [*],
    speedups in [brackets]. *)
