module Memdisk = Iron_disk.Memdisk
module Fs = Iron_vfs.Fs

let ( let* ) = Result.bind

type stats = {
  elapsed_ms : float;
  reads : int;
  writes : int;
  syncs : int;
}

let run ?obs ?(num_blocks = 4096) ?(seed = 42) brand (app : Apps.t) =
  (* With a context: instrument the device and keep it ambient for the
     whole run, so journal/scrub spans from inside the file system are
     captured with real simulated timestamps (the time model is on for
     the measured phase). *)
  let instrument f =
    match obs with
    | None -> f ()
    | Some o -> Iron_obs.Obs.with_ambient o f
  in
  instrument @@ fun () ->
  let disk =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks; seed }
      ()
  in
  let dev = Memdisk.dev disk in
  let dev =
    match obs with None -> dev | Some o -> Iron_disk.Dev.observe o dev
  in
  (* Setup is untimed: Table 6 measures the workloads, not mkfs. *)
  Memdisk.set_time_model disk false;
  let* () = Fs.mkfs brand dev in
  let* (Fs.Boxed ((module F), t)) = Fs.mount brand dev in
  let rng = Iron_util.Prng.create (seed lxor 0xBE7C4) in
  let* () = app.Apps.setup (Fs.Boxed ((module F), t)) rng in
  Memdisk.reset_stats disk;
  Memdisk.set_time_model disk true;
  let* () = app.Apps.run (Fs.Boxed ((module F), t)) rng in
  let* () = F.unmount t in
  let s = Memdisk.stats disk in
  Ok
    {
      elapsed_ms = s.Memdisk.elapsed_ms +. app.Apps.cpu_ms;
      reads = s.Memdisk.reads;
      writes = s.Memdisk.writes;
      syncs = s.Memdisk.syncs;
    }
