type row = {
  index : int;
  label : string;
  ratios : (string * float) list;
}

type table = {
  baselines : (string * float) list;
  rows : row list;
}

let time ?obs ?num_blocks ?seed brand app =
  match Runner.run ?obs ?num_blocks ?seed brand app with
  | Ok r -> r.Runner.elapsed_ms
  | Error e ->
      failwith
        (Printf.sprintf "table6: %s failed: %s" app.Apps.name
           (Iron_vfs.Errno.to_string e))

let compute ?obs ?num_blocks ?seed ?(jobs = 1) () =
  let baselines =
    List.map
      (fun app ->
        (app.Apps.name, time ?obs ?num_blocks ?seed Iron_ext3.Ext3.std app))
      Apps.all
  in
  (* The 32 variants are independent experiments (each [Runner.run]
     builds its own device stack), so they fan out over the domain
     pool; results slot back in variant order, keeping the table
     byte-identical for any [jobs]. *)
  let rows =
    Iron_util.Pool.map_jobs ~jobs
      (fun (index, (profile, brand)) ->
        let ratios =
          List.map
            (fun app ->
              let base = List.assoc app.Apps.name baselines in
              (app.Apps.name, time ?obs ?num_blocks ?seed brand app /. base))
            Apps.all
        in
        (* Paper row order counts feature bits upward with Tc fastest. *)
        { index; label = Iron_ext3.Profile.variant_label profile; ratios })
      (List.mapi (fun i v -> (i, v)) Iron_ixt3.Ixt3.all_variants)
  in
  { baselines; rows }

let pp fmt t =
  Format.fprintf fmt
    "Table 6: overheads of ixt3 variants (normalized to ext3)@.";
  Format.fprintf fmt "%-4s %-15s" "#" "features";
  List.iter (fun (n, _) -> Format.fprintf fmt " %9s" n) t.baselines;
  Format.fprintf fmt "@.";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-4d %-15s" row.index row.label;
      List.iter
        (fun (_, r) ->
          let s =
            if r < 0.995 then Printf.sprintf "[%.2f]" r
            else if r > 1.10 then Printf.sprintf "%.2f*" r
            else Printf.sprintf "%.2f" r
          in
          Format.fprintf fmt " %9s" s)
        row.ratios;
      Format.fprintf fmt "@.")
    t.rows;
  Format.fprintf fmt "baseline ext3 times:";
  List.iter (fun (n, ms) -> Format.fprintf fmt " %s=%.2fs" n (ms /. 1000.)) t.baselines;
  Format.fprintf fmt "@.([x] = speedup; x* = slowdown beyond 10%%)@."
