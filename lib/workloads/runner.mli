(** Timed execution of an application workload against one file-system
    brand: fresh simulated disk (service-time model on), mkfs + mount
    (untimed setup), run, unmount (timed — checkpoints are part of the
    cost), and report the simulated service time. *)

type stats = {
  elapsed_ms : float;  (** simulated disk time for run + unmount, plus the workload's modelled CPU time *)
  reads : int;
  writes : int;
  syncs : int;
}

val run :
  ?obs:Iron_obs.Obs.t ->
  ?num_blocks:int ->
  ?seed:int ->
  Iron_vfs.Fs.brand ->
  Apps.t ->
  (stats, Iron_vfs.Errno.t) result
(** Default: a 4096-block (16 MiB) volume, seed 42. With [~obs] the
    device stack is wrapped in {!Iron_disk.Dev.observe} and the context
    is ambient for the whole run, so journal spans carry real simulated
    timestamps. *)
