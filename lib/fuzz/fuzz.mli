(** The bounded black-box crash-fuzzing campaign.

    [campaign] drives every generated workload ({!Gen.workloads})
    through the per-workload session API of {!Iron_crash.Explore} —
    record through a {!Iron_crash.Wlog}, enumerate crash-state specs,
    materialize, remount, check — and deduplicates crash states
    {e across} workloads by their baseline-relative SHA-1 content
    digest, so a seq-2 sweep checks tens of thousands of distinct
    states instead of re-checking the same torn prefixes 1406 times.

    Two passes keep it [-j]-deterministic {e and} memory-flat:

    + {b scan} (parallel, slotted by workload index): record +
      enumerate each workload, return only the 20-byte state digests —
      each session's write log dies with the job;
    + a sequential fold in workload order assigns every {e novel}
      digest to the first workload that produced it (j-independent by
      construction);
    + {b check} (parallel, slotted): re-record exactly the workloads
      that own novel states and materialize/check just those, against
      the durability oracle {!Gen.expects}.

    Violating workloads are shrunk with {!minimize} (greedy drop-one
    op, re-fuzzing each candidate subsequence) before reporting. *)

type case = {
  cs_index : int;  (** workload index in generation order *)
  cs_workload : string;  (** {!Gen.to_string} of the workload *)
  cs_minimized : string;  (** smallest still-violating op subsequence *)
  cs_checked : int;  (** novel states this workload owned *)
  cs_violations : int;
  cs_first : (string * string * string) list;
      (** first few violations: state label, kind, detail *)
  cs_chains : Iron_crash.Explore.chain list;
      (** causal forensics per violation; [[]] unless [~explain:true] *)
}

type report = {
  fz_fs : string;
  fz_seq : int;
  fz_seed : int;
  fz_cap : int;  (** states-per-workload bound *)
  fz_workloads : int;
  fz_log_writes : int;  (** recorded writes, summed over workloads *)
  fz_peak_bytes : int;
      (** largest single write log's payload bytes — a job's residency
          is one log at a time ({!Iron_crash.Wlog.take} moves, sessions
          die with their workload), so this pins peak per-job memory *)
  fz_states_raw : int;  (** enumerated before cross-workload dedup *)
  fz_states : int;  (** distinct crash states materialized and checked *)
  fz_violations : int;
  fz_tc : int;  (** transactional-checksum detections during recovery *)
  fz_kinds : (string * int) list;  (** violation tally per kind, sorted *)
  fz_corpus : string;  (** hex SHA-1 over the sorted state-digest corpus *)
  fz_cases : case list;  (** violating workloads, in workload order *)
}

val campaign :
  ?jobs:int ->
  ?seq:int ->
  ?states_per_workload:int ->
  ?seed:int ->
  ?samples:int ->
  ?num_blocks:int ->
  ?explain:bool ->
  ?obs:Iron_obs.Obs.t ->
  ?on_workload:(unit -> unit) ->
  Iron_vfs.Fs.brand ->
  report
(** Defaults: [jobs = 1], [seq = 1], [states_per_workload = 150],
    [seed = 7], [samples = 200] (seq-3 only), [num_blocks = 2048],
    [explain = false]. With [~obs] the phases run under [fuzz.*] spans
    and bump [fuzz.workloads], [fuzz.log_writes],
    [fuzz.peak_log_bytes], [fuzz.states_raw], [fuzz.states],
    [fuzz.violations] and [fuzz.tc_detected].
    [on_workload] fires after each scanned and each checked workload
    (in the worker domain — must be domain-safe; meant for the
    peak-residency bench at [jobs = 1]). Deterministic: the report is
    a pure function of [(brand, seq, states_per_workload, seed,
    samples, num_blocks, explain)] — [jobs] cannot change a byte. *)

val minimize : repro:(Gen.workload -> bool) -> Gen.workload -> Gen.workload
(** Greedy 1-minimal shrink: repeatedly drop the first op whose
    removal still satisfies [repro]. The result is [repro]-positive
    whenever the input was and no single-op removal survives. *)

val count : report -> string -> int
(** Violations of one kind (by {!Iron_crash.Explore.kind_to_string}
    name). *)

val pp_report : Format.formatter -> report -> unit
(** Byte-stable summary: one header line (grep-able
    ["<fs>: fuzz ... -> N violations ..."]), the corpus digest, then
    the first few violating workloads with their minimized forms.
    Never mentions chains (goldens pin the [--explain]-free bytes). *)

val pp_chains : Format.formatter -> report -> unit
(** The forensic chains of every case, via
    {!Iron_crash.Explore.pp_chain}; prints nothing when [~explain]
    was off. *)
