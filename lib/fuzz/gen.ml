(* Bounded workload generation + durability oracle: see gen.mli. *)

module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Prng = Iron_util.Prng
module Prov = Iron_obs.Prov
module Explore = Iron_crash.Explore

type op =
  | Creat of string
  | Write of string
  | Rename of string * string
  | Link of string * string
  | Symlink of string * string
  | Unlink of string
  | Mkdir of string
  | Rmdir of string
  | Truncate of string
  | Fsync of string
  | Sync

type workload = op list

let dirs = [ "/d0"; "/d1" ]
let files = [ "/f0"; "/d0/f1"; "/d1/f2" ]

(* Every path a workload can name; the oracle samples all of them. *)
let tracked = files @ dirs @ [ "/d2" ]

let op_to_string = function
  | Creat p -> "creat " ^ p
  | Write p -> "write " ^ p
  | Rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | Link (a, b) -> Printf.sprintf "link %s %s" a b
  | Symlink (tgt, l) -> Printf.sprintf "symlink %s %s" tgt l
  | Unlink p -> "unlink " ^ p
  | Mkdir p -> "mkdir " ^ p
  | Rmdir p -> "rmdir " ^ p
  | Truncate p -> "truncate " ^ p
  | Fsync p -> "fsync " ^ p
  | Sync -> "sync"

let to_string w = String.concat "; " (List.map op_to_string w)

let pairs xs =
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a = b then None else Some (a, b)) xs)
    xs

let alphabet : op list =
  List.map (fun f -> Creat f) files
  @ List.map (fun f -> Write f) files
  @ List.map (fun (a, b) -> Rename (a, b)) (pairs files)
  @ List.map (fun (a, b) -> Link (a, b)) (pairs files)
  @ List.map (fun (a, b) -> Symlink (a, b)) (pairs files)
  @ List.map (fun f -> Unlink f) files
  @ [ Mkdir "/d2" ]
  @ List.map (fun d -> Rmdir d) dirs
  @ List.map (fun f -> Truncate f) files
  @ List.map (fun f -> Fsync f) files
  @ [ Sync ]

let workloads ~seq ~seed ~samples =
  if seq < 1 || seq > 3 then invalid_arg "Gen.workloads: seq must be 1..3";
  let a = Array.of_list alphabet in
  let n = Array.length a in
  let one = List.map (fun op -> [ op ]) alphabet in
  if seq = 1 then one
  else
    let two =
      List.concat_map
        (fun i -> List.init n (fun j -> [ a.(i); a.(j) ]))
        (List.init n Fun.id)
    in
    if seq = 2 then one @ two
    else begin
      let rng = Prng.create (seed lxor 0xb3b3) in
      let seen = Hashtbl.create 64 in
      let out = ref [] and count = ref 0 and tries = ref 0 in
      while !count < samples && !tries < (samples * 64) + 64 do
        incr tries;
        let i = Prng.int rng n and j = Prng.int rng n and k = Prng.int rng n in
        if not (Hashtbl.mem seen (i, j, k)) then begin
          Hashtbl.add seen (i, j, k) ();
          out := [ a.(i); a.(j); a.(k) ] :: !out;
          incr count
        end
      done;
      one @ two @ List.rev !out
    end

(* Contents are deterministic, path-tagged, and big enough to span
   more than one 4K block, so partial-data crash states are possible. *)
let init_content path = Printf.sprintf "I|%s|%s" path (String.make 5000 'i')
let write_content path = Printf.sprintf "W|%s|%s" path (String.make 5000 'w')

let must what = function
  | Ok _ -> ()
  | Error e ->
      failwith (Printf.sprintf "fuzz setup: %s: %s" what (Errno.to_string e))

let setup (Fs.Boxed ((module F), t)) =
  must "mkdir /d0" (F.mkdir t "/d0");
  must "mkdir /d1" (F.mkdir t "/d1");
  let put path =
    match F.creat t path with
    | Error e -> must ("creat " ^ path) (Error e)
    | Ok fd ->
        let data = Bytes.of_string (init_content path) in
        (match F.write t fd ~off:0 data with
        | Ok n when n = Bytes.length data -> ()
        | Ok _ -> failwith ("fuzz setup: short write " ^ path)
        | Error e -> must ("write " ^ path) (Error e));
        must ("close " ^ path) (F.close t fd)
  in
  put "/f0";
  put "/d0/f1";
  must "sync" (F.sync t)

(* ------------------------------------------------------------------ *)
(* The replay model                                                    *)
(* ------------------------------------------------------------------ *)

(* A tiny in-memory model of the VFS state the workload built: a flat
   name table (sound because every op that empties or removes a
   directory is only applied when the file system accepted it) plus
   per-inode content and the max epoch of data writes to it. *)
module M = struct
  type node = Dir | File of int | Symlink of string

  type t = {
    names : (string, node) Hashtbl.t;
    content : (int, string) Hashtbl.t;
    wep : (int, int) Hashtbl.t;
    aliased : (int, unit) Hashtbl.t;
        (* inodes that ever changed name or gained a second one: in a
           partial crash state the disk may still reach them through a
           dirent the model no longer has, so writes under one name can
           surface as content under another. *)
    mutable next : int;
  }

  let create () =
    let m =
      {
        names = Hashtbl.create 16;
        content = Hashtbl.create 16;
        wep = Hashtbl.create 16;
        aliased = Hashtbl.create 4;
        next = 0;
      }
    in
    List.iter (fun d -> Hashtbl.replace m.names d Dir) dirs;
    List.iter
      (fun p ->
        let ino = m.next in
        m.next <- ino + 1;
        Hashtbl.replace m.names p (File ino);
        Hashtbl.replace m.content ino (init_content p))
      [ "/f0"; "/d0/f1" ];
    m

  let rec resolve ?(depth = 0) m p =
    if depth > 8 then None
    else
      match Hashtbl.find_opt m.names p with
      | Some (Symlink tgt) -> resolve ~depth:(depth + 1) m tgt
      | other -> other

  (* write at offset 0: the tail of a longer old content survives. *)
  let overwrite old data =
    let ld = String.length data and lo = String.length old in
    if ld >= lo then data else data ^ String.sub old ld (lo - ld)

  let apply m op ~wep =
    match op with
    | Creat p ->
        let ino = m.next in
        m.next <- ino + 1;
        Hashtbl.replace m.names p (File ino);
        Hashtbl.replace m.content ino ""
    | Write p -> (
        match resolve m p with
        | Some (File ino) ->
            let old =
              Option.value ~default:"" (Hashtbl.find_opt m.content ino)
            in
            Hashtbl.replace m.content ino (overwrite old (write_content p));
            let prev =
              Option.value ~default:(-1) (Hashtbl.find_opt m.wep ino)
            in
            if wep > prev then Hashtbl.replace m.wep ino wep
        | _ -> ())
    | Rename (a, b) -> (
        match Hashtbl.find_opt m.names a with
        | None -> ()
        | Some node ->
            (match node with
            | File ino -> Hashtbl.replace m.aliased ino ()
            | Dir | Symlink _ -> ());
            (match Hashtbl.find_opt m.names b with
            | Some (File old) -> Hashtbl.replace m.aliased old ()
            | _ -> ());
            Hashtbl.remove m.names a;
            Hashtbl.replace m.names b node)
    | Link (a, b) -> (
        match resolve m a with
        | Some (File ino as node) ->
            Hashtbl.replace m.aliased ino ();
            (match Hashtbl.find_opt m.names b with
            | Some (File old) -> Hashtbl.replace m.aliased old ()
            | _ -> ());
            Hashtbl.replace m.names b node
        | _ -> ())
    | Symlink (tgt, l) -> Hashtbl.replace m.names l (Symlink tgt)
    | Unlink p -> Hashtbl.remove m.names p
    | Mkdir p -> Hashtbl.replace m.names p Dir
    | Rmdir p -> Hashtbl.remove m.names p
    | Truncate p -> (
        match resolve m p with
        | Some (File ino) -> Hashtbl.replace m.content ino ""
        | _ -> ())
    | Fsync _ | Sync -> ()

  (* What stat-visibility says about a path: (exists, content, wep,
     ino). Dangling symlinks count as absent — exactly what [stat]
     sees. *)
  let observe m p =
    match resolve m p with
    | None | Some (Symlink _) -> (false, None, -1, None)
    | Some Dir -> (true, None, -1, None)
    | Some (File ino) ->
        ( true,
          Some (Option.value ~default:"" (Hashtbl.find_opt m.content ino)),
          Option.value ~default:(-1) (Hashtbl.find_opt m.wep ino),
          Some ino )
end

(* A sample whose op has not yet been covered by an epoch-closing
   barrier: durable never, until a later fsync/sync promotes it. *)
let pending = max_int

type sample = {
  mutable sp_dur : int;
  sp_exists : bool;
  sp_content : string option;
  sp_wep : int;
  sp_ino : int option;
}

type replay = {
  rp_paths : (string * sample list) list;
  rp_aliased : (int, unit) Hashtbl.t;
}

type tracker = {
  model : M.t;
  samples : (string, sample list ref) Hashtbl.t;  (* newest first *)
}

let sample_path tr ~dur p =
  let exists, content, wep, ino = M.observe tr.model p in
  let r = Hashtbl.find tr.samples p in
  r :=
    {
      sp_dur = dur;
      sp_exists = exists;
      sp_content = content;
      sp_wep = wep;
      sp_ino = ino;
    }
    :: !r

let tracker () =
  let tr = { model = M.create (); samples = Hashtbl.create 8 } in
  List.iter (fun p -> Hashtbl.replace tr.samples p (ref [])) tracked;
  List.iter (sample_path tr ~dur:(-1)) tracked;
  tr

let replay tr =
  {
    rp_paths = List.map (fun p -> (p, List.rev !(Hashtbl.find tr.samples p))) tracked;
    rp_aliased = tr.model.M.aliased;
  }

let ok_unit = function Ok () -> true | Error _ -> false

let exec (type a) (module F : Fs.S with type t = a) (t : a) = function
  | Creat p -> (
      match F.creat t p with
      | Ok fd ->
          ignore (F.close t fd);
          true
      | Error _ -> false)
  | Write p -> (
      match F.open_ t p Fs.Wr with
      | Error _ -> false
      | Ok fd ->
          let data = Bytes.of_string (write_content p) in
          let ok =
            match F.write t fd ~off:0 data with
            | Ok n -> n = Bytes.length data
            | Error _ -> false
          in
          ignore (F.close t fd);
          ok)
  | Rename (a, b) -> ok_unit (F.rename t a b)
  | Link (a, b) -> ok_unit (F.link t a b)
  | Symlink (tgt, l) -> ok_unit (F.symlink t tgt l)
  | Unlink p -> ok_unit (F.unlink t p)
  | Mkdir p -> ok_unit (F.mkdir t p)
  | Rmdir p -> ok_unit (F.rmdir t p)
  | Truncate p -> ok_unit (F.truncate t p 0)
  | Fsync p -> (
      match F.open_ t p Fs.Rd with
      | Error _ -> false
      | Ok fd ->
          let ok = ok_unit (F.fsync t fd) in
          ignore (F.close t fd);
          ok)
  | Sync -> ok_unit (F.sync t)

let run (Fs.Boxed ((module F), t)) ~closed_epochs tr (w : workload) =
  List.iteri
    (fun k op ->
      Prov.with_op k (op_to_string op) (fun () ->
          let ep_before = closed_epochs () in
          let ok = exec (module F) t op in
          let ep_after = closed_epochs () in
          if ok then begin
            M.apply tr.model op ~wep:ep_after;
            (* A buffered op writes nothing by itself: its journal
               commit lands in whatever epoch the NEXT barrier closes,
               so it stays pending until an epoch-closing fsync/sync
               retroactively promotes it. The promoting barrier's last
               act is closing the epoch its commit (and checkpoint)
               writes landed in, so everything it covered is durable
               once epochs < ep_after persist — i.e. dur = ep_after-1.
               A sync that closed nothing flushed nothing and promises
               nothing; a non-sync op that happened to trigger an
               eager flush promotes nothing either (we cannot know
               which of its writes the flush covered). *)
            let dur =
              match op with
              | (Fsync _ | Sync) when ep_after > ep_before ->
                  let d = ep_after - 1 in
                  Hashtbl.iter
                    (fun _ r ->
                      List.iter
                        (fun s -> if s.sp_dur = pending then s.sp_dur <- d)
                        !r)
                    tr.samples;
                  d
              | _ -> pending
            in
            List.iter (sample_path tr ~dur) tracked
          end))
    w

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let expects ?(lying = false) replay ~epoch:e =
  let aliased = function
    | Some ino -> Hashtbl.mem replay.rp_aliased ino
    | None -> false
  in
  List.map
    (fun (path, samples) ->
      let fix = List.hd samples in
      (* A lying write-back cache can persist any per-block subset of
         the log, mixing versions across blocks in ways no op-boundary
         mixture explains (e.g. every copy of a new dirent dropped
         while the inode-table write freeing the old target stuck).
         Only paths the workload never mutated keep their fixture
         guarantee there. *)
      let untouched =
        List.for_all
          (fun s ->
            s.sp_exists = fix.sp_exists
            && s.sp_ino = fix.sp_ino
            && s.sp_content = fix.sp_content
            && s.sp_wep < 0)
          samples
      in
      if lying then
        if untouched then
          {
            Explore.ex_path = path;
            ex_presence = (if fix.sp_exists then `Present else `Absent);
            ex_allowed =
              (if fix.sp_exists then Option.map (fun c -> [ c ]) fix.sp_content
               else None);
          }
        else { Explore.ex_path = path; ex_presence = `Any; ex_allowed = None }
      else begin
      (* Last sample whose op is fully persisted at E, vs. the ops
         that may have landed partially. *)
      let durable = ref (List.hd samples) in
      let volatile = ref [] in
      List.iter
        (fun s -> if s.sp_dur < e then durable := s else volatile := s :: !volatile)
        samples;
      let d = !durable and vol = List.rev !volatile in
      if vol = [] then
        {
          Explore.ex_path = path;
          ex_presence = (if d.sp_exists then `Present else `Absent);
          ex_allowed =
            (if d.sp_exists then Option.map (fun c -> [ c ]) d.sp_content
             else None);
        }
      else begin
        (* Presence is journaled metadata: a crash lands on some op
           boundary, so it is pinned only when every in-flight op
           agrees with the durable state. *)
        let presence =
          if d.sp_exists && List.for_all (fun s -> s.sp_exists) vol then
            `Present
          else if
            (not d.sp_exists) && List.for_all (fun s -> not s.sp_exists) vol
          then `Absent
          else `Any
        in
        let cand = List.filter (fun s -> s.sp_exists) (d :: vol) in
        (* Content must match some op-boundary snapshot — unless any
           snapshot rests on data writes that were still un-synced at
           E (a torn overwrite is legal then), the path is ever a
           directory, or its inode is aliased (a stale on-disk dirent
           can expose writes made under the other name). *)
        let unreliable =
          List.exists
            (fun s ->
              s.sp_content = None || s.sp_wep >= e || aliased s.sp_ino)
            cand
        in
        let allowed =
          if cand = [] || unreliable then None
          else
            Some
              (List.sort_uniq String.compare
                 (List.filter_map (fun s -> s.sp_content) cand))
        in
        { Explore.ex_path = path; ex_presence = presence; ex_allowed = allowed }
      end
      end)
    replay.rp_paths
