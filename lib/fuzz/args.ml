(* CLI argument validation: see args.mli. *)

let positive ~what n =
  if n >= 1 then Ok n
  else Error (Printf.sprintf "%s must be >= 1 (got %d)" what n)

let seq n =
  if n >= 1 && n <= 3 then Ok n
  else Error (Printf.sprintf "--seq must be 1, 2 or 3 (got %d)" n)

let zipf x =
  if Float.is_nan x || x < 0.0 || x > 2.0 then
    Error (Printf.sprintf "--zipf must be within [0, 2] (got %g)" x)
  else Ok x

let arrival s =
  match s with
  | "poisson" | "closed" | "mixed" -> Ok s
  | _ ->
      Error
        (Printf.sprintf
           "--arrival must be poisson, closed or mixed (got %S)" s)

let brand ~known name =
  if List.mem name known then Ok name
  else
    Error
      (Printf.sprintf "unknown file system %S (known: %s)" name
         (String.concat ", " known))
