(** Bounded workload generation and the per-workload durability oracle
    (CrashMonkey / B3 style).

    The crash-state explorer ({!Iron_crash.Explore}) sweeps the disk
    states one {e fixed} workload can leave behind; the paper's point —
    failure policy is illogical and inconsistent — only lands when the
    {e workload space} is swept too. This module generates that space:
    every VFS mutation over a small fixed name set (2 directories × 3
    files), exhaustively for sequences of length 1 and 2, seeded
    sampling for length 3 — the B3 bound under which real
    crash-consistency bugs cluster.

    Each generated workload runs against a freshly restored base image
    ({!setup} builds it: [/d0], [/d1], two initial files, sync'd) while
    a {!tracker} replays the ops against a tiny in-memory model of what
    {e should} happen. After every successful op the tracker samples
    the visible state of every tracked path together with the epoch
    the op's writes landed in; {!expects} later converts those samples
    into per-path assertions for any crash state, given the largest
    epoch [E] the state provably persisted ({!Iron_crash.Explore.spec_epoch}):

    + activity from epochs [< E] is durable — if the path was last
      touched there, presence {e and} content are checked exactly;
    + later activity may be arbitrarily partial — presence is only
      constrained when every in-flight op agrees on it, and content
      must belong to the set of observed op-boundary snapshots, or is
      left unchecked entirely when un-synced data writes are in flight
      (a torn data overwrite is legal in ordered/writeback modes). *)

type op =
  | Creat of string
  | Write of string  (** open + overwrite with a deterministic pattern + close *)
  | Rename of string * string
  | Link of string * string
  | Symlink of string * string  (** [Symlink (target, linkpath)] *)
  | Unlink of string
  | Mkdir of string
  | Rmdir of string
  | Truncate of string  (** to length 0 *)
  | Fsync of string  (** open read-only + fsync + close *)
  | Sync

type workload = op list

val op_to_string : op -> string

val to_string : workload -> string
(** ["; "]-joined op labels — the workload's canonical name in reports. *)

val alphabet : op list
(** The fixed 37-op alphabet over the name set, in a pinned order:
    creat/write/unlink/truncate/fsync over the three files, ordered
    rename/link/symlink pairs, mkdir of the one absent directory,
    rmdir of the two present ones, and sync. *)

val workloads : seq:int -> seed:int -> samples:int -> workload list
(** Every workload of length [<= seq] for [seq <= 2] (37 singletons,
    1369 pairs); [seq = 3] appends [samples] seeded distinct triples.
    Deterministic: a pure function of [(seq, seed, samples)].
    @raise Invalid_argument unless [1 <= seq <= 3]. *)

val setup : Iron_vfs.Fs.boxed -> unit
(** The pre-workload fixture, for {!Iron_crash.Explore.make_base}:
    [mkdir /d0], [mkdir /d1], create [/f0] and [/d0/f1] with
    deterministic contents, sync. [/d1/f2] and [/d2] start absent.
    @raise Failure if any step fails. *)

val init_content : string -> string
(** The fixture content of a path created by {!setup}. *)

val write_content : string -> string
(** The content a [Write] op overwrites a path with. *)

type tracker
(** The replay model + sample log for one workload run. Create fresh
    per run; updated incrementally so a model panic mid-workload loses
    nothing already sampled. *)

val tracker : unit -> tracker

val run :
  Iron_vfs.Fs.boxed -> closed_epochs:(unit -> int) -> tracker -> workload -> unit
(** Execute the workload op by op (each scoped under
    [Iron_obs.Prov.with_op]), applying every {e successful} op to the
    model and sampling the tracked paths. [closed_epochs] is the hook
    {!Iron_crash.Explore.record_session} passes to [ops]. Ops the file
    system rejects ([EEXIST], [ENOENT], ...) are skipped — error
    returns promise nothing about the disk.

    Durability bookkeeping: a buffered op writes nothing by itself, so
    its sample stays {e pending} ([sp_dur = max_int]) until an
    epoch-closing [fsync]/[sync] retroactively promotes every pending
    sample to [ep_after - 1] (the journal's compound transaction
    commits everything staged). A sync that closed no epoch promises
    nothing. *)

type sample = {
  mutable sp_dur : int;
      (** the sample is durable in a crash state of epoch [E] iff
          [sp_dur < E]; [max_int] while pending (see {!run}) *)
  sp_exists : bool;
  sp_content : string option;  (** [None] for directories *)
  sp_wep : int;
      (** max epoch of the data writes behind [sp_content]; [-1] if
          none — content is only trusted when [sp_wep < E] *)
  sp_ino : int option;
      (** the model inode behind the path, [None] for directories and
          absent paths *)
}

type replay = {
  rp_paths : (string * sample list) list;
      (** chronological samples per tracked path; head sample is the
          fixture state with [sp_dur = -1] (always durable) *)
  rp_aliased : (int, unit) Hashtbl.t;
      (** inodes that ever changed name or gained a second one
          (rename/link): content expectations are suppressed for them —
          in a partial crash state a stale dirent can expose writes
          made under the other name *)
}

val replay : tracker -> replay

val expects : ?lying:bool -> replay -> epoch:int -> Iron_crash.Explore.expect list
(** The durability oracle: per-path assertions for a crash state that
    provably persisted all epochs [< epoch] — plug directly into
    {!Iron_crash.Explore.check_spec}.

    With [~lying:true] (for states {!Iron_crash.Explore.spec_honest}
    rejects — only a lying write-back cache produces them), the oracle
    asserts nothing beyond the fixture: a lying cache mixes per-block
    versions in ways no op-boundary mixture explains, so only paths
    the workload never mutated keep their fixture guarantee; every
    touched path checks as [`Any]. Use with [~epoch:0]. *)
