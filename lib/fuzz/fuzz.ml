(* The crash-fuzzing campaign: see fuzz.mli. *)

module Fs = Iron_vfs.Fs
module Memdisk = Iron_disk.Memdisk
module Pool = Iron_util.Pool
module Sha1 = Iron_util.Sha1
module Obs = Iron_obs.Obs
module Explore = Iron_crash.Explore

type case = {
  cs_index : int;
  cs_workload : string;
  cs_minimized : string;
  cs_checked : int;
  cs_violations : int;
  cs_first : (string * string * string) list;
  cs_chains : Explore.chain list;
}

type report = {
  fz_fs : string;
  fz_seq : int;
  fz_seed : int;
  fz_cap : int;
  fz_workloads : int;
  fz_log_writes : int;
  fz_peak_bytes : int;
  fz_states_raw : int;
  fz_states : int;
  fz_violations : int;
  fz_tc : int;
  fz_kinds : (string * int) list;
  fz_corpus : string;
  fz_cases : case list;
}

let count r name = try List.assoc name r.fz_kinds with Not_found -> 0

let minimize ~repro w =
  let rec shrink w =
    let n = List.length w in
    if n <= 1 then w
    else
      let rec try_at i =
        if i >= n then w
        else
          let w' = List.filteri (fun j _ -> j <> i) w in
          if repro w' then shrink w' else try_at (i + 1)
      in
      try_at 0
  in
  shrink w

(* Per-workload result of the check pass. *)
type wres = {
  wr_checked : int;
  wr_tc : int;
  wr_kinds : string list;  (* one entry per violation *)
  wr_case : case option;
}

let no_result = { wr_checked = 0; wr_tc = 0; wr_kinds = []; wr_case = None }

let campaign ?(jobs = 1) ?(seq = 1) ?(states_per_workload = 150) ?(seed = 7)
    ?(samples = 200) ?(num_blocks = 2048) ?(explain = false) ?obs ?on_workload
    brand =
  let params =
    { Memdisk.default_params with Memdisk.num_blocks; seed = seed lxor 0xb3 }
  in
  let fs = Fs.brand_name brand in
  (* The ext3 family gets the offline cross-check, like [explore]. *)
  let fsck =
    match fs with
    | "ext3" | "ixt3" | "ext3-writeback" | "ext3-data" -> true
    | _ -> false
  in
  let in_span name f =
    match obs with
    | None -> f ()
    | Some o -> Obs.span o ~subsystem:"fuzz" name f
  in
  let tick () = match on_workload with None -> () | Some f -> f () in
  let ws = Array.of_list (Gen.workloads ~seq ~seed ~samples) in
  let indexed = Array.to_list (Array.mapi (fun k w -> (k, w)) ws) in
  let base = Explore.make_base ~params ~setup:Gen.setup brand in
  let record w =
    let tr = Gen.tracker () in
    let session =
      Explore.record_session ~params ~base
        ~ops:(fun fsb ~closed_epochs -> Gen.run fsb ~closed_epochs tr w)
        brand
    in
    (session, tr)
  in
  (* Enumeration seed is a pure function of the workload index, so the
     spec list of workload [k] is identical in the scan pass, the
     check pass, and for any [-j]. *)
  let enumerate k session =
    Explore.enumerate_session
      ~seed:(seed + (997 * k))
      ~max_states:states_per_workload session
  in
  (* Scan: record + enumerate everything, keep only state digests. *)
  let scanned =
    in_span "scan" (fun () ->
        Pool.map_jobs ~jobs
          (fun (k, w) ->
            let session, _ = record w in
            let specs = enumerate k session in
            let ds = List.map (Explore.spec_digest session) specs in
            let r =
              ( ds,
                Explore.session_log_len session,
                Explore.session_log_bytes session )
            in
            tick ();
            r)
          indexed)
  in
  (* Corpus fold, sequential in workload order: the first workload to
     produce a digest owns that crash state. *)
  let corpus = Hashtbl.create 4096 in
  let novel = Array.make (max 1 (Array.length ws)) [] in
  let states_raw = ref 0 and log_writes = ref 0 in
  (* Sessions are per-workload and dropped as soon as their digests are
     folded in, so a job's residency is one write log at a time; the
     campaign's peak is the largest single log. *)
  let peak_bytes = ref 0 in
  List.iteri
    (fun k (ds, ll, lb) ->
      log_writes := !log_writes + ll;
      if lb > !peak_bytes then peak_bytes := lb;
      let keep = ref [] in
      List.iteri
        (fun i d ->
          incr states_raw;
          if not (Hashtbl.mem corpus d) then begin
            Hashtbl.add corpus d ();
            keep := i :: !keep
          end)
        ds;
      novel.(k) <- List.rev !keep)
    scanned;
  let states = Hashtbl.length corpus in
  let corpus_digest =
    let all = Hashtbl.fold (fun d () acc -> d :: acc) corpus [] in
    let ctx = Sha1.init () in
    List.iter
      (fun d -> Sha1.feed ctx (Bytes.unsafe_of_string d))
      (List.sort String.compare all);
    Sha1.to_hex (Sha1.finalize ctx)
  in
  (* Check: re-record the owners and check exactly their novel states. *)
  let check_workload (k, w) =
    match novel.(k) with
    | [] -> no_result
    | idxs ->
        let session, tr = record w in
        let specs = Array.of_list (enumerate k session) in
        let rp = Gen.replay tr in
        (* Lying-cache states (a persisted write from after the first
           dropped one — no barrier-honouring disk produces them) get
           the fixture-only oracle and no offline cross-check: the disk
           promised nothing, and fsck would flag stale in-place blocks
           that no recovery mechanism was ever given a chance to see.
           Tc and fixture-durability checks still run there. *)
        let check spec =
          let honest = Explore.spec_honest session spec in
          let expects ~epoch =
            if honest then Gen.expects rp ~epoch
            else Gen.expects ~lying:true rp ~epoch:0
          in
          Explore.check_spec ~params ~brand ~fsck:(fsck && honest) ~expects
            session spec
        in
        let bad = ref [] and tc = ref 0 in
        List.iter
          (fun i ->
            let spec = specs.(i) in
            let o = check spec in
            if o.Explore.tc then incr tc;
            match o.Explore.viol with
            | None -> ()
            | Some (kind, detail) -> bad := (spec, kind, detail) :: !bad)
          idxs;
        let bad = List.rev !bad in
        let case =
          if bad = [] then None
          else begin
            let kinds =
              List.sort_uniq compare (List.map (fun (_, k, _) -> k) bad)
            in
            (* A subsequence reproduces if fuzzing it (its own oracle,
               its own enumeration) re-finds any of the same violation
               kinds. *)
            let repro w' =
              w' <> []
              &&
              let s', tr' = record w' in
              let specs' = enumerate k s' in
              let rp' = Gen.replay tr' in
              List.exists
                (fun spec ->
                  let honest = Explore.spec_honest s' spec in
                  let expects' ~epoch =
                    if honest then Gen.expects rp' ~epoch
                    else Gen.expects ~lying:true rp' ~epoch:0
                  in
                  match
                    (Explore.check_spec ~params ~brand ~fsck:(fsck && honest)
                       ~expects:expects' s' spec)
                      .Explore.viol
                  with
                  | Some (kk, _) -> List.mem kk kinds
                  | None -> false)
                specs'
            in
            let minimized = minimize ~repro w in
            let chains =
              if not explain then []
              else begin
                let ctx = Explore.session_forensics ~params ~fsck session in
                List.map
                  (fun (spec, kind, detail) ->
                    Explore.explain_spec ~check:(fun s -> check s) ctx session
                      (spec, kind, detail))
                  (List.filteri (fun i _ -> i < 3) bad)
              end
            in
            Some
              {
                cs_index = k;
                cs_workload = Gen.to_string w;
                cs_minimized = Gen.to_string minimized;
                cs_checked = List.length idxs;
                cs_violations = List.length bad;
                cs_first =
                  List.filteri (fun i _ -> i < 3) bad
                  |> List.map (fun (spec, kind, detail) ->
                         ( Explore.spec_label spec,
                           Explore.kind_to_string kind,
                           detail ));
                cs_chains = chains;
              }
          end
        in
        let r =
          {
            wr_checked = List.length idxs;
            wr_tc = !tc;
            wr_kinds = List.map (fun (_, k, _) -> Explore.kind_to_string k) bad;
            wr_case = case;
          }
        in
        tick ();
        r
  in
  let results = in_span "check" (fun () -> Pool.map_jobs ~jobs check_workload indexed) in
  let tc = List.fold_left (fun a r -> a + r.wr_tc) 0 results in
  let all_kinds = List.concat_map (fun r -> r.wr_kinds) results in
  let violations = List.length all_kinds in
  let kinds =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun k ->
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      all_kinds;
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])
  in
  let cases = List.filter_map (fun r -> r.wr_case) results in
  (match obs with
  | None -> ()
  | Some o ->
      Obs.add o "fuzz.workloads" (Array.length ws);
      Obs.add o "fuzz.log_writes" !log_writes;
      Obs.add o "fuzz.peak_log_bytes" !peak_bytes;
      Obs.add o "fuzz.states_raw" !states_raw;
      Obs.add o "fuzz.states" states;
      Obs.add o "fuzz.violations" violations;
      Obs.add o "fuzz.tc_detected" tc);
  {
    fz_fs = fs;
    fz_seq = seq;
    fz_seed = seed;
    fz_cap = states_per_workload;
    fz_workloads = Array.length ws;
    fz_log_writes = !log_writes;
    fz_peak_bytes = !peak_bytes;
    fz_states_raw = !states_raw;
    fz_states = states;
    fz_violations = violations;
    fz_tc = tc;
    fz_kinds = kinds;
    fz_corpus = corpus_digest;
    fz_cases = cases;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%s: fuzz seq<=%d seed %d: %d workloads, %d log writes, %d raw states -> \
     %d unique -> %d violations in %d workloads (unmountable %d, data-loss \
     %d, fsck %d, panic %d), Tc detections %d@,"
    r.fz_fs r.fz_seq r.fz_seed r.fz_workloads r.fz_log_writes r.fz_states_raw
    r.fz_states r.fz_violations (List.length r.fz_cases)
    (count r "unmountable") (count r "data-loss") (count r "fsck-unclean")
    (count r "panic") r.fz_tc;
  Format.fprintf ppf "  corpus sha1 %s@," r.fz_corpus;
  let shown = ref 0 in
  List.iter
    (fun c ->
      if !shown < 8 then begin
        incr shown;
        Format.fprintf ppf "  [w%04d] %s@," c.cs_index c.cs_workload;
        if c.cs_minimized <> c.cs_workload then
          Format.fprintf ppf "    minimized: %s@," c.cs_minimized;
        Format.fprintf ppf "    %d violation(s) in %d state(s)@,"
          c.cs_violations c.cs_checked;
        List.iter
          (fun (state, kind, detail) ->
            Format.fprintf ppf "    [%s] %s: %s@," state kind detail)
          c.cs_first
      end)
    r.fz_cases;
  if List.length r.fz_cases > !shown then
    Format.fprintf ppf "  ... and %d more violating workloads@,"
      (List.length r.fz_cases - !shown);
  Format.fprintf ppf "@]"

let pp_chains ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun c ->
      List.iter
        (fun ch ->
          Format.fprintf ppf "[w%04d] %s@,%a@," c.cs_index c.cs_workload
            Explore.pp_chain ch)
        c.cs_chains)
    r.fz_cases;
  Format.fprintf ppf "@]"
