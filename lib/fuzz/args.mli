(** CLI argument validation shared by [bin/iron] and its tests.

    Out-of-range numbers and unknown brand names deserve a crisp
    one-line error and exit code 2, not an exception trace; these
    helpers produce the messages, the CLI maps [Error] to exit 2. *)

val positive : what:string -> int -> (int, string) result
(** [Ok n] iff [n >= 1]; the message names [what] (e.g. ["--states"]). *)

val seq : int -> (int, string) result
(** [Ok n] iff [1 <= n <= 3] — the B3 bound the generator supports. *)

val zipf : float -> (float, string) result
(** [Ok x] iff [0 <= x <= 2] and not NaN — the skew range the traffic
    sampler's quarter-quantization covers. *)

val arrival : string -> (string, string) result
(** [Ok s] iff [s] names a traffic arrival process: ["poisson"],
    ["closed"] or ["mixed"]. *)

val brand : known:string list -> string -> (string, string) result
(** [Ok name] iff [name] is a known file-system brand; the message
    lists the valid ones. *)
