open Iron_util
module Dev = Iron_disk.Dev
module Bcache = Iron_disk.Bcache
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Fs = Iron_vfs.Fs
module Fdtable = Iron_vfs.Fdtable
module Resolver = Iron_vfs.Resolver
module Jrnl = Iron_jrnl.Jrnl
module Record = Iron_jrnl.Jrnl.Record
module Kind = Iron_jrnl.Kind

let ( let* ) = Result.bind

(* ---- layout constants ----------------------------------------------- *)

let super_primary = 1
let super_secondary = 2 (* adjacent to the primary — the paper's point *)
let aggr_primary = 3
let aggr_secondary = 4
let bmap_desc_block = 5
let imap_cntl_block = 6
let bmap_block = 7
let imap_block = 8
let jsuper_block = 9
let jdata_start = 10
let journal_len = 48 (* j-data blocks *)
let itable_start = jdata_start + journal_len
let itable_blocks = 16
let first_data = itable_start + itable_blocks

let super_magic = 0x4A465331 (* "JFS1" *)
let aggr_magic = 0x4A414747

let root_ino = 2
let inode_size = 128
let direct_ptrs = 4
let xtree_cap = 32
let dir_entry_cap = 100

(* ---- inode codec ----------------------------------------------------- *)

type inode = {
  kind : Fs.kind option; (* None = free *)
  links : int;
  uid : int;
  gid : int;
  perms : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
  direct : int array;
  xtree : int; (* root of the extent tree, 0 if none *)
  target : string;
}

let free_inode_slot =
  {
    kind = None;
    links = 0;
    uid = 0;
    gid = 0;
    perms = 0;
    size = 0;
    atime = 0;
    mtime = 0;
    ctime = 0;
    direct = Array.make direct_ptrs 0;
    xtree = 0;
    target = "";
  }

let kind_code = function
  | None -> 0
  | Some Fs.Regular -> 1
  | Some Fs.Directory -> 2
  | Some Fs.Symlink -> 3

let kind_of_code = function
  | 1 -> Some Fs.Regular
  | 2 -> Some Fs.Directory
  | 3 -> Some Fs.Symlink
  | _ -> None

let encode_inode i buf off =
  let w = Codec.writer ~pos:off buf in
  Codec.put_u8 w (kind_code i.kind);
  Codec.put_u8 w 0;
  Codec.put_u16 w i.links;
  Codec.put_u16 w i.uid;
  Codec.put_u16 w i.gid;
  Codec.put_u16 w i.perms;
  Codec.put_u16 w 0;
  Codec.put_u32 w i.size;
  Codec.put_u32 w i.atime;
  Codec.put_u32 w i.mtime;
  Codec.put_u32 w i.ctime;
  Array.iter (Codec.put_u32 w) i.direct;
  Codec.put_u32 w i.xtree;
  let target = if String.length i.target > 48 then String.sub i.target 0 48 else i.target in
  Codec.put_u16 w (String.length target);
  Codec.put_string w target;
  let used = Codec.writer_pos w - off in
  Bytes.fill buf (off + used) (inode_size - used) '\000'

let decode_inode buf off =
  let r = Codec.reader ~pos:off buf in
  let kind = kind_of_code (Codec.get_u8 r) in
  let _ = Codec.get_u8 r in
  let links = Codec.get_u16 r in
  let uid = Codec.get_u16 r in
  let gid = Codec.get_u16 r in
  let perms = Codec.get_u16 r in
  let _ = Codec.get_u16 r in
  let size = Codec.get_u32 r in
  let atime = Codec.get_u32 r in
  let mtime = Codec.get_u32 r in
  let ctime = Codec.get_u32 r in
  let direct = Array.init direct_ptrs (fun _ -> Codec.get_u32 r) in
  let xtree = Codec.get_u32 r in
  let tlen = Codec.get_u16 r in
  let target =
    if tlen <= 48 && tlen <= Codec.remaining r then Codec.get_string r tlen else ""
  in
  { kind; links; uid; gid; perms; size; atime; mtime; ctime; direct; xtree; target }

(* ---- xtree and directory block codecs ------------------------------- *)

(* An xtree node: level (1 = pointers to data, 2 = pointers to level-1
   nodes) and an entry count that JFS sanity-checks against the cap. *)
let encode_xtree level ptrs buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u16 w (Array.length ptrs);
  Codec.put_u16 w level;
  Array.iter (Codec.put_u32 w) ptrs

let decode_xtree buf =
  try
    let r = Codec.reader buf in
    let n = Codec.get_u16 r in
    let level = Codec.get_u16 r in
    if n > xtree_cap || level < 1 || level > 2 then None
    else Some (level, Array.init n (fun _ -> Codec.get_u32 r))
  with Codec.Decode_error _ -> None

let encode_dir entries buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u16 w (List.length entries);
  List.iter
    (fun (name, ino) ->
      Codec.put_u32 w ino;
      Codec.put_u16 w (String.length name);
      Codec.put_string w name)
    entries

let decode_dir buf =
  try
    let r = Codec.reader buf in
    let n = Codec.get_u16 r in
    if n > dir_entry_cap then None
    else
      let rec go k acc =
        if k = 0 then Some (List.rev acc)
        else
          let ino = Codec.get_u32 r in
          let len = Codec.get_u16 r in
          if len > Codec.remaining r then None
          else
            let name = Codec.get_string r len in
            go (k - 1) ((name, ino) :: acc)
      in
      go n []
  with Codec.Decode_error _ -> None

(* ---- super / aggregate / maps --------------------------------------- *)

let encode_super num_blocks buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w super_magic;
  Codec.put_u32 w 1 (* version *);
  Codec.put_u32 w num_blocks;
  Codec.put_u32 w aggr_primary

let decode_super buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> super_magic then None
    else
      let version = Codec.get_u32 r in
      let num_blocks = Codec.get_u32 r in
      let aggr = Codec.get_u32 r in
      if version <> 1 || num_blocks < 8 then None else Some (num_blocks, aggr)
  with Codec.Decode_error _ -> None

let encode_aggr buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w aggr_magic;
  Codec.put_u32 w itable_start;
  Codec.put_u32 w itable_blocks;
  Codec.put_u32 w bmap_desc_block;
  Codec.put_u32 w imap_cntl_block;
  Codec.put_u32 w jsuper_block

let decode_aggr num_blocks buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> aggr_magic then None
    else
      let it = Codec.get_u32 r in
      let itn = Codec.get_u32 r in
      let bd = Codec.get_u32 r in
      let ic = Codec.get_u32 r in
      let js = Codec.get_u32 r in
      if it >= num_blocks || bd >= num_blocks || ic >= num_blocks || js >= num_blocks
      then None
      else Some (it, itn, bd, ic, js)
  with Codec.Decode_error _ -> None

(* The allocation-map descriptor carries its free count twice — the
   "equality check on a field" the paper observed (§5.3). *)
let encode_counted v buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w v;
  Codec.put_u32 w v

let decode_counted buf =
  try
    let r = Codec.reader buf in
    let a = Codec.get_u32 r in
    let b = Codec.get_u32 r in
    if a = b then Some a else None
  with Codec.Decode_error _ -> None

(* ---- record-level journal ------------------------------------------- *)

(* The diff-based record engine lives in the shared journal core
   ({!Iron_jrnl.Jrnl.Record}); jfs supplies its geometry and typed
   block map. *)
let jgeo num_blocks =
  {
    Jrnl.jsb = jsuper_block;
    jfirst = jdata_start;
    jend = jdata_start + journal_len;
    num_blocks;
  }

let kind_of_block num_blocks b =
  if b = super_primary || b = super_secondary then Kind.Superblock
  else if
    b = aggr_primary || b = aggr_secondary || b = bmap_desc_block
    || b = imap_cntl_block
  then Kind.Gdesc
  else if b = bmap_block then Kind.Bitmap
  else if b = imap_block then Kind.Ibitmap
  else if b = jsuper_block then Kind.Jsb
  else if b >= jdata_start && b < jdata_start + journal_len then Kind.Jdata
  else if b >= itable_start && b < itable_start + itable_blocks then Kind.Inode
  else if b >= first_data && b < num_blocks then Kind.Data
  else Kind.Unknown

(* ---- state ----------------------------------------------------------- *)

type fdesc = { fd_ino : int; fd_mode : Fs.open_mode }

type state = {
  dev : Dev.t;
  bs : int;
  klog : Klog.t;
  cache : Bcache.t;
  num_blocks : int;
  (* journal overlay and record emission live in the shared engine *)
  jrnl : Record.t;
  mutable free_blocks : int;
  mutable free_inodes : int;
  fds : fdesc Fdtable.t;
  mutable cwd : int;
  mutable root : int;
  mutable readonly : bool;
}

let zero_block t = Bytes.make t.bs '\000'
let now_seconds t = int_of_float (t.dev.Dev.now () /. 1000.)

(* ---- block access ---------------------------------------------------- *)

(* The generic file-system layer retries every failed metadata read a
   single time (§5.3). *)
let meta_read t b =
  match Record.find t.jrnl b with
  | Some d -> Ok (Bytes.copy d)
  | None -> (
      match Bcache.read t.cache b with
      | Ok d -> Ok d
      | Error _ -> (
          Klog.warn t.klog "jfs" "retrying metadata read of block %d" b;
          match Bcache.read t.cache b with
          | Ok d -> Ok d
          | Error _ -> Error Errno.EIO))

(* Diff-based record emission, commit and checkpoint are the engine's;
   jfs keeps only the readonly guard and the VFS-facing result types. *)
let meta_write t b data =
  if t.readonly then Error Errno.EROFS
  else begin
    Record.write t.jrnl b data;
    Ok ()
  end

let checkpoint t = Record.checkpoint t.jrnl

let commit t =
  Record.commit t.jrnl;
  Ok ()

(* ---- allocation ------------------------------------------------------ *)

let bit_get buf i = Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set buf i on =
  let v = Char.code (Bytes.get buf (i / 8)) in
  let v' = if on then v lor (1 lsl (i mod 8)) else v land lnot (1 lsl (i mod 8)) in
  Bytes.set buf (i / 8) (Char.chr (v' land 0xFF))

(* A failed read of the block or inode allocation maps crashes the
   system (§5.3). *)
let read_map t b what =
  match meta_read t b with
  | Ok d -> Ok d
  | Error _ -> Klog.panic t.klog "jfs" "read of %s failed; halting" what

let alloc_block t =
  let* buf = read_map t bmap_block "block allocation map" in
  let limit = min (t.bs * 8) t.num_blocks in
  let rec find i =
    if i >= limit then Error Errno.ENOSPC
    else if (not (bit_get buf i)) && i >= first_data then Ok i
    else find (i + 1)
  in
  let* b = find 0 in
  bit_set buf b true;
  let* () = meta_write t bmap_block buf in
  t.free_blocks <- t.free_blocks - 1;
  let cnt = zero_block t in
  encode_counted t.free_blocks cnt;
  let* () = meta_write t bmap_desc_block cnt in
  Ok b

let free_block t b =
  if b < first_data || b >= t.num_blocks then Ok ()
  else begin
    let* buf = read_map t bmap_block "block allocation map" in
    if bit_get buf b then begin
      bit_set buf b false;
      let* () = meta_write t bmap_block buf in
      t.free_blocks <- t.free_blocks + 1;
      let cnt = zero_block t in
      encode_counted t.free_blocks cnt;
      meta_write t bmap_desc_block cnt
    end
    else Ok ()
  end

let total_inodes = itable_blocks * (4096 / inode_size)

let alloc_inode t =
  let* buf = read_map t imap_block "inode allocation map" in
  let rec find i =
    if i >= total_inodes then Error Errno.ENOSPC
    else if not (bit_get buf i) then Ok i
    else find (i + 1)
  in
  let* i = find 0 in
  bit_set buf i true;
  let* () = meta_write t imap_block buf in
  t.free_inodes <- t.free_inodes - 1;
  let cnt = zero_block t in
  encode_counted t.free_inodes cnt;
  let* () = meta_write t imap_cntl_block cnt in
  Ok (i + 1)

let free_inode t ino =
  let* buf = read_map t imap_block "inode allocation map" in
  bit_set buf (ino - 1) false;
  let* () = meta_write t imap_block buf in
  t.free_inodes <- t.free_inodes + 1;
  let cnt = zero_block t in
  encode_counted t.free_inodes cnt;
  meta_write t imap_cntl_block cnt

(* ---- inode access ---------------------------------------------------- *)

let inode_location ino =
  let per = 4096 / inode_size in
  (itable_start + ((ino - 1) / per), (ino - 1) mod per * inode_size)

let read_inode t ino =
  if ino < 1 || ino > total_inodes then Error Errno.EIO
  else
    let blk, off = inode_location ino in
    let* buf = meta_read t blk in
    Ok (decode_inode buf off)

let write_inode t ino i =
  let blk, off = inode_location ino in
  let* buf = meta_read t blk in
  encode_inode i buf off;
  meta_write t blk buf

(* ---- file block mapping (direct + xtree) ----------------------------- *)

(* Read an xtree node; a failed sanity check silently yields an empty
   node, which is how the paper's "blank page returned to the user"
   bug manifests (§5.3). *)
let read_xtree t b =
  let* buf = meta_read t b in
  match decode_xtree buf with
  | Some node -> Ok node
  | None -> Ok (1, [||])

let bmap t inode fblock =
  if fblock < direct_ptrs then Ok inode.direct.(fblock)
  else
    let fb = fblock - direct_ptrs in
    if inode.xtree = 0 then Ok 0
    else
      let* level, ptrs = read_xtree t inode.xtree in
      if level = 1 then Ok (if fb < Array.length ptrs then ptrs.(fb) else 0)
      else begin
        let child_idx = fb / xtree_cap in
        if child_idx >= Array.length ptrs || ptrs.(child_idx) = 0 then Ok 0
        else
          let* _, leaf = read_xtree t ptrs.(child_idx) in
          let i = fb mod xtree_cap in
          Ok (if i < Array.length leaf then leaf.(i) else 0)
      end

let write_xtree t b level ptrs =
  let buf = zero_block t in
  encode_xtree level ptrs buf;
  meta_write t b buf

(* Ensure fblock maps to a block, allocating data blocks and growing
   the xtree (level 1 -> 2) as needed. *)
let bmap_alloc t ino inode fblock =
  if fblock < direct_ptrs then begin
    if inode.direct.(fblock) <> 0 then Ok (inode.direct.(fblock), inode)
    else
      let* b = alloc_block t in
      let direct = Array.copy inode.direct in
      direct.(fblock) <- b;
      let inode = { inode with direct } in
      let* () = write_inode t ino inode in
      Ok (b, inode)
  end
  else begin
    let fb = fblock - direct_ptrs in
    let* inode =
      if inode.xtree <> 0 then Ok inode
      else
        let* xb = alloc_block t in
        let* () = write_xtree t xb 1 [||] in
        let inode = { inode with xtree = xb } in
        let* () = write_inode t ino inode in
        Ok inode
    in
    let* level, ptrs = read_xtree t inode.xtree in
    if level = 1 && fb < xtree_cap then begin
      let ptrs =
        if fb < Array.length ptrs then Array.copy ptrs
        else begin
          let a = Array.make (fb + 1) 0 in
          Array.blit ptrs 0 a 0 (Array.length ptrs);
          a
        end
      in
      if ptrs.(fb) <> 0 then Ok (ptrs.(fb), inode)
      else
        let* b = alloc_block t in
        ptrs.(fb) <- b;
        let* () = write_xtree t inode.xtree 1 ptrs in
        Ok (b, inode)
    end
    else begin
      (* Need (or already have) a two-level tree. *)
      let* level, ptrs =
        if level = 2 then Ok (level, ptrs)
        else begin
          (* Push the existing leaf down a level. *)
          let* nb = alloc_block t in
          let* () = write_xtree t nb 1 ptrs in
          let* () = write_xtree t inode.xtree 2 [| nb |] in
          Ok (2, [| nb |])
        end
      in
      ignore level;
      let ci = fb / xtree_cap in
      if ci >= xtree_cap then Error Errno.EFBIG
      else begin
        let ptrs =
          if ci < Array.length ptrs then Array.copy ptrs
          else begin
            let a = Array.make (ci + 1) 0 in
            Array.blit ptrs 0 a 0 (Array.length ptrs);
            a
          end
        in
        let* child =
          if ptrs.(ci) <> 0 then Ok ptrs.(ci)
          else
            let* nb = alloc_block t in
            let* () = write_xtree t nb 1 [||] in
            ptrs.(ci) <- nb;
            let* () = write_xtree t inode.xtree 2 ptrs in
            Ok nb
        in
        let* _, leaf = read_xtree t child in
        let i = fb mod xtree_cap in
        let leaf =
          if i < Array.length leaf then Array.copy leaf
          else begin
            let a = Array.make (i + 1) 0 in
            Array.blit leaf 0 a 0 (Array.length leaf);
            a
          end
        in
        if leaf.(i) <> 0 then Ok (leaf.(i), inode)
        else
          let* b = alloc_block t in
          leaf.(i) <- b;
          let* () = write_xtree t child 1 leaf in
          Ok (b, inode)
      end
    end
  end

let data_read_block t inode fblock =
  let* b = bmap t inode fblock in
  if b = 0 then Ok (Bytes.make t.bs '\000')
  else if b >= t.num_blocks then begin
    Klog.error t.klog "jfs" "impossible block %d" b;
    Error Errno.EIO
  end
  else meta_read t b (* data reads also go through the generic retry *)

let data_write_block t b data =
  (* Ordered data goes straight home; the error code is dropped. *)
  (match Bcache.write t.cache b data with Ok () -> () | Error _ -> ());
  Ok ()

(* Free file blocks from [from]; the delete-path bug: a failed xtree
   read is ignored completely — no retry result check, no error, the
   pointed-to blocks simply leak and the maps go stale (§5.3). *)
let free_file_from t inode ~from =
  let freed = ref 0 in
  let free_data b =
    if b <> 0 then
      match free_block t b with Ok () -> incr freed | Error _ -> ()
  in
  Array.iteri (fun i b -> if i >= from && b <> 0 then free_data b) inode.direct;
  (if inode.xtree <> 0 then
     match meta_read t inode.xtree with
     | Error _ -> () (* the bug: silently ignored *)
     | Ok buf -> (
         match decode_xtree buf with
         | None -> ()
         | Some (1, ptrs) ->
             Array.iteri
               (fun i b -> if direct_ptrs + i >= from then free_data b)
               ptrs;
             if from <= direct_ptrs then free_data inode.xtree
         | Some (_, children) ->
             Array.iteri
               (fun ci child ->
                 if child <> 0 then
                   match meta_read t child with
                   | Error _ -> ()
                   | Ok cb -> (
                       match decode_xtree cb with
                       | Some (_, leaf) ->
                           Array.iteri
                             (fun i b ->
                               if direct_ptrs + (ci * xtree_cap) + i >= from then
                                 free_data b)
                             leaf;
                           if from <= direct_ptrs then free_data child
                       | None -> ()))
               children;
             if from <= direct_ptrs then free_data inode.xtree));
  let direct = Array.copy inode.direct in
  Array.iteri (fun i _ -> if i >= from then direct.(i) <- 0) direct;
  { inode with direct; xtree = (if from <= direct_ptrs then 0 else inode.xtree) }

(* ---- directories ----------------------------------------------------- *)

let dir_blocks t inode =
  let n = (inode.size + t.bs - 1) / t.bs in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      let* b = bmap t inode i in
      if b = 0 || b >= t.num_blocks then go (i + 1) acc
      else
        let* buf = meta_read t b in
        match decode_dir buf with
        | Some entries -> go (i + 1) ((i, b, entries) :: acc)
        | None ->
            (* Directory sanity check: entry count out of range. *)
            Klog.error t.klog "jfs" "directory block %d fails sanity check" b;
            Error Errno.EUCLEAN
  in
  go 0 []

let dir_entries t inode =
  let* blocks = dir_blocks t inode in
  Ok (List.concat_map (fun (_, _, es) -> es) blocks)

let dir_add t dino dinode name ino =
  let* blocks = dir_blocks t dinode in
  let rec place = function
    | [] ->
        let n = (dinode.size + t.bs - 1) / t.bs in
        let* b, dinode = bmap_alloc t dino dinode n in
        let buf = Bytes.make t.bs '\000' in
        encode_dir [ (name, ino) ] buf;
        let* () = meta_write t b buf in
        write_inode t dino { dinode with size = (n + 1) * t.bs }
    | (_, b, entries) :: rest ->
        if List.length entries >= dir_entry_cap then place rest
        else begin
          let buf = Bytes.make t.bs '\000' in
          encode_dir (entries @ [ (name, ino) ]) buf;
          meta_write t b buf
        end
  in
  place blocks

let dir_remove t _dino dinode name =
  let* blocks = dir_blocks t dinode in
  let rec go = function
    | [] -> Error Errno.ENOENT
    | (_, b, entries) :: rest ->
        if List.mem_assoc name entries then begin
          let buf = Bytes.make t.bs '\000' in
          encode_dir (List.remove_assoc name entries) buf;
          meta_write t b buf
        end
        else go rest
  in
  go blocks

(* ---- resolver -------------------------------------------------------- *)

let resolver_ops t =
  {
    Resolver.lookup =
      (fun dir name ->
        let* di = read_inode t dir in
        if di.kind <> Some Fs.Directory then Error Errno.ENOTDIR
        else
          let* es = dir_entries t di in
          match List.assoc_opt name es with
          | Some i -> Ok i
          | None -> Error Errno.ENOENT);
    kind_of =
      (fun ino ->
        let* i = read_inode t ino in
        match i.kind with Some k -> Ok k | None -> Error Errno.EIO);
    readlink_of =
      (fun ino ->
        let* i = read_inode t ino in
        Ok i.target);
  }

let resolve t ?follow_last path =
  Resolver.resolve (resolver_ops t) ~root:t.root ~cwd:t.cwd ?follow_last path

let resolve_parent t path =
  Resolver.resolve_parent (resolver_ops t) ~root:t.root ~cwd:t.cwd path

(* ---- mkfs / mount ---------------------------------------------------- *)

let mkfs_impl dev =
  let bs = dev.Dev.block_size in
  let num_blocks = dev.Dev.num_blocks in
  let wr b data =
    match dev.Dev.write b data with Ok () -> Ok () | Error _ -> Error Errno.EIO
  in
  let zero = Bytes.make bs '\000' in
  let rec zero_all b =
    if b >= num_blocks then Ok ()
    else
      let* () = wr b zero in
      zero_all (b + 1)
  in
  let* () = zero_all 0 in
  let sb = Bytes.make bs '\000' in
  encode_super num_blocks sb;
  let* () = wr super_primary sb in
  let* () = wr super_secondary sb in
  let ab = Bytes.make bs '\000' in
  encode_aggr ab;
  let* () = wr aggr_primary ab in
  let* () = wr aggr_secondary ab in
  (* Root directory: inode 2 with one dir block. *)
  let root_block = first_data in
  let dirbuf = Bytes.make bs '\000' in
  encode_dir [ (".", root_ino); ("..", root_ino) ] dirbuf;
  let* () = wr root_block dirbuf in
  let it = Bytes.make bs '\000' in
  let root =
    {
      free_inode_slot with
      kind = Some Fs.Directory;
      links = 2;
      perms = 0o755;
      size = bs;
      direct = (let a = Array.make direct_ptrs 0 in a.(0) <- root_block; a);
    }
  in
  encode_inode root it ((root_ino - 1) * inode_size);
  let* () = wr itable_start it in
  (* Maps: everything before first_data plus the root block is in use. *)
  let bm = Bytes.make bs '\000' in
  for b = 0 to root_block do
    bit_set bm b true
  done;
  let* () = wr bmap_block bm in
  let im = Bytes.make bs '\000' in
  bit_set im 0 true;
  bit_set im 1 true;
  let* () = wr imap_block im in
  let free_blocks = num_blocks - root_block - 1 in
  let cnt = Bytes.make bs '\000' in
  encode_counted free_blocks cnt;
  let* () = wr bmap_desc_block cnt in
  let cnt2 = Bytes.make bs '\000' in
  encode_counted (total_inodes - 2) cnt2;
  let* () = wr imap_cntl_block cnt2 in
  let js = Bytes.make bs '\000' in
  Record.encode_jsuper 1 jdata_start js;
  let* () = wr jsuper_block js in
  match dev.Dev.sync () with Ok () -> Ok () | Error _ -> Error Errno.EIO

let recover_journal dev klog =
  Record.recover ~tag:"jfs" ~geo:(jgeo dev.Dev.num_blocks) ~dev ~klog ()

let mount_impl ?(tuning = Jrnl.default_tuning) dev =
  let klog = Klog.create ~clock:dev.Dev.now () in
  (* Every mount-time read here is decode-then-discard, so one scratch
     block covers them all. *)
  let scratch = Bytes.create dev.Dev.block_size in
  (* Primary superblock; the alternate is used after a failed read but
     NOT after a corrupt one — the paper's inconsistency. *)
  let* num_blocks, _aggr =
    match dev.Dev.read_into super_primary scratch with
    | Error _ -> (
        Klog.warn klog "jfs" "primary superblock unreadable; trying alternate";
        match dev.Dev.read_into super_secondary scratch with
        | Error _ ->
            Klog.error klog "jfs" "alternate superblock unreadable too";
            Error Errno.EIO
        | Ok () -> (
            match decode_super scratch with
            | Some v -> Ok v
            | None ->
                Klog.error klog "jfs" "alternate superblock invalid";
                Error Errno.EUCLEAN))
    | Ok () -> (
        match decode_super scratch with
        | Some v -> Ok v
        | None ->
            (* Corrupt primary: mount fails; the copy is not consulted. *)
            Klog.error klog "jfs" "superblock failed sanity check";
            Error Errno.EUCLEAN)
  in
  let* () =
    (* Aggregate inode; its secondary copy is never used (§5.3). *)
    match dev.Dev.read_into aggr_primary scratch with
    | Error _ ->
        Klog.error klog "jfs" "aggregate inode unreadable";
        Error Errno.EIO
    | Ok () -> (
        match decode_aggr num_blocks scratch with
        | Some _ -> Ok ()
        | None ->
            Klog.error klog "jfs" "aggregate inode failed sanity check";
            Error Errno.EUCLEAN)
  in
  let* txid = recover_journal dev klog in
  (* Map descriptors: the equality check. *)
  let* free_blocks =
    match dev.Dev.read_into bmap_desc_block scratch with
    | Error _ ->
        Klog.error klog "jfs" "block map descriptor unreadable";
        Error Errno.EIO
    | Ok () -> (
        match decode_counted scratch with
        | Some v -> Ok v
        | None ->
            Klog.error klog "jfs" "block map descriptor equality check failed";
            Error Errno.EUCLEAN)
  in
  let* free_inodes =
    match dev.Dev.read_into imap_cntl_block scratch with
    | Error _ ->
        Klog.error klog "jfs" "inode map control unreadable";
        Error Errno.EIO
    | Ok () -> (
        match decode_counted scratch with
        | Some v -> Ok v
        | None ->
            Klog.error klog "jfs" "inode map control equality check failed";
            Error Errno.EUCLEAN)
  in
  let cache = Bcache.create ~capacity:512 dev in
  Ok
    {
      dev;
      bs = dev.Dev.block_size;
      klog;
      cache;
      num_blocks;
      jrnl =
        Record.create ~tuning ~tag:"jfs" ~dev ~cache ~klog
          ~kinds:(kind_of_block num_blocks)
          ~geo:(jgeo dev.Dev.num_blocks) ~txid ();
      free_blocks;
      free_inodes;
      fds = Fdtable.create ();
      cwd = root_ino;
      root = root_ino;
      readonly = false;
    }

(* ---- ops ------------------------------------------------------------- *)

let stat_of ino (i : inode) =
  {
    Fs.st_ino = ino;
    st_kind = Option.value ~default:Fs.Regular i.kind;
    st_size = i.size;
    st_links = i.links;
    st_mode = i.perms;
    st_uid = i.uid;
    st_gid = i.gid;
    st_atime = float_of_int i.atime;
    st_mtime = float_of_int i.mtime;
    st_ctime = float_of_int i.ctime;
  }

let guard t = if t.readonly then Error Errno.EROFS else Ok ()

let create_node t path k ~perms ~target =
  let* () = guard t in
  let* dino, name = resolve_parent t path in
  let* dinode = read_inode t dino in
  if dinode.kind <> Some Fs.Directory then Error Errno.ENOTDIR
  else
    let* es = dir_entries t dinode in
    if List.mem_assoc name es then Error Errno.EEXIST
    else begin
      let* ino = alloc_inode t in
      let now = now_seconds t in
      let node =
        {
          free_inode_slot with
          kind = Some k;
          links = (if k = Fs.Directory then 2 else 1);
          perms;
          atime = now;
          mtime = now;
          ctime = now;
          target;
        }
      in
      let* node =
        if k <> Fs.Directory then Ok node
        else begin
          let* b, node = bmap_alloc t ino node 0 in
          let buf = Bytes.make t.bs '\000' in
          encode_dir [ (".", ino); ("..", dino) ] buf;
          let* () = meta_write t b buf in
          Ok { node with size = t.bs }
        end
      in
      let* () = write_inode t ino node in
      let* () = dir_add t dino dinode name ino in
      let* dinode = read_inode t dino in
      let links = if k = Fs.Directory then dinode.links + 1 else dinode.links in
      let* () = write_inode t dino { dinode with links; mtime = now; ctime = now } in
      Ok ino
    end

let remove_common t path ~dir =
  let* () = guard t in
  let* dino, name = resolve_parent t path in
  let* dinode = read_inode t dino in
  let* es = dir_entries t dinode in
  match List.assoc_opt name es with
  | None -> Error Errno.ENOENT
  | Some ino -> (
      let* i = read_inode t ino in
      match (dir, i.kind) with
      | true, k when k <> Some Fs.Directory -> Error Errno.ENOTDIR
      | false, Some Fs.Directory -> Error Errno.EISDIR
      | _ ->
          let* () =
            if not dir then Ok ()
            else
              let* ces = dir_entries t i in
              if List.for_all (fun (n, _) -> n = "." || n = "..") ces then Ok ()
              else Error Errno.ENOTEMPTY
          in
          let now = now_seconds t in
          let* () = dir_remove t dino dinode name in
          let links = i.links - if dir then 2 else 1 in
          if (dir && links <= 1) || ((not dir) && links <= 0) then begin
            let i' = free_file_from t i ~from:0 in
            let* () = write_inode t ino { i' with kind = None; links = 0 } in
            let* () = free_inode t ino in
            let* d = read_inode t dino in
            write_inode t dino
              {
                d with
                links = (if dir then d.links - 1 else d.links);
                mtime = now;
                ctime = now;
              }
          end
          else
            let* () = write_inode t ino { i with links; ctime = now } in
            let* d = read_inode t dino in
            write_inode t dino { d with mtime = now; ctime = now })

(* ---- classifier ------------------------------------------------------ *)

let block_types =
  [
    "inode"; "dir"; "bmap"; "imap"; "internal"; "data"; "super"; "j-super";
    "j-data"; "aggr-inode"; "bmap-desc"; "imap-cntl";
  ]

let classify raw =
  let read b = try Some (raw b) with _ -> None in
  let num_blocks =
    match read super_primary with
    | Some buf -> ( match decode_super buf with Some (n, _) -> n | None -> 0)
    | None -> 0
  in
  if num_blocks = 0 then fun b -> if b = super_primary then "super" else "?"
  else begin
    (* Apply the committed journal records so freshly created structures
       are visible to the walk. *)
    let min_tx, start =
      match read jsuper_block with
      | Some buf -> (
          match Record.decode_jsuper buf with
          | Some (tx, s) -> (tx, s)
          | None -> (0, jdata_start))
      | None -> (0, jdata_start)
    in
    let records = Record.scan_committed ~geo:(jgeo num_blocks) read ~min_tx start in
    let pages = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let page =
          match Hashtbl.find_opt pages r.Record.r_block with
          | Some p -> p
          | None -> (
              match read r.Record.r_block with
              | Some p ->
                  let p = Bytes.copy p in
                  Hashtbl.replace pages r.Record.r_block p;
                  p
              | None ->
                  let p = Bytes.make 4096 '\000' in
                  Hashtbl.replace pages r.Record.r_block p;
                  p)
        in
        if r.Record.r_off + String.length r.Record.r_data <= Bytes.length page
        then
          Bytes.blit_string r.Record.r_data 0 page r.Record.r_off
            (String.length r.Record.r_data))
      records;
    let raw' b =
      match Hashtbl.find_opt pages b with
      | Some p -> Some p
      | None -> read b
    in
    let labels = Hashtbl.create 64 in
    let mark b l = if b >= first_data && b < num_blocks then Hashtbl.replace labels b l in
    let xtree_of b = Option.bind (raw' b) decode_xtree in
    let per = 4096 / inode_size in
    (* Consecutive inodes share an itable block: read each block once. *)
    let last_blk = ref (-1) in
    let last_buf = ref None in
    let itable_buf blk =
      if blk = !last_blk then !last_buf
      else begin
        let r = raw' blk in
        last_blk := blk;
        last_buf := r;
        r
      end
    in
    for ino = 1 to itable_blocks * per do
      let blk, off = inode_location ino in
      match itable_buf blk with
      | None -> ()
      | Some buf when Bytes.get buf off = '\000' -> () (* free: skip decode *)
      | Some buf -> (
          let i = decode_inode buf off in
          match i.kind with
          | None | Some Fs.Symlink -> ()
          | Some k ->
              let leaf_label = if k = Fs.Directory then "dir" else "data" in
              Array.iter (fun p -> if p > 0 then mark p leaf_label) i.direct;
              if i.xtree > 0 then begin
                mark i.xtree "internal";
                match xtree_of i.xtree with
                | Some (1, ptrs) ->
                    Array.iter (fun p -> if p > 0 then mark p leaf_label) ptrs
                | Some (_, children) ->
                    Array.iter
                      (fun c ->
                        if c > 0 then begin
                          mark c "internal";
                          match xtree_of c with
                          | Some (_, leaf) ->
                              Array.iter
                                (fun p -> if p > 0 then mark p leaf_label)
                                leaf
                          | None -> ()
                        end)
                      children
                | None -> ()
              end)
    done;
    fun b ->
      if b = super_primary then "super"
      else if b = super_secondary then "alt-super"
      else if b = aggr_primary then "aggr-inode"
      else if b = aggr_secondary then "aggr-2nd"
      else if b = bmap_desc_block then "bmap-desc"
      else if b = imap_cntl_block then "imap-cntl"
      else if b = bmap_block then "bmap"
      else if b = imap_block then "imap"
      else if b = jsuper_block then "j-super"
      else if b >= jdata_start && b < jdata_start + journal_len then "j-data"
      else if b >= itable_start && b < itable_start + itable_blocks then "inode"
      else match Hashtbl.find_opt labels b with Some l -> l | None -> "?"
  end

let corrupt_field ty =
  match ty with
  | "super" | "j-super" | "aggr-inode" ->
      Some (fun buf -> Codec.write_u32 buf 0 0xDEAD)
  | "bmap-desc" | "imap-cntl" ->
      (* Break the equality check: bump one of the twin counters. *)
      Some (fun buf -> Codec.write_u32 buf 0 (Codec.read_u32 buf 0 + 7))
  | "internal" ->
      (* Entry count beyond the cap: the sanity check trips and JFS
         hands back a blank page. *)
      Some (fun buf -> Bytes.set_uint16_le buf 0 999)
  | "dir" -> Some (fun buf -> Bytes.set_uint16_le buf 0 9999)
  | "inode" ->
      Some
        (fun buf ->
          let per = Bytes.length buf / inode_size in
          for i = 0 to per - 1 do
            let off = i * inode_size in
            if Char.code (Bytes.get buf off) <> 0 then
              (* Garbage direct pointers: plausible inode, wrong blocks. *)
              Codec.write_u32 buf (off + 28) 0xFFFFF0
          done)
  | "bmap" | "imap" -> Some (fun buf -> Bytes.fill buf 0 (Bytes.length buf) '\xFF')
  | _ -> None

(* ---- brand ----------------------------------------------------------- *)

let brand_with ~tuning =
  let module M = struct
    let fs_name = "jfs"
    let block_types = block_types
    let classifier = classify
    let corrupt_field = corrupt_field

    type t = state

    let mkfs = mkfs_impl
    let mount dev = mount_impl ~tuning dev

    let unmount t =
      let* () = commit t in
      checkpoint t;
      ignore (t.dev.Dev.sync ());
      Ok ()

    let klog t = t.klog
    let is_readonly t = t.readonly

    let access t path =
      let* _ = resolve t path in
      Ok ()

    let chdir t path =
      let* ino = resolve t path in
      let* i = read_inode t ino in
      if i.kind = Some Fs.Directory then begin
        t.cwd <- ino;
        Ok ()
      end
      else Error Errno.ENOTDIR

    let chroot t path =
      let* ino = resolve t path in
      let* i = read_inode t ino in
      if i.kind = Some Fs.Directory then begin
        t.root <- ino;
        t.cwd <- ino;
        Ok ()
      end
      else Error Errno.ENOTDIR

    let stat t path =
      let* ino = resolve t path in
      let* i = read_inode t ino in
      Ok (stat_of ino i)

    let lstat t path =
      let* ino = resolve t ~follow_last:false path in
      let* i = read_inode t ino in
      Ok (stat_of ino i)

    let statfs t =
      Ok
        {
          Fs.f_blocks = t.num_blocks - first_data;
          f_bfree = t.free_blocks;
          f_files = total_inodes;
          f_ffree = t.free_inodes;
          f_bsize = t.bs;
        }

    let open_ t path mode =
      let* ino = resolve t path in
      let* i = read_inode t ino in
      match i.kind with
      | None -> Error Errno.EIO
      | Some Fs.Directory when mode <> Fs.Rd -> Error Errno.EISDIR
      | Some _ -> Ok (Fdtable.alloc t.fds { fd_ino = ino; fd_mode = mode })

    let close t fd = Fdtable.close t.fds fd

    let creat t path =
      let* ino = create_node t path Fs.Regular ~perms:0o644 ~target:"" in
      Ok (Fdtable.alloc t.fds { fd_ino = ino; fd_mode = Fs.Rdwr })

    let read t fd ~off ~len =
      let* { fd_ino; _ } = Fdtable.find t.fds fd in
      let* i = read_inode t fd_ino in
      let len = max 0 (min len (i.size - off)) in
      if len = 0 then Ok Bytes.empty
      else begin
        let out = Bytes.create len in
        let rec fill pos =
          if pos >= len then Ok ()
          else begin
            let fblock = (off + pos) / t.bs in
            let boff = (off + pos) mod t.bs in
            let n = min (t.bs - boff) (len - pos) in
            let* data = data_read_block t i fblock in
            Bytes.blit data boff out pos n;
            fill (pos + n)
          end
        in
        let* () = fill 0 in
        Ok out
      end

    let write t fd ~off data =
      let* () = guard t in
      let* { fd_ino; fd_mode } = Fdtable.find t.fds fd in
      if fd_mode = Fs.Rd then Error Errno.EBADF
      else begin
        let* i0 = read_inode t fd_ino in
        let len = Bytes.length data in
        let inode = ref i0 in
        let rec put pos =
          if pos >= len then Ok ()
          else begin
            let fblock = (off + pos) / t.bs in
            let boff = (off + pos) mod t.bs in
            let n = min (t.bs - boff) (len - pos) in
            let* existing = bmap t !inode fblock in
            let* b, inode' = bmap_alloc t fd_ino !inode fblock in
            inode := inode';
            let* buf =
              if boff = 0 && n = t.bs then Ok (Bytes.sub data pos n)
              else
                let* old = data_read_block t !inode fblock in
                (* A freshly mapped block still holds whatever its last
                   owner wrote; splicing into that leaks freed data. The
                   read stays (the request stream is part of the failure
                   fingerprint) but the baseline must be zeros. *)
                let old = if existing = 0 then zero_block t else old in
                Bytes.blit data pos old boff n;
                Ok old
            in
            let* () = data_write_block t b buf in
            put (pos + n)
          end
        in
        let* () = put 0 in
        let now = now_seconds t in
        let* () =
          write_inode t fd_ino
            { !inode with size = max i0.size (off + len); mtime = now; ctime = now }
        in
        Ok len
      end

    let readlink t path =
      let* ino = resolve t ~follow_last:false path in
      let* i = read_inode t ino in
      if i.kind = Some Fs.Symlink then Ok i.target else Error Errno.EINVAL

    let getdirentries t path =
      let* ino = resolve t path in
      let* i = read_inode t ino in
      if i.kind <> Some Fs.Directory then Error Errno.ENOTDIR
      else dir_entries t i

    let link t existing newpath =
      let* () = guard t in
      let* ino = resolve t existing in
      let* i = read_inode t ino in
      if i.kind = Some Fs.Directory then Error Errno.EISDIR
      else
        let* dino, name = resolve_parent t newpath in
        let* dinode = read_inode t dino in
        let* es = dir_entries t dinode in
        if List.mem_assoc name es then Error Errno.EEXIST
        else
          let* () = dir_add t dino dinode name ino in
          write_inode t ino { i with links = i.links + 1; ctime = now_seconds t }

    let symlink t target linkpath =
      let* _ = create_node t linkpath Fs.Symlink ~perms:0o777 ~target in
      Ok ()

    let mkdir t path =
      let* _ = create_node t path Fs.Directory ~perms:0o755 ~target:"" in
      Ok ()

    let rmdir t path = remove_common t path ~dir:true
    let unlink t path = remove_common t path ~dir:false

    let rename t src dst =
      let* () = guard t in
      let* sdino, sname = resolve_parent t src in
      let* sdinode = read_inode t sdino in
      let* ses = dir_entries t sdinode in
      match List.assoc_opt sname ses with
      | None -> Error Errno.ENOENT
      | Some ino ->
          let* ddino, dname = resolve_parent t dst in
          let* ddinode = read_inode t ddino in
          let* des = dir_entries t ddinode in
          let* () =
            match List.assoc_opt dname des with
            | Some old when old <> ino -> (
                let* oi = read_inode t old in
                match oi.kind with
                | Some Fs.Directory -> Error Errno.EISDIR
                | Some _ | None -> remove_common t dst ~dir:false)
            | Some _ | None -> Ok ()
          in
          let* sdinode = read_inode t sdino in
          let* () = dir_remove t sdino sdinode sname in
          let* ddinode = read_inode t ddino in
          let* () = dir_add t ddino ddinode dname ino in
          let* i = read_inode t ino in
          if i.kind = Some Fs.Directory && sdino <> ddino then begin
            let* blocks = dir_blocks t i in
            let* () =
              match blocks with
              | (_, b, entries) :: _ ->
                  let entries' =
                    List.map
                      (fun (n, e) -> if n = ".." then (n, ddino) else (n, e))
                      entries
                  in
                  let buf = Bytes.make t.bs '\000' in
                  encode_dir entries' buf;
                  meta_write t b buf
              | [] -> Ok ()
            in
            let* sd = read_inode t sdino in
            let* () = write_inode t sdino { sd with links = sd.links - 1 } in
            let* dd = read_inode t ddino in
            write_inode t ddino { dd with links = dd.links + 1 }
          end
          else Ok ()

    let truncate t path size =
      let* () = guard t in
      let* ino = resolve t path in
      let* i = read_inode t ino in
      if i.kind = Some Fs.Directory then Error Errno.EISDIR
      else begin
        let keep = (size + t.bs - 1) / t.bs in
        let i' = free_file_from t i ~from:keep in
        (* Zero the tail of a partially kept block. *)
        let* () =
          if size >= i.size || size mod t.bs = 0 then Ok ()
          else
            let* b = bmap t i' (size / t.bs) in
            if b = 0 then Ok ()
            else
              let* old = data_read_block t i' (size / t.bs) in
              Bytes.fill old (size mod t.bs) (t.bs - (size mod t.bs)) '\000';
              data_write_block t b old
        in
        let now = now_seconds t in
        write_inode t ino { i' with size; mtime = now; ctime = now }
      end

    let chmod t path perms =
      let* () = guard t in
      let* ino = resolve t path in
      let* i = read_inode t ino in
      write_inode t ino { i with perms; ctime = now_seconds t }

    let chown t path uid gid =
      let* () = guard t in
      let* ino = resolve t path in
      let* i = read_inode t ino in
      write_inode t ino { i with uid; gid; ctime = now_seconds t }

    let utimes t path atime mtime =
      let* () = guard t in
      let* ino = resolve t path in
      let* i = read_inode t ino in
      write_inode t ino
        { i with atime = int_of_float atime; mtime = int_of_float mtime }

    let fsync t fd =
      let* _ = Fdtable.find t.fds fd in
      commit t

    let sync t =
      let* () = commit t in
      checkpoint t;
      Ok ()
  end in
  Fs.Brand (module M)

let brand = brand_with ~tuning:Jrnl.default_tuning
