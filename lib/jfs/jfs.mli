(** The IBM JFS model: record-level journaling, aggregate inodes, block
    and inode allocation maps with control pages — and the paper's
    "kitchen sink" failure policy (§5.3): error codes on reads with a
    single generic-layer retry, write errors ignored except for the
    journal superblock (which crashes the system), an alternate
    superblock used after a failed {e read} but not after a corrupt one,
    secondary aggregate-inode copies that are never used, a blank page
    returned when an internal tree block fails its sanity check, and a
    delete-path bug that ignores a read error outright. The redundant
    copies sit right next to their primaries, as the paper criticizes. *)

val brand : Iron_vfs.Fs.brand

val brand_with : tuning:Iron_jrnl.Jrnl.tuning -> Iron_vfs.Fs.brand
(** [brand] with non-default group-commit/checkpoint tuning handed to
    the record journal at mount (the refinement tests exercise batched
    configurations this way). *)

val block_types : string list
val classify : (int -> bytes) -> int -> string
