(* The fingerprinting engine, split into three layers (see driver.mli):

     spec       Experiment.plan — pure enumeration of the campaign
     executor   prepare + run_job — one job, one private device stack
     aggregator aggregate — fold observations into matrices, spec order

   The executor is embarrassingly parallel: every job overlays its own
   copy-on-write view of a shared (immutable) image, builds its own
   injector and file-system instance, and returns a plain record.
   Worker count therefore cannot change the output — the determinism
   contract the tests pin down.

   Hot-path discipline (this is the loop the whole reproduction's
   throughput hangs on — ~2220 jobs per Figure-2 sweep):

   - images are COW ({!Iron_disk.Cow}): restoring a job's disk drops
     an overlay (O(dirty)) instead of blitting 8 MiB;
   - dry traces are frozen into arrays with a precomputed
     (direction, block type) -> target block index, so target lookup
     is O(1) and jobs without a target are resolved at spec time and
     never enter the worker pool;
   - each worker domain keeps one scratch COW device and (in the
     unobserved case) one injector, reused across jobs;
   - reads below the block cache go through the zero-copy
     [Dev.read_into] path. *)

module Memdisk = Iron_disk.Memdisk
module Cow = Iron_disk.Cow
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Obs = Iron_obs.Obs

type cell = {
  applicable : bool;
  fired : int;
  detection : Taxonomy.detection list;
  recovery : Taxonomy.recovery list;
  note : string;
}

let empty_cell =
  { applicable = false; fired = 0; detection = []; recovery = []; note = "" }

type matrix = {
  fs_name : string;
  fault : Taxonomy.fault_kind;
  rows : string list;
  cols : char list;
  cell : string -> char -> cell;
}

type stats = {
  jobs_total : int;
  jobs_scheduled : int;
  jobs_applicable : int;
  jobs_fired : int;
  faults_fired : int;
  workers : int;
  wall_s : float;
}

(* Campaign observability, split along the determinism boundary:
   [metrics]/[spans] are keyed on simulated time and merged in spec
   order, so they are byte-stable across worker counts; [exec] holds
   wall-clock executor telemetry (pool queue/run histograms) and is
   the one part allowed to vary run to run. *)
type observed = {
  metrics : Obs.snapshot;
  spans : Obs.span list;
  spans_dropped : int;
  exec : Obs.snapshot;
}

type report = {
  name : string;
  block_types : string list;
  matrices : matrix list;
  stats : stats;
  observed : observed option;
}

(* What we could observe from one faulted run (§4.3's visible outputs). *)
type observation = {
  api : (unit, Errno.t) result;
  panicked : bool;
  readonly : bool;
  mount_failed : bool;
  klog : Klog.entry list;
  verify_failed : bool;
}

(* ------------------------------------------------------------------ *)
(* Executor: running one workload against a (possibly faulty) device   *)
(* ------------------------------------------------------------------ *)

(* [arm] is invoked at the start of the fault window; the injector's
   trace is cleared there too, so the trace covers exactly the window. *)
let run_workload brand inj dev (w : Workload.t) ~arm =
  let catch_panic f =
    try (f (), false) with Klog.Panic _ -> (Error Errno.EIO, true)
  in
  let klog_of (Fs.Boxed ((module F), t)) = Klog.entries (F.klog t) in
  let ro_of (Fs.Boxed ((module F), t)) = F.is_readonly t in
  let quiet_unmount (Fs.Boxed ((module F), t)) =
    try ignore (F.unmount t) with Klog.Panic _ -> ()
  in
  match w.Workload.kind with
  | Workload.Ops -> (
      match Fs.mount brand dev with
      | Error e ->
          {
            api = Error e;
            panicked = false;
            readonly = false;
            mount_failed = true;
            klog = [];
            verify_failed = false;
          }
      | Ok boxed ->
          arm ();
          Fault.clear_trace inj;
          let api, panicked = catch_panic (fun () -> w.Workload.run boxed) in
          let verify_failed =
            (not panicked) && api = Ok ()
            &&
            match w.Workload.verify with
            | Some v -> ( try not (v boxed) with Klog.Panic _ -> false)
            | None -> false
          in
          (* A panicked kernel does not get to unmount; otherwise the
             unmount (with its checkpoint) is part of the observation
             window — that is where ignored write errors surface. *)
          let panicked =
            panicked
            ||
            if panicked then false
            else (
              try
                quiet_unmount boxed;
                false
              with Klog.Panic _ -> true)
          in
          {
            api;
            panicked;
            readonly = ro_of boxed;
            mount_failed = false;
            klog = klog_of boxed;
            verify_failed;
          })
  | Workload.Umount_op -> (
      match Fs.mount brand dev with
      | Error e ->
          {
            api = Error e;
            panicked = false;
            readonly = false;
            mount_failed = true;
            klog = [];
            verify_failed = false;
          }
      | Ok (Fs.Boxed ((module F), t) as boxed) ->
          let _pre, _ = catch_panic (fun () -> w.Workload.run boxed) in
          arm ();
          Fault.clear_trace inj;
          let api, panicked = catch_panic (fun () -> F.unmount t) in
          {
            api;
            panicked;
            readonly = F.is_readonly t;
            mount_failed = false;
            klog = Klog.entries (F.klog t);
            verify_failed = false;
          })
  | Workload.Mount_op | Workload.Recovery_op -> (
      arm ();
      Fault.clear_trace inj;
      match catch_panic (fun () -> Result.map (fun b -> `Mounted b) (Fs.mount brand dev)) with
      | Ok (`Mounted boxed), false ->
          let obs =
            {
              api = Ok ();
              panicked = false;
              readonly = ro_of boxed;
              mount_failed = false;
              klog = klog_of boxed;
              verify_failed = false;
            }
          in
          quiet_unmount boxed;
          obs
      | Error e, panicked ->
          {
            api = Error e;
            panicked;
            readonly = false;
            mount_failed = true;
            klog = [];
            verify_failed = false;
          }
      | Ok (`Mounted _), true -> assert false)

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

(* Allocation-free substring scan; [needle] is expected lowercase. *)
let contains_sub ~needle hay =
  let nlen = String.length needle and hlen = String.length hay in
  let limit = hlen - nlen in
  let rec matches i j =
    j = nlen || (hay.[i + j] = needle.[j] && matches i (j + 1))
  in
  let rec at i = i <= limit && (matches i 0 || at (i + 1)) in
  nlen = 0 || at 0

(* Each message is lowercased once (not once per word per entry, as an
   earlier version did) and then scanned once per word. *)
let klog_mentions klog words =
  List.exists
    (fun (e : Klog.entry) ->
      let msg = String.lowercase_ascii e.Klog.message in
      List.exists (fun word -> contains_sub ~needle:word msg) words)
    klog

let infer fault (obs : observation) trace target =
  let fired =
    List.length
      (List.filter
         (fun (e : Fault.event) ->
           e.Fault.block = target
           &&
           match e.Fault.outcome with
           | Fault.Io_error _ -> fault <> Taxonomy.Corruption
           | Fault.Io_corrupted -> fault = Taxonomy.Corruption
           | Fault.Io_ok -> false)
         trace)
  in
  if fired = 0 then
    { applicable = true; fired = 0; detection = []; recovery = []; note = "no-trigger" }
  else begin
    let klog_errors =
      List.exists (fun (e : Klog.entry) -> e.Klog.level = Klog.Error) obs.klog
      || List.exists (fun (e : Klog.entry) -> e.Klog.level = Klog.Warning) obs.klog
    in

    (* Routine operation also touches replica and parity blocks (they
       are written on every update), so trace presence is not evidence
       of recovery; the file system's own recovery messages are. *)
    let redundancy_access =
      klog_mentions obs.klog
        [ "replica"; "parity"; "alternate"; "recovered from copy" ]
    in
    (* Checksum machinery reads its tables on every verified access, so
       trace presence alone is not evidence; the mismatch message is. *)
    let checksum_detected = klog_mentions obs.klog [ "checksum" ] in
    let reacted =
      obs.api <> Ok () || obs.panicked || obs.readonly || obs.mount_failed
      || klog_errors || redundancy_access
    in
    let detection =
      match fault with
      | Taxonomy.Read_failure | Taxonomy.Write_failure ->
          if reacted then [ Taxonomy.DErrorCode ] else [ Taxonomy.DZero ]
      | Taxonomy.Corruption ->
          if checksum_detected then [ Taxonomy.DRedundancy ]
          else if reacted then [ Taxonomy.DSanity ]
          else [ Taxonomy.DZero ]
    in
    let recovery = ref [] in
    let add r = if not (List.mem r !recovery) then recovery := r :: !recovery in
    (* Retry = the same failed request reissued back-to-back. Distant
       repeats (the same block written by two different checkpoints,
       say) are independent uses, not retries. (Corrupted reads succeed,
       so repeats there are ordinary re-reads, not retries.) *)
    (match fault with
    | Taxonomy.Read_failure | Taxonomy.Write_failure ->
        let failed_seqs =
          List.filter_map
            (fun (e : Fault.event) ->
              match e.Fault.outcome with
              | Fault.Io_error _ when e.Fault.block = target -> Some e.Fault.seq
              | Fault.Io_error _ | Fault.Io_ok | Fault.Io_corrupted -> None)
            trace
        in
        let rec adjacent = function
          | a :: (b :: _ as rest) -> b - a <= 1 || adjacent rest
          | [ _ ] | [] -> false
        in
        if adjacent failed_seqs then add Taxonomy.RRetry
    | Taxonomy.Corruption -> ());
    if redundancy_access then add Taxonomy.RRedundancy;
    if obs.panicked || obs.readonly || obs.mount_failed then add Taxonomy.RStop;
    (match obs.api with Error _ when not obs.panicked -> add Taxonomy.RPropagate | _ -> ());
    if obs.verify_failed then add Taxonomy.RGuess;
    if klog_mentions obs.klog [ "repair" ] then add Taxonomy.RRepair;
    if klog_mentions obs.klog [ "remapped" ] then add Taxonomy.RRemap;
    let recovery =
      match !recovery with [] -> [ Taxonomy.RZero ] | rs -> List.rev rs
    in
    let note =
      match obs.api with
      | Ok () -> if obs.panicked then "panic" else "ok"
      | Error e -> Errno.to_string e
    in
    { applicable = true; fired; detection; recovery; note }
  end

(* ------------------------------------------------------------------ *)
(* Executor: prepared campaign context (shared, immutable after build) *)
(* ------------------------------------------------------------------ *)

(* Per workload column, the frozen outcome of one fault-free dry run:
   the labelled I/O trace as a plain array, the block→type oracle as a
   plain string array, and an index from (direction, block type) to
   the first matching block — the job's fault target. None of it is
   mutated once [prepare] returns, which is what makes sharing it
   across worker domains safe. *)
type dry = {
  trace : Fault.event array;
  labels : string array;
  targets : (Fault.direction * string, int) Hashtbl.t;
}

(* [base]/[crash] are frozen COW images each job overlays with its
   private scratch device; restoring one is O(blocks the previous job
   dirtied), not O(volume size). *)
type prepared = {
  base : Cow.image;
  crash : Cow.image;
  dry : (char, dry) Hashtbl.t;
}

let fresh_cow ~num_blocks ~seed =
  let cow =
    Cow.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = num_blocks; seed }
      ()
  in
  Cow.set_time_model cow false;
  cow

let image_for prepared (w : Workload.t) =
  match w.Workload.kind with
  | Workload.Recovery_op -> prepared.crash
  | Workload.Ops | Workload.Mount_op | Workload.Umount_op -> prepared.base

let want_dir = function
  | Taxonomy.Read_failure | Taxonomy.Corruption -> Fault.Read
  | Taxonomy.Write_failure -> Fault.Write

(* O(1) target lookup: the block the job's fault will be armed on, or
   [None] when the dry run never touched a block of that type in that
   direction — decided at spec time, before anything is scheduled. *)
let target_for prepared (job : Experiment.job) =
  match Hashtbl.find_opt prepared.dry job.Experiment.workload with
  | None -> None
  | Some d ->
      Hashtbl.find_opt d.targets
        (want_dir job.Experiment.fault, job.Experiment.block_type)

(* Sequential phase: build the base and crash images, then dry-run each
   workload once to learn its labelled I/O trace. This is ~1 run per
   workload vs ~|block types| × |faults| runs per workload in the
   parallel phase, so it is not worth parallelizing. *)
let prepare_uncached ?obs (c : Experiment.t) =
  (* With a context, the whole phase runs with it ambient (so journal
     spans from deep inside the file systems land here) and the device
     stack is instrumented: cow -> injector(obs) -> Dev.observe. *)
  let instrument f =
    match obs with
    | None -> f ()
    | Some o ->
        Obs.with_ambient o (fun () ->
            Obs.span o ~subsystem:"driver" "prepare" f)
  in
  instrument @@ fun () ->
  let (Fs.Brand (module F)) = c.Experiment.brand in
  let brand = c.Experiment.brand in
  let num_blocks = c.Experiment.num_blocks in
  let cow = fresh_cow ~num_blocks ~seed:c.Experiment.seed in
  let inj = Fault.create ?obs (Cow.dev cow) in
  let dev = Fault.dev inj in
  let dev =
    match obs with None -> dev | Some o -> Iron_disk.Dev.observe o dev
  in
  (* Base image: mkfs + fixture, cleanly unmounted. *)
  (match Fs.mkfs brand dev with
  | Ok () -> ()
  | Error e -> failwith ("fingerprint: mkfs failed: " ^ Errno.to_string e));
  (match Fs.mount brand dev with
  | Error e -> failwith ("fingerprint: mount failed: " ^ Errno.to_string e)
  | Ok (Fs.Boxed ((module M), t) as boxed) -> (
      (match Workload.fixture boxed with
      | Ok () -> ()
      | Error e -> failwith ("fingerprint: fixture failed: " ^ Errno.to_string e));
      match M.unmount t with
      | Ok () -> ()
      | Error e -> failwith ("fingerprint: unmount failed: " ^ Errno.to_string e)));
  let base = Cow.snapshot cow in
  (* Crash image for the recovery column. *)
  (match Fs.mount brand dev with
  | Error e -> failwith ("fingerprint: remount failed: " ^ Errno.to_string e)
  | Ok boxed -> (
      match Workload.crash_prep boxed with
      | Ok () -> () (* instance abandoned: this is the crash *)
      | Error e -> failwith ("fingerprint: crash prep failed: " ^ Errno.to_string e)));
  let crash = Cow.snapshot cow in
  let image_for_kind (w : Workload.t) =
    match w.Workload.kind with
    | Workload.Recovery_op -> crash
    | Workload.Ops | Workload.Mount_op | Workload.Umount_op -> base
  in
  (* Pre-workload labels depend only on the starting image, which is
     the same [base] (or [crash]) for every column: freeze each image's
     oracle once instead of rebuilding it per dry run. *)
  let labels_of_image img =
    Cow.restore cow img;
    let cls = F.classifier (Cow.peek cow) in
    Array.init num_blocks cls
  in
  let base_labels = labels_of_image base in
  let crash_labels = if crash == base then base_labels else labels_of_image crash in
  (* Dry runs: learn, per workload, the labelled I/O trace; freeze it
     and index the fault targets. *)
  let dry = Hashtbl.create 32 in
  List.iter
    (fun col ->
      let w = Workload.find col in
      let img = image_for_kind w in
      let pre = if img == crash then crash_labels else base_labels in
      Cow.restore cow img;
      Fault.disarm_all inj;
      Fault.clear_trace inj;
      let _obs = run_workload brand inj dev w ~arm:(fun () -> ()) in
      let post = F.classifier (Cow.peek cow) in
      (* Freeze the combined oracle into a pure table. *)
      let labels =
        Array.init num_blocks (fun b ->
            let l = post b in
            if l = "?" then pre.(b) else l)
      in
      let trace =
        Array.of_list
          (List.map
             (fun (e : Fault.event) ->
               { e with Fault.label = labels.(e.Fault.block) })
             (Fault.trace inj))
      in
      let targets = Hashtbl.create 64 in
      Array.iter
        (fun (e : Fault.event) ->
          let key = (e.Fault.dir, e.Fault.label) in
          if not (Hashtbl.mem targets key) then
            Hashtbl.add targets key e.Fault.block)
        trace;
      Hashtbl.replace dry col { trace; labels; targets })
    c.Experiment.cols;
  { base; crash; dry }

(* Campaigns on the same brand and geometry share one [prepared]: the
   images and dry traces are a pure function of (brand, num_blocks,
   seed, columns) — workload definitions are static — and [prepared]
   is immutable once built, so sharing it is exactly as safe as
   sharing it across worker domains already was. The key holds the
   brand VALUE (physical identity), never its name: differently tuned
   variants can share a name but never a brand value. Observed
   campaigns bypass the cache so their prepare-phase spans and device
   metrics stay exact. *)
let prep_cache : ((Fs.brand * int * int * char list) * prepared) list ref =
  ref []

let prep_mutex = Mutex.create ()
let prep_cache_cap = 32

let prepare ?obs (c : Experiment.t) =
  match obs with
  | Some _ -> prepare_uncached ?obs c
  | None -> (
      let brand = c.Experiment.brand in
      let nb = c.Experiment.num_blocks in
      let seed = c.Experiment.seed in
      let cols = c.Experiment.cols in
      let hit =
        Mutex.protect prep_mutex (fun () ->
            List.find_opt
              (fun ((b, n, s, cl), _) ->
                b == brand && n = nb && s = seed && cl = cols)
              !prep_cache)
      in
      match hit with
      | Some (_, p) -> p
      | None ->
          let p = prepare_uncached c in
          Mutex.protect prep_mutex (fun () ->
              if List.length !prep_cache >= prep_cache_cap then
                prep_cache := [];
              prep_cache := ((brand, nb, seed, cols), p) :: !prep_cache);
          p)

(* Each worker domain keeps one scratch COW device and one injector,
   reused across jobs ([Cow.restore] gives a job exactly the image it
   asked for, in O(dirty)). Without the reuse, every job's device
   stack hammers the shared major heap and the parallel run is slower
   than the serial one. Keyed by geometry so campaigns with different
   [num_blocks] do not mix. *)
type scratch = { s_cow : Cow.t; s_inj : Fault.t; s_dev : Iron_disk.Dev.t }

let scratch_slot : (int * scratch) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch ~num_blocks ~seed =
  let slot = Domain.DLS.get scratch_slot in
  match !slot with
  | Some (nb, s) when nb = num_blocks -> s
  | Some _ | None ->
      let cow = fresh_cow ~num_blocks ~seed in
      let inj = Fault.create (Cow.dev cow) in
      let s = { s_cow = cow; s_inj = inj; s_dev = Fault.dev inj } in
      slot := Some (num_blocks, s);
      s

(* One job, one private device stack: overlay this domain's scratch
   COW device on the job's image, arm exactly one fault, run, infer.
   Self-contained and re-entrant — this is the unit the domain pool
   schedules. [target] comes from the spec-time index. *)
let run_armed ?obs prepared (c : Experiment.t) (job : Experiment.job) ~target =
  let (Fs.Brand (module F)) = c.Experiment.brand in
  let w = Workload.find job.Experiment.workload in
  let labels = (Hashtbl.find prepared.dry job.Experiment.workload).labels in
  let s = scratch ~num_blocks:c.Experiment.num_blocks ~seed:job.Experiment.seed in
  let cow = s.s_cow in
  (* Unobserved jobs reuse the scratch injector; an observed job needs
     a private one with its context baked in (exactly what the
     pre-reuse executor built per job). *)
  let inj, dev =
    match obs with
    | None ->
        Fault.disarm_all s.s_inj;
        Fault.clear_trace s.s_inj;
        (s.s_inj, s.s_dev)
    | Some o ->
        let inj = Fault.create ~obs:o (Cow.dev cow) in
        (inj, Iron_disk.Dev.observe o (Fault.dev inj))
  in
  Cow.restore cow (image_for prepared w);
  Fault.set_classifier inj (fun b ->
      if b >= 0 && b < Array.length labels then labels.(b) else "?");
  let kind =
    match job.Experiment.fault with
    | Taxonomy.Read_failure -> Fault.Fail_read
    | Taxonomy.Write_failure -> Fault.Fail_write
    | Taxonomy.Corruption ->
        Fault.Corrupt
          (match F.corrupt_field job.Experiment.block_type with
          | Some tweak -> Fault.Tweak tweak
          | None -> Fault.Noise (job.Experiment.seed lxor target lxor 0xBAD))
  in
  let arm () =
    ignore
      (Fault.arm inj
         (Fault.rule ~persistence:c.Experiment.persistence (Fault.Block target)
            kind))
  in
  let brand = c.Experiment.brand in
  let obs_run = run_workload brand inj dev w ~arm in
  let ftrace = Fault.trace inj in
  (* Speculative restore for the next job: consecutive jobs in a chunk
     almost always run the same workload on the same image, so dropping
     this job's overlay now leaves the scratch device already clean and
     based on the right image — the next job's [Cow.restore] is then a
     no-op rebase instead of an O(dirty) teardown on its critical
     path. A wrong guess costs nothing: restore to a different image is
     the same O(dirty) work either way. *)
  Cow.restore cow (image_for prepared w);
  infer job.Experiment.fault obs_run ftrace target

(* The public per-job entry: resolve the target through the index and
   run, under a per-job span when observed. Kept for no-target jobs so
   an observed campaign emits exactly one [driver.job] span per spec
   job whether or not the job was worth scheduling. *)
let run_job ?obs prepared (c : Experiment.t) (job : Experiment.job) =
  let instrument f =
    match obs with
    | None -> f ()
    | Some o ->
        Obs.with_ambient o (fun () ->
            Obs.span o ~subsystem:"driver" "job" f)
  in
  instrument @@ fun () ->
  match target_for prepared job with
  | None -> empty_cell
  | Some target -> run_armed ?obs prepared c job ~target

(* ------------------------------------------------------------------ *)
(* Aggregator                                                          *)
(* ------------------------------------------------------------------ *)

(* Fold per-job cells (in spec order — the pool slots results by job
   index) into the Figure-2/3 matrices. Worker count and completion
   order cannot appear anywhere in the output; only [stats] mentions
   the execution (and the renderers never print it). *)
let aggregate (c : Experiment.t) ~workers ~scheduled ~wall_s cells =
  let (Fs.Brand (module F)) = c.Experiment.brand in
  let results = Hashtbl.create 256 in
  List.iter2
    (fun (job : Experiment.job) cell ->
      Hashtbl.replace results
        (job.Experiment.fault, job.Experiment.block_type, job.Experiment.workload)
        cell)
    c.Experiment.jobs cells;
  let matrices =
    List.map
      (fun fault ->
        {
          fs_name = F.fs_name;
          fault;
          rows = c.Experiment.block_types;
          cols = c.Experiment.cols;
          cell =
            (fun row col ->
              match Hashtbl.find_opt results (fault, row, col) with
              | Some cl -> cl
              | None -> empty_cell);
        })
      c.Experiment.faults
  in
  let stats =
    List.fold_left
      (fun s (cl : cell) ->
        {
          s with
          jobs_applicable = (s.jobs_applicable + if cl.applicable then 1 else 0);
          jobs_fired = (s.jobs_fired + if cl.fired > 0 then 1 else 0);
          faults_fired = s.faults_fired + cl.fired;
        })
      {
        jobs_total = Experiment.total c;
        jobs_scheduled = scheduled;
        jobs_applicable = 0;
        jobs_fired = 0;
        faults_fired = 0;
        workers;
        wall_s;
      }
      cells
  in
  {
    name = F.fs_name;
    block_types = c.Experiment.block_types;
    matrices;
    stats;
    observed = None;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

(* Spec-time pruning: resolve every job's target through the index and
   only send the armed ones to the pool. [stitch] re-slots pool
   results against the full spec, substituting [skip] for the pruned
   jobs — output order stays spec order by construction. *)
let partition_targets prepared (c : Experiment.t) =
  let tagged =
    List.map (fun job -> (job, target_for prepared job)) c.Experiment.jobs
  in
  let armed =
    List.filter_map
      (fun (job, t) -> Option.map (fun target -> (job, target)) t)
      tagged
  in
  (tagged, armed)

let stitch tagged ran ~skip =
  let rec go tagged ran =
    match tagged with
    | [] ->
        assert (ran = []);
        []
    | (job, None) :: rest -> skip job :: go rest ran
    | (_, Some _) :: rest -> (
        match ran with
        | cell :: more -> cell :: go rest more
        | [] -> assert false)
  in
  go tagged ran

let run ?(jobs = 1) ?(observe = false) (c : Experiment.t) =
  let t0 = Unix.gettimeofday () in
  if not observe then begin
    let prepared = prepare c in
    let tagged, armed = partition_targets prepared c in
    let ran =
      Iron_util.Pool.map_jobs ~jobs
        (fun (job, target) -> run_armed prepared c job ~target)
        armed
    in
    let cells = stitch tagged ran ~skip:(fun _ -> empty_cell) in
    let wall_s = Unix.gettimeofday () -. t0 in
    aggregate c ~workers:(max 1 jobs) ~scheduled:(List.length armed) ~wall_s
      cells
  end
  else begin
    (* Observed campaign. Each job gets a private context created and
       snapshotted inside the job function, so metrics and spans are a
       pure function of the job spec; the aggregator merges them in
       spec order (the pool slots results by index, and pruned jobs
       are re-slotted by [stitch]), which keeps the exported
       observables independent of [-j]. Executor telemetry
       (wall-clock pool waits) goes to a separate shared context that
       is deliberately kept out of the deterministic snapshot. *)
    let prep_obs = Obs.create () in
    let prepared = prepare ~obs:prep_obs c in
    let prep_snap = Obs.snapshot prep_obs in
    let prep_spans = Obs.with_tid 0 (Obs.spans prep_obs) in
    let exec_obs = Obs.create () in
    let on_job ~queue_ms ~run_ms =
      Obs.incr exec_obs "pool.job";
      Obs.observe exec_obs "pool.job.queue_ms" queue_ms;
      Obs.observe exec_obs "pool.job.run_ms" run_ms
    in
    (* Pruned jobs still get their per-job context and [driver.job]
       span (run_job resolves to the same no-target path), so the
       deterministic exports are byte-identical to an unpruned run;
       they just never occupy a pool slot. *)
    let observed_job job =
      let obs = Obs.create () in
      let cell = run_job ~obs prepared c job in
      let snap = Obs.snapshot obs in
      let spans = Obs.spans obs in
      let dropped = Obs.spans_dropped obs in
      Obs.release obs;
      (cell, snap, spans, dropped)
    in
    let tagged, armed = partition_targets prepared c in
    let ran =
      Iron_util.Pool.map_jobs ~on_job ~jobs
        (fun (job, _target) -> observed_job job)
        armed
    in
    let results = stitch tagged ran ~skip:observed_job in
    let wall_s = Unix.gettimeofday () -. t0 in
    let cells = List.map (fun (cell, _, _, _) -> cell) results in
    let metrics =
      Obs.merge (prep_snap :: List.map (fun (_, snap, _, _) -> snap) results)
    in
    let spans =
      prep_spans
      @ List.concat
          (List.mapi
             (fun i (_, _, spans, _) -> Obs.with_tid (i + 1) spans)
             results)
    in
    let spans_dropped =
      Obs.spans_dropped prep_obs
      + List.fold_left (fun n (_, _, _, d) -> n + d) 0 results
    in
    let report =
      aggregate c ~workers:(max 1 jobs) ~scheduled:(List.length armed) ~wall_s
        cells
    in
    {
      report with
      observed =
        Some { metrics; spans; spans_dropped; exec = Obs.snapshot exec_obs };
    }
  end

let fingerprint ?faults ?workloads ?block_types ?num_blocks ?persistence ?seed
    ?jobs ?observe brand =
  run ?jobs ?observe
    (Experiment.plan ?faults ?workloads ?block_types ?num_blocks ?persistence
       ?seed brand)

let pp_stats fmt s =
  Format.fprintf fmt
    "campaign: %d jobs (%d scheduled, %d applicable, %d fired), %d faults injected, %d worker%s, %.2fs"
    s.jobs_total s.jobs_scheduled s.jobs_applicable s.jobs_fired s.faults_fired
    s.workers
    (if s.workers = 1 then "" else "s")
    s.wall_s

let fold_cells report f init =
  List.fold_left
    (fun acc m ->
      List.fold_left
        (fun acc row ->
          List.fold_left (fun acc col -> f acc (m.cell row col)) acc m.cols)
        acc m.rows)
    init report.matrices

let experiments_run report =
  fold_cells report (fun n c -> if c.fired > 0 then n + 1 else n) 0

let detected_and_recovered report =
  fold_cells report
    (fun n c ->
      if
        c.fired > 0
        && (not (List.mem Taxonomy.DZero c.detection))
        && not (List.mem Taxonomy.RZero c.recovery)
      then n + 1
      else n)
    0

let detected_and_served report =
  fold_cells report
    (fun n c ->
      if
        c.fired > 0
        && (not (List.mem Taxonomy.DZero c.detection))
        && c.note = "ok"
        && not (List.mem Taxonomy.RGuess c.recovery)
      then n + 1
      else n)
    0

(* The deterministic counter set a golden artifact pins: everything a
   campaign's spec + aggregator decide, nothing the executor's wall
   clock or worker count can move. *)
let counters report =
  [
    ("experiments_run", experiments_run report);
    ("detected_and_recovered", detected_and_recovered report);
    ("detected_and_served", detected_and_served report);
    ("jobs_total", report.stats.jobs_total);
    ("jobs_scheduled", report.stats.jobs_scheduled);
    ("jobs_applicable", report.stats.jobs_applicable);
    ("jobs_fired", report.stats.jobs_fired);
    ("faults_fired", report.stats.faults_fired);
  ]
