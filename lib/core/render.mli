(** Text rendering of fingerprints: the Figure-2/3 matrices and the
    Table-5 technique summary. *)

val cell_symbols : which:[ `Detection | `Recovery ] -> Driver.cell -> string
(** The Figure-2 symbol string for one cell: ["."] when not applicable,
    ["o"] when applicable but the fault never triggered, otherwise the
    superimposed mechanism symbols ([" "] for an observed DZero/RZero).
    Exposed so the golden-artifact layer ({!Iron_report.Report}) renders
    cell-level diffs with the same vocabulary as the matrices. *)

val pp_matrix :
  which:[ `Detection | `Recovery ] -> Format.formatter -> Driver.matrix -> unit
(** One grid: rows are block types, columns are workloads a–t. Cell
    symbols follow the paper's key ({!Taxonomy.detection_symbol} /
    {!Taxonomy.recovery_symbol}); multiple observed mechanisms are
    superimposed left-to-right; ['.'] marks a gray (not-applicable)
    cell, ['o'] an applicable cell whose fault never triggered. *)

val pp_report : Format.formatter -> Driver.report -> unit
(** The full Figure-2 block for one file system: detection and recovery
    grids for each fault kind, plus the key. *)

(** {2 Table 5} *)

type summary = (string * (Taxonomy.detection * int) list * (Taxonomy.recovery * int) list) list
(** Per file system: how often each technique was observed. *)

val summarize : Driver.report list -> summary

val pp_summary : Format.formatter -> summary -> unit
(** Rendered with checkmark buckets like the paper's Table 5. *)
