(** The campaign {e spec} layer: pure enumeration of the paper's §4
    type-aware fault campaign.

    A campaign is the cross product

    {v fault kind × workload column × block type v}

    for one file-system brand, flattened into a list of self-contained
    {!job} descriptions. Enumeration is total and pure: it never
    touches a device, so the full plan (including jobs that will turn
    out to have no candidate target block) exists before anything
    runs. The executor ({!Driver.run}) runs each job against a private
    device stack; the aggregator folds the observations back into the
    Figure-2/3 matrices in spec order, which is what makes the output
    byte-identical regardless of worker count or completion order. *)

type job = {
  index : int;  (** position in the campaign; the result slot *)
  fs_name : string;
  workload : char;  (** workload column, ['a'..'t'] *)
  block_type : string;
  fault : Taxonomy.fault_kind;
  seed : int;  (** per-job seed, derived from the campaign seed *)
}

type t = {
  brand : Iron_vfs.Fs.brand;
  fs_name : string;
  faults : Taxonomy.fault_kind list;
  cols : char list;  (** workload columns, campaign order *)
  block_types : string list;
  num_blocks : int;
  seed : int;  (** campaign seed; [--seed] on the CLI *)
  persistence : Iron_fault.Fault.persistence;
  jobs : job list;  (** fault-major, then workload, then block type *)
}

val default_seed : int
(** [0xF1D0], the seed the original serial engine hard-coded. *)

val default_num_blocks : int

val job_seed : campaign_seed:int -> index:int -> int
(** Pure splitmix-style derivation: two campaigns with the same seed
    assign every job the same seed, independent of enumeration or
    execution order. *)

val plan :
  ?faults:Taxonomy.fault_kind list ->
  ?workloads:Workload.t list ->
  ?block_types:string list ->
  ?num_blocks:int ->
  ?persistence:Iron_fault.Fault.persistence ->
  ?seed:int ->
  Iron_vfs.Fs.brand ->
  t
(** Enumerate the campaign. Defaults mirror the historical driver:
    all fault kinds, all twenty workloads, all of the brand's block
    types, a 2048-block volume, sticky faults, seed {!default_seed}. *)

val total : t -> int
(** [List.length t.jobs]. *)
