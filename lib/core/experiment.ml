module Fs = Iron_vfs.Fs
module Fault = Iron_fault.Fault

type job = {
  index : int;
  fs_name : string;
  workload : char;
  block_type : string;
  fault : Taxonomy.fault_kind;
  seed : int;
}

type t = {
  brand : Fs.brand;
  fs_name : string;
  faults : Taxonomy.fault_kind list;
  cols : char list;
  block_types : string list;
  num_blocks : int;
  seed : int;
  persistence : Fault.persistence;
  jobs : job list;
}

let default_seed = 0xF1D0
let default_num_blocks = 2048

(* splitmix64 finalizer over (seed, index): pure, order-independent. *)
let job_seed ~campaign_seed ~index =
  let golden = 0x9E3779B97F4A7C15L in
  let mix z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let z =
    mix
      (Int64.add
         (mix (Int64.of_int campaign_seed))
         (Int64.mul golden (Int64.of_int (index + 1))))
  in
  (* Keep it a non-negative OCaml int. *)
  Int64.to_int (Int64.shift_right_logical z 2)

let plan ?(faults = Taxonomy.all_fault_kinds) ?(workloads = Workload.all)
    ?block_types ?(num_blocks = default_num_blocks)
    ?(persistence = Fault.Sticky) ?(seed = default_seed)
    (Fs.Brand (module F) as brand) =
  let block_types =
    match block_types with Some ts -> ts | None -> F.block_types
  in
  let cols = List.map (fun (w : Workload.t) -> w.Workload.col) workloads in
  (* Fault-major, then workload, then block type: the historical loop
     nest, so job order (and thus result slotting) is stable. *)
  let jobs =
    List.concat_map
      (fun fault ->
        List.concat_map
          (fun col ->
            List.map
              (fun block_type -> (fault, col, block_type))
              block_types)
          cols)
      faults
    |> List.mapi (fun index (fault, workload, block_type) ->
           {
             index;
             fs_name = F.fs_name;
             workload;
             block_type;
             fault;
             seed = job_seed ~campaign_seed:seed ~index;
           })
  in
  {
    brand;
    fs_name = F.fs_name;
    faults;
    cols;
    block_types;
    num_blocks;
    seed;
    persistence;
    jobs;
  }

let total t = List.length t.jobs
