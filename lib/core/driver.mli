(** The failure-policy fingerprinting engine (paper §4), in three
    layers:

    + {b spec} — {!Experiment.plan} enumerates the campaign as a pure
      list of self-contained jobs (fault kind × workload × block type,
      each with a derived seed);
    + {b executor} — each job runs against a {e private} device stack
      (its own copy-on-write {!Iron_disk.Cow} overlay over a shared
      frozen image — restore is O(dirty blocks), not O(disk) — its own
      injector, its own file-system instance) and yields one {!cell};
      jobs with a resolved target are scheduled on a fixed-size
      {!Iron_util.Pool} of OCaml 5 domains, and jobs whose dry trace
      shows no candidate block are resolved at spec time without
      touching the pool;
    + {b aggregator} — observations are folded back into the
      Figure-2/3 matrices and counters in spec order.

    Determinism contract: the rendered matrices and every counter are
    byte-identical for any worker count ([~jobs]) and any completion
    order, and two campaigns with the same [~seed] are identical runs.
    Only {!stats} (wall-clock, worker count) reflects the execution,
    and the renderers never print it.

    Before a job runs, the engine dry-runs each workload fault-free to
    learn its type-labelled I/O trace. The trace is frozen into a
    plain array and indexed by [(direction, block type)] so target
    resolution per job is a hash lookup, not a list scan; the per-block
    type oracle is frozen into a label array at the same point. Then,
    per (block type, workload, fault kind) with a candidate target,
    the executor restores the image, arms one fault just below the
    file system and re-runs; detection and recovery are inferred from
    the three observables of §4.3 — API results, the kernel log, and
    the low-level I/O trace. *)

type cell = {
  applicable : bool;  (** a target block of this type was accessed *)
  fired : int;  (** times the armed fault actually triggered *)
  detection : Taxonomy.detection list;
  recovery : Taxonomy.recovery list;
  note : string;  (** e.g. the errno returned, for human inspection *)
}

val empty_cell : cell

type matrix = {
  fs_name : string;
  fault : Taxonomy.fault_kind;
  rows : string list;  (** block types *)
  cols : char list;  (** workload columns, a–t *)
  cell : string -> char -> cell;
}

type stats = {
  jobs_total : int;  (** enumerated (type, workload, fault) jobs *)
  jobs_scheduled : int;
      (** jobs with a resolved target that entered the pool — the rest
          were pruned at spec time from the indexed dry traces *)
  jobs_applicable : int;  (** jobs with a candidate target block *)
  jobs_fired : int;  (** jobs whose armed fault actually triggered *)
  faults_fired : int;  (** total trigger count across all jobs *)
  workers : int;  (** worker domains used ([-j]) *)
  wall_s : float;  (** campaign wall-clock, including preparation *)
}

(** Campaign observability (present when run with [~observe:true]),
    split along the determinism boundary. *)
type observed = {
  metrics : Iron_obs.Obs.snapshot;
      (** preparation + per-job registries, merged in spec order —
          byte-identical for any [-j] *)
  spans : Iron_obs.Obs.span list;
      (** preparation spans (lane 0) then each job's spans on lane
          [job index + 1], in spec order — byte-identical for any
          [-j]. Fingerprint campaigns run with the disk time model
          off, so timestamps are all zero and [seq] carries order. *)
  spans_dropped : int;
      (** spans evicted from the bounded per-job rings (preparation +
          every job), summed in spec order — byte-identical for any
          [-j]. [0] means {!field-spans} is complete; exporters emit a
          trailing meta record otherwise. *)
  exec : Iron_obs.Obs.snapshot;
      (** wall-clock executor telemetry ([pool.job.queue_ms] /
          [pool.job.run_ms] histograms) — {e not} deterministic, and
          deliberately kept out of [metrics] *)
}

type report = {
  name : string;
  block_types : string list;
  matrices : matrix list;  (** one per fault kind, in taxonomy order *)
  stats : stats;  (** aggregator-sourced campaign counters *)
  observed : observed option;  (** [None] unless [~observe:true] *)
}

val run : ?jobs:int -> ?observe:bool -> Experiment.t -> report
(** Execute a planned campaign. [~jobs] (default 1) is the worker
    count; [jobs <= 1] runs sequentially in the calling domain.
    Workloads are looked up by column, so the plan must use columns
    from {!Workload.all}. With [~observe:true] (default false) every
    phase runs under an observability context — the device stack is
    wrapped in {!Iron_disk.Dev.observe}, the injector double-emits its
    I/O trace, and journal/scrub spans are captured — and the report
    carries an {!observed} record. *)

val fingerprint :
  ?faults:Taxonomy.fault_kind list ->
  ?workloads:Workload.t list ->
  ?block_types:string list ->
  ?num_blocks:int ->
  ?persistence:Iron_fault.Fault.persistence ->
  ?seed:int ->
  ?jobs:int ->
  ?observe:bool ->
  Iron_vfs.Fs.brand ->
  report
(** [Experiment.plan] + {!run}: the full campaign (defaults: all fault
    kinds, all twenty workloads, all of the brand's block types, a
    2048-block volume, sticky faults, seed {!Experiment.default_seed},
    one worker). Pass [~persistence:(Transient 1)] to measure
    tolerance of transient faults (§5.6: "retry is underutilized") —
    a fault that clears on the second attempt is absorbed exactly by
    the file systems that retry. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line of campaign counters, for [-v] output. *)

val experiments_run : report -> int
(** Number of (type, workload, fault) scenarios that actually fired. *)

val detected_and_recovered : report -> int
(** Scenarios where the fault fired, was detected (not DZero) and was
    recovered by something stronger than silence. Note that stopping
    (a panic) counts: ReiserFS scores high here by crashing. *)

val detected_and_served : report -> int
(** The stronger bar the paper's ixt3 claim is about (§6.2, "detects
    and recovers from over 200 different partial-error scenarios"):
    the fault fired, was detected, and the workload still completed
    successfully — the failure was absorbed, not converted into a
    crash or an error. *)

val counters : report -> (string * int) list
(** The {e deterministic} campaign counters, as [(name, value)] pairs
    in a fixed order: the three scenario counts above plus the spec /
    executor counters from {!stats} — but never [stats.workers] or
    [stats.wall_s], which reflect the execution rather than the
    campaign. This is exactly the counter set a golden artifact
    ({!Iron_report.Report}) pins. *)
