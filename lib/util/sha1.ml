type t = string (* 20 raw bytes *)

type ctx = {
  h : int array; (* 5-element chaining state, 32-bit values as ints *)
  block : bytes; (* 64-byte accumulation buffer *)
  mutable used : int; (* bytes pending in [block] *)
  mutable total : int; (* total message bytes fed *)
}

(* The 80-round compression function lives in C (iron_sha1_stubs.c):
   ixt3 hashes every checksummed block on read and write, so this is the
   hottest pure-CPU loop in the campaign. The stub processes [nblocks]
   consecutive 64-byte blocks; callers below guarantee
   off + 64*nblocks <= length buf. *)
external compress_n : int array -> bytes -> int -> int -> unit
  = "iron_sha1_compress_n"
[@@noalloc]

let init () =
  {
    h = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |];
    block = Bytes.create 64;
    used = 0;
    total = 0;
  }

let feed ctx ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Sha1.feed";
  ctx.total <- ctx.total + len;
  let pos = ref off in
  let left = ref len in
  (* Top up a partial block first. *)
  if ctx.used > 0 then begin
    let take = min !left (64 - ctx.used) in
    Bytes.blit buf !pos ctx.block ctx.used take;
    ctx.used <- ctx.used + take;
    pos := !pos + take;
    left := !left - take;
    if ctx.used = 64 then begin
      compress_n ctx.h ctx.block 0 1;
      ctx.used <- 0
    end
  end;
  let nblocks = !left / 64 in
  if nblocks > 0 then begin
    compress_n ctx.h buf !pos nblocks;
    pos := !pos + (nblocks * 64);
    left := !left - (nblocks * 64)
  end;
  if !left > 0 then begin
    Bytes.blit buf !pos ctx.block ctx.used !left;
    ctx.used <- ctx.used + !left
  end

let finalize ctx =
  let bits = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod 64 in
    if rem <= 56 then 56 - rem + 1 else 64 - rem + 56 + 1
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr ((bits lsr ((7 - i) * 8)) land 0xFF))
  done;
  (* Feed the padding without perturbing [total]. *)
  let saved = ctx.total in
  feed ctx pad;
  ctx.total <- saved;
  assert (ctx.used = 0);
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xFF))
  in
  put 0 ctx.h.(0);
  put 1 ctx.h.(1);
  put 2 ctx.h.(2);
  put 3 ctx.h.(3);
  put 4 ctx.h.(4);
  Bytes.to_string out

let digest ?(off = 0) ?len buf =
  let ctx = init () in
  feed ctx ~off ?len buf;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)

let to_hex d =
  let b = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents b

let to_raw d = d

let of_raw s =
  if String.length s <> 20 then invalid_arg "Sha1.of_raw: expected 20 bytes";
  s

let equal = String.equal
let compare = String.compare
let pp fmt d = Format.pp_print_string fmt (to_hex d)
