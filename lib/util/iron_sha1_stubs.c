/* SHA-1 compression function (FIPS 180-1), C fast path.
 *
 * ixt3 hashes every checksummed block on both the read and write paths,
 * so the 80-round compression dominates the campaign's CPU profile when
 * checksumming is on. Only the compression step lives here; padding,
 * streaming state and digest formatting stay in sha1.ml. The OCaml side
 * guarantees off + 64*nblocks <= length(buf) before calling.
 *
 * [h] is a 5-element OCaml int array holding the chaining state as
 * tagged immediates; storing immediates back needs no write barrier, so
 * the primitive is [@@noalloc] and never touches the GC.
 */
#include <caml/mlvalues.h>
#include <stdint.h>

static inline uint32_t rotl32(uint32_t x, int n)
{
  return (x << n) | (x >> (32 - n));
}

static void compress_portable(uint32_t h[5], const unsigned char *p, long n)
{
  uint32_t w[80];
  for (; n > 0; n--, p += 64) {
    int i;
    for (i = 0; i < 16; i++)
      w[i] = ((uint32_t)p[4 * i] << 24) | ((uint32_t)p[4 * i + 1] << 16) |
             ((uint32_t)p[4 * i + 2] << 8) | (uint32_t)p[4 * i + 3];
    for (i = 16; i < 80; i++)
      w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], tmp;
#define ROUND(f, k)                                                           \
  do {                                                                        \
    tmp = rotl32(a, 5) + (f) + e + (k) + w[i];                                \
    e = d;                                                                    \
    d = c;                                                                    \
    c = rotl32(b, 30);                                                        \
    b = a;                                                                    \
    a = tmp;                                                                  \
  } while (0)
    for (i = 0; i < 20; i++) ROUND((b & c) | (~b & d), 0x5A827999u);
    for (i = 20; i < 40; i++) ROUND(b ^ c ^ d, 0x6ED9EBA1u);
    for (i = 40; i < 60; i++) ROUND((b & c) | (b & d) | (c & d), 0x8F1BBCDCu);
    for (i = 60; i < 80; i++) ROUND(b ^ c ^ d, 0xCA62C1D6u);
#undef ROUND

    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
}

/* SHA-NI fast path: the x86 SHA extensions retire four rounds per
 * instruction, an order of magnitude over the scalar loop. Selected at
 * runtime via cpuid so the same binary runs on hosts without the
 * extension; both paths produce the identical FIPS 180-1 digest (pinned
 * by the published-vector tests). Structure follows the well-known
 * public-domain Intel/Walton round schedule. */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(IRON_SHA1_NO_NI)
#define IRON_SHA1_HAVE_NI 1
#include <immintrin.h>

__attribute__((target("sha,sse4.1"))) static void
compress_ni(uint32_t h[5], const unsigned char *data, long n)
{
  __m128i ABCD, ABCD_SAVE, E0, E0_SAVE, E1;
  __m128i MSG0, MSG1, MSG2, MSG3;
  const __m128i MASK =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);

  ABCD = _mm_loadu_si128((const __m128i *)h);
  E0 = _mm_set_epi32((int)h[4], 0, 0, 0);
  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);

  for (; n > 0; n--, data += 64) {
    ABCD_SAVE = ABCD;
    E0_SAVE = E0;

    /* Rounds 0-3 */
    MSG0 = _mm_loadu_si128((const __m128i *)(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG0, MASK);
    E0 = _mm_add_epi32(E0, MSG0);
    E1 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);

    /* Rounds 4-7 */
    MSG1 = _mm_loadu_si128((const __m128i *)(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 0);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);

    /* Rounds 8-11 */
    MSG2 = _mm_loadu_si128((const __m128i *)(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    /* Rounds 12-15 */
    MSG3 = _mm_loadu_si128((const __m128i *)(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 0);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    /* Rounds 16-19 */
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    /* Rounds 20-23 */
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    /* Rounds 24-27 */
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 1);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    /* Rounds 28-31 */
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    /* Rounds 32-35 */
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 1);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    /* Rounds 36-39 */
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    /* Rounds 40-43 */
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    /* Rounds 44-47 */
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 2);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    /* Rounds 48-51 */
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    /* Rounds 52-55 */
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 2);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    /* Rounds 56-59 */
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    /* Rounds 60-63 */
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    /* Rounds 64-67 */
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 3);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    /* Rounds 68-71 */
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    /* Rounds 72-75 */
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 3);

    /* Rounds 76-79 */
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);

    /* Combine with saved state */
    E0 = _mm_sha1nexte_epu32(E0, E0_SAVE);
    ABCD = _mm_add_epi32(ABCD, ABCD_SAVE);
  }

  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);
  _mm_storeu_si128((__m128i *)h, ABCD);
  h[4] = (uint32_t)_mm_extract_epi32(E0, 3);
}

static int sha_ni_usable(void)
{
  static int usable = -1; /* benign racy init: idempotent result */
  if (usable < 0)
    usable = __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
  return usable;
}
#endif

CAMLprim value iron_sha1_compress_n(value vh, value vbuf, value voff,
                                    value vnblocks)
{
  uint32_t h[5];
  const unsigned char *p =
      (const unsigned char *)Bytes_val(vbuf) + Long_val(voff);
  long n = Long_val(vnblocks);
  int i;

  for (i = 0; i < 5; i++)
    h[i] = (uint32_t)Long_val(Field(vh, i));

#ifdef IRON_SHA1_HAVE_NI
  if (sha_ni_usable())
    compress_ni(h, p, n);
  else
#endif
    compress_portable(h, p, n);

  for (i = 0; i < 5; i++)
    Field(vh, i) = Val_long((long)h[i]);
  return Val_unit;
}
