(* The table is built eagerly at module load: forcing a [lazy]
   concurrently from several domains is a race in OCaml 5 (it can raise
   [CamlinternalLazy.Undefined]), and the campaign executor checksums
   blocks from every worker domain. 256 words up front is free. *)
let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
      else c := !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let update crc ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  let t = table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest ?(off = 0) ?len b = update 0 ~off ?len b
let digest_string s = digest (Bytes.of_string s)
