(* The tables are built eagerly at module load: forcing a [lazy]
   concurrently from several domains is a race in OCaml 5 (it can raise
   [CamlinternalLazy.Undefined]), and the campaign executor checksums
   blocks from every worker domain. 8x256 words up front is free.

   Slicing-by-eight: [tables.(0)] is the classic byte-at-a-time table;
   [tables.(k).(n)] extends it so eight input bytes fold into the CRC
   with eight table lookups and two word loads instead of eight
   dependent byte steps. Produces bit-identical CRCs to the byte loop
   (pinned by the qcheck differential test). *)
let tables =
  let t0 = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
      else c := !c lsr 1
    done;
    t0.(n) <- !c
  done;
  let ts = Array.make 8 t0 in
  for k = 1 to 7 do
    let prev = ts.(k - 1) in
    let t = Array.make 256 0 in
    for n = 0 to 255 do
      t.(n) <- t0.(prev.(n) land 0xFF) lxor (prev.(n) lsr 8)
    done;
    ts.(k) <- t
  done;
  ts

let update crc ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  let t0 = tables.(0)
  and t1 = tables.(1)
  and t2 = tables.(2)
  and t3 = tables.(3)
  and t4 = tables.(4)
  and t5 = tables.(5)
  and t6 = tables.(6)
  and t7 = tables.(7) in
  let c = ref (crc lxor 0xFFFFFFFF) in
  let i = ref off in
  let fin = off + len in
  while fin - !i >= 8 do
    let lo = Int32.to_int (Bytes.get_int32_le b !i) land 0xFFFFFFFF in
    let hi = Int32.to_int (Bytes.get_int32_le b (!i + 4)) land 0xFFFFFFFF in
    let x = !c lxor lo in
    c :=
      Array.unsafe_get t7 (x land 0xFF)
      lxor Array.unsafe_get t6 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((x lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((hi lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < fin do
    c :=
      Array.unsafe_get t0 ((!c lxor Char.code (Bytes.get b !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let digest ?(off = 0) ?len b = update 0 ~off ?len b
let digest_string s = digest (Bytes.of_string s)
