(* A fixed-size Domain worker pool over one hand-rolled Mutex/Condition
   work queue. See pool.mli for the determinism contract. *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

(* Tasks are pre-wrapped by [map] and never raise; a stray exception
   from a worker would tear down the domain, so belt-and-braces. *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.stop do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.q then (* stop && empty: drain-then-exit *)
      Mutex.unlock t.m
    else begin
      let task = Queue.pop t.q in
      Mutex.unlock t.m;
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

(* Asking for more workers than the runtime recommends only adds
   scheduling overhead: on a 1-core host, [-j4] used to *double* the
   fig2 wall time. The caller's own domain also counts against the
   recommendation, hence the [- 1] (floored at 1). *)
let clamp_workers n =
  max 1 (min n (max 1 (Domain.recommended_domain_count () - 1)))

let create n =
  let size = clamp_workers n in
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      stop = false;
      workers = [];
      size;
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Re-raise the lowest-indexed failure, after every job has run. *)
let collect results =
  let err =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, Some (Error e) -> Some e
        | acc, _ -> acc)
      None results
  in
  match err with
  | Some e -> raise e
  | None ->
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           results)

(* Executor telemetry: [on_job] is called once per finished job with
   wall-clock queue-wait and run durations (milliseconds). It runs in
   the worker domain that executed the job, so it must be domain-safe;
   exceptions it raises are swallowed — telemetry never fails a job. *)
let notify on_job ~queue_ms ~run_ms =
  match on_job with
  | None -> ()
  | Some f -> ( try f ~queue_ms ~run_ms with _ -> ())

(* Submission granularity. One queue entry per job meant one
   lock/signal round-trip per job; batching ~16 jobs per entry
   amortizes the queue traffic while leaving enough entries for the
   workers to load-balance. Small batches (at least ~4 entries per
   worker when the input allows it) keep the tail from serializing. *)
let max_chunk = 16
let min_chunks_per_worker = 4

let chunk_size t n =
  let target = min_chunks_per_worker * t.size in
  max 1 (min max_chunk ((n + target - 1) / target))

let map ?on_job t f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let chunk = chunk_size t n in
    let nchunks = (n + chunk - 1) / chunk in
    let remaining = ref nchunks in
    let alldone = Condition.create () in
    Mutex.lock t.m;
    for c = 0 to nchunks - 1 do
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      let enqueued = Unix.gettimeofday () in
      Queue.push
        (fun () ->
          (* Run the whole chunk without touching the lock; each job is
             individually fenced so one raise never skips its batch
             mates (the exactly-once contract). *)
          let local = Array.make (hi - lo) None in
          for i = lo to hi - 1 do
            let started = Unix.gettimeofday () in
            local.(i - lo) <- Some (try Ok (f input.(i)) with e -> Error e);
            let finished = Unix.gettimeofday () in
            notify on_job
              ~queue_ms:((started -. enqueued) *. 1000.)
              ~run_ms:((finished -. started) *. 1000.)
          done;
          Mutex.lock t.m;
          Array.blit local 0 results lo (hi - lo);
          decr remaining;
          if !remaining = 0 then Condition.signal alldone;
          Mutex.unlock t.m)
        t.q
    done;
    Condition.broadcast t.nonempty;
    while !remaining > 0 do
      Condition.wait alldone t.m
    done;
    Mutex.unlock t.m;
    collect results
  end

let map_jobs ?on_job ~jobs f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then begin
    (* The sequential baseline: same exactly-once + deferred-raise
       semantics, no domains. *)
    let results = Array.make n None in
    List.iteri
      (fun i x ->
        let started = Unix.gettimeofday () in
        results.(i) <- Some (try Ok (f x) with e -> Error e);
        let finished = Unix.gettimeofday () in
        notify on_job ~queue_ms:0. ~run_ms:((finished -. started) *. 1000.))
      xs;
    collect results
  end
  else with_pool (min jobs n) (fun t -> map ?on_job t f xs)

let default_jobs () = Domain.recommended_domain_count ()
