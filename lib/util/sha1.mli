(** SHA-1.

    ixt3 stores a SHA-1 digest per protected block (the paper's choice of
    checksum, §6.1). The implementation is the standard FIPS 180-1
    algorithm — streaming state and padding in OCaml, the 80-round
    compression in a C stub (the campaign's hottest pure-CPU loop); the
    test suite checks it against published vectors. *)

type t
(** A 20-byte digest. *)

val digest : ?off:int -> ?len:int -> bytes -> t
val digest_string : string -> t

val to_hex : t -> string
val to_raw : t -> string
(** 20 raw bytes, suitable for embedding in an on-disk structure. *)

val of_raw : string -> t
(** Inverse of {!to_raw}. Raises [Invalid_argument] if not 20 bytes. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Incremental interface. *)
type ctx

val init : unit -> ctx
val feed : ctx -> ?off:int -> ?len:int -> bytes -> unit
val finalize : ctx -> t
