(** A fixed-size [Domain] worker pool (OCaml 5, no dependencies).

    The fingerprinting campaign is hundreds of fully independent
    experiments; this pool is the executor underneath it. It is a
    hand-rolled work queue — one [Mutex] + two [Condition]s, worker
    domains spawned once at [create] — so the repo stays on the stock
    runtime (no domainslib).

    Determinism contract: {!map} slots every result by its job index,
    so the output order equals the input order regardless of worker
    count or completion order. Every job runs exactly once, even when
    other jobs raise; exceptions are re-raised in the calling domain,
    lowest job index first. *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains, clamped to
    [Domain.recommended_domain_count () - 1] (floored at 1) so that,
    counting the caller's own domain, we do not oversubscribe the
    cores the runtime reports: asking for [-j4] on a 1-core host used
    to double campaign wall time instead of halving it. *)

val size : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Drain outstanding work, stop and join the workers. Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] over a fresh pool and always shuts it
    down, even if [f] raises. *)

val map :
  ?on_job:(queue_ms:float -> run_ms:float -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** Parallel [List.map] with order preserved by index slotting. All
    jobs run to completion even if some raise; afterwards, if any job
    raised, the exception of the lowest-indexed failing job is
    re-raised here.

    Jobs are submitted in contiguous chunks (up to 16 per queue entry,
    shrunk so every worker still gets several entries) — one
    lock/signal round-trip per chunk instead of per job. Chunking is
    invisible in the results: order, exactly-once and raising
    behaviour are unchanged.

    [on_job] is an executor-telemetry hook, called once per finished
    job with the wall-clock queue wait and run time in milliseconds.
    It runs in the worker domain that executed the job, so it must be
    domain-safe; exceptions it raises are swallowed. Wall-clock times
    are {e not} part of the determinism contract — keep them out of
    byte-stable output. *)

val map_jobs :
  ?on_job:(queue_ms:float -> run_ms:float -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map_jobs ~jobs f xs]: [jobs <= 1] runs sequentially in the
    calling domain (no domains spawned — the deterministic baseline);
    otherwise a temporary pool of [jobs] workers is created, used and
    shut down. The result, including raising behaviour, is identical
    in both modes. The sequential path reports [on_job] with
    [queue_ms = 0.]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the default for [-j]. *)
