(* Per-domain pool of fixed-size byte buffers.

   The campaign executor allocates tens of thousands of 4 KiB block
   buffers per second (cache fills, journal transaction images, scratch
   blocks), all short-lived and all landing on the major heap because
   4 KiB exceeds the minor allocation threshold. Pooling them turns that
   churn into pointer swaps.

   Arenas are per-domain (looked up through [Domain.DLS]), so [get] and
   [put] never race: a buffer fetched on a worker domain returns to that
   worker's pool. Buffers carry no ownership tracking — [put] is a
   promise by the caller that nothing aliases the buffer anymore; the
   pool is only a cache, so dropping a buffer instead of returning it is
   always safe, just slower. A capacity bound keeps a pathological
   release burst from pinning unbounded memory. *)

type t = {
  size : int;
  cap : int;
  mutable free : bytes list;
  mutable nfree : int;
}

let create ?(cap = 4096) size =
  if size <= 0 then invalid_arg "Arena.create: size must be positive";
  { size; cap; free = []; nfree = 0 }

let size t = t.size

let get t =
  match t.free with
  | b :: rest ->
      t.free <- rest;
      t.nfree <- t.nfree - 1;
      b
  | [] -> Bytes.create t.size

let get_zeroed t =
  match t.free with
  | b :: rest ->
      t.free <- rest;
      t.nfree <- t.nfree - 1;
      Bytes.fill b 0 t.size '\000';
      b
  | [] -> Bytes.make t.size '\000'

let copy t data =
  if Bytes.length data <> t.size then Bytes.copy data
  else begin
    let b = get t in
    Bytes.blit data 0 b 0 t.size;
    b
  end

let put t b =
  if Bytes.length b = t.size && t.nfree < t.cap then begin
    t.free <- b :: t.free;
    t.nfree <- t.nfree + 1
  end

(* The calling domain's shared pool for [size]-byte buffers. One table
   per domain keyed by buffer size; in practice only the block size of
   the simulated disks (4 KiB) ever appears. *)
let dls : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let block size =
  let tbl = Domain.DLS.get dls in
  match Hashtbl.find_opt tbl size with
  | Some a -> a
  | None ->
      let a = create size in
      Hashtbl.add tbl size a;
      a
