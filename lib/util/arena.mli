(** Per-domain pool of fixed-size byte buffers.

    Block-sized buffers (cache fills, journal images, scratch blocks)
    dominate the executor's allocation profile; pooling them avoids the
    major-heap churn of reallocating 4 KiB buffers per operation.

    Pools are only caches: [put] is a promise that nothing aliases the
    buffer anymore, and forgetting to [put] merely costs a future
    allocation. Never [put] a buffer that a caller may still read. *)

type t

val create : ?cap:int -> int -> t
(** [create size] is an empty pool of [size]-byte buffers. [cap] bounds
    how many released buffers are retained (default 4096). *)

val size : t -> int

val get : t -> bytes
(** A [size t]-byte buffer with unspecified contents — the caller must
    overwrite it fully (or use {!get_zeroed} / {!copy}). *)

val get_zeroed : t -> bytes
(** Like {!get} but zero-filled, as [Bytes.make size '\000']. *)

val copy : t -> bytes -> bytes
(** [copy t data] is [Bytes.copy data] drawing the result from the pool
    when [data] is exactly [size t] long (fresh allocation otherwise). *)

val put : t -> bytes -> unit
(** Return a buffer to the pool. Buffers of the wrong size, or arriving
    when the pool is full, are dropped (safe, just not reused). *)

val block : int -> t
(** The calling domain's shared pool for [size]-byte buffers. Buffers
    must be returned on the same domain they were fetched from. *)
