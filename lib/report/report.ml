module Driver = Iron_core.Driver
module Render = Iron_core.Render
module Taxonomy = Iron_core.Taxonomy
module Explore = Iron_crash.Explore

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type fp_cell = {
  row : string;
  col : string;
  applicable : bool;
  fired : int;
  detection : string list;
  recovery : string list;
  note : string;
  d_sym : string;
  r_sym : string;
}

type fp_matrix = {
  fault : string;
  rows : string list;
  cols : string list;
  cells : fp_cell list;
}

type fingerprint = {
  fp_fs : string;
  fp_seed : int;
  matrices : fp_matrix list;
  counters : (string * int) list;
}

type crash_violation = { state : string; v_kind : string; detail : string }

type crash = {
  c_fs : string;
  c_seed : int;
  c_max_states : int;
  log_len : int;
  epochs : int;
  states : int;
  tc_detected : int;
  kind_counts : (string * int) list;
  violations : crash_violation list;
}

type forensic_culprit = {
  fc_block : int;
  fc_label : string;
  fc_role : string;
  fc_txn : int;
  fc_policy : string;
  fc_epoch : int;
  fc_op : int;
  fc_op_label : string;
  fc_rule : string;
  fc_first_seq : int;
  fc_dropped : int;
  fc_torn : bool;
}

type forensic_chain = {
  fh_state : string;
  fh_kind : string;
  fh_detail : string;
  fh_probes : int;
  fh_summary : string;
  fh_culprits : forensic_culprit list;
}

type forensic_log = {
  fl_seq : int;
  fl_block : int;
  fl_epoch : int;
  fl_label : string;
  fl_txn : int;
  fl_policy : string;
  fl_role : string;
  fl_op : int;
  fl_op_label : string;
  fl_rule : string;
}

type forensics = {
  fo_fs : string;
  fo_seed : int;
  fo_max_states : int;
  fo_chains : forensic_chain list;
  fo_log : forensic_log list;
}

type metrics_set = {
  m_name : string;
  m_seed : int;
  m_metrics : (string * int) list;
}

type bench_record = {
  experiment : string;
  wall_ms : int;
  b_jobs : int;
  b_workers : int;
  metrics : (string * int) list;
}

type bench = { records : bench_record list }

type rule = {
  metric : string;
  max_value : int option;
  min_value : int option;
  le_metric : string option;
}

type thresholds = { rules : rule list }

type fuzz_case = {
  z_index : int;
  z_workload : string;
  z_minimized : string;
  z_checked : int;
  z_violations : int;
  z_first : crash_violation list;
}

type fuzz = {
  z_fs : string;
  z_seq : int;
  z_seed : int;
  z_cap : int;
  z_workloads : int;
  z_log_writes : int;
  z_states_raw : int;
  z_states : int;
  z_violations : int;
  z_tc : int;
  z_kinds : (string * int) list;
  z_corpus : string;
  z_cases : fuzz_case list;
}

type traffic_tenant = {
  tt_tenant : int;
  tt_ops : int;
  tt_viol : int;
  tt_cross : int;
}

type traffic = {
  t_fs : string;
  t_clients : int;
  t_tenants : int;
  t_seed : int;
  t_zipf_milli : int;
  t_arrival : string;
  t_duration_ms : int;
  t_num_blocks : int;
  t_ops : int;
  t_errors : int;
  t_ops_per_sim_sec : int;
  t_p50_us : int;
  t_p99_us : int;
  t_op_counts : (string * int) list;
  t_chunks_touched : int;
  t_blocks_touched : int;
  t_states : int;
  t_tc : int;
  t_viol : int;
  t_cross : int;
  t_mount_viol : int;
  t_per_tenant : traffic_tenant list;
}

type t =
  | Fingerprint of fingerprint
  | Crash of crash
  | Forensics of forensics
  | Metrics of metrics_set
  | Bench of bench
  | Thresholds of thresholds
  | Fuzz of fuzz
  | Traffic of traffic

let kind_name = function
  | Fingerprint _ -> "fingerprint"
  | Crash _ -> "crash"
  | Forensics _ -> "forensics"
  | Metrics _ -> "metrics"
  | Bench _ -> "bench"
  | Thresholds _ -> "bench-thresholds"
  | Fuzz _ -> "fuzz"
  | Traffic _ -> "traffic"

let filename = function
  | Fingerprint f -> Printf.sprintf "fingerprint-%s.json" f.fp_fs
  | Crash c -> Printf.sprintf "crash-%s.json" c.c_fs
  | Forensics f -> Printf.sprintf "forensics-%s.json" f.fo_fs
  | Metrics m -> Printf.sprintf "metrics-%s.json" m.m_name
  | Bench _ -> "bench.json"
  | Thresholds _ -> "bench-thresholds.json"
  | Fuzz z -> Printf.sprintf "fuzz-%s.json" z.z_fs
  | Traffic t -> Printf.sprintf "traffic-%s.json" t.t_fs

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let of_fingerprint ~seed (r : Driver.report) =
  let matrices =
    List.map
      (fun (m : Driver.matrix) ->
        let cells =
          List.concat_map
            (fun row ->
              List.filter_map
                (fun col ->
                  let c = m.Driver.cell row col in
                  if not c.Driver.applicable then None
                  else
                    Some
                      {
                        row;
                        col = String.make 1 col;
                        applicable = c.Driver.applicable;
                        fired = c.Driver.fired;
                        detection =
                          List.map Taxonomy.detection_name c.Driver.detection;
                        recovery =
                          List.map Taxonomy.recovery_name c.Driver.recovery;
                        note = c.Driver.note;
                        d_sym = Render.cell_symbols ~which:`Detection c;
                        r_sym = Render.cell_symbols ~which:`Recovery c;
                      })
                m.Driver.cols)
            m.Driver.rows
        in
        {
          fault = Taxonomy.fault_kind_name m.Driver.fault;
          rows = m.Driver.rows;
          cols = List.map (String.make 1) m.Driver.cols;
          cells;
        })
      r.Driver.matrices
  in
  Fingerprint
    {
      fp_fs = r.Driver.name;
      fp_seed = seed;
      matrices;
      counters = Driver.counters r;
    }

let crash_kinds =
  [ Explore.Unmountable; Explore.Data_loss; Explore.Fsck_unclean; Explore.Panic ]

let of_crash ~seed ~max_states (r : Explore.report) =
  Crash
    {
      c_fs = r.Explore.fs;
      c_seed = seed;
      c_max_states = max_states;
      log_len = r.Explore.log_len;
      epochs = r.Explore.rep_epochs;
      states = r.Explore.states;
      tc_detected = r.Explore.tc_detected;
      kind_counts =
        List.map
          (fun k -> (Explore.kind_to_string k, Explore.count r k))
          crash_kinds;
      violations =
        List.map
          (fun (v : Explore.violation) ->
            {
              state = v.Explore.state;
              v_kind = Explore.kind_to_string v.Explore.v_kind;
              detail = v.Explore.detail;
            })
          r.Explore.violations;
    }

let of_forensics ~seed ~max_states (r : Explore.report) =
  Forensics
    {
      fo_fs = r.Explore.fs;
      fo_seed = seed;
      fo_max_states = max_states;
      fo_chains =
        List.map
          (fun (ch : Explore.chain) ->
            {
              fh_state = ch.Explore.ch_state;
              fh_kind = Explore.kind_to_string ch.Explore.ch_kind;
              fh_detail = ch.Explore.ch_detail;
              fh_probes = ch.Explore.ch_probes;
              fh_summary = ch.Explore.ch_summary;
              fh_culprits =
                List.map
                  (fun (c : Explore.culprit) ->
                    {
                      fc_block = c.Explore.cu_block;
                      fc_label = c.Explore.cu_label;
                      fc_role = c.Explore.cu_role;
                      fc_txn = c.Explore.cu_txn;
                      fc_policy = c.Explore.cu_policy;
                      fc_epoch = c.Explore.cu_epoch;
                      fc_op = c.Explore.cu_op;
                      fc_op_label = c.Explore.cu_op_label;
                      fc_rule = c.Explore.cu_rule;
                      fc_first_seq = c.Explore.cu_first_seq;
                      fc_dropped = c.Explore.cu_dropped;
                      fc_torn = c.Explore.cu_torn;
                    })
                  ch.Explore.ch_culprits;
            })
          r.Explore.chains;
      fo_log =
        List.map
          (fun (l : Explore.logged) ->
            {
              fl_seq = l.Explore.lg_seq;
              fl_block = l.Explore.lg_block;
              fl_epoch = l.Explore.lg_epoch;
              fl_label = l.Explore.lg_label;
              fl_txn = l.Explore.lg_txn;
              fl_policy = l.Explore.lg_policy;
              fl_role = l.Explore.lg_role;
              fl_op = l.Explore.lg_op;
              fl_op_label = l.Explore.lg_op_label;
              fl_rule = l.Explore.lg_rule;
            })
          r.Explore.log;
    }

let of_metrics ~name ~seed metrics =
  Metrics { m_name = name; m_seed = seed; m_metrics = metrics }

(* Counters verbatim; gauges truncated (they are whole numbers in the
   deterministic registries, e.g. queue depths); histograms as their
   count and truncated sum — all integers, so the artifact compares
   exactly. *)
let metrics_of_snapshot snap =
  List.concat_map
    (fun (path, v) ->
      match v with
      | Iron_obs.Obs.Counter n -> [ (path, n) ]
      | Iron_obs.Obs.Gauge g -> [ (path, int_of_float g) ]
      | Iron_obs.Obs.Histogram h ->
          [
            (path ^ ".count", h.Iron_obs.Obs.count);
            (path ^ ".sum", int_of_float h.Iron_obs.Obs.sum);
          ])
    snap

let bench_of_records records = Bench { records }

(* The fuzz artifact keeps the campaign's deterministic identity: the
   corpus digest pins every crash state checked, the cases pin every
   violating workload with its minimized form. Chains stay out — the
   goldens are regenerated without [--explain]. *)
let of_fuzz (r : Iron_fuzz.Fuzz.report) =
  Fuzz
    {
      z_fs = r.Iron_fuzz.Fuzz.fz_fs;
      z_seq = r.Iron_fuzz.Fuzz.fz_seq;
      z_seed = r.Iron_fuzz.Fuzz.fz_seed;
      z_cap = r.Iron_fuzz.Fuzz.fz_cap;
      z_workloads = r.Iron_fuzz.Fuzz.fz_workloads;
      z_log_writes = r.Iron_fuzz.Fuzz.fz_log_writes;
      z_states_raw = r.Iron_fuzz.Fuzz.fz_states_raw;
      z_states = r.Iron_fuzz.Fuzz.fz_states;
      z_violations = r.Iron_fuzz.Fuzz.fz_violations;
      z_tc = r.Iron_fuzz.Fuzz.fz_tc;
      z_kinds = r.Iron_fuzz.Fuzz.fz_kinds;
      z_corpus = r.Iron_fuzz.Fuzz.fz_corpus;
      z_cases =
        List.map
          (fun (c : Iron_fuzz.Fuzz.case) ->
            {
              z_index = c.Iron_fuzz.Fuzz.cs_index;
              z_workload = c.Iron_fuzz.Fuzz.cs_workload;
              z_minimized = c.Iron_fuzz.Fuzz.cs_minimized;
              z_checked = c.Iron_fuzz.Fuzz.cs_checked;
              z_violations = c.Iron_fuzz.Fuzz.cs_violations;
              z_first =
                List.map
                  (fun (state, v_kind, detail) -> { state; v_kind; detail })
                  c.Iron_fuzz.Fuzz.cs_first;
            })
          r.Iron_fuzz.Fuzz.fz_cases;
    }

(* The traffic artifact is all-integer by the simulator's design
   (quantized skew, bucket-bound latencies, simulated time), so it
   compares exactly like the other deterministic kinds. *)
let of_traffic (r : Iron_traffic.Traffic.report) =
  Traffic
    {
      t_fs = r.Iron_traffic.Traffic.r_fs;
      t_clients = r.Iron_traffic.Traffic.r_clients;
      t_tenants = r.Iron_traffic.Traffic.r_tenants;
      t_seed = r.Iron_traffic.Traffic.r_seed;
      t_zipf_milli = r.Iron_traffic.Traffic.r_zipf_milli;
      t_arrival = r.Iron_traffic.Traffic.r_arrival;
      t_duration_ms = r.Iron_traffic.Traffic.r_duration_ms;
      t_num_blocks = r.Iron_traffic.Traffic.r_num_blocks;
      t_ops = r.Iron_traffic.Traffic.r_ops;
      t_errors = r.Iron_traffic.Traffic.r_errors;
      t_ops_per_sim_sec = r.Iron_traffic.Traffic.r_ops_per_sim_sec;
      t_p50_us = r.Iron_traffic.Traffic.r_p50_us;
      t_p99_us = r.Iron_traffic.Traffic.r_p99_us;
      t_op_counts = r.Iron_traffic.Traffic.r_op_counts;
      t_chunks_touched = r.Iron_traffic.Traffic.r_chunks_touched;
      t_blocks_touched = r.Iron_traffic.Traffic.r_blocks_touched;
      t_states = r.Iron_traffic.Traffic.r_states;
      t_tc = r.Iron_traffic.Traffic.r_tc;
      t_viol = r.Iron_traffic.Traffic.r_viol;
      t_cross = r.Iron_traffic.Traffic.r_cross;
      t_mount_viol = r.Iron_traffic.Traffic.r_mount_viol;
      t_per_tenant =
        List.map
          (fun (ts : Iron_traffic.Traffic.tenant_stat) ->
            {
              tt_tenant = ts.Iron_traffic.Traffic.ts_tenant;
              tt_ops = ts.Iron_traffic.Traffic.ts_ops;
              tt_viol = ts.Iron_traffic.Traffic.ts_viol;
              tt_cross = ts.Iron_traffic.Traffic.ts_cross;
            })
          r.Iron_traffic.Traffic.r_tenant;
    }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let json_counters kvs = Json.Assoc (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let json_of_cell c =
  Json.Assoc
    [
      ("row", Json.String c.row);
      ("col", Json.String c.col);
      ("applicable", Json.Bool c.applicable);
      ("fired", Json.Int c.fired);
      ("detection", Json.List (List.map (fun s -> Json.String s) c.detection));
      ("recovery", Json.List (List.map (fun s -> Json.String s) c.recovery));
      ("note", Json.String c.note);
      ("d", Json.String c.d_sym);
      ("r", Json.String c.r_sym);
    ]

let json_of t =
  let head kind = [ ("schema_version", Json.Int schema_version); ("kind", Json.String kind) ] in
  match t with
  | Fingerprint f ->
      Json.Assoc
        (head "fingerprint"
        @ [
            ("fs", Json.String f.fp_fs);
            ("seed", Json.Int f.fp_seed);
            ("counters", json_counters f.counters);
            ( "matrices",
              Json.List
                (List.map
                   (fun m ->
                     Json.Assoc
                       [
                         ("fault", Json.String m.fault);
                         ( "rows",
                           Json.List (List.map (fun s -> Json.String s) m.rows)
                         );
                         ( "cols",
                           Json.List (List.map (fun s -> Json.String s) m.cols)
                         );
                         ("cells", Json.List (List.map json_of_cell m.cells));
                       ])
                   f.matrices) );
          ])
  | Crash c ->
      Json.Assoc
        (head "crash"
        @ [
            ("fs", Json.String c.c_fs);
            ("seed", Json.Int c.c_seed);
            ("max_states", Json.Int c.c_max_states);
            ("log_len", Json.Int c.log_len);
            ("epochs", Json.Int c.epochs);
            ("states", Json.Int c.states);
            ("tc_detected", Json.Int c.tc_detected);
            ("counts", json_counters c.kind_counts);
            ( "violations",
              Json.List
                (List.map
                   (fun v ->
                     Json.Assoc
                       [
                         ("state", Json.String v.state);
                         ("kind", Json.String v.v_kind);
                         ("detail", Json.String v.detail);
                       ])
                   c.violations) );
          ])
  | Forensics f ->
      Json.Assoc
        (head "forensics"
        @ [
            ("fs", Json.String f.fo_fs);
            ("seed", Json.Int f.fo_seed);
            ("max_states", Json.Int f.fo_max_states);
            ( "chains",
              Json.List
                (List.map
                   (fun ch ->
                     Json.Assoc
                       [
                         ("state", Json.String ch.fh_state);
                         ("kind", Json.String ch.fh_kind);
                         ("detail", Json.String ch.fh_detail);
                         ("probes", Json.Int ch.fh_probes);
                         ("summary", Json.String ch.fh_summary);
                         ( "culprits",
                           Json.List
                             (List.map
                                (fun c ->
                                  Json.Assoc
                                    [
                                      ("block", Json.Int c.fc_block);
                                      ("label", Json.String c.fc_label);
                                      ("role", Json.String c.fc_role);
                                      ("txn", Json.Int c.fc_txn);
                                      ("policy", Json.String c.fc_policy);
                                      ("epoch", Json.Int c.fc_epoch);
                                      ("op", Json.Int c.fc_op);
                                      ("op_label", Json.String c.fc_op_label);
                                      ("rule", Json.String c.fc_rule);
                                      ("first_seq", Json.Int c.fc_first_seq);
                                      ("dropped", Json.Int c.fc_dropped);
                                      ("torn", Json.Bool c.fc_torn);
                                    ])
                                ch.fh_culprits) );
                       ])
                   f.fo_chains) );
            ( "log",
              Json.List
                (List.map
                   (fun l ->
                     Json.Assoc
                       [
                         ("seq", Json.Int l.fl_seq);
                         ("block", Json.Int l.fl_block);
                         ("epoch", Json.Int l.fl_epoch);
                         ("label", Json.String l.fl_label);
                         ("txn", Json.Int l.fl_txn);
                         ("policy", Json.String l.fl_policy);
                         ("role", Json.String l.fl_role);
                         ("op", Json.Int l.fl_op);
                         ("op_label", Json.String l.fl_op_label);
                         ("rule", Json.String l.fl_rule);
                       ])
                   f.fo_log) );
          ])
  | Metrics m ->
      Json.Assoc
        (head "metrics"
        @ [
            ("name", Json.String m.m_name);
            ("seed", Json.Int m.m_seed);
            ("metrics", json_counters m.m_metrics);
          ])
  | Bench b ->
      Json.Assoc
        (head "bench"
        @ [
            ( "records",
              Json.List
                (List.map
                   (fun r ->
                     Json.Assoc
                       [
                         ("experiment", Json.String r.experiment);
                         ("wall_ms", Json.Int r.wall_ms);
                         ("jobs", Json.Int r.b_jobs);
                         ("workers", Json.Int r.b_workers);
                         ("metrics", json_counters r.metrics);
                       ])
                   b.records) );
          ])
  | Fuzz z ->
      Json.Assoc
        (head "fuzz"
        @ [
            ("fs", Json.String z.z_fs);
            ("seq", Json.Int z.z_seq);
            ("seed", Json.Int z.z_seed);
            ("cap", Json.Int z.z_cap);
            ("workloads", Json.Int z.z_workloads);
            ("log_writes", Json.Int z.z_log_writes);
            ("states_raw", Json.Int z.z_states_raw);
            ("states", Json.Int z.z_states);
            ("violations", Json.Int z.z_violations);
            ("tc_detected", Json.Int z.z_tc);
            ("counts", json_counters z.z_kinds);
            ("corpus", Json.String z.z_corpus);
            ( "cases",
              Json.List
                (List.map
                   (fun c ->
                     Json.Assoc
                       [
                         ("index", Json.Int c.z_index);
                         ("workload", Json.String c.z_workload);
                         ("minimized", Json.String c.z_minimized);
                         ("checked", Json.Int c.z_checked);
                         ("violations", Json.Int c.z_violations);
                         ( "first",
                           Json.List
                             (List.map
                                (fun v ->
                                  Json.Assoc
                                    [
                                      ("state", Json.String v.state);
                                      ("kind", Json.String v.v_kind);
                                      ("detail", Json.String v.detail);
                                    ])
                                c.z_first) );
                       ])
                   z.z_cases) );
          ])
  | Traffic t ->
      Json.Assoc
        (head "traffic"
        @ [
            ("fs", Json.String t.t_fs);
            ("clients", Json.Int t.t_clients);
            ("tenants", Json.Int t.t_tenants);
            ("seed", Json.Int t.t_seed);
            ("zipf_milli", Json.Int t.t_zipf_milli);
            ("arrival", Json.String t.t_arrival);
            ("duration_ms", Json.Int t.t_duration_ms);
            ("num_blocks", Json.Int t.t_num_blocks);
            ("ops", Json.Int t.t_ops);
            ("errors", Json.Int t.t_errors);
            ("ops_per_sim_sec", Json.Int t.t_ops_per_sim_sec);
            ("p50_us", Json.Int t.t_p50_us);
            ("p99_us", Json.Int t.t_p99_us);
            ("op_counts", json_counters t.t_op_counts);
            ("chunks_touched", Json.Int t.t_chunks_touched);
            ("blocks_touched", Json.Int t.t_blocks_touched);
            ("states", Json.Int t.t_states);
            ("tc_detected", Json.Int t.t_tc);
            ("violations", Json.Int t.t_viol);
            ("cross_tenant", Json.Int t.t_cross);
            ("mount_violations", Json.Int t.t_mount_viol);
            ( "per_tenant",
              Json.List
                (List.map
                   (fun tt ->
                     Json.Assoc
                       [
                         ("tenant", Json.Int tt.tt_tenant);
                         ("ops", Json.Int tt.tt_ops);
                         ("violations", Json.Int tt.tt_viol);
                         ("cross", Json.Int tt.tt_cross);
                       ])
                   t.t_per_tenant) );
          ])
  | Thresholds th ->
      Json.Assoc
        (head "bench-thresholds"
        @ [
            ( "rules",
              Json.List
                (List.map
                   (fun r ->
                     Json.Assoc
                       (("metric", Json.String r.metric)
                       :: List.concat
                            [
                              (match r.max_value with
                              | Some v -> [ ("max", Json.Int v) ]
                              | None -> []);
                              (match r.min_value with
                              | Some v -> [ ("min", Json.Int v) ]
                              | None -> []);
                              (match r.le_metric with
                              | Some m -> [ ("le_metric", Json.String m) ]
                              | None -> []);
                            ]))
                   th.rules) );
          ])

let to_string t = Json.to_string (json_of t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let str_list j =
  let* l = Json.to_list j in
  map_result Json.to_str l

let counters_of j =
  let* a = Json.to_assoc j in
  map_result
    (fun (k, v) ->
      let* n = Json.to_int v in
      Ok (k, n))
    a

let cell_of j =
  let* row = Json.mem_str "row" j in
  let* col = Json.mem_str "col" j in
  let* applicable =
    let* m = Json.member "applicable" j in
    Json.to_bool m
  in
  let* fired = Json.mem_int "fired" j in
  let* detection =
    let* m = Json.member "detection" j in
    str_list m
  in
  let* recovery =
    let* m = Json.member "recovery" j in
    str_list m
  in
  let* note = Json.mem_str "note" j in
  let* d_sym = Json.mem_str "d" j in
  let* r_sym = Json.mem_str "r" j in
  Ok { row; col; applicable; fired; detection; recovery; note; d_sym; r_sym }

let matrix_of j =
  let* fault = Json.mem_str "fault" j in
  let* rows =
    let* m = Json.member "rows" j in
    str_list m
  in
  let* cols =
    let* m = Json.member "cols" j in
    str_list m
  in
  let* cells =
    let* m = Json.mem_list "cells" j in
    map_result cell_of m
  in
  Ok { fault; rows; cols; cells }

let fingerprint_of j =
  let* fp_fs = Json.mem_str "fs" j in
  let* fp_seed = Json.mem_int "seed" j in
  let* counters =
    let* m = Json.member "counters" j in
    counters_of m
  in
  let* matrices =
    let* m = Json.mem_list "matrices" j in
    map_result matrix_of m
  in
  Ok (Fingerprint { fp_fs; fp_seed; matrices; counters })

let crash_of j =
  let* c_fs = Json.mem_str "fs" j in
  let* c_seed = Json.mem_int "seed" j in
  let* c_max_states = Json.mem_int "max_states" j in
  let* log_len = Json.mem_int "log_len" j in
  let* epochs = Json.mem_int "epochs" j in
  let* states = Json.mem_int "states" j in
  let* tc_detected = Json.mem_int "tc_detected" j in
  let* kind_counts =
    let* m = Json.member "counts" j in
    counters_of m
  in
  let* violations =
    let* m = Json.mem_list "violations" j in
    map_result
      (fun v ->
        let* state = Json.mem_str "state" v in
        let* v_kind = Json.mem_str "kind" v in
        let* detail = Json.mem_str "detail" v in
        Ok { state; v_kind; detail })
      m
  in
  Ok
    (Crash
       {
         c_fs;
         c_seed;
         c_max_states;
         log_len;
         epochs;
         states;
         tc_detected;
         kind_counts;
         violations;
       })

let forensics_of j =
  let* fo_fs = Json.mem_str "fs" j in
  let* fo_seed = Json.mem_int "seed" j in
  let* fo_max_states = Json.mem_int "max_states" j in
  let culprit_of c =
    let* fc_block = Json.mem_int "block" c in
    let* fc_label = Json.mem_str "label" c in
    let* fc_role = Json.mem_str "role" c in
    let* fc_txn = Json.mem_int "txn" c in
    let* fc_policy = Json.mem_str "policy" c in
    let* fc_epoch = Json.mem_int "epoch" c in
    let* fc_op = Json.mem_int "op" c in
    let* fc_op_label = Json.mem_str "op_label" c in
    let* fc_rule = Json.mem_str "rule" c in
    let* fc_first_seq = Json.mem_int "first_seq" c in
    let* fc_dropped = Json.mem_int "dropped" c in
    let* fc_torn =
      let* m = Json.member "torn" c in
      Json.to_bool m
    in
    Ok
      {
        fc_block;
        fc_label;
        fc_role;
        fc_txn;
        fc_policy;
        fc_epoch;
        fc_op;
        fc_op_label;
        fc_rule;
        fc_first_seq;
        fc_dropped;
        fc_torn;
      }
  in
  let* fo_chains =
    let* m = Json.mem_list "chains" j in
    map_result
      (fun ch ->
        let* fh_state = Json.mem_str "state" ch in
        let* fh_kind = Json.mem_str "kind" ch in
        let* fh_detail = Json.mem_str "detail" ch in
        let* fh_probes = Json.mem_int "probes" ch in
        let* fh_summary = Json.mem_str "summary" ch in
        let* fh_culprits =
          let* cs = Json.mem_list "culprits" ch in
          map_result culprit_of cs
        in
        Ok { fh_state; fh_kind; fh_detail; fh_probes; fh_summary; fh_culprits })
      m
  in
  let* fo_log =
    let* m = Json.mem_list "log" j in
    map_result
      (fun l ->
        let* fl_seq = Json.mem_int "seq" l in
        let* fl_block = Json.mem_int "block" l in
        let* fl_epoch = Json.mem_int "epoch" l in
        let* fl_label = Json.mem_str "label" l in
        let* fl_txn = Json.mem_int "txn" l in
        let* fl_policy = Json.mem_str "policy" l in
        let* fl_role = Json.mem_str "role" l in
        let* fl_op = Json.mem_int "op" l in
        let* fl_op_label = Json.mem_str "op_label" l in
        let* fl_rule = Json.mem_str "rule" l in
        Ok
          {
            fl_seq;
            fl_block;
            fl_epoch;
            fl_label;
            fl_txn;
            fl_policy;
            fl_role;
            fl_op;
            fl_op_label;
            fl_rule;
          })
      m
  in
  Ok (Forensics { fo_fs; fo_seed; fo_max_states; fo_chains; fo_log })

let metrics_of j =
  let* m_name = Json.mem_str "name" j in
  let* m_seed = Json.mem_int "seed" j in
  let* m_metrics =
    let* m = Json.member "metrics" j in
    counters_of m
  in
  Ok (Metrics { m_name; m_seed; m_metrics })

let bench_of j =
  let* records =
    let* m = Json.mem_list "records" j in
    map_result
      (fun r ->
        let* experiment = Json.mem_str "experiment" r in
        let* wall_ms = Json.mem_int "wall_ms" r in
        let* b_jobs = Json.mem_int "jobs" r in
        let* b_workers = Json.mem_int "workers" r in
        let* metrics =
          let* m = Json.member "metrics" r in
          counters_of m
        in
        Ok { experiment; wall_ms; b_jobs; b_workers; metrics })
      m
  in
  Ok (Bench { records })

let thresholds_of j =
  let* rules =
    let* m = Json.mem_list "rules" j in
    map_result
      (fun r ->
        let* metric = Json.mem_str "metric" r in
        let opt_int k =
          match Json.member k r with
          | Ok v -> (
              match Json.to_int v with
              | Ok n -> Ok (Some n)
              | Error e -> Error (k ^ ": " ^ e))
          | Error _ -> Ok None
        in
        let* max_value = opt_int "max" in
        let* min_value = opt_int "min" in
        let le_metric =
          match Json.member "le_metric" r with
          | Ok (Json.String s) -> Some s
          | Ok _ | Error _ -> None
        in
        if max_value = None && min_value = None && le_metric = None then
          Error
            (Printf.sprintf
               "rule for %S has no bound (need max, min or le_metric)" metric)
        else Ok { metric; max_value; min_value; le_metric })
      m
  in
  Ok (Thresholds { rules })

let fuzz_of j =
  let* z_fs = Json.mem_str "fs" j in
  let* z_seq = Json.mem_int "seq" j in
  let* z_seed = Json.mem_int "seed" j in
  let* z_cap = Json.mem_int "cap" j in
  let* z_workloads = Json.mem_int "workloads" j in
  let* z_log_writes = Json.mem_int "log_writes" j in
  let* z_states_raw = Json.mem_int "states_raw" j in
  let* z_states = Json.mem_int "states" j in
  let* z_violations = Json.mem_int "violations" j in
  let* z_tc = Json.mem_int "tc_detected" j in
  let* z_kinds =
    let* m = Json.member "counts" j in
    counters_of m
  in
  let* z_corpus = Json.mem_str "corpus" j in
  let* z_cases =
    let* m = Json.mem_list "cases" j in
    map_result
      (fun c ->
        let* z_index = Json.mem_int "index" c in
        let* z_workload = Json.mem_str "workload" c in
        let* z_minimized = Json.mem_str "minimized" c in
        let* z_checked = Json.mem_int "checked" c in
        let* z_violations = Json.mem_int "violations" c in
        let* z_first =
          let* vs = Json.mem_list "first" c in
          map_result
            (fun v ->
              let* state = Json.mem_str "state" v in
              let* v_kind = Json.mem_str "kind" v in
              let* detail = Json.mem_str "detail" v in
              Ok { state; v_kind; detail })
            vs
        in
        Ok { z_index; z_workload; z_minimized; z_checked; z_violations; z_first })
      m
  in
  Ok
    (Fuzz
       {
         z_fs;
         z_seq;
         z_seed;
         z_cap;
         z_workloads;
         z_log_writes;
         z_states_raw;
         z_states;
         z_violations;
         z_tc;
         z_kinds;
         z_corpus;
         z_cases;
       })

let traffic_of j =
  let* t_fs = Json.mem_str "fs" j in
  let* t_clients = Json.mem_int "clients" j in
  let* t_tenants = Json.mem_int "tenants" j in
  let* t_seed = Json.mem_int "seed" j in
  let* t_zipf_milli = Json.mem_int "zipf_milli" j in
  let* t_arrival = Json.mem_str "arrival" j in
  let* t_duration_ms = Json.mem_int "duration_ms" j in
  let* t_num_blocks = Json.mem_int "num_blocks" j in
  let* t_ops = Json.mem_int "ops" j in
  let* t_errors = Json.mem_int "errors" j in
  let* t_ops_per_sim_sec = Json.mem_int "ops_per_sim_sec" j in
  let* t_p50_us = Json.mem_int "p50_us" j in
  let* t_p99_us = Json.mem_int "p99_us" j in
  let* t_op_counts =
    let* m = Json.member "op_counts" j in
    counters_of m
  in
  let* t_chunks_touched = Json.mem_int "chunks_touched" j in
  let* t_blocks_touched = Json.mem_int "blocks_touched" j in
  let* t_states = Json.mem_int "states" j in
  let* t_tc = Json.mem_int "tc_detected" j in
  let* t_viol = Json.mem_int "violations" j in
  let* t_cross = Json.mem_int "cross_tenant" j in
  let* t_mount_viol = Json.mem_int "mount_violations" j in
  let* t_per_tenant =
    let* m = Json.mem_list "per_tenant" j in
    map_result
      (fun tt ->
        let* tt_tenant = Json.mem_int "tenant" tt in
        let* tt_ops = Json.mem_int "ops" tt in
        let* tt_viol = Json.mem_int "violations" tt in
        let* tt_cross = Json.mem_int "cross" tt in
        Ok { tt_tenant; tt_ops; tt_viol; tt_cross })
      m
  in
  Ok
    (Traffic
       {
         t_fs;
         t_clients;
         t_tenants;
         t_seed;
         t_zipf_milli;
         t_arrival;
         t_duration_ms;
         t_num_blocks;
         t_ops;
         t_errors;
         t_ops_per_sim_sec;
         t_p50_us;
         t_p99_us;
         t_op_counts;
         t_chunks_touched;
         t_blocks_touched;
         t_states;
         t_tc;
         t_viol;
         t_cross;
         t_mount_viol;
         t_per_tenant;
       })

let of_string s =
  let* j = Json.of_string s in
  let* version = Json.mem_int "schema_version" j in
  if version <> schema_version then
    Error
      (Printf.sprintf "unknown schema version %d (this build supports %d)"
         version schema_version)
  else
    let* kind = Json.mem_str "kind" j in
    match kind with
    | "fingerprint" -> fingerprint_of j
    | "crash" -> crash_of j
    | "forensics" -> forensics_of j
    | "metrics" -> metrics_of j
    | "bench" -> bench_of j
    | "bench-thresholds" -> thresholds_of j
    | "fuzz" -> fuzz_of j
    | "traffic" -> traffic_of j
    | k -> Error (Printf.sprintf "unknown artifact kind %S" k)

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Result.map_error (fun e -> path ^ ": " ^ e) (of_string s)

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)
(* ------------------------------------------------------------------ *)

type item = { path : string; golden : string; fresh : string }

let default_timing_tol = 0.5

let is_exact_metric name =
  let suffix s = String.length name >= String.length s
    && String.sub name (String.length name - String.length s) (String.length s) = s
  in
  suffix ".states" || suffix ".violations" || suffix ".tc_detected"
  || suffix ".chains" || suffix ".culprits" || suffix ".probes"
  || suffix ".workloads" || suffix ".log_writes"
  (* traffic metrics are simulated-time, hence deterministic *)
  || suffix ".ops" || suffix ".ops_per_sim_sec" || suffix ".p50_us"
  || suffix ".p99_us" || suffix ".cross_tenant" || suffix ".blocks_touched"
  || suffix ".chunks_touched"
  || name = "jobs"

let item path golden fresh = { path; golden; fresh }

(* Exact comparison of (string * int) counter sets, keyed by union. *)
let diff_counters prefix golden fresh =
  let keys =
    List.sort_uniq compare (List.map fst golden @ List.map fst fresh)
  in
  List.filter_map
    (fun k ->
      let g = List.assoc_opt k golden and f = List.assoc_opt k fresh in
      if g = f then None
      else
        let show = function Some n -> string_of_int n | None -> "(absent)" in
        Some (item (prefix ^ "/" ^ k) (show g) (show f)))
    keys

let show_cell (c : fp_cell) =
  if not c.applicable then "not applicable"
  else
    Printf.sprintf "d=%S r=%S fired=%d detection=[%s] recovery=[%s] note=%S"
      c.d_sym c.r_sym c.fired
      (String.concat "," c.detection)
      (String.concat "," c.recovery)
      c.note

let na_cell row col =
  {
    row;
    col;
    applicable = false;
    fired = 0;
    detection = [];
    recovery = [];
    note = "";
    d_sym = ".";
    r_sym = ".";
  }

let diff_fingerprint g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let pre = "fingerprint/" ^ g.fp_fs in
  if g.fp_fs <> f.fp_fs then push (item (pre ^ "/fs") g.fp_fs f.fp_fs);
  if g.fp_seed <> f.fp_seed then
    push
      (item (pre ^ "/seed") (string_of_int g.fp_seed) (string_of_int f.fp_seed));
  List.iter push (diff_counters (pre ^ "/counters") g.counters f.counters);
  let faults =
    List.sort_uniq compare
      (List.map (fun m -> m.fault) g.matrices
      @ List.map (fun m -> m.fault) f.matrices)
  in
  List.iter
    (fun fault ->
      let find ms = List.find_opt (fun m -> m.fault = fault) ms in
      match (find g.matrices, find f.matrices) with
      | None, None -> ()
      | Some _, None -> push (item (pre ^ "/" ^ fault) "matrix present" "matrix absent")
      | None, Some _ -> push (item (pre ^ "/" ^ fault) "matrix absent" "matrix present")
      | Some gm, Some fm ->
          let mpre = pre ^ "/" ^ fault in
          if gm.rows <> fm.rows then
            push
              (item (mpre ^ "/rows")
                 (String.concat "," gm.rows)
                 (String.concat "," fm.rows));
          if gm.cols <> fm.cols then
            push
              (item (mpre ^ "/cols")
                 (String.concat "," gm.cols)
                 (String.concat "," fm.cols));
          (* Cells keyed by (row, col); a missing key is the
             not-applicable cell. Iterate the union in row-major golden
             order, then any fresh-only keys. *)
          let key c = (c.row, c.col) in
          let keys =
            List.map key gm.cells
            @ List.filter
                (fun k -> not (List.exists (fun c -> key c = k) gm.cells))
                (List.map key fm.cells)
          in
          List.iter
            (fun (row, col) ->
              let find cells =
                match
                  List.find_opt (fun c -> c.row = row && c.col = col) cells
                with
                | Some c -> c
                | None -> na_cell row col
              in
              let gc = find gm.cells and fc = find fm.cells in
              if gc <> fc then
                push
                  (item
                     (Printf.sprintf "%s/%s:%s" mpre row col)
                     (show_cell gc) (show_cell fc)))
            keys)
    faults;
  List.rev !items

let diff_crash g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let pre = "crash/" ^ g.c_fs in
  let scalar name gv fv =
    if gv <> fv then push (item (pre ^ "/" ^ name) (string_of_int gv) (string_of_int fv))
  in
  if g.c_fs <> f.c_fs then push (item (pre ^ "/fs") g.c_fs f.c_fs);
  scalar "seed" g.c_seed f.c_seed;
  scalar "max_states" g.c_max_states f.c_max_states;
  scalar "log_len" g.log_len f.log_len;
  scalar "epochs" g.epochs f.epochs;
  scalar "states" g.states f.states;
  scalar "tc_detected" g.tc_detected f.tc_detected;
  List.iter push (diff_counters (pre ^ "/counts") g.kind_counts f.kind_counts);
  let gn = List.length g.violations and fn = List.length f.violations in
  if gn <> fn then
    push
      (item (pre ^ "/violations") (Printf.sprintf "%d violations" gn)
         (Printf.sprintf "%d violations" fn));
  (* Element-wise over the common prefix (exploration order is
     deterministic); cap the noise at the first 20 mismatches. *)
  let shown = ref 0 in
  List.iteri
    (fun i gv ->
      match List.nth_opt f.violations i with
      | Some fv when gv <> fv && !shown < 20 ->
          incr shown;
          let show (v : crash_violation) =
            Printf.sprintf "[%s] %s: %s" v.v_kind v.state v.detail
          in
          push (item (Printf.sprintf "%s/violations[%d]" pre i) (show gv) (show fv))
      | _ -> ())
    g.violations;
  List.rev !items

let show_culprit c =
  Printf.sprintf
    "blk %d (%s) %s x%d from w%d epoch %d txn %d [%s] role %s op %d (%s) rule %S"
    c.fc_block c.fc_label
    (if c.fc_torn then "torn" else "dropped")
    c.fc_dropped c.fc_first_seq c.fc_epoch c.fc_txn c.fc_policy c.fc_role
    c.fc_op c.fc_op_label c.fc_rule

let show_logged l =
  Printf.sprintf "w%d blk %d (%s) epoch %d txn %d [%s] role %s op %d (%s) rule %S"
    l.fl_seq l.fl_block l.fl_label l.fl_epoch l.fl_txn l.fl_policy l.fl_role
    l.fl_op l.fl_op_label l.fl_rule

(* Forensics artifacts are deterministic by explore's contract: exact
   comparison, element-wise, noise-capped like crash violations. *)
let diff_forensics g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let pre = "forensics/" ^ g.fo_fs in
  let scalar name gv fv =
    if gv <> fv then
      push (item (pre ^ "/" ^ name) (string_of_int gv) (string_of_int fv))
  in
  if g.fo_fs <> f.fo_fs then push (item (pre ^ "/fs") g.fo_fs f.fo_fs);
  scalar "seed" g.fo_seed f.fo_seed;
  scalar "max_states" g.fo_max_states f.fo_max_states;
  let gn = List.length g.fo_chains and fn = List.length f.fo_chains in
  if gn <> fn then
    push
      (item (pre ^ "/chains")
         (Printf.sprintf "%d chains" gn)
         (Printf.sprintf "%d chains" fn));
  let shown = ref 0 in
  List.iteri
    (fun i gc ->
      match List.nth_opt f.fo_chains i with
      | Some fc when gc <> fc && !shown < 20 ->
          incr shown;
          let cpre = Printf.sprintf "%s/chains[%d]" pre i in
          if (gc.fh_state, gc.fh_kind, gc.fh_detail) <> (fc.fh_state, fc.fh_kind, fc.fh_detail)
          then
            push
              (item (cpre ^ "/violation")
                 (Printf.sprintf "[%s] %s: %s" gc.fh_kind gc.fh_state gc.fh_detail)
                 (Printf.sprintf "[%s] %s: %s" fc.fh_kind fc.fh_state fc.fh_detail));
          if gc.fh_probes <> fc.fh_probes then
            push
              (item (cpre ^ "/probes")
                 (string_of_int gc.fh_probes)
                 (string_of_int fc.fh_probes));
          if gc.fh_summary <> fc.fh_summary then
            push (item (cpre ^ "/summary") gc.fh_summary fc.fh_summary);
          if gc.fh_culprits <> fc.fh_culprits then
            push
              (item (cpre ^ "/culprits")
                 (String.concat "; " (List.map show_culprit gc.fh_culprits))
                 (String.concat "; " (List.map show_culprit fc.fh_culprits)))
      | _ -> ())
    g.fo_chains;
  let gl = List.length g.fo_log and fl = List.length f.fo_log in
  if gl <> fl then
    push
      (item (pre ^ "/log")
         (Printf.sprintf "%d writes" gl)
         (Printf.sprintf "%d writes" fl));
  let shown = ref 0 in
  List.iteri
    (fun i gw ->
      match List.nth_opt f.fo_log i with
      | Some fw when gw <> fw && !shown < 20 ->
          incr shown;
          push
            (item
               (Printf.sprintf "%s/log[%d]" pre i)
               (show_logged gw) (show_logged fw))
      | _ -> ())
    g.fo_log;
  List.rev !items

let diff_metrics g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let pre = "metrics/" ^ g.m_name in
  if g.m_name <> f.m_name then push (item (pre ^ "/name") g.m_name f.m_name);
  if g.m_seed <> f.m_seed then
    push
      (item (pre ^ "/seed") (string_of_int g.m_seed) (string_of_int f.m_seed));
  List.rev !items @ diff_counters pre g.m_metrics f.m_metrics

let within_tol tol golden fresh =
  let g = float_of_int golden and f = float_of_int fresh in
  Float.abs (f -. g) <= tol *. Float.max (Float.abs g) 1.0

let diff_bench ~timing_tol g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let gn = List.length g.records and fn = List.length f.records in
  if gn <> fn then
    push
      (item "bench/records"
         (Printf.sprintf "%d records" gn)
         (Printf.sprintf "%d records" fn));
  List.iteri
    (fun i gr ->
      match List.nth_opt f.records i with
      | None -> ()
      | Some fr ->
          let pre = Printf.sprintf "bench/%s[%d]" gr.experiment i in
          if gr.experiment <> fr.experiment then
            push (item (pre ^ "/experiment") gr.experiment fr.experiment)
          else begin
            (* wall-clock and workers: tolerance / informational *)
            if not (within_tol timing_tol gr.wall_ms fr.wall_ms) then
              push
                (item (pre ^ "/wall_ms")
                   (string_of_int gr.wall_ms)
                   (Printf.sprintf "%d (tol ±%.0f%%)" fr.wall_ms
                      (100. *. timing_tol)));
            if gr.b_jobs <> fr.b_jobs then
              push
                (item (pre ^ "/jobs")
                   (string_of_int gr.b_jobs)
                   (string_of_int fr.b_jobs));
            let keys =
              List.sort_uniq compare
                (List.map fst gr.metrics @ List.map fst fr.metrics)
            in
            List.iter
              (fun k ->
                match
                  (List.assoc_opt k gr.metrics, List.assoc_opt k fr.metrics)
                with
                | None, None -> ()
                | Some v, None ->
                    push (item (pre ^ "/" ^ k) (string_of_int v) "(absent)")
                | None, Some v ->
                    push (item (pre ^ "/" ^ k) "(absent)" (string_of_int v))
                | Some gv, Some fv ->
                    if is_exact_metric k then begin
                      if gv <> fv then
                        push
                          (item (pre ^ "/" ^ k) (string_of_int gv)
                             (string_of_int fv))
                    end
                    else if not (within_tol timing_tol gv fv) then
                      push
                        (item (pre ^ "/" ^ k) (string_of_int gv)
                           (Printf.sprintf "%d (tol ±%.0f%%)" fv
                              (100. *. timing_tol))))
              keys
          end)
    g.records;
  List.rev !items

let check_thresholds th b =
  (* Union of all records' metrics, later records winning. *)
  let merged =
    List.fold_left
      (fun acc r ->
        List.fold_left (fun acc (k, v) -> (k, v) :: acc) acc r.metrics)
      [] b.records
  in
  let lookup k = List.assoc_opt k merged in
  List.concat_map
    (fun r ->
      let pre = "thresholds/" ^ r.metric in
      match lookup r.metric with
      | None -> [ item pre "metric measured" "metric absent from bench run" ]
      | Some v ->
          List.concat
            [
              (match r.max_value with
              | Some max when v > max ->
                  [ item pre (Printf.sprintf "<= %d" max) (string_of_int v) ]
              | _ -> []);
              (match r.min_value with
              | Some min when v < min ->
                  [ item pre (Printf.sprintf ">= %d" min) (string_of_int v) ]
              | _ -> []);
              (match r.le_metric with
              | Some other -> (
                  match lookup other with
                  | None ->
                      [
                        item pre
                          (Printf.sprintf "<= %s" other)
                          (other ^ " absent from bench run");
                      ]
                  | Some ov when v > ov ->
                      [
                        item pre
                          (Printf.sprintf "<= %s = %d" other ov)
                          (string_of_int v);
                      ]
                  | Some _ -> [])
              | None -> []);
            ])
    th.rules

(* Fuzz campaigns are deterministic by construction: exact, cell-level
   comparison, case lists keyed element-wise like crash violations. *)
let diff_fuzz g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let pre = "fuzz/" ^ g.z_fs in
  let scalar name gv fv =
    if gv <> fv then
      push (item (pre ^ "/" ^ name) (string_of_int gv) (string_of_int fv))
  in
  if g.z_fs <> f.z_fs then push (item (pre ^ "/fs") g.z_fs f.z_fs);
  scalar "seq" g.z_seq f.z_seq;
  scalar "seed" g.z_seed f.z_seed;
  scalar "cap" g.z_cap f.z_cap;
  scalar "workloads" g.z_workloads f.z_workloads;
  scalar "log_writes" g.z_log_writes f.z_log_writes;
  scalar "states_raw" g.z_states_raw f.z_states_raw;
  scalar "states" g.z_states f.z_states;
  scalar "violations" g.z_violations f.z_violations;
  scalar "tc_detected" g.z_tc f.z_tc;
  List.iter push (diff_counters (pre ^ "/counts") g.z_kinds f.z_kinds);
  if g.z_corpus <> f.z_corpus then
    push (item (pre ^ "/corpus") g.z_corpus f.z_corpus);
  let gn = List.length g.z_cases and fn = List.length f.z_cases in
  if gn <> fn then
    push
      (item (pre ^ "/cases")
         (Printf.sprintf "%d cases" gn)
         (Printf.sprintf "%d cases" fn));
  let shown = ref 0 in
  List.iteri
    (fun i gc ->
      match List.nth_opt f.z_cases i with
      | Some fc when gc <> fc && !shown < 20 ->
          incr shown;
          let show c =
            Printf.sprintf "[w%04d] %s (min: %s) %d violations in %d states%s"
              c.z_index c.z_workload c.z_minimized c.z_violations c.z_checked
              (String.concat ""
                 (List.map
                    (fun v ->
                      Printf.sprintf "; [%s] %s: %s" v.v_kind v.state v.detail)
                    c.z_first))
          in
          push (item (Printf.sprintf "%s/cases[%d]" pre i) (show gc) (show fc))
      | _ -> ())
    g.z_cases;
  List.rev !items

(* Traffic reports are simulated-time end to end: exact, cell-level
   comparison including per-tenant rows. *)
let diff_traffic g f =
  let items = ref [] in
  let push i = items := i :: !items in
  let pre = "traffic/" ^ g.t_fs in
  let scalar name gv fv =
    if gv <> fv then
      push (item (pre ^ "/" ^ name) (string_of_int gv) (string_of_int fv))
  in
  if g.t_fs <> f.t_fs then push (item (pre ^ "/fs") g.t_fs f.t_fs);
  scalar "clients" g.t_clients f.t_clients;
  scalar "tenants" g.t_tenants f.t_tenants;
  scalar "seed" g.t_seed f.t_seed;
  scalar "zipf_milli" g.t_zipf_milli f.t_zipf_milli;
  if g.t_arrival <> f.t_arrival then
    push (item (pre ^ "/arrival") g.t_arrival f.t_arrival);
  scalar "duration_ms" g.t_duration_ms f.t_duration_ms;
  scalar "num_blocks" g.t_num_blocks f.t_num_blocks;
  scalar "ops" g.t_ops f.t_ops;
  scalar "errors" g.t_errors f.t_errors;
  scalar "ops_per_sim_sec" g.t_ops_per_sim_sec f.t_ops_per_sim_sec;
  scalar "p50_us" g.t_p50_us f.t_p50_us;
  scalar "p99_us" g.t_p99_us f.t_p99_us;
  List.iter push (diff_counters (pre ^ "/op_counts") g.t_op_counts f.t_op_counts);
  scalar "chunks_touched" g.t_chunks_touched f.t_chunks_touched;
  scalar "blocks_touched" g.t_blocks_touched f.t_blocks_touched;
  scalar "states" g.t_states f.t_states;
  scalar "tc_detected" g.t_tc f.t_tc;
  scalar "violations" g.t_viol f.t_viol;
  scalar "cross_tenant" g.t_cross f.t_cross;
  scalar "mount_violations" g.t_mount_viol f.t_mount_viol;
  let gn = List.length g.t_per_tenant and fn = List.length f.t_per_tenant in
  if gn <> fn then
    push
      (item (pre ^ "/per_tenant")
         (Printf.sprintf "%d tenants" gn)
         (Printf.sprintf "%d tenants" fn));
  List.iteri
    (fun i gt ->
      match List.nth_opt f.t_per_tenant i with
      | Some ft when gt <> ft ->
          let show tt =
            Printf.sprintf "t%d: ops %d, violations %d (cross %d)" tt.tt_tenant
              tt.tt_ops tt.tt_viol tt.tt_cross
          in
          push (item (Printf.sprintf "%s/per_tenant[%d]" pre i) (show gt) (show ft))
      | _ -> ())
    g.t_per_tenant;
  List.rev !items

let diff ?(timing_tol = default_timing_tol) golden fresh =
  match (golden, fresh) with
  | Fingerprint g, Fingerprint f -> Ok (diff_fingerprint g f)
  | Crash g, Crash f -> Ok (diff_crash g f)
  | Forensics g, Forensics f -> Ok (diff_forensics g f)
  | Metrics g, Metrics f -> Ok (diff_metrics g f)
  | Bench g, Bench f -> Ok (diff_bench ~timing_tol g f)
  | Fuzz g, Fuzz f -> Ok (diff_fuzz g f)
  | Traffic g, Traffic f -> Ok (diff_traffic g f)
  | Thresholds th, Bench b -> Ok (check_thresholds th b)
  | g, f ->
      Error
        (Printf.sprintf "cannot diff a %s artifact against a %s artifact"
           (kind_name g) (kind_name f))

let pp_item fmt i =
  Format.fprintf fmt "%s@.  golden: %s@.  fresh:  %s" i.path i.golden i.fresh

let pp_items fmt items =
  List.iteri
    (fun i it ->
      if i > 0 then Format.fprintf fmt "@.";
      Format.fprintf fmt "%a@." pp_item it)
    items
