(** A minimal, dependency-free JSON value with a canonical encoder and
    a strict parser — just enough for the versioned artifact schema in
    {!Report}.

    The encoder is {e canonical}: a given value always renders to the
    same bytes (object fields in construction order, fixed number
    formatting, fixed escaping), so equal artifacts are byte-equal on
    disk and `git diff` on a golden file is meaningful. The parser
    accepts standard JSON (insignificant whitespace, [\uXXXX] escapes)
    and round-trips everything the encoder emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Canonical rendering. With [~indent:true] (default) objects and
    arrays are broken over lines with two-space indentation — golden
    artifacts are committed, so they should diff line-by-line. *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON document ([Error] carries a byte offset
    and message). Trailing whitespace is allowed, trailing garbage is
    not. Numbers without [.], [e] or [E] parse as [Int]. *)

(** {2 Accessors}

    All return [Error] with the member path when the shape is wrong;
    {!Report}'s loader threads these through, so a malformed artifact
    names the offending field. *)

val member : string -> t -> (t, string) result
val to_int : t -> (int, string) result
val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
val to_assoc : t -> ((string * t) list, string) result

val mem_int : string -> t -> (int, string) result
val mem_str : string -> t -> (string, string) result
val mem_list : string -> t -> (t list, string) result

val escape_string : string -> string
(** The encoder's string escaping (including the surrounding quotes),
    exposed for one-line hand-rendered JSON elsewhere. *)
