type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Canonical float rendering: shortest form that round-trips, so the
   same value always encodes to the same bytes. Artifacts are all-int
   today; this keeps the door open without breaking canonicality. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string                             *)
(* ------------------------------------------------------------------ *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal, expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail ("bad \\u escape " ^ h)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               (* Decode to UTF-8 bytes; surrogate pairs supported. *)
               let cp = hex4 () in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                   end
                   else fail "lone high surrogate"
                 end
                 else cp
               in
               if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
               else if cp < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
               end
               else if cp < 0x10000 then begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Assoc (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Assoc _ -> "object"

let member k = function
  | Assoc fields -> (
      match List.assoc_opt k fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing member %S" k))
  | v -> Error (Printf.sprintf "expected object for member %S, got %s" k (type_name v))

let to_int = function
  | Int n -> Ok n
  | v -> Error ("expected int, got " ^ type_name v)

let to_bool = function
  | Bool b -> Ok b
  | v -> Error ("expected bool, got " ^ type_name v)

let to_str = function
  | String s -> Ok s
  | v -> Error ("expected string, got " ^ type_name v)

let to_list = function
  | List l -> Ok l
  | v -> Error ("expected array, got " ^ type_name v)

let to_assoc = function
  | Assoc a -> Ok a
  | v -> Error ("expected object, got " ^ type_name v)

let ( let* ) = Result.bind

let in_member k r =
  Result.map_error (fun e -> Printf.sprintf "%s: %s" k e) r

let mem_int k v =
  let* m = member k v in
  in_member k (to_int m)

let mem_str k v =
  let* m = member k v in
  in_member k (to_str m)

let mem_list k v =
  let* m = member k v in
  in_member k (to_list m)
