(** Versioned golden artifacts and the regression differ.

    The paper's whole method is {e diffing observable outputs} of
    faulty vs fault-free runs (§4.3); this module applies the same
    discipline to the reproduction itself. Every experiment output we
    gate on — the Figure-2/3 failure-policy matrices, the §6.1
    crash-exploration reports, the bench metric sets — has a stable,
    canonical JSON encoding carrying a schema version, and a type-aware
    differ:

    - {b policy matrices} and {b crash counts} compare {e exactly}
      (they are deterministic by the executor's contract: byte-identical
      for any [-j] at a fixed seed);
    - {b timing metrics} compare under a relative tolerance, or against
      committed threshold rules (wall-clock is not reproducible, its
      envelope is).

    Golden artifacts live under [golden/] in the repository;
    [iron golden --update] regenerates them and
    [iron diff golden/ FRESH/] is the CI gate. The loader rejects
    unknown schema versions so a stale golden tree fails loudly, never
    silently. *)

val schema_version : int
(** Current schema version, [1]. Encoded into every artifact; the
    loader rejects anything else. *)

(** {1 Artifact types} *)

(** One failure-policy cell, as observed (strings, not taxonomy
    variants, so a decoded artifact is self-contained). [d_sym] /
    [r_sym] are the rendered Figure-2 symbols
    ({!Iron_core.Render.cell_symbols}) used in diff output. *)
type fp_cell = {
  row : string;  (** block type *)
  col : string;  (** workload column, ["a"].. ["t"] *)
  applicable : bool;
  fired : int;
  detection : string list;  (** {!Iron_core.Taxonomy.detection_name}s *)
  recovery : string list;
  note : string;
  d_sym : string;
  r_sym : string;
}

type fp_matrix = {
  fault : string;  (** {!Iron_core.Taxonomy.fault_kind_name} *)
  rows : string list;
  cols : string list;
  cells : fp_cell list;
      (** applicable cells only, row-major; a missing (row, col) is the
          not-applicable cell *)
}

type fingerprint = {
  fp_fs : string;
  fp_seed : int;
  matrices : fp_matrix list;
  counters : (string * int) list;
      (** the deterministic campaign counters,
          {!Iron_core.Driver.counters} *)
}

type crash_violation = { state : string; v_kind : string; detail : string }

type crash = {
  c_fs : string;
  c_seed : int;
  c_max_states : int;
  log_len : int;
  epochs : int;
  states : int;
  tc_detected : int;
  kind_counts : (string * int) list;  (** per {!Iron_crash.Explore.kind} *)
  violations : crash_violation list;  (** in exploration order *)
}

(** One minimized culprit of a {!forensic_chain} — a dropped (or torn)
    per-block write suffix whose restoration makes the violation
    disappear, with the provenance its first dropped write was recorded
    under. Mirrors {!Iron_crash.Explore.culprit}. *)
type forensic_culprit = {
  fc_block : int;
  fc_label : string;
  fc_role : string;
  fc_txn : int;
  fc_policy : string;
  fc_epoch : int;
  fc_op : int;
  fc_op_label : string;
  fc_rule : string;
  fc_first_seq : int;
  fc_dropped : int;
  fc_torn : bool;
}

type forensic_chain = {
  fh_state : string;
  fh_kind : string;  (** {!Iron_crash.Explore.kind_to_string} *)
  fh_detail : string;
  fh_probes : int;
  fh_summary : string;  (** one-line root cause *)
  fh_culprits : forensic_culprit list;
}

(** One provenance-tagged write of the recorded log (the [iron explain]
    timeline). [w_t] is omitted: exploration runs with the service-time
    model off, so [fl_seq] carries the ordering. *)
type forensic_log = {
  fl_seq : int;
  fl_block : int;
  fl_epoch : int;
  fl_label : string;
  fl_txn : int;
  fl_policy : string;
  fl_role : string;
  fl_op : int;
  fl_op_label : string;
  fl_rule : string;
}

type forensics = {
  fo_fs : string;
  fo_seed : int;
  fo_max_states : int;
  fo_chains : forensic_chain list;  (** in violation order *)
  fo_log : forensic_log list;  (** in issue order *)
}

(** A named deterministic counter set ([iron stats] / [--metrics]
    output as an artifact). *)
type metrics_set = {
  m_name : string;
  m_seed : int;
  m_metrics : (string * int) list;
}

type bench_record = {
  experiment : string;
  wall_ms : int;  (** wall-clock; compared only under tolerance *)
  b_jobs : int;  (** campaign jobs executed *)
  b_workers : int;
  metrics : (string * int) list;  (** stashed counters, path-sorted *)
}

type bench = { records : bench_record list }

(** One threshold rule over a bench metric set: [metric <= max_value],
    [metric >= min_value], and/or [metric <= value of le_metric]. *)
type rule = {
  metric : string;
  max_value : int option;
  min_value : int option;
  le_metric : string option;
}

type thresholds = { rules : rule list }

(** One violating workload of a fuzzing campaign, with its minimized
    form. Mirrors {!Iron_fuzz.Fuzz.case} minus the forensic chains
    (goldens are regenerated without [--explain]). *)
type fuzz_case = {
  z_index : int;
  z_workload : string;
  z_minimized : string;
  z_checked : int;
  z_violations : int;
  z_first : crash_violation list;
}

type fuzz = {
  z_fs : string;
  z_seq : int;
  z_seed : int;
  z_cap : int;  (** states-per-workload bound *)
  z_workloads : int;
  z_log_writes : int;
  z_states_raw : int;
  z_states : int;  (** deduped states materialized and checked *)
  z_violations : int;
  z_tc : int;
  z_kinds : (string * int) list;
  z_corpus : string;  (** hex SHA-1 of the sorted state-digest corpus *)
  z_cases : fuzz_case list;
}

(** One tenant's row of a traffic report. *)
type traffic_tenant = {
  tt_tenant : int;
  tt_ops : int;  (** load-phase ops by this tenant's clients *)
  tt_viol : int;  (** crash states losing this tenant's durable data *)
  tt_cross : int;  (** of those, charged to another tenant's write *)
}

(** A multi-tenant traffic campaign ({!Iron_traffic.Traffic.report}):
    load-phase throughput and latency in {e simulated} time plus the
    blast-radius crash accounting — all integers, compared exactly. *)
type traffic = {
  t_fs : string;
  t_clients : int;
  t_tenants : int;
  t_seed : int;
  t_zipf_milli : int;
  t_arrival : string;
  t_duration_ms : int;
  t_num_blocks : int;
  t_ops : int;
  t_errors : int;
  t_ops_per_sim_sec : int;
  t_p50_us : int;
  t_p99_us : int;
  t_op_counts : (string * int) list;
  t_chunks_touched : int;
  t_blocks_touched : int;
  t_states : int;
  t_tc : int;
  t_viol : int;
  t_cross : int;
  t_mount_viol : int;
  t_per_tenant : traffic_tenant list;
}

type t =
  | Fingerprint of fingerprint
  | Crash of crash
  | Forensics of forensics
  | Metrics of metrics_set
  | Bench of bench
  | Thresholds of thresholds
  | Fuzz of fuzz
  | Traffic of traffic

val kind_name : t -> string
(** ["fingerprint"] | ["crash"] | ["forensics"] | ["metrics"] |
    ["bench"] | ["bench-thresholds"] | ["fuzz"] | ["traffic"]. *)

val filename : t -> string
(** Canonical basename for an artifact directory:
    [fingerprint-<fs>.json], [crash-<fs>.json], [forensics-<fs>.json],
    [metrics-<name>.json], [bench.json], [bench-thresholds.json],
    [fuzz-<fs>.json], [traffic-<fs>.json]. *)

(** {1 Builders} *)

val of_fingerprint : seed:int -> Iron_core.Driver.report -> t
(** Capture the deterministic fraction of a campaign report: matrices
    (applicable cells, with rendered symbols) and the
    {!Iron_core.Driver.counters} — never [stats.wall_s] or
    [stats.workers]. *)

val of_crash : seed:int -> max_states:int -> Iron_crash.Explore.report -> t

val of_forensics : seed:int -> max_states:int -> Iron_crash.Explore.report -> t
(** Capture the causal-forensics side of an [explore ~forensics:true]
    report: the chains and the provenance-tagged write log. The
    violation counts themselves stay in the [crash] artifact — the two
    kinds gate independently. *)

val of_metrics : name:string -> seed:int -> (string * int) list -> t
(** A deterministic counter snapshot as a versioned, diffable
    artifact. *)

val metrics_of_snapshot : Iron_obs.Obs.snapshot -> (string * int) list
(** Flatten an observability snapshot to integer metrics for
    {!of_metrics}: counters verbatim, gauges truncated, histograms as
    [<path>.count] / [<path>.sum]. Path order is preserved (snapshots
    are path-sorted). *)

val bench_of_records : bench_record list -> t

val of_fuzz : Iron_fuzz.Fuzz.report -> t
(** Capture a fuzzing campaign: the corpus digest pins every deduped
    crash state, the cases pin every violating workload with its
    minimized op subsequence. Deterministic by the campaign's
    contract, so the artifact compares exactly. *)

val of_traffic : Iron_traffic.Traffic.report -> t
(** Capture a traffic campaign. Every field is simulated-time or a
    count — deterministic by the simulator's contract (byte-identical
    for any [-j] at a fixed seed), so the artifact compares exactly. *)

(** {1 Encoding}

    [to_string] is canonical: equal artifacts are byte-equal, so golden
    files are diffable and [git status] is an integrity check. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Rejects documents whose [schema_version] differs from
    {!schema_version} or whose [kind] is unknown. *)

val save : string -> t -> unit
val load : string -> (t, string) result

(** {1 Diffing} *)

type item = {
  path : string;
      (** where, e.g. ["fingerprint/ext3/read/detection+recovery inode:g"] *)
  golden : string;  (** rendered golden-side value *)
  fresh : string;  (** rendered fresh-side value *)
}

val is_exact_metric : string -> bool
(** Bench metrics compared exactly: state/violation/Tc counts,
    forensics chain/culprit/probe counts, job counts, and the traffic
    simulator's simulated-time metrics (ops, ops/sim-sec, latency
    quantiles, touched-footprint counts). Everything
    else in a bench record (wall-clock, per-cycle microseconds,
    allocation bytes, speedups) is a timing-class metric compared
    under tolerance. *)

val default_timing_tol : float
(** [0.5]: a timing metric may drift ±50% relative to golden before it
    counts as a regression. *)

val diff : ?timing_tol:float -> t -> t -> (item list, string) result
(** [diff golden fresh] is [Ok []] when the artifacts agree,
    [Ok items] with one cell-level item per disagreement, and [Error]
    when the two artifacts are not comparable (different kinds — except
    [Thresholds] vs [Bench], which evaluates the rules). Matrices,
    crash reports, forensics reports and metric sets compare exactly;
    bench timing metrics compare within [timing_tol] (default
    {!default_timing_tol}). *)

val check_thresholds : thresholds -> bench -> item list
(** Evaluate each rule against the union of the bench records' metric
    sets (later records win on duplicate paths). A missing metric is a
    violation: a threshold that silently stops measuring anything is a
    broken gate. *)

val pp_item : Format.formatter -> item -> unit
val pp_items : Format.formatter -> item list -> unit
(** Human-readable cell-level report, one [path: golden ... | fresh ...]
    block per item. *)
