type direction = Read | Write

type corruption =
  | Zeroes
  | Noise of int
  | Bit_flip of int
  | Byte_shift
  | Tweak of (bytes -> unit)

type kind = Fail_read | Fail_write | Corrupt of corruption
type persistence = Sticky | Transient of int | Until_write | After of int
type target = Block of int | Range of int * int | Blocks of int list | Whole_disk
type rule = {
  name : string;
  target : target;
  kind : kind;
  persistence : persistence;
}

(* Auto-names are derived from what the rule does, never from arm
   order, so attribution stays stable when the caller shuffles its
   arming sequence. *)
let kind_slug = function
  | Fail_read -> "fail_read"
  | Fail_write -> "fail_write"
  | Corrupt Zeroes -> "corrupt.zeroes"
  | Corrupt (Noise _) -> "corrupt.noise"
  | Corrupt (Bit_flip _) -> "corrupt.bit_flip"
  | Corrupt Byte_shift -> "corrupt.byte_shift"
  | Corrupt (Tweak _) -> "corrupt.tweak"

let target_slug = function
  | Block b -> Printf.sprintf "blk%d" b
  | Range (lo, hi) -> Printf.sprintf "blk%d-%d" lo hi
  | Blocks [] -> "blks-none"
  | Blocks (b :: _ as bs) -> Printf.sprintf "blks%dx%d" b (List.length bs)
  | Whole_disk -> "disk"

let rule_name r = r.name

let rule ?name ?(persistence = Sticky) target kind =
  let name =
    match name with
    | Some n -> n
    | None -> kind_slug kind ^ "@" ^ target_slug target
  in
  { name; target; kind; persistence }

type armed = {
  id : int;
  r : rule;
  mutable count : int; (* committed injections; see [commit_firing] *)
  mutable seen : int; (* matching accesses, fired or not (for [After]) *)
  cleared : (int, unit) Hashtbl.t;
      (* [Until_write] only: blocks whose sector has been successfully
         rewritten — the drive remapped {e that} sector, the rest of
         the rule's target keeps failing (§2.3.3). *)
}
type rule_id = int

type outcome = Io_ok | Io_error of Iron_disk.Dev.error | Io_corrupted

type event = {
  seq : int;
  dir : direction;
  block : int;
  label : string;
  outcome : outcome;
}

type t = {
  below : Iron_disk.Dev.t;
  mutable rules : armed list; (* in arm order: oldest rule first *)
  mutable next_id : int;
  retired : (int, int) Hashtbl.t; (* fired counts of disarmed rules *)
  mutable classifier : int -> string;
  events : event Iron_obs.Ring.t; (* oldest first, bounded *)
  mutable seq : int;
  mutable tracing : bool;
  obs : Iron_obs.Obs.t option;
}

let default_trace_cap = 65536

let create ?obs ?(trace_cap = default_trace_cap) below =
  {
    below;
    rules = [];
    next_id = 0;
    retired = Hashtbl.create 8;
    classifier = (fun _ -> "?");
    events = Iron_obs.Ring.create trace_cap;
    seq = 0;
    tracing = true;
    obs;
  }

(* Rules are kept in arm order (oldest first) so the hot-path matcher
   walks [t.rules] directly — the old newest-first list needed a
   [List.rev] allocation on every single I/O. Arming is the rare
   operation, so it pays the O(rules) append. *)
let arm t r =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.rules <- t.rules @ [ { id; r; count = 0; seen = 0; cleared = Hashtbl.create 4 } ];
  id

(* Disarming retires the rule's fired count instead of dropping it:
   callers routinely tear the rule down and then ask how often it
   bit. *)
let retire t a = Hashtbl.replace t.retired a.id a.count

let disarm t id =
  t.rules <-
    List.filter
      (fun a ->
        if a.id = id then begin
          retire t a;
          false
        end
        else true)
      t.rules

let disarm_all t =
  List.iter (retire t) t.rules;
  t.rules <- []

let fired t id =
  match List.find_opt (fun a -> a.id = id) t.rules with
  | Some a -> a.count
  | None -> ( match Hashtbl.find_opt t.retired id with Some n -> n | None -> 0)

let set_classifier t f = t.classifier <- f
let trace t = Iron_obs.Ring.to_list t.events
let trace_dropped t = Iron_obs.Ring.dropped t.events
let clear_trace t = Iron_obs.Ring.clear t.events
let set_tracing t on = t.tracing <- on

let matches_target target block =
  match target with
  | Block b -> b = block
  | Range (lo, hi) -> block >= lo && block <= hi
  | Blocks bs -> List.mem block bs
  | Whole_disk -> true

let matches_dir kind dir =
  match (kind, dir) with
  | Fail_read, Read | Corrupt _, Read | Fail_write, Write -> true
  | Fail_read, Write | Corrupt _, Write | Fail_write, Read -> false

(* Find the first armed rule matching this access. The decision is
   {e tentative}: nothing is charged against the rule's budget here.
   The caller commits the firing (via [commit_firing]) only once the
   injection actually happens — for [Fail_read]/[Fail_write] that is
   immediate, but a [Corrupt] rule whose underlying read then fails
   has injected nothing, and must neither bump [fired] nor consume a
   [Transient] budget. ([seen] still counts every matching access:
   that is exactly what [After n]'s dormancy is defined over.) *)
let firing t dir block =
  let rec go = function
    | [] -> None
    | a :: rest ->
        if matches_target a.r.target block
           && matches_dir a.r.kind dir
           && not
                (a.r.persistence = Until_write && Hashtbl.mem a.cleared block)
        then begin
          a.seen <- a.seen + 1;
          match a.r.persistence with
          | Sticky | Until_write -> Some a
          | Transient n when a.count < n -> Some a
          | After n when a.seen > n -> Some a
          | Transient _ | After _ -> go rest
        end
        else go rest
  in
  go t.rules (* oldest rule wins, deterministically *)

let commit_firing a = a.count <- a.count + 1

(* A successful write remaps {e that} sector: read faults marked
   [Until_write] covering the block stop firing for the block alone.
   The rest of a [Range]/[Blocks]/[Whole_disk] target keeps failing —
   one remapped sector does not heal a whole media scratch. *)
let clear_on_write t block =
  List.iter
    (fun a ->
      if a.r.persistence = Until_write && matches_target a.r.target block then
        Hashtbl.replace a.cleared block ())
    t.rules

let record t dir block outcome =
  if t.tracing then begin
    let seq = t.seq in
    t.seq <- seq + 1;
    Iron_obs.Ring.push t.events
      { seq; dir; block; label = t.classifier block; outcome };
    (* Double-emit into the observability layer, so the I/O trace shows
       up alongside file-system spans in exported traces. *)
    match t.obs with
    | None -> ()
    | Some obs ->
        let d = match dir with Read -> "read" | Write -> "write" in
        let name =
          match outcome with
          | Io_ok -> d ^ ".ok"
          | Io_error e ->
              d ^ "." ^ String.lowercase_ascii (Iron_disk.Dev.error_to_string e)
          | Io_corrupted -> d ^ ".corrupt"
        in
        Iron_obs.Obs.event obs ~subsystem:"fault.io" ~blocks:(block, block) name
  end

(* Count injections (as opposed to propagated device errors) under
   fault.inject.*; fired when an armed rule actually bites. The rule's
   stable name is noted in the ambient provenance tag (so a recorded
   write carries the rule that mangled it) and surfaced as an obs
   event plus a per-rule [fault.inject.<name>] counter alongside the
   aggregate per-kind one. *)
let record_injection t a block =
  Iron_obs.Prov.note_rule a.r.name;
  match t.obs with
  | None -> ()
  | Some obs ->
      let agg =
        match a.r.kind with
        | Fail_read -> "fail_read"
        | Fail_write -> "fail_write"
        | Corrupt _ -> "corrupt"
      in
      Iron_obs.Obs.incr obs ("fault.inject." ^ agg);
      Iron_obs.Obs.event obs ~subsystem:"fault.inject" ~blocks:(block, block)
        a.r.name

let corrupt_block corruption data =
  match corruption with
  | Zeroes -> Bytes.fill data 0 (Bytes.length data) '\000'
  | Noise seed ->
      let rng = Iron_util.Prng.create (seed lxor 0x5EED) in
      Iron_util.Prng.fill_bytes rng data
  | Bit_flip bit ->
      let off = bit / 8 mod Bytes.length data in
      let b = Char.code (Bytes.get data off) in
      Bytes.set data off (Char.chr (b lxor (1 lsl (bit mod 8))))
  | Byte_shift ->
      let n = Bytes.length data in
      if n > 1 then begin
        let last = Bytes.get data (n - 1) in
        Bytes.blit data 0 data 1 (n - 1);
        Bytes.set data 0 last
      end
  | Tweak f -> f data

let read t block =
  match firing t Read block with
  | Some ({ r = { kind = Fail_read; _ }; _ } as a) ->
      commit_firing a;
      record_injection t a block;
      record t Read block (Io_error Iron_disk.Dev.Eio);
      Error Iron_disk.Dev.Eio
  | Some ({ r = { kind = Corrupt c; _ }; _ } as a) -> (
      match t.below.Iron_disk.Dev.read block with
      | Ok data ->
          corrupt_block c data;
          commit_firing a;
          record_injection t a block;
          record t Read block Io_corrupted;
          Ok data
      | Error e ->
          (* The device failed underneath: nothing was injected, so the
             rule neither fired nor consumed budget. *)
          record t Read block (Io_error e);
          Error e)
  | Some { r = { kind = Fail_write; _ }; _ } | None -> (
      match t.below.Iron_disk.Dev.read block with
      | Ok _ as ok ->
          record t Read block Io_ok;
          ok
      | Error e ->
          record t Read block (Io_error e);
          Error e)

(* The zero-copy twin of [read]: same firing decision, same trace
   events, same injection counters — corruption mangles the caller's
   buffer in place instead of a freshly allocated one. A [read] and a
   [read_into] of the same block are indistinguishable to every layer
   above and below. *)
let read_into t block buf =
  match firing t Read block with
  | Some ({ r = { kind = Fail_read; _ }; _ } as a) ->
      commit_firing a;
      record_injection t a block;
      record t Read block (Io_error Iron_disk.Dev.Eio);
      Error Iron_disk.Dev.Eio
  | Some ({ r = { kind = Corrupt c; _ }; _ } as a) -> (
      match t.below.Iron_disk.Dev.read_into block buf with
      | Ok () ->
          corrupt_block c buf;
          commit_firing a;
          record_injection t a block;
          record t Read block Io_corrupted;
          Ok ()
      | Error e ->
          record t Read block (Io_error e);
          Error e)
  | Some { r = { kind = Fail_write; _ }; _ } | None -> (
      match t.below.Iron_disk.Dev.read_into block buf with
      | Ok () as ok ->
          record t Read block Io_ok;
          ok
      | Error e ->
          record t Read block (Io_error e);
          Error e)

let write t block data =
  match firing t Write block with
  | Some ({ r = { kind = Fail_write; _ }; _ } as a) ->
      commit_firing a;
      record_injection t a block;
      record t Write block (Io_error Iron_disk.Dev.Eio);
      Error Iron_disk.Dev.Eio
  | Some { r = { kind = Fail_read | Corrupt _; _ }; _ } | None -> (
      match t.below.Iron_disk.Dev.write block data with
      | Ok () ->
          clear_on_write t block;
          record t Write block Io_ok;
          Ok ()
      | Error e ->
          record t Write block (Io_error e);
          Error e)

let dev t =
  {
    Iron_disk.Dev.block_size = t.below.Iron_disk.Dev.block_size;
    num_blocks = t.below.Iron_disk.Dev.num_blocks;
    read = read t;
    read_into = read_into t;
    write = write t;
    sync = t.below.Iron_disk.Dev.sync;
    now = t.below.Iron_disk.Dev.now;
  }

let pp_event fmt e =
  let dir = match e.dir with Read -> "R" | Write -> "W" in
  let out =
    match e.outcome with
    | Io_ok -> "ok"
    | Io_error err -> Iron_disk.Dev.error_to_string err
    | Io_corrupted -> "CORRUPT"
  in
  Format.fprintf fmt "#%d %s blk=%d type=%s -> %s" e.seq dir e.block e.label out
