(** The fail-partial failure model (paper §2.3) and its injector.

    The injector wraps a {!Iron_disk.Dev.t} and sits where the paper's
    pseudo-device driver sat: directly beneath the file system, above
    everything else. It can

    - fail reads or writes of chosen blocks (latent sector errors),
      stickily or transiently;
    - silently corrupt the data returned by reads, with several
      corruption shapes (noise, zeroes, single bit flips, the classic
      byte-shift firmware bug, or a caller-supplied field tweak for
      type-aware corruption);
    - fail spatially-local ranges (a media scratch) or the whole disk.

    Every I/O through the injector is appended to a trace, annotated by
    a caller-installed block-type classifier; the fingerprinting engine
    reads this trace to infer retry, redundancy and stop behaviours. *)

type direction = Read | Write

(** How a corrupting read mangles the returned data. *)
type corruption =
  | Zeroes  (** block replaced by zeroes *)
  | Noise of int  (** pseudo-random bytes from the given seed *)
  | Bit_flip of int  (** flip one bit: [offset*8 + bit] within the block *)
  | Byte_shift
      (** data circularly shifted by one byte — the drive-firmware bug
          reported in the paper (§2.2, [37]) *)
  | Tweak of (bytes -> unit)
      (** caller mutates the buffer in place; used for type-aware
          corruption of individual fields so the block still looks
          plausible (§4.2) *)

type kind =
  | Fail_read  (** reads of the target return [Eio] *)
  | Fail_write  (** writes to the target return [Eio] and are dropped *)
  | Corrupt of corruption  (** reads of the target succeed with bad data *)

type persistence =
  | Sticky  (** the fault never goes away *)
  | Transient of int
      (** fires for the first [n] {e injections} only. An access where
          nothing was injected (e.g. a [Corrupt] rule whose underlying
          read failed) consumes no budget. *)
  | Until_write
      (** read failures that clear, {e block by block}, once the block
          is successfully rewritten — the drive remapping that sector
          (§2.3.3). Rewriting one sector of a [Range]/[Blocks]/
          [Whole_disk] target stops the fault for that sector only;
          the rest of the scratch keeps failing. *)
  | After of int
      (** dormant for the first [n] matching accesses, then permanent.
          [rule Whole_disk Fail_write ~persistence:(After n)] is a power
          cut landing n writes into a transaction commit. *)

type target =
  | Block of int
  | Range of int * int  (** inclusive range: a surface scratch *)
  | Blocks of int list
  | Whole_disk

type rule = {
  name : string;
      (** stable identity for attribution — never derived from arm
          order *)
  target : target;
  kind : kind;
  persistence : persistence;
}

val rule : ?name:string -> ?persistence:persistence -> target -> kind -> rule
(** Persistence defaults to [Sticky]. When [name] is omitted a
    deterministic one is derived from the rule's kind and target
    (e.g. ["fail_read@blk301"], ["corrupt.noise@blk10-14"]), so two
    runs that arm the same rules — in any order — report the same
    identities. *)

val rule_name : rule -> string

(** {2 The injector} *)

type t

val create : ?obs:Iron_obs.Obs.t -> ?trace_cap:int -> Iron_disk.Dev.t -> t
(** [create below] wraps a device. With [~obs], every trace event is
    double-emitted into the observability layer's span buffer (under
    subsystem [fault.io]) and injected faults bump the
    [fault.inject.fail_read] / [fault.inject.fail_write] /
    [fault.inject.corrupt] aggregate counters plus a per-rule
    [fault.inject.<rule-name>] counter, with a [fault.inject] obs
    event naming the rule. Whether or not [obs] is supplied, each
    committed injection also notes the rule's name in the ambient
    {!Iron_obs.Prov} tag, so recorded writes carry the fault that
    bit them. [trace_cap] bounds the in-memory
    I/O trace (default {!default_trace_cap}); once full, the oldest
    events are dropped and counted by {!trace_dropped} — a long-running
    job no longer grows its trace without bound. *)

val default_trace_cap : int
(** [65536] events — generous: a whole fingerprinting job issues a few
    thousand I/Os. *)

val dev : t -> Iron_disk.Dev.t
(** The injector as a device. Its [read_into] is the zero-copy twin of
    [read]: same firing decision against the armed rules, same trace
    events and injection counters, with corruption applied in the
    caller's buffer — the two are indistinguishable to the layers
    above and below. *)

type rule_id

val arm : t -> rule -> rule_id
(** Rules match in arm order: when several rules cover the same access,
    the oldest armed rule wins, deterministically. Matching walks the
    rule list in place — no per-I/O allocation. *)

val disarm : t -> rule_id -> unit
val disarm_all : t -> unit

val fired : t -> rule_id -> int
(** How many times the rule has actually injected its fault so far.
    An access where nothing was injected (a [Corrupt] rule over a read
    that failed underneath) does not count. Counts survive {!disarm} /
    {!disarm_all}: tear-down then post-mortem is the normal calling
    pattern. *)

(** {2 Tracing} *)

type outcome =
  | Io_ok
  | Io_error of Iron_disk.Dev.error  (** injected or propagated *)
  | Io_corrupted  (** returned [Ok] with mangled data *)

type event = {
  seq : int;
  dir : direction;
  block : int;
  label : string;  (** block type, from the classifier; "?" if none *)
  outcome : outcome;
}

val set_classifier : t -> (int -> string) -> unit
(** Install the gray-box block-type oracle used to label trace events. *)

val trace : t -> event list
(** Events in issue order — the newest [trace_cap] of them. *)

val trace_dropped : t -> int
(** Events evicted since the last {!clear_trace} because the bounded
    trace filled; [0] means {!trace} is complete. *)

val clear_trace : t -> unit
val set_tracing : t -> bool -> unit
(** Tracing is on by default; benchmarks turn it off. *)

val pp_event : Format.formatter -> event -> unit
