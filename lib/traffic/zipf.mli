(** Zipf-skewed working-set sampler.

    Rank [i] (0-based) is drawn with weight [1 / (i+1)^theta]; [theta =
    0] is uniform, larger values concentrate traffic on the first few
    ranks — the standard model for skewed file popularity.

    To keep reports byte-identical across machines the exponent is
    {e quantized to quarters} and evaluated with exact float
    multiplication plus IEEE-exact [sqrt] only — no libm [pow], whose
    last-ulp rounding may differ between platforms and shift a
    cumulative-weight boundary. *)

type t

val create : n:int -> theta:float -> t
(** A sampler over ranks [0 .. n-1]; [theta] is clamped to [0, 2] and
    quantized to the nearest quarter.
    @raise Invalid_argument if [n < 1]. *)

val sample : t -> Iron_util.Prng.t -> int
(** Draw one rank, consuming one PRNG draw. *)

val theta_milli : t -> int
(** The quantized exponent in thousandths (e.g. [750] for 0.75) — what
    reports echo. *)

val size : t -> int
