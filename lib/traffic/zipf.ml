(* Zipf-skewed sampling over a small universe. See zipf.mli.

   The one numerical subtlety: report byte-identity across machines
   forbids libm transcendentals (pow/exp/log are not required to be
   correctly rounded, so two glibc versions may disagree by an ulp and
   shift a cumulative-weight boundary). The skew exponent is therefore
   quantized to quarters and rank^theta computed with exact float
   multiplication plus IEEE-exact sqrt:

     rank^(m/4) = sqrt (sqrt (rank^m))

   rank^m is exact in a double for the universes this module serves
   (rank <= 2^13, m <= 8 covers theta in [0,2] with room to spare). *)

type t = {
  cum : float array; (* cumulative weights, cum.(n-1) = total *)
  theta_milli : int;
}

let quantize theta =
  let q = int_of_float ((theta *. 4.0) +. 0.5) in
  let q = if q < 0 then 0 else if q > 8 then 8 else q in
  q

(* rank^(q/4), computed exactly: integer power then two square roots. *)
let pow_quarter rank q =
  let x = float_of_int rank in
  let rec ipow b n = if n = 0 then 1.0 else b *. ipow b (n - 1) in
  sqrt (sqrt (ipow x q))

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  let q = quantize theta in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. pow_quarter (i + 1) q);
    cum.(i) <- !total
  done;
  { cum; theta_milli = q * 250 }

let theta_milli t = t.theta_milli
let size t = Array.length t.cum

let sample t prng =
  let n = Array.length t.cum in
  let u = Iron_util.Prng.float prng t.cum.(n - 1) in
  (* First index whose cumulative weight exceeds the draw. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
