(** Multi-tenant traffic simulation: thousands of simulated client
    sessions against one volume, with per-tenant blast-radius
    accounting.

    The load phase drives a mounted file system through the frozen VFS
    signature from a discrete-event scheduler keyed on simulated disk
    time: clients arrive by a Poisson process (von Neumann exponential
    sampling — uniform draws and comparisons only, no libm) or run a
    closed think-time loop, pick files from a Zipf-skewed per-tenant
    working set ({!Zipf}), and issue open/read/write/fsync/stat
    against a single FIFO disk server whose service times come from
    {!Iron_disk.Model}. The volume is a {!Iron_disk.Sparse} image, so
    a multi-GiB logical device costs memory proportional to the blocks
    actually touched.

    The blast-radius phase re-runs a scaled-down slice of the same
    multi-tenant traffic through the crash explorer
    ({!Iron_crash.Explore}): per-tenant durable files are frozen into
    the base image, racing tenant writes are recorded with provenance
    tags, every enumerated crash state is checked against {e every}
    tenant's durable files, and each loss is attributed — victim from
    the lost path, culprit from the provenance of the earliest dropped
    write. ext3's shared journal lets one tenant's crash corrupt
    another's durable data; ixt3's transactional checksum refuses the
    garbage transaction instead.

    Everything is a pure function of the seed: reports are
    byte-identical across machines and worker counts. *)

type arrival = Poisson | Closed | Mixed
(** Open-loop arrivals, closed think-time loops, or (default) odd
    clients closed / even clients open. *)

val arrival_to_string : arrival -> string
val arrival_of_string : string -> arrival option

type config = {
  clients : int;  (** simulated client sessions *)
  tenants : int;  (** tenants; client [c] belongs to [c mod tenants] *)
  duration_ms : int;  (** simulated measurement window *)
  zipf : float;  (** working-set skew, quantized per {!Zipf} *)
  seed : int;
  num_blocks : int;  (** logical volume size in blocks *)
  files_per_tenant : int;
  arrival : arrival;
  think_ms : int;  (** closed-loop think time *)
  rate_hz : int;  (** open-loop offered load, ops/sim-sec, summed *)
  states : int;  (** crash-state budget for the blast-radius phase *)
}

val default : config
(** 1000 clients, 4 tenants, 10 sim-seconds, zipf 0.75, seed 42, a
    1 GiB volume (262144 blocks), mixed arrivals, 1000 crash states. *)

type tenant_stat = {
  ts_tenant : int;
  ts_ops : int;  (** load-phase ops issued by this tenant's clients *)
  ts_viol : int;  (** crash states that lost this tenant's durable data *)
  ts_cross : int;  (** of those, charged to another tenant's write *)
}

type report = {
  r_fs : string;
  r_clients : int;
  r_tenants : int;
  r_seed : int;
  r_zipf_milli : int;  (** quantized skew, thousandths *)
  r_arrival : string;
  r_duration_ms : int;
  r_num_blocks : int;
  r_ops : int;  (** ops whose arrival fell inside the window *)
  r_errors : int;  (** ops that returned an error *)
  r_ops_per_sim_sec : int;
  r_p50_us : int;  (** latency median, microseconds (bucket bound) *)
  r_p99_us : int;  (** latency p99, microseconds (bucket bound) *)
  r_op_counts : (string * int) list;  (** read/write/write+fsync/stat *)
  r_chunks_touched : int;  (** sparse chunks materialized *)
  r_blocks_touched : int;  (** blocks with non-zero content *)
  r_states : int;  (** crash states checked *)
  r_tc : int;  (** states where Tc refused a garbage transaction *)
  r_viol : int;  (** tenant-attributed durable losses, all states *)
  r_cross : int;  (** losses charged to another tenant's write *)
  r_mount_viol : int;  (** states with mount-level trouble *)
  r_tenant : tenant_stat list;
}

val run : ?jobs:int -> config -> Iron_vfs.Fs.brand -> report
(** Run both phases. The load phase is single-domain (inherently
    deterministic); [jobs] fans out only the blast-radius spec checks
    through {!Iron_util.Pool.map_jobs}, whose order-preserving slots
    keep the report byte-identical for any [jobs]. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line console summary, one tenant per line. Byte-stable. *)
