(* Multi-tenant traffic simulation. See traffic.mli for the model.

   Two phases per brand:

   - {e load}: thousands of simulated client sessions drive the
     mounted file system through the frozen VFS signature on one
     shared sparse volume. A discrete-event scheduler pops requests in
     (time, client, seq) order; the disk is a single FIFO server whose
     service times come from [Model] via the device clock, so a
     request's latency is queueing delay plus service. Everything —
     arrivals (von Neumann exponential sampling, comparisons only),
     working-set choice (quarter-quantized Zipf), payload bytes — is
     drawn from seeded PRNGs with no libm transcendental in sight, so
     a given [--seed] yields byte-identical reports on any machine at
     any [-j];

   - {e blast radius}: the per-tenant crash campaign. A scaled-down
     slice of the same traffic races on a small volume through a
     [Wlog] recorder; every crash state a fail-partial disk could
     leave is enumerated and checked against each tenant's durable
     files. A lost file names its victim tenant; the provenance of the
     earliest dropped write names the culprit tenant — when they
     differ, one tenant's crash took another tenant's data with it
     (the shared-journal story of §6.1). The check fans out over
     [Pool] with order-preserving slots, so [-j] cannot change the
     report. *)

module Sparse = Iron_disk.Sparse
module Memdisk = Iron_disk.Memdisk
module Dev = Iron_disk.Dev
module Fs = Iron_vfs.Fs
module Klog = Iron_vfs.Klog
module Obs = Iron_obs.Obs
module Prov = Iron_obs.Prov
module Prng = Iron_util.Prng
module Pool = Iron_util.Pool
module Explore = Iron_crash.Explore

type arrival = Poisson | Closed | Mixed

let arrival_to_string = function
  | Poisson -> "poisson"
  | Closed -> "closed"
  | Mixed -> "mixed"

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "closed" -> Some Closed
  | "mixed" -> Some Mixed
  | _ -> None

type config = {
  clients : int;
  tenants : int;
  duration_ms : int;  (* simulated measurement window *)
  zipf : float;  (* working-set skew; quantized to quarters *)
  seed : int;
  num_blocks : int;  (* logical volume size *)
  files_per_tenant : int;
  arrival : arrival;
  think_ms : int;  (* closed-loop think time *)
  rate_hz : int;  (* open-loop offered load, ops/sim-sec, all clients *)
  states : int;  (* crash states per tenant campaign *)
}

let default =
  {
    clients = 1000;
    tenants = 4;
    duration_ms = 10_000;
    zipf = 0.75;
    seed = 42;
    num_blocks = 262_144 (* 1 GiB of 4 KiB blocks *);
    files_per_tenant = 16;
    arrival = Mixed;
    think_ms = 2_000;
    rate_hz = 80;
    states = 1000;
  }

type tenant_stat = { ts_tenant : int; ts_ops : int; ts_viol : int; ts_cross : int }

type report = {
  r_fs : string;
  r_clients : int;
  r_tenants : int;
  r_seed : int;
  r_zipf_milli : int;
  r_arrival : string;
  r_duration_ms : int;
  r_num_blocks : int;
  r_ops : int;
  r_errors : int;
  r_ops_per_sim_sec : int;
  r_p50_us : int;
  r_p99_us : int;
  r_op_counts : (string * int) list;
  r_chunks_touched : int;
  r_blocks_touched : int;
  r_states : int;
  r_tc : int;
  r_viol : int;
  r_cross : int;
  r_mount_viol : int;
  r_tenant : tenant_stat list;
}

(* ------------------------------------------------------------------ *)
(* Deterministic randomness without libm                               *)
(* ------------------------------------------------------------------ *)

(* Von Neumann (1951): a unit-mean exponential variate from uniform
   draws and comparisons only. pow/exp/log carry no cross-platform
   rounding guarantee; this does. *)
let exp_draw prng =
  let rec attempt n =
    let u1 = Prng.float prng 1.0 in
    let rec run prev k =
      let u = Prng.float prng 1.0 in
      if u < prev then run u (k + 1) else k
    in
    if run u1 1 land 1 = 1 then float_of_int n +. u1 else attempt (n + 1)
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* The event queue                                                     *)
(* ------------------------------------------------------------------ *)

(* Binary min-heap ordered by (time, client, seq) — the deterministic
   tie-break that makes the schedule a pure function of the seed. *)
module Pq = struct
  type ev = { at : float; client : int; seq : int }

  type t = { mutable a : ev array; mutable n : int }

  let nil = { at = 0.0; client = -1; seq = -1 }
  let create () = { a = Array.make 1024 nil; n = 0 }

  let lt x y =
    x.at < y.at
    || (x.at = y.at
       && (x.client < y.client || (x.client = y.client && x.seq < y.seq)))

  let push t e =
    if t.n = Array.length t.a then begin
      let bigger = Array.make (2 * t.n) nil in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- e;
    let i = ref t.n in
    t.n <- t.n + 1;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt t.a.(!i) t.a.(p)
      &&
      (let tmp = t.a.(p) in
       t.a.(p) <- t.a.(!i);
       t.a.(!i) <- tmp;
       i := p;
       true)
    do
      ()
    done

  let pop t =
    let top = t.a.(0) in
    t.n <- t.n - 1;
    t.a.(0) <- t.a.(t.n);
    t.a.(t.n) <- nil;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.n && lt t.a.(l) t.a.(!s) then s := l;
      if r < t.n && lt t.a.(r) t.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = t.a.(!s) in
        t.a.(!s) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !s
      end
    done;
    top

  let is_empty t = t.n = 0
end

(* ------------------------------------------------------------------ *)
(* The load phase                                                      *)
(* ------------------------------------------------------------------ *)

(* Latency buckets, 50 us to 60 simulated seconds: saturated closed
   loops live in the long tail and the p99 must not fall off the
   histogram. *)
let lat_buckets =
  [|
    0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0; 30.0; 50.0;
    80.0; 120.0; 200.0; 300.0; 500.0; 800.0; 1200.0; 2000.0; 3000.0; 5000.0;
    8000.0; 12000.0; 20000.0; 30000.0; 60000.0;
  |]

let quantile_us (h : Obs.histogram) q =
  if h.Obs.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (q *. float_of_int h.Obs.count) + 1 in
      if r > h.Obs.count then h.Obs.count else r
    in
    let n = Array.length h.Obs.bounds in
    let cum = ref 0 and ans = ref (-1) in
    (try
       for i = 0 to n - 1 do
         cum := !cum + h.Obs.counts.(i);
         if !cum >= rank then begin
           ans := int_of_float (h.Obs.bounds.(i) *. 1000.0);
           raise Exit
         end
       done
     with Exit -> ());
    if !ans >= 0 then !ans
    else (* overflow bucket: report twice the last bound *)
      int_of_float (h.Obs.bounds.(n - 1) *. 2000.0)
  end

let tenant_of_client cfg c = c mod cfg.tenants
let dir_of_tenant k = Printf.sprintf "/t%d" k
let file_path k j = Printf.sprintf "/t%d/f%d" k j

type op_kind = Op_read | Op_write | Op_write_fsync | Op_stat

type client = {
  c_tenant : int;
  c_prng : Prng.t;
  c_closed : bool;
  c_lambda_ms : float; (* open-loop mean interarrival, ms *)
  mutable c_seq : int;
}

exception Stop_load

let run_load cfg brand =
  let params =
    {
      Memdisk.default_params with
      Memdisk.num_blocks = cfg.num_blocks;
      seed = cfg.seed lxor 0x51AB;
    }
  in
  let disk = Sparse.create ~params () in
  Sparse.set_time_model disk false;
  let dev = Sparse.dev disk in
  (match Fs.mkfs brand dev with
  | Ok () -> ()
  | Error e -> failwith ("traffic: mkfs: " ^ Iron_vfs.Errno.to_string e));
  let (Fs.Boxed ((module F), t)) =
    match Fs.mount brand dev with
    | Ok b -> b
    | Error e -> failwith ("traffic: mount: " ^ Iron_vfs.Errno.to_string e)
  in
  (* Per-tenant working sets, then a full sync so measurement starts
     from a quiet volume and a zeroed clock. *)
  for k = 0 to cfg.tenants - 1 do
    (match F.mkdir t (dir_of_tenant k) with
    | Ok () -> ()
    | Error e -> failwith ("traffic: mkdir: " ^ Iron_vfs.Errno.to_string e));
    for j = 0 to cfg.files_per_tenant - 1 do
      match F.creat t (file_path k j) with
      | Error e -> failwith ("traffic: creat: " ^ Iron_vfs.Errno.to_string e)
      | Ok fd ->
          let len = 512 + (97 * j mod 1536) in
          let data = Bytes.make len (Char.chr (Char.code 'a' + (j mod 26))) in
          (match F.write t fd ~off:0 data with
          | Ok _ -> ()
          | Error e -> failwith ("traffic: write: " ^ Iron_vfs.Errno.to_string e));
          ignore (F.close t fd)
    done
  done;
  (match F.sync t with
  | Ok () -> ()
  | Error e -> failwith ("traffic: sync: " ^ Iron_vfs.Errno.to_string e));
  (* Zero the clock and statistics without disturbing content, then
     turn the service-time model on for the measured window. *)
  Sparse.restore disk (Sparse.snapshot disk);
  Sparse.set_time_model disk true;
  let zipf = Zipf.create ~n:cfg.files_per_tenant ~theta:cfg.zipf in
  let obs = Obs.create () in
  let duration = float_of_int cfg.duration_ms in
  let lambda_ms =
    (* Per-client open-loop rate: the offered total spread evenly. *)
    float_of_int cfg.rate_hz /. float_of_int (max 1 cfg.clients) /. 1000.0
  in
  let clients =
    Array.init cfg.clients (fun c ->
        let closed =
          match cfg.arrival with
          | Poisson -> false
          | Closed -> true
          | Mixed -> c land 1 = 1
        in
        {
          c_tenant = tenant_of_client cfg c;
          c_prng = Prng.create ((cfg.seed * 1_000_003) + c);
          c_closed = closed;
          c_lambda_ms = lambda_ms;
          c_seq = 0;
        })
  in
  let pq = Pq.create () in
  Array.iteri
    (fun c cl ->
      let at =
        if cl.c_closed then Prng.float cl.c_prng (float_of_int cfg.think_ms)
        else exp_draw cl.c_prng /. cl.c_lambda_ms
      in
      Pq.push pq { Pq.at; client = c; seq = cl.c_seq };
      cl.c_seq <- cl.c_seq + 1)
    clients;
  let ops = ref 0 and errors = ref 0 in
  let op_counts = [| 0; 0; 0; 0 |] in
  let tenant_ops = Array.make cfg.tenants 0 in
  let busy_until = ref 0.0 in
  (try
     while not (Pq.is_empty pq) do
       let ev = Pq.pop pq in
       if ev.Pq.at > duration then raise Stop_load;
       let cl = clients.(ev.Pq.client) in
       (* Open-loop arrivals renew independently of completion. *)
       if not cl.c_closed then begin
         let at = ev.Pq.at +. (exp_draw cl.c_prng /. cl.c_lambda_ms) in
         Pq.push pq { Pq.at; client = ev.Pq.client; seq = cl.c_seq };
         cl.c_seq <- cl.c_seq + 1
       end;
       let p = cl.c_prng in
       let kind =
         let r = Prng.int p 100 in
         if r < 45 then Op_read
         else if r < 80 then Op_write
         else if r < 95 then Op_write_fsync
         else Op_stat
       in
       let path = file_path cl.c_tenant (Zipf.sample zipf p) in
       let d0 = dev.Dev.now () in
       let ok =
         match kind with
         | Op_stat -> ( match F.stat t path with Ok _ -> true | Error _ -> false)
         | Op_read -> (
             match F.open_ t path Fs.Rd with
             | Error _ -> false
             | Ok fd ->
                 let r =
                   match F.read t fd ~off:(Prng.int p 1024) ~len:256 with
                   | Ok _ -> true
                   | Error _ -> false
                 in
                 ignore (F.close t fd);
                 r)
         | Op_write | Op_write_fsync -> (
             match F.open_ t path Fs.Rdwr with
             | Error _ -> false
             | Ok fd ->
                 let data = Bytes.make 256 (Char.chr (33 + Prng.int p 90)) in
                 let r =
                   match F.write t fd ~off:(Prng.int p 2048) data with
                   | Ok _ -> true
                   | Error _ -> false
                 in
                 let r =
                   if r && kind = Op_write_fsync then
                     match F.fsync t fd with Ok () -> true | Error _ -> false
                   else r
                 in
                 ignore (F.close t fd);
                 r)
       in
       let service = dev.Dev.now () -. d0 in
       (* Single FIFO server: start when both the request and the disk
          are ready; latency is queueing plus service. *)
       let start = if ev.Pq.at > !busy_until then ev.Pq.at else !busy_until in
       let completion = start +. service in
       busy_until := completion;
       let latency = completion -. ev.Pq.at in
       Obs.observe ~buckets:lat_buckets obs "traffic.op.ms" latency;
       incr ops;
       if not ok then incr errors;
       (match kind with
       | Op_read -> op_counts.(0) <- op_counts.(0) + 1
       | Op_write -> op_counts.(1) <- op_counts.(1) + 1
       | Op_write_fsync -> op_counts.(2) <- op_counts.(2) + 1
       | Op_stat -> op_counts.(3) <- op_counts.(3) + 1);
       tenant_ops.(cl.c_tenant) <- tenant_ops.(cl.c_tenant) + 1;
       if cl.c_closed then begin
         let at = completion +. float_of_int cfg.think_ms in
         Pq.push pq { Pq.at; client = ev.Pq.client; seq = cl.c_seq };
         cl.c_seq <- cl.c_seq + 1
       end
     done
   with
  | Stop_load -> ()
  | Klog.Panic _ -> ());
  Sparse.set_time_model disk false;
  (match F.unmount t with Ok () -> () | Error _ -> ());
  let img = Sparse.snapshot disk in
  let hist =
    match List.assoc_opt "traffic.op.ms" (Obs.snapshot obs) with
    | Some (Obs.Histogram h) -> Some h
    | _ -> None
  in
  let p50 = match hist with Some h -> quantile_us h 0.50 | None -> 0 in
  let p99 = match hist with Some h -> quantile_us h 0.99 | None -> 0 in
  Obs.release obs;
  ( !ops,
    !errors,
    op_counts,
    tenant_ops,
    p50,
    p99,
    Sparse.image_chunks_touched img,
    Sparse.image_blocks_touched img )

(* ------------------------------------------------------------------ *)
(* The blast-radius phase                                              *)
(* ------------------------------------------------------------------ *)

let durable_content k i =
  Printf.sprintf "t%d-d%d-%s" k i
    (String.make (700 + (i * 911 mod 3000)) (Char.chr (Char.code 'a' + k)))

let racing_content step =
  Printf.sprintf "step%d-%s" step
    (String.make
       (900 + (step * 1777 mod 6200))
       (Char.chr (Char.code 'a' + (step mod 26))))

let tenant_of_path path =
  (* "/t<k>/..." *)
  if String.length path >= 3 && path.[0] = '/' && path.[1] = 't' then
    let rec num i acc =
      if i < String.length path && path.[i] >= '0' && path.[i] <= '9' then
        num (i + 1) ((acc * 10) + (Char.code path.[i] - Char.code '0'))
      else if i < String.length path && path.[i] = '/' then acc
      else -1
    in
    num 2 0
  else -1

let durable_per_tenant = 2
let racing_per_tenant = 2

let run_blast ?(jobs = 1) cfg brand =
  let params =
    {
      Memdisk.default_params with
      Memdisk.num_blocks = 2048;
      seed = cfg.seed lxor 0x7A11;
    }
  in
  (* The durable landscape: per-tenant directories and fsync'd files,
     checkpointed into the base image — what every crash state must
     preserve. *)
  let setup (Fs.Boxed ((module F), t)) =
    for k = 0 to cfg.tenants - 1 do
      (match F.mkdir t (dir_of_tenant k) with
      | Ok () -> ()
      | Error e -> failwith ("traffic: mkdir: " ^ Iron_vfs.Errno.to_string e));
      for i = 0 to durable_per_tenant - 1 do
        let path = Printf.sprintf "/t%d/d%d" k i in
        match F.creat t path with
        | Error e -> failwith ("traffic: creat: " ^ Iron_vfs.Errno.to_string e)
        | Ok fd ->
            (match
               F.write t fd ~off:0 (Bytes.of_string (durable_content k i))
             with
            | Ok _ -> ()
            | Error e ->
                failwith ("traffic: write: " ^ Iron_vfs.Errno.to_string e));
            (match F.fsync t fd with
            | Ok () -> ()
            | Error e ->
                failwith ("traffic: fsync: " ^ Iron_vfs.Errno.to_string e));
            ignore (F.close t fd)
      done
    done
  in
  let base = Explore.make_base ~params ~setup brand in
  (* The racing slice: a deterministic round-robin of tenant writes,
     every third one fsync'd, each op Prov-tagged with its index so the
     recorded writes carry their tenant. *)
  let steps = 12 * cfg.tenants in
  let op_tenant = Array.make steps 0 in
  let ops (Fs.Boxed ((module F), t)) ~closed_epochs:_ =
    let rng = Prng.create (cfg.seed lxor 0xB1A5) in
    let zipf = Zipf.create ~n:racing_per_tenant ~theta:cfg.zipf in
    let created = Hashtbl.create 16 in
    for step = 0 to steps - 1 do
      let k = step mod cfg.tenants in
      op_tenant.(step) <- k;
      let j = Zipf.sample zipf rng in
      let path = Printf.sprintf "/t%d/r%d" k j in
      let verb = if step mod 3 = 2 then "write+fsync" else "write" in
      Prov.with_op step (Printf.sprintf "t%d %s %s" k verb path) (fun () ->
          let fd =
            if Hashtbl.mem created path then
              match F.open_ t path Fs.Rdwr with Ok fd -> Some fd | Error _ -> None
            else
              match F.creat t path with
              | Ok fd ->
                  Hashtbl.replace created path ();
                  Some fd
              | Error _ -> None
          in
          match fd with
          | None -> ()
          | Some fd ->
              ignore
                (F.write t fd ~off:0 (Bytes.of_string (racing_content step)));
              if step mod 3 = 2 then ignore (F.fsync t fd);
              ignore (F.close t fd))
    done
  in
  let session = Explore.record_session ~params ~base ~ops brand in
  let specs =
    Array.of_list
      (Explore.enumerate_session ~seed:(cfg.seed + 13) ~max_states:cfg.states
         session)
  in
  let expects =
    let all =
      List.concat
        (List.init cfg.tenants (fun k ->
             List.init durable_per_tenant (fun i ->
                 {
                   Explore.ex_path = Printf.sprintf "/t%d/d%d" k i;
                   ex_presence = `Present;
                   ex_allowed = Some [ durable_content k i ];
                 })))
    in
    fun ~epoch:_ -> all
  in
  (* Prime the session's lazy geometry on this domain before the check
     fans out: the cache is written once, read-only afterwards. *)
  if Array.length specs > 0 then
    ignore (Explore.spec_epoch session specs.(0));
  let indexed = Array.to_list (Array.mapi (fun i s -> (i, s)) specs) in
  let results =
    Pool.map_jobs ~jobs
      (fun (_, spec) ->
        let o =
          Explore.check_spec_all ~params ~brand ~fsck:false ~expects session
            spec
        in
        let culprit =
          match Explore.spec_first_dropped session spec with
          | Some tag when tag.Prov.op >= 0 && tag.Prov.op < steps ->
              op_tenant.(tag.Prov.op)
          | _ -> -1
        in
        let viols =
          List.map
            (fun (path, _) -> (tenant_of_path path, culprit))
            o.Explore.oa_failed
        in
        let mount_bad = match o.Explore.oa_global with Some _ -> 1 | None -> 0 in
        (o.Explore.oa_tc, viols, mount_bad))
      indexed
  in
  let tc = ref 0 and cross = ref 0 and mount_viol = ref 0 in
  let viol_by = Array.make cfg.tenants 0 in
  let cross_by = Array.make cfg.tenants 0 in
  List.iter
    (fun (t, viols, mb) ->
      if t then incr tc;
      mount_viol := !mount_viol + mb;
      List.iter
        (fun (victim, culprit) ->
          if victim >= 0 && victim < cfg.tenants then begin
            viol_by.(victim) <- viol_by.(victim) + 1;
            if culprit >= 0 && culprit <> victim then begin
              incr cross;
              cross_by.(victim) <- cross_by.(victim) + 1
            end
          end)
        viols)
    results;
  (Array.length specs, !tc, viol_by, cross_by, !cross, !mount_viol)

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(jobs = 1) cfg brand =
  let ( ops,
        errors,
        op_counts,
        tenant_ops,
        p50,
        p99,
        chunks_touched,
        blocks_touched ) =
    run_load cfg brand
  in
  let states, tc, viol_by, cross_by, cross, mount_viol =
    run_blast ~jobs cfg brand
  in
  let zipf = Zipf.create ~n:cfg.files_per_tenant ~theta:cfg.zipf in
  {
    r_fs = Fs.brand_name brand;
    r_clients = cfg.clients;
    r_tenants = cfg.tenants;
    r_seed = cfg.seed;
    r_zipf_milli = Zipf.theta_milli zipf;
    r_arrival = arrival_to_string cfg.arrival;
    r_duration_ms = cfg.duration_ms;
    r_num_blocks = cfg.num_blocks;
    r_ops = ops;
    r_errors = errors;
    r_ops_per_sim_sec = ops * 1000 / max 1 cfg.duration_ms;
    r_p50_us = p50;
    r_p99_us = p99;
    r_op_counts =
      [
        ("read", op_counts.(0));
        ("write", op_counts.(1));
        ("write+fsync", op_counts.(2));
        ("stat", op_counts.(3));
      ];
    r_chunks_touched = chunks_touched;
    r_blocks_touched = blocks_touched;
    r_states = states;
    r_tc = tc;
    r_viol = Array.fold_left ( + ) 0 viol_by;
    r_cross = cross;
    r_mount_viol = mount_viol;
    r_tenant =
      List.init cfg.tenants (fun k ->
          {
            ts_tenant = k;
            ts_ops = tenant_ops.(k);
            ts_viol = viol_by.(k);
            ts_cross = cross_by.(k);
          });
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%s: traffic %d clients / %d tenants (%s, zipf %d/1000, seed %d): %d ops \
     in %d sim-ms (%d ops/sim-s, p50 %d us, p99 %d us, %d errors)@,"
    r.r_fs r.r_clients r.r_tenants r.r_arrival r.r_zipf_milli r.r_seed r.r_ops
    r.r_duration_ms r.r_ops_per_sim_sec r.r_p50_us r.r_p99_us r.r_errors;
  Format.fprintf ppf
    "  volume %d blocks, %d chunks / %d blocks materialized@," r.r_num_blocks
    r.r_chunks_touched r.r_blocks_touched;
  Format.fprintf ppf
    "  blast radius: %d crash states, %d tenant violations (%d cross-tenant), \
     %d mount-level, Tc detections %d@,"
    r.r_states r.r_viol r.r_cross r.r_mount_viol r.r_tc;
  List.iter
    (fun ts ->
      Format.fprintf ppf "  t%d: ops %d, violations %d (cross %d)@,"
        ts.ts_tenant ts.ts_ops ts.ts_viol ts.ts_cross)
    r.r_tenant;
  Format.fprintf ppf "@]"
