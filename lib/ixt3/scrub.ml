open Iron_util
module Dev = Iron_disk.Dev
module Errno = Iron_vfs.Errno
module Layout = Iron_ext3.Layout
module Inode = Iron_ext3.Inode
module Profile = Iron_ext3.Profile

let ( let* ) = Result.bind

type report = {
  scanned : int;
  latent_errors : int;
  corrupt : int;
  repaired : int;
  unrecoverable : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "scrub: %d blocks scanned, %d latent errors, %d corrupt, %d repaired, %d unrecoverable"
    r.scanned r.latent_errors r.corrupt r.repaired r.unrecoverable

(* Map every live data block to (owner blocks list, parity block) so a
   damaged member can be rebuilt by XOR over its group. *)
let parity_groups dev lay =
  let read b = match dev.Dev.read b with Ok d -> Some d | Error _ -> None in
  let groups = Hashtbl.create 32 in
  let ptrs_of b =
    match read b with
    | None -> []
    | Some blk ->
        List.init lay.Layout.ptrs_per_block (fun i -> Codec.read_u32 blk (i * 4))
        |> List.filter (fun p -> p > 0 && p < lay.Layout.num_blocks)
  in
  for ino = 1 to Layout.total_inodes lay do
    let blk, off = Layout.inode_location lay ino in
    match read blk with
    | None -> ()
    | Some buf -> (
        let i = Inode.decode lay buf off in
        match i.Inode.kind with
        | Inode.Regular when i.Inode.parity > 0 ->
            let members = ref [] in
            Array.iter (fun p -> if p > 0 then members := p :: !members) i.Inode.direct;
            List.iter (fun p -> members := p :: !members) (ptrs_of i.Inode.ind);
            List.iter
              (fun l1 -> List.iter (fun p -> members := p :: !members) (ptrs_of l1))
              (ptrs_of i.Inode.dind);
            let members = !members in
            List.iter
              (fun m -> Hashtbl.replace groups m (members, i.Inode.parity))
              (i.Inode.parity :: members)
        | Inode.Regular | Inode.Directory | Inode.Symlink | Inode.Free -> ())
  done;
  groups

let run_pass profile dev =
  Iron_obs.Obs.span_a ~subsystem:"ixt3.scrub" "pass" @@ fun () ->
  let* lay =
    match dev.Dev.read 0 with
    | Error _ -> Error Errno.EIO
    | Ok buf -> (
        match Iron_ext3.Sb.decode buf with
        | Ok sb ->
            Ok (Layout.compute ~block_size:sb.Iron_ext3.Sb.block_size
                  ~num_blocks:sb.Iron_ext3.Sb.num_blocks)
        | Error e -> Error e)
  in
  let classify = Iron_ext3.Classifier.classify (fun b -> Dev.read_exn dev b) in
  let groups = parity_groups dev lay in
  let stored_cksum b =
    let cb, off = Layout.cksum_location lay b in
    match dev.Dev.read cb with
    | Ok buf -> Some (Bytes.sub_string buf off 20)
    | Error _ -> None
  in
  let rmap_shadow b =
    let rb, off = Layout.rmap_location lay b in
    match dev.Dev.read rb with
    | Ok buf -> ( match Codec.read_u32 buf off with 0 -> None | s -> Some s)
    | Error _ -> None
  in
  let replica_of b =
    match Layout.replica_of lay b with Some r -> Some r | None -> rmap_shadow b
  in
  let checksummed label =
    match label with
    | "bitmap" | "i-bitmap" | "inode" | "dir" | "indirect" ->
        profile.Profile.meta_checksum
    | "data" | "parity" -> profile.Profile.data_checksum
    | _ -> false
  in
  let latent = ref 0 and corrupt = ref 0 and repaired = ref 0 and dead = ref 0 in
  let repair_from_parity b =
    match Hashtbl.find_opt groups b with
    | None -> false
    | Some (members, parity) ->
        let acc = Bytes.make lay.Layout.block_size '\000' in
        let xor_in src =
          for i = 0 to Bytes.length acc - 1 do
            Bytes.set acc i
              (Char.chr (Char.code (Bytes.get acc i) lxor Char.code (Bytes.get src i)))
          done
        in
        let ok = ref true in
        List.iter
          (fun m ->
            if m <> b then
              match dev.Dev.read m with
              | Ok d -> xor_in d
              | Error _ -> ok := false)
          (parity :: List.filter (fun m -> m <> parity) members);
        if !ok then
          match dev.Dev.write b acc with Ok () -> true | Error _ -> false
        else false
  in
  let repair_meta b =
    if not profile.Profile.meta_replica then false
    else
      match replica_of b with
      | None -> false
      | Some r -> (
          match dev.Dev.read r with
          | Error _ -> false
          | Ok copy -> (
              match dev.Dev.write b copy with Ok () -> true | Error _ -> false))
  in
  let repair b label =
    match label with
    | "data" | "parity" ->
        if profile.Profile.data_parity && repair_from_parity b then true
        else repair_meta b
    | _ -> if repair_meta b then true else repair_from_parity b
  in
  for b = 0 to lay.Layout.num_blocks - 1 do
    let label = classify b in
    match dev.Dev.read b with
    | Error _ ->
        incr latent;
        if repair b label then incr repaired else incr dead
    | Ok data ->
        if checksummed label then begin
          match stored_cksum b with
          | None -> ()
          | Some stored ->
              if not (String.equal stored (Sha1.to_raw (Sha1.digest data))) then begin
                incr corrupt;
                if repair b label then incr repaired else incr dead
              end
        end
  done;
  Ok
    {
      scanned = lay.Layout.num_blocks;
      latent_errors = !latent;
      corrupt = !corrupt;
      repaired = !repaired;
      unrecoverable = !dead;
    }

let run ?(passes = 3) profile dev =
  Iron_obs.Obs.span_a ~subsystem:"ixt3.scrub" "run" @@ fun () ->
  let ( let* ) = Result.bind in
  let rec go n acc =
    let* r = run_pass profile dev in
    let acc =
      match acc with
      | None -> r
      | Some first ->
          {
            first with
            repaired = first.repaired + r.repaired;
            unrecoverable = r.unrecoverable;
          }
    in
    if n + 1 >= passes || r.repaired = 0 then Ok acc else go (n + 1) (Some acc)
  in
  go 0 None
