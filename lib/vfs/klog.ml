type level = Info | Warning | Error

type entry = {
  time : float; (* simulated ms at emission *)
  level : level;
  subsystem : string;
  message : string;
}

type t = {
  clock : unit -> float;
  mutable entries : entry list; (* newest first *)
}

exception Panic of string

let create ?(clock = fun () -> 0.0) () = { clock; entries = [] }

let push t level subsystem message =
  t.entries <- { time = t.clock (); level; subsystem; message } :: t.entries

let log t level subsystem fmt =
  Format.kasprintf (fun message -> push t level subsystem message) fmt

let info t sub fmt = log t Info sub fmt
let warn t sub fmt = log t Warning sub fmt
let error t sub fmt = log t Error sub fmt

let panic t subsystem fmt =
  Format.kasprintf
    (fun message ->
      push t Error subsystem message;
      raise (Panic (subsystem ^ ": " ^ message)))
    fmt

let entries t = List.rev t.entries
let errors t = List.rev (List.filter (fun e -> e.level = Error) t.entries)
let clear t = t.entries <- []

let pp_entry fmt e =
  let lvl =
    match e.level with Info -> "info" | Warning -> "warn" | Error -> "ERROR"
  in
  Format.fprintf fmt "[%10.3f] [%s] %s: %s" e.time lvl e.subsystem e.message
