(** Per-mount kernel-log capture.

    Each mounted file system owns a [Klog.t]; everything it would have
    [printk]'d goes here, and the fingerprinting engine inspects it as
    one of the three observable outputs (§4.3). [panic] models a kernel
    panic (ReiserFS's favourite recovery technique): it logs and raises
    {!Panic}, which the caller of the file-system operation — the
    "machine" — catches.

    Entries are timestamped with {e simulated} time: [create] takes the
    mounting device's clock (milliseconds), so the log lines up with
    the I/O trace and span buffer of the observability layer. With no
    clock, entries read [0.000] — fingerprinting campaigns run the
    disk's service-time model off, and their logs are deliberately
    time-free so output stays byte-stable. *)

type level = Info | Warning | Error

type entry = {
  time : float;  (** simulated ms when the entry was logged *)
  level : level;
  subsystem : string;
  message : string;
}

type t

exception Panic of string

val create : ?clock:(unit -> float) -> unit -> t
(** [create ~clock ()] stamps each entry with [clock ()]; pass the
    device's [Dev.now]. Default clock: constantly [0.0]. *)

val log : t -> level -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val info : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val error : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val panic : t -> string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Logs at [Error] then raises {!Panic}. Never returns. *)

val entries : t -> entry list
(** Oldest first. *)

val errors : t -> entry list
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
