open Iron_util
module Dev = Iron_disk.Dev
module Bcache = Iron_disk.Bcache
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Fs = Iron_vfs.Fs
module Obs = Iron_obs.Obs
module Fdtable = Iron_vfs.Fdtable
module Resolver = Iron_vfs.Resolver

let ( let* ) = Result.bind

(* ---- layout --------------------------------------------------------- *)

let super_block = 1
let journal_start = 2
let journal_len = 64
let super_magic = 0x52654673 (* "ReFs" *)
let jheader_magic = 0x524A4148 (* "RJAH" *)
let jdesc_magic = 0x524A4445
let jcommit_magic = 0x524A434F
let root_objid = 2
let first_objid = 3

type super = {
  mutable root_block : int;
  mutable free_blocks : int;
  mutable next_objid : int;
  num_blocks : int;
  bitmap_start : int;
  bitmap_blocks : int;
  first_data : int;
}

let encode_super s buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  Codec.put_u32 w super_magic;
  Codec.put_u32 w s.num_blocks;
  Codec.put_u32 w s.root_block;
  Codec.put_u32 w s.free_blocks;
  Codec.put_u32 w s.next_objid;
  Codec.put_u32 w s.bitmap_start;
  Codec.put_u32 w s.bitmap_blocks;
  Codec.put_u32 w s.first_data

let decode_super buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> super_magic then None
    else
      let num_blocks = Codec.get_u32 r in
      let root_block = Codec.get_u32 r in
      let free_blocks = Codec.get_u32 r in
      let next_objid = Codec.get_u32 r in
      let bitmap_start = Codec.get_u32 r in
      let bitmap_blocks = Codec.get_u32 r in
      let first_data = Codec.get_u32 r in
      if num_blocks < 8 || root_block >= num_blocks then None
      else
        Some
          { root_block; free_blocks; next_objid; num_blocks; bitmap_start;
            bitmap_blocks; first_data }
  with Codec.Decode_error _ -> None

(* ---- state ---------------------------------------------------------- *)

type fdesc = { fd_obj : int; fd_mode : Fs.open_mode }

type state = {
  dev : Dev.t;
  bs : int;
  klog : Klog.t;
  cache : Bcache.t;
  super : super;
  (* journaling, ext3-style write-ahead block log *)
  txn : (int, bytes) Hashtbl.t;
  mutable txn_order : int list;
  pending : (int, bytes) Hashtbl.t;
  mutable pending_order : int list;
  mutable jhead : int;
  mutable jseq : int;
  fds : fdesc Fdtable.t;
  mutable cwd : int;
  mutable root : int;
  mutable readonly : bool;
}

let zero_block t = Bytes.make t.bs '\000'
let now_seconds t = int_of_float (t.dev.Dev.now () /. 1000.)
let jend = journal_start + journal_len

(* ---- block access with journal overlay ------------------------------ *)

let overlay_find t b =
  match Hashtbl.find_opt t.txn b with
  | Some d -> Some d
  | None -> Hashtbl.find_opt t.pending b

let block_read_raw t b =
  match overlay_find t b with
  | Some d -> Ok (Bytes.copy d)
  | None -> (
      match Bcache.read t.cache b with
      | Ok d -> Ok d
      | Error _ -> Error Errno.EIO)

let txn_put t b data =
  if t.readonly then Klog.panic t.klog "reiserfs" "write to read-only filesystem";
  if not (Hashtbl.mem t.txn b) then t.txn_order <- b :: t.txn_order;
  Hashtbl.replace t.txn b (Bytes.copy data)

let meta_write t b data =
  txn_put t b data;
  Ok ()

(* ---- journal -------------------------------------------------------- *)

let encode_jheader t seq start =
  let buf = zero_block t in
  let w = Codec.writer buf in
  Codec.put_u32 w jheader_magic;
  Codec.put_u32 w seq;
  Codec.put_u32 w start;
  buf

let decode_jheader buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> jheader_magic then None
    else
      let seq = Codec.get_u32 r in
      let start = Codec.get_u32 r in
      Some (seq, start)
  with Codec.Decode_error _ -> None

let encode_jdesc t seq tags =
  let buf = zero_block t in
  let w = Codec.writer buf in
  Codec.put_u32 w jdesc_magic;
  Codec.put_u32 w seq;
  Codec.put_u32 w (List.length tags);
  List.iter (Codec.put_u32 w) tags;
  buf

let decode_jdesc buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> jdesc_magic then None
    else
      let seq = Codec.get_u32 r in
      let count = Codec.get_u32 r in
      if count > (Bytes.length buf - 12) / 4 then None
      else Some (seq, List.init count (fun _ -> Codec.get_u32 r))
  with Codec.Decode_error _ -> None

let encode_jcommit t seq =
  let buf = zero_block t in
  let w = Codec.writer buf in
  Codec.put_u32 w jcommit_magic;
  Codec.put_u32 w seq;
  buf

let decode_jcommit buf =
  try
    let r = Codec.reader buf in
    if Codec.get_u32 r <> jcommit_magic then None else Some (Codec.get_u32 r)
  with Codec.Decode_error _ -> None

(* Any failed metadata write panics the machine: first, do no harm. *)
let must_write t b data what =
  match t.dev.Dev.write b data with
  | Ok () -> ()
  | Error _ -> Klog.panic t.klog "reiserfs" "%s write to block %d failed; panicking" what b

let checkpoint t =
  Obs.span_a ~subsystem:"jrnl" "checkpoint" @@ fun () ->
  List.iter
    (fun b ->
      match Hashtbl.find_opt t.pending b with
      | None -> ()
      | Some data -> (
          match Bcache.write t.cache b data with
          | Ok () -> ()
          | Error _ -> Klog.panic t.klog "reiserfs" "checkpoint write to block %d failed" b))
    (List.sort compare (List.rev t.pending_order));
  Hashtbl.reset t.pending;
  t.pending_order <- [];
  (* The home-location writes must be durable before the journal header
     truncates the log: a crash that persisted the advanced header while
     a checkpoint write was still in flight would have no replay path. *)
  ignore (t.dev.Dev.sync ());
  t.jhead <- journal_start + 1;
  must_write t journal_start (encode_jheader t t.jseq t.jhead) "journal header";
  ignore (t.dev.Dev.sync ())

let commit t =
  if Hashtbl.length t.txn = 0 then Ok ()
  else
    Obs.span_a ~subsystem:"jrnl" "commit" @@ fun () ->
    begin
    let blocks = List.rev t.txn_order in
    let needed = 2 + List.length blocks in
    if t.jhead + needed > jend then checkpoint t;
    if t.jhead + needed > jend then begin
      (* Oversized transaction: flush directly (see ext3 note). *)
      List.iter
        (fun b ->
          match Hashtbl.find_opt t.txn b with
          | Some data -> (
              match Bcache.write t.cache b data with
              | Ok () -> ()
              | Error _ -> Klog.panic t.klog "reiserfs" "direct flush write failed")
          | None -> ())
        blocks;
      Hashtbl.reset t.txn;
      t.txn_order <- [];
      Ok ()
    end
    else begin
      let seq = t.jseq in
      must_write t t.jhead (encode_jdesc t seq blocks) "journal descriptor";
      let pos = ref (t.jhead + 1) in
      List.iter
        (fun b ->
          (match Hashtbl.find_opt t.txn b with
          | Some data -> must_write t !pos data "journal data"
          | None -> ());
          incr pos)
        blocks;
      ignore (t.dev.Dev.sync ());
      must_write t !pos (encode_jcommit t seq) "journal commit";
      incr pos;
      ignore (t.dev.Dev.sync ());
      t.jhead <- !pos;
      t.jseq <- seq + 1;
      List.iter
        (fun b ->
          match Hashtbl.find_opt t.txn b with
          | None -> ()
          | Some data ->
              if not (Hashtbl.mem t.pending b) then
                t.pending_order <- b :: t.pending_order;
              Hashtbl.replace t.pending b data)
        blocks;
      Hashtbl.reset t.txn;
      t.txn_order <- [];
      Ok ()
    end
  end

(* ---- allocation ----------------------------------------------------- *)

let bit_get buf i = Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set buf i on =
  let v = Char.code (Bytes.get buf (i / 8)) in
  let v' = if on then v lor (1 lsl (i mod 8)) else v land lnot (1 lsl (i mod 8)) in
  Bytes.set buf (i / 8) (Char.chr (v' land 0xFF))

let alloc_block t =
  let per = t.bs * 8 in
  let rec try_map m =
    if m >= t.super.bitmap_blocks then Error Errno.ENOSPC
    else
      let bb = t.super.bitmap_start + m in
      let* buf = block_read_raw t bb in
      let base = m * per in
      let limit = min per (t.super.num_blocks - base) in
      let rec find i =
        if i >= limit then None
        else if not (bit_get buf i) && base + i >= t.super.first_data then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> try_map (m + 1)
      | Some i ->
          bit_set buf i true;
          let* () = meta_write t bb buf in
          t.super.free_blocks <- t.super.free_blocks - 1;
          Ok (base + i)
  in
  try_map 0

let free_block t b =
  if b < t.super.first_data || b >= t.super.num_blocks then Ok ()
  else begin
    let per = t.bs * 8 in
    let bb = t.super.bitmap_start + (b / per) in
    let* buf = block_read_raw t bb in
    if bit_get buf (b mod per) then begin
      bit_set buf (b mod per) false;
      let* () = meta_write t bb buf in
      t.super.free_blocks <- t.super.free_blocks + 1;
      Ok ()
    end
    else Ok ()
  end

let write_super t =
  let buf = Bytes.make t.bs '\000' in
  encode_super t.super buf;
  meta_write t super_block buf

(* ---- tree ----------------------------------------------------------- *)

(* Node sanity failure during tree traversal: ReiserFS panics rather
   than returning an error (a bug the paper calls out). Read failure of
   a node: propagate, with an optional single retry on delete paths. *)
let read_node t ?(retry = false) b =
  let attempt () = block_read_raw t b in
  let* buf =
    match attempt () with
    | Ok d -> Ok d
    | Error _ when retry ->
        Klog.warn t.klog "reiserfs" "retrying read of tree block %d" b;
        attempt ()
    | Error e -> Error e
  in
  match Rnode.decode buf with
  | Some node -> Ok node
  | None -> Klog.panic t.klog "reiserfs" "bad block header in tree block %d (sanity check failed)" b

let write_node t b node =
  let buf = zero_block t in
  Rnode.encode t.bs node buf;
  meta_write t b buf

(* Descend to the leaf that should contain [key]; returns the path of
   (block, node, child_index) from root to leaf, leaf last. *)
let descend t ?retry key =
  let rec go b acc =
    (* Journal replay installs stale block images without content checks
       (§5.2), so an internal node can end up pointing back up the path
       — an unbounded traversal without this check. A cycle is a sanity
       failure like a bad header: ReiserFS panics. *)
    if List.exists (fun (b', _, _) -> b' = b) acc then
      Klog.panic t.klog "reiserfs" "cycle in tree at block %d (sanity check failed)" b;
    let* node = read_node t ?retry b in
    match node with
    | Rnode.Leaf _ -> Ok ((b, node, 0) :: acc)
    | Rnode.Internal (keys, children) ->
        let rec pick i = function
          | [] -> i
          | k :: rest -> if Rnode.compare_key key k < 0 then i else pick (i + 1) rest
        in
        let idx = pick 0 keys in
        go (List.nth children idx) ((b, node, idx) :: acc)
  in
  let* path = go t.super.root_block [] in
  Ok (List.rev path)

let find_item t ?retry key =
  let* path = descend t ?retry key in
  match List.rev path with
  | (b, Rnode.Leaf items, _) :: _ -> (
      match List.find_opt (fun it -> Rnode.compare_key it.Rnode.key key = 0) items with
      | Some it -> Ok (Some (b, items, it))
      | None -> Ok None)
  | _ -> Ok None

let split_list l =
  let n = List.length l in
  let rec take k = function
    | [] -> ([], [])
    | x :: rest ->
        if k = 0 then ([], x :: rest)
        else
          let a, b = take (k - 1) rest in
          (x :: a, b)
  in
  take ((n + 1) / 2) l

(* Insert a (separator, child) pair into the ancestors; splits propagate
   upward, growing the tree at the root. [path] is root-first and does
   not include the split child itself. *)
let rec insert_into_parent t path sep newchild =
  match List.rev path with
  | [] ->
      (* The root itself split: grow the tree. *)
      let* nb = alloc_block t in
      let old_root = t.super.root_block in
      let* () = write_node t nb (Rnode.Internal ([ sep ], [ old_root; newchild ])) in
      t.super.root_block <- nb;
      write_super t
  | (b, Rnode.Internal (keys, children), idx) :: rest ->
      let keys' =
        List.filteri (fun i _ -> i < idx) keys
        @ [ sep ]
        @ List.filteri (fun i _ -> i >= idx) keys
      in
      let children' =
        List.filteri (fun i _ -> i <= idx) children
        @ [ newchild ]
        @ List.filteri (fun i _ -> i > idx) children
      in
      if List.length children' <= Rnode.max_children then
        write_node t b (Rnode.Internal (keys', children'))
      else begin
        (* Split this internal node. *)
        let n = List.length children' in
        let lc = (n + 1) / 2 in
        let left_children = List.filteri (fun i _ -> i < lc) children' in
        let right_children = List.filteri (fun i _ -> i >= lc) children' in
        let up_key = List.nth keys' (lc - 1) in
        let left_keys = List.filteri (fun i _ -> i < lc - 1) keys' in
        let right_keys = List.filteri (fun i _ -> i >= lc) keys' in
        let* nb = alloc_block t in
        let* () = write_node t b (Rnode.Internal (left_keys, left_children)) in
        let* () = write_node t nb (Rnode.Internal (right_keys, right_children)) in
        insert_into_parent t (List.rev rest) up_key nb
      end
  | (_, Rnode.Leaf _, _) :: _ -> Error Errno.EUCLEAN

(* Insert or replace an item. *)
let set_item t ?retry item =
  let key = item.Rnode.key in
  let* path = descend t ?retry key in
  match List.rev path with
  | (b, Rnode.Leaf items, _) :: rev_rest ->
      let items' =
        List.filter (fun it -> Rnode.compare_key it.Rnode.key key <> 0) items
      in
      let items' =
        List.sort (fun a bb -> Rnode.compare_key a.Rnode.key bb.Rnode.key)
          (item :: items')
      in
      if Rnode.leaf_fits t.bs items' then write_node t b (Rnode.Leaf items')
      else begin
        let left, right = split_list items' in
        let* nb = alloc_block t in
        let* () = write_node t b (Rnode.Leaf left) in
        let* () = write_node t nb (Rnode.Leaf right) in
        let sep =
          match right with it :: _ -> it.Rnode.key | [] -> key
        in
        insert_into_parent t (List.rev rev_rest) sep nb
      end
  | _ -> Error Errno.EUCLEAN

(* Delete the item with [key], pruning empty nodes up the tree. *)
let delete_item t ?retry key =
  let* path = descend t ?retry key in
  match List.rev path with
  | (b, Rnode.Leaf items, _) :: rev_rest ->
      let items' =
        List.filter (fun it -> Rnode.compare_key it.Rnode.key key <> 0) items
      in
      if items' <> [] || rev_rest = [] then write_node t b (Rnode.Leaf items')
      else begin
        (* Leaf drained: remove it from its parent chain. *)
        let* () = free_block t b in
        let rec prune rev_path removed_child =
          match rev_path with
          | [] ->
              (* Root drained to nothing: reinstall an empty leaf. *)
              let* nb = alloc_block t in
              let* () = write_node t nb (Rnode.Leaf []) in
              t.super.root_block <- nb;
              write_super t
          | (pb, Rnode.Internal (keys, children), _) :: rest ->
              let idx =
                let rec find i = function
                  | [] -> None
                  | c :: cs -> if c = removed_child then Some i else find (i + 1) cs
                in
                find 0 children
              in
              (match idx with
              | None -> write_node t pb (Rnode.Internal (keys, children))
              | Some i ->
                  let children' = List.filteri (fun j _ -> j <> i) children in
                  let keys' = List.filteri (fun j _ -> j <> max 0 (i - 1)) keys in
                  (match children' with
                  | [] ->
                      let* () = free_block t pb in
                      prune rest pb
                  | [ only ] when rest = [] ->
                      (* Root with one child: shrink the height. *)
                      let* () = free_block t pb in
                      t.super.root_block <- only;
                      write_super t
                  | _ -> write_node t pb (Rnode.Internal (keys', children'))))
          | (_, Rnode.Leaf _, _) :: _ -> Error Errno.EUCLEAN
        in
        prune rev_rest b
      end
  | _ -> Ok ()

(* ---- object helpers ------------------------------------------------- *)

let stat_key objid = { Rnode.objid; kind = Rnode.Stat; offset = 0 }
let dirent_key objid = { Rnode.objid; kind = Rnode.Dirent; offset = 0 }

let direct_key objid = { Rnode.objid; kind = Rnode.Direct; offset = 0 }

(* The tail, if this object is stored as a direct item (small files live
   inline in the leaf; Table 4's "direct item"). *)
let read_tail t ?retry objid =
  let* hit = find_item t ?retry (direct_key objid) in
  match hit with
  | Some (_, _, { Rnode.body = Rnode.Direct_body tail; _ }) -> Ok (Some tail)
  | Some _ | None -> Ok None

let write_tail t objid tail =
  set_item t { Rnode.key = direct_key objid; body = Rnode.Direct_body tail }

let indirect_key objid fblock =
  {
    Rnode.objid;
    kind = Rnode.Indirect;
    offset = fblock / Rnode.max_indirect_ptrs * Rnode.max_indirect_ptrs;
  }

let read_stat t ?retry objid =
  let* hit = find_item t ?retry (stat_key objid) in
  match hit with
  | Some (_, _, { Rnode.body = Rnode.Stat_body s; _ }) -> Ok s
  | Some _ | None -> Error Errno.ENOENT

let write_stat t objid s =
  set_item t { Rnode.key = stat_key objid; body = Rnode.Stat_body s }

let read_dirents t ?retry objid =
  let* hit = find_item t ?retry (dirent_key objid) in
  match hit with
  | Some (_, _, { Rnode.body = Rnode.Dirent_body es; _ }) -> Ok es
  | Some _ | None -> Ok []

let write_dirents t objid es =
  set_item t { Rnode.key = dirent_key objid; body = Rnode.Dirent_body es }

(* ---- data I/O ------------------------------------------------------- *)

let file_block_ptr t ?retry objid fblock =
  let* hit = find_item t ?retry (indirect_key objid fblock) in
  match hit with
  | Some (_, _, { Rnode.body = Rnode.Indirect_body ptrs; _ }) ->
      let i = fblock mod Rnode.max_indirect_ptrs in
      Ok (if i < Array.length ptrs then ptrs.(i) else 0)
  | Some _ | None -> Ok 0

let data_read_block t objid fblock =
  let* ptr = file_block_ptr t objid fblock in
  if ptr = 0 then Ok (zero_block t)
  else if ptr >= t.super.num_blocks then begin
    Klog.error t.klog "reiserfs" "impossible unformatted block %d" ptr;
    Error Errno.EIO
  end
  else
    match block_read_raw t ptr with
    | Ok d -> Ok d
    | Error _ ->
        (* ReiserFS retries a failed data-block read once (§5.2). *)
        Klog.warn t.klog "reiserfs" "retrying data block %d" ptr;
        block_read_raw t ptr

let data_write_block t objid fblock data =
  let key = indirect_key objid fblock in
  let* hit = find_item t key in
  let ptrs =
    match hit with
    | Some (_, _, { Rnode.body = Rnode.Indirect_body ptrs; _ }) -> Array.copy ptrs
    | Some _ | None -> [||]
  in
  let i = fblock mod Rnode.max_indirect_ptrs in
  let ptrs =
    if i < Array.length ptrs then ptrs
    else begin
      let bigger = Array.make (i + 1) 0 in
      Array.blit ptrs 0 bigger 0 (Array.length ptrs);
      bigger
    end
  in
  let* ptr =
    if ptrs.(i) <> 0 then Ok ptrs.(i)
    else
      let* b = alloc_block t in
      ptrs.(i) <- b;
      let* () = set_item t { Rnode.key; body = Rnode.Indirect_body ptrs } in
      Ok b
  in
  (* Ordered data write: the paper's ReiserFS bug — a failed ordered
     data-block write is not handled at all; the transaction commits
     over it (RZero). *)
  (match Bcache.write t.cache ptr data with Ok () -> () | Error _ -> ());
  Ok ()

(* Free data blocks and indirect items from file block [from] upward.
   Read failures here are detected but ignored — the space-leak bug. *)
let free_file_from t objid ~from ~old_size =
  let nblocks = (old_size + t.bs - 1) / t.bs in
  let errors = ref 0 in
  let rec go fblock =
    if fblock >= nblocks then Ok ()
    else begin
      let key = indirect_key objid fblock in
      (match find_item t key with
      | Ok (Some (_, _, { Rnode.body = Rnode.Indirect_body ptrs; _ })) ->
          let base = key.Rnode.offset in
          Array.iteri
            (fun i p ->
              if p <> 0 && base + i >= from then
                match free_block t p with Ok () -> () | Error _ -> incr errors)
            ptrs;
          if base >= from then begin
            match delete_item t key with Ok () -> () | Error _ -> incr errors
          end
      | Ok (Some _) | Ok None -> ()
      | Error _ -> incr errors);
      go (key.Rnode.offset + Rnode.max_indirect_ptrs)
    end
  in
  let* () = go from in
  if !errors > 0 then
    Klog.warn t.klog "reiserfs" "%d errors while freeing object %d (space leaked)"
      !errors objid;
  Ok ()

(* ---- resolver ------------------------------------------------------- *)

let resolver_ops t =
  {
    Resolver.lookup =
      (fun dir name ->
        let* es = read_dirents t dir in
        match List.assoc_opt name es with
        | Some o -> Ok o
        | None -> Error Errno.ENOENT);
    kind_of =
      (fun o ->
        let* s = read_stat t o in
        Ok s.Rnode.sk);
    readlink_of =
      (fun o ->
        let* s = read_stat t o in
        Ok s.Rnode.target);
  }

let resolve t ?follow_last path =
  Resolver.resolve (resolver_ops t) ~root:t.root ~cwd:t.cwd ?follow_last path

let resolve_parent t path =
  Resolver.resolve_parent (resolver_ops t) ~root:t.root ~cwd:t.cwd path

(* ---- mkfs / mount --------------------------------------------------- *)

let mkfs_impl dev =
  let bs = dev.Dev.block_size in
  let num_blocks = dev.Dev.num_blocks in
  let per = bs * 8 in
  let bitmap_blocks = (num_blocks + per - 1) / per in
  let bitmap_start = journal_start + journal_len in
  let first_data = bitmap_start + bitmap_blocks in
  let root_block = first_data in
  let zero = Bytes.make bs '\000' in
  let wr b data =
    match dev.Dev.write b data with Ok () -> Ok () | Error _ -> Error Errno.EIO
  in
  let rec zero_all b =
    if b >= num_blocks then Ok ()
    else
      let* () = wr b zero in
      zero_all (b + 1)
  in
  let* () = zero_all 0 in
  (* Root directory: stat + empty-ish dirent items in the root leaf. *)
  let now = 0 in
  let root_stat =
    {
      Rnode.sk = Fs.Directory;
      links = 2;
      uid = 0;
      gid = 0;
      perms = 0o755;
      size = bs;
      atime = now;
      mtime = now;
      ctime = now;
      target = "";
    }
  in
  let leaf =
    Rnode.Leaf
      [
        { Rnode.key = stat_key root_objid; body = Rnode.Stat_body root_stat };
        {
          Rnode.key = dirent_key root_objid;
          body = Rnode.Dirent_body [ (".", root_objid); ("..", root_objid) ];
        };
      ]
  in
  let buf = Bytes.make bs '\000' in
  Rnode.encode bs leaf buf;
  let* () = wr root_block buf in
  (* Bitmap: blocks up to and including the root leaf are in use. *)
  let bm = Bytes.make bs '\000' in
  for b = 0 to root_block do
    if b / per = 0 then bit_set bm b true
  done;
  let* () = wr bitmap_start bm in
  let rec other_maps m =
    if m >= bitmap_blocks then Ok ()
    else
      let* () = wr (bitmap_start + m) zero in
      other_maps (m + 1)
  in
  let* () = other_maps 1 in
  (* Journal header. *)
  let jh = Bytes.make bs '\000' in
  let w = Codec.writer jh in
  Codec.put_u32 w jheader_magic;
  Codec.put_u32 w 1;
  Codec.put_u32 w (journal_start + 1);
  let* () = wr journal_start jh in
  (* Superblock. *)
  let s =
    {
      root_block;
      free_blocks = num_blocks - root_block - 1;
      next_objid = first_objid;
      num_blocks;
      bitmap_start;
      bitmap_blocks;
      first_data;
    }
  in
  let sb = Bytes.make bs '\000' in
  encode_super s sb;
  let* () = wr super_block sb in
  match dev.Dev.sync () with Ok () -> Ok () | Error _ -> Error Errno.EIO

let recover_journal lay_dev klog =
  Obs.span_a ~subsystem:"jrnl" "recover" @@ fun () ->
  let dev = lay_dev in
  let* seq0, start =
    match dev.Dev.read journal_start with
    | Error _ ->
        Klog.error klog "reiserfs" "journal header unreadable";
        Error Errno.EIO
    | Ok buf -> (
        match decode_jheader buf with
        | Some (s, st) -> Ok (s, st)
        | None ->
            Klog.error klog "reiserfs" "journal header bad magic";
            Error Errno.EUCLEAN)
  in
  let txns = ref [] in
  let rec scan pos seq =
    if pos < jend then
      match dev.Dev.read pos with
      | Error _ -> Klog.error klog "reiserfs" "journal read failed in recovery"
      | Ok buf -> (
          match decode_jdesc buf with
          | Some (s, tags) when s = seq -> (
              let count = List.length tags in
              let copies = List.init count (fun i -> dev.Dev.read (pos + 1 + i)) in
              if List.exists Result.is_error copies then
                Klog.error klog "reiserfs" "journal data read failed in recovery"
              else
                match dev.Dev.read (pos + 1 + count) with
                | Ok cbuf when decode_jcommit cbuf = Some seq ->
                    (* NOTE: no content checking of the journaled data —
                       the paper's replay-corruption exposure (§5.2). *)
                    txns :=
                      (List.combine tags (List.map Result.get_ok copies)) :: !txns;
                    scan (pos + 2 + count) (seq + 1)
                | Ok _ | Error _ -> ())
          | Some _ | None -> ())
  in
  scan start seq0;
  let txns = List.rev !txns in
  List.iter
    (fun blocks ->
      List.iter
        (fun (home, copy) ->
          if home < dev.Dev.num_blocks then
            match dev.Dev.write home copy with
            | Ok () -> ()
            | Error _ -> Klog.error klog "reiserfs" "replay write failed")
        blocks)
    txns;
  if txns <> [] then
    Klog.info klog "reiserfs" "journal: replayed %d transactions" (List.length txns);
  let last_seq = seq0 + List.length txns in
  let jh = Bytes.make dev.Dev.block_size '\000' in
  let w = Codec.writer jh in
  Codec.put_u32 w jheader_magic;
  Codec.put_u32 w last_seq;
  Codec.put_u32 w (journal_start + 1);
  (match dev.Dev.write journal_start jh with
  | Ok () -> ()
  | Error _ -> Klog.error klog "reiserfs" "journal header update failed");
  ignore (dev.Dev.sync ());
  Ok last_seq

let mount_impl dev =
  let klog = Klog.create ~clock:dev.Dev.now () in
  let* jseq = recover_journal dev klog in
  let* super =
    match dev.Dev.read super_block with
    | Error _ ->
        Klog.error klog "reiserfs" "cannot read superblock";
        Error Errno.EIO
    | Ok buf -> (
        match decode_super buf with
        | Some s -> Ok s
        | None ->
            Klog.error klog "reiserfs" "superblock failed sanity check";
            Error Errno.EUCLEAN)
  in
  Ok
    {
      dev;
      bs = dev.Dev.block_size;
      klog;
      cache = Bcache.create ~capacity:512 dev;
      super;
      txn = Hashtbl.create 32;
      txn_order = [];
      pending = Hashtbl.create 32;
      pending_order = [];
      jhead = journal_start + 1;
      jseq;
      fds = Fdtable.create ();
      cwd = root_objid;
      root = root_objid;
      readonly = false;
    }

(* ---- operations ----------------------------------------------------- *)

let stat_of t objid (s : Rnode.stat_body) =
  ignore t;
  {
    Fs.st_ino = objid;
    st_kind = s.Rnode.sk;
    st_size = s.Rnode.size;
    st_links = s.Rnode.links;
    st_mode = s.Rnode.perms;
    st_uid = s.Rnode.uid;
    st_gid = s.Rnode.gid;
    st_atime = float_of_int s.Rnode.atime;
    st_mtime = float_of_int s.Rnode.mtime;
    st_ctime = float_of_int s.Rnode.ctime;
  }

let fresh_objid t =
  let o = t.super.next_objid in
  t.super.next_objid <- o + 1;
  o

let create_node t path sk ~perms ~target =
  let* dino, name = resolve_parent t path in
  let* ds = read_stat t dino in
  if ds.Rnode.sk <> Fs.Directory then Error Errno.ENOTDIR
  else
    let* es = read_dirents t dino in
    if List.mem_assoc name es then Error Errno.EEXIST
    else begin
      let objid = fresh_objid t in
      let now = now_seconds t in
      let stat =
        {
          Rnode.sk;
          links = (if sk = Fs.Directory then 2 else 1);
          uid = 0;
          gid = 0;
          perms;
          size = 0;
          atime = now;
          mtime = now;
          ctime = now;
          target;
        }
      in
      let* () = write_stat t objid stat in
      let* () =
        if sk = Fs.Directory then
          write_dirents t objid [ (".", objid); ("..", dino) ]
        else Ok ()
      in
      let* () = write_dirents t dino (es @ [ (name, objid) ]) in
      let* () =
        if sk = Fs.Directory then
          write_stat t dino
            { ds with Rnode.links = ds.Rnode.links + 1; mtime = now; ctime = now }
        else write_stat t dino { ds with Rnode.mtime = now; ctime = now }
      in
      let* () = write_super t in
      Ok objid
    end

let remove_common t path ~dir =
  let* dino, name = resolve_parent t path in
  let* es = read_dirents t dino in
  match List.assoc_opt name es with
  | None -> Error Errno.ENOENT
  | Some objid -> (
      let* s = read_stat t objid in
      match (dir, s.Rnode.sk) with
      | true, k when k <> Fs.Directory -> Error Errno.ENOTDIR
      | false, Fs.Directory -> Error Errno.EISDIR
      | _ ->
          let* () =
            if not dir then Ok ()
            else
              let* ces = read_dirents t objid in
              if List.for_all (fun (n, _) -> n = "." || n = "..") ces then Ok ()
              else Error Errno.ENOTEMPTY
          in
          let now = now_seconds t in
          let* () = write_dirents t dino (List.remove_assoc name es) in
          let links = s.Rnode.links - if dir then 2 else 1 in
          if (dir && links <= 1) || ((not dir) && links <= 0) then begin
            let* () = free_file_from t objid ~from:0 ~old_size:s.Rnode.size in
            let* () = delete_item t (direct_key objid) in
            let* () = delete_item t (dirent_key objid) in
            let* () = delete_item t (stat_key objid) in
            let* ds = read_stat t dino in
            let* () =
              write_stat t dino
                {
                  ds with
                  Rnode.links = (if dir then ds.Rnode.links - 1 else ds.Rnode.links);
                  mtime = now;
                  ctime = now;
                }
            in
            write_super t
          end
          else
            let* () = write_stat t objid { s with Rnode.links; ctime = now } in
            let* ds = read_stat t dino in
            write_stat t dino { ds with Rnode.mtime = now; ctime = now })

let op_read t fd ~off ~len =
  let* { fd_obj; _ } = Fdtable.find t.fds fd in
  let* s = read_stat t fd_obj in
  let len = max 0 (min len (s.Rnode.size - off)) in
  if len = 0 then Ok Bytes.empty
  else
    let* tail = read_tail t fd_obj in
    match tail with
    | Some tail ->
        (* Small file stored inline. *)
        let out = Bytes.make len '\000' in
        let avail = max 0 (min len (String.length tail - off)) in
        if avail > 0 then Bytes.blit_string tail off out 0 avail;
        Ok out
    | None ->
  begin
    let out = Bytes.create len in
    let rec fill pos =
      if pos >= len then Ok ()
      else begin
        let fblock = (off + pos) / t.bs in
        let boff = (off + pos) mod t.bs in
        let n = min (t.bs - boff) (len - pos) in
        let* data = data_read_block t fd_obj fblock in
        Bytes.blit data boff out pos n;
        fill (pos + n)
      end
    in
    let* () = fill 0 in
    Ok out
  end

(* A tail that outgrew {!Rnode.max_direct_bytes}: push it out to an
   unformatted block and continue with the indirect representation. *)
let convert_tail t objid tail =
  let buf = zero_block t in
  Bytes.blit_string tail 0 buf 0 (String.length tail);
  let* () = data_write_block t objid 0 buf in
  delete_item t (direct_key objid)

let op_write t fd ~off data =
  let* { fd_obj; fd_mode } = Fdtable.find t.fds fd in
  if fd_mode = Fs.Rd then Error Errno.EBADF
  else begin
    let* s = read_stat t fd_obj in
    let len = Bytes.length data in
    let new_size = max s.Rnode.size (off + len) in
    let* tail = read_tail t fd_obj in
    let* () =
      match tail with
      | Some tail when new_size > Rnode.max_direct_bytes ->
          convert_tail t fd_obj tail
      | Some _ | None -> Ok ()
    in
    if
      new_size <= Rnode.max_direct_bytes
      && (tail <> None || s.Rnode.size = 0)
    then begin
      (* Stay (or become) a direct item. *)
      let cur = match tail with Some tl -> tl | None -> "" in
      let b = Bytes.make new_size '\000' in
      Bytes.blit_string cur 0 b 0 (String.length cur);
      Bytes.blit data 0 b off len;
      let* () = write_tail t fd_obj (Bytes.to_string b) in
      let now = now_seconds t in
      let* () =
        write_stat t fd_obj
          { s with Rnode.size = new_size; mtime = now; ctime = now }
      in
      let* () = write_super t in
      Ok len
    end
    else begin
    let rec put pos =
      if pos >= len then Ok ()
      else begin
        let fblock = (off + pos) / t.bs in
        let boff = (off + pos) mod t.bs in
        let n = min (t.bs - boff) (len - pos) in
        let* buf =
          if boff = 0 && n = t.bs then Ok (Bytes.sub data pos n)
          else
            let* old = data_read_block t fd_obj fblock in
            Bytes.blit data pos old boff n;
            Ok old
        in
        let* () = data_write_block t fd_obj fblock buf in
        put (pos + n)
      end
    in
    let* () = put 0 in
    let now = now_seconds t in
    let* () =
      write_stat t fd_obj
        { s with Rnode.size = new_size; mtime = now; ctime = now }
    in
    let* () = write_super t in
    Ok len
    end
  end

let op_unmount t =
  let* () = commit t in
  checkpoint t;
  ignore (t.dev.Dev.sync ());
  Ok ()

(* ---- classifier & corruption ---------------------------------------- *)

let block_types =
  [
    "stat item"; "dir item"; "bitmap"; "indirect"; "data"; "super";
    "j-header"; "j-desc"; "j-commit"; "j-data"; "root"; "internal";
  ]

let journal_overlay raw bs =
  let overlay = Hashtbl.create 16 in
  let read b = try Some (raw b) with _ -> None in
  ignore bs;
  (match read journal_start with
  | None -> ()
  | Some jh -> (
      match decode_jheader jh with
      | None -> ()
      | Some (seq0, start) ->
          let rec scan pos seq =
            if pos < jend then
              match read pos with
              | None -> ()
              | Some buf -> (
                  match decode_jdesc buf with
                  | Some (s, tags) when s = seq -> (
                      let count = List.length tags in
                      let copies = List.init count (fun i -> read (pos + 1 + i)) in
                      match read (pos + 1 + count) with
                      | Some cbuf when decode_jcommit cbuf = Some seq ->
                          List.iter2
                            (fun home copy ->
                              match copy with
                              | Some c -> Hashtbl.replace overlay home c
                              | None -> ())
                            tags copies;
                          scan (pos + 2 + count) (seq + 1)
                      | Some _ | None -> ())
                  | Some _ | None -> ())
          in
          scan start seq0));
  overlay

let classify raw =
  let bs = try Bytes.length (raw super_block) with _ -> 4096 in
  let sup = (try decode_super (raw super_block) with _ -> None) in
  match sup with
  | None -> fun b -> if b = super_block then "super" else "?"
  | Some s ->
      let overlay = journal_overlay raw bs in
      let raw' b =
        match Hashtbl.find_opt overlay b with Some c -> c | None -> (raw b)
      in
      let labels = Hashtbl.create 64 in
      (* Walk the tree from the root. *)
      let rec walk b ~is_root =
        if b > 0 && b < s.num_blocks && not (Hashtbl.mem labels b) then begin
          match (try Rnode.decode (raw' b) with _ -> None) with
          | None -> ()
          | Some (Rnode.Internal (_, children)) ->
              Hashtbl.replace labels b (if is_root then "root" else "internal");
              List.iter (fun c -> walk c ~is_root:false) children
          | Some (Rnode.Leaf items) ->
              let counts = Hashtbl.create 4 in
              List.iter
                (fun it ->
                  let k =
                    match it.Rnode.key.Rnode.kind with
                    | Rnode.Stat -> "stat item"
                    | Rnode.Dirent -> "dir item"
                    | Rnode.Direct -> "direct item"
                    | Rnode.Indirect -> "indirect"
                  in
                  Hashtbl.replace counts k
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
                items;
              let label =
                if is_root then "root"
                else
                  List.fold_left
                    (fun (bl, bn) k ->
                      let n = Option.value ~default:0 (Hashtbl.find_opt counts k) in
                      if n > bn then (k, n) else (bl, bn))
                    ("stat item", 0)
                    [ "stat item"; "dir item"; "direct item"; "indirect" ]
                  |> fst
              in
              Hashtbl.replace labels b label;
              List.iter
                (fun it ->
                  match it.Rnode.body with
                  | Rnode.Indirect_body ptrs ->
                      Array.iter
                        (fun p ->
                          if p > 0 && p < s.num_blocks then
                            Hashtbl.replace labels p "data")
                        ptrs
                  | Rnode.Stat_body _ | Rnode.Dirent_body _
                  | Rnode.Direct_body _ -> ())
                items
        end
      in
      walk s.root_block ~is_root:true;
      fun b ->
        if b = super_block then "super"
        else if b = journal_start then "j-header"
        else if b > journal_start && b < jend then begin
          match (try Some (raw b) with _ -> None) with
          | None -> "j-data"
          | Some blk ->
              let m = Codec.read_u32 blk 0 in
              if m = jdesc_magic then "j-desc"
              else if m = jcommit_magic then "j-commit"
              else "j-data"
        end
        else if b >= s.bitmap_start && b < s.bitmap_start + s.bitmap_blocks then
          "bitmap"
        else (match Hashtbl.find_opt labels b with Some l -> l | None -> "?")

let corrupt_field ty =
  match ty with
  | "super" -> Some (fun buf -> Codec.write_u32 buf 0 0xBADC0DE)
  | "j-header" | "j-desc" | "j-commit" ->
      Some (fun buf -> Codec.write_u32 buf 0 0xBADC0DE)
  | "root" | "internal" ->
      (* Break the block header: level out of range. The node-header
         sanity check must trip — and ReiserFS panics on it. *)
      Some (fun buf -> Bytes.set_uint16_le buf 0 9)
  | "stat item" | "dir item" | "indirect" ->
      (* Keep the node structurally plausible but point every item at
         the wrong object: lookups silently miss. *)
      Some
        (fun buf ->
          match Rnode.decode buf with
          | Some (Rnode.Leaf items) -> (
              let items' =
                List.map
                  (fun it ->
                    {
                      it with
                      Rnode.key =
                        {
                          it.Rnode.key with
                          Rnode.objid = it.Rnode.key.Rnode.objid lxor 0x5A;
                        };
                    })
                  items
              in
              try Rnode.encode (Bytes.length buf) (Rnode.Leaf items') buf
              with Failure _ -> Bytes.set_uint16_le buf 0 9)
          | Some (Rnode.Internal _) | None -> Bytes.set_uint16_le buf 0 9)
  | "bitmap" -> Some (fun buf -> Bytes.fill buf 0 (Bytes.length buf) '\xFF')
  | _ -> None

(* ---- brand ----------------------------------------------------------- *)

let brand =
  let module M = struct
    let fs_name = "reiserfs"
    let block_types = block_types
    let classifier = classify
    let corrupt_field = corrupt_field

    type t = state

    let mkfs = mkfs_impl
    let mount = mount_impl
    let unmount = op_unmount
    let klog t = t.klog
    let is_readonly t = t.readonly

    let access t path =
      let* _ = resolve t path in
      Ok ()

    let chdir t path =
      let* o = resolve t path in
      let* s = read_stat t o in
      if s.Rnode.sk = Fs.Directory then begin
        t.cwd <- o;
        Ok ()
      end
      else Error Errno.ENOTDIR

    let chroot t path =
      let* o = resolve t path in
      let* s = read_stat t o in
      if s.Rnode.sk = Fs.Directory then begin
        t.root <- o;
        t.cwd <- o;
        Ok ()
      end
      else Error Errno.ENOTDIR

    let stat t path =
      let* o = resolve t path in
      let* s = read_stat t o in
      Ok (stat_of t o s)

    let lstat t path =
      let* o = resolve t ~follow_last:false path in
      let* s = read_stat t o in
      Ok (stat_of t o s)

    let statfs t =
      Ok
        {
          Fs.f_blocks = t.super.num_blocks - t.super.first_data;
          f_bfree = t.super.free_blocks;
          f_files = t.super.next_objid;
          f_ffree = max 0 (65536 - t.super.next_objid);
          f_bsize = t.bs;
        }

    let open_ t path mode =
      let* o = resolve t path in
      let* s = read_stat t o in
      match s.Rnode.sk with
      | Fs.Directory when mode <> Fs.Rd -> Error Errno.EISDIR
      | Fs.Regular | Fs.Directory | Fs.Symlink ->
          Ok (Fdtable.alloc t.fds { fd_obj = o; fd_mode = mode })

    let close t fd = Fdtable.close t.fds fd

    let creat t path =
      let* o = create_node t path Fs.Regular ~perms:0o644 ~target:"" in
      Ok (Fdtable.alloc t.fds { fd_obj = o; fd_mode = Fs.Rdwr })

    let read t fd ~off ~len = op_read t fd ~off ~len
    let write t fd ~off data = op_write t fd ~off data

    let readlink t path =
      let* o = resolve t ~follow_last:false path in
      let* s = read_stat t o in
      if s.Rnode.sk = Fs.Symlink then Ok s.Rnode.target else Error Errno.EINVAL

    let getdirentries t path =
      let* o = resolve t path in
      let* s = read_stat t o in
      if s.Rnode.sk <> Fs.Directory then Error Errno.ENOTDIR
      else read_dirents t o

    let link t existing newpath =
      let* o = resolve t existing in
      let* s = read_stat t o in
      if s.Rnode.sk = Fs.Directory then Error Errno.EISDIR
      else
        let* dino, name = resolve_parent t newpath in
        let* es = read_dirents t dino in
        if List.mem_assoc name es then Error Errno.EEXIST
        else
          let* () = write_dirents t dino (es @ [ (name, o) ]) in
          write_stat t o
            { s with Rnode.links = s.Rnode.links + 1; ctime = now_seconds t }

    let symlink t target linkpath =
      let* _ = create_node t linkpath Fs.Symlink ~perms:0o777 ~target in
      Ok ()

    let mkdir t path =
      let* _ = create_node t path Fs.Directory ~perms:0o755 ~target:"" in
      Ok ()

    let rmdir t path = remove_common t path ~dir:true
    let unlink t path = remove_common t path ~dir:false

    let rename t src dst =
      let* sdino, sname = resolve_parent t src in
      let* ses = read_dirents t sdino in
      match List.assoc_opt sname ses with
      | None -> Error Errno.ENOENT
      | Some o ->
          let* ddino, dname = resolve_parent t dst in
          let* () =
            let* des = read_dirents t ddino in
            match List.assoc_opt dname des with
            | Some old when old <> o -> (
                let* os = read_stat t old in
                match os.Rnode.sk with
                | Fs.Directory -> Error Errno.EISDIR
                | Fs.Regular | Fs.Symlink -> remove_common t dst ~dir:false)
            | Some _ | None -> Ok ()
          in
          let* ses = read_dirents t sdino in
          let* () = write_dirents t sdino (List.remove_assoc sname ses) in
          let* des = read_dirents t ddino in
          let* () = write_dirents t ddino (des @ [ (dname, o) ]) in
          let* s = read_stat t o in
          if s.Rnode.sk = Fs.Directory && sdino <> ddino then begin
            let* ces = read_dirents t o in
            let ces' = List.map (fun (n, e) -> if n = ".." then (n, ddino) else (n, e)) ces in
            let* () = write_dirents t o ces' in
            let* sd = read_stat t sdino in
            let* () = write_stat t sdino { sd with Rnode.links = sd.Rnode.links - 1 } in
            let* dd = read_stat t ddino in
            write_stat t ddino { dd with Rnode.links = dd.Rnode.links + 1 }
          end
          else Ok ()

    let truncate t path size =
      let* o = resolve t path in
      let* s = read_stat t o in
      if s.Rnode.sk = Fs.Directory then Error Errno.EISDIR
      else
        let* tail = read_tail t o in
        match tail with
        | Some tail when size <= Rnode.max_direct_bytes ->
            (* Resize the inline tail. *)
            let b = Bytes.make size '\000' in
            Bytes.blit_string tail 0 b 0 (min size (String.length tail));
            let* () = write_tail t o (Bytes.to_string b) in
            let now = now_seconds t in
            let* () = write_stat t o { s with Rnode.size; mtime = now; ctime = now } in
            write_super t
        | Some tail ->
            (* Growing past the inline limit. *)
            let* () = convert_tail t o tail in
            let now = now_seconds t in
            let* () = write_stat t o { s with Rnode.size; mtime = now; ctime = now } in
            write_super t
        | None ->
      begin
        let keep = (size + t.bs - 1) / t.bs in
        let* () = free_file_from t o ~from:keep ~old_size:s.Rnode.size in
        (* Zero the tail of a partially kept block. *)
        let* () =
          if size >= s.Rnode.size || size mod t.bs = 0 then Ok ()
          else
            let fblock = size / t.bs in
            let* old = data_read_block t o fblock in
            Bytes.fill old (size mod t.bs) (t.bs - (size mod t.bs)) '\000';
            data_write_block t o fblock old
        in
        let now = now_seconds t in
        let* () =
          write_stat t o { s with Rnode.size; mtime = now; ctime = now }
        in
        write_super t
      end

    let chmod t path perms =
      let* o = resolve t path in
      let* s = read_stat t o in
      write_stat t o { s with Rnode.perms; ctime = now_seconds t }

    let chown t path uid gid =
      let* o = resolve t path in
      let* s = read_stat t o in
      write_stat t o { s with Rnode.uid = uid; gid; ctime = now_seconds t }

    let utimes t path atime mtime =
      let* o = resolve t path in
      let* s = read_stat t o in
      write_stat t o
        { s with Rnode.atime = int_of_float atime; mtime = int_of_float mtime }

    let fsync t fd =
      let* _ = Fdtable.find t.fds fd in
      commit t

    let sync t =
      let* () = commit t in
      checkpoint t;
      Ok ()
  end in
  Fs.Brand (module M)
