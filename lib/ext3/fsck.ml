open Iron_util
module Dev = Iron_disk.Dev
module Errno = Iron_vfs.Errno

let ( let* ) = Result.bind

type finding = {
  severity : [ `Error | `Warning ];
  message : string;
  repaired : bool;
}

type report = { findings : finding list; clean : bool }

let pp_report fmt r =
  if r.findings = [] then Format.fprintf fmt "fsck: clean@."
  else begin
    List.iter
      (fun f ->
        Format.fprintf fmt "fsck %s: %s%s@."
          (match f.severity with `Error -> "ERROR" | `Warning -> "warn")
          f.message
          (if f.repaired then " [repaired]" else ""))
      r.findings;
    Format.fprintf fmt "fsck: %s@." (if r.clean then "clean" else "errors found")
  end

let bit_get buf i = Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set buf i on =
  let v = Char.code (Bytes.get buf (i / 8)) in
  let v' = if on then v lor (1 lsl (i mod 8)) else v land lnot (1 lsl (i mod 8)) in
  Bytes.set buf (i / 8) (Char.chr (v' land 0xFF))

let run ?(repair = false) dev =
  let* lay =
    match dev.Dev.read 0 with
    | Error _ -> Error Errno.EIO
    | Ok buf -> (
        match Sb.decode buf with
        | Ok sb ->
            Ok
              (Layout.compute ~block_size:sb.Sb.block_size
                 ~num_blocks:sb.Sb.num_blocks)
        | Error e -> Error e)
  in
  let findings = ref [] in
  let errors = ref 0 in
  let note severity repaired fmt =
    Format.kasprintf
      (fun message ->
        if severity = `Error && not repaired then incr errors;
        findings := { severity; message; repaired } :: !findings)
      fmt
  in
  (* Memoize successful reads: pass 1 touches the same inode-table and
     indirect blocks once per inode, and pass 4 re-reads the table blocks
     again. Caching is sound here because fsck runs on a quiesced device
     (nobody writes behind its back) and repairs mutate the cached buffer
     itself before writing it out, so cache and device stay coherent.
     Failed reads are NOT cached so transient-error semantics are kept. *)
  let cache = Hashtbl.create 64 in
  let read b =
    match Hashtbl.find_opt cache b with
    | Some d -> Some d
    | None -> (
        match dev.Dev.read b with
        | Ok d ->
            Hashtbl.add cache b d;
            Some d
        | Error _ -> None)
  in
  (* Pass 1: walk every live inode, collecting reachable blocks and the
     directory graph. *)
  let reachable = Hashtbl.create 256 in
  (* Dense mirror of [reachable]'s domain: pass 3 probes every data block
     once, and a bit test beats a hash probe there. *)
  let reach_bits = Bytes.make ((lay.Layout.num_blocks / 8) + 1) '\000' in
  let dir_refs = Hashtbl.create 64 in (* ino -> #entries pointing at it *)
  let live = Hashtbl.create 64 in (* ino -> inode *)
  let ref_ino ino =
    Hashtbl.replace dir_refs ino
      (1 + Option.value ~default:0 (Hashtbl.find_opt dir_refs ino))
  in
  let claim b what =
    if b > 0 && b < lay.Layout.num_blocks then begin
      (match Hashtbl.find_opt reachable b with
      | Some prior ->
          note `Error false "block %d claimed by both %s and %s" b prior what
      | None -> ());
      Hashtbl.replace reachable b what;
      bit_set reach_bits b true
    end
    else if b <> 0 then note `Error false "%s points at impossible block %d" what b
  in
  let iter_ptrs b f =
    match read b with
    | None -> ()
    | Some blk ->
        for i = 0 to lay.Layout.ptrs_per_block - 1 do
          f (Codec.read_u32 blk (i * 4))
        done
  in
  let max_blocks = Inode.max_file_blocks lay in
  for ino = 1 to Layout.total_inodes lay do
    let blk, off = Layout.inode_location lay ino in
    match read blk with
    | None -> note `Error false "inode table block %d unreadable" blk
    | Some buf -> (
        let i = Inode.decode lay buf off in
        match i.Inode.kind with
        | Inode.Free -> ()
        | Inode.Symlink -> Hashtbl.replace live ino i
        | Inode.Regular | Inode.Directory ->
            Hashtbl.replace live ino i;
            let what = Printf.sprintf "inode %d" ino in
            if i.Inode.size > max_blocks * lay.Layout.block_size then
              note `Error false "inode %d has impossible size %d" ino i.Inode.size;
            Array.iter (fun p -> if p > 0 then claim p what) i.Inode.direct;
            if i.Inode.ind > 0 then begin
              claim i.Inode.ind what;
              iter_ptrs i.Inode.ind (fun p -> if p > 0 then claim p what)
            end;
            if i.Inode.dind > 0 then begin
              claim i.Inode.dind what;
              iter_ptrs i.Inode.dind (fun l1 ->
                  if l1 > 0 && l1 < lay.Layout.num_blocks then begin
                    claim l1 what;
                    iter_ptrs l1 (fun p -> if p > 0 then claim p what)
                  end)
            end;
            if i.Inode.parity > 0 then claim i.Inode.parity what)
  done;
  (* Pass 1b: dynamic replica shadows (ixt3 Mr) are referenced only
     from the replica map; they are reachable too. *)
  for m = 0 to lay.Layout.rmap_blocks - 1 do
    match read (lay.Layout.rmap_start + m) with
    | None -> ()
    | Some buf ->
        for i = 0 to (lay.Layout.block_size / 4) - 1 do
          let shadow = Codec.read_u32 buf (i * 4) in
          if shadow > 0 && shadow < lay.Layout.num_blocks then
            claim shadow "replica map"
        done
  done;
  (* Pass 2: read directories, counting references. The root counts as
     referenced by convention. *)
  ref_ino Layout.root_ino;
  Hashtbl.iter
    (fun ino (i : Inode.t) ->
      if i.Inode.kind = Inode.Directory then begin
        let n = (i.Inode.size + lay.Layout.block_size - 1) / lay.Layout.block_size in
        for fb = 0 to min (n - 1) (lay.Layout.direct_ptrs - 1) do
          let b = i.Inode.direct.(fb) in
          if b > 0 && b < lay.Layout.num_blocks then
            match read b with
            | None -> ()
            | Some buf ->
                List.iter
                  (fun (name, child) ->
                    if name <> "." && name <> ".." then
                      if Hashtbl.mem live child then ref_ino child
                      else
                        note `Error repair
                          "directory %d entry %S references dead inode %d" ino name
                          child)
                  (Dirent.decode buf)
        done
      end)
    live;
  (* Pass 3: bitmaps vs reality. *)
  for g = 0 to lay.Layout.ngroups - 1 do
    let bb = Layout.bitmap_block lay g in
    (match read bb with
    | None -> note `Error false "bitmap block %d unreadable" bb
    | Some buf ->
        let dirty = ref false in
        for i = 0 to Layout.data_blocks_per_group lay - 1 do
          let b = Layout.data_start lay g + i in
          let marked = bit_get buf i in
          let used = bit_get reach_bits b in
          if marked && not used then begin
            note `Warning repair "block %d marked allocated but unreachable (leak)" b;
            if repair then begin
              bit_set buf i false;
              dirty := true
            end
          end
          else if used && not marked then begin
            note `Error repair "block %d in use but free in the bitmap" b;
            if repair then begin
              bit_set buf i true;
              dirty := true
            end
          end
        done;
        if !dirty then ignore (dev.Dev.write bb buf));
    let ib = Layout.ibitmap_block lay g in
    match read ib with
    | None -> note `Error false "inode bitmap block %d unreadable" ib
    | Some buf ->
        let dirty = ref false in
        for i = 0 to lay.Layout.inodes_per_group - 1 do
          let ino = (g * lay.Layout.inodes_per_group) + i + 1 in
          let marked = bit_get buf i in
          let used = ino = 1 || Hashtbl.mem live ino in
          if marked && not used then begin
            note `Warning repair "inode %d marked allocated but free" ino;
            if repair then begin
              bit_set buf i false;
              dirty := true
            end
          end
          else if used && ino > 1 && not marked then begin
            note `Error repair "inode %d live but free in the inode bitmap" ino;
            if repair then begin
              bit_set buf i true;
              dirty := true
            end
          end
        done;
        if !dirty then ignore (dev.Dev.write ib buf)
  done;
  (* Pass 4: link counts. *)
  Hashtbl.iter
    (fun ino (i : Inode.t) ->
      let expected =
        match i.Inode.kind with
        | Inode.Directory ->
            (* Directory link arithmetic ("." + parent + children) is
               left to the mount-time structures; fsck only enforces
               file/symlink counts, as the classic tool does first. *)
            i.Inode.links
        | Inode.Regular | Inode.Symlink ->
            Option.value ~default:0 (Hashtbl.find_opt dir_refs ino)
        | Inode.Free -> 0
      in
      if i.Inode.kind <> Inode.Directory && expected <> i.Inode.links then begin
        note `Error repair "inode %d has links=%d but %d references" ino
          i.Inode.links expected;
        if repair then begin
          let blk, off = Layout.inode_location lay ino in
          match read blk with
          | None -> ()
          | Some buf ->
              Inode.encode lay { i with Inode.links = expected } buf off;
              ignore (dev.Dev.write blk buf)
        end
      end)
    live;
  ignore (dev.Dev.sync ());
  Ok { findings = List.rev !findings; clean = !errors = 0 }
