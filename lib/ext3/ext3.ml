open Iron_util
module Dev = Iron_disk.Dev
module Bcache = Iron_disk.Bcache
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Fs = Iron_vfs.Fs
module VPath = Iron_vfs.Path
module Obs = Iron_obs.Obs
module Jrnl = Iron_jrnl.Jrnl
module Jrec = Iron_jrnl.Jrec
module Kind = Iron_jrnl.Kind

let ( let* ) = Result.bind

(* Block classes drive checksum coverage and abort decisions. They are
   what the file system knows about its own I/O; the external classifier
   in {!Classifier} rediscovers the same information gray-box. *)
type cls =
  | Super
  | Gdesc
  | BBitmap
  | IBitmap
  | Itable
  | Dir
  | Indirect
  | Data
  | Cksum
[@@warning "-37"]
(* Some classes appear only in patterns today; the full vocabulary is
   kept so call sites state what they touch. *)

type fdesc = { fd_ino : int; fd_mode : Fs.open_mode }

type state = {
  profile : Profile.t;
  dev : Dev.t;
  lay : Layout.t;
  klog : Klog.t;
  cache : Bcache.t;
  mutable free_blocks : int;
  mutable free_inodes : int;
  (* group descriptor table, kept in memory as on real systems *)
  gd_bitmap : int array;
  gd_ibitmap : int array;
  gd_itable : int array;
  mutable readonly : bool;
  mutable aborted : bool;
  (* journaling: transaction state lives in the shared typed-journal
     core; the profile's commit policy picked the engine's mode *)
  jrnl : Jrnl.t;
  (* process state *)
  fds : (int, fdesc) Hashtbl.t;
  mutable next_fd : int;
  mutable cwd : int;
  mutable root : int;
  (* "Checksums are very small and can be cached for read
     verification" (§6.1): block -> raw SHA-1, loaded lazily. *)
  cksums : (int, string) Hashtbl.t;
  mutable rlog_head : int;
      (* next free slot in the replica log; wraps (it is advisory —
         durability comes from the journal + checkpointed replicas) *)
}

let now_seconds t = int_of_float (t.dev.Dev.now () /. 1000.)
let bsize t = t.lay.Layout.block_size
let zero_block t = Bytes.make (bsize t) '\000'

let is_meta_cls = function
  | Gdesc | BBitmap | IBitmap | Itable | Dir | Indirect -> true
  | Super | Data | Cksum -> false

let checksummed t cls =
  (t.profile.Profile.meta_checksum && is_meta_cls cls)
  || (t.profile.Profile.data_checksum && cls = Data)

let abort_journal t why =
  if not t.aborted then begin
    t.aborted <- true;
    t.readonly <- true;
    Klog.error t.klog "ext3" "journal aborted (%s); remounting read-only" why
  end

(* ------------------------------------------------------------------ *)
(* Typed layout and commit policy handed to the journal core           *)
(* ------------------------------------------------------------------ *)

(* Region-level block classification for the journal core. Directory
   and indirect blocks live in the data region and are classified Data
   here; the call sites carry the finer [cls] distinction. *)
let kind_of_block lay b =
  if b = 0 then Kind.Superblock
  else if b = 1 then Kind.Gdesc
  else if b = lay.Layout.journal_start then Kind.Jsb
  else if
    b > lay.Layout.journal_start
    && b < lay.Layout.journal_start + lay.Layout.journal_len
  then Kind.Jdata
  else if
    b >= lay.Layout.replica_start
    && b < lay.Layout.replica_start + lay.Layout.replica_blocks
  then Kind.Replica
  else if
    b >= lay.Layout.rmap_start && b < lay.Layout.rmap_start + lay.Layout.rmap_blocks
  then Kind.Rmap
  else if
    b >= lay.Layout.rlog_start && b < lay.Layout.rlog_start + lay.Layout.rlog_blocks
  then Kind.Rlog
  else if
    b >= lay.Layout.cksum_start && b < lay.Layout.cksum_start + lay.Layout.cksum_blocks
  then Kind.Cksum
  else
    match Layout.group_of_block lay b with
    | None -> Kind.Unknown
    | Some g ->
        if b = Layout.super_copy_block lay g then Kind.Superblock
        else if b = Layout.bitmap_block lay g then Kind.Bitmap
        else if b = Layout.ibitmap_block lay g then Kind.Ibitmap
        else if
          b >= Layout.itable_block lay g
          && b < Layout.itable_block lay g + lay.Layout.itable_blocks
        then Kind.Inode
        else Kind.Data

let geo_of_layout lay =
  {
    Jrnl.jsb = lay.Layout.journal_start;
    jfirst = lay.Layout.journal_start + 1;
    jend = lay.Layout.journal_start + lay.Layout.journal_len;
    num_blocks = lay.Layout.num_blocks;
  }

let policy_of_profile (p : Profile.t) : (module Jrnl.POLICY) =
  (module struct
    let tag = "ext3"
    let mode = p.Profile.mode

    let iron =
      {
        Jrnl.abort_on_journal_write_failure =
          p.Profile.abort_on_journal_write_failure;
        check_write_errors = p.Profile.check_write_errors;
      }
  end)

(* ------------------------------------------------------------------ *)
(* Low-level block access with journal overlay                         *)
(* ------------------------------------------------------------------ *)

let block_read_raw t b =
  match Jrnl.find t.jrnl b with
  | Some d -> Ok (Bytes.copy d)
  | None -> (
      match Bcache.read t.cache b with
      | Ok d -> Ok d
      | Error _ -> Error Errno.EIO)

let txn_put t b data = Jrnl.stage t.jrnl b data

(* Checksum-table maintenance. Failures here are logged but do not fail
   the triggering operation: losing a checksum degrades protection, not
   correctness. *)
let set_cksum t b data =
  let cb, off = Layout.cksum_location t.lay b in
  match block_read_raw t cb with
  | Error _ -> Klog.warn t.klog "ixt3" "cannot update checksum block %d" cb
  | Ok blk ->
      let d = Sha1.to_raw (Sha1.digest data) in
      Bytes.blit_string d 0 blk off 20;
      Hashtbl.replace t.cksums b d;
      txn_put t cb blk

let stored_cksum t b =
  match Hashtbl.find_opt t.cksums b with
  | Some d -> Some d
  | None -> (
      let cb, off = Layout.cksum_location t.lay b in
      match block_read_raw t cb with
      | Error _ -> None
      | Ok blk ->
          (* Cache the whole table block's worth of digests at once. *)
          let base = b - (b mod t.lay.Layout.cksum_per_block) in
          for i = 0 to t.lay.Layout.cksum_per_block - 1 do
            Hashtbl.replace t.cksums (base + i)
              (Bytes.sub_string blk (i * 20) 20)
          done;
          Some (Bytes.sub_string blk off 20))

let cksum_matches t b data =
  match stored_cksum t b with
  | None -> true (* cannot verify *)
  | Some stored -> String.equal stored (Sha1.to_raw (Sha1.digest data))

(* Dynamic-replica map: dynamically allocated metadata (directory and
   indirect blocks) gets a mirror allocated on first write, recorded in
   the rmap region. *)
let rmap_get t b =
  let rb, off = Layout.rmap_location t.lay b in
  match block_read_raw t rb with
  | Error _ -> 0
  | Ok buf -> Codec.read_u32 buf off

let rmap_set t b shadow =
  let rb, off = Layout.rmap_location t.lay b in
  match block_read_raw t rb with
  | Error _ -> Klog.warn t.klog "ixt3" "cannot update replica map block %d" rb
  | Ok buf ->
      Codec.write_u32 buf off shadow;
      txn_put t rb buf

(* Where is the mirror of metadata block [b], if any? Fixed slots for
   static metadata, the rmap for dynamic metadata. *)
let replica_location t b =
  if not t.profile.Profile.meta_replica then None
  else
    match Layout.replica_of t.lay b with
    | Some r -> Some r
    | None -> ( match rmap_get t b with 0 -> None | r -> Some r)

(* Replica recovery: read the mirror from the far end of the disk. *)
let read_replica t b =
  match replica_location t b with
  | Some r -> (
      match t.dev.Dev.read r with
      | Ok d ->
          Klog.warn t.klog "ixt3" "metadata block %d recovered from replica %d" b r;
          Some d
      | Error _ -> None)
  | None -> None

(* Metadata read: overlay, then cache; verify checksum when enabled;
   fall back to the replica on error or mismatch. *)
let meta_read t cls b =
  match block_read_raw t b with
  | Ok data ->
      if checksummed t cls && not (cksum_matches t b data) then begin
        Klog.error t.klog "ixt3" "checksum mismatch on metadata block %d" b;
        match read_replica t b with
        | Some d when cksum_matches t b d ->
            Bcache.invalidate t.cache b;
            Ok d
        | Some d when Bytes.equal d data ->
            (* Two independent copies agree; the stored checksum is the
               odd one out (e.g. its own in-place write was the one the
               disk lost). Majority wins. *)
            Klog.warn t.klog "ixt3"
              "metadata block %d: primary and replica agree, overriding stale checksum"
              b;
            Ok data
        | Some d ->
            (* The primary is known-bad and the replica is a whole copy
               the journal wrote, even if the stored checksum (itself
               one in-place write) vouches for neither. A stale-but-
               consistent version beats refusing the read. *)
            Klog.warn t.klog "ixt3"
              "metadata block %d: replica adopted over corrupt primary (checksum vouches for neither)"
              b;
            Bcache.invalidate t.cache b;
            Ok d
        | None -> Error Errno.EIO
      end
      else Ok data
  | Error _ -> (
      match read_replica t b with
      | Some d -> Ok d
      | None -> Error Errno.EIO)

(* Forward reference: allocating a shadow block needs the allocator,
   which itself calls [meta_write]; tied together after [alloc_block]
   is defined. *)
let shadow_allocator :
    (state -> int -> (int, Errno.t) result) ref =
  ref (fun _ _ -> Error Errno.ENOSPC)

let is_dynamic_meta = function Dir | Indirect -> true
  | Super | Gdesc | BBitmap | IBitmap | Itable | Data | Cksum -> false

(* Metadata write: into the running transaction, plus checksum and
   replica shadows when those features are on. Dynamic metadata gets a
   mirror allocated (in a distant group) on first write. *)
let meta_write t cls b data =
  if t.readonly then Error Errno.EROFS
  else begin
    txn_put t b data;
    if checksummed t cls then set_cksum t b data;
    (if t.profile.Profile.meta_replica then
       match Layout.replica_of t.lay b with
       | Some r -> txn_put t r data
       | None ->
           if is_dynamic_meta cls then begin
             let shadow =
               match rmap_get t b with
               | 0 -> (
                   match !shadow_allocator t b with
                   | Ok sb ->
                       rmap_set t b sb;
                       sb
                   | Error _ -> 0)
               | sb -> sb
             in
             if shadow <> 0 then txn_put t shadow data
           end);
    Ok ()
  end

let revoke_block t b = Jrnl.revoke t.jrnl b

(* ------------------------------------------------------------------ *)
(* Journal: commit, checkpoint, recovery                               *)
(* ------------------------------------------------------------------ *)

(* Commit and checkpoint are the engine's; ext3 keeps only the abort
   bookkeeping (wired in via hooks at mount) and the op-level plumbing. *)
let checkpoint t = Jrnl.checkpoint t.jrnl
let commit t = Jrnl.commit t.jrnl

(* ------------------------------------------------------------------ *)
(* Inode access                                                        *)
(* ------------------------------------------------------------------ *)

let valid_ino t ino = ino >= 1 && ino <= Layout.total_inodes t.lay

let read_inode t ino =
  if not (valid_ino t ino) then begin
    Klog.error t.klog "ext3" "bad inode number %d" ino;
    Error Errno.EIO
  end
  else
    let blk, off = Layout.inode_location t.lay ino in
    let* buf = meta_read t Itable blk in
    Ok (Inode.decode t.lay buf off)

let write_inode t ino inode =
  let blk, off = Layout.inode_location t.lay ino in
  let* buf = meta_read t Itable blk in
  Inode.encode t.lay inode buf off;
  meta_write t Itable blk buf

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let find_clear_bit buf limit =
  let rec go i =
    if i >= limit then None
    else
      let byte = Char.code (Bytes.get buf (i / 8)) in
      if byte land (1 lsl (i mod 8)) = 0 then Some i else go (i + 1)
  in
  go 0

let set_bit buf i on =
  let byte = Char.code (Bytes.get buf (i / 8)) in
  let byte' =
    if on then byte lor (1 lsl (i mod 8)) else byte land lnot (1 lsl (i mod 8))
  in
  Bytes.set buf (i / 8) (Char.chr (byte' land 0xFF))

let test_bit buf i = Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0

(* Allocation reads inside a transaction abort the journal on failure,
   matching ext3's behaviour for metadata read errors in write paths. *)
let txn_meta_read t cls b =
  match meta_read t cls b with
  | Ok d -> Ok d
  | Error e ->
      Klog.error t.klog "ext3" "metadata read of block %d failed in transaction" b;
      abort_journal t "metadata read failure";
      Error e

let alloc_block t ~goal_group =
  let lay = t.lay in
  let per = Layout.data_blocks_per_group lay in
  let rec try_group k =
    if k >= lay.Layout.ngroups then Error Errno.ENOSPC
    else
      let g = (goal_group + k) mod lay.Layout.ngroups in
      let bb = t.gd_bitmap.(g) in
      let* buf = txn_meta_read t BBitmap bb in
      match find_clear_bit buf per with
      | None -> try_group (k + 1)
      | Some i ->
          set_bit buf i true;
          let* () = meta_write t BBitmap bb buf in
          t.free_blocks <- t.free_blocks - 1;
          Ok (Layout.data_start lay g + i)
  in
  try_group 0

(* Shadows live in a group far from their primary, so a spatially-local
   fault (a scratch) cannot take out both (§3.3). *)
let () =
  shadow_allocator :=
    fun t b ->
      let g =
        match Layout.group_of_block t.lay b with Some g -> g | None -> 0
      in
      alloc_block t ~goal_group:((g + (t.lay.Layout.ngroups / 2)) mod t.lay.Layout.ngroups)

let rec free_block t b =
  (* Release the dynamic mirror along with its primary. *)
  (if t.profile.Profile.meta_replica then
     match rmap_get t b with
     | 0 -> ()
     | shadow ->
         rmap_set t b 0;
         ignore (free_block t shadow));
  match Layout.group_of_block t.lay b with
  | None -> Ok () (* out-of-range pointer: nothing to free *)
  | Some g ->
      let ds = Layout.data_start t.lay g in
      if b < ds then Ok ()
      else
        let i = b - ds in
        let bb = t.gd_bitmap.(g) in
        let* buf = txn_meta_read t BBitmap bb in
        if test_bit buf i then begin
          set_bit buf i false;
          let* () = meta_write t BBitmap bb buf in
          t.free_blocks <- t.free_blocks + 1;
          Ok ()
        end
        else Ok ()

let alloc_inode t ~goal_group =
  let lay = t.lay in
  let rec try_group k =
    if k >= lay.Layout.ngroups then Error Errno.ENOSPC
    else
      let g = (goal_group + k) mod lay.Layout.ngroups in
      let ib = t.gd_ibitmap.(g) in
      let* buf = txn_meta_read t IBitmap ib in
      match find_clear_bit buf lay.Layout.inodes_per_group with
      | None -> try_group (k + 1)
      | Some i ->
          set_bit buf i true;
          let* () = meta_write t IBitmap ib buf in
          t.free_inodes <- t.free_inodes - 1;
          Ok ((g * lay.Layout.inodes_per_group) + i + 1)
  in
  try_group 0

let free_inode t ino =
  let lay = t.lay in
  let g = Layout.group_of_inode lay ino in
  let i = (ino - 1) mod lay.Layout.inodes_per_group in
  let ib = t.gd_ibitmap.(g) in
  let* buf = txn_meta_read t IBitmap ib in
  set_bit buf i false;
  let* () = meta_write t IBitmap ib buf in
  t.free_inodes <- t.free_inodes + 1;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Block mapping (direct / indirect / double / triple)                 *)
(* ------------------------------------------------------------------ *)

let read_ptr_block t b =
  let* buf = meta_read t Indirect b in
  Ok buf

let get_ptr buf i = Codec.read_u32 buf (i * 4)
let put_ptr buf i v = Codec.write_u32 buf (i * 4) v

(* Map a file block index to a disk block (0 = hole). *)
let bmap t inode fblock =
  let lay = t.lay in
  let d = lay.Layout.direct_ptrs and p = lay.Layout.ptrs_per_block in
  if fblock < d then Ok inode.Inode.direct.(fblock)
  else
    let fblock = fblock - d in
    if fblock < p then
      if inode.Inode.ind = 0 then Ok 0
      else
        let* buf = read_ptr_block t inode.Inode.ind in
        Ok (get_ptr buf fblock)
    else
      let fblock = fblock - p in
      if fblock < p * p then begin
        if inode.Inode.dind = 0 then Ok 0
        else
          let* l1 = read_ptr_block t inode.Inode.dind in
          let mid = get_ptr l1 (fblock / p) in
          if mid = 0 then Ok 0
          else
            let* l2 = read_ptr_block t mid in
            Ok (get_ptr l2 (fblock mod p))
      end
      else
        let fblock = fblock - (p * p) in
        if fblock < p * p * p then begin
          if inode.Inode.tind = 0 then Ok 0
          else
            let* l1 = read_ptr_block t inode.Inode.tind in
            let b1 = get_ptr l1 (fblock / (p * p)) in
            if b1 = 0 then Ok 0
            else
              let* l2 = read_ptr_block t b1 in
              let b2 = get_ptr l2 (fblock / p mod p) in
              if b2 = 0 then Ok 0
              else
                let* l3 = read_ptr_block t b2 in
                Ok (get_ptr l3 (fblock mod p))
        end
        else Error Errno.EFBIG

(* Map and allocate on demand; returns the disk block and the possibly
   updated inode (pointer fields may change). *)
let bmap_alloc t ino inode fblock =
  let lay = t.lay in
  let d = lay.Layout.direct_ptrs and p = lay.Layout.ptrs_per_block in
  let goal_group = Layout.group_of_inode lay ino in
  let alloc_data () = alloc_block t ~goal_group in
  let alloc_ptr_block () =
    let* b = alloc_block t ~goal_group in
    let* () = meta_write t Indirect b (zero_block t) in
    Ok b
  in
  (* Ensure a pointer slot inside pointer-block [b] is filled; return
     (target, allocated?). *)
  let ensure_slot b i ~alloc_child =
    let* buf = read_ptr_block t b in
    let cur = get_ptr buf i in
    if cur <> 0 then Ok (cur, false)
    else
      let* fresh = alloc_child () in
      put_ptr buf i fresh;
      let* () = meta_write t Indirect b buf in
      Ok (fresh, true)
  in
  if fblock < d then begin
    if inode.Inode.direct.(fblock) <> 0 then
      Ok (inode.Inode.direct.(fblock), inode, false)
    else
      let* b = alloc_data () in
      let direct = Array.copy inode.Inode.direct in
      direct.(fblock) <- b;
      Ok (b, { inode with Inode.direct; nblocks = inode.Inode.nblocks + 1 }, true)
  end
  else
    let fb = fblock - d in
    if fb < p then begin
      let* ind, inode =
        if inode.Inode.ind <> 0 then Ok (inode.Inode.ind, inode)
        else
          let* b = alloc_ptr_block () in
          Ok (b, { inode with Inode.ind = b; nblocks = inode.Inode.nblocks + 1 })
      in
      let* target, created = ensure_slot ind fb ~alloc_child:alloc_data in
      let add = if created then 1 else 0 in
      Ok (target, { inode with Inode.nblocks = inode.Inode.nblocks + add }, created)
    end
    else
      let fb = fb - p in
      if fb < p * p then begin
        let* dind, inode =
          if inode.Inode.dind <> 0 then Ok (inode.Inode.dind, inode)
          else
            let* b = alloc_ptr_block () in
            Ok (b, { inode with Inode.dind = b; nblocks = inode.Inode.nblocks + 1 })
        in
        let* mid, c1 = ensure_slot dind (fb / p) ~alloc_child:alloc_ptr_block in
        let* target, c2 = ensure_slot mid (fb mod p) ~alloc_child:alloc_data in
        let add = (if c1 then 1 else 0) + if c2 then 1 else 0 in
        Ok (target, { inode with Inode.nblocks = inode.Inode.nblocks + add }, c2)
      end
      else
        let fb = fb - (p * p) in
        if fb >= p * p * p then Error Errno.EFBIG
        else begin
          let* tind, inode =
            if inode.Inode.tind <> 0 then Ok (inode.Inode.tind, inode)
            else
              let* b = alloc_ptr_block () in
              Ok (b, { inode with Inode.tind = b; nblocks = inode.Inode.nblocks + 1 })
          in
          let* b1, c1 = ensure_slot tind (fb / (p * p)) ~alloc_child:alloc_ptr_block in
          let* b2, c2 = ensure_slot b1 (fb / p mod p) ~alloc_child:alloc_ptr_block in
          let* target, c3 = ensure_slot b2 (fb mod p) ~alloc_child:alloc_data in
          let add = (if c1 then 1 else 0) + (if c2 then 1 else 0) + if c3 then 1 else 0 in
          Ok (target, { inode with Inode.nblocks = inode.Inode.nblocks + add }, c3)
        end

(* Point file block [fblock] (which must already be mapped) at a new
   disk block; used by remap-on-write-failure (RRemap, §3.3). Returns
   the possibly updated inode. *)
let bmap_set t inode fblock newb =
  let lay = t.lay in
  let d = lay.Layout.direct_ptrs and p = lay.Layout.ptrs_per_block in
  let set_slot b i =
    let* buf = read_ptr_block t b in
    put_ptr buf i newb;
    let* () = meta_write t Indirect b buf in
    Ok inode
  in
  if fblock < d then begin
    let direct = Array.copy inode.Inode.direct in
    direct.(fblock) <- newb;
    Ok { inode with Inode.direct }
  end
  else
    let fb = fblock - d in
    if fb < p then set_slot inode.Inode.ind fb
    else
      let fb = fb - p in
      if fb < p * p then
        let* l1 = read_ptr_block t inode.Inode.dind in
        set_slot (get_ptr l1 (fb / p)) (fb mod p)
      else
        let fb = fb - (p * p) in
        let* l1 = read_ptr_block t inode.Inode.tind in
        let* l2 = read_ptr_block t (get_ptr l1 (fb / (p * p))) in
        set_slot (get_ptr l2 (fb / p mod p)) (fb mod p)

(* ------------------------------------------------------------------ *)
(* Data I/O with Dc (checksums) and Dp (parity)                        *)
(* ------------------------------------------------------------------ *)

let xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let file_blocks_count inode bs =
  (inode.Inode.size + bs - 1) / bs

(* Rebuild one lost data block from the file's parity block and its
   surviving siblings (§6.1). *)
let reconstruct_from_parity t inode ~missing_fblock =
  if inode.Inode.parity = 0 then Error Errno.EIO
  else begin
    let acc = zero_block t in
    let* pdata = block_read_raw t inode.Inode.parity in
    xor_into acc pdata;
    let n = file_blocks_count inode (bsize t) in
    let rec fold i =
      if i >= n then Ok ()
      else if i = missing_fblock then fold (i + 1)
      else
        let* b = bmap t inode i in
        if b = 0 then fold (i + 1)
        else
          let* d = block_read_raw t b in
          xor_into acc d;
          fold (i + 1)
    in
    let* () = fold 0 in
    Klog.warn t.klog "ixt3" "data block %d of file reconstructed from parity"
      missing_fblock;
    Ok acc
  end

(* Read file block [fblock]; holes read as zeroes. *)
let data_read_block t inode fblock =
  let* b = bmap t inode fblock in
  if b = 0 then Ok (zero_block t)
  else if b >= t.lay.Layout.num_blocks then begin
    (* A garbage pointer (corrupted indirect block): the device refuses. *)
    Klog.error t.klog "ext3" "read of impossible block %d" b;
    Error Errno.EIO
  end
  else
    match block_read_raw t b with
    | Ok data ->
        if t.profile.Profile.data_checksum && not (cksum_matches t b data) then begin
          Klog.error t.klog "ixt3" "checksum mismatch on data block %d" b;
          match reconstruct_from_parity t inode ~missing_fblock:fblock with
          | Ok d -> Ok d
          | Error _ -> Error Errno.EIO
        end
        else Ok data
    | Error _ -> (
        if t.profile.Profile.data_parity then
          match reconstruct_from_parity t inode ~missing_fblock:fblock with
          | Ok d -> Ok d
          | Error _ -> Error Errno.EIO
        else Error Errno.EIO)

(* Write one full block of file data, routed by the profile's commit
   policy. Updates parity incrementally and the data checksum when
   enabled. *)
let data_write_block t ino inode fblock data =
  let* b, inode, fresh = bmap_alloc t ino inode fblock in
  (* Parity update must see the old contents. *)
  let* inode =
    if not t.profile.Profile.data_parity then Ok inode
    else begin
      let* inode =
        if inode.Inode.parity <> 0 then Ok inode
        else
          let* pb = alloc_block t ~goal_group:(Layout.group_of_inode t.lay ino) in
          let* () = meta_write t Data pb (zero_block t) in
          Ok { inode with Inode.parity = pb }
      in
      (* The parity update needs the block's previous contents (zeroes
         for a freshly allocated slot); if the read fails (or fails
         verification), reconstruct from the parity group. *)
      let* old =
        if fresh then Ok (zero_block t)
        else
        match block_read_raw t b with
        | Ok d when
            (not t.profile.Profile.data_checksum) || cksum_matches t b d ->
            Ok d
        | Ok _ | Error _ -> (
            match reconstruct_from_parity t inode ~missing_fblock:fblock with
            | Ok d -> Ok d
            | Error _ ->
                if t.profile.Profile.check_write_errors then begin
                  Klog.error t.klog "ixt3"
                    "cannot read or reconstruct block %d for parity update" b;
                  Error Errno.EIO
                end
                else Ok (zero_block t))
      in
      let pdata =
        match block_read_raw t inode.Inode.parity with
        | Ok d -> d
        | Error _ -> zero_block t
      in
      xor_into pdata old;
      xor_into pdata data;
      (* Parity rides the journal: repeated updates to the same file
         coalesce into one block per transaction, then checkpoint
         writes it home with everything else (§6.1's "incorporating
         checksumming into existing transactional machinery" applies to
         parity as well). *)
      (match meta_write t Data inode.Inode.parity pdata with
      | Ok () -> ()
      | Error _ -> Klog.warn t.klog "ixt3" "parity write failed");
      if t.profile.Profile.data_checksum then set_cksum t inode.Inode.parity pdata;
      Ok inode
    end
  in
  let* b, inode =
    (* The commit policy routes the data write: ordered modes issue it
       here (and surface the error to the remap/abort logic below);
       writeback defers it to checkpoint; data-journal stages it into
       the transaction, where it can no longer fail. *)
    match if Jrnl.write_data t.jrnl b data then Ok () else Error () with
    | Ok () -> Ok (b, inode)
    | Error _ when t.profile.Profile.data_remap -> (
        (* RRemap: give the data a new home and repoint the file at it.
           Write failures "can be fixed ... when writing a block" —
           §3.3 — and the file system, unlike the drive, can keep the
           relocation logically close to the file. *)
        let* b2 = alloc_block t ~goal_group:(Layout.group_of_inode t.lay ino) in
        match Bcache.write t.cache b2 data with
        | Ok () ->
            let* inode = bmap_set t inode fblock b2 in
            let* () = free_block t b in
            let* () = write_inode t ino inode in
            Klog.warn t.klog "ixt3" "data block %d remapped to %d after write failure"
              b b2;
            Ok (b2, inode)
        | Error _ ->
            Klog.error t.klog "ext3" "data write to block %d failed (remap failed too)" b;
            abort_journal t "data write failure";
            Ok (b, inode))
    | Error _ ->
        (* Stock ext3 never looks at data write errors (DZero). *)
        if t.profile.Profile.check_write_errors then begin
          Klog.error t.klog "ext3" "data write to block %d failed" b;
          abort_journal t "data write failure"
        end;
        Ok (b, inode)
  in
  if t.profile.Profile.data_checksum then set_cksum t b data;
  if t.aborted then Error Errno.EIO else Ok inode

(* ------------------------------------------------------------------ *)
(* Directories                                                         *)
(* ------------------------------------------------------------------ *)

(* Read a directory block with the retry stock ext3 applies on its
   (prefetching) directory read path. *)
let dir_read_block t b =
  let rec attempt n =
    match meta_read t Dir b with
    | Ok d -> Ok d
    | Error e ->
        if n < t.profile.Profile.dir_read_retries then begin
          Klog.warn t.klog "ext3" "retrying directory block %d" b;
          attempt (n + 1)
        end
        else Error e
  in
  attempt 0

(* All (block_index, disk_block, entries) of a directory. *)
let dir_blocks t inode =
  let n = file_blocks_count inode (bsize t) in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      let* b = bmap t inode i in
      if b = 0 || b >= t.lay.Layout.num_blocks then go (i + 1) acc
      else
        let* buf = dir_read_block t b in
        go (i + 1) ((i, b, Dirent.decode buf) :: acc)
  in
  go 0 []

let dir_lookup t inode name =
  let* blocks = dir_blocks t inode in
  let rec find = function
    | [] -> Error Errno.ENOENT
    | (_, _, entries) :: rest -> (
        match List.assoc_opt name entries with
        | Some ino -> Ok ino
        | None -> find rest)
  in
  find blocks

let dir_add_entry t dino dinode name ino =
  let* blocks = dir_blocks t dinode in
  let rec try_blocks = function
    | [] ->
        (* Need a fresh directory block. *)
        let n = file_blocks_count dinode (bsize t) in
        let* b, dinode, _ = bmap_alloc t dino dinode n in
        let buf = zero_block t in
        ignore (Dirent.encode buf [ (name, ino) ]);
        let* () = meta_write t Dir b buf in
        let dinode = { dinode with Inode.size = (n + 1) * bsize t } in
        write_inode t dino dinode
    | (_, b, entries) :: rest ->
        let entries' = entries @ [ (name, ino) ] in
        if Dirent.fits (bsize t) entries' then begin
          let buf = zero_block t in
          ignore (Dirent.encode buf entries');
          meta_write t Dir b buf
        end
        else try_blocks rest
  in
  try_blocks blocks

let dir_remove_entry t _dino dinode name =
  let* blocks = dir_blocks t dinode in
  let rec go = function
    | [] -> Error Errno.ENOENT
    | (_, b, entries) :: rest ->
        if List.mem_assoc name entries then begin
          let entries' = List.remove_assoc name entries in
          let buf = zero_block t in
          ignore (Dirent.encode buf entries');
          meta_write t Dir b buf
        end
        else go rest
  in
  go blocks

let dir_is_empty t inode =
  let* blocks = dir_blocks t inode in
  let extra =
    List.concat_map (fun (_, _, es) -> es) blocks
    |> List.filter (fun (n, _) -> n <> "." && n <> "..")
  in
  Ok (extra = [])

(* ------------------------------------------------------------------ *)
(* Path resolution                                                     *)
(* ------------------------------------------------------------------ *)

let max_symlink_depth = 8

let rec resolve_from t dir_ino components ~follow_last ~depth =
  if depth > max_symlink_depth then Error Errno.ELOOP
  else
    match components with
    | [] -> Ok dir_ino
    | name :: rest -> (
        let* () = VPath.validate_component name in
        let* dinode = read_inode t dir_ino in
        match dinode.Inode.kind with
        | Inode.Directory -> (
            let* child = dir_lookup t dinode name in
            let* cinode = read_inode t child in
            match cinode.Inode.kind with
            | Inode.Symlink when rest <> [] || follow_last ->
                let target = cinode.Inode.symlink_target in
                let start = if VPath.is_absolute target then t.root else dir_ino in
                let* mid =
                  resolve_from t start (VPath.split target) ~follow_last:true
                    ~depth:(depth + 1)
                in
                resolve_from t mid rest ~follow_last ~depth:(depth + 1)
            | Inode.Free ->
                Klog.error t.klog "ext3" "directory entry references free inode %d"
                  child;
                Error Errno.EIO
            | Inode.Regular | Inode.Directory | Inode.Symlink ->
                resolve_from t child rest ~follow_last ~depth)
        | Inode.Regular | Inode.Symlink -> Error Errno.ENOTDIR
        | Inode.Free ->
            Klog.error t.klog "ext3" "path walk hit free inode %d" dir_ino;
            Error Errno.EIO)

let resolve t ?(follow_last = true) path =
  let start = if VPath.is_absolute path then t.root else t.cwd in
  resolve_from t start (VPath.split path) ~follow_last ~depth:0

(* Resolve the parent directory of [path]; returns (parent_ino, name). *)
let resolve_parent t path =
  let dir, base = VPath.dirname_basename path in
  if base = "" then Error Errno.EINVAL
  else
    let* dino = resolve t dir in
    Ok (dino, base)

(* ------------------------------------------------------------------ *)
(* Freeing file contents (truncate / unlink)                           *)
(* ------------------------------------------------------------------ *)

(* Free every data and indirect block at or past file index [from].
   Read errors while walking the trees are where stock ext3 silently
   leaks: it logs nothing and presses on. *)
let free_file_from t inode ~from =
  let lay = t.lay in
  let d = lay.Layout.direct_ptrs and p = lay.Layout.ptrs_per_block in
  let errors = ref 0 in
  let freed = ref 0 in
  let free_data b =
    if b <> 0 then (
      (match free_block t b with Ok () -> () | Error _ -> incr errors);
      incr freed)
  in
  let free_meta b =
    if b <> 0 then begin
      (match free_block t b with Ok () -> () | Error _ -> incr errors);
      revoke_block t b;
      incr freed
    end
  in
  (* Free the leaves at or past [from] under pointer block [b], whose
     file range starts at [base]; free [b] itself if its whole range is
     going away. A read error means the children leak — exactly stock
     ext3's behaviour on the delete path. *)
  let rec free_tree level b base =
    if b <> 0 then begin
      let span =
        match level with 1 -> 1 | 2 -> p | _ -> p * p
      in
      (match read_ptr_block t b with
      | Error _ -> incr errors
      | Ok buf ->
          for i = 0 to p - 1 do
            let child = get_ptr buf i in
            let cbase = base + (i * span) in
            if child <> 0 && cbase + span > from then
              if level = 1 then (if cbase >= from then free_data child)
              else free_tree (level - 1) child cbase
          done);
      if base >= from then free_meta b
    end
  in
  let direct = Array.copy inode.Inode.direct in
  for i = 0 to d - 1 do
    if i >= from && direct.(i) <> 0 then begin
      free_data direct.(i);
      direct.(i) <- 0
    end
  done;
  free_tree 1 inode.Inode.ind d;
  free_tree 2 inode.Inode.dind (d + p);
  free_tree 3 inode.Inode.tind (d + p + (p * p));
  let ind = if from <= d then 0 else inode.Inode.ind in
  let dind = if from <= d + p then 0 else inode.Inode.dind in
  let tind = if from <= d + p + (p * p) then 0 else inode.Inode.tind in
  let parity =
    if from = 0 && inode.Inode.parity <> 0 then begin
      free_data inode.Inode.parity;
      0
    end
    else inode.Inode.parity
  in
  let nblocks = max 0 (inode.Inode.nblocks - !freed) in
  ({ inode with Inode.direct; ind; dind; tind; parity; nblocks }, !errors)

(* ------------------------------------------------------------------ *)
(* Mkfs                                                                *)
(* ------------------------------------------------------------------ *)

let mkfs_impl profile dev =
  let lay = Layout.compute ~block_size:dev.Dev.block_size ~num_blocks:dev.Dev.num_blocks in
  let bs = lay.Layout.block_size in
  let zero = Bytes.make bs '\000' in
  let wr b data =
    match dev.Dev.write b data with Ok () -> Ok () | Error _ -> Error Errno.EIO
  in
  let cksums = Hashtbl.create 64 in
  let note_cksum b data =
    if profile.Profile.meta_checksum || profile.Profile.data_checksum then
      Hashtbl.replace cksums b (Sha1.to_raw (Sha1.digest data))
  in
  let wr_meta b data =
    note_cksum b data;
    let* () = wr b data in
    if profile.Profile.meta_replica then
      match Layout.replica_of lay b with Some r -> wr r data | None -> Ok ()
    else Ok ()
  in
  (* Zero the whole volume for a deterministic image. *)
  let rec zero_all b =
    if b >= lay.Layout.num_blocks then Ok ()
    else
      let* () = wr b zero in
      zero_all (b + 1)
  in
  let* () = zero_all 0 in
  (* Every group's (still empty) metadata gets its checksum and replica
     now, so later reads can verify them. Group 0's blocks are
     overwritten with real content just below. *)
  let rec init_groups g =
    if g >= lay.Layout.ngroups then Ok ()
    else begin
      let* () = wr_meta (Layout.bitmap_block lay g) zero in
      let* () = wr_meta (Layout.ibitmap_block lay g) zero in
      let rec itable i =
        if i >= lay.Layout.itable_blocks then Ok ()
        else
          let* () = wr_meta (Layout.itable_block lay g + i) zero in
          itable (i + 1)
      in
      let* () = itable 0 in
      init_groups (g + 1)
    end
  in
  let* () = init_groups 0 in
  (* Root directory: inode 2, one dir block (first data block, group 0). *)
  let root_block = Layout.data_start lay 0 in
  let dirbuf = Bytes.make bs '\000' in
  ignore (Dirent.encode dirbuf [ (".", Layout.root_ino); ("..", Layout.root_ino) ]);
  let* () = wr_meta root_block dirbuf in
  (* Inode table, group 0: inode 1 reserved, inode 2 root. *)
  let itbuf = Bytes.make bs '\000' in
  let root =
    {
      (Inode.fresh lay Inode.Directory ~perms:0o755 ~time:0) with
      Inode.links = 2;
      size = bs;
      nblocks = 1;
    }
  in
  let root_inode = { root with Inode.direct = (let a = Array.make lay.Layout.direct_ptrs 0 in a.(0) <- root_block; a) } in
  Inode.encode lay root_inode itbuf ((Layout.root_ino - 1) * lay.Layout.inode_size);
  let* () = wr_meta (Layout.itable_block lay 0) itbuf in
  (* Bitmaps. *)
  let bmbuf = Bytes.make bs '\000' in
  Bytes.set bmbuf 0 '\001' (* root dir block = data bit 0 *);
  let* () = wr_meta (Layout.bitmap_block lay 0) bmbuf in
  let ibbuf = Bytes.make bs '\000' in
  Bytes.set ibbuf 0 '\003' (* inodes 1 and 2 *);
  let* () = wr_meta (Layout.ibitmap_block lay 0) ibbuf in
  (* Remaining groups: bitmaps stay zero (already zeroed). *)
  (* Group descriptor block: per-group locations and free counts. *)
  let gd = Bytes.make bs '\000' in
  let w = Codec.writer gd in
  for g = 0 to lay.Layout.ngroups - 1 do
    Codec.put_u32 w (Layout.bitmap_block lay g);
    Codec.put_u32 w (Layout.ibitmap_block lay g);
    Codec.put_u32 w (Layout.itable_block lay g);
    Codec.put_u32 w (Layout.data_blocks_per_group lay - if g = 0 then 1 else 0);
    Codec.put_u32 w (lay.Layout.inodes_per_group - if g = 0 then 2 else 0)
  done;
  let* () = wr_meta 1 gd in
  (* Journal superblock (+ its replica when Mr). *)
  let jb = Bytes.make bs '\000' in
  Jrec.encode_jsuper { Jrec.sequence = 1; start = lay.Layout.journal_start + 1 } jb;
  let* () = wr lay.Layout.journal_start jb in
  let* () =
    if profile.Profile.meta_replica then
      match Layout.replica_of lay lay.Layout.journal_start with
      | Some r -> wr r jb
      | None -> Ok ()
    else Ok ()
  in
  (* Superblock (+ per-group copies, written once — stock ext3 never
     refreshes them, §5.1). *)
  let sbuf = Bytes.make bs '\000' in
  let sb =
    {
      Sb.block_size = bs;
      num_blocks = lay.Layout.num_blocks;
      state = Sb.Clean;
      mount_count = 0;
      free_blocks = Layout.total_data_blocks lay - 1;
      free_inodes = Layout.total_inodes lay - 2;
      features = Sb.features_of_profile profile;
    }
  in
  Sb.encode sb sbuf;
  let* () = wr 0 sbuf in
  let rec copies g =
    if g >= lay.Layout.ngroups then Ok ()
    else
      let* () = wr (Layout.super_copy_block lay g) sbuf in
      copies (g + 1)
  in
  let* () = copies 0 in
  (* Checksum table for everything we just wrote. *)
  let* () =
    if Hashtbl.length cksums = 0 then Ok ()
    else begin
      let tables = Hashtbl.create 8 in
      Hashtbl.iter
        (fun b digest ->
          let cb, off = Layout.cksum_location lay b in
          let buf =
            match Hashtbl.find_opt tables cb with
            | Some buf -> buf
            | None ->
                let buf = Bytes.make bs '\000' in
                Hashtbl.replace tables cb buf;
                buf
          in
          Bytes.blit_string digest 0 buf off 20)
        cksums;
      Hashtbl.fold
        (fun cb buf acc ->
          let* () = acc in
          wr cb buf)
        tables (Ok ())
    end
  in
  match dev.Dev.sync () with Ok () -> Ok () | Error _ -> Error Errno.EIO

(* ------------------------------------------------------------------ *)
(* Mount (including journal recovery)                                  *)
(* ------------------------------------------------------------------ *)

(* Recovery belongs to the journal core; ext3 supplies the Mr-specific
   fallbacks: reading the journal superblock's replica when the primary
   is unreadable or corrupt, and refreshing fixed-location replicas of
   whatever replay just rewrote. *)
let recover_journal profile lay dev klog =
  let (module P : Jrnl.POLICY) = policy_of_profile profile in
  let module J = Jrnl.Make (P) in
  let jsb_fallback =
    if not profile.Profile.meta_replica then None
    else
      Some
        (fun ~scratch ~why ->
          match Layout.replica_of lay lay.Layout.journal_start with
          | None -> None
          | Some r -> (
              match dev.Dev.read_into r scratch with
              | Error _ -> None
              | Ok () -> (
                  match Jrec.decode_jsuper scratch with
                  | Some js ->
                      Klog.warn klog "ixt3"
                        "journal superblock %s; recovered from replica" why;
                      Some js
                  | None -> None)))
  in
  let refresh_replica =
    if not profile.Profile.meta_replica then None
    else
      Some
        (fun home copy ->
          match Layout.replica_of lay home with
          | Some r -> (
              match dev.Dev.write r copy with Ok () -> () | Error _ -> ())
          | None -> ())
  in
  J.recover ~geo:(geo_of_layout lay) ~dev ~klog ?jsb_fallback ?refresh_replica ()

let mount_impl profile dev =
  let klog = Klog.create ~clock:dev.Dev.now () in
  (* Read and validate the superblock; ixt3 falls back to the copies.
     [Sb.decode] keeps nothing of the buffer, so all candidate blocks
     share one scratch. *)
  let sb_scratch = Bytes.create dev.Dev.block_size in
  let read_sb () =
    let try_block b =
      match dev.Dev.read_into b sb_scratch with
      | Error _ -> Error Errno.EIO
      | Ok () -> (
          match Sb.decode sb_scratch with Ok sb -> Ok sb | Error e -> Error e)
    in
    match try_block 0 with
    | Ok sb -> Ok sb
    | Error e ->
        if Profile.any_iron profile then begin
          (* Try the per-group copies; geometry must be recomputed
             blind, so use the mkfs layout for this device. *)
          let lay =
            Layout.compute ~block_size:dev.Dev.block_size
              ~num_blocks:dev.Dev.num_blocks
          in
          let rec try_copies g =
            if g >= lay.Layout.ngroups then Error e
            else
              match try_block (Layout.super_copy_block lay g) with
              | Ok sb ->
                  Klog.warn klog "ixt3" "superblock recovered from copy in group %d" g;
                  Ok sb
              | Error _ -> try_copies (g + 1)
          in
          try_copies 0
        end
        else begin
          Klog.error klog "ext3" "cannot read superblock";
          Error e
        end
  in
  let* sb = read_sb () in
  if sb.Sb.block_size <> dev.Dev.block_size then Error Errno.EINVAL
  else begin
    let lay =
      Layout.compute ~block_size:sb.Sb.block_size ~num_blocks:sb.Sb.num_blocks
    in
    (* Journal recovery before anything else touches the metadata. *)
    let* jseq = recover_journal profile lay dev klog in
    (* Group descriptors. *)
    (* Group descriptors are decoded into arrays below and the raw
       block dropped, so the superblock scratch is reused here. *)
    let* gd =
      match dev.Dev.read_into 1 sb_scratch with
      | Ok () -> Ok sb_scratch
      | Error _ -> (
          Klog.error klog "ext3" "cannot read group descriptors";
          if profile.Profile.meta_replica then
            match Layout.replica_of lay 1 with
            | Some r -> (
                match dev.Dev.read_into r sb_scratch with
                | Ok () ->
                    Klog.warn klog "ixt3" "group descriptors recovered from replica";
                    Ok sb_scratch
                | Error _ -> Error Errno.EIO)
            | None -> Error Errno.EIO
          else Error Errno.EIO)
    in
    let n = lay.Layout.ngroups in
    let gd_bitmap = Array.make n 0 in
    let gd_ibitmap = Array.make n 0 in
    let gd_itable = Array.make n 0 in
    let free_blocks = ref 0 and free_inodes = ref 0 in
    let r = Codec.reader gd in
    (try
       for g = 0 to n - 1 do
         gd_bitmap.(g) <- Codec.get_u32 r;
         gd_ibitmap.(g) <- Codec.get_u32 r;
         gd_itable.(g) <- Codec.get_u32 r;
         free_blocks := !free_blocks + Codec.get_u32 r;
         free_inodes := !free_inodes + Codec.get_u32 r
       done
     with Codec.Decode_error _ -> ());
    let cache = Bcache.create ~capacity:512 dev in
    let (module P : Jrnl.POLICY) = policy_of_profile profile in
    let module J = Jrnl.Make (P) in
    let jrnl =
      J.create ~tuning:profile.Profile.tuning ~dev ~cache ~klog
        ~kinds:(kind_of_block lay) ~geo:(geo_of_layout lay)
        ~journaled:(fun b -> b < lay.Layout.replica_start)
        ~seq:jseq ()
    in
    let t =
      {
        profile;
        dev;
        lay;
        klog;
        cache;
        free_blocks = !free_blocks;
        free_inodes = !free_inodes;
        gd_bitmap;
        gd_ibitmap;
        gd_itable;
        readonly = false;
        aborted = false;
        jrnl;
        fds = Hashtbl.create 16;
        next_fd = 3;
        cwd = Layout.root_ino;
        root = Layout.root_ino;
        cksums = Hashtbl.create 256;
        rlog_head = lay.Layout.rlog_start;
      }
    in
    (* The hooks close over the state record, which in turn holds the
       engine — hence the two-phase construction. Replica copies do not
       ride the regular journal: they stream to the separate replica
       log after each commit and reach their fixed homes at checkpoint
       (§6.1); Mr also shadows the journal superblock itself. *)
    J.connect jrnl
      ~on_abort:(fun why -> abort_journal t why)
      ~aborted:(fun () -> t.aborted)
      ?jsb_shadow:
        (if not profile.Profile.meta_replica then None
         else
           Some
             (fun buf ->
               match Layout.replica_of lay lay.Layout.journal_start with
               | Some r -> (
                   match dev.Dev.write r buf with Ok () | Error _ -> ())
               | None -> ()))
      ?post_commit:
        (if not profile.Profile.meta_replica then None
         else
           Some
             (fun blocks ->
               List.iter
                 (fun (b, data) ->
                   (* Only the replica copies themselves stream to the log. *)
                   if b >= lay.Layout.replica_start then begin
                     if
                       t.rlog_head
                       >= lay.Layout.rlog_start + lay.Layout.rlog_blocks
                     then t.rlog_head <- lay.Layout.rlog_start;
                     (match dev.Dev.write t.rlog_head data with
                     | Ok () -> ()
                     | Error _ -> () (* the primaries' journal is authoritative *));
                     t.rlog_head <- t.rlog_head + 1
                   end)
                 blocks))
      ();
    (* Mark the volume dirty. Stock ext3 ignores a failure here too. *)
    let sbuf = Bytes.make lay.Layout.block_size '\000' in
    Sb.encode { sb with Sb.state = Sb.Dirty; mount_count = sb.Sb.mount_count + 1 } sbuf;
    (match dev.Dev.write 0 sbuf with
    | Ok () -> ()
    | Error _ ->
        if profile.Profile.check_write_errors then begin
          Klog.error klog "ext3" "superblock write failed at mount";
          t.readonly <- true
        end);
    Ok t
  end

(* ------------------------------------------------------------------ *)
(* Write-path helpers and guards                                       *)
(* ------------------------------------------------------------------ *)

let guard_write t = if t.readonly then Error Errno.EROFS else Ok ()

(* Update group-descriptor free counts on disk lazily: we serialize the
   in-memory values wholesale whenever allocation state changed. *)
let flush_gd t =
  let bs = bsize t in
  let gd = Bytes.make bs '\000' in
  let w = Codec.writer gd in
  (* Recompute per-group splits approximately: totals are what matter
     for statfs; per-group counts are informational. *)
  for g = 0 to t.lay.Layout.ngroups - 1 do
    Codec.put_u32 w t.gd_bitmap.(g);
    Codec.put_u32 w t.gd_ibitmap.(g);
    Codec.put_u32 w t.gd_itable.(g);
    Codec.put_u32 w (t.free_blocks / t.lay.Layout.ngroups);
    Codec.put_u32 w (t.free_inodes / t.lay.Layout.ngroups)
  done;
  meta_write t Gdesc 1 gd

(* Run a mutating operation: body builds the transaction; then the
   group descriptors are folded in. Commit happens on fsync/sync or
   journal pressure, as on the real system. *)
let in_txn t body =
  let* () = guard_write t in
  let* r = body () in
  let* () = flush_gd t in
  Ok r

(* ------------------------------------------------------------------ *)
(* POSIX-style operations                                              *)
(* ------------------------------------------------------------------ *)

let stat_of_inode ino (i : Inode.t) =
  {
    Fs.st_ino = ino;
    st_kind =
      (match i.Inode.kind with
      | Inode.Directory -> Fs.Directory
      | Inode.Symlink -> Fs.Symlink
      | Inode.Regular | Inode.Free -> Fs.Regular);
    st_size = i.Inode.size;
    st_links = i.Inode.links;
    st_mode = i.Inode.perms;
    st_uid = i.Inode.uid;
    st_gid = i.Inode.gid;
    st_atime = float_of_int i.Inode.atime;
    st_mtime = float_of_int i.Inode.mtime;
    st_ctime = float_of_int i.Inode.ctime;
  }

(* The paper's inode sanity check: open validates the size field. *)
let sane_size t (i : Inode.t) =
  i.Inode.size <= Inode.max_file_blocks t.lay * bsize t

let op_access t path =
  let* _ino = resolve t path in
  Ok ()

let op_chdir t path =
  let* ino = resolve t path in
  let* i = read_inode t ino in
  match i.Inode.kind with
  | Inode.Directory ->
      t.cwd <- ino;
      Ok ()
  | Inode.Regular | Inode.Symlink | Inode.Free -> Error Errno.ENOTDIR

let op_chroot t path =
  let* ino = resolve t path in
  let* i = read_inode t ino in
  match i.Inode.kind with
  | Inode.Directory ->
      t.root <- ino;
      t.cwd <- ino;
      Ok ()
  | Inode.Regular | Inode.Symlink | Inode.Free -> Error Errno.ENOTDIR

let op_stat t path =
  let* ino = resolve t path in
  let* i = read_inode t ino in
  Ok (stat_of_inode ino i)

let op_lstat t path =
  let* ino = resolve t ~follow_last:false path in
  let* i = read_inode t ino in
  Ok (stat_of_inode ino i)

let op_statfs t =
  Ok
    {
      Fs.f_blocks = Layout.total_data_blocks t.lay;
      f_bfree = t.free_blocks;
      f_files = Layout.total_inodes t.lay;
      f_ffree = t.free_inodes;
      f_bsize = bsize t;
    }

let op_open t path mode =
  let* ino = resolve t path in
  let* i = read_inode t ino in
  match i.Inode.kind with
  | Inode.Directory when mode <> Fs.Rd -> Error Errno.EISDIR
  | Inode.Free ->
      Klog.error t.klog "ext3" "open of free inode %d" ino;
      Error Errno.EIO
  | Inode.Regular | Inode.Directory | Inode.Symlink ->
      if not (sane_size t i) then begin
        Klog.error t.klog "ext3" "inode %d has impossible size %d" ino i.Inode.size;
        Error Errno.EUCLEAN
      end
      else begin
        let fd = t.next_fd in
        t.next_fd <- fd + 1;
        Hashtbl.replace t.fds fd { fd_ino = ino; fd_mode = mode };
        Ok fd
      end

let op_close t fd =
  if Hashtbl.mem t.fds fd then begin
    Hashtbl.remove t.fds fd;
    Ok ()
  end
  else Error Errno.EBADF

(* Create a fresh inode linked under [path]; shared by creat / mkdir /
   symlink. *)
let create_node t path kind ~perms ~target =
  in_txn t (fun () ->
      let* dino, name = resolve_parent t path in
      let* () = VPath.validate_component name in
      let* dinode = read_inode t dino in
      if dinode.Inode.kind <> Inode.Directory then Error Errno.ENOTDIR
      else
        match dir_lookup t dinode name with
        | Ok _ -> Error Errno.EEXIST
        | Error Errno.ENOENT ->
            let* ino = alloc_inode t ~goal_group:(Layout.group_of_inode t.lay dino) in
            let time = now_seconds t in
            let node = Inode.fresh t.lay kind ~perms ~time in
            let node = { node with Inode.symlink_target = target } in
            let* node =
              if kind <> Inode.Directory then Ok node
              else begin
                (* "." and ".." plus the parent's link. *)
                let* b, node, _ = bmap_alloc t ino node 0 in
                let buf = zero_block t in
                ignore (Dirent.encode buf [ (".", ino); ("..", dino) ]);
                let* () = meta_write t Dir b buf in
                Ok { node with Inode.links = 2; size = bsize t }
              end
            in
            let* () = write_inode t ino node in
            let* () = dir_add_entry t dino dinode name ino in
            let* dinode = read_inode t dino in
            let* () =
              if kind = Inode.Directory then
                write_inode t dino
                  { dinode with Inode.links = dinode.Inode.links + 1;
                    mtime = time; ctime = time }
              else
                write_inode t dino { dinode with Inode.mtime = time; ctime = time }
            in
            Ok ino
        | Error e -> Error e)

let op_creat t path =
  let* ino = create_node t path Inode.Regular ~perms:0o644 ~target:"" in
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd { fd_ino = ino; fd_mode = Fs.Rdwr };
  Ok fd

let op_mkdir t path =
  let* _ino = create_node t path Inode.Directory ~perms:0o755 ~target:"" in
  Ok ()

let op_symlink t target linkpath =
  let* _ino = create_node t linkpath Inode.Symlink ~perms:0o777 ~target in
  Ok ()

let op_link t existing linkpath =
  in_txn t (fun () ->
      let* ino = resolve t existing in
      let* i = read_inode t ino in
      if i.Inode.kind = Inode.Directory then Error Errno.EISDIR
      else
        let* dino, name = resolve_parent t linkpath in
        let* () = VPath.validate_component name in
        let* dinode = read_inode t dino in
        match dir_lookup t dinode name with
        | Ok _ -> Error Errno.EEXIST
        | Error Errno.ENOENT ->
            let* () = dir_add_entry t dino dinode name ino in
            write_inode t ino
              { i with Inode.links = i.Inode.links + 1; ctime = now_seconds t }
        | Error e -> Error e)

let op_readlink t path =
  let* ino = resolve t ~follow_last:false path in
  let* i = read_inode t ino in
  match i.Inode.kind with
  | Inode.Symlink -> Ok i.Inode.symlink_target
  | Inode.Regular | Inode.Directory | Inode.Free -> Error Errno.EINVAL

let op_getdirentries t path =
  let* ino = resolve t path in
  let* i = read_inode t ino in
  if i.Inode.kind <> Inode.Directory then Error Errno.ENOTDIR
  else
    let* blocks = dir_blocks t i in
    Ok (List.concat_map (fun (_, _, es) -> es) blocks)

let op_read t fd ~off ~len =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Errno.EBADF
  | Some { fd_ino; _ } ->
      let* i = read_inode t fd_ino in
      let bs = bsize t in
      let len = max 0 (min len (i.Inode.size - off)) in
      if len = 0 then Ok Bytes.empty
      else begin
        let out = Bytes.create len in
        let rec fill pos =
          if pos >= len then Ok ()
          else
            let fblock = (off + pos) / bs in
            let boff = (off + pos) mod bs in
            let n = min (bs - boff) (len - pos) in
            let* data = data_read_block t i fblock in
            Bytes.blit data boff out pos n;
            fill (pos + n)
        in
        let* () = fill 0 in
        Ok out
      end

let op_write t fd ~off data =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Errno.EBADF
  | Some { fd_ino; fd_mode } ->
      if fd_mode = Fs.Rd then Error Errno.EBADF
      else
        in_txn t (fun () ->
            let* i0 = read_inode t fd_ino in
            let bs = bsize t in
            let len = Bytes.length data in
            let inode = ref i0 in
            let rec put pos =
              if pos >= len then Ok ()
              else
                let fblock = (off + pos) / bs in
                let boff = (off + pos) mod bs in
                let n = min (bs - boff) (len - pos) in
                let* buf =
                  if boff = 0 && n = bs then Ok (Bytes.sub data pos n)
                  else
                    (* Read-modify-write for partial blocks. *)
                    let* old = data_read_block t !inode fblock in
                    Bytes.blit data pos old boff n;
                    Ok old
                in
                let* inode' = data_write_block t fd_ino !inode fblock buf in
                inode := inode';
                put (pos + n)
            in
            let* () = put 0 in
            let time = now_seconds t in
            let size = max i0.Inode.size (off + len) in
            let* () =
              write_inode t fd_ino
                { !inode with Inode.size; mtime = time; ctime = time }
            in
            Ok len)

let op_truncate t path size =
  in_txn t (fun () ->
      let* ino = resolve t path in
      let* i = read_inode t ino in
      if i.Inode.kind = Inode.Directory then Error Errno.EISDIR
      else if size > Inode.max_file_blocks t.lay * bsize t then Error Errno.EFBIG
      else begin
        let bs = bsize t in
        let keep = (size + bs - 1) / bs in
        let i', errors = free_file_from t i ~from:keep in
        (* Shrinking into the middle of a block: its tail must read as
           zeroes if the file later grows again. *)
        let* i' =
          if size >= i.Inode.size || size mod bs = 0 then Ok i'
          else
            let fblock = size / bs in
            let* b = bmap t i' fblock in
            if b = 0 then Ok i'
            else
              let* old = data_read_block t i' fblock in
              Bytes.fill old (size mod bs) (bs - (size mod bs)) '\000';
              data_write_block t ino i' fblock old
        in
        let time = now_seconds t in
        let* () =
          write_inode t ino { i' with Inode.size; mtime = time; ctime = time }
        in
        if errors > 0 then begin
          Klog.error t.klog "ext3" "%d read failures while truncating" errors;
          (* Stock ext3 swallows the error: truncate "fails silently". *)
          if t.profile.Profile.propagate_delete_errors then Error Errno.EIO
          else Ok ()
        end
        else Ok ()
      end)

let remove_common t path ~dir =
  in_txn t (fun () ->
      let* () =
        (* Deleting the root itself. *)
        if VPath.split path = [] then
          Error (if dir then Errno.EINVAL else Errno.EISDIR)
        else Ok ()
      in
      let* dino, name = resolve_parent t path in
      let* dinode = read_inode t dino in
      let* ino = dir_lookup t dinode name in
      let* i = read_inode t ino in
      match (dir, i.Inode.kind) with
      | true, k when k <> Inode.Directory -> Error Errno.ENOTDIR
      | false, Inode.Directory -> Error Errno.EISDIR
      | _ ->
          let* () =
            if not dir then Ok ()
            else
              let* empty = dir_is_empty t i in
              if empty then Ok () else Error Errno.ENOTEMPTY
          in
          (* The linkcount bug: stock ext3 decrements without checking,
             and a corrupted zero count takes the kernel down (§5.1). *)
          if i.Inode.links = 0 then begin
            if t.profile.Profile.sanity_check_linkcount then begin
              Klog.error t.klog "ext3" "inode %d has zero link count" ino;
              Error Errno.EUCLEAN
            end
            else
              Klog.panic t.klog "ext3"
                "kernel BUG: deleting inode %d with links_count=0" ino
          end
          else begin
            let time = now_seconds t in
            let* () = dir_remove_entry t dino dinode name in
            let links = i.Inode.links - (if dir then 2 else 1) in
            if (dir && links <= 1) || ((not dir) && links = 0) then begin
              (* Last link: release everything. *)
              let i', errors = free_file_from t i ~from:0 in
              let* () = write_inode t ino { i' with Inode.kind = Inode.Free; links = 0 } in
              let* () = free_inode t ino in
              let* () =
                if dir then
                  let* d = read_inode t dino in
                  write_inode t dino
                    { d with Inode.links = d.Inode.links - 1; mtime = time; ctime = time }
                else
                  let* d = read_inode t dino in
                  write_inode t dino { d with Inode.mtime = time; ctime = time }
              in
              if errors > 0 && t.profile.Profile.propagate_delete_errors then begin
                Klog.error t.klog "ext3" "read failures while freeing inode %d" ino;
                Error Errno.EIO
              end
              else Ok ()
            end
            else
              let* () = write_inode t ino { i with Inode.links; ctime = time } in
              let* d = read_inode t dino in
              write_inode t dino { d with Inode.mtime = time; ctime = time }
          end)

let op_unlink t path = remove_common t path ~dir:false
let op_rmdir t path = remove_common t path ~dir:true

let op_rename t src dst =
  in_txn t (fun () ->
      let* sdino, sname = resolve_parent t src in
      let* sdinode = read_inode t sdino in
      let* ino = dir_lookup t sdinode sname in
      let* ddino, dname = resolve_parent t dst in
      let* () = VPath.validate_component dname in
      let* ddinode = read_inode t ddino in
      let* () =
        (* Replace an existing target if present (files only). *)
        match dir_lookup t ddinode dname with
        | Ok old when old <> ino -> (
            let* oi = read_inode t old in
            match oi.Inode.kind with
            | Inode.Directory -> Error Errno.EISDIR
            | Inode.Regular | Inode.Symlink | Inode.Free ->
                let* () = dir_remove_entry t ddino ddinode dname in
                let links = max 0 (oi.Inode.links - 1) in
                if links = 0 then begin
                  let oi', _ = free_file_from t oi ~from:0 in
                  let* () =
                    write_inode t old { oi' with Inode.kind = Inode.Free; links = 0 }
                  in
                  free_inode t old
                end
                else write_inode t old { oi with Inode.links })
        | Ok _ -> Ok ()
        | Error Errno.ENOENT -> Ok ()
        | Error e -> Error e
      in
      let* sdinode = read_inode t sdino in
      let* () = dir_remove_entry t sdino sdinode sname in
      let* ddinode = read_inode t ddino in
      let* () = dir_add_entry t ddino ddinode dname ino in
      (* Directory moves update "..": and the parents' link counts. *)
      let* i = read_inode t ino in
      if i.Inode.kind = Inode.Directory && sdino <> ddino then begin
        let* blocks = dir_blocks t i in
        let* () =
          match blocks with
          | (_, b, entries) :: _ ->
              let entries' =
                List.map (fun (n, e) -> if n = ".." then (n, ddino) else (n, e)) entries
              in
              let buf = zero_block t in
              ignore (Dirent.encode buf entries');
              meta_write t Dir b buf
          | [] -> Ok ()
        in
        let* sd = read_inode t sdino in
        let* () = write_inode t sdino { sd with Inode.links = sd.Inode.links - 1 } in
        let* dd = read_inode t ddino in
        write_inode t ddino { dd with Inode.links = dd.Inode.links + 1 }
      end
      else Ok ())

let update_inode_meta t path f =
  in_txn t (fun () ->
      let* ino = resolve t path in
      let* i = read_inode t ino in
      write_inode t ino (f i))

let op_chmod t path perms =
  update_inode_meta t path (fun i ->
      { i with Inode.perms; ctime = now_seconds t })

let op_chown t path uid gid =
  update_inode_meta t path (fun i ->
      { i with Inode.uid = uid; gid; ctime = now_seconds t })

let op_utimes t path atime mtime =
  update_inode_meta t path (fun i ->
      { i with Inode.atime = int_of_float atime; mtime = int_of_float mtime })

(* fsync forces the running transaction into the journal (durable but
   not yet checkpointed); sync additionally checkpoints everything to
   its home location, like a full flush of kjournald + pdflush. The
   distinction matters to fault injection: checkpoint writes are where
   stock ext3 loses write errors. *)
let op_fsync t fd =
  if Hashtbl.mem t.fds fd then commit t else Error Errno.EBADF

let op_sync t =
  let* () = commit t in
  checkpoint t;
  if t.aborted then Error Errno.EROFS else Ok ()

let op_unmount t =
  let* () = commit t in
  checkpoint t;
  if t.aborted then Error Errno.EROFS
  else begin
    (* Write back a clean superblock (and, for ixt3+Mr, refresh the
       per-group copies — stock ext3 famously never does, §5.1). *)
    let bs = bsize t in
    let sbuf = Bytes.make bs '\000' in
    let sb =
      {
        Sb.block_size = bs;
        num_blocks = t.lay.Layout.num_blocks;
        state = Sb.Clean;
        mount_count = 0;
        free_blocks = t.free_blocks;
        free_inodes = t.free_inodes;
        features = Sb.features_of_profile t.profile;
      }
    in
    Sb.encode sb sbuf;
    (match t.dev.Dev.write 0 sbuf with
    | Ok () -> ()
    | Error _ ->
        if t.profile.Profile.check_write_errors then begin
          Klog.error t.klog "ext3" "superblock write failed at unmount";
          abort_journal t "superblock write"
        end);
    if t.profile.Profile.meta_replica then
      for g = 0 to t.lay.Layout.ngroups - 1 do
        match t.dev.Dev.write (Layout.super_copy_block t.lay g) sbuf with
        | Ok () -> ()
        | Error _ -> Klog.warn t.klog "ixt3" "superblock copy %d not refreshed" g
      done;
    ignore (t.dev.Dev.sync ());
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Packaging as a Fs.brand                                             *)
(* ------------------------------------------------------------------ *)

let layout_of_dev dev =
  Layout.compute ~block_size:dev.Dev.block_size ~num_blocks:dev.Dev.num_blocks

let brand profile =
  let module M = struct
    let fs_name = profile.Profile.name
    let block_types = Classifier.block_types
    let classifier = Classifier.classify
    let corrupt_field = Classifier.corrupt_field

    type t = state

    let mkfs dev = mkfs_impl profile dev
    let mount dev = mount_impl profile dev
    let unmount = op_unmount
    let klog t = t.klog
    let is_readonly t = t.readonly
    let access = op_access
    let chdir = op_chdir
    let chroot = op_chroot
    let stat = op_stat
    let lstat = op_lstat
    let statfs t = op_statfs t
    let open_ = op_open
    let close = op_close
    let creat = op_creat
    let read t fd ~off ~len = op_read t fd ~off ~len
    let write t fd ~off data = op_write t fd ~off data
    let readlink = op_readlink
    let getdirentries = op_getdirentries
    let link = op_link
    let symlink = op_symlink
    let mkdir = op_mkdir
    let rmdir = op_rmdir
    let unlink = op_unlink
    let rename = op_rename
    let truncate = op_truncate
    let chmod = op_chmod
    let chown = op_chown
    let utimes = op_utimes
    let fsync = op_fsync
    let sync = op_sync
  end in
  Fs.Brand (module M)

let std = brand Profile.ext3
let ixt3 = brand Profile.ixt3
