type t = {
  block_size : int;
  num_blocks : int;
  inode_size : int;
  inodes_per_block : int;
  direct_ptrs : int;
  ptrs_per_block : int;
  journal_start : int;
  journal_len : int;
  groups_start : int;
  blocks_per_group : int;
  itable_blocks : int;
  inodes_per_group : int;
  ngroups : int;
  cksum_start : int;
  cksum_blocks : int;
  rlog_start : int;
  rlog_blocks : int;
  rmap_start : int;
  rmap_blocks : int;
  replica_start : int;
  replica_blocks : int;
  cksum_per_block : int;
}

let root_ino = 2
let first_free_ino = 3
let digest_size = 20

let compute ~block_size ~num_blocks =
  let inode_size = 128 in
  let inodes_per_block = block_size / inode_size in
  let itable_blocks = 4 in
  let inodes_per_group = itable_blocks * inodes_per_block in
  (* Journal sized with the volume (real ext3 defaults are far larger
     still); a cramped journal forces a checkpoint at every commit and
     distorts relative costs. *)
  let journal_len = max 64 (num_blocks / 16) in
  let journal_start = 2 in
  let groups_start = journal_start + journal_len in
  (* The group-descriptor table is a single block (block 1): 20 bytes
     per group, so at most [block_size / 20] groups. Small volumes keep
     the historical 256-block groups; larger ones double the group size
     until every descriptor fits, bounded by what one block bitmap can
     cover. *)
  let gd_per_block = block_size / 20 in
  let bitmap_bits = block_size * 8 in
  let blocks_per_group =
    let rec widen bpg =
      if (num_blocks - groups_start) / bpg > gd_per_block then widen (bpg * 2)
      else bpg
    in
    let bpg = widen 256 in
    if bpg > bitmap_bits then
      failwith "Layout.compute: volume too large for one-block bitmaps";
    bpg
  in
  let cksum_per_block = block_size / digest_size in
  let cksum_blocks = (num_blocks + cksum_per_block - 1) / cksum_per_block in
  let rmap_blocks = ((num_blocks * 4) + block_size - 1) / block_size in
  let rlog_blocks = 64 in
  (* Replica slots depend on ngroups; solve by iterating downward. *)
  let fits ngroups =
    let replica_blocks = 2 + (ngroups * (2 + itable_blocks)) in
    groups_start
    + (ngroups * blocks_per_group)
    + cksum_blocks + rlog_blocks + rmap_blocks + replica_blocks
    <= num_blocks
  in
  let rec find n = if n >= 1 && not (fits n) then find (n - 1) else n in
  let ngroups = find ((num_blocks - groups_start) / blocks_per_group) in
  if ngroups < 1 then failwith "Layout.compute: device too small";
  let replica_blocks = 2 + (ngroups * (2 + itable_blocks)) in
  let replica_start = num_blocks - replica_blocks in
  let rmap_start = replica_start - rmap_blocks in
  let rlog_start = rmap_start - rlog_blocks in
  let cksum_start = rlog_start - cksum_blocks in
  {
    block_size;
    num_blocks;
    inode_size;
    inodes_per_block;
    direct_ptrs = 4;
    ptrs_per_block = 16;
    journal_start;
    journal_len;
    groups_start;
    blocks_per_group;
    itable_blocks;
    inodes_per_group;
    ngroups;
    cksum_start;
    cksum_blocks;
    rlog_start;
    rlog_blocks;
    rmap_start;
    rmap_blocks;
    replica_start;
    replica_blocks;
    cksum_per_block;
  }

let group_base l g = l.groups_start + (g * l.blocks_per_group)
let super_copy_block l g = group_base l g
let bitmap_block l g = group_base l g + 1
let ibitmap_block l g = group_base l g + 2
let itable_block l g = group_base l g + 3
let data_start l g = group_base l g + 3 + l.itable_blocks
let data_blocks_per_group l = l.blocks_per_group - 3 - l.itable_blocks

let group_of_block l b =
  if b < l.groups_start || b >= l.groups_start + (l.ngroups * l.blocks_per_group)
  then None
  else Some ((b - l.groups_start) / l.blocks_per_group)

let group_of_inode l ino = (ino - 1) / l.inodes_per_group

let inode_location l ino =
  let g = group_of_inode l ino in
  let idx = (ino - 1) mod l.inodes_per_group in
  (itable_block l g + (idx / l.inodes_per_block),
   idx mod l.inodes_per_block * l.inode_size)

let total_inodes l = l.ngroups * l.inodes_per_group
let total_data_blocks l = l.ngroups * data_blocks_per_group l

let cksum_location l b =
  (l.cksum_start + (b / l.cksum_per_block), b mod l.cksum_per_block * digest_size)

let replica_targets l =
  let per_group g =
    bitmap_block l g :: ibitmap_block l g
    :: List.init l.itable_blocks (fun i -> itable_block l g + i)
  in
  1 :: l.journal_start :: List.concat (List.init l.ngroups per_group)

let rmap_location l b =
  let per = l.block_size / 4 in
  (l.rmap_start + (b / per), b mod per * 4)

let replica_of l b =
  let rec index i = function
    | [] -> None
    | x :: _ when x = b -> Some (l.replica_start + i)
    | _ :: rest -> index (i + 1) rest
  in
  index 0 (replica_targets l)
