module Jrnl = Iron_jrnl.Jrnl

type t = {
  name : string;
  check_write_errors : bool;
  propagate_delete_errors : bool;
  abort_on_journal_write_failure : bool;
  sanity_check_linkcount : bool;
  dir_read_retries : int;
  mode : Jrnl.mode;
  tuning : Jrnl.tuning;
      (** group-commit window and checkpoint watermark handed to the
          journal engine at mount; {!Jrnl.default_tuning} reproduces the
          historical I/O stream byte for byte *)
  meta_checksum : bool;
  data_checksum : bool;
  meta_replica : bool;
  data_parity : bool;
  data_remap : bool;
}

let ext3 =
  {
    name = "ext3";
    check_write_errors = false;
    propagate_delete_errors = false;
    abort_on_journal_write_failure = false;
    sanity_check_linkcount = false;
    dir_read_retries = 1;
    mode = Jrnl.Ordered;
    tuning = Jrnl.default_tuning;
    meta_checksum = false;
    data_checksum = false;
    meta_replica = false;
    data_parity = false;
    data_remap = false;
  }

let ixt3_with ?(mc = false) ?(mr = false) ?(dc = false) ?(dp = false)
    ?(tc = false) ?(rm = false) () =
  {
    name = "ixt3";
    check_write_errors = true;
    propagate_delete_errors = true;
    abort_on_journal_write_failure = true;
    sanity_check_linkcount = true;
    dir_read_retries = 1;
    mode = (if tc then Jrnl.Tc_checksummed else Jrnl.Ordered);
    tuning = Jrnl.default_tuning;
    meta_checksum = mc;
    data_checksum = dc;
    meta_replica = mr;
    data_parity = dp;
    data_remap = rm;
  }

let ixt3 = ixt3_with ~mc:true ~mr:true ~dc:true ~dp:true ~tc:true ()

let tc p = p.mode = Jrnl.Tc_checksummed

let variant_label p =
  let parts =
    List.filter_map
      (fun (on, l) -> if on then Some l else None)
      [
        (p.meta_checksum, "Mc");
        (p.meta_replica, "Mr");
        (p.data_checksum, "Dc");
        (p.data_parity, "Dp");
        (tc p, "Tc");
        (p.data_remap, "Rm");
      ]
  in
  match parts with [] -> "(base)" | _ -> String.concat " " parts

let any_iron p =
  p.meta_checksum || p.data_checksum || p.meta_replica || p.data_parity
  || tc p || p.data_remap
