module Jrnl = Iron_jrnl.Jrnl

(* The paper's other two ext3 journaling modes (§2.1), as brand-sized
   policy variants over the shared journal core. Everything else —
   layout, failure-policy bugs, IRON feature wiring — is the stock ext3
   profile; only the commit policy handed to the engine differs.

   Writeback journals metadata but leaves data writes to the flusher
   (our checkpoint), so an fsync makes metadata durable while the data
   it describes can still be lost — the paper's writeback data-loss
   window. Data-journal stages file data into the transaction like
   metadata: data rides the log, and a data-block write can no longer
   fail at write time at all. *)

let writeback_profile =
  { Profile.ext3 with Profile.name = "ext3-writeback"; mode = Jrnl.Writeback }

let data_profile =
  { Profile.ext3 with Profile.name = "ext3-data"; mode = Jrnl.Data_journal }

let writeback = Ext3.brand writeback_profile
let data = Ext3.brand data_profile
