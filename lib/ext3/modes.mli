(** The paper's other two ext3 journaling modes (§2.1) as brands.

    Stock ext3 runs ordered mode; these variants differ only in the
    commit policy handed to the shared journal core
    ({!Iron_jrnl.Jrnl.mode}), which is exactly what makes them
    brand-sized: the Figure 2 matrix widens by two columns without a
    new file system. *)

val writeback_profile : Profile.t
val data_profile : Profile.t

val writeback : Iron_vfs.Fs.brand
(** [ext3-writeback]: metadata journaled, data written only at
    checkpoint — fsync leaves a data-loss window. *)

val data : Iron_vfs.Fs.brand
(** [ext3-data]: file data rides the journal with the metadata; data
    writes cannot fail at write time. *)
