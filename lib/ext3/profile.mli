(** Failure-policy and IRON-feature knobs.

    The same implementation serves stock ext3 (with the paper's
    documented bugs left in, §5.1) and the ixt3 family (§6). A profile
    chooses which behaviours are active; the 32 rows of Table 6 are the
    32 combinations of the five IRON feature bits. The journal commit
    policy ([mode]) selects among the paper's three ext3 journaling
    modes plus the Tc variant, and is handed to the shared journal core
    ({!Iron_jrnl.Jrnl}) at mount. *)

type t = {
  name : string;
  (* --- stock-ext3 failure-policy quirks (all are the paper's findings) *)
  check_write_errors : bool;
      (** [false]: write error codes are dropped on the floor (DZero);
          checkpoint and data writes fail silently. *)
  propagate_delete_errors : bool;
      (** [false]: truncate/rmdir/unlink swallow read errors and return
          success ("truncate and rmdir fail silently"). *)
  abort_on_journal_write_failure : bool;
      (** [false]: a failed journal-data write does not stop the commit
          block from being written — the replay-corruption bug. *)
  sanity_check_linkcount : bool;
      (** [false]: unlink trusts links_count; a corrupted count panics
          the kernel. *)
  dir_read_retries : int;
      (** Retries after a failed directory-block read (the prefetch-path
          retry the paper observed). Stock ext3: 1. *)
  mode : Iron_jrnl.Jrnl.mode;
      (** Commit policy: [Writeback], [Ordered] (the ext3 default),
          [Data_journal], or [Tc_checksummed] (ordered + the ixt3
          transactional checksum, §6.1). *)
  tuning : Iron_jrnl.Jrnl.tuning;
      (** Group-commit window and checkpoint watermark handed to the
          journal engine at mount. {!Iron_jrnl.Jrnl.default_tuning}
          (every stock profile) reproduces the historical I/O stream
          byte for byte; variants built with [{ p with tuning }] get
          eager window flushes / batched checkpoint write-back. *)
  (* --- IRON features (§6.1) *)
  meta_checksum : bool;  (** Mc *)
  data_checksum : bool;  (** Dc *)
  meta_replica : bool;  (** Mr *)
  data_parity : bool;  (** Dp *)
  data_remap : bool;
      (** Rm — the taxonomy's RRemap (§3.3): a failed data-block write
          is retried at a freshly allocated location and the file's
          mapping updated. Not part of the paper's ixt3 prototype
          (Figure 3 shows no remap); offered as the extension the
          taxonomy calls for. *)
}

val ext3 : t
(** Stock ext3: bugs present, no IRON features, ordered mode. *)

val ixt3 : t
(** All IRON features on, all bugs fixed. *)

val ixt3_with :
  ?mc:bool -> ?mr:bool -> ?dc:bool -> ?dp:bool -> ?tc:bool -> ?rm:bool ->
  unit -> t
(** An ixt3 variant with chosen features (defaults: all off). Bug fixes
    are always applied: the paper notes that building ixt3 involved
    fixing ext3's failure-handling bugs (§6.2). [tc] selects
    [Tc_checksummed] mode; otherwise the variant runs ordered. *)

val tc : t -> bool
(** Whether the profile's mode carries the transactional checksum. *)

val variant_label : t -> string
(** E.g. ["Mc Mr Dp"]; ["(ext3)"] for the all-off baseline. *)

val any_iron : t -> bool
