open Iron_util
module Jrec = Iron_jrnl.Jrec

let block_types =
  [
    "inode"; "dir"; "bitmap"; "i-bitmap"; "indirect"; "data"; "super";
    "g-desc"; "j-super"; "j-revoke"; "j-desc"; "j-commit"; "j-data";
  ]

(* Build the dynamic-label table by walking every allocated inode. *)
let dynamic_labels raw lay =
  let labels = Hashtbl.create 256 in
  let in_data_region b =
    match Layout.group_of_block lay b with
    | Some g -> b >= Layout.data_start lay g
    | None -> false
  in
  let mark b l = if in_data_region b then Hashtbl.replace labels b l in
  let iter_ptrs b f =
    match (try Some (raw b) with _ -> None) with
    | None -> ()
    | Some blk ->
        for i = 0 to lay.Layout.ptrs_per_block - 1 do
          let p = Codec.read_u32 blk (i * 4) in
          if p > 0 && p < lay.Layout.num_blocks then f p
        done
  in
  let walk_indirect depth b =
    (* depth 1: children are data; 2: children are indirect of depth 1; … *)
    let rec go depth b =
      mark b "indirect";
      if depth > 1 then iter_ptrs b (go (depth - 1))
      else iter_ptrs b (fun p -> mark p "leaf")
    in
    go depth b
  in
  (* Consecutive inode numbers share an itable block: memoize the last
     block read so the walk costs one [raw] per itable block, not one
     per inode. *)
  let last_blk = ref (-1) in
  let last_buf = ref None in
  let itable_block blk =
    if blk = !last_blk then !last_buf
    else begin
      let r = try Some (raw blk) with _ -> None in
      last_blk := blk;
      last_buf := r;
      r
    end
  in
  let leaf_label = ref "data" in
  let classify_inode ino =
    let blk, off = Layout.inode_location lay ino in
    match itable_block blk with
    | None -> ()
    | Some buf when Bytes.get buf off = '\000' -> () (* free: skip decode *)
    | Some buf ->
        let i = Inode.decode lay buf off in
        (match i.Inode.kind with
        | Inode.Free | Inode.Symlink -> ()
        | Inode.Regular | Inode.Directory ->
            leaf_label :=
              (match i.Inode.kind with
              | Inode.Directory -> "dir"
              | Inode.Regular | Inode.Free | Inode.Symlink -> "data");
            let lbl = !leaf_label in
            Array.iter (fun p -> if p > 0 then mark p lbl) i.Inode.direct;
            if i.Inode.ind > 0 then begin
              mark i.Inode.ind "indirect";
              iter_ptrs i.Inode.ind (fun p -> mark p lbl)
            end;
            if i.Inode.dind > 0 then walk_indirect 2 i.Inode.dind;
            if i.Inode.tind > 0 then walk_indirect 3 i.Inode.tind;
            if i.Inode.parity > 0 then mark i.Inode.parity "parity")
  in
  (* The "leaf" placeholder from deep indirect walks means file data. *)
  for ino = 1 to Layout.total_inodes lay do
    classify_inode ino
  done;
  Hashtbl.iter
    (fun b l -> if l = "leaf" then Hashtbl.replace labels b "data")
    labels;
  labels

(* Committed-but-not-yet-checkpointed metadata lives only in the
   journal; the oracle must see through it or freshly created structures
   would be invisible (the paper's tool understood the journal the same
   way). Returns a [home block -> journaled copy] overlay. *)
let journal_overlay raw lay =
  let overlay = Hashtbl.create 16 in
  let jstart = lay.Layout.journal_start in
  let jlimit = jstart + lay.Layout.journal_len in
  let read b = try Some (raw b) with _ -> None in
  (match read jstart with
  | None -> ()
  | Some jsb -> (
      match Jrec.decode_jsuper jsb with
      | None -> ()
      | Some js ->
          let rec scan pos seq =
            if pos < jlimit then
              match read pos with
              | None -> ()
              | Some buf -> (
                  match Jrec.decode_desc buf with
                  | Some d when d.Jrec.seq = seq -> (
                      let count = List.length d.Jrec.tags in
                      let copies =
                        List.filteri (fun i _ -> i < count)
                          (List.init count (fun i -> read (pos + 1 + i)))
                      in
                      if List.exists (fun c -> c = None) copies then ()
                      else
                        let after = pos + 1 + count in
                        let cpos =
                          match read after with
                          | Some b when Jrec.decode_revoke b <> None -> after + 1
                          | Some _ | None -> after
                        in
                        match read cpos with
                        | Some cbuf when
                            (match Jrec.decode_commit cbuf with
                            | Some c -> c.Jrec.cseq = seq
                            | None -> false) ->
                            List.iter2
                              (fun home copy ->
                                match copy with
                                | Some c -> Hashtbl.replace overlay home c
                                | None -> ())
                              d.Jrec.tags copies;
                            scan (cpos + 1) (seq + 1)
                        | Some _ | None -> ())
                  | Some _ | None -> ())
          in
          scan js.Jrec.start js.Jrec.sequence));
  overlay

let classify raw =
  let sb =
    match Sb.decode (try raw 0 with _ -> Bytes.create 8) with
    | Ok sb -> Some sb
    | Error _ -> None
  in
  match sb with
  | None ->
      (* Unreadable superblock: only the static prefix is knowable. *)
      fun b -> if b = 0 then "super" else if b = 1 then "g-desc" else "?"
  | Some sb ->
      let lay =
        Layout.compute ~block_size:sb.Sb.block_size ~num_blocks:sb.Sb.num_blocks
      in
      let overlay = journal_overlay raw lay in
      let raw' b =
        match Hashtbl.find_opt overlay b with Some c -> c | None -> raw b
      in
      let dyn = dynamic_labels raw' lay in
      (* Dynamic-metadata shadows (recorded in the rmap) present as
         replicas, wherever they were allocated. *)
      (for m = 0 to lay.Layout.rmap_blocks - 1 do
         match (try Some (raw' (lay.Layout.rmap_start + m)) with _ -> None) with
         | None -> ()
         | Some buf ->
             for i = 0 to (lay.Layout.block_size / 4) - 1 do
               let shadow = Codec.read_u32 buf (i * 4) in
               if shadow > 0 && shadow < lay.Layout.num_blocks then
                 Hashtbl.replace dyn shadow "replica"
             done
       done);
      let jend = lay.Layout.journal_start + lay.Layout.journal_len in
      fun b ->
        if b = 0 then "super"
        else if b = 1 then "g-desc"
        else if b = lay.Layout.journal_start then "j-super"
        else if b > lay.Layout.journal_start && b < jend then begin
          match (try Some (raw b) with _ -> None) with
          | None -> "j-data"
          | Some blk ->
              let m = Codec.read_u32 blk 0 in
              if m = Jrec.desc_magic then "j-desc"
              else if m = Jrec.commit_magic then "j-commit"
              else if m = Jrec.revoke_magic then "j-revoke"
              else "j-data"
        end
        else if b >= lay.Layout.cksum_start
                && b < lay.Layout.cksum_start + lay.Layout.cksum_blocks then
          "cksum"
        else if b >= lay.Layout.rlog_start
                && b < lay.Layout.rlog_start + lay.Layout.rlog_blocks then
          "replica-log"
        else if b >= lay.Layout.rmap_start
                && b < lay.Layout.rmap_start + lay.Layout.rmap_blocks then
          "rmap"
        else if b >= lay.Layout.replica_start then "replica"
        else
          match Layout.group_of_block lay b with
          | None -> "?"
          | Some g ->
              if b = Layout.super_copy_block lay g then "super"
              else if b = Layout.bitmap_block lay g then "bitmap"
              else if b = Layout.ibitmap_block lay g then "i-bitmap"
              else if b >= Layout.itable_block lay g
                      && b < Layout.itable_block lay g + lay.Layout.itable_blocks
              then "inode"
              else (
                match Hashtbl.find_opt dyn b with
                | Some l -> l
                | None -> "?")

(* Type-aware corruptions: each leaves the block structurally plausible
   but semantically wrong (§4.2 "a block similar to the expected one but
   with one or more corrupted fields"). *)
let corrupt_field ty =
  match ty with
  | "inode" ->
      (* Zero every allocated inode's link count and inflate its size:
         open should trip on the size; unlink trusts the link count. *)
      Some
        (fun buf ->
          let n = Bytes.length buf / 128 in
          for i = 0 to n - 1 do
            let off = i * 128 in
            let kind = Char.code (Bytes.get buf off) in
            if kind <> 0 then begin
              Bytes.set_uint16_le buf (off + 2) 0 (* links_count *);
              (* Only regular files get the impossible size: corrupting
                 every directory's size would mask the link-count path
                 behind earlier failures. *)
              if kind = 1 then Codec.write_u32 buf (off + 12) 0xFFFFFF0
            end
          done)
  | "dir" ->
      (* Point every entry at inode 2 (the root): in-range, allocated,
         but entirely the wrong object. *)
      Some
        (fun buf ->
          let entries = Dirent.decode buf in
          let entries' = List.map (fun (n, _) -> (n, 2)) entries in
          ignore (Dirent.encode buf entries'))
  | "bitmap" | "i-bitmap" ->
      (* All bits set: everything looks allocated; allocation sees a
         full group. *)
      Some (fun buf -> Bytes.fill buf 0 (Bytes.length buf) '\xFF')
  | "indirect" ->
      (* Out-of-range pointers. *)
      Some
        (fun buf ->
          for i = 0 to (Bytes.length buf / 4) - 1 do
            if Codec.read_u32 buf (i * 4) <> 0 then
              Codec.write_u32 buf (i * 4) 0xFFFFF0
          done)
  | "super" | "j-super" | "j-desc" | "j-commit" | "j-revoke" ->
      (* Kill the magic: a type check must notice. *)
      Some (fun buf -> Codec.write_u32 buf 0 0xDEADBEEF)
  | "g-desc" ->
      (* Scramble the descriptor table's pointers. *)
      Some
        (fun buf ->
          for i = 0 to min 63 ((Bytes.length buf / 4) - 1) do
            Codec.write_u32 buf (i * 4) 0xEEEE0
          done)
  | _ -> None
