open Iron_util
module Errno = Iron_vfs.Errno

type state = Clean | Dirty

type t = {
  block_size : int;
  num_blocks : int;
  state : state;
  mount_count : int;
  free_blocks : int;
  free_inodes : int;
  features : int;
}

let magic = 0xEF531705

let encode t buf =
  let w = Codec.writer buf in
  Codec.put_u32 w magic;
  Codec.put_u32 w t.block_size;
  Codec.put_u32 w t.num_blocks;
  Codec.put_u32 w (match t.state with Clean -> 1 | Dirty -> 2);
  Codec.put_u32 w t.mount_count;
  Codec.put_u32 w t.free_blocks;
  Codec.put_u32 w t.free_inodes;
  Codec.put_u32 w t.features

let decode buf =
  try
    let r = Codec.reader buf in
    let m = Codec.get_u32 r in
    if m <> magic then Error Errno.EUCLEAN
    else
      let block_size = Codec.get_u32 r in
      let num_blocks = Codec.get_u32 r in
      let state_raw = Codec.get_u32 r in
      let mount_count = Codec.get_u32 r in
      let free_blocks = Codec.get_u32 r in
      let free_inodes = Codec.get_u32 r in
      let features = Codec.get_u32 r in
      if block_size < 512 || block_size > 65536 || num_blocks < 8 then
        Error Errno.EUCLEAN
      else if free_blocks > num_blocks then Error Errno.EUCLEAN
      else
        let state = if state_raw = 1 then Clean else Dirty in
        Ok { block_size; num_blocks; state; mount_count; free_blocks; free_inodes; features }
  with Codec.Decode_error _ -> Error Errno.EUCLEAN

let features_of_profile (p : Profile.t) =
  (if p.Profile.meta_checksum then 1 else 0)
  lor (if p.Profile.data_checksum then 2 else 0)
  lor (if p.Profile.meta_replica then 4 else 0)
  lor (if p.Profile.data_parity then 8 else 0)
  lor if Profile.tc p then 16 else 0
