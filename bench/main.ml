(* Regenerates every table and figure in the paper's evaluation:

   fig2    - Figure 2: failure-policy matrices for ext3 / ReiserFS / JFS
   ntfs    - §5.4: the (partial) NTFS fingerprint
   table5  - Table 5: IRON technique summary across the three Linux FSes
   fig3    - Figure 3: the ixt3 failure-policy matrix
   robust  - §6.2: count of detected-and-recovered fault scenarios
   transient - §5.6: tolerance of transient (retryable) read faults
   scratch - §3.3: spatially-local faults vs copy placement
   table6  - Table 6: time overheads of the 32 ixt3 variants
   space   - §6.2: space overheads of checksums/replication/parity
   ablate-tc - beyond-paper: transactional-checksum benefit vs commit batching
   crash-states - §6.1: crash-state exploration; what Tc buys under reordering
   fuzz    - B3 workload-fuzzing campaign: throughput + peak log residency
   scrub   - §3.2: eager (scrubbing) vs lazy latent-error discovery
   obs-overhead - cost of the observability layer on a campaign (off vs on)
   snapshot-restore - executor image discipline: flat restore vs COW restore
   read-alloc - allocation per read: Dev.read vs Dev.read_into, fault-free
   micro   - Bechamel microbenchmarks of the hot primitives

   Run with no arguments for everything, or name the experiments.

   Options:
     -j N          worker domains for campaign/variant fan-out
     --repeat K    run each experiment K times (default 3) and keep the
                   median-wall-clock run's record. The per-experiment
                   memo caches are dropped before every run, so each
                   repeat times the full computation; the median throws
                   away the cold-start outlier that a single timed run
                   is hostage to. Every record also stashes its own
                   wall clock as a [bench.<experiment>.wall_ms] counter
                   so --check thresholds can gate throughput.
     --json FILE   write the run as a versioned golden-schema bench
                   artifact (Iron_report.Report, kind "bench"): one
                   record per experiment with {experiment, wall_ms,
                   jobs, workers, metrics}. [metrics] holds the counters
                   the experiment stashed (obs-overhead's campaign
                   registry, the microbench gauges), else {}. See
                   BENCH_fingerprint.json for the committed trajectory.
     --check FILE  evaluate a committed bench-thresholds artifact
                   (golden/bench-thresholds.json) against this run's
                   metrics and exit 1 on any violation — the native
                   replacement for CI's old inline assertions. *)

module Driver = Iron_core.Driver
module Render = Iron_core.Render
module Memdisk = Iron_disk.Memdisk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs

let hr title =
  Printf.printf "\n================ %s ================\n%!" title

(* Worker domains for experiments that fan out independent runs
   (campaigns, the 32 Table-6 variants); set by -j. *)
let workers = ref 1

(* Campaign jobs executed since the last checkpoint, for --json. *)
let jobs_executed = ref 0

(* Metrics snapshot collected by the last experiment that ran an
   observed campaign (obs-overhead does); reset per experiment and
   embedded in its --json record. *)
let collected_metrics : Iron_obs.Obs.snapshot ref = ref []

(* --- E1: Figure 2 ----------------------------------------------------- *)

let commodity_brands =
  [ Iron_ext3.Ext3.std; Iron_reiserfs.Reiserfs.brand; Iron_jfs.Jfs.brand ]

let reports = Hashtbl.create 8

let report_of brand =
  let name = Fs.brand_name brand in
  match Hashtbl.find_opt reports name with
  | Some r -> r
  | None ->
      let r = Driver.fingerprint ~jobs:!workers brand in
      jobs_executed := !jobs_executed + r.Driver.stats.Driver.jobs_total;
      Hashtbl.replace reports name r;
      r

let fig2 () =
  hr "Figure 2: failure policies of ext3, ReiserFS, JFS";
  List.iter
    (fun brand -> Format.printf "%a@." Render.pp_report (report_of brand))
    commodity_brands

let ntfs () =
  hr "Section 5.4: NTFS (partial model)";
  Format.printf "%a@." Render.pp_report (report_of Iron_ntfs.Ntfs.brand)

let table5 () =
  hr "Table 5: IRON techniques summary";
  let s = Render.summarize (List.map report_of commodity_brands) in
  Format.printf "%a@." Render.pp_summary s

let fig3 () =
  hr "Figure 3: ixt3 failure policy (all IRON features)";
  Format.printf "%a@." Render.pp_report (report_of Iron_ext3.Ext3.ixt3)

let robust () =
  hr "Robustness (6.2): scenarios detected and recovered";
  Format.printf "%-10s %8s %20s %22s@." "fs" "fired" "detected+recovered"
    "detected+still-served";
  List.iter
    (fun brand ->
      let r = report_of brand in
      Format.printf "%-10s %8d %20d %22d@." r.Driver.name
        (Driver.experiments_run r)
        (Driver.detected_and_recovered r)
        (Driver.detected_and_served r))
    (commodity_brands @ [ Iron_ext3.Ext3.ixt3 ]);
  Format.printf
    "(detected+recovered is the paper's bar - ixt3 clears its 'over 200';@.";
  Format.printf
    " note it counts crashing as recovery, which is how ReiserFS scores.@.";
  Format.printf
    " detected+still-served demands the workload finished: only ixt3's@.";
  Format.printf
    " redundancy absorbs failures instead of surfacing or crashing)@."

(* --- E6/E7: Table 6 and space ----------------------------------------- *)

let table6 () =
  hr "Table 6: time overheads of ixt3 variants";
  let t = Iron_workloads.Table6.compute ~jobs:!workers () in
  Format.printf "%a@." Iron_workloads.Table6.pp t

let space () =
  hr "Space overheads (6.2)";
  Format.printf "%a@." Iron_workloads.Space.pp (Iron_workloads.Space.measure ());
  Format.printf "(paper: metadata+checksums 3-10%%, parity 3-17%%)@."

(* --- transience (5.6: "retry is underutilized") ----------------------- *)

let transient () =
  hr "Transient faults (5.6): who absorbs a fault that clears on retry?";
  Format.printf
    "Read failures that succeed on the second attempt (Transient 1):@.";
  Format.printf "%-10s %8s %10s %10s@." "fs" "fired" "absorbed" "rate";
  List.iter
    (fun brand ->
      let r =
        Driver.fingerprint ~faults:[ Iron_core.Taxonomy.Read_failure ]
          ~persistence:(Fault.Transient 1) ~jobs:!workers brand
      in
      jobs_executed := !jobs_executed + r.Driver.stats.Driver.jobs_total;
      let fired = Driver.experiments_run r in
      (* Absorbed = the workload still completed despite the fault. *)
      let absorbed =
        List.fold_left
          (fun acc (m : Driver.matrix) ->
            List.fold_left
              (fun acc row ->
                List.fold_left
                  (fun acc col ->
                    let c = m.Driver.cell row col in
                    if c.Driver.fired > 0 && c.Driver.note = "ok" then acc + 1
                    else acc)
                  acc m.Driver.cols)
              acc m.Driver.rows)
          0 r.Driver.matrices
      in
      Format.printf "%-10s %8d %10d %9.0f%%@." r.Driver.name fired absorbed
        (100.0 *. float_of_int absorbed /. float_of_int (max 1 fired)))
    (commodity_brands @ [ Iron_ntfs.Ntfs.brand; Iron_ext3.Ext3.ixt3 ]);
  Format.printf
    "(the paper: most file systems assume a single temporarily-inaccessible@.";
  Format.printf
    " block is fatal; NTFS, the persistent one, retries through it)@."

(* --- spatial locality (2.3.2 / 3.3): the scratch experiment ----------- *)

let scratch () =
  hr "Spatial locality (3.3): a media scratch across the metadata head";
  Format.printf
    "A scratch of growing width lands on the superblock area; can the@.";
  Format.printf "volume still be mounted and its files read?@.@.";
  let brands =
    [
      ("ext3", Iron_ext3.Ext3.std);
      ("reiserfs", Iron_reiserfs.Reiserfs.brand);
      ("jfs", Iron_jfs.Jfs.brand);
      ("ixt3", Iron_ext3.Ext3.ixt3);
    ]
  in
  Format.printf "%-10s" "width";
  List.iter (fun (n, _) -> Format.printf " %9s" n) brands;
  Format.printf "@.";
  List.iter
    (fun width ->
      Format.printf "%-10d" width;
      List.iter
        (fun (_, brand) ->
          let disk =
            Memdisk.create
              ~params:
                { Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 13 }
              ()
          in
          Memdisk.set_time_model disk false;
          let inj = Fault.create (Memdisk.dev disk) in
          let dev = Fault.dev inj in
          let survived =
            match Fs.mkfs brand dev with
            | Error _ -> false
            | Ok () -> (
                match Fs.mount brand dev with
                | Error _ -> false
                | Ok (Fs.Boxed ((module F), t) as boxed) -> (
                    (match Iron_core.Workload.put boxed "/f" "scratchproof" with
                    | Ok () -> ()
                    | Error _ -> ());
                    (match F.unmount t with Ok () | Error _ -> ());
                    (* The scratch: [0, width) unreadable. *)
                    ignore
                      (Fault.arm inj
                         (Fault.rule (Fault.Range (0, width - 1)) Fault.Fail_read));
                    match Fs.mount brand dev with
                    | Error _ -> false
                    | Ok boxed2 -> (
                        match Iron_core.Workload.get boxed2 "/f" with
                        | Ok s -> String.equal s "scratchproof"
                        | Error _ -> false)))
          in
          Format.printf " %9s" (if survived then "ok" else "DEAD"))
        brands;
      Format.printf "@.")
    [ 1; 2; 3; 4; 8; 16 ];
  Format.printf
    "@.(JFS keeps its copies adjacent to the primaries, so a small scratch@.";
  Format.printf
    " takes out both; ixt3's copies live at the far end of the disk)@."

(* --- E8: transactional-checksum ablation ------------------------------ *)

let ablate_tc () =
  hr "Ablation: Tc benefit vs commit batching (TPC-B)";
  Format.printf "%-8s %12s %12s %9s@." "batch" "ext3-like ms" "with Tc ms" "speedup";
  List.iter
    (fun batch ->
      let app = Iron_workloads.Apps.tpcb_batched batch in
      let t brand =
        match Iron_workloads.Runner.run brand app with
        | Ok r -> r.Iron_workloads.Runner.elapsed_ms
        | Error _ -> nan
      in
      let base = t (Iron_ixt3.Ixt3.brand ()) in
      let tc = t (Iron_ixt3.Ixt3.brand ~tc:true ()) in
      Format.printf "%-8d %12.1f %12.1f %8.2fx@." batch base tc (base /. tc))
    [ 1; 2; 4; 8; 16 ];
  Format.printf
    "(the ordering stall Tc removes is per-commit, so batching commits@.";
  Format.printf " shrinks its benefit - the crossover the design implies)@."

(* --- E9: scrubbing ----------------------------------------------------- *)

let scrub () =
  hr "Scrubbing (3.2): eager vs lazy latent-error discovery";
  let disk =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 11 }
      ()
  in
  Memdisk.set_time_model disk false;
  let inj = Fault.create (Memdisk.dev disk) in
  let dev = Fault.dev inj in
  let brand = Iron_ixt3.Ixt3.full in
  (match Fs.mkfs brand dev with Ok () -> () | Error _ -> failwith "mkfs");
  let (Fs.Boxed ((module F), t)) =
    match Fs.mount brand dev with Ok b -> b | Error _ -> failwith "mount"
  in
  (match Iron_core.Workload.fixture (Fs.Boxed ((module F), t)) with
  | Ok () -> ()
  | Error _ -> failwith "fixture");
  (match F.unmount t with Ok () -> () | Error _ -> failwith "unmount");
  (* Inject ten latent sector errors across live blocks plus a silent
     corruption. *)
  let classify = Iron_ext3.Classifier.classify (Memdisk.peek disk) in
  let live =
    List.filter
      (fun b -> List.mem (classify b) [ "data"; "dir"; "indirect"; "inode" ])
      (List.init 2048 Fun.id)
  in
  let rng = Iron_util.Prng.create 99 in
  (* One latent error per block class (a parity group tolerates one
     failure per file, §6.1), modelled as sector errors that clear when
     the scrubber rewrites them from redundancy. *)
  let victims =
    List.filter_map
      (fun label ->
        List.find_opt (fun b -> classify b = label) live)
      [ "inode"; "dir"; "indirect"; "data" ]
  in
  List.iter
    (fun b ->
      ignore
        (Fault.arm inj
           (Fault.rule ~persistence:Fault.Until_write (Fault.Block b)
              Fault.Fail_read)))
    victims;
  let corrupted = List.nth live (Iron_util.Prng.int rng (List.length live)) in
  let buf = Memdisk.peek disk corrupted in
  Bytes.set buf 100 'X';
  Memdisk.poke disk corrupted buf;
  Printf.printf "injected %d latent sector errors + 1 silent corruption\n"
    (List.length victims);
  (* Lazy: mount and read every file; count what gets noticed. *)
  (match Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev with
  | Ok r -> Format.printf "eager: %a@." Iron_ixt3.Scrub.pp_report r
  | Error e -> Format.printf "eager scrub failed: %a@." Iron_vfs.Errno.pp e);
  (* After the scrub repaired from redundancy, a second pass is clean. *)
  (match Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev with
  | Ok r -> Format.printf "second pass: %a@." Iron_ixt3.Scrub.pp_report r
  | Error e -> Format.printf "second scrub failed: %a@." Iron_vfs.Errno.pp e)

(* --- observability overhead -------------------------------------------- *)

let obs_overhead () =
  hr "Observability overhead: one campaign, obs off vs on";
  let brand = Iron_ext3.Ext3.std in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let off, t_off = timed (fun () -> Driver.fingerprint ~jobs:!workers brand) in
  let on, t_on =
    timed (fun () -> Driver.fingerprint ~jobs:!workers ~observe:true brand)
  in
  jobs_executed :=
    !jobs_executed + off.Driver.stats.Driver.jobs_total
    + on.Driver.stats.Driver.jobs_total;
  (* The instrumentation must not change the result: same matrices. *)
  let render r = Format.asprintf "%a" Render.pp_report r in
  Printf.printf "matrices identical with obs on: %s\n"
    (if String.equal (render off) (render on) then "yes" else "NO");
  (match on.Driver.observed with
  | Some o ->
      collected_metrics := o.Driver.metrics;
      Printf.printf "observed: %d metric paths, %d spans\n"
        (List.length o.Driver.metrics)
        (List.length o.Driver.spans)
  | None -> ());
  Printf.printf "obs off: %.3fs\nobs on:  %.3fs\noverhead: %+.1f%%\n" t_off t_on
    (100.0 *. (t_on -. t_off) /. t_off)

(* --- executor hot-path microbenchmarks --------------------------------- *)

(* The two primitives the COW overhaul targets, measured directly:
   restore-per-job cost and allocation-per-read. Results are stashed in
   [collected_metrics] as counters so --json records them alongside the
   campaign trajectory. *)

let stash name v =
  collected_metrics :=
    !collected_metrics @ [ (name, Iron_obs.Obs.Counter v) ]

module Cow = Iron_disk.Cow

let bench_params seed =
  { Memdisk.default_params with Memdisk.num_blocks = 2048; seed }

let snapshot_restore () =
  hr "Executor image discipline: flat restore vs COW restore";
  Printf.printf
    "One fingerprinting job = restore the 8 MiB base image, dirty a few\n\
     dozen blocks, repeat. Flat restore blits the whole image; COW\n\
     restore drops the overlay (O(dirty)).\n\n";
  let cycles = 2000 and dirty = 24 in
  let block = Bytes.make 4096 'd' in
  let run name restore write =
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for c = 1 to cycles do
      restore ();
      for i = 1 to dirty do
        write ((c + (i * 67)) mod 2048)
      done
    done;
    let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int cycles in
    let bytes = (Gc.allocated_bytes () -. a0) /. float_of_int cycles in
    Printf.printf "%-6s %10.1f us/cycle %12.0f alloc bytes/cycle\n" name us
      bytes;
    stash ("bench.snapshot_restore." ^ name ^ ".us_per_cycle")
      (int_of_float us);
    stash ("bench.snapshot_restore." ^ name ^ ".bytes_per_cycle")
      (int_of_float bytes);
    us
  in
  (* Shared base image: some pre-existing content, as after mkfs. *)
  let flat = Memdisk.create ~params:(bench_params 5) () in
  Memdisk.set_time_model flat false;
  for b = 0 to 255 do
    Memdisk.poke flat b (Bytes.make 4096 (Char.chr (b land 0xff)))
  done;
  let img = Memdisk.snapshot flat in
  let fdev = Memdisk.dev flat in
  let flat_us =
    run "flat"
      (fun () -> Memdisk.restore flat img)
      (fun b -> ignore (fdev.Iron_disk.Dev.write b block))
  in
  let cow = Cow.create ~params:(bench_params 5) () in
  Cow.set_time_model cow false;
  Cow.restore cow img;
  let cdev = Cow.dev cow in
  let cow_us =
    run "cow"
      (fun () -> Cow.restore cow img)
      (fun b -> ignore (cdev.Iron_disk.Dev.write b block))
  in
  stash "bench.snapshot_restore.cow_speedup_x"
    (int_of_float (flat_us /. cow_us));
  Printf.printf "\ncow restore speedup over flat: %.1fx\n" (flat_us /. cow_us)

let read_alloc () =
  hr "Per-read allocation on the fault-free path";
  Printf.printf
    "The executor's device stack (COW disk under the fault injector),\n\
     fault-free: [read] allocates a fresh block per call, [read_into]\n\
     fills the caller's buffer.\n\n";
  let n = 50_000 in
  let cow = Cow.create ~params:(bench_params 6) () in
  Cow.set_time_model cow false;
  let inj = Fault.create (Cow.dev cow) in
  Fault.set_tracing inj false;
  let dev = Fault.dev inj in
  let buf = Bytes.create dev.Iron_disk.Dev.block_size in
  let run name f =
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    for i = 0 to n - 1 do
      f (i land 2047)
    done;
    let per = (Gc.allocated_bytes () -. a0) /. float_of_int n in
    Printf.printf "%-10s %10.1f alloc bytes/read\n" name per;
    stash ("bench.read_alloc." ^ name ^ ".bytes_per_read") (int_of_float per);
    per
  in
  let r = run "read" (fun b -> ignore (dev.Iron_disk.Dev.read b)) in
  let ri =
    run "read_into" (fun b -> ignore (dev.Iron_disk.Dev.read_into b buf))
  in
  Printf.printf "\nread_into allocates %.0f bytes/read (read: %.0f)\n" ri r

(* --- crash-state exploration (6.1) ------------------------------------ *)

let crash_states () =
  hr "Crash states (6.1): what the transactional checksum buys";
  Printf.printf
    "Enumerate the disk states a power cut could leave behind (any\n\
     subset of each sync-delimited reorder window, torn writes, a\n\
     write-back cache that lies about sync) and check each one.\n\n";
  Format.printf "%-8s %8s %8s %12s %12s %8s %8s@." "fs" "states" "log"
    "violations" "data-loss" "fsck" "Tc-det";
  List.iter
    (fun brand ->
      let t0 = Unix.gettimeofday () in
      let r = Iron_crash.Explore.explore ~jobs:!workers brand in
      let dt = Unix.gettimeofday () -. t0 in
      let open Iron_crash.Explore in
      Format.printf "%-8s %8d %8d %12d %12d %8d %8d  (%.1fs)@." r.fs r.states
        r.log_len (List.length r.violations) (count r Data_loss)
        (count r Fsck_unclean) r.tc_detected dt;
      stash ("bench.crash_states." ^ r.fs ^ ".states") r.states;
      stash ("bench.crash_states." ^ r.fs ^ ".violations")
        (List.length r.violations);
      stash ("bench.crash_states." ^ r.fs ^ ".tc_detected") r.tc_detected)
    [ Iron_ext3.Ext3.std; Iron_ext3.Ext3.ixt3 ];
  Printf.printf
    "\n\
     (ext3 syncs the journal payload, then writes the commit block: a\n\
     cache that reorders across that sync makes replay trust a commit\n\
     whose payload never landed. ixt3's transactional checksum spots\n\
     the mismatch and refuses the transaction - zero violations.)\n"

(* --- workload fuzzing -------------------------------------------------- *)

(* Seq-1 campaign throughput over the §6.1 pair, plus the peak write-log
   residency the Wlog.take ownership discipline is meant to bound: a
   campaign records thousands of workloads through short-lived
   recorders, and must never hold more than one workload's payload per
   job. *)
let fuzz_throughput () =
  hr "Workload fuzzing (B3): campaign throughput and residency";
  Printf.printf
    "A seq-1 campaign per file system: states/sec across enumeration,\n\
     cross-workload dedup and checking; peak bytes a single recorded\n\
     write log retained.\n\n";
  Format.printf "%-8s %9s %8s %8s %11s %11s %10s@." "fs" "workloads" "raw"
    "unique" "violations" "states/s" "peak-log";
  List.iter
    (fun brand ->
      let t0 = Unix.gettimeofday () in
      let r = Iron_fuzz.Fuzz.campaign ~jobs:!workers ~seq:1 brand in
      let dt = Unix.gettimeofday () -. t0 in
      let open Iron_fuzz.Fuzz in
      let rate = int_of_float (float r.fz_states_raw /. Float.max dt 0.001) in
      Format.printf "%-8s %9d %8d %8d %11d %11d %9dB  (%.1fs)@." r.fz_fs
        r.fz_workloads r.fz_states_raw r.fz_states r.fz_violations rate
        r.fz_peak_bytes dt;
      stash ("bench.fuzz." ^ r.fz_fs ^ ".states_per_sec") rate;
      stash ("bench.fuzz." ^ r.fz_fs ^ ".peak_log_bytes") r.fz_peak_bytes;
      stash ("bench.fuzz." ^ r.fz_fs ^ ".violations") r.fz_violations)
    [ Iron_ext3.Ext3.std; Iron_ext3.Ext3.ixt3 ]

(* --- multi-tenant traffic ---------------------------------------------- *)

(* The traffic campaign over the §6.1 pair. Simulated-time throughput
   and latency quantiles are deterministic (exact bench metrics, with
   floors and ceilings in bench-thresholds.json); wall clock rides
   along under the usual tolerance. *)
let traffic () =
  hr "Multi-tenant traffic: load plus per-tenant blast radius";
  Printf.printf
    "1000 simulated clients over 4 tenants against one sparse 1 GiB\n\
     volume, then the blast-radius crash campaign: whose durable data\n\
     does a crash state lose, and whose write is to blame.\n\n";
  Format.printf "%-8s %6s %10s %9s %9s %11s %9s %8s@." "fs" "ops" "ops/sim-s"
    "p50-us" "p99-us" "violations" "cross" "Tc-det";
  List.iter
    (fun brand ->
      let t0 = Unix.gettimeofday () in
      let r =
        Iron_traffic.Traffic.run ~jobs:!workers Iron_traffic.Traffic.default
          brand
      in
      let dt = Unix.gettimeofday () -. t0 in
      let open Iron_traffic.Traffic in
      Format.printf "%-8s %6d %10d %9d %9d %11d %9d %8d  (%.1fs)@." r.r_fs
        r.r_ops r.r_ops_per_sim_sec r.r_p50_us r.r_p99_us r.r_viol r.r_cross
        r.r_tc dt;
      stash ("bench.traffic." ^ r.r_fs ^ ".ops") r.r_ops;
      stash ("bench.traffic." ^ r.r_fs ^ ".ops_per_sim_sec") r.r_ops_per_sim_sec;
      stash ("bench.traffic." ^ r.r_fs ^ ".p50_us") r.r_p50_us;
      stash ("bench.traffic." ^ r.r_fs ^ ".p99_us") r.r_p99_us;
      stash ("bench.traffic." ^ r.r_fs ^ ".violations") r.r_viol;
      stash ("bench.traffic." ^ r.r_fs ^ ".cross_tenant") r.r_cross;
      stash ("bench.traffic." ^ r.r_fs ^ ".tc_detected") r.r_tc;
      stash ("bench.traffic." ^ r.r_fs ^ ".blocks_touched") r.r_blocks_touched)
    [ Iron_ext3.Ext3.std; Iron_ext3.Ext3.ixt3 ];
  Printf.printf
    "\n\
     (Same traffic, same crashes: ext3's shared journal spreads one\n\
     tenant's torn commit into other tenants' durable files; ixt3's\n\
     transactional checksum refuses the transaction instead.)\n"

(* --- causal forensics overhead ----------------------------------------- *)

let forensics_overhead () =
  hr "Causal forensics: what violation attribution costs";
  Printf.printf
    "The same ext3 exploration, without and with the forensics pass\n\
     (greedy culprit minimization: one O(dirty) re-materialize and\n\
     re-check per probe).\n\n";
  let run forensics =
    let t0 = Unix.gettimeofday () in
    let r = Iron_crash.Explore.explore ~jobs:!workers ~forensics Iron_ext3.Ext3.std in
    (r, Unix.gettimeofday () -. t0)
  in
  let base, t_off = run false in
  let full, t_on = run true in
  let open Iron_crash.Explore in
  let probes = List.fold_left (fun n c -> n + c.ch_probes) 0 full.chains in
  let culprits =
    List.fold_left (fun n c -> n + List.length c.ch_culprits) 0 full.chains
  in
  Printf.printf "explore:            %.2fs (%d states, %d violations)\n" t_off
    base.states
    (List.length base.violations);
  Printf.printf "explore+forensics:  %.2fs (%d chains, %d probes, %d culprits)\n"
    t_on
    (List.length full.chains)
    probes culprits;
  Printf.printf "overhead: %+.1f%%\n" (100.0 *. (t_on -. t_off) /. t_off);
  stash "bench.forensics.states" full.states;
  stash "bench.forensics.chains" (List.length full.chains);
  stash "bench.forensics.probes" probes;
  stash "bench.forensics.culprits" culprits;
  stash "bench.forensics.overhead_pct"
    (int_of_float (100.0 *. (t_on -. t_off) /. Float.max t_off 0.001))

(* --- microbenchmarks --------------------------------------------------- *)

let micro () =
  hr "Bechamel microbenchmarks";
  let open Bechamel in
  let block = Bytes.make 4096 'x' in
  let sha1 = Test.make ~name:"sha1-4k" (Staged.stage (fun () -> Iron_util.Sha1.digest block)) in
  let crc = Test.make ~name:"crc32-4k" (Staged.stage (fun () -> Iron_util.Crc32.digest block)) in
  let fs_cycle =
    Test.make ~name:"mkfs+mount+creat+sync"
      (Staged.stage (fun () ->
           let d =
             Memdisk.create
               ~params:{ Memdisk.default_params with Memdisk.num_blocks = 512; seed = 3 }
               ()
           in
           Memdisk.set_time_model d false;
           let dev = Memdisk.dev d in
           ignore (Fs.mkfs Iron_ext3.Ext3.std dev);
           match Fs.mount Iron_ext3.Ext3.std dev with
           | Ok (Fs.Boxed ((module F), t)) ->
               (match F.creat t "/x" with
               | Ok fd ->
                   ignore (F.write t fd ~off:0 (Bytes.make 100 'y'));
                   ignore (F.close t fd)
               | Error _ -> ());
               ignore (F.sync t)
           | Error _ -> ()))
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"iron" [ sha1; crc; fs_cycle ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "%-28s %12.1f ns/run\n" name est
      | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
    results

(* --- driver ------------------------------------------------------------ *)

let all_experiments =
  [
    ("fig2", fig2);
    ("ntfs", ntfs);
    ("table5", table5);
    ("fig3", fig3);
    ("robust", robust);
    ("transient", transient);
    ("scratch", scratch);
    ("table6", table6);
    ("space", space);
    ("ablate-tc", ablate_tc);
    ("crash-states", crash_states);
    ("fuzz", fuzz_throughput);
    ("traffic", traffic);
    ("forensics-overhead", forensics_overhead);
    ("scrub", scrub);
    ("obs-overhead", obs_overhead);
    ("snapshot-restore", snapshot_restore);
    ("read-alloc", read_alloc);
    ("micro", micro);
  ]

(* --- options + JSON perf records --------------------------------------- *)

type record = {
  experiment : string;
  wall_s : float;
  jobs : int;  (** campaign jobs executed during the experiment *)
  rec_workers : int;
  metrics : Iron_obs.Obs.snapshot;
      (** observed-campaign counters, when the experiment ran one *)
}

(* Counters only: histograms carry bucket arrays that would swamp the
   perf-trajectory file; the full registry is what --metrics (on the
   iron CLI) is for. *)
let counter_metrics snap =
  List.filter_map
    (function
      | p, Iron_obs.Obs.Counter n -> Some (p, n)
      | _, (Iron_obs.Obs.Gauge _ | Iron_obs.Obs.Histogram _) -> None)
    snap

module Report = Iron_report.Report

let bench_artifact records =
  Report.bench_of_records
    (List.map
       (fun r ->
         {
           Report.experiment = r.experiment;
           wall_ms = int_of_float (r.wall_s *. 1000.);
           b_jobs = r.jobs;
           b_workers = r.rec_workers;
           metrics = counter_metrics r.metrics;
         })
       records)

let write_json file records =
  Report.save file (bench_artifact records);
  Printf.eprintf "wrote %d bench record%s to %s (schema v%d)\n%!"
    (List.length records)
    (if List.length records = 1 then "" else "s")
    file Report.schema_version

(* --check FILE: the native replacement for CI's inline assertions.
   Loads a committed bench-thresholds artifact and evaluates every rule
   against the union of this run's stashed metrics. *)
let check_thresholds file records =
  match Report.load file with
  | Error e ->
      Printf.eprintf "bench --check: %s\n" e;
      exit 2
  | Ok (Report.Thresholds th) -> (
      match bench_artifact records with
      | Report.Bench b -> (
          match Report.check_thresholds th b with
          | [] ->
              Printf.printf "thresholds: all %d rule%s from %s hold\n"
                (List.length th.Report.rules)
                (if List.length th.Report.rules = 1 then "" else "s")
                file
          | items ->
              Format.printf "threshold violations (%d):@.%a"
                (List.length items) Report.pp_items items;
              exit 1)
      | _ -> assert false)
  | Ok art ->
      Printf.eprintf
        "bench --check: %s is a %s artifact, expected bench-thresholds\n" file
        (Report.kind_name art);
      exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_file = ref None in
  let check_file = ref None in
  let repeat = ref 3 in
  let rec parse names = function
    | [] -> List.rev names
    | ("-j" | "--jobs") :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> workers := j
        | Some _ | None ->
            Printf.eprintf "-j expects a positive integer, got %s\n" n;
            exit 2);
        parse names rest
    | "--repeat" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> repeat := k
        | Some _ | None ->
            Printf.eprintf "--repeat expects a positive integer, got %s\n" n;
            exit 2);
        parse names rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse names rest
    | "--check" :: file :: rest ->
        check_file := Some file;
        parse names rest
    | ("-j" | "--jobs" | "--repeat" | "--json" | "--check") :: [] ->
        Printf.eprintf "missing argument\n";
        exit 2
    | n :: rest -> parse (n :: names) rest
  in
  let names = parse [] args in
  let chosen =
    match names with
    | [] -> all_experiments
    | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt n all_experiments with
            | Some f -> Some (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s (have: %s)\n" n
                  (String.concat ", " (List.map fst all_experiments));
                None)
          names
  in
  let records =
    List.map
      (fun (name, f) ->
        let one () =
          (* Drop the cross-experiment fingerprint memo so every repeat
             times the full computation, not a cache hit. *)
          Hashtbl.reset reports;
          jobs_executed := 0;
          collected_metrics := [];
          let t0 = Unix.gettimeofday () in
          f ();
          let wall_s = Unix.gettimeofday () -. t0 in
          {
            experiment = name;
            wall_s;
            jobs = !jobs_executed;
            rec_workers = !workers;
            metrics = !collected_metrics;
          }
        in
        let runs =
          List.init !repeat (fun i ->
              let r = one () in
              if !repeat > 1 then
                Printf.eprintf "  [%s] repeat %d/%d: %.0f ms\n%!" name (i + 1)
                  !repeat (r.wall_s *. 1000.);
              r)
        in
        let sorted =
          List.sort (fun a b -> compare a.wall_s b.wall_s) runs
        in
        let median = List.nth sorted ((List.length sorted - 1) / 2) in
        {
          median with
          metrics =
            median.metrics
            @ [
                ( Printf.sprintf "bench.%s.wall_ms" name,
                  Iron_obs.Obs.Counter (int_of_float (median.wall_s *. 1000.))
                );
              ];
        })
      chosen
  in
  (match !json_file with
  | Some file -> write_json file records
  | None -> ());
  match !check_file with
  | Some file -> check_thresholds file records
  | None -> ()
