(* Tests for the VFS support layer: paths, the generic resolver, fd
   tables and the kernel log. *)

module Path = Iron_vfs.Path
module Resolver = Iron_vfs.Resolver
module Fdtable = Iron_vfs.Fdtable
module Klog = Iron_vfs.Klog
module Errno = Iron_vfs.Errno
module Fs = Iron_vfs.Fs

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Path --------------------------------------------------------------- *)

let test_split () =
  check Alcotest.(list string) "basic" [ "a"; "b"; "c" ] (Path.split "/a/b/c");
  check Alcotest.(list string) "doubled slashes" [ "a"; "c" ] (Path.split "/a//c");
  check Alcotest.(list string) "root" [] (Path.split "/");
  check Alcotest.(list string) "relative" [ "x"; "y" ] (Path.split "x/y");
  check Alcotest.(list string) "trailing slash" [ "a" ] (Path.split "/a/")

let test_dirname_basename () =
  let t = Alcotest.(pair string string) in
  check t "absolute" ("/a/b", "c") (Path.dirname_basename "/a/b/c");
  check t "top level" ("/", "x") (Path.dirname_basename "/x");
  check t "relative single" (".", "x") (Path.dirname_basename "x");
  check t "relative nested" ("a/b", "c") (Path.dirname_basename "a/b/c");
  check t "root" ("/", "") (Path.dirname_basename "/")

let test_validate_component () =
  check Alcotest.bool "ok name" true (Path.validate_component "file.txt" = Ok ());
  check Alcotest.bool "empty" true
    (Path.validate_component "" = Error Errno.ENOENT);
  check Alcotest.bool "too long" true
    (Path.validate_component (String.make 300 'a') = Error Errno.ENAMETOOLONG);
  check Alcotest.bool "slash" true
    (Path.validate_component "a/b" = Error Errno.EINVAL);
  check Alcotest.bool "NUL" true
    (Path.validate_component "a\000b" = Error Errno.EINVAL)

let prop_join_split =
  QCheck.Test.make ~name:"join then split recovers components" ~count:200
    QCheck.(small_list (string_gen_of_size (Gen.int_range 1 10) (Gen.char_range 'a' 'z')))
    (fun parts ->
      let path = List.fold_left Path.join "/" parts in
      Path.split path = parts)

(* --- Resolver ------------------------------------------------------------ *)

(* A toy object store: 1=/ 2=/dir 3=/dir/file 4=/link->/dir/file
   5=/dir/sub 6=/abs-loop->/abs-loop *)
let toy =
  {
    Resolver.lookup =
      (fun dir name ->
        match (dir, name) with
        | 1, "dir" -> Ok 2
        | 1, "link" -> Ok 4
        | 1, "loop" -> Ok 6
        | 2, "file" -> Ok 3
        | 2, "sub" -> Ok 5
        | 5, "up" -> Ok 2
        | _ -> Error Errno.ENOENT);
    kind_of =
      (fun o ->
        match o with
        | 1 | 2 | 5 -> Ok Fs.Directory
        | 3 -> Ok Fs.Regular
        | 4 | 6 -> Ok Fs.Symlink
        | _ -> Error Errno.EIO);
    readlink_of =
      (fun o ->
        match o with
        | 4 -> Ok "/dir/file"
        | 6 -> Ok "/loop"
        | _ -> Error Errno.EINVAL);
  }

let resolve ?follow_last p = Resolver.resolve toy ~root:1 ~cwd:2 ?follow_last p

let test_resolver_basics () =
  check Alcotest.int "absolute" 3 (Result.get_ok (resolve "/dir/file"));
  check Alcotest.int "relative from cwd" 3 (Result.get_ok (resolve "file"));
  check Alcotest.int "root" 1 (Result.get_ok (resolve "/"));
  check Alcotest.int "nested" 5 (Result.get_ok (resolve "/dir/sub"))

let test_resolver_symlinks () =
  check Alcotest.int "followed" 3 (Result.get_ok (resolve "/link"));
  check Alcotest.int "not followed" 4
    (Result.get_ok (resolve ~follow_last:false "/link"));
  check Alcotest.bool "loop detected" true (resolve "/loop" = Error Errno.ELOOP)

let test_resolver_enotdir () =
  check Alcotest.bool "file as dir" true
    (resolve "/dir/file/deeper" = Error Errno.ENOTDIR)

let test_resolve_parent () =
  let rp p = Resolver.resolve_parent toy ~root:1 ~cwd:2 p in
  check Alcotest.bool "parent of /dir/file" true (rp "/dir/file" = Ok (2, "file"));
  check Alcotest.bool "parent of new name" true (rp "/dir/new" = Ok (2, "new"));
  check Alcotest.bool "relative" true (rp "sub/up" = Ok (5, "up"));
  check Alcotest.bool "root has no parent entry" true (rp "/" = Error Errno.EINVAL)

(* --- Fdtable -------------------------------------------------------------- *)

let test_fdtable () =
  let t = Fdtable.create () in
  let fd1 = Fdtable.alloc t "one" in
  let fd2 = Fdtable.alloc t "two" in
  check Alcotest.bool "distinct" true (fd1 <> fd2);
  check Alcotest.bool "find" true (Fdtable.find t fd1 = Ok "one");
  check Alcotest.bool "close" true (Fdtable.close t fd1 = Ok ());
  check Alcotest.bool "EBADF after close" true (Fdtable.find t fd1 = Error Errno.EBADF);
  check Alcotest.bool "double close" true (Fdtable.close t fd1 = Error Errno.EBADF);
  check Alcotest.bool "other survives" true (Fdtable.find t fd2 = Ok "two")

let prop_fdtable_unique =
  QCheck.Test.make ~name:"fd allocation never reuses live fds" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let t = Fdtable.create () in
      let fds = List.init n (fun i -> Fdtable.alloc t i) in
      List.length (List.sort_uniq compare fds) = n)

(* --- Klog ------------------------------------------------------------------ *)

let test_klog_capture () =
  let k = Klog.create () in
  Klog.info k "fs" "mounted %d" 1;
  Klog.warn k "fs" "odd thing";
  Klog.error k "fs" "bad thing %s" "happened";
  let es = Klog.entries k in
  check Alcotest.int "three entries" 3 (List.length es);
  check Alcotest.string "formatted" "mounted 1" (List.hd es).Klog.message;
  check Alcotest.int "errors filtered" 1 (List.length (Klog.errors k));
  Klog.clear k;
  check Alcotest.int "cleared" 0 (List.length (Klog.entries k))

let test_klog_panic_raises_and_logs () =
  let k = Klog.create () in
  (try
     let (_ : unit) = Klog.panic k "fs" "going down: %d" 42 in
     Alcotest.fail "must raise"
   with Klog.Panic msg ->
     check Alcotest.string "message" "fs: going down: 42" msg);
  check Alcotest.int "logged before raising" 1 (List.length (Klog.errors k))

let suites =
  [
    ( "vfs.path",
      [
        Alcotest.test_case "split" `Quick test_split;
        Alcotest.test_case "dirname/basename" `Quick test_dirname_basename;
        Alcotest.test_case "validate component" `Quick test_validate_component;
        qtest prop_join_split;
      ] );
    ( "vfs.resolver",
      [
        Alcotest.test_case "basics" `Quick test_resolver_basics;
        Alcotest.test_case "symlinks" `Quick test_resolver_symlinks;
        Alcotest.test_case "ENOTDIR" `Quick test_resolver_enotdir;
        Alcotest.test_case "resolve parent" `Quick test_resolve_parent;
      ] );
    ( "vfs.fdtable",
      [
        Alcotest.test_case "lifecycle" `Quick test_fdtable;
        qtest prop_fdtable_unique;
      ] );
    ( "vfs.klog",
      [
        Alcotest.test_case "capture" `Quick test_klog_capture;
        Alcotest.test_case "panic" `Quick test_klog_panic_raises_and_logs;
      ] );
  ]
