test/test_util.ml: Alcotest Array Bytes Char Codec Crc32 Format Fun Hexdump Iron_util List Prng QCheck QCheck_alcotest Sha1 String
