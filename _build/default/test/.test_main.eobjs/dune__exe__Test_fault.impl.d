test/test_fault.ml: Alcotest Bytes Char Dev Fault Iron_disk Iron_fault List Memdisk
