test/test_vfs.ml: Alcotest Gen Iron_vfs List QCheck QCheck_alcotest Result String
