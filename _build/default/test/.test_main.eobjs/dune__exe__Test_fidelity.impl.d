test/test_fidelity.ml: Alcotest Hashtbl Iron_core Iron_ext3 Iron_jfs Iron_ntfs Iron_reiserfs Iron_vfs List Printf String
