test/test_disk.ml: Alcotest Bcache Bytes Char Dev Hashtbl Iron_disk Iron_fault List Memdisk QCheck QCheck_alcotest
