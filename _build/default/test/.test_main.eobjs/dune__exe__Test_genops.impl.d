test/test_genops.ml: Alcotest Bytes Char Iron_disk Iron_ext3 Iron_jfs Iron_ntfs Iron_reiserfs Iron_vfs List Memdisk Printf String
