test/test_reiserfs.ml: Alcotest Array Bytes Fun Iron_disk Iron_fault Iron_reiserfs Iron_util Iron_vfs List Memdisk Printf QCheck QCheck_alcotest String
