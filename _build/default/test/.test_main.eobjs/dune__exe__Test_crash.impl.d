test/test_crash.ml: Alcotest Bytes Iron_disk Iron_ext3 Iron_fault Iron_jfs Iron_reiserfs Iron_vfs List Memdisk Printf QCheck QCheck_alcotest Random String
