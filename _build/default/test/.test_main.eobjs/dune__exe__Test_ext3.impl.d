test/test_ext3.ml: Alcotest Bytes Char Fun Hashtbl Iron_disk Iron_ext3 Iron_fault Iron_vfs List Memdisk Option Printf QCheck QCheck_alcotest String
