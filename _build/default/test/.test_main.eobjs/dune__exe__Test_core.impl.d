test/test_core.ml: Alcotest Char Format Iron_core Iron_disk Iron_ext3 Iron_jfs Iron_ntfs Iron_reiserfs Iron_vfs List String
