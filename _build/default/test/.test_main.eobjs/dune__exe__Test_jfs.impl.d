test/test_jfs.ml: Alcotest Bytes Fun Iron_disk Iron_fault Iron_jfs Iron_util Iron_vfs List Memdisk String
