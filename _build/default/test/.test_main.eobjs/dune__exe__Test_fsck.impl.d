test/test_fsck.ml: Alcotest Bytes Fun Iron_disk Iron_ext3 Iron_ixt3 Iron_vfs List Memdisk String
