test/test_workloads.ml: Alcotest Iron_ext3 Iron_ixt3 Iron_vfs Iron_workloads List
