test/test_ixt3.ml: Alcotest Bytes Char Fun Iron_disk Iron_ext3 Iron_fault Iron_ixt3 Iron_vfs List Memdisk Option String
