test/test_ntfs.ml: Alcotest Bytes Fun Iron_disk Iron_fault Iron_ntfs Iron_util Iron_vfs List Memdisk
