test/test_differential.ml: Bytes Char Hashtbl Iron_disk Iron_fault Iron_ixt3 Iron_util Iron_vfs List Memdisk Printf QCheck QCheck_alcotest Random String
