test/test_codecs.ml: Alcotest Bytes Fun Gen Iron_ext3 Iron_util Iron_vfs List Printf QCheck QCheck_alcotest String
