(* ixt3 robustness tests (paper §6): each IRON feature absorbing the
   fault class it was built for, plus the scrubber. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let secret = String.init 24000 (fun i -> Char.chr (32 + (i mod 95)))

let fresh brand =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 61 }
      ()
  in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  ok (Fs.mkfs brand dev);
  (d, inj, dev, ok (Fs.mount brand dev))

let mkfile (Fs.Boxed ((module F), t)) path content =
  let fd = ok (F.creat t path) in
  ignore (ok (F.write t fd ~off:0 (Bytes.of_string content)));
  ok (F.close t fd)

let readfile (Fs.Boxed ((module F), t)) path =
  let fd = ok (F.open_ t path Fs.Rd) in
  let st = ok (F.stat t path) in
  let data = ok (F.read t fd ~off:0 ~len:st.Fs.st_size) in
  ok (F.close t fd);
  Bytes.to_string data

let seeded brand =
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/precious" secret;
  ok (F.mkdir t "/dir");
  mkfile fs "/dir/inner" "inner";
  ok (F.unmount t);
  (d, inj, dev)

let blocks_labeled d label =
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  List.filter (fun b -> cls b = label) (List.init 2048 Fun.id)

let remount_and_read brand dev path =
  let (Fs.Boxed ((module F), t) as fs) = ok (Fs.mount brand dev) in
  let data = readfile fs path in
  ignore (F.klog t);
  (data, Fs.Boxed ((module F), t))

(* --- Mr: metadata replication ----------------------------------------- *)

let test_mr_recovers_itable_read_failure () =
  let brand = Iron_ixt3.Ixt3.brand ~mr:true () in
  let d, inj, dev = seeded brand in
  List.iter
    (fun b -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read)))
    (blocks_labeled d "inode");
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "intact via replica" secret data

let test_mr_recovers_dynamic_dir_block () =
  let brand = Iron_ixt3.Ixt3.brand ~mr:true () in
  let d, inj, dev = seeded brand in
  List.iter
    (fun b -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read)))
    (blocks_labeled d "dir");
  let data, _ = remount_and_read brand dev "/dir/inner" in
  check Alcotest.string "dir recovered from shadow" "inner" data

let test_mr_recovers_indirect_block () =
  let brand = Iron_ixt3.Ixt3.brand ~mr:true () in
  let d, inj, dev = seeded brand in
  List.iter
    (fun b -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read)))
    (blocks_labeled d "indirect");
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "indirect recovered" secret data

let test_without_mr_metadata_failure_is_fatal () =
  let brand = Iron_ixt3.Ixt3.brand () in
  let d, inj, dev = seeded brand in
  List.iter
    (fun b -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read)))
    (blocks_labeled d "inode");
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
  match F.stat t "/precious" with
  | Ok _ -> Alcotest.fail "no replica: the failure must surface"
  | Error _ -> ()

(* --- Dp: parity -------------------------------------------------------- *)

let test_dp_reconstructs_lost_data_block () =
  let brand = Iron_ixt3.Ixt3.brand ~dp:true () in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read))
  | [] -> Alcotest.fail "no data blocks");
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "reconstructed from parity" secret data

let test_dp_single_failure_per_file_limit () =
  (* One parity block per file: two lost blocks in the same file are
     beyond the design (§6.1 "recover from at most one data-block
     failure in each file"). *)
  let brand = Iron_ixt3.Ixt3.brand ~dp:true () in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b1 :: b2 :: _ ->
      ignore (Fault.arm inj (Fault.rule (Fault.Block b1) Fault.Fail_read));
      ignore (Fault.arm inj (Fault.rule (Fault.Block b2) Fault.Fail_read))
  | _ -> Alcotest.fail "need two data blocks");
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
  let fd = ok (F.open_ t "/precious" Fs.Rd) in
  match F.read t fd ~off:0 ~len:(String.length secret) with
  | Error Errno.EIO -> ()
  | Ok _ -> Alcotest.fail "two failures in one parity group cannot be recovered"
  | Error e -> Alcotest.failf "expected EIO, got %s" (Errno.to_string e)

(* --- Dc: data checksums ------------------------------------------------ *)

let test_dc_detects_silent_corruption () =
  let brand = Iron_ixt3.Ixt3.brand ~dc:true () in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ ->
      ignore
        (Fault.arm inj (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Noise 3))))
  | [] -> Alcotest.fail "no data blocks");
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
  let fd = ok (F.open_ t "/precious" Fs.Rd) in
  (match F.read t fd ~off:0 ~len:(String.length secret) with
  | Error Errno.EIO -> () (* detected, no parity to recover with *)
  | Ok _ -> Alcotest.fail "corruption must not pass silently"
  | Error e -> Alcotest.failf "expected EIO, got %s" (Errno.to_string e));
  let logs = Klog.entries (F.klog t) in
  check Alcotest.bool "mismatch logged" true
    (List.exists
       (fun e ->
         let m = String.lowercase_ascii e.Klog.message in
         let rec find i =
           i + 8 <= String.length m && (String.sub m i 8 = "checksum" || find (i + 1))
         in
         find 0)
       logs)

let test_dc_dp_detect_and_repair_corruption () =
  let brand = Iron_ixt3.Ixt3.brand ~dc:true ~dp:true () in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ ->
      ignore
        (Fault.arm inj (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Bit_flip 77))))
  | [] -> Alcotest.fail "no data blocks");
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "bit rot detected and repaired" secret data

let test_without_dc_corruption_is_silent () =
  let brand = Iron_ixt3.Ixt3.brand () in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ ->
      ignore
        (Fault.arm inj (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Noise 5))))
  | [] -> Alcotest.fail "no data blocks");
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.bool "garbage returned without checksums" false
    (String.equal data secret)

(* --- Mc: metadata checksums ------------------------------------------- *)

let test_mc_mr_recover_corrupt_inode_block () =
  let brand = Iron_ixt3.Ixt3.brand ~mc:true ~mr:true () in
  let d, inj, dev = seeded brand in
  let tweak = Option.get (Iron_ext3.Classifier.corrupt_field "inode") in
  List.iter
    (fun b ->
      ignore
        (Fault.arm inj (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Tweak tweak)))))
    (blocks_labeled d "inode");
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "plausible-but-wrong inode caught by checksum" secret data

(* --- Tc: transactional checksums --------------------------------------- *)

let test_tc_rejects_corrupt_journal_payload () =
  let brand = Iron_ixt3.Ixt3.brand ~tc:true () in
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ignore inj;
  mkfile fs "/committed" "safe";
  let fd = ok (F.open_ t "/committed" Fs.Rd) in
  ok (F.fsync t fd);
  mkfile fs "/in-journal" "poisoned";
  let fd2 = ok (F.open_ t "/in-journal" Fs.Rd) in
  ok (F.fsync t fd2);
  (* Crash; corrupt one journaled copy of the second transaction. Only
     blocks actually written to the log qualify (unused journal space
     also presents as j-data). *)
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  let written b =
    let buf = Memdisk.peek d b in
    let rec nonzero i = i < Bytes.length buf && (Bytes.get buf i <> '\000' || nonzero (i + 1)) in
    nonzero 0
  in
  let jdata =
    List.filter (fun b -> cls b = "j-data" && written b) (List.init 200 Fun.id)
  in
  (match List.rev jdata with
  | last :: _ ->
      let buf = Memdisk.peek d last in
      Bytes.set buf 17 '\xFF';
      Memdisk.poke d last buf
  | [] -> Alcotest.fail "no journaled data");
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  let logs = Klog.entries (F2.klog t2) in
  check Alcotest.bool "transactional checksum caught it" true
    (List.exists
       (fun e ->
         let m = String.lowercase_ascii e.Klog.message in
         let rec find i =
           i + 13 <= String.length m
           && (String.sub m i 13 = "transactional" || find (i + 1))
         in
         find 0)
       logs)

let test_without_tc_corrupt_journal_replays_silently () =
  let brand = Iron_ixt3.Ixt3.brand () in
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/x" "x";
  let fd = ok (F.open_ t "/x" Fs.Rd) in
  ok (F.fsync t fd);
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  let jdata = List.filter (fun b -> cls b = "j-data") (List.init 200 Fun.id) in
  (match jdata with
  | b :: _ ->
      let buf = Memdisk.peek d b in
      Bytes.set buf 40 '\xEE';
      Memdisk.poke d b buf
  | [] -> Alcotest.fail "no journaled data");
  match Fs.mount brand dev with
  | Ok (Fs.Boxed ((module F2), t2)) ->
      let logs = Klog.entries (F2.klog t2) in
      check Alcotest.bool "replayed without complaint" false
        (List.exists (fun e -> e.Klog.level = Klog.Error) logs)
  | Error _ -> Alcotest.fail "replay is blind without Tc; mount proceeds"

(* --- super copies ------------------------------------------------------ *)

let test_super_recovered_from_copies () =
  let brand = Iron_ixt3.Ixt3.brand ~mr:true () in
  let d, inj, dev = seeded brand in
  ignore d;
  ignore (Fault.arm inj (Fault.rule (Fault.Block 0) Fault.Fail_read));
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
  ignore (F.klog t);
  let fs = Fs.Boxed ((module F), t) in
  check Alcotest.string "mounted via copy, data fine" secret (readfile fs "/precious")

(* --- all features, all fault classes ----------------------------------- *)

let test_full_ixt3_survives_everything_at_once () =
  let brand = Iron_ixt3.Ixt3.full in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read))
  | [] -> ());
  (match blocks_labeled d "inode" with
  | b :: _ -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read))
  | [] -> ());
  (match blocks_labeled d "dir" with
  | b :: _ ->
      ignore
        (Fault.arm inj (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Noise 9))))
  | [] -> ());
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "all at once" secret data

(* --- Rm: remap-on-write-failure (extension, RRemap of 3.3) ------------- *)

let test_rm_relocates_failed_write () =
  let brand = Iron_ixt3.Ixt3.brand ~rm:true () in
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/moveme" (String.make 9000 'm');
  ok (F.sync t);
  (* The file's first data block becomes unwritable (reads still work,
     as with a worn sector that only rejects writes). *)
  let b = List.hd (blocks_labeled d "data") in
  ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_write));
  let fd = ok (F.open_ t "/moveme" Fs.Rdwr) in
  let n = ok (F.write t fd ~off:0 (Bytes.of_string "RELOCATED")) in
  check Alcotest.int "write succeeds via remap" 9 n;
  ok (F.close t fd);
  check Alcotest.bool "not read-only" false (F.is_readonly t);
  ok (F.sync t);
  ok (F.unmount t);
  (* After remount the data comes from the new location. *)
  let (Fs.Boxed ((module F2), t2) as fs2) = ok (Fs.mount brand dev) in
  ignore (F2.klog t2);
  let s = readfile fs2 "/moveme" in
  check Alcotest.string "new contents" "RELOCATED" (String.sub s 0 9);
  check Alcotest.string "rest intact" (String.make 100 'm') (String.sub s 9 100);
  (* And the event is in the log for the fingerprinting engine. *)
  let logs = Klog.entries (F.klog t) in
  check Alcotest.bool "remap logged" true
    (List.exists
       (fun e ->
         let m = String.lowercase_ascii e.Klog.message in
         let rec find i =
           i + 8 <= String.length m && (String.sub m i 8 = "remapped" || find (i + 1))
         in
         find 0)
       logs)

let test_without_rm_write_failure_aborts () =
  let brand = Iron_ixt3.Ixt3.brand () in
  let d, inj, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/stuck" (String.make 9000 's');
  ok (F.sync t);
  let b = List.hd (blocks_labeled d "data") in
  ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_write));
  let fd = ok (F.open_ t "/stuck" Fs.Rdwr) in
  (match F.write t fd ~off:0 (Bytes.of_string "X") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "without Rm the write failure must surface");
  check Alcotest.bool "aborted read-only" true (F.is_readonly t)

let test_rm_fsck_clean_after_remap () =
  let brand = Iron_ixt3.Ixt3.brand ~rm:true () in
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/fm" (String.make 5000 'f');
  ok (F.sync t);
  let b = List.hd (blocks_labeled d "data") in
  ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_write));
  let fd = ok (F.open_ t "/fm" Fs.Rdwr) in
  ignore (ok (F.write t fd ~off:0 (Bytes.of_string "Y")));
  ok (F.close t fd);
  ok (F.unmount t);
  Fault.disarm_all inj;
  let r = ok (Iron_ext3.Fsck.run dev) in
  check Alcotest.bool "volume consistent after remap" true r.Iron_ext3.Fsck.clean;
  check Alcotest.int "no leaks either" 0 (List.length r.Iron_ext3.Fsck.findings)

(* --- scrubbing ---------------------------------------------------------- *)

let test_scrub_clean_volume () =
  let brand = Iron_ixt3.Ixt3.full in
  let _, _, dev = seeded brand in
  let r = ok (Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev) in
  check Alcotest.int "no latent errors" 0 r.Iron_ixt3.Scrub.latent_errors;
  check Alcotest.int "no corruption" 0 r.Iron_ixt3.Scrub.corrupt;
  check Alcotest.int "nothing unrecoverable" 0 r.Iron_ixt3.Scrub.unrecoverable

let test_scrub_finds_and_repairs_latent_error () =
  let brand = Iron_ixt3.Ixt3.full in
  let d, inj, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ ->
      ignore
        (Fault.arm inj
           (Fault.rule ~persistence:Fault.Until_write (Fault.Block b) Fault.Fail_read))
  | [] -> Alcotest.fail "no data blocks");
  let r = ok (Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev) in
  check Alcotest.int "one latent error" 1 r.Iron_ixt3.Scrub.latent_errors;
  check Alcotest.bool "repaired" true (r.Iron_ixt3.Scrub.repaired >= 1);
  check Alcotest.int "none unrecoverable" 0 r.Iron_ixt3.Scrub.unrecoverable;
  (* The repaired volume reads back perfectly. *)
  let data, _ = remount_and_read brand dev "/precious" in
  check Alcotest.string "post-repair content" secret data

let test_scrub_finds_silent_corruption () =
  let brand = Iron_ixt3.Ixt3.full in
  let d, _, dev = seeded brand in
  (match blocks_labeled d "data" with
  | b :: _ ->
      let buf = Memdisk.peek d b in
      Bytes.set buf 123 '\x7F';
      Memdisk.poke d b buf
  | [] -> Alcotest.fail "no data blocks");
  let r = ok (Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev) in
  check Alcotest.bool "corruption found eagerly" true (r.Iron_ixt3.Scrub.corrupt >= 1);
  check Alcotest.int "repaired from parity" 0 r.Iron_ixt3.Scrub.unrecoverable

(* --- feature matrix sanity -------------------------------------------- *)

let test_all_32_variants_mount_and_work () =
  List.iter
    (fun (profile, brand) ->
      let _, _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
      mkfile fs "/v" "variant";
      let got = readfile fs "/v" in
      if not (String.equal got "variant") then
        Alcotest.failf "variant %s broken"
          (Iron_ext3.Profile.variant_label profile);
      ok (F.unmount t))
    Iron_ixt3.Ixt3.all_variants

let suites =
  [
    ( "ixt3.replication",
      [
        Alcotest.test_case "Mr recovers inode-table read failure" `Quick
          test_mr_recovers_itable_read_failure;
        Alcotest.test_case "Mr recovers directory block" `Quick
          test_mr_recovers_dynamic_dir_block;
        Alcotest.test_case "Mr recovers indirect block" `Quick
          test_mr_recovers_indirect_block;
        Alcotest.test_case "without Mr it is fatal" `Quick
          test_without_mr_metadata_failure_is_fatal;
        Alcotest.test_case "super recovered from copies" `Quick
          test_super_recovered_from_copies;
      ] );
    ( "ixt3.parity",
      [
        Alcotest.test_case "Dp reconstructs lost block" `Quick
          test_dp_reconstructs_lost_data_block;
        Alcotest.test_case "one failure per file limit" `Quick
          test_dp_single_failure_per_file_limit;
      ] );
    ( "ixt3.checksums",
      [
        Alcotest.test_case "Dc detects silent corruption" `Quick
          test_dc_detects_silent_corruption;
        Alcotest.test_case "Dc+Dp detect and repair" `Quick
          test_dc_dp_detect_and_repair_corruption;
        Alcotest.test_case "without Dc corruption is silent" `Quick
          test_without_dc_corruption_is_silent;
        Alcotest.test_case "Mc+Mr recover corrupt inode block" `Quick
          test_mc_mr_recover_corrupt_inode_block;
      ] );
    ( "ixt3.txn-checksums",
      [
        Alcotest.test_case "Tc rejects corrupt journal payload" `Quick
          test_tc_rejects_corrupt_journal_payload;
        Alcotest.test_case "without Tc replay is blind" `Quick
          test_without_tc_corrupt_journal_replays_silently;
      ] );
    ( "ixt3.combined",
      [
        Alcotest.test_case "full ixt3 survives everything" `Quick
          test_full_ixt3_survives_everything_at_once;
        Alcotest.test_case "all 32 variants work" `Quick
          test_all_32_variants_mount_and_work;
      ] );
    ( "ixt3.remap",
      [
        Alcotest.test_case "Rm relocates failed write" `Quick
          test_rm_relocates_failed_write;
        Alcotest.test_case "without Rm the abort stands" `Quick
          test_without_rm_write_failure_aborts;
        Alcotest.test_case "fsck clean after remap" `Quick
          test_rm_fsck_clean_after_remap;
      ] );
    ( "ixt3.scrub",
      [
        Alcotest.test_case "clean volume" `Quick test_scrub_clean_volume;
        Alcotest.test_case "finds and repairs latent error" `Quick
          test_scrub_finds_and_repairs_latent_error;
        Alcotest.test_case "finds silent corruption" `Quick
          test_scrub_finds_silent_corruption;
      ] );
  ]
