(* Tests for the offline checker/repairer (RRepair, §3.3). *)

open Iron_disk
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Fsck = Iron_ext3.Fsck
module Layout = Iron_ext3.Layout
module Inode = Iron_ext3.Inode

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let built () =
  let d = Memdisk.create () in
  Memdisk.set_time_model d false;
  let dev = Memdisk.dev d in
  ok (Fs.mkfs Iron_ext3.Ext3.std dev);
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount Iron_ext3.Ext3.std dev) in
  let fd = ok (F.creat t "/file") in
  ignore (ok (F.write t fd ~off:0 (Bytes.make 20000 'f')));
  ok (F.close t fd);
  ok (F.mkdir t "/dir");
  let fd = ok (F.creat t "/dir/nested") in
  ignore (ok (F.write t fd ~off:0 (Bytes.of_string "n")));
  ok (F.close t fd);
  ok (F.unmount t);
  (d, dev)

let test_clean_volume_is_clean () =
  let _, dev = built () in
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "clean" true r.Fsck.clean;
  check Alcotest.int "no findings" 0 (List.length r.Fsck.findings)

let test_detects_and_repairs_leak () =
  let d, dev = built () in
  let lay = Iron_ext3.Ext3.layout_of_dev dev in
  let bb = Layout.bitmap_block lay 2 in
  let buf = Memdisk.peek d bb in
  Bytes.set buf 0 '\x0F' (* four stray bits *);
  Memdisk.poke d bb buf;
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "still 'clean' (leaks are warnings)" true r.Fsck.clean;
  check Alcotest.int "four leaks found" 4 (List.length r.Fsck.findings);
  let r = ok (Fsck.run ~repair:true dev) in
  check Alcotest.bool "repaired" true
    (List.for_all (fun f -> f.Fsck.repaired) r.Fsck.findings);
  let r = ok (Fsck.run dev) in
  check Alcotest.int "clean after repair" 0 (List.length r.Fsck.findings)

let test_detects_missing_allocation () =
  let d, dev = built () in
  let lay = Iron_ext3.Ext3.layout_of_dev dev in
  (* Clear the whole group-0 bitmap: every used block becomes an error. *)
  let bb = Layout.bitmap_block lay 0 in
  Memdisk.poke d bb (Bytes.make 4096 '\000');
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "not clean" false r.Fsck.clean;
  let r = ok (Fsck.run ~repair:true dev) in
  ignore r;
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "clean after repair" true r.Fsck.clean

let test_detects_dangling_dirent () =
  let d, dev = built () in
  (* Kill /dir/nested's inode behind the directory's back. *)
  let lay = Iron_ext3.Ext3.layout_of_dev dev in
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  let itable = List.filter (fun b -> cls b = "inode") (List.init 2048 Fun.id) in
  let victim_block = List.hd itable in
  let buf = Memdisk.peek d victim_block in
  (* Find the nested file's slot: the last allocated non-directory. *)
  let last_file = ref (-1) in
  for slot = 0 to (4096 / 128) - 1 do
    let i = Inode.decode lay buf (slot * 128) in
    if i.Inode.kind = Inode.Regular then last_file := slot
  done;
  check Alcotest.bool "found a file slot" true (!last_file >= 0);
  Inode.encode lay (Inode.empty lay) buf (!last_file * 128);
  Memdisk.poke d victim_block buf;
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "dangling entry reported" true
    (List.exists
       (fun f ->
         let m = f.Fsck.message in
         let rec find i =
           i + 4 <= String.length m && (String.sub m i 4 = "dead" || find (i + 1))
         in
         find 0)
       r.Fsck.findings)

let test_detects_wrong_linkcount () =
  let d, dev = built () in
  let lay = Iron_ext3.Ext3.layout_of_dev dev in
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  let itable = List.hd (List.filter (fun b -> cls b = "inode") (List.init 2048 Fun.id)) in
  let buf = Memdisk.peek d itable in
  let fixed = ref false in
  for slot = 0 to (4096 / 128) - 1 do
    let i = Inode.decode lay buf (slot * 128) in
    if i.Inode.kind = Inode.Regular && not !fixed then begin
      Inode.encode lay { i with Inode.links = 9 } buf (slot * 128);
      fixed := true
    end
  done;
  Memdisk.poke d itable buf;
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "link count error" false r.Fsck.clean;
  let _ = ok (Fsck.run ~repair:true dev) in
  let r = ok (Fsck.run dev) in
  check Alcotest.bool "clean after repair" true r.Fsck.clean

let test_works_on_ixt3_volumes () =
  let d = Memdisk.create () in
  Memdisk.set_time_model d false;
  let dev = Memdisk.dev d in
  ok (Fs.mkfs Iron_ixt3.Ixt3.full dev);
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount Iron_ixt3.Ixt3.full dev) in
  let fd = ok (F.creat t "/p") in
  ignore (ok (F.write t fd ~off:0 (Bytes.make 9000 'p')));
  ok (F.close t fd);
  ok (F.unmount t);
  let r = ok (Fsck.run dev) in
  (* Parity blocks are reachable through the inode, so an ixt3 volume
     checks clean too. *)
  check Alcotest.bool "ixt3 volume clean" true r.Fsck.clean;
  check Alcotest.int "no findings" 0 (List.length r.Fsck.findings)

let suites =
  [
    ( "ext3.fsck",
      [
        Alcotest.test_case "clean volume" `Quick test_clean_volume_is_clean;
        Alcotest.test_case "leak detect+repair" `Quick test_detects_and_repairs_leak;
        Alcotest.test_case "missing allocation" `Quick test_detects_missing_allocation;
        Alcotest.test_case "dangling directory entry" `Quick test_detects_dangling_dirent;
        Alcotest.test_case "wrong link count" `Quick test_detects_wrong_linkcount;
        Alcotest.test_case "ixt3 volumes" `Quick test_works_on_ixt3_volumes;
      ] );
  ]
