(* NTFS-specific tests: the persistence (retry) policy and the strong
   magic-based sanity checking of §5.4. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let brand = Iron_ntfs.Ntfs.brand

let fresh () =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 51 }
      ()
  in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  ok (Fs.mkfs brand dev);
  (d, inj, dev, ok (Fs.mount brand dev))

let mkfile (Fs.Boxed ((module F), t)) path content =
  let fd = ok (F.creat t path) in
  ignore (ok (F.write t fd ~off:0 (Bytes.of_string content)));
  ok (F.close t fd)

let failed_ops inj dir =
  List.filter
    (fun (e : Fault.event) ->
      e.Fault.dir = dir
      && match e.Fault.outcome with Fault.Io_error _ -> true | _ -> false)
    (Fault.trace inj)

let test_reads_retried_seven_times () =
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/persist" "p";
  ok (F.unmount t);
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  Fault.clear_trace inj;
  (* Fail the first MFT block. *)
  ignore (Fault.arm inj (Fault.rule (Fault.Block 35) Fault.Fail_read));
  (match F2.stat t2 "/persist" with
  | Error Errno.EIO -> ()
  | Ok _ -> Alcotest.fail "expected EIO"
  | Error e -> Alcotest.failf "expected EIO, got %s" (Errno.to_string e));
  let fails = failed_ops inj Fault.Read in
  check Alcotest.int "seven read attempts" 7
    (List.length (List.filter (fun (e : Fault.event) -> e.Fault.block = 35) fails));
  ignore d

let test_data_writes_retried_three_times () =
  let d, inj, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/w" "seed data here";
  ok (F.sync t);
  let cls = Iron_ntfs.Ntfs.classify (Memdisk.peek d) in
  let data = List.find (fun b -> cls b = "data") (List.init 2048 Fun.id) in
  Fault.clear_trace inj;
  ignore (Fault.arm inj (Fault.rule (Fault.Block data) Fault.Fail_write));
  let fd = ok (F.open_ t "/w" Fs.Rdwr) in
  (* Error recorded but not used (DZero for data): the write "succeeds". *)
  (match F.write t fd ~off:0 (Bytes.of_string "clobber") with
  | Ok 7 -> ()
  | Ok n -> Alcotest.failf "odd length %d" n
  | Error e -> Alcotest.failf "data write error should be swallowed: %s"
                 (Errno.to_string e));
  let fails =
    List.filter (fun (e : Fault.event) -> e.Fault.block = data)
      (failed_ops inj Fault.Write)
  in
  check Alcotest.int "three write attempts" 3 (List.length fails)

let test_corrupt_boot_unmountable () =
  let d, _, dev, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.unmount t);
  let buf = Memdisk.peek d 0 in
  Iron_util.Codec.write_u32 buf 0 0;
  Memdisk.poke d 0 buf;
  match Fs.mount brand dev with
  | Ok _ -> Alcotest.fail "volume must be unmountable"
  | Error e -> check Alcotest.bool "EUCLEAN" true (e = Errno.EUCLEAN)

let test_mft_magic_checked () =
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/m" "m";
  ok (F.unmount t);
  (* Zap the magic of every record in the first MFT block. *)
  let buf = Memdisk.peek d 35 in
  for slot = 0 to 3 do
    Iron_util.Codec.write_u32 buf (slot * 1024) 0xBAD
  done;
  Memdisk.poke d 35 buf;
  (* The volume refuses to mount: strong sanity on metadata. *)
  match Fs.mount brand dev with
  | Ok _ -> Alcotest.fail "corrupt MFT must be caught"
  | Error e -> check Alcotest.bool "EUCLEAN" true (e = Errno.EUCLEAN)

let test_index_magic_checked () =
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/i" "i";
  ok (F.unmount t);
  let cls = Iron_ntfs.Ntfs.classify (Memdisk.peek d) in
  let dirb = List.find (fun b -> cls b = "dir") (List.init 2048 Fun.id) in
  let buf = Memdisk.peek d dirb in
  Iron_util.Codec.write_u32 buf 0 0xBAD;
  Memdisk.poke d dirb buf;
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  match F2.stat t2 "/i" with
  | Error Errno.EUCLEAN -> ()
  | Ok _ -> Alcotest.fail "corrupt index must be caught"
  | Error e -> Alcotest.failf "expected EUCLEAN, got %s" (Errno.to_string e)

let test_missed_pointer_check () =
  (* §5.4: "a corrupted block pointer can point to important system
     structures and hence corrupt them when the block pointed to is
     updated". Point a file's first cluster at the volume bitmap and
     write through it. *)
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/trap" "clean";
  ok (F.unmount t);
  (* /trap is record 3 (slot 2 of the first MFT block); repoint its
     first cluster at the volume bitmap. The root record stays sane so
     the path walk reaches the trap. *)
  let buf = Memdisk.peek d 35 in
  Iron_util.Codec.write_u32 buf ((2 * 1024) + 28) 2;
  Memdisk.poke d 35 buf;
  let before = Memdisk.peek d 2 (* volume bitmap *) in
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  let fd = ok (F2.open_ t2 "/trap" Fs.Rdwr) in
  (match F2.write t2 fd ~off:0 (Bytes.of_string "scribble") with
  | Ok _ -> ()
  | Error _ -> ());
  let after = Memdisk.peek d 2 in
  check Alcotest.bool "system structure silently overwritten" false
    (Bytes.equal before after)

let test_transient_fault_absorbed_by_retry () =
  (* The payoff of persistence: a fault that clears within seven
     attempts is invisible to the application. *)
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/flaky" "still here";
  ok (F.unmount t);
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  ignore
    (Fault.arm inj
       (Fault.rule ~persistence:(Fault.Transient 3) (Fault.Block 35) Fault.Fail_read));
  let st = ok (F2.stat t2 "/flaky") in
  check Alcotest.int "survived transient fault" 10 st.Fs.st_size;
  ignore d

let suites =
  [
    ( "ntfs.policy",
      [
        Alcotest.test_case "reads retried seven times" `Quick
          test_reads_retried_seven_times;
        Alcotest.test_case "data writes retried three times" `Quick
          test_data_writes_retried_three_times;
        Alcotest.test_case "corrupt boot unmountable" `Quick test_corrupt_boot_unmountable;
        Alcotest.test_case "MFT magic checked" `Quick test_mft_magic_checked;
        Alcotest.test_case "index magic checked" `Quick test_index_magic_checked;
        Alcotest.test_case "missed pointer check" `Quick test_missed_pointer_check;
        Alcotest.test_case "transient fault absorbed" `Quick
          test_transient_fault_absorbed_by_retry;
      ] );
  ]
