(* Generic VFS conformance suite: one set of behavioural tests applied
   to every file-system model (ext3, ReiserFS, JFS, NTFS, ixt3). Each
   implementation has its own on-disk format, journaling scheme and
   failure policy, but the POSIX-visible semantics must agree. *)

open Iron_disk
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno

let check = Alcotest.check
let errno = Alcotest.testable Errno.pp Errno.equal

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> check errno "errno" expected e

let fresh brand =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 21 }
      ()
  in
  Memdisk.set_time_model d false;
  let dev = Memdisk.dev d in
  ok (Fs.mkfs brand dev);
  (d, dev, ok (Fs.mount brand dev))

let mkfile (Fs.Boxed ((module F), t)) path content =
  let fd = ok (F.creat t path) in
  let n = ok (F.write t fd ~off:0 (Bytes.of_string content)) in
  check Alcotest.int "write length" (String.length content) n;
  ok (F.close t fd)

let readfile (Fs.Boxed ((module F), t)) path =
  let fd = ok (F.open_ t path Fs.Rd) in
  let st = ok (F.stat t path) in
  let data = ok (F.read t fd ~off:0 ~len:st.Fs.st_size) in
  ok (F.close t fd);
  Bytes.to_string data

let pattern tag n = String.init n (fun i -> Char.chr ((i + tag) mod 251))

(* Every test takes the brand so the suite can be instantiated per FS. *)

let t_roundtrip brand () =
  let _, _, fs = fresh brand in
  mkfile fs "/a.txt" "alpha beta";
  check Alcotest.string "roundtrip" "alpha beta" (readfile fs "/a.txt")

let t_overwrite brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/o" (pattern 1 9000);
  let fd = ok (F.open_ t "/o" Fs.Rdwr) in
  ignore (ok (F.write t fd ~off:4090 (Bytes.of_string "BRIDGE")));
  ok (F.close t fd);
  let s = readfile fs "/o" in
  check Alcotest.string "spans blocks" "BRIDGE" (String.sub s 4090 6);
  check Alcotest.int "size unchanged" 9000 (String.length s)

let t_grow_with_offset_write brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/g" "123";
  let fd = ok (F.open_ t "/g" Fs.Wr) in
  ignore (ok (F.write t fd ~off:3 (Bytes.of_string "456")));
  ok (F.close t fd);
  check Alcotest.string "appended" "123456" (readfile fs "/g")

let t_multiblock_file brand () =
  let _, _, fs = fresh brand in
  let content = pattern 7 (30 * 4096) in
  mkfile fs "/blocks" content;
  check Alcotest.string "content preserved"
    (String.sub content 60000 2000)
    (String.sub (readfile fs "/blocks") 60000 2000)

let t_dirs brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ok (F.mkdir t "/x");
  ok (F.mkdir t "/x/y");
  mkfile fs "/x/y/z" "nested";
  check Alcotest.string "nested read" "nested" (readfile fs "/x/y/z");
  let names = List.map fst (ok (F.getdirentries t "/x")) in
  check Alcotest.bool "y listed" true (List.mem "y" names)

let t_dot_entries brand () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh brand in
  ok (F.mkdir t "/dotty");
  let entries = ok (F.getdirentries t "/dotty") in
  check Alcotest.bool "." true (List.mem_assoc "." entries);
  check Alcotest.bool ".." true (List.mem_assoc ".." entries)

let t_unlink_frees brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/die" (pattern 3 20000);
  ok (F.unlink t "/die");
  expect_err Errno.ENOENT (F.stat t "/die");
  (* The name is reusable. *)
  mkfile fs "/die" "reborn";
  check Alcotest.string "recreated" "reborn" (readfile fs "/die")

let t_link_semantics brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/one" "shared";
  ok (F.link t "/one" "/two");
  check Alcotest.int "two links" 2 (ok (F.stat t "/one")).Fs.st_links;
  ok (F.unlink t "/one");
  check Alcotest.string "data survives" "shared" (readfile fs "/two")

let t_rename_moves brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ok (F.mkdir t "/from");
  ok (F.mkdir t "/to");
  mkfile fs "/from/f" "cargo";
  ok (F.rename t "/from/f" "/to/f2");
  expect_err Errno.ENOENT (F.stat t "/from/f");
  check Alcotest.string "moved" "cargo" (readfile fs "/to/f2")

let t_rmdir_semantics brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ok (F.mkdir t "/rd");
  mkfile fs "/rd/block" "x";
  expect_err Errno.ENOTEMPTY (F.rmdir t "/rd");
  ok (F.unlink t "/rd/block");
  ok (F.rmdir t "/rd")

let t_symlinks brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/real" "solid";
  ok (F.symlink t "/real" "/soft");
  check Alcotest.string "target" "/real" (ok (F.readlink t "/soft"));
  check Alcotest.string "followed" "solid" (readfile fs "/soft");
  check Alcotest.bool "lstat kind" true
    ((ok (F.lstat t "/soft")).Fs.st_kind = Fs.Symlink);
  check Alcotest.bool "stat follows" true
    ((ok (F.stat t "/soft")).Fs.st_kind = Fs.Regular)

let t_symlink_loop brand () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh brand in
  ok (F.symlink t "/b" "/a");
  ok (F.symlink t "/a" "/b");
  expect_err Errno.ELOOP (F.stat t "/a")

let t_truncate brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/tr" (pattern 9 12000);
  ok (F.truncate t "/tr" 5);
  check Alcotest.int "size" 5 (ok (F.stat t "/tr")).Fs.st_size;
  check Alcotest.string "prefix" (String.sub (pattern 9 12000) 0 5) (readfile fs "/tr")

let t_attrs brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/at" "a";
  ok (F.chmod t "/at" 0o751);
  ok (F.utimes t "/at" 11.0 22.0);
  let st = ok (F.stat t "/at") in
  check Alcotest.int "mode" 0o751 st.Fs.st_mode;
  check Alcotest.(float 0.01) "mtime" 22.0 st.Fs.st_mtime

let t_chdir brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ok (F.mkdir t "/workdir");
  ok (F.chdir t "/workdir");
  mkfile fs "relative" "cwd file";
  check Alcotest.string "visible absolutely" "cwd file" (readfile fs "/workdir/relative")

let t_statfs_decreases brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  let before = (ok (F.statfs t)).Fs.f_bfree in
  mkfile fs "/consume" (pattern 5 40000);
  let after = (ok (F.statfs t)).Fs.f_bfree in
  check Alcotest.bool "free space decreased" true (after < before)

let t_enoent_paths brand () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh brand in
  expect_err Errno.ENOENT (F.stat t "/ghost");
  expect_err Errno.ENOENT (F.open_ t "/ghost" Fs.Rd);
  expect_err Errno.ENOENT (F.unlink t "/ghost");
  expect_err Errno.ENOENT (F.stat t "/ghost/deeper")

let t_eexist brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/dup" "1";
  expect_err Errno.EEXIST (F.creat t "/dup");
  ok (F.mkdir t "/dupdir");
  expect_err Errno.EEXIST (F.mkdir t "/dupdir")

let t_ebadf brand () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh brand in
  expect_err Errno.EBADF (F.read t 4242 ~off:0 ~len:1);
  expect_err Errno.EBADF (F.close t 4242)

let t_read_only_fd brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/ro" "keep";
  let fd = ok (F.open_ t "/ro" Fs.Rd) in
  expect_err Errno.EBADF (F.write t fd ~off:0 (Bytes.of_string "nope"))

let t_fsync_and_sync brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/s" "durable";
  let fd = ok (F.open_ t "/s" Fs.Rd) in
  ok (F.fsync t fd);
  ok (F.close t fd);
  ok (F.sync t)

let t_remount_persistence brand () =
  let _, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ok (F.mkdir t "/keepdir");
  mkfile fs "/keepdir/f" (pattern 11 6000);
  ok (F.unmount t);
  let (Fs.Boxed ((module F2), t2) as fs2) = ok (Fs.mount brand dev) in
  check Alcotest.string "across remount" (pattern 11 6000) (readfile fs2 "/keepdir/f");
  let names = List.map fst (ok (F2.getdirentries t2 "/keepdir")) in
  check Alcotest.bool "dir listing" true (List.mem "f" names)

let t_crash_consistency brand () =
  (* Commit via fsync, crash without unmount, remount: either the file
     is fully there or cleanly absent; the volume must mount. *)
  let _, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/pre" "before";
  let fd = ok (F.open_ t "/pre" Fs.Rd) in
  ok (F.fsync t fd);
  mkfile fs "/maybe" "racing";
  (* crash: no unmount *)
  let (Fs.Boxed ((module F2), t2) as fs2) = ok (Fs.mount brand dev) in
  check Alcotest.string "committed file" "before" (readfile fs2 "/pre");
  (match F2.stat t2 "/maybe" with
  | Ok _ -> check Alcotest.string "complete if present" "racing" (readfile fs2 "/maybe")
  | Error Errno.ENOENT -> ()
  | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e))

let t_deep_tree brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  let rec build path n =
    if n > 0 then begin
      ok (F.mkdir t path);
      build (path ^ "/d") (n - 1)
    end
  in
  build "/d" 6;
  mkfile fs "/d/d/d/d/d/d/leaf" "deep";
  check Alcotest.string "deep leaf" "deep" (readfile fs "/d/d/d/d/d/d/leaf")

let t_many_files_in_dir brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  ok (F.mkdir t "/many");
  for i = 0 to 39 do
    mkfile fs (Printf.sprintf "/many/f%02d" i) (string_of_int i)
  done;
  let entries = ok (F.getdirentries t "/many") in
  check Alcotest.int "40 files + dots" 42 (List.length entries);
  check Alcotest.string "spot check" "17" (readfile fs "/many/f17")

let t_truncate_then_extend_reads_zeros brand () =
  (* Regression (found by the differential fault tester): shrinking a
     file into the middle of a block and then growing it again must not
     expose the stale pre-truncate bytes of that block. *)
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/tz" (String.make 3000 'S');
  ok (F.truncate t "/tz" 900);
  let fd = ok (F.open_ t "/tz" Fs.Wr) in
  ignore (ok (F.write t fd ~off:2500 (Bytes.of_string "END")));
  ok (F.close t fd);
  let s = readfile fs "/tz" in
  check Alcotest.int "size" 2503 (String.length s);
  check Alcotest.string "kept prefix" (String.make 900 'S') (String.sub s 0 900);
  check Alcotest.string "hole reads zeros" (String.make 1600 '\000')
    (String.sub s 900 1600);
  check Alcotest.string "tail" "END" (String.sub s 2500 3)

let t_truncate_extends brand () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  mkfile fs "/tx" "abc";
  ok (F.truncate t "/tx" 10);
  let s = readfile fs "/tx" in
  check Alcotest.int "grown" 10 (String.length s);
  check Alcotest.string "old prefix" "abc" (String.sub s 0 3);
  check Alcotest.string "zero padding" (String.make 7 '\000') (String.sub s 3 7)

let t_journal_pressure brand () =
  (* Enough fsync'd transactions to wrap/checkpoint the journal several
     times; everything must still be there after a clean remount. *)
  let _, dev, (Fs.Boxed ((module F), t) as fs) = fresh brand in
  for i = 0 to 79 do
    let p = Printf.sprintf "/jp%02d" i in
    mkfile fs p (pattern i 600);
    let fd = ok (F.open_ t p Fs.Rd) in
    ok (F.fsync t fd);
    ok (F.close t fd)
  done;
  ok (F.unmount t);
  let fs2 = ok (Fs.mount brand dev) in
  for i = 0 to 79 do
    let got = readfile fs2 (Printf.sprintf "/jp%02d" i) in
    if not (String.equal got (pattern i 600)) then
      Alcotest.failf "file %d damaged by journal churn" i
  done

let suite brand =
  let tc name f = Alcotest.test_case name `Quick (f brand) in
  [
    tc "roundtrip" t_roundtrip;
    tc "overwrite across blocks" t_overwrite;
    tc "grow via offset write" t_grow_with_offset_write;
    tc "multi-block file" t_multiblock_file;
    tc "directories" t_dirs;
    tc "dot entries" t_dot_entries;
    tc "unlink frees" t_unlink_frees;
    tc "hard links" t_link_semantics;
    tc "rename moves" t_rename_moves;
    tc "rmdir semantics" t_rmdir_semantics;
    tc "symlinks" t_symlinks;
    tc "symlink loop" t_symlink_loop;
    tc "truncate" t_truncate;
    tc "chmod/utimes" t_attrs;
    tc "chdir relative" t_chdir;
    tc "statfs decreases" t_statfs_decreases;
    tc "ENOENT paths" t_enoent_paths;
    tc "EEXIST" t_eexist;
    tc "EBADF" t_ebadf;
    tc "read-only fd" t_read_only_fd;
    tc "fsync and sync" t_fsync_and_sync;
    tc "remount persistence" t_remount_persistence;
    tc "crash consistency" t_crash_consistency;
    tc "deep tree" t_deep_tree;
    tc "many files in dir" t_many_files_in_dir;
    tc "journal pressure" t_journal_pressure;
    tc "truncate tail zeroing" t_truncate_then_extend_reads_zeros;
    tc "truncate extends" t_truncate_extends;
  ]

let suites =
  [
    ("genops.ext3", suite Iron_ext3.Ext3.std);
    ("genops.reiserfs", suite Iron_reiserfs.Reiserfs.brand);
    ("genops.jfs", suite Iron_jfs.Jfs.brand);
    ("genops.ntfs", suite Iron_ntfs.Ntfs.brand);
    ("genops.ixt3", suite Iron_ext3.Ext3.ixt3);
  ]
