(* Unit and property tests for iron_util: codecs, CRC32, SHA-1, PRNG. *)

open Iron_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Codec ----------------------------------------------------------- *)

let test_codec_roundtrip_fixed () =
  let buf = Bytes.create 64 in
  let w = Codec.writer buf in
  Codec.put_u8 w 0xAB;
  Codec.put_u16 w 0xBEEF;
  Codec.put_u32 w 0xDEADBEEF;
  Codec.put_u64 w 0x0123456789ABCDEFL;
  Codec.put_string w "hello";
  let r = Codec.reader buf in
  check Alcotest.int "u8" 0xAB (Codec.get_u8 r);
  check Alcotest.int "u16" 0xBEEF (Codec.get_u16 r);
  check Alcotest.int "u32" 0xDEADBEEF (Codec.get_u32 r);
  check Alcotest.int64 "u64" 0x0123456789ABCDEFL (Codec.get_u64 r);
  check Alcotest.string "string" "hello" (Codec.get_string r 5)

let test_codec_overrun () =
  let buf = Bytes.create 2 in
  let r = Codec.reader buf in
  let _ = Codec.get_u16 r in
  Alcotest.check_raises "read past end"
    (Codec.Decode_error "codec: read of 4 bytes at 2 overruns buffer of 2")
    (fun () -> ignore (Codec.get_u32 r))

let test_codec_write_overrun () =
  let buf = Bytes.create 3 in
  let w = Codec.writer buf in
  Codec.put_u16 w 1;
  (try
     Codec.put_u32 w 2;
     Alcotest.fail "expected Decode_error"
   with Codec.Decode_error _ -> ())

let prop_codec_u32_roundtrip =
  QCheck.Test.make ~name:"codec u32 roundtrip" ~count:200
    QCheck.(int_bound 0xFFFFFFF)
    (fun v ->
      let buf = Bytes.create 4 in
      Codec.write_u32 buf 0 v;
      Codec.read_u32 buf 0 = v)

let prop_codec_u64_roundtrip =
  QCheck.Test.make ~name:"codec u64 roundtrip" ~count:200 QCheck.int64
    (fun v ->
      let buf = Bytes.create 8 in
      let w = Codec.writer buf in
      Codec.put_u64 w v;
      Codec.get_u64 (Codec.reader buf) = v)

(* --- CRC32 ----------------------------------------------------------- *)

let test_crc32_vectors () =
  (* Standard check value for "123456789". *)
  check Alcotest.int "check value" 0xCBF43926 (Crc32.digest_string "123456789");
  check Alcotest.int "empty" 0 (Crc32.digest_string "");
  check Alcotest.int "a" 0xE8B7BE43 (Crc32.digest_string "a")

let prop_crc32_incremental =
  QCheck.Test.make ~name:"crc32 incremental = one-shot" ~count:100
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      let whole = Crc32.digest_string (a ^ b) in
      let part =
        Crc32.update (Crc32.digest_string a) (Bytes.of_string b)
      in
      whole = part)

(* --- SHA-1 ----------------------------------------------------------- *)

let test_sha1_vectors () =
  let hex s = Sha1.to_hex (Sha1.digest_string s) in
  check Alcotest.string "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (hex "abc");
  check Alcotest.string "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (hex "");
  check Alcotest.string "448-bit"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  (* One million 'a's. *)
  let big = String.make 1_000_000 'a' in
  check Alcotest.string "1M a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f" (hex big)

let test_sha1_raw_roundtrip () =
  let d = Sha1.digest_string "roundtrip" in
  check Alcotest.bool "of_raw . to_raw" true (Sha1.equal d (Sha1.of_raw (Sha1.to_raw d)))

let prop_sha1_incremental =
  QCheck.Test.make ~name:"sha1 incremental = one-shot" ~count:100
    QCheck.(list small_string)
    (fun parts ->
      let whole = Sha1.digest_string (String.concat "" parts) in
      let ctx = Sha1.init () in
      List.iter (fun p -> Sha1.feed ctx (Bytes.of_string p)) parts;
      Sha1.equal whole (Sha1.finalize ctx))

let prop_sha1_injective_smoke =
  QCheck.Test.make ~name:"sha1 distinguishes single bit flips" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.return 64)) (int_bound 511))
    (fun (s, bit) ->
      let b = Bytes.of_string s in
      let b' = Bytes.copy b in
      let i = bit / 8 in
      Bytes.set b' i (Char.chr (Char.code (Bytes.get b' i) lxor (1 lsl (bit mod 8))));
      not (Sha1.equal (Sha1.digest b) (Sha1.digest b')))

(* --- Hexdump ---------------------------------------------------------- *)

let test_hexdump_shape () =
  let out =
    Format.asprintf "%a" Hexdump.pp (Bytes.of_string "IRON file systems!")
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  check Alcotest.int "18 bytes = two lines" 2 (List.length lines);
  check Alcotest.bool "offset column" true
    (String.length (List.hd lines) > 8 && String.sub (List.hd lines) 0 8 = "00000000");
  check Alcotest.bool "ascii gutter shows text" true
    (let rec find i s =
       i + 4 <= String.length s && (String.sub s i 4 = "IRON" || find (i + 1) s)
     in
     find 0 (List.hd lines))

let test_hexdump_nonprintable_dotted () =
  let out = Format.asprintf "%a" Hexdump.pp (Bytes.make 4 '\001') in
  check Alcotest.bool "control bytes become dots" true
    (let rec find i =
       i + 4 <= String.length out && (String.sub out i 4 = "...." || find (i + 1))
     in
     find 0)

let test_hexdump_prefix () =
  let b = Bytes.make 256 'x' in
  let full = Format.asprintf "%a" Hexdump.pp b in
  let short = Format.asprintf "%a" (Hexdump.pp_prefix 16) b in
  check Alcotest.bool "prefix is shorter" true
    (String.length short < String.length full);
  check Alcotest.int "one line" 1
    (List.length (String.split_on_char '\n' (String.trim short)))

(* --- PRNG ------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check Alcotest.bool "different seeds differ" true (Prng.int64 a <> Prng.int64 b)

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let c1 = Prng.split parent in
  let c2 = Prng.split parent in
  check Alcotest.bool "children differ" true (Prng.int64 c1 <> Prng.int64 c2)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_prng_float_bounds =
  QCheck.Test.make ~name:"prng float stays in bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let v = Prng.float rng 10.0 in
      v >= 0.0 && v < 10.0)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let suites =
  [
    ( "util.codec",
      [
        Alcotest.test_case "fixed roundtrip" `Quick test_codec_roundtrip_fixed;
        Alcotest.test_case "read overrun" `Quick test_codec_overrun;
        Alcotest.test_case "write overrun" `Quick test_codec_write_overrun;
        qtest prop_codec_u32_roundtrip;
        qtest prop_codec_u64_roundtrip;
      ] );
    ( "util.crc32",
      [
        Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
        qtest prop_crc32_incremental;
      ] );
    ( "util.sha1",
      [
        Alcotest.test_case "FIPS vectors" `Quick test_sha1_vectors;
        Alcotest.test_case "raw roundtrip" `Quick test_sha1_raw_roundtrip;
        qtest prop_sha1_incremental;
        qtest prop_sha1_injective_smoke;
      ] );
    ( "util.hexdump",
      [
        Alcotest.test_case "shape" `Quick test_hexdump_shape;
        Alcotest.test_case "nonprintable dotted" `Quick test_hexdump_nonprintable_dotted;
        Alcotest.test_case "prefix" `Quick test_hexdump_prefix;
      ] );
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        qtest prop_prng_int_bounds;
        qtest prop_prng_float_bounds;
      ] );
  ]
